//===- tools/flattenc/main.cpp - Source-to-source driver -------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// flattenc: the command-line face of the simdflat pipeline. Reads a
/// mini-Fortran program, recovers GOTO loops, optionally flattens the
/// parallel nest (Sec. 4) and SIMDizes it (Sec. 3), prints the result,
/// and can execute it on the SIMD machine simulator.
///
/// Examples:
///   flattenc example.f                      # flatten + SIMDize, print
///   flattenc --emit=flat example.f          # flattened F77 only
///   flattenc --level=general example.f      # force the Fig. 10 form
///   flattenc --run --lanes=4 --set K=8
///            --set-array L=4,1,2,1,1,3,1,3 example.f (one line)
///
/// Exit codes: 0 success, 1 front-end or pipeline error, 2 bad command
/// line, 3 runtime trap under --run, 4 internal error (the top-level
/// exception barrier fired).
///
//===----------------------------------------------------------------------===//

#include "analysis/LoopNests.h"
#include "analysis/Profitability.h"
#include "analysis/Safety.h"
#include "exec/Bytecode.h"
#include "exec/Lower.h"
#include "frontend/GotoRecovery.h"
#include "frontend/Parser.h"
#include "interp/SimdInterp.h"
#include "interp/StatsJson.h"
#include "ir/Printer.h"
#include "ir/Walk.h"
#include "support/Json.h"
#include "transform/Flatten.h"
#include "transform/Pipeline.h"
#include "transform/ReportJson.h"
#include "transform/Simdize.h"
#include "transform/Simplify.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

using namespace simdflat;

namespace {

struct CliOptions {
  std::string InputPath;
  std::string Emit = "simd"; // f77 | flat | simd
  std::string Layout = "cyclic";
  std::optional<transform::FlattenLevel> Level;
  bool AssumeMinOne = false;
  bool NoFlatten = false;
  std::optional<analysis::Strategy> Strategy;
  bool Adaptive = false;
  bool Analyze = false;
  bool Run = false;
  bool DumpBytecode = false;
  interp::Engine Eng = interp::Engine::Bytecode;
  bool TestThrow = false;
  int64_t Lanes = 4;
  int64_t Fuel = 0;
  std::string StatsJsonPath;
  std::vector<std::pair<std::string, int64_t>> Sets;
  std::vector<std::pair<std::string, std::vector<int64_t>>> SetArrays;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: flattenc [options] file.f\n"
      "  --emit=f77|flat|simd   output stage (default simd)\n"
      "  --level=general|optimized|done\n"
      "                         pin the flattening level (Figs. 10-12)\n"
      "  --assume-min-one       assert inner loops run at least once\n"
      "  --layout=cyclic|block  lane layout for the parallel loop\n"
      "  --no-flatten           SIMDize without flattening (Fig. 5 path)\n"
      "  --strategy=unflattened|flattened|coalesced\n"
      "                         build the nest under an explicit loop\n"
      "                         strategy (with --emit=simd)\n"
      "  --adaptive             two-pass profile-guided build (with\n"
      "                         --run): execute the unflattened variant\n"
      "                         on the given inputs to observe the trip\n"
      "                         distribution, let the Sec. 6 cost model\n"
      "                         pick the strategy, then build and run it\n"
      "  --analyze              print the loop-nest analysis and exit\n"
      "  --run                  execute on the SIMD simulator\n"
      "  --engine=tree|bytecode|hostsimd|native\n"
      "                         interpreter engine for --run (default\n"
      "                         bytecode; tree is the reference oracle,\n"
      "                         hostsimd maps lanes onto host vector\n"
      "                         lanes, native JIT-compiles the schedule\n"
      "                         to host loops and falls back to\n"
      "                         bytecode without a toolchain)\n"
      "  --dump-bytecode        disassemble the lowered bytecode of the\n"
      "                         emitted program to stdout\n"
      "  --lanes=N              simulator lanes (with --run, N >= 1)\n"
      "  --fuel=N               watchdog: trap after N instructions\n"
      "                         (with --run; 0 = unlimited)\n"
      "  --stats-json=PATH      dump pipeline stage outcomes (and, with\n"
      "                         --run, interpreter RunStats) as JSON\n"
      "  --set NAME=V           set an integer input (with --run)\n"
      "  --set-array NAME=a,b,c set an integer array input (with --run)\n"
      "exit codes: 0 success, 1 front-end/pipeline error, 2 bad command\n"
      "line, 3 runtime trap, 4 internal error\n");
}

/// Strict base-10 integer parse of all of \p S; rejects empty strings,
/// trailing junk, and out-of-range values.
bool parseInt(const std::string &S, int64_t &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size() || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

[[nodiscard]] bool cliError(const char *Fmt, const std::string &Arg) {
  std::fprintf(stderr, Fmt, Arg.c_str());
  std::fprintf(stderr, "\n");
  usage();
  return false;
}

/// Value of a `--opt=value` argument; fails (rather than returning the
/// whole argument) when the '=' is missing.
bool optionValue(const std::string &A, std::string &Out) {
  size_t Eq = A.find('=');
  if (Eq == std::string::npos)
    return false;
  Out = A.substr(Eq + 1);
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string V;
    if (A.rfind("--emit", 0) == 0) {
      if (!optionValue(A, V) ||
          (V != "f77" && V != "flat" && V != "simd"))
        return cliError("flattenc: --emit expects f77|flat|simd, got '%s'",
                        A);
      Opts.Emit = V;
    } else if (A.rfind("--level", 0) == 0) {
      if (!optionValue(A, V))
        return cliError("flattenc: '%s' expects --level=general|"
                        "optimized|done",
                        A);
      if (V == "general")
        Opts.Level = transform::FlattenLevel::General;
      else if (V == "optimized")
        Opts.Level = transform::FlattenLevel::Optimized;
      else if (V == "done")
        Opts.Level = transform::FlattenLevel::DoneTest;
      else
        return cliError("flattenc: unknown level '%s'", V);
    } else if (A == "--assume-min-one") {
      Opts.AssumeMinOne = true;
    } else if (A.rfind("--layout", 0) == 0) {
      if (!optionValue(A, V) || (V != "cyclic" && V != "block"))
        return cliError("flattenc: --layout expects cyclic|block, got '%s'",
                        A);
      Opts.Layout = V;
    } else if (A == "--no-flatten") {
      Opts.NoFlatten = true;
    } else if (A.rfind("--strategy", 0) == 0) {
      analysis::Strategy St;
      if (!optionValue(A, V) || !analysis::strategyFromName(V, St))
        return cliError("flattenc: --strategy expects unflattened|"
                        "flattened|coalesced, got '%s'",
                        A);
      Opts.Strategy = St;
    } else if (A == "--adaptive") {
      Opts.Adaptive = true;
    } else if (A == "--analyze") {
      Opts.Analyze = true;
    } else if (A == "--run") {
      Opts.Run = true;
    } else if (A == "--dump-bytecode") {
      Opts.DumpBytecode = true;
    } else if (A.rfind("--engine", 0) == 0) {
      if (!optionValue(A, V) || !interp::engineFromName(V, Opts.Eng))
        return cliError("flattenc: --engine expects "
                        "tree|bytecode|hostsimd|native, "
                        "got '%s'",
                        A);
    } else if (A.rfind("--lanes", 0) == 0) {
      if (!optionValue(A, V) || !parseInt(V, Opts.Lanes) ||
          Opts.Lanes <= 0)
        return cliError("flattenc: --lanes expects a positive integer, "
                        "got '%s'",
                        A);
    } else if (A.rfind("--fuel", 0) == 0) {
      if (!optionValue(A, V) || !parseInt(V, Opts.Fuel) || Opts.Fuel < 0)
        return cliError("flattenc: --fuel expects a non-negative integer, "
                        "got '%s'",
                        A);
    } else if (A.rfind("--stats-json", 0) == 0) {
      if (!optionValue(A, V) || V.empty())
        return cliError("flattenc: --stats-json expects a non-empty "
                        "path, got '%s'",
                        A);
      Opts.StatsJsonPath = V;
    } else if (A == "--set") {
      if (I + 1 >= Argc)
        return cliError("flattenc: %s expects a NAME=VALUE argument", A);
      std::string KV = Argv[++I];
      size_t Eq = KV.find('=');
      int64_t Val = 0;
      if (Eq == std::string::npos || Eq == 0 ||
          !parseInt(KV.substr(Eq + 1), Val))
        return cliError("flattenc: --set expects NAME=VALUE, got '%s'",
                        KV);
      Opts.Sets.emplace_back(KV.substr(0, Eq), Val);
    } else if (A == "--set-array") {
      if (I + 1 >= Argc)
        return cliError("flattenc: %s expects a NAME=a,b,c argument", A);
      std::string KV = Argv[++I];
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos || Eq == 0)
        return cliError("flattenc: --set-array expects NAME=a,b,c, "
                        "got '%s'",
                        KV);
      std::vector<int64_t> Vals;
      std::stringstream SS(KV.substr(Eq + 1));
      std::string Item;
      while (std::getline(SS, Item, ',')) {
        int64_t Val = 0;
        if (!parseInt(Item, Val))
          return cliError("flattenc: bad integer in --set-array '%s'",
                          KV);
        Vals.push_back(Val);
      }
      if (Vals.empty())
        return cliError("flattenc: --set-array expects at least one "
                        "value, got '%s'",
                        KV);
      Opts.SetArrays.emplace_back(KV.substr(0, Eq), std::move(Vals));
    } else if (A == "--test-throw") {
      // Undocumented: fires the exception barrier so the CLI test can
      // assert the structured-diagnostic + exit-4 contract.
      Opts.TestThrow = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return false;
    } else if (!A.empty() && A[0] == '-') {
      return cliError("flattenc: unknown option '%s'", A);
    } else if (!Opts.InputPath.empty()) {
      return cliError("flattenc: more than one input file ('%s')", A);
    } else {
      Opts.InputPath = A;
    }
  }
  if (Opts.InputPath.empty()) {
    usage();
    return false;
  }
  if (Opts.Adaptive && Opts.Strategy) {
    std::fprintf(stderr, "flattenc: --adaptive picks the strategy itself; "
                         "drop --strategy\n");
    usage();
    return false;
  }
  if (Opts.Adaptive && !Opts.Run) {
    std::fprintf(stderr, "flattenc: --adaptive profiles a real execution; "
                         "it requires --run\n");
    usage();
    return false;
  }
  if ((Opts.Adaptive || Opts.Strategy) &&
      (Opts.Emit != "simd" || Opts.NoFlatten)) {
    std::fprintf(stderr, "flattenc: --strategy/--adaptive drive the full "
                         "SIMD pipeline; they need --emit=simd and no "
                         "--no-flatten\n");
    usage();
    return false;
  }
  return true;
}

/// Checks a --set / --set-array name against the program's declarations
/// so a typo is a clean diagnostic, not an interpreter fault.
bool checkSetName(const ir::Program &P, const std::string &Name,
                  bool WantArray) {
  const ir::VarDecl *D = P.lookupVar(Name);
  if (!D) {
    std::fprintf(stderr, "flattenc: --set%s names undeclared variable "
                         "'%s'\n",
                 WantArray ? "-array" : "", Name.c_str());
    return false;
  }
  if (D->Kind != ir::ScalarKind::Int) {
    std::fprintf(stderr, "flattenc: '%s' is not an integer variable\n",
                 Name.c_str());
    return false;
  }
  if (D->isArray() != WantArray) {
    std::fprintf(stderr, "flattenc: '%s' is %s; use %s\n", Name.c_str(),
                 D->isArray() ? "an array" : "a scalar",
                 D->isArray() ? "--set-array" : "--set");
    return false;
  }
  return true;
}

/// Maps a cost-model verdict onto the pipeline policy that builds it.
/// Coalesced builds get the standard static inspector bounds; the
/// profiling pass already rejected distributions that exceed them.
transform::StrategyPolicy policyFor(analysis::Strategy S) {
  switch (S) {
  case analysis::Strategy::Unflattened:
    return transform::StrategyPolicy::unflattened();
  case analysis::Strategy::Flattened:
    return transform::StrategyPolicy::flattened();
  case analysis::Strategy::Coalesced:
    return transform::StrategyPolicy::coalesced(64, 4096);
  }
  return transform::StrategyPolicy::flattened();
}

} // namespace

int realMain(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;
  if (Opts.TestThrow)
    throw std::runtime_error("--test-throw requested");

  std::ifstream In(Opts.InputPath);
  if (!In) {
    std::fprintf(stderr, "flattenc: cannot open '%s'\n",
                 Opts.InputPath.c_str());
    return 2;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  frontend::ParseResult PR = frontend::parseProgram(Buf.str());
  if (!PR.Diags.empty())
    std::fprintf(stderr, "%s", PR.Diags.renderAll().c_str());
  if (!PR.ok())
    return 1;
  ir::Program P = std::move(*PR.Prog);

  int Recovered = frontend::recoverGotoLoops(P);
  if (Recovered > 0)
    std::fprintf(stderr, "flattenc: recovered %d GOTO loop(s)\n",
                 Recovered);

  machine::Layout Layout = Opts.Layout == "block"
                               ? machine::Layout::Block
                               : machine::Layout::Cyclic;

  // Telemetry accumulated along whichever path runs; flushed by
  // writeStats() at the successful exits.
  std::optional<transform::PipelineReport> PipelineRep;
  std::optional<interp::RunStats> RunStats;
  // Engine that actually ran, not the one requested: a native request
  // without a toolchain degrades to bytecode, and telemetry must say so.
  std::optional<interp::Engine> EngineRan;
  std::optional<json::Value> AdaptiveJson;
  auto writeStats = [&]() -> bool {
    if (Opts.StatsJsonPath.empty())
      return true;
    json::Value Doc = json::Value::object();
    Doc.set("schema", "simdflat-stats-v1");
    Doc.set("input", Opts.InputPath);
    Doc.set("goto_loops_recovered", static_cast<int64_t>(Recovered));
    if (PipelineRep)
      Doc.set("pipeline", transform::toJson(*PipelineRep));
    if (AdaptiveJson)
      Doc.set("adaptive", *AdaptiveJson);
    if (RunStats) {
      interp::Engine Eng = EngineRan.value_or(Opts.Eng);
      Doc.set("engine", interp::engineName(Eng));
      Doc.set("run_stats", interp::toJson(*RunStats, Eng));
    }
    if (!json::writeFile(Opts.StatsJsonPath, Doc)) {
      std::fprintf(stderr, "flattenc: cannot write '%s'\n",
                   Opts.StatsJsonPath.c_str());
      return false;
    }
    return true;
  };

  if (Opts.Analyze) {
    std::printf("loop nests:\n%s",
                analysis::renderLoopNests(
                    analysis::findLoopNests(P))
                    .c_str());
    // Safety verdict for every parallel-marked loop.
    for (const analysis::LoopNestNode &N : analysis::findLoopNests(P)) {
      if (!N.Parallel)
        continue;
      const auto *D = cast<ir::DoStmt>(N.Loop);
      analysis::SafetyResult SR = analysis::checkParallelizable(*D, P);
      std::printf("DOALL %s: %s%s\n", N.IndexVar.c_str(),
                  SR.Parallelizable ? "provably parallelizable"
                                    : "not provable: ",
                  SR.Parallelizable ? "" : SR.Reason.c_str());
    }
    // What would flattening do?
    ir::Program Copy = ir::cloneProgram(P);
    transform::FlattenOptions FOpts;
    FOpts.AssumeInnerMinOneTrip = Opts.AssumeMinOne;
    transform::FlattenResult FR = transform::flattenNest(Copy, FOpts);
    if (FR.Changed)
      std::printf("flattening: applicable at the %s level\n",
                  transform::flattenLevelName(FR.Applied));
    else
      std::printf("flattening: not applicable: %s\n", FR.Reason.c_str());
    // Dry-run the full pipeline and report each stage's verification.
    transform::PipelineOptions PO;
    PO.Layout = Layout;
    PO.Flatten = !Opts.NoFlatten;
    PO.AssumeInnerMinOneTrip = Opts.AssumeMinOne;
    transform::PipelineReport Rep;
    auto Compiled = transform::compileForSimd(P, PO, &Rep);
    std::printf("pipeline stages:\n");
    for (const transform::StageOutcome &S : Rep.Stages) {
      std::printf("  %-13s %s", S.Stage.c_str(),
                  !S.Ran ? "skipped"
                         : S.Verified ? "verified" : "FAILED verify");
      if (!S.Note.empty())
        std::printf(" (%s)", S.Note.c_str());
      std::printf("\n");
    }
    PipelineRep = Rep;
    if (!Compiled) {
      std::printf("pipeline: %s\n", Compiled.error().render().c_str());
      (void)writeStats();
      return 1;
    }
    return writeStats() ? 0 : 2;
  }

  // --adaptive pass 1: build and run the *unflattened* variant on the
  // provided inputs. Its inner serial loop records one trip sample per
  // source row -- exactly the distribution the Sec. 6 cost model
  // consumes (a transformed variant would report its own schedule and
  // hide the source skew). The verdict then drives the real build.
  if (Opts.Adaptive) {
    transform::PipelineOptions PPO;
    PPO.Layout = Layout;
    PPO.AssumeInnerMinOneTrip = Opts.AssumeMinOne;
    PPO.Strategy = transform::StrategyPolicy::unflattened();
    auto Profiled = transform::compileForSimd(P, PPO, nullptr);
    if (!Profiled) {
      std::fprintf(stderr, "flattenc: %s\n",
                   Profiled.error().render().c_str());
      return 1;
    }
    for (const auto &[Name, V] : Opts.Sets)
      if (!checkSetName(*Profiled, Name, /*WantArray=*/false))
        return 2;
    for (const auto &[Name, Vals] : Opts.SetArrays) {
      if (!checkSetName(*Profiled, Name, /*WantArray=*/true))
        return 2;
      int64_t Want = Profiled->lookupVar(Name)->numElements();
      if (static_cast<int64_t>(Vals.size()) != Want) {
        std::fprintf(stderr,
                     "flattenc: --set-array '%s' expects %lld value(s), "
                     "got %zu\n",
                     Name.c_str(), static_cast<long long>(Want),
                     Vals.size());
        return 2;
      }
    }
    machine::MachineConfig PM;
    PM.Name = "flattenc-profile";
    PM.Processors = Opts.Lanes;
    PM.Gran = Opts.Lanes;
    PM.DataLayout = Layout;
    interp::RunOptions PRO;
    PRO.Fuel = Opts.Fuel;
    // The tree engine records no trip nests; profile on bytecode
    // regardless of which engine --engine picked for the real run.
    PRO.Eng = interp::Engine::Bytecode;
    interp::SimdInterp Profiler(*Profiled, PM, nullptr, PRO);
    for (const auto &[Name, V] : Opts.Sets)
      Profiler.store().setInt(Name, V);
    for (const auto &[Name, Vals] : Opts.SetArrays)
      Profiler.store().setIntArray(Name, Vals);
    interp::RunOutcome<interp::SimdRunResult> POut = Profiler.run();
    if (!POut) {
      std::fprintf(stderr, "flattenc: profiling run: %s\n",
                   POut.error().render().c_str());
      return 3;
    }
    const interp::NestTripStats *Dom =
        analysis::dominantTripNest(POut->Stats.TripNests);
    analysis::StrategyCosts Costs;
    Costs.CoalesceMaxOuter = 64;
    Costs.CoalesceMaxTotal = 4096;
    analysis::StrategyChoice C;
    if (Dom)
      C = analysis::chooseStrategy(
          analysis::TripDistribution(Dom->Hist), Opts.Lanes, Layout,
          Costs);
    std::fprintf(stderr,
                 "flattenc: adaptive profile chose %s "
                 "(confidence %.2f, %lld trip sample(s))\n",
                 analysis::strategyName(C.Primary), C.Confidence,
                 static_cast<long long>(Dom ? Dom->Hist.Samples : 0));
    Opts.Strategy = C.Primary;
    json::Value AJ = json::Value::object();
    AJ.set("chosen", analysis::strategyName(C.Primary));
    AJ.set("confidence", C.Confidence);
    AJ.set("profiled_samples",
           Dom ? Dom->Hist.Samples : static_cast<int64_t>(0));
    json::Value Scores = json::Value::object();
    for (analysis::Strategy S :
         {analysis::Strategy::Unflattened, analysis::Strategy::Flattened,
          analysis::Strategy::Coalesced})
      Scores.set(analysis::strategyName(S), C.scoreOf(S));
    AJ.set("scores", std::move(Scores));
    AdaptiveJson = std::move(AJ);
  }

  if (Opts.Emit == "flat" && !Opts.NoFlatten) {
    transform::FlattenOptions FOpts;
    FOpts.Force = Opts.Level;
    FOpts.AssumeInnerMinOneTrip = Opts.AssumeMinOne;
    transform::FlattenResult FR = transform::flattenNest(P, FOpts);
    if (!FR.Changed) {
      std::fprintf(stderr, "flattenc: not flattened: %s\n",
                   FR.Reason.c_str());
      if (Opts.Level)
        return 1;
    } else {
      std::fprintf(stderr, "flattenc: flattened at the %s level\n",
                   transform::flattenLevelName(FR.Applied));
    }
    transform::simplifyProgram(P);
  } else if (Opts.Emit == "simd") {
    transform::PipelineOptions PO;
    PO.Layout = Layout;
    PO.Flatten = !Opts.NoFlatten;
    PO.ForceLevel = Opts.Level;
    PO.AssumeInnerMinOneTrip = Opts.AssumeMinOne;
    if (Opts.Strategy)
      PO.Strategy = policyFor(*Opts.Strategy);
    transform::PipelineReport Rep;
    auto Compiled = transform::compileForSimd(P, PO, &Rep);
    std::fputs(("flattenc: " + Rep.summary()).c_str(), stderr);
    if (Opts.Strategy)
      std::fprintf(stderr, "flattenc: strategy: %s\n",
                   analysis::strategyName(Rep.StrategyApplied));
    PipelineRep = Rep;
    if (!Compiled) {
      std::fprintf(stderr, "flattenc: %s\n",
                   Compiled.error().render().c_str());
      (void)writeStats();
      return 1;
    }
    P = std::move(*Compiled);
    if (Opts.Level && !Rep.Flattened) {
      (void)writeStats();
      return 1;
    }
  }

  std::fputs(ir::printProgram(P).c_str(), stdout);

  if (Opts.DumpBytecode) {
    exec::Mode M = P.dialect() == ir::Dialect::F90Simd
                       ? exec::Mode::Simd
                       : exec::Mode::Scalar;
    exec::Program Code = exec::lower(P, M);
    std::fputs(exec::disassemble(Code).c_str(), stdout);
  }

  if (!Opts.Run)
    return writeStats() ? 0 : 2;
  if (P.dialect() != ir::Dialect::F90Simd) {
    std::fprintf(stderr,
                 "flattenc: --run requires --emit=simd (the simulator "
                 "executes the F90simd dialect)\n");
    return 2;
  }
  for (const auto &[Name, V] : Opts.Sets)
    if (!checkSetName(P, Name, /*WantArray=*/false))
      return 2;
  for (const auto &[Name, Vals] : Opts.SetArrays) {
    if (!checkSetName(P, Name, /*WantArray=*/true))
      return 2;
    int64_t Want = P.lookupVar(Name)->numElements();
    if (static_cast<int64_t>(Vals.size()) != Want) {
      std::fprintf(stderr,
                   "flattenc: --set-array '%s' expects %lld value(s), "
                   "got %zu\n",
                   Name.c_str(), static_cast<long long>(Want),
                   Vals.size());
      return 2;
    }
  }
  machine::MachineConfig M;
  M.Name = "flattenc-sim";
  M.Processors = Opts.Lanes;
  M.Gran = Opts.Lanes;
  M.DataLayout = Layout;
  interp::RunOptions ROpts;
  ROpts.Fuel = Opts.Fuel;
  ROpts.Eng = Opts.Eng;
  interp::SimdInterp Interp(P, M, nullptr, ROpts);
  for (const auto &[Name, V] : Opts.Sets)
    Interp.store().setInt(Name, V);
  for (const auto &[Name, Vals] : Opts.SetArrays)
    Interp.store().setIntArray(Name, Vals);
  interp::RunOutcome<interp::SimdRunResult> Out = Interp.run();
  if (!Out) {
    std::fprintf(stderr, "flattenc: %s\n", Out.error().render().c_str());
    (void)writeStats();
    return 3;
  }
  const interp::SimdRunResult &R = *Out;
  RunStats = R.Stats;
  EngineRan = R.EngineUsed;
  std::fprintf(stderr,
               "flattenc: executed on %lld lanes: %lld instructions, "
               "%.1f cycles, comm accesses %lld\n",
               static_cast<long long>(Opts.Lanes),
               static_cast<long long>(R.Stats.Instructions),
               R.Stats.Cycles,
               static_cast<long long>(R.Stats.CommAccesses));
  // Print distributed integer arrays so results are inspectable.
  for (const ir::VarDecl &V : P.vars()) {
    if (!V.isArray() || V.Kind != ir::ScalarKind::Int ||
        V.numElements() > 64)
      continue;
    std::fprintf(stderr, "  %s =", V.Name.c_str());
    for (int64_t X : Interp.store().getIntArray(V.Name))
      std::fprintf(stderr, " %lld", static_cast<long long>(X));
    std::fprintf(stderr, "\n");
  }
  return writeStats() ? 0 : 2;
}

int main(int Argc, char **Argv) {
  // Top-level exception barrier: an escaped exception (std::bad_alloc
  // on a hostile input, a container throw from a bug) is a structured
  // one-line diagnostic and a distinct exit code, never std::terminate.
  try {
    return realMain(Argc, Argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "flattenc: internal error: %s\n", E.what());
    return 4;
  } catch (...) {
    std::fprintf(stderr, "flattenc: internal error: unknown exception\n");
    return 4;
  }
}
