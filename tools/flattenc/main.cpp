//===- tools/flattenc/main.cpp - Source-to-source driver -------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// flattenc: the command-line face of the simdflat pipeline. Reads a
/// mini-Fortran program, recovers GOTO loops, optionally flattens the
/// parallel nest (Sec. 4) and SIMDizes it (Sec. 3), prints the result,
/// and can execute it on the SIMD machine simulator.
///
/// Examples:
///   flattenc example.f                      # flatten + SIMDize, print
///   flattenc --emit=flat example.f          # flattened F77 only
///   flattenc --level=general example.f      # force the Fig. 10 form
///   flattenc --run --lanes=4 --set K=8
///            --set-array L=4,1,2,1,1,3,1,3 example.f (one line)
///
//===----------------------------------------------------------------------===//

#include "analysis/LoopNests.h"
#include "analysis/Safety.h"
#include "frontend/GotoRecovery.h"
#include "frontend/Parser.h"
#include "interp/SimdInterp.h"
#include "ir/Printer.h"
#include "ir/Walk.h"
#include "transform/Flatten.h"
#include "transform/Pipeline.h"
#include "transform/Simdize.h"
#include "transform/Simplify.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace simdflat;

namespace {

struct CliOptions {
  std::string InputPath;
  std::string Emit = "simd"; // f77 | flat | simd
  std::string Layout = "cyclic";
  std::optional<transform::FlattenLevel> Level;
  bool AssumeMinOne = false;
  bool NoFlatten = false;
  bool Analyze = false;
  bool Run = false;
  int64_t Lanes = 4;
  std::vector<std::pair<std::string, int64_t>> Sets;
  std::vector<std::pair<std::string, std::vector<int64_t>>> SetArrays;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: flattenc [options] file.f\n"
      "  --emit=f77|flat|simd   output stage (default simd)\n"
      "  --level=general|optimized|done\n"
      "                         pin the flattening level (Figs. 10-12)\n"
      "  --assume-min-one       assert inner loops run at least once\n"
      "  --layout=cyclic|block  lane layout for the parallel loop\n"
      "  --no-flatten           SIMDize without flattening (Fig. 5 path)\n"
      "  --analyze              print the loop-nest analysis and exit\n"
      "  --run                  execute on the SIMD simulator\n"
      "  --lanes=N              simulator lanes (with --run)\n"
      "  --set NAME=V           set an integer input (with --run)\n"
      "  --set-array NAME=a,b,c set an integer array input (with --run)\n");
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&A]() { return A.substr(A.find('=') + 1); };
    if (A.rfind("--emit=", 0) == 0) {
      Opts.Emit = Value();
    } else if (A.rfind("--level=", 0) == 0) {
      std::string V = Value();
      if (V == "general")
        Opts.Level = transform::FlattenLevel::General;
      else if (V == "optimized")
        Opts.Level = transform::FlattenLevel::Optimized;
      else if (V == "done")
        Opts.Level = transform::FlattenLevel::DoneTest;
      else {
        std::fprintf(stderr, "flattenc: unknown level '%s'\n", V.c_str());
        return false;
      }
    } else if (A == "--assume-min-one") {
      Opts.AssumeMinOne = true;
    } else if (A.rfind("--layout=", 0) == 0) {
      Opts.Layout = Value();
    } else if (A == "--no-flatten") {
      Opts.NoFlatten = true;
    } else if (A == "--analyze") {
      Opts.Analyze = true;
    } else if (A == "--run") {
      Opts.Run = true;
    } else if (A.rfind("--lanes=", 0) == 0) {
      Opts.Lanes = std::atoll(Value().c_str());
    } else if (A == "--set" && I + 1 < Argc) {
      std::string KV = Argv[++I];
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos) {
        std::fprintf(stderr, "flattenc: --set expects NAME=VALUE\n");
        return false;
      }
      Opts.Sets.emplace_back(KV.substr(0, Eq),
                             std::atoll(KV.c_str() + Eq + 1));
    } else if (A == "--set-array" && I + 1 < Argc) {
      std::string KV = Argv[++I];
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos) {
        std::fprintf(stderr,
                     "flattenc: --set-array expects NAME=a,b,c\n");
        return false;
      }
      std::vector<int64_t> Vals;
      std::stringstream SS(KV.substr(Eq + 1));
      std::string Item;
      while (std::getline(SS, Item, ','))
        Vals.push_back(std::atoll(Item.c_str()));
      Opts.SetArrays.emplace_back(KV.substr(0, Eq), std::move(Vals));
    } else if (A == "--help" || A == "-h") {
      usage();
      return false;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "flattenc: unknown option '%s'\n", A.c_str());
      return false;
    } else {
      Opts.InputPath = A;
    }
  }
  if (Opts.InputPath.empty()) {
    usage();
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;

  std::ifstream In(Opts.InputPath);
  if (!In) {
    std::fprintf(stderr, "flattenc: cannot open '%s'\n",
                 Opts.InputPath.c_str());
    return 2;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  frontend::ParseResult PR = frontend::parseProgram(Buf.str());
  if (!PR.Diags.empty()) {
    std::fprintf(stderr, "%s", PR.Diags.renderAll().c_str());
    return 1;
  }
  ir::Program P = std::move(*PR.Prog);

  int Recovered = frontend::recoverGotoLoops(P);
  if (Recovered > 0)
    std::fprintf(stderr, "flattenc: recovered %d GOTO loop(s)\n",
                 Recovered);

  machine::Layout Layout = Opts.Layout == "block"
                               ? machine::Layout::Block
                               : machine::Layout::Cyclic;

  if (Opts.Analyze) {
    std::printf("loop nests:\n%s",
                analysis::renderLoopNests(
                    analysis::findLoopNests(P))
                    .c_str());
    // Safety verdict for every parallel-marked loop.
    for (const analysis::LoopNestNode &N : analysis::findLoopNests(P)) {
      if (!N.Parallel)
        continue;
      const auto *D = cast<ir::DoStmt>(N.Loop);
      analysis::SafetyResult SR = analysis::checkParallelizable(*D, P);
      std::printf("DOALL %s: %s%s\n", N.IndexVar.c_str(),
                  SR.Parallelizable ? "provably parallelizable"
                                    : "not provable: ",
                  SR.Parallelizable ? "" : SR.Reason.c_str());
    }
    // What would flattening do?
    ir::Program Copy = ir::cloneProgram(P);
    transform::FlattenOptions FOpts;
    FOpts.AssumeInnerMinOneTrip = Opts.AssumeMinOne;
    transform::FlattenResult FR = transform::flattenNest(Copy, FOpts);
    if (FR.Changed)
      std::printf("flattening: applicable at the %s level\n",
                  transform::flattenLevelName(FR.Applied));
    else
      std::printf("flattening: not applicable: %s\n", FR.Reason.c_str());
    return 0;
  }

  if (Opts.Emit == "flat" && !Opts.NoFlatten) {
    transform::FlattenOptions FOpts;
    FOpts.Force = Opts.Level;
    FOpts.AssumeInnerMinOneTrip = Opts.AssumeMinOne;
    transform::FlattenResult FR = transform::flattenNest(P, FOpts);
    if (!FR.Changed) {
      std::fprintf(stderr, "flattenc: not flattened: %s\n",
                   FR.Reason.c_str());
      if (Opts.Level)
        return 1;
    } else {
      std::fprintf(stderr, "flattenc: flattened at the %s level\n",
                   transform::flattenLevelName(FR.Applied));
    }
    transform::simplifyProgram(P);
  } else if (Opts.Emit == "simd") {
    transform::PipelineOptions PO;
    PO.Layout = Layout;
    PO.Flatten = !Opts.NoFlatten;
    PO.ForceLevel = Opts.Level;
    PO.AssumeInnerMinOneTrip = Opts.AssumeMinOne;
    transform::PipelineReport Rep;
    P = transform::compileForSimd(P, PO, &Rep);
    std::fputs(("flattenc: " + Rep.summary()).c_str(), stderr);
    if (Opts.Level && !Rep.Flattened)
      return 1;
  }

  std::fputs(ir::printProgram(P).c_str(), stdout);

  if (!Opts.Run)
    return 0;
  if (P.dialect() != ir::Dialect::F90Simd) {
    std::fprintf(stderr,
                 "flattenc: --run requires --emit=simd (the simulator "
                 "executes the F90simd dialect)\n");
    return 1;
  }
  machine::MachineConfig M;
  M.Name = "flattenc-sim";
  M.Processors = Opts.Lanes;
  M.Gran = Opts.Lanes;
  M.DataLayout = Layout;
  interp::RunOptions ROpts;
  interp::SimdInterp Interp(P, M, nullptr, ROpts);
  for (const auto &[Name, V] : Opts.Sets)
    Interp.store().setInt(Name, V);
  for (const auto &[Name, Vals] : Opts.SetArrays)
    Interp.store().setIntArray(Name, Vals);
  interp::SimdRunResult R = Interp.run();
  std::fprintf(stderr,
               "flattenc: executed on %lld lanes: %lld instructions, "
               "%.1f cycles, comm accesses %lld\n",
               static_cast<long long>(Opts.Lanes),
               static_cast<long long>(R.Stats.Instructions),
               R.Stats.Cycles,
               static_cast<long long>(R.Stats.CommAccesses));
  // Print distributed integer arrays so results are inspectable.
  for (const ir::VarDecl &V : P.vars()) {
    if (!V.isArray() || V.Kind != ir::ScalarKind::Int ||
        V.numElements() > 64)
      continue;
    std::fprintf(stderr, "  %s =", V.Name.c_str());
    for (int64_t X : Interp.store().getIntArray(V.Name))
      std::fprintf(stderr, " %lld", static_cast<long long>(X));
    std::fprintf(stderr, "\n");
  }
  return 0;
}
