//===- tools/perf_compare/main.cpp ----------------------------------------===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLI for the perf-regression gate:
///
///   perf_compare <baseline.json> <new.json> [--threshold=0.10] [--all]
///
/// Exit codes: 0 no gated regression, 1 regression(s) found, 2 usage or
/// I/O error. CI runs every bench in smoke mode, then this tool against
/// the checked-in bench/baselines/ snapshots.
///
//===----------------------------------------------------------------------===//

#include "tools/perf_compare/PerfCompare.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace simdflat;
using namespace simdflat::perfcompare;

namespace {

void usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s <baseline.json> <new.json> [--threshold=<frac>] [--all]\n"
      "       %s --dirs <baseline-dir> <new-dir> [--threshold=<frac>]"
      " [--all]\n"
      "  Compares two simdflat-bench-v1 files; exits 1 when any gated\n"
      "  metric regresses by more than the threshold (default 0.10).\n"
      "  --all also prints metrics whose change stayed inside it.\n"
      "  --dirs matches *.json files by name between two directories;\n"
      "  benches present on only one side are reported as added or\n"
      "  removed (informational), never as failures.\n",
      Prog, Prog);
}

} // namespace

int main(int argc, char **argv) {
  CompareOptions Opts;
  std::string BasePath, NewPath;
  bool Dirs = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    }
    if (Arg == "--all") {
      Opts.ShowAll = true;
      continue;
    }
    if (Arg == "--dirs") {
      Dirs = true;
      continue;
    }
    if (Arg.rfind("--threshold=", 0) == 0) {
      char *End = nullptr;
      const char *Num = Arg.c_str() + std::strlen("--threshold=");
      Opts.Threshold = std::strtod(Num, &End);
      if (End == Num || *End != '\0' || Opts.Threshold < 0.0) {
        std::fprintf(stderr, "perf_compare: bad threshold '%s'\n",
                     Num);
        return 2;
      }
      continue;
    }
    if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "perf_compare: unknown option '%s'\n",
                   Arg.c_str());
      usage(argv[0]);
      return 2;
    }
    if (BasePath.empty())
      BasePath = Arg;
    else if (NewPath.empty())
      NewPath = Arg;
    else {
      usage(argv[0]);
      return 2;
    }
  }
  if (BasePath.empty() || NewPath.empty()) {
    usage(argv[0]);
    return 2;
  }

  if (Dirs) {
    auto Result = compareBenchDirs(BasePath, NewPath, Opts);
    if (!Result) {
      std::fprintf(stderr, "perf_compare: %s\n",
                   Result.error().render().c_str());
      return 2;
    }
    std::fputs(Result->render(Opts).c_str(), stdout);
    return Result->ok() ? 0 : 1;
  }

  auto Result = compareBenchFiles(BasePath, NewPath, Opts);
  if (!Result) {
    std::fprintf(stderr, "perf_compare: %s\n",
                 Result.error().render().c_str());
    return 2;
  }
  std::fputs(Result->render(Opts).c_str(), stdout);
  return Result->ok() ? 0 : 1;
}
