//===- tools/perf_compare/PerfCompare.cpp ---------------------------------===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/perf_compare/PerfCompare.h"

#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <set>

namespace simdflat {
namespace perfcompare {

namespace {

struct ParsedMetric {
  double Value = 0.0;
  bool Gate = true;
  bool LowerIsBetter = true;
};

using MetricMap = std::map<std::pair<std::string, std::string>, ParsedMetric>;

Expected<MetricMap, CompareError> extractMetrics(const json::Value &Doc,
                                                 const char *Which) {
  if (!Doc.isObject())
    return CompareError{formatf("%s: not a JSON object", Which)};
  const json::Value *Schema = Doc.get("schema");
  if (!Schema || !Schema->isString() ||
      Schema->asString() != "simdflat-bench-v1")
    return CompareError{
        formatf("%s: missing or unknown schema (want simdflat-bench-v1)",
                Which)};
  const json::Value *Metrics = Doc.get("metrics");
  if (!Metrics || !Metrics->isArray())
    return CompareError{formatf("%s: no metrics array", Which)};
  MetricMap Out;
  for (size_t I = 0; I < Metrics->size(); ++I) {
    const json::Value &M = Metrics->at(I);
    const json::Value *Case = M.get("case");
    const json::Value *Name = M.get("metric");
    const json::Value *Val = M.get("value");
    if (!Case || !Case->isString() || !Name || !Name->isString() ||
        !Val || !Val->isNumber())
      return CompareError{
          formatf("%s: metrics[%zu] is malformed", Which, I)};
    ParsedMetric P;
    P.Value = Val->asDouble();
    if (const json::Value *G = M.get("gate"))
      P.Gate = G->isBool() && G->asBool();
    if (const json::Value *B = M.get("better"))
      P.LowerIsBetter = !B->isString() || B->asString() != "higher";
    // Trip-histogram counters describe the workload's input
    // distribution, not the build's performance; a trip profile shift
    // is information, never a regression. Force them informational
    // whatever the producer wrote, so a re-seeded workload cannot fail
    // the gate on histogram shape.
    if (Name->asString().rfind("trip_hist", 0) == 0)
      P.Gate = false;
    Out[{Case->asString(), Name->asString()}] = P;
  }
  return Out;
}

std::string benchName(const json::Value &Doc) {
  const json::Value *N = Doc.get("bench");
  return N && N->isString() ? N->asString() : "<unnamed>";
}

/// The interpreter engine recorded in meta.engine, or "" when the
/// document predates the tag (seed baselines).
std::string benchEngine(const json::Value &Doc) {
  const json::Value *Meta = Doc.get("meta");
  if (!Meta || !Meta->isObject())
    return "";
  const json::Value *E = Meta->get("engine");
  return E && E->isString() ? E->asString() : "";
}

} // namespace

int64_t CompareResult::regressionCount() const {
  return std::count_if(Deltas.begin(), Deltas.end(),
                       [](const MetricDelta &D) { return D.Regressed; });
}

std::string CompareResult::render(const CompareOptions &Opts) const {
  std::string Out =
      formatf("perf_compare: bench '%s', threshold %.0f%%\n",
              BenchName.c_str(), 100.0 * Opts.Threshold);
  TextTable T;
  T.setHeader({"case", "metric", "base", "new", "delta", "verdict"});
  int64_t Shown = 0;
  for (const MetricDelta &D : Deltas) {
    bool Interesting = D.Regressed || D.Improved;
    if (!Interesting && !Opts.ShowAll)
      continue;
    ++Shown;
    T.addRow({D.Case, D.Metric, formatf("%g", D.Base),
              formatf("%g", D.New),
              formatf("%+.1f%%", 100.0 * D.RelDelta),
              D.Regressed    ? "REGRESSED"
              : D.Improved   ? "improved"
              : D.Gate       ? "ok"
                             : "info"});
  }
  if (Shown > 0)
    Out += T.render();
  for (const std::string &K : MissingInNew)
    Out += formatf("warning: gated metric dropped from new run: %s\n",
                   K.c_str());
  for (const std::string &K : MissingInBase)
    Out += formatf("note: new metric with no baseline: %s\n", K.c_str());
  int64_t Regressions = regressionCount();
  Out += formatf("%lld compared, %lld regression(s)%s\n",
                 static_cast<long long>(Deltas.size()),
                 static_cast<long long>(Regressions),
                 Regressions == 0 ? " - OK" : " - FAIL");
  return Out;
}

Expected<CompareResult, CompareError>
compareBenchJson(const json::Value &Base, const json::Value &New,
                 const CompareOptions &Opts) {
  auto BaseMetrics = extractMetrics(Base, "baseline");
  if (!BaseMetrics)
    return BaseMetrics.error();
  auto NewMetrics = extractMetrics(New, "new");
  if (!NewMetrics)
    return NewMetrics.error();

  CompareResult R;
  R.BenchName = benchName(New);
  if (benchName(Base) != R.BenchName)
    return CompareError{formatf(
        "bench name mismatch: baseline '%s' vs new '%s'",
        benchName(Base).c_str(), R.BenchName.c_str())};

  // Different engines (tree / bytecode / hostsimd / whatever comes
  // next) model the same machine but spend real time differently;
  // comparing their wall-clock (or mixing baselines regenerated under
  // another engine) would be meaningless. The check is generic over the
  // tag value - any two distinct non-empty tags refuse, so a hostsimd
  // baseline diffs only against a hostsimd run - and stays permissive
  // when either document predates the tag (seed baselines).
  {
    std::string BaseEng = benchEngine(Base), NewEng = benchEngine(New);
    if (!BaseEng.empty() && !NewEng.empty() && BaseEng != NewEng)
      return CompareError{formatf(
          "engine mismatch: baseline ran under '%s' but new run under "
          "'%s'; regenerate the baseline with the same --engine",
          BaseEng.c_str(), NewEng.c_str())};
  }

  for (const auto &[Key, BaseM] : *BaseMetrics) {
    auto It = NewMetrics->find(Key);
    if (It == NewMetrics->end()) {
      if (BaseM.Gate)
        R.MissingInNew.push_back(Key.first + "/" + Key.second);
      continue;
    }
    const ParsedMetric &NewM = It->second;
    MetricDelta D;
    D.Case = Key.first;
    D.Metric = Key.second;
    D.Base = BaseM.Value;
    D.New = NewM.Value;
    D.Gate = BaseM.Gate && NewM.Gate;
    D.LowerIsBetter = BaseM.LowerIsBetter;
    if (BaseM.Value == 0.0)
      // Zero baseline: no meaningful ratio. Any nonzero new value in
      // the bad direction counts as a full breach.
      D.RelDelta = NewM.Value == 0.0 ? 0.0
                   : NewM.Value > 0.0 ? 2.0 * Opts.Threshold
                                      : -2.0 * Opts.Threshold;
    else
      D.RelDelta = (NewM.Value - BaseM.Value) / std::abs(BaseM.Value);
    double Bad = D.LowerIsBetter ? D.RelDelta : -D.RelDelta;
    if (D.Gate && Bad > Opts.Threshold)
      D.Regressed = true;
    else if (Bad < -Opts.Threshold)
      D.Improved = true;
    R.Deltas.push_back(std::move(D));
  }
  for (const auto &[Key, NewM] : *NewMetrics)
    if (NewM.Gate && !BaseMetrics->count(Key))
      R.MissingInBase.push_back(Key.first + "/" + Key.second);
  return R;
}

Expected<CompareResult, CompareError>
compareBenchFiles(const std::string &BasePath, const std::string &NewPath,
                  const CompareOptions &Opts) {
  auto Base = json::parseFile(BasePath);
  if (!Base)
    return CompareError{Base.error().render()};
  auto New = json::parseFile(NewPath);
  if (!New)
    return CompareError{New.error().render()};
  return compareBenchJson(*Base, *New, Opts);
}

namespace {

Expected<std::set<std::string>, CompareError>
listJsonFiles(const std::string &Dir, const char *Which) {
  namespace fs = std::filesystem;
  std::error_code EC;
  if (!fs::is_directory(Dir, EC))
    return CompareError{
        formatf("%s: '%s' is not a directory", Which, Dir.c_str())};
  std::set<std::string> Out;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, EC)) {
    if (E.is_regular_file() && E.path().extension() == ".json")
      Out.insert(E.path().filename().string());
  }
  if (EC)
    return CompareError{formatf("%s: cannot list '%s': %s", Which,
                                Dir.c_str(), EC.message().c_str())};
  return Out;
}

} // namespace

int64_t DirCompareResult::regressionCount() const {
  int64_t N = 0;
  for (const auto &[File, R] : Compared)
    N += R.regressionCount();
  return N;
}

std::string DirCompareResult::render(const CompareOptions &Opts) const {
  std::string Out;
  for (const auto &[File, R] : Compared) {
    Out += formatf("== %s ==\n", File.c_str());
    Out += R.render(Opts);
  }
  for (const std::string &F : OnlyInNew)
    Out += formatf("note: bench added (no baseline yet): %s\n", F.c_str());
  for (const std::string &F : OnlyInBase)
    Out += formatf("note: bench removed (baseline only): %s\n", F.c_str());
  for (const std::string &F : Renamed)
    Out += formatf("note: bench renamed: %s\n", F.c_str());
  int64_t Regressions = regressionCount();
  Out += formatf(
      "%lld bench(es) compared, %lld added, %lld removed, %lld renamed, "
      "%lld regression(s)%s\n",
      static_cast<long long>(Compared.size()),
      static_cast<long long>(OnlyInNew.size()),
      static_cast<long long>(OnlyInBase.size()),
      static_cast<long long>(Renamed.size()),
      static_cast<long long>(Regressions),
      Regressions == 0 ? " - OK" : " - FAIL");
  return Out;
}

Expected<DirCompareResult, CompareError>
compareBenchDirs(const std::string &BaseDir, const std::string &NewDir,
                 const CompareOptions &Opts) {
  auto BaseFiles = listJsonFiles(BaseDir, "baseline");
  if (!BaseFiles)
    return BaseFiles.error();
  auto NewFiles = listJsonFiles(NewDir, "new");
  if (!NewFiles)
    return NewFiles.error();

  DirCompareResult R;
  for (const std::string &F : *BaseFiles)
    if (!NewFiles->count(F))
      R.OnlyInBase.push_back(F);
  for (const std::string &F : *NewFiles)
    if (!BaseFiles->count(F))
      R.OnlyInNew.push_back(F);

  namespace fs = std::filesystem;
  for (const std::string &F : *BaseFiles) {
    if (!NewFiles->count(F))
      continue;
    auto Base = json::parseFile((fs::path(BaseDir) / F).string());
    if (!Base)
      return CompareError{Base.error().render()};
    auto New = json::parseFile((fs::path(NewDir) / F).string());
    if (!New)
      return CompareError{New.error().render()};
    // A matched file whose embedded bench name changed is a rename in
    // place: comparing old metrics against the new bench's would be
    // apples to oranges, so report it informationally instead.
    std::string BaseName = benchName(*Base), NewName = benchName(*New);
    if (BaseName != NewName) {
      R.Renamed.push_back(
          formatf("%s: '%s' -> '%s'", F.c_str(), BaseName.c_str(),
                  NewName.c_str()));
      continue;
    }
    auto Cmp = compareBenchJson(*Base, *New, Opts);
    if (!Cmp)
      return CompareError{formatf("%s: %s", F.c_str(),
                                  Cmp.error().render().c_str())};
    R.Compared.emplace_back(F, std::move(*Cmp));
  }
  return R;
}

} // namespace perfcompare
} // namespace simdflat
