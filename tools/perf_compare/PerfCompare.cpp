//===- tools/perf_compare/PerfCompare.cpp ---------------------------------===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/perf_compare/PerfCompare.h"

#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace simdflat {
namespace perfcompare {

namespace {

struct ParsedMetric {
  double Value = 0.0;
  bool Gate = true;
  bool LowerIsBetter = true;
};

using MetricMap = std::map<std::pair<std::string, std::string>, ParsedMetric>;

Expected<MetricMap, CompareError> extractMetrics(const json::Value &Doc,
                                                 const char *Which) {
  if (!Doc.isObject())
    return CompareError{formatf("%s: not a JSON object", Which)};
  const json::Value *Schema = Doc.get("schema");
  if (!Schema || !Schema->isString() ||
      Schema->asString() != "simdflat-bench-v1")
    return CompareError{
        formatf("%s: missing or unknown schema (want simdflat-bench-v1)",
                Which)};
  const json::Value *Metrics = Doc.get("metrics");
  if (!Metrics || !Metrics->isArray())
    return CompareError{formatf("%s: no metrics array", Which)};
  MetricMap Out;
  for (size_t I = 0; I < Metrics->size(); ++I) {
    const json::Value &M = Metrics->at(I);
    const json::Value *Case = M.get("case");
    const json::Value *Name = M.get("metric");
    const json::Value *Val = M.get("value");
    if (!Case || !Case->isString() || !Name || !Name->isString() ||
        !Val || !Val->isNumber())
      return CompareError{
          formatf("%s: metrics[%zu] is malformed", Which, I)};
    ParsedMetric P;
    P.Value = Val->asDouble();
    if (const json::Value *G = M.get("gate"))
      P.Gate = G->isBool() && G->asBool();
    if (const json::Value *B = M.get("better"))
      P.LowerIsBetter = !B->isString() || B->asString() != "higher";
    Out[{Case->asString(), Name->asString()}] = P;
  }
  return Out;
}

std::string benchName(const json::Value &Doc) {
  const json::Value *N = Doc.get("bench");
  return N && N->isString() ? N->asString() : "<unnamed>";
}

} // namespace

int64_t CompareResult::regressionCount() const {
  return std::count_if(Deltas.begin(), Deltas.end(),
                       [](const MetricDelta &D) { return D.Regressed; });
}

std::string CompareResult::render(const CompareOptions &Opts) const {
  std::string Out =
      formatf("perf_compare: bench '%s', threshold %.0f%%\n",
              BenchName.c_str(), 100.0 * Opts.Threshold);
  TextTable T;
  T.setHeader({"case", "metric", "base", "new", "delta", "verdict"});
  int64_t Shown = 0;
  for (const MetricDelta &D : Deltas) {
    bool Interesting = D.Regressed || D.Improved;
    if (!Interesting && !Opts.ShowAll)
      continue;
    ++Shown;
    T.addRow({D.Case, D.Metric, formatf("%g", D.Base),
              formatf("%g", D.New),
              formatf("%+.1f%%", 100.0 * D.RelDelta),
              D.Regressed    ? "REGRESSED"
              : D.Improved   ? "improved"
              : D.Gate       ? "ok"
                             : "info"});
  }
  if (Shown > 0)
    Out += T.render();
  for (const std::string &K : MissingInNew)
    Out += formatf("warning: gated metric dropped from new run: %s\n",
                   K.c_str());
  for (const std::string &K : MissingInBase)
    Out += formatf("note: new metric with no baseline: %s\n", K.c_str());
  int64_t Regressions = regressionCount();
  Out += formatf("%lld compared, %lld regression(s)%s\n",
                 static_cast<long long>(Deltas.size()),
                 static_cast<long long>(Regressions),
                 Regressions == 0 ? " - OK" : " - FAIL");
  return Out;
}

Expected<CompareResult, CompareError>
compareBenchJson(const json::Value &Base, const json::Value &New,
                 const CompareOptions &Opts) {
  auto BaseMetrics = extractMetrics(Base, "baseline");
  if (!BaseMetrics)
    return BaseMetrics.error();
  auto NewMetrics = extractMetrics(New, "new");
  if (!NewMetrics)
    return NewMetrics.error();

  CompareResult R;
  R.BenchName = benchName(New);
  if (benchName(Base) != R.BenchName)
    return CompareError{formatf(
        "bench name mismatch: baseline '%s' vs new '%s'",
        benchName(Base).c_str(), R.BenchName.c_str())};

  for (const auto &[Key, BaseM] : *BaseMetrics) {
    auto It = NewMetrics->find(Key);
    if (It == NewMetrics->end()) {
      if (BaseM.Gate)
        R.MissingInNew.push_back(Key.first + "/" + Key.second);
      continue;
    }
    const ParsedMetric &NewM = It->second;
    MetricDelta D;
    D.Case = Key.first;
    D.Metric = Key.second;
    D.Base = BaseM.Value;
    D.New = NewM.Value;
    D.Gate = BaseM.Gate && NewM.Gate;
    D.LowerIsBetter = BaseM.LowerIsBetter;
    if (BaseM.Value == 0.0)
      // Zero baseline: no meaningful ratio. Any nonzero new value in
      // the bad direction counts as a full breach.
      D.RelDelta = NewM.Value == 0.0 ? 0.0
                   : NewM.Value > 0.0 ? 2.0 * Opts.Threshold
                                      : -2.0 * Opts.Threshold;
    else
      D.RelDelta = (NewM.Value - BaseM.Value) / std::abs(BaseM.Value);
    double Bad = D.LowerIsBetter ? D.RelDelta : -D.RelDelta;
    if (D.Gate && Bad > Opts.Threshold)
      D.Regressed = true;
    else if (Bad < -Opts.Threshold)
      D.Improved = true;
    R.Deltas.push_back(std::move(D));
  }
  for (const auto &[Key, NewM] : *NewMetrics)
    if (NewM.Gate && !BaseMetrics->count(Key))
      R.MissingInBase.push_back(Key.first + "/" + Key.second);
  return R;
}

Expected<CompareResult, CompareError>
compareBenchFiles(const std::string &BasePath, const std::string &NewPath,
                  const CompareOptions &Opts) {
  auto Base = json::parseFile(BasePath);
  if (!Base)
    return CompareError{Base.error().render()};
  auto New = json::parseFile(NewPath);
  if (!New)
    return CompareError{New.error().render()};
  return compareBenchJson(*Base, *New, Opts);
}

} // namespace perfcompare
} // namespace simdflat
