//===- tools/perf_compare/PerfCompare.h ------------------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two simdflat-bench-v1 JSON documents (a baseline and a new
/// run of the same bench) and flags regressions. Only *gated* metrics
/// participate in the verdict: those are deterministic model outputs
/// (steps, model cycles, utilization, force calls), so any drift beyond
/// the threshold is a real schedule change, not machine noise. Ungated
/// metrics (wall-clock) are reported but never fail the comparison.
///
/// The direction field decides what "worse" means: LowerIsBetter metrics
/// regress when the new value exceeds baseline by more than the
/// threshold; HigherIsBetter metrics regress when it drops below.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_TOOLS_PERF_COMPARE_PERFCOMPARE_H
#define SIMDFLAT_TOOLS_PERF_COMPARE_PERFCOMPARE_H

#include "support/Json.h"
#include "support/Result.h"

#include <string>
#include <vector>

namespace simdflat {
namespace perfcompare {

struct CompareError {
  std::string Message;
  std::string render() const { return Message; }
};

struct CompareOptions {
  /// Maximum tolerated relative change in the bad direction.
  double Threshold = 0.10;
  /// Also list metrics whose change stayed within the threshold.
  bool ShowAll = false;
};

/// One (case, metric) pair present in both documents.
struct MetricDelta {
  std::string Case;
  std::string Metric;
  double Base = 0.0;
  double New = 0.0;
  /// Signed relative change (New - Base) / |Base|; +inf-like values are
  /// clamped by treating a zero baseline specially (any nonzero New
  /// counts as a full-threshold breach in the bad direction).
  double RelDelta = 0.0;
  bool Gate = true;
  /// True when the metric improves by going down.
  bool LowerIsBetter = true;
  bool Regressed = false;
  bool Improved = false;
};

struct CompareResult {
  std::string BenchName;
  std::vector<MetricDelta> Deltas;
  /// Gated (case, metric) keys present only in the baseline - the new
  /// run silently dropped coverage, reported as a warning.
  std::vector<std::string> MissingInNew;
  /// Present only in the new run (new coverage; informational).
  std::vector<std::string> MissingInBase;

  int64_t regressionCount() const;
  bool ok() const { return regressionCount() == 0; }

  /// Human-readable report table + verdict line.
  std::string render(const CompareOptions &Opts) const;
};

/// Result of comparing two directories of bench JSON files matched by
/// filename. Benches present in only one directory are reported as
/// added/removed (informational), never as errors: introducing or
/// renaming a bench in the same PR must not fail the perf gate.
struct DirCompareResult {
  /// (filename, per-bench comparison) for every file present on both
  /// sides with matching embedded bench names.
  std::vector<std::pair<std::string, CompareResult>> Compared;
  /// Files only in the baseline directory (bench removed or renamed).
  std::vector<std::string> OnlyInBase;
  /// Files only in the new directory (bench added or renamed).
  std::vector<std::string> OnlyInNew;
  /// Files present on both sides whose embedded bench names disagree -
  /// treated as a rename ("file: 'old' -> 'new'"), not compared
  /// metric-by-metric, and not an error.
  std::vector<std::string> Renamed;

  int64_t regressionCount() const;
  /// Only metric regressions in compared benches fail the gate.
  bool ok() const { return regressionCount() == 0; }
  std::string render(const CompareOptions &Opts) const;
};

/// Diffs two parsed simdflat-bench-v1 documents.
Expected<CompareResult, CompareError>
compareBenchJson(const json::Value &Base, const json::Value &New,
                 const CompareOptions &Opts = {});

/// Convenience wrapper: load both files, then compare.
Expected<CompareResult, CompareError>
compareBenchFiles(const std::string &BasePath, const std::string &NewPath,
                  const CompareOptions &Opts = {});

/// Compares every *.json file in \p BaseDir against the file of the
/// same name in \p NewDir. Files missing on either side are reported
/// informationally (see DirCompareResult); unreadable or malformed
/// files are still hard errors.
Expected<DirCompareResult, CompareError>
compareBenchDirs(const std::string &BaseDir, const std::string &NewDir,
                 const CompareOptions &Opts = {});

} // namespace perfcompare
} // namespace simdflat

#endif // SIMDFLAT_TOOLS_PERF_COMPARE_PERFCOMPARE_H
