//===- tools/flattend/main.cpp - Flattening-service daemon -----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// flattend: the compile-once/run-many face of the simdflat pipeline.
/// Reads one JSON request per line from stdin (docs/SERVING.md), pushes
/// each through the serve::Server (bounded admission queue, compiled-
/// program cache, circuit breaker, per-request budgets), and writes one
/// JSON reply per line to stdout in submission order. At end of input it
/// prints a summary line with the server counters and self-checks the
/// accounting invariant served + trapped + shed + compile-errors ==
/// submitted.
///
/// Examples:
///   flattend < requests.jsonl
///   flattend --workers=4 --queue-capacity=8 --max-fuel=1000000
///            --telemetry=serve.log < requests.jsonl   (one line)
///   flattend --fault-compile-failures=2 --fault-evict-mid-flight
///            < requests.jsonl   (fault drill: must still add up)
///
/// Exit codes: 0 success, 2 bad command line, 4 internal error (the
/// exception barrier fired), 5 accounting inconsistency at shutdown.
///
//===----------------------------------------------------------------------===//

#include "serve/ServeJson.h"
#include "serve/Server.h"
#include "support/Json.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace simdflat;

namespace {

struct CliOptions {
  serve::ServerOptions Server;
  std::string TelemetryPath;
  bool TestThrow = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: flattend [options] < requests.jsonl > replies.jsonl\n"
      "  --workers=N              worker threads (default 2)\n"
      "  --queue-capacity=N       admission queue bound (default 16)\n"
      "  --cache-capacity=N       compiled programs kept (default 64)\n"
      "  --max-lanes=N            lane bound per request (default 64)\n"
      "  --max-fuel=N             require 0 < fuel <= N per request\n"
      "                           (default 0: fuel optional)\n"
      "  --compile-retries=N      retries after a failed compile "
      "(default 2)\n"
      "  --retry-after-ms=N       retry hint on shed replies (default 5)\n"
      "  --layout=cyclic|block    lane layout (default cyclic)\n"
      "  --engine=tree|bytecode|hostsimd\n"
      "                           execution engine (default bytecode;\n"
      "                           hostsimd maps lanes onto host vector\n"
      "                           lanes)\n"
      "  --telemetry=PATH         append one accounting record per reply\n"
      "  --fault-compile-failures=N\n"
      "                           fault drill: fail the first N compile\n"
      "                           attempts of every primary pipeline\n"
      "  --fault-evict-mid-flight fault drill: evict each program while\n"
      "                           its request still runs\n"
      "  --fault-worker-stall-micros=N\n"
      "                           fault drill: stall workers N us per\n"
      "                           request\n"
      "exit codes: 0 success, 2 bad command line, 4 internal error,\n"
      "5 accounting inconsistency\n");
}

bool parseInt(const std::string &S, int64_t &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size() || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

[[nodiscard]] bool cliError(const char *Fmt, const std::string &Arg) {
  std::fprintf(stderr, Fmt, Arg.c_str());
  std::fprintf(stderr, "\n");
  usage();
  return false;
}

bool optionValue(const std::string &A, std::string &Out) {
  size_t Eq = A.find('=');
  if (Eq == std::string::npos)
    return false;
  Out = A.substr(Eq + 1);
  return true;
}

bool intOption(const std::string &A, const char *Name, int64_t Min,
               int64_t &Out, bool &Matched) {
  Matched = A.rfind(Name, 0) == 0;
  if (!Matched)
    return true;
  std::string V;
  if (!optionValue(A, V) || !parseInt(V, Out) || Out < Min)
    return cliError("flattend: bad value in '%s'", A);
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string V;
    int64_t N = 0;
    bool Matched = false;
    if (!intOption(A, "--workers", 1, N, Matched))
      return false;
    if (Matched) {
      Opts.Server.Workers = (int)N;
      continue;
    }
    if (!intOption(A, "--queue-capacity", 1, N, Matched))
      return false;
    if (Matched) {
      Opts.Server.QueueCapacity = (size_t)N;
      continue;
    }
    if (!intOption(A, "--cache-capacity", 1, N, Matched))
      return false;
    if (Matched) {
      Opts.Server.CacheCapacity = (size_t)N;
      continue;
    }
    if (!intOption(A, "--max-lanes", 1, N, Matched))
      return false;
    if (Matched) {
      Opts.Server.MaxLanes = N;
      continue;
    }
    if (!intOption(A, "--max-fuel", 0, N, Matched))
      return false;
    if (Matched) {
      Opts.Server.MaxFuel = N;
      continue;
    }
    if (!intOption(A, "--compile-retries", 0, N, Matched))
      return false;
    if (Matched) {
      Opts.Server.CompileRetries = (int)N;
      continue;
    }
    if (!intOption(A, "--retry-after-ms", 0, N, Matched))
      return false;
    if (Matched) {
      Opts.Server.RetryAfterMs = N;
      continue;
    }
    if (!intOption(A, "--fault-compile-failures", 0, N, Matched))
      return false;
    if (Matched) {
      Opts.Server.Faults.CompileFailures = (int)N;
      continue;
    }
    if (!intOption(A, "--fault-worker-stall-micros", 0, N, Matched))
      return false;
    if (Matched) {
      Opts.Server.Faults.WorkerStallMicros = N;
      continue;
    }
    if (A == "--fault-evict-mid-flight") {
      Opts.Server.Faults.EvictMidFlight = true;
    } else if (A.rfind("--layout", 0) == 0) {
      if (!optionValue(A, V) || (V != "cyclic" && V != "block"))
        return cliError("flattend: --layout expects cyclic|block, got '%s'",
                        A);
      Opts.Server.Layout = V == "block" ? machine::Layout::Block
                                        : machine::Layout::Cyclic;
    } else if (A.rfind("--engine", 0) == 0) {
      if (!optionValue(A, V) || !interp::engineFromName(V, Opts.Server.Eng))
        return cliError("flattend: --engine expects "
                        "tree|bytecode|hostsimd, got '%s'",
                        A);
    } else if (A.rfind("--telemetry", 0) == 0) {
      if (!optionValue(A, V) || V.empty())
        return cliError("flattend: --telemetry expects a non-empty path, "
                        "got '%s'",
                        A);
      Opts.TelemetryPath = V;
    } else if (A == "--test-throw") {
      // Undocumented: fires the exception barrier (CI and the CLI test
      // assert the structured-diagnostic + exit-4 contract).
      Opts.TestThrow = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return false;
    } else {
      return cliError("flattend: unknown option '%s'", A);
    }
  }
  return true;
}

int realMain(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;
  if (Opts.TestThrow)
    throw std::runtime_error("--test-throw requested");

  std::ofstream Telemetry;
  if (!Opts.TelemetryPath.empty()) {
    Telemetry.open(Opts.TelemetryPath, std::ios::app);
    if (!Telemetry) {
      std::fprintf(stderr, "flattend: cannot open '%s'\n",
                   Opts.TelemetryPath.c_str());
      return 2;
    }
  }

  serve::Server Server(Opts.Server);

  // Submit every line as it arrives (so the admission queue sees real
  // pressure), remembering futures in submission order; bad JSON never
  // reaches the server and is answered inline.
  struct Pending {
    std::future<serve::Reply> F;
    std::optional<serve::Reply> Immediate;
  };
  std::vector<Pending> Replies;
  int64_t BadLines = 0;
  std::string Line;
  uint64_t LineNo = 0;
  while (std::getline(std::cin, Line)) {
    ++LineNo;
    // getline succeeding with eofbit set means the final line had no
    // terminating newline - the record may have been cut off mid-write
    // (EOF mid-record). If it still parses as a complete request it is
    // accepted; if not, the reply says "truncated", not "bad JSON".
    bool Unterminated = std::cin.eof();
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    auto Parsed = json::Value::parse(Line);
    Pending P;
    if (!Parsed) {
      ++BadLines;
      serve::Reply Rep;
      Rep.Id = LineNo;
      Rep.Out = serve::Outcome::CompileError;
      Rep.Error =
          Unterminated
              ? "request line " + std::to_string(LineNo) +
                    " truncated (EOF mid-record): " +
                    Parsed.error().render()
              : "request line " + std::to_string(LineNo) +
                    " is not valid JSON: " + Parsed.error().render();
      P.Immediate = std::move(Rep);
    } else {
      auto Req = serve::parseRequest(*Parsed);
      if (!Req) {
        ++BadLines;
        serve::Reply Rep;
        Rep.Id = LineNo;
        Rep.Out = serve::Outcome::CompileError;
        Rep.Error =
            "request line " + std::to_string(LineNo) + ": " + Req.error();
        P.Immediate = std::move(Rep);
      } else {
        P.F = Server.submit(std::move(*Req));
      }
    }
    Replies.push_back(std::move(P));
  }
  // A stream I/O error (badbit) can leave a partial record in Line:
  // getline clears the string, extracts what it can, then fails. That
  // partial record still gets a structured per-request reply - silently
  // dropping it would desync a caller matching replies to requests by
  // line, and miscounting it would trip the exit-5 self-check below.
  if (std::cin.bad() && !Line.empty()) {
    ++LineNo;
    ++BadLines;
    serve::Reply Rep;
    Rep.Id = LineNo;
    Rep.Out = serve::Outcome::CompileError;
    Rep.Error = "request line " + std::to_string(LineNo) +
                " truncated by a stream I/O error after " +
                std::to_string(Line.size()) + " bytes";
    Pending P;
    P.Immediate = std::move(Rep);
    Replies.push_back(std::move(P));
  }

  int64_t Answered = 0;
  for (Pending &P : Replies) {
    serve::Reply Rep =
        P.Immediate ? std::move(*P.Immediate) : P.F.get();
    ++Answered;
    std::fputs((serve::toLine(serve::toJson(Rep)) + "\n").c_str(), stdout);
    std::fflush(stdout);
    if (Telemetry.is_open())
      Telemetry << serve::toLine(serve::telemetryJson(Rep)) << "\n";
  }
  if (Telemetry.is_open())
    Telemetry.flush();

  // Summary + self-check: the four outcome buckets must partition the
  // submitted count, and every input line must have been answered.
  serve::ServerStats Stats = Server.stats();
  json::Value Summary = json::Value::object();
  Summary.set("summary", true);
  Summary.set("engine", interp::engineName(Opts.Server.Eng));
  Summary.set("lines", (int64_t)Replies.size());
  Summary.set("bad_lines", BadLines);
  Summary.set("answered", Answered);
  Summary.set("stats", serve::toJson(Stats));
  std::fputs((serve::toLine(Summary) + "\n").c_str(), stdout);
  std::fflush(stdout);

  bool Consistent = Stats.consistent() &&
                    Answered == (int64_t)Replies.size() &&
                    Stats.Submitted + BadLines == (int64_t)Replies.size();
  if (!Consistent) {
    std::fprintf(stderr, "flattend: accounting inconsistency: %s\n",
                 serve::toLine(serve::toJson(Stats)).c_str());
    return 5;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // Top-level exception barrier: an escaped exception is a structured
  // one-line diagnostic and a distinct exit code, never std::terminate.
  try {
    return realMain(Argc, Argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "flattend: internal error: %s\n", E.what());
    return 4;
  } catch (...) {
    std::fprintf(stderr, "flattend: internal error: unknown exception\n");
    return 4;
  }
}
