//===- tools/flattend/main.cpp - Flattening-service daemon -----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// flattend: the compile-once/run-many face of the simdflat pipeline.
/// Reads one JSON request per line from stdin (docs/SERVING.md), pushes
/// each through the serve::Server (bounded weighted-fair admission
/// queue, per-tenant quotas, compiled-program cache, circuit breaker,
/// per-request budgets), and writes one JSON reply per line to stdout in
/// submission order. At end of input it prints a summary line with the
/// server counters and self-checks the accounting invariant served +
/// trapped + shed + compile-errors == submitted, globally and per
/// tenant.
///
/// Lifecycle: SIGINT/SIGTERM stop the input loop and drain gracefully -
/// already-admitted requests finish (or shed with a structured draining
/// status when --drain-deadline-ms passes first), every reply is
/// written, the summary reports drained=true, and the exit code stays 0.
/// --health runs an in-process self-check (compile + execute a builtin
/// probe under the configured engine) and exits 0/1 without reading
/// stdin.
///
/// Examples:
///   flattend < requests.jsonl
///   flattend --workers=4 --queue-capacity=8 --max-fuel=1000000
///            --telemetry=serve.log < requests.jsonl   (one line)
///   flattend --fault-compile-failures=2 --fault-evict-mid-flight
///            < requests.jsonl   (fault drill: must still add up)
///   flattend --health --engine=hostsimd
///
/// Exit codes: 0 success, 1 unhealthy (--health only), 2 bad command
/// line, 4 internal error (the exception barrier fired), 5 accounting
/// inconsistency.
///
//===----------------------------------------------------------------------===//

#include "serve/ServeJson.h"
#include "serve/Server.h"
#include "support/Json.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

using namespace simdflat;

namespace {

/// Set by the SIGINT/SIGTERM handler; the input loop polls it and read()
/// is interrupted (no SA_RESTART), so a signal mid-block turns into a
/// graceful drain instead of a killed process.
volatile std::sig_atomic_t GSignal = 0;

extern "C" void onDrainSignal(int Sig) { GSignal = Sig; }

void installDrainHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onDrainSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // deliberately no SA_RESTART: read() must wake
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
}

struct CliOptions {
  serve::ServerOptions Server;
  std::string TelemetryPath;
  /// Hard bound on the graceful drain after SIGINT/SIGTERM: queued
  /// requests still unpicked when it passes are shed (draining status).
  int64_t DrainDeadlineMs = 5000;
  bool Health = false;
  bool TestThrow = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: flattend [options] < requests.jsonl > replies.jsonl\n"
      "  --workers=N              worker threads (default 2)\n"
      "  --queue-capacity=N       admission queue bound (default 16)\n"
      "  --cache-capacity=N       compiled programs kept (default 64)\n"
      "  --cache-bytes=N          compiled-program byte budget\n"
      "                           (default 0: unmetered)\n"
      "  --cache-tenant-bytes=N   per-tenant cache occupancy cap in\n"
      "                           bytes (default 0: unmetered)\n"
      "  --max-lanes=N            lane bound per request (default 64)\n"
      "  --max-fuel=N             require 0 < fuel <= N per request\n"
      "                           (default 0: fuel optional)\n"
      "  --tenant-rate=N          request tokens per second for every\n"
      "                           tenant (default 0: unmetered)\n"
      "  --tenant-burst=N         request token bucket capacity\n"
      "                           (default 8)\n"
      "  --tenant-max-in-flight=N admitted-but-unresolved requests per\n"
      "                           tenant (default 0: unmetered)\n"
      "  --tenant-max-queued=N    queue share per tenant (default 0:\n"
      "                           bounded only by --queue-capacity)\n"
      "  --tenant-fuel-rate=N     fuel tokens per second per tenant\n"
      "                           (default 0: unmetered)\n"
      "  --compile-retries=N      retries after a failed compile "
      "(default 2)\n"
      "  --retry-after-ms=N       base retry hint on shed replies\n"
      "                           (default 5; scaled by queue depth or\n"
      "                           quota refill time)\n"
      "  --breaker-cooldown-micros=N\n"
      "                           re-probe an open breaker after N us\n"
      "                           (default 0: count-driven only)\n"
      "  --drain-deadline-ms=N    hard bound on the SIGINT/SIGTERM\n"
      "                           graceful drain (default 5000)\n"
      "  --adaptive               profile-guided strategy selection:\n"
      "                           probe runs observe each program's trip\n"
      "                           distribution, the Sec. 6 cost model\n"
      "                           picks unflattened/flattened/coalesced,\n"
      "                           and drift triggers respecialization\n"
      "  --adaptive-min-samples=N trip samples before the first decision\n"
      "                           (default 8)\n"
      "  --adaptive-probe-every=N post-decision probe cadence (default\n"
      "                           8; 0 disables drift tracking)\n"
      "  --adaptive-drift-percent=N\n"
      "                           re-decide when the probe window's\n"
      "                           total-variation distance from the\n"
      "                           decision snapshot exceeds N%% (default\n"
      "                           25)\n"
      "  --adaptive-window=N      keep only the last N probe runs when\n"
      "                           measuring drift, so transient spikes\n"
      "                           age out (default 0: accumulate every\n"
      "                           probe since the last decision)\n"
      "  --layout=cyclic|block    lane layout (default cyclic)\n"
      "  --engine=tree|bytecode|hostsimd|native\n"
      "                           execution engine (default bytecode;\n"
      "                           hostsimd maps lanes onto host vector\n"
      "                           lanes, native JIT-compiles schedules\n"
      "                           to host loops and degrades to\n"
      "                           bytecode without a toolchain)\n"
      "  --telemetry=PATH         append one accounting record per reply\n"
      "  --health                 self-check (compile + run a probe\n"
      "                           program), print one status line, exit\n"
      "                           0 healthy / 1 unhealthy\n"
      "  --fault-compile-failures=N\n"
      "                           fault drill: fail the first N compile\n"
      "                           attempts of every primary pipeline\n"
      "  --fault-evict-mid-flight fault drill: evict each program while\n"
      "                           its request still runs\n"
      "  --fault-worker-stall-micros=N\n"
      "                           fault drill: stall workers N us per\n"
      "                           request\n"
      "  --fault-inflate-cost-bytes=N\n"
      "                           fault drill: pretend every cached\n"
      "                           program costs N bytes\n"
      "exit codes: 0 success, 1 unhealthy (--health), 2 bad command\n"
      "line, 4 internal error, 5 accounting inconsistency\n");
}

bool parseInt(const std::string &S, int64_t &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size() || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

[[nodiscard]] bool cliError(const char *Fmt, const std::string &Arg) {
  std::fprintf(stderr, Fmt, Arg.c_str());
  std::fprintf(stderr, "\n");
  usage();
  return false;
}

bool optionValue(const std::string &A, std::string &Out) {
  size_t Eq = A.find('=');
  if (Eq == std::string::npos)
    return false;
  Out = A.substr(Eq + 1);
  return true;
}

bool intOption(const std::string &A, const char *Name, int64_t Min,
               int64_t &Out, bool &Matched) {
  Matched = A.rfind(Name, 0) == 0;
  if (!Matched)
    return true;
  std::string V;
  if (!optionValue(A, V) || !parseInt(V, Out) || Out < Min)
    return cliError("flattend: bad value in '%s'", A);
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  struct IntFlag {
    const char *Name;
    int64_t Min;
    std::function<void(CliOptions &, int64_t)> Apply;
  };
  // Order matters for prefix matching: longer names before their
  // prefixes (--cache-tenant-bytes before --cache-bytes is not needed -
  // rfind matches whole-name prefixes - but --tenant-max-in-flight vs
  // --tenant-max-queued are disjoint).
  static const IntFlag IntFlags[] = {
      {"--workers", 1,
       [](CliOptions &O, int64_t N) { O.Server.Workers = (int)N; }},
      {"--queue-capacity", 1,
       [](CliOptions &O, int64_t N) { O.Server.QueueCapacity = (size_t)N; }},
      {"--cache-capacity", 1,
       [](CliOptions &O, int64_t N) { O.Server.CacheCapacity = (size_t)N; }},
      {"--cache-tenant-bytes", 0,
       [](CliOptions &O, int64_t N) {
         O.Server.CacheTenantMaxBytes = (size_t)N;
       }},
      {"--cache-bytes", 0,
       [](CliOptions &O, int64_t N) { O.Server.CacheMaxBytes = (size_t)N; }},
      {"--max-lanes", 1,
       [](CliOptions &O, int64_t N) { O.Server.MaxLanes = N; }},
      {"--max-fuel", 0,
       [](CliOptions &O, int64_t N) { O.Server.MaxFuel = N; }},
      {"--tenant-rate", 0,
       [](CliOptions &O, int64_t N) {
         O.Server.DefaultQuota.RatePerSec = (double)N;
       }},
      {"--tenant-burst", 1,
       [](CliOptions &O, int64_t N) { O.Server.DefaultQuota.Burst = N; }},
      {"--tenant-max-in-flight", 0,
       [](CliOptions &O, int64_t N) {
         O.Server.DefaultQuota.MaxInFlight = N;
       }},
      {"--tenant-max-queued", 0,
       [](CliOptions &O, int64_t N) { O.Server.DefaultQuota.MaxQueued = N; }},
      {"--tenant-fuel-rate", 0,
       [](CliOptions &O, int64_t N) {
         O.Server.DefaultQuota.FuelPerSec = (double)N;
       }},
      {"--compile-retries", 0,
       [](CliOptions &O, int64_t N) { O.Server.CompileRetries = (int)N; }},
      {"--retry-after-ms", 0,
       [](CliOptions &O, int64_t N) { O.Server.RetryAfterMs = N; }},
      {"--breaker-cooldown-micros", 0,
       [](CliOptions &O, int64_t N) { O.Server.Breaker.CooldownMicros = N; }},
      {"--drain-deadline-ms", 0,
       [](CliOptions &O, int64_t N) { O.DrainDeadlineMs = N; }},
      {"--adaptive-min-samples", 1,
       [](CliOptions &O, int64_t N) { O.Server.AdaptiveMinSamples = N; }},
      {"--adaptive-probe-every", 0,
       [](CliOptions &O, int64_t N) { O.Server.AdaptiveProbeEvery = N; }},
      {"--adaptive-drift-percent", 0,
       [](CliOptions &O, int64_t N) {
         O.Server.AdaptiveDriftThreshold = (double)N / 100.0;
       }},
      {"--adaptive-window", 0,
       [](CliOptions &O, int64_t N) { O.Server.AdaptiveWindow = N; }},
      {"--fault-compile-failures", 0,
       [](CliOptions &O, int64_t N) {
         O.Server.Faults.CompileFailures = (int)N;
       }},
      {"--fault-worker-stall-micros", 0,
       [](CliOptions &O, int64_t N) {
         O.Server.Faults.WorkerStallMicros = N;
       }},
      {"--fault-inflate-cost-bytes", 0,
       [](CliOptions &O, int64_t N) {
         O.Server.Faults.InflateCostBytes = (size_t)N;
       }},
  };

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string V;
    bool Handled = false;
    for (const IntFlag &F : IntFlags) {
      int64_t N = 0;
      bool Matched = false;
      if (!intOption(A, F.Name, F.Min, N, Matched))
        return false;
      if (Matched) {
        F.Apply(Opts, N);
        Handled = true;
        break;
      }
    }
    if (Handled)
      continue;
    if (A == "--fault-evict-mid-flight") {
      Opts.Server.Faults.EvictMidFlight = true;
    } else if (A == "--adaptive") {
      Opts.Server.Adaptive = true;
    } else if (A == "--health") {
      Opts.Health = true;
    } else if (A.rfind("--layout", 0) == 0) {
      if (!optionValue(A, V) || (V != "cyclic" && V != "block"))
        return cliError("flattend: --layout expects cyclic|block, got '%s'",
                        A);
      Opts.Server.Layout = V == "block" ? machine::Layout::Block
                                        : machine::Layout::Cyclic;
    } else if (A.rfind("--engine", 0) == 0) {
      if (!optionValue(A, V) || !interp::engineFromName(V, Opts.Server.Eng))
        return cliError("flattend: --engine expects "
                        "tree|bytecode|hostsimd|native, got '%s'",
                        A);
    } else if (A.rfind("--telemetry", 0) == 0) {
      if (!optionValue(A, V) || V.empty())
        return cliError("flattend: --telemetry expects a non-empty path, "
                        "got '%s'",
                        A);
      Opts.TelemetryPath = V;
    } else if (A == "--test-throw") {
      // Undocumented: fires the exception barrier (CI and the CLI test
      // assert the structured-diagnostic + exit-4 contract).
      Opts.TestThrow = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return false;
    } else {
      return cliError("flattend: unknown option '%s'", A);
    }
  }
  return true;
}

/// --health: compile and execute a builtin probe program in-process
/// under the configured engine/layout, verify the reply and the
/// accounting, print one status line. The fault drills are deliberately
/// NOT inherited - health answers "can this configuration serve", not
/// "do the drills still fail".
int healthCheck(const CliOptions &Opts) {
  serve::ServerOptions SO = Opts.Server;
  SO.Workers = 1;
  SO.Faults = serve::FaultPlan{};
  serve::ServerStats Stats;
  serve::Reply Rep;
  {
    serve::Server Server(SO);
    serve::Request R;
    R.Id = 1;
    R.Tenant = "health";
    R.Source = "PROGRAM HEALTH\n"
               "INTEGER K\n"
               "DISTRIBUTED INTEGER L(4)\n"
               "DISTRIBUTED INTEGER X(4, 3)\n"
               "INTEGER i\n"
               "INTEGER j\n"
               "BEGIN\n"
               "  DOALL i = 1, K\n"
               "    DO j = 1, L(i)\n"
               "      X(i, j) = i * j\n"
               "    ENDDO\n"
               "  ENDDO\n"
               "END\n";
    R.Ints = {{"K", 4}};
    R.IntArrays = {{"L", {3, 1, 2, 1}}};
    R.Lanes = std::min<int64_t>(4, SO.MaxLanes);
    R.Fuel = SO.MaxFuel > 0 ? std::min<int64_t>(100000, SO.MaxFuel) : 100000;
    R.DeadlineMs = 10'000;
    Rep = Server.submit(std::move(R)).get();
    Stats = Server.stats();
  }

  bool Healthy = Rep.Out == serve::Outcome::Served && Stats.consistent() &&
                 Stats.tenantsConsistent() && Rep.Tele.FuelSpent > 0;
  json::Value Status = json::Value::object();
  Status.set("health", Healthy ? "ok" : "bad");
  Status.set("engine", interp::engineName(SO.Eng));
  Status.set("outcome", serve::outcomeName(Rep.Out));
  Status.set("fuel_spent", Rep.Tele.FuelSpent);
  Status.set("consistent", Stats.consistent() && Stats.tenantsConsistent());
  if (!Rep.Error.empty())
    Status.set("error", Rep.Error);
  std::fputs((serve::toLine(Status) + "\n").c_str(), stdout);
  std::fflush(stdout);
  return Healthy ? 0 : 1;
}

/// EINTR-aware JSON-lines reader over fd 0. std::getline would restart
/// transparently around the drain signals, so the daemon reads raw and
/// splits lines itself; the truncated-record semantics of the stream
/// version are preserved (EOF mid-record and I/O-error mid-record are
/// distinguishable).
class LineReader {
public:
  struct Line {
    std::string Text;
    /// Final line arrived without its newline (EOF mid-record).
    bool Unterminated = false;
    /// The record was cut off by a read error, not by EOF.
    bool IoError = false;
  };

  /// False at end of input (EOF, I/O error with nothing buffered, or a
  /// drain signal).
  bool next(Line &Out) {
    for (;;) {
      if (GSignal)
        return false; // drain: stop consuming input immediately
      size_t Nl = Buf.find('\n', Pos);
      if (Nl != std::string::npos) {
        Out.Text = Buf.substr(Pos, Nl - Pos);
        Out.Unterminated = false;
        Out.IoError = false;
        Pos = Nl + 1;
        return true;
      }
      if (Done) {
        if (Pos < Buf.size()) {
          // Trailing partial record.
          Out.Text = Buf.substr(Pos);
          Out.Unterminated = true;
          Out.IoError = HadError;
          Pos = Buf.size();
          return true;
        }
        return false;
      }
      if (Pos > 0) {
        Buf.erase(0, Pos);
        Pos = 0;
      }
      char Tmp[1 << 16];
      ssize_t N = ::read(STDIN_FILENO, Tmp, sizeof(Tmp));
      if (N > 0) {
        Buf.append(Tmp, (size_t)N);
      } else if (N == 0) {
        Done = true;
      } else if (errno == EINTR) {
        continue; // the top of the loop checks GSignal
      } else {
        Done = true;
        HadError = true;
      }
    }
  }

private:
  std::string Buf;
  size_t Pos = 0;
  bool Done = false;
  bool HadError = false;
};

int realMain(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;
  if (Opts.TestThrow)
    throw std::runtime_error("--test-throw requested");
  if (Opts.Health)
    return healthCheck(Opts);

  installDrainHandlers();

  std::ofstream Telemetry;
  if (!Opts.TelemetryPath.empty()) {
    Telemetry.open(Opts.TelemetryPath, std::ios::app);
    if (!Telemetry) {
      std::fprintf(stderr, "flattend: cannot open '%s'\n",
                   Opts.TelemetryPath.c_str());
      return 2;
    }
  }

  serve::Server Server(Opts.Server);

  // Submit every line as it arrives (so the admission queue sees real
  // pressure), remembering futures in submission order; bad JSON never
  // reaches the server and is answered inline.
  struct Pending {
    std::future<serve::Reply> F;
    std::optional<serve::Reply> Immediate;
  };
  std::vector<Pending> Replies;
  int64_t BadLines = 0;
  LineReader Reader;
  LineReader::Line Line;
  uint64_t LineNo = 0;
  while (Reader.next(Line)) {
    ++LineNo;
    if (Line.IoError) {
      // A read error can leave a partial record: it still gets a
      // structured per-request reply - silently dropping it would
      // desync a caller matching replies to requests by line, and
      // miscounting it would trip the exit-5 self-check below.
      ++BadLines;
      serve::Reply Rep;
      Rep.Id = LineNo;
      Rep.Out = serve::Outcome::CompileError;
      Rep.Error = "request line " + std::to_string(LineNo) +
                  " truncated by a stream I/O error after " +
                  std::to_string(Line.Text.size()) + " bytes";
      Pending P;
      P.Immediate = std::move(Rep);
      Replies.push_back(std::move(P));
      continue;
    }
    if (Line.Text.find_first_not_of(" \t\r") == std::string::npos) {
      --LineNo; // blank lines are skipped and unnumbered, as before
      continue;
    }
    // An unterminated final line may have been cut off mid-write (EOF
    // mid-record). If it still parses as a complete request it is
    // accepted; if not, the reply says "truncated", not "bad JSON".
    auto Parsed = json::Value::parse(Line.Text);
    Pending P;
    if (!Parsed) {
      ++BadLines;
      serve::Reply Rep;
      Rep.Id = LineNo;
      Rep.Out = serve::Outcome::CompileError;
      Rep.Error =
          Line.Unterminated
              ? "request line " + std::to_string(LineNo) +
                    " truncated (EOF mid-record): " +
                    Parsed.error().render()
              : "request line " + std::to_string(LineNo) +
                    " is not valid JSON: " + Parsed.error().render();
      P.Immediate = std::move(Rep);
    } else {
      auto Req = serve::parseRequest(*Parsed);
      if (!Req) {
        ++BadLines;
        serve::Reply Rep;
        Rep.Id = LineNo;
        Rep.Out = serve::Outcome::CompileError;
        Rep.Error =
            "request line " + std::to_string(LineNo) + ": " + Req.error();
        P.Immediate = std::move(Rep);
      } else {
        P.F = Server.submit(std::move(*Req));
      }
    }
    Replies.push_back(std::move(P));
  }

  // Graceful drain on SIGINT/SIGTERM: admission closes, everything
  // already admitted finishes (queued requests still unpicked at the
  // hard deadline shed with the draining status), and every future
  // below is ready once drain() returns.
  bool Drained = false;
  bool DrainClean = true;
  if (GSignal) {
    Drained = true;
    DrainClean = Server.drain(Opts.DrainDeadlineMs);
  }

  int64_t Answered = 0;
  for (Pending &P : Replies) {
    serve::Reply Rep =
        P.Immediate ? std::move(*P.Immediate) : P.F.get();
    ++Answered;
    std::fputs((serve::toLine(serve::toJson(Rep)) + "\n").c_str(), stdout);
    std::fflush(stdout);
    if (Telemetry.is_open())
      Telemetry << serve::toLine(serve::telemetryJson(Rep)) << "\n";
  }
  if (Telemetry.is_open())
    Telemetry.flush();

  // Summary + self-check: the four outcome buckets must partition the
  // submitted count (globally and per tenant), and every input line
  // must have been answered.
  serve::ServerStats Stats = Server.stats();
  json::Value Summary = json::Value::object();
  Summary.set("summary", true);
  Summary.set("engine", interp::engineName(Opts.Server.Eng));
  Summary.set("adaptive", Opts.Server.Adaptive);
  Summary.set("lines", (int64_t)Replies.size());
  Summary.set("bad_lines", BadLines);
  Summary.set("answered", Answered);
  Summary.set("drained", Drained);
  if (Drained)
    Summary.set("drain_clean", DrainClean);
  Summary.set("stats", serve::toJson(Stats));
  std::fputs((serve::toLine(Summary) + "\n").c_str(), stdout);
  std::fflush(stdout);

  bool Consistent = Stats.consistent() && Stats.tenantsConsistent() &&
                    Answered == (int64_t)Replies.size() &&
                    Stats.Submitted + BadLines == (int64_t)Replies.size();
  if (!Consistent) {
    std::fprintf(stderr, "flattend: accounting inconsistency: %s\n",
                 serve::toLine(serve::toJson(Stats)).c_str());
    return 5;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // Top-level exception barrier: an escaped exception is a structured
  // one-line diagnostic and a distinct exit code, never std::terminate.
  try {
    return realMain(Argc, Argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "flattend: internal error: %s\n", E.what());
    return 4;
  } catch (...) {
    std::fprintf(stderr, "flattend: internal error: unknown exception\n");
    return 4;
  }
}
