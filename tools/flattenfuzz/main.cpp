//===- tools/flattenfuzz/main.cpp - Differential fuzzing driver -*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// flattenfuzz: randomized differential testing of the flattening
/// pipeline. Generates seeded loop-nest programs, runs each through
/// every (stage, executor) variant, and reports any divergence from the
/// scalar reference; diverging cases are shrunk and written as replay
/// files for the regression corpus.
///
/// Examples:
///   flattenfuzz --seed=1 --count=500          # the CI smoke run
///   flattenfuzz --seed=1 --time-budget=30     # fuzz for ~30 seconds
///   flattenfuzz --campaign=faults --count=200 # fault-injection sweep
///   flattenfuzz --replay tests/fuzz/corpus/case.json
///   flattenfuzz --seed=7 --export=case.json   # checkpoint one case
///
/// Exit codes: 0 success, 1 divergence (or replay verdict mismatch),
/// 2 bad command line or unreadable file.
///
//===----------------------------------------------------------------------===//

#include "fuzz/AdaptiveCampaign.h"
#include "fuzz/Campaign.h"
#include "fuzz/Corpus.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "fuzz/ServeCampaign.h"
#include "fuzz/Shrinker.h"
#include "interp/Trap.h"
#include "ir/Printer.h"
#include "ir/Walk.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace simdflat;
using namespace simdflat::fuzz;

namespace {

struct CliOptions {
  uint64_t Seed = 1;
  int64_t Count = 100;
  int64_t TimeBudgetSec = 0; // 0 = no wall-clock cap
  std::string ReplayPath;
  std::string ExportPath;
  std::string Campaign;          // "" or "faults"
  std::string OutDir = "";       // where shrunk divergences are written
  bool BreakGuardCache = false;  // seeded-bug demonstration switch
  bool Native = false;           // quad-engine oracle (JIT per case)
};

void usage() {
  std::fprintf(
      stderr,
      "usage: flattenfuzz [options]\n"
      "  --seed=N           first seed (default 1)\n"
      "  --count=N          cases to run (default 100)\n"
      "  --time-budget=SEC  stop after SEC seconds of fuzzing\n"
      "  --replay PATH      run one corpus case and check its verdict\n"
      "  --campaign=faults  fault-injection campaign (fuel, deadline,\n"
      "                     hostile externs, NaN inputs; default\n"
      "                     --count=200)\n"
      "  --campaign=serve   serving-core fault campaign (mixed hostile\n"
      "                     traffic, queue saturation, injected compile\n"
      "                     failures, mid-flight eviction)\n"
      "  --campaign=adaptive\n"
      "                     adaptive-strategy campaign (drifting trip\n"
      "                     distributions, strategy flips under cache\n"
      "                     chaos, poisoned-primary fallback; exactness\n"
      "                     and accounting must hold throughout)\n"
      "  --export=PATH      write the --seed case as a corpus file\n"
      "  --out=DIR          directory for shrunk divergence cases\n"
      "  --break-guard-cache\n"
      "                     seed the known GuardIntro-cache bug (the\n"
      "                     oracle must catch it; for demonstration)\n"
      "  --native           quad-engine oracle: also run every variant\n"
      "                     under Engine::Native (one host-compiler\n"
      "                     invocation per distinct program shape -\n"
      "                     keep --count small; degrades to bytecode\n"
      "                     on toolchain-less builds)\n"
      "exit codes: 0 success, 1 divergence/verdict mismatch, 2 bad\n"
      "command line or unreadable file\n");
}

bool parseInt(const std::string &S, int64_t &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size() || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

[[nodiscard]] bool cliError(const char *Fmt, const std::string &Arg) {
  std::fprintf(stderr, Fmt, Arg.c_str());
  std::fprintf(stderr, "\n");
  usage();
  return false;
}

bool optionValue(const std::string &A, std::string &Out) {
  size_t Eq = A.find('=');
  if (Eq == std::string::npos)
    return false;
  Out = A.substr(Eq + 1);
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  bool CountSet = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string V;
    int64_t N = 0;
    if (A.rfind("--seed", 0) == 0) {
      if (!optionValue(A, V) || !parseInt(V, N) || N < 0)
        return cliError("flattenfuzz: --seed expects a non-negative "
                        "integer, got '%s'",
                        A);
      Opts.Seed = static_cast<uint64_t>(N);
    } else if (A.rfind("--count", 0) == 0) {
      if (!optionValue(A, V) || !parseInt(V, N) || N <= 0)
        return cliError("flattenfuzz: --count expects a positive "
                        "integer, got '%s'",
                        A);
      Opts.Count = N;
      CountSet = true;
    } else if (A.rfind("--time-budget", 0) == 0) {
      if (!optionValue(A, V) || !parseInt(V, N) || N < 0)
        return cliError("flattenfuzz: --time-budget expects seconds, "
                        "got '%s'",
                        A);
      Opts.TimeBudgetSec = N;
    } else if (A == "--replay") {
      if (I + 1 >= Argc)
        return cliError("flattenfuzz: %s expects a file argument", A);
      Opts.ReplayPath = Argv[++I];
    } else if (A.rfind("--replay", 0) == 0) {
      if (!optionValue(A, V) || V.empty())
        return cliError("flattenfuzz: --replay expects a path, got '%s'",
                        A);
      Opts.ReplayPath = V;
    } else if (A.rfind("--campaign", 0) == 0) {
      if (!optionValue(A, V) ||
          (V != "faults" && V != "serve" && V != "adaptive"))
        return cliError("flattenfuzz: --campaign expects 'faults', "
                        "'serve' or 'adaptive', got '%s'",
                        A);
      Opts.Campaign = V;
    } else if (A.rfind("--export", 0) == 0) {
      if (!optionValue(A, V) || V.empty())
        return cliError("flattenfuzz: --export expects a path, got '%s'",
                        A);
      Opts.ExportPath = V;
    } else if (A.rfind("--out", 0) == 0) {
      if (!optionValue(A, V) || V.empty())
        return cliError("flattenfuzz: --out expects a directory, "
                        "got '%s'",
                        A);
      Opts.OutDir = V;
    } else if (A == "--break-guard-cache") {
      Opts.BreakGuardCache = true;
    } else if (A == "--native") {
      Opts.Native = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return false;
    } else {
      return cliError("flattenfuzz: unknown argument '%s'", A);
    }
  }
  if (!Opts.Campaign.empty() && !CountSet)
    Opts.Count = 200;
  return true;
}

/// Stamps the reference verdict of \p OR into \p C so a corpus replay
/// can assert it.
void recordVerdict(FuzzCase &C, const OracleResult &OR) {
  const VariantOutcome &Ref = OR.reference();
  if (Ref.T) {
    C.Expect = ExpectedVerdict::Trap;
    C.ExpectTrapKind = interp::trapKindName(Ref.T->Kind);
  } else {
    C.Expect = ExpectedVerdict::Complete;
    C.ExpectTrapKind.clear();
  }
}

int runReplay(const CliOptions &Opts) {
  Expected<FuzzCase, CorpusError> C = readCase(Opts.ReplayPath);
  if (!C) {
    std::fprintf(stderr, "flattenfuzz: %s\n", C.error().Message.c_str());
    return 2;
  }
  OracleOptions OO;
  OO.BreakGuardSideEffectCache = Opts.BreakGuardCache;
  OO.Native = Opts.Native;
  OracleResult OR = runOracle(*C, OO);
  if (OR.Diverged) {
    std::fprintf(stderr, "flattenfuzz: %s diverged:\n%s",
                 C->Name.c_str(), OR.report().c_str());
    return 1;
  }
  const VariantOutcome &Ref = OR.reference();
  bool VerdictOk = true;
  switch (C->Expect) {
  case ExpectedVerdict::Any:
    break;
  case ExpectedVerdict::Complete:
    VerdictOk = !Ref.T;
    break;
  case ExpectedVerdict::Trap:
    VerdictOk = Ref.T && interp::trapKindName(Ref.T->Kind) ==
                             C->ExpectTrapKind;
    break;
  }
  if (!VerdictOk) {
    std::fprintf(stderr,
                 "flattenfuzz: %s verdict mismatch: expected %s, got "
                 "%s\n",
                 C->Name.c_str(),
                 C->Expect == ExpectedVerdict::Trap
                     ? ("trap " + C->ExpectTrapKind).c_str()
                     : "complete",
                 Ref.T ? Ref.T->render().c_str() : "complete");
    return 1;
  }
  std::printf("flattenfuzz: %s ok (%s)\n", C->Name.c_str(),
              Ref.T ? Ref.T->render().c_str() : "completed");
  return 0;
}

int runServe(const CliOptions &Opts) {
  ServeCampaignOptions SO;
  SO.BaseSeed = Opts.Seed;
  // --count sizes the mixed-traffic phase; the saturation, breaker and
  // eviction phases are fixed-shape.
  SO.Count = static_cast<int>(std::min<int64_t>(Opts.Count, 10'000));
  ServeCampaignResult SR = runServeCampaign(SO);
  for (const std::string &F : SR.Failures)
    std::fprintf(stderr, "flattenfuzz: %s\n", F.c_str());
  std::printf("flattenfuzz: serve campaign submitted %lld request(s): "
              "%lld served, %lld trapped, %lld shed, %lld compile "
              "error(s); %zu failure(s)\n",
              static_cast<long long>(SR.Submitted),
              static_cast<long long>(SR.Served),
              static_cast<long long>(SR.Trapped),
              static_cast<long long>(SR.Shed),
              static_cast<long long>(SR.CompileErrors),
              SR.Failures.size());
  return SR.ok() ? 0 : 1;
}

int runAdaptive(const CliOptions &Opts) {
  AdaptiveCampaignOptions AO;
  AO.BaseSeed = Opts.Seed;
  // --count sizes each drift regime; the chaos and fallback phases
  // scale with it or are fixed-shape.
  AO.Count = static_cast<int>(std::min<int64_t>(Opts.Count, 1'000));
  AdaptiveCampaignResult AR = runAdaptiveCampaign(AO);
  for (const std::string &F : AR.Failures)
    std::fprintf(stderr, "flattenfuzz: %s\n", F.c_str());
  std::string Strategies;
  for (const std::string &S : AR.StrategiesSeen)
    Strategies += (Strategies.empty() ? "" : ",") + S;
  std::printf("flattenfuzz: adaptive campaign submitted %lld "
              "request(s): %lld served, %lld trapped, %lld shed, %lld "
              "compile error(s); %lld decision(s), %lld "
              "respecialization(s), strategies [%s]; %zu failure(s)\n",
              static_cast<long long>(AR.Submitted),
              static_cast<long long>(AR.Served),
              static_cast<long long>(AR.Trapped),
              static_cast<long long>(AR.Shed),
              static_cast<long long>(AR.CompileErrors),
              static_cast<long long>(AR.Decisions),
              static_cast<long long>(AR.Respecializations),
              Strategies.c_str(), AR.Failures.size());
  return AR.ok() ? 0 : 1;
}

int runCampaign(const CliOptions &Opts) {
  CampaignOptions CO;
  CO.BaseSeed = Opts.Seed;
  CO.Count = static_cast<int>(Opts.Count);
  CampaignResult CR = runFaultCampaign(CO);
  for (const std::string &F : CR.Failures)
    std::fprintf(stderr, "flattenfuzz: %s\n", F.c_str());
  std::printf("flattenfuzz: campaign ran %d fault cases (%d trapped), "
              "%zu failure(s)\n",
              CR.Ran, CR.Trapped, CR.Failures.size());
  return CR.ok() ? 0 : 1;
}

int runExport(const CliOptions &Opts) {
  FuzzCase C = generateCase(Opts.Seed);
  recordVerdict(C, runOracle(C));
  if (!writeCase(C, Opts.ExportPath)) {
    std::fprintf(stderr, "flattenfuzz: cannot write '%s'\n",
                 Opts.ExportPath.c_str());
    return 2;
  }
  std::printf("flattenfuzz: wrote %s (%s)\n", Opts.ExportPath.c_str(),
              C.Name.c_str());
  return 0;
}

int runFuzz(const CliOptions &Opts) {
  OracleOptions OO;
  OO.BreakGuardSideEffectCache = Opts.BreakGuardCache;
  OO.Native = Opts.Native;
  GeneratorOptions GO;
  // The seeded-bug demonstration needs the guard's side effect present,
  // or the broken cache is unobservable.
  GO.ForceGuardSideEffect = Opts.BreakGuardCache;

  auto Start = std::chrono::steady_clock::now();
  int64_t Ran = 0, Divergences = 0;
  for (int64_t I = 0; I < Opts.Count; ++I) {
    if (Opts.TimeBudgetSec > 0) {
      auto Elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
      if (Elapsed >= Opts.TimeBudgetSec)
        break;
    }
    uint64_t Seed = Opts.Seed + static_cast<uint64_t>(I);
    FuzzCase C = generateCase(Seed, GO);
    OracleResult OR = runOracle(C, OO);
    ++Ran;
    if (!OR.Diverged)
      continue;
    ++Divergences;
    std::fprintf(stderr, "flattenfuzz: seed %llu diverged:\n%s",
                 static_cast<unsigned long long>(Seed),
                 OR.report().c_str());
    ShrinkResult SR = shrinkCase(C, OO);
    recordVerdict(SR.Case, runOracle(SR.Case, OO));
    std::fprintf(stderr,
                 "flattenfuzz: shrunk to %zu statement(s) in %d "
                 "step(s):\n%s",
                 ir::countStmts(SR.Case.Prog.body()), SR.StepsTried,
                 ir::printProgram(SR.Case.Prog).c_str());
    if (!Opts.OutDir.empty()) {
      std::string Path = Opts.OutDir + "/" + SR.Case.Name + ".json";
      if (writeCase(SR.Case, Path))
        std::fprintf(stderr, "flattenfuzz: wrote %s\n", Path.c_str());
      else
        std::fprintf(stderr, "flattenfuzz: cannot write %s\n",
                     Path.c_str());
    }
  }
  std::printf("flattenfuzz: ran %lld case(s), %lld divergence(s)\n",
              static_cast<long long>(Ran),
              static_cast<long long>(Divergences));
  return Divergences == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;
  if (!Opts.ReplayPath.empty())
    return runReplay(Opts);
  if (Opts.Campaign == "serve")
    return runServe(Opts);
  if (Opts.Campaign == "adaptive")
    return runAdaptive(Opts);
  if (!Opts.Campaign.empty())
    return runCampaign(Opts);
  if (!Opts.ExportPath.empty())
    return runExport(Opts);
  return runFuzz(Opts);
}
