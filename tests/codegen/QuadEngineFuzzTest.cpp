//===- tests/codegen/QuadEngineFuzzTest.cpp --------------------*- C++ -*-===//
//
// A bounded quad-engine oracle sweep: random programs through the full
// transform pipeline, executed by tree, bytecode, host-SIMD AND the
// JIT'd native tier, with every observable held to exact equality and
// trip histograms compared bitwise. Bounded to a handful of seeds
// because each distinct program shape costs one host-compiler
// invocation; the long sweep lives in flattenfuzz --native (CI's
// codegen-smoke job). Passes unchanged on SIMDFLAT_ENABLE_JIT=OFF
// builds, where Native degrades to bytecode inside the oracle.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"

#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::fuzz;

namespace {

TEST(QuadEngineFuzz, SeedSweepIsDivergenceFree) {
  OracleOptions OO;
  OO.Native = true;
  for (uint64_t Seed : {3u, 11u, 29u, 47u, 83u, 131u}) {
    FuzzCase C = generateCase(Seed);
    OracleResult R = runOracle(C, OO);
    EXPECT_FALSE(R.Diverged)
        << "seed " << Seed << ":\n"
        << R.report() << ir::printProgram(C.Prog);
  }
}

TEST(QuadEngineFuzz, TrappingCaseAgreesNatively) {
  // A fuel-bounded fault case must trap with the same structured Trap
  // under the native tier as everywhere else.
  OracleOptions OO;
  OO.Native = true;
  FuzzCase C = makeFaultCase(5, FaultKind::Fuel);
  OracleResult R = runOracle(C, OO);
  EXPECT_FALSE(R.Diverged) << R.report();
  EXPECT_TRUE(R.reference().T.has_value());
}

} // namespace
