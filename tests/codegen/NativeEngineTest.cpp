//===- tests/codegen/NativeEngineTest.cpp ----------------------*- C++ -*-===//
//
// Quad-engine equivalence for the native codegen tier: Engine::Native
// must be observably identical to the tree/bytecode/hostsimd engines on
// stores, every RunStats counter, traces, trip histograms and traps
// (kind, lanes, location, detail) - and must degrade to the bytecode
// path, not fail, when no toolchain can be invoked. On builds
// configured with SIMDFLAT_ENABLE_JIT=OFF every test here still passes:
// Native degrades everywhere and the equivalence checks compare
// bytecode against itself.
//
//===----------------------------------------------------------------------===//

#include "codegen/JitCache.h"
#include "codegen/NativeEngine.h"
#include "interp/SimdInterp.h"
#include "transform/Pipeline.h"
#include "workloads/PaperKernels.h"

#include "ir/Builder.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

namespace {

machine::MachineConfig lanes(int64_t Gran, machine::Layout L) {
  machine::MachineConfig M;
  M.Name = "test-" + std::to_string(Gran);
  M.Processors = Gran;
  M.Gran = Gran;
  M.DataLayout = L;
  return M;
}

void expectSameStats(const RunStats &A, const RunStats &B) {
  EXPECT_EQ(A.WorkSteps, B.WorkSteps);
  EXPECT_EQ(A.Instructions, B.Instructions);
  EXPECT_EQ(A.WorkActiveLanes, B.WorkActiveLanes);
  EXPECT_EQ(A.WorkTotalLanes, B.WorkTotalLanes);
  EXPECT_EQ(A.CommAccesses, B.CommAccesses);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Seconds, B.Seconds);
}

void expectSameTripNests(const RunStats &A, const RunStats &B) {
  ASSERT_EQ(A.TripNests.size(), B.TripNests.size());
  for (size_t I = 0; I < A.TripNests.size(); ++I) {
    const NestTripStats &X = A.TripNests[I], &Y = B.TripNests[I];
    EXPECT_EQ(X.Name, Y.Name);
    EXPECT_EQ(X.Depth, Y.Depth);
    EXPECT_EQ(X.Hist.Exact, Y.Hist.Exact) << X.Name;
    EXPECT_EQ(X.Hist.Log2, Y.Hist.Log2) << X.Name;
    EXPECT_EQ(X.Hist.Samples, Y.Hist.Samples) << X.Name;
    EXPECT_EQ(X.Hist.Sum, Y.Hist.Sum) << X.Name;
    EXPECT_EQ(X.Hist.Max, Y.Hist.Max) << X.Name;
  }
}

void expectSameTrap(const Trap &A, const Trap &B) {
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(A.Lanes, B.Lanes);
  EXPECT_EQ(A.Location, B.Location);
  EXPECT_EQ(A.Detail, B.Detail);
}

constexpr Engine AllEngines[] = {Engine::Tree, Engine::Bytecode,
                                 Engine::HostSimd, Engine::Native};

TEST(NativeEngine, FlattenedExampleQuadEquivalence) {
  // The paper's flattened EXAMPLE with a recorded trace: stores, stats,
  // step-by-step trace values/masks and trip histograms must be
  // identical across all four engines.
  ExampleSpec Spec = paperExampleSpec();
  transform::PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  auto C = transform::compileForSimdExec(makeExample(Spec), PO);
  ASSERT_TRUE(static_cast<bool>(C));
  machine::MachineConfig M = lanes(2, machine::Layout::Cyclic);
  SimdRunResult R[4];
  std::vector<int64_t> X[4];
  int I = 0;
  for (Engine E : AllEngines) {
    RunOptions O;
    O.WorkTargets = {"X"};
    O.Watch = {"i", "j"};
    O.Eng = E;
    SimdInterp Interp(C->Prog, M, nullptr, O);
    if (E != Engine::Tree)
      Interp.setCompiled(C->Code);
    Interp.store().setInt("K", Spec.K);
    Interp.store().setIntArray("L", Spec.L);
    R[I] = Interp.run().value();
    X[I] = Interp.store().getIntArray("X");
    ++I;
  }
  for (int J : {1, 2, 3}) {
    EXPECT_EQ(X[0], X[J]) << engineName(AllEngines[J]);
    expectSameStats(R[0].Stats, R[J].Stats);
    ASSERT_EQ(R[0].Tr.Steps.size(), R[J].Tr.Steps.size());
    for (size_t S = 0; S < R[0].Tr.Steps.size(); ++S) {
      EXPECT_EQ(R[0].Tr.Steps[S].Values, R[J].Tr.Steps[S].Values);
      EXPECT_EQ(R[0].Tr.Steps[S].Active, R[J].Tr.Steps[S].Active);
    }
  }
  // Trip histograms: tree records none; the lowered engines agree
  // bitwise among themselves.
  expectSameTripNests(R[1].Stats, R[2].Stats);
  expectSameTripNests(R[1].Stats, R[3].Stats);
  // When this build can JIT, the run must actually have gone native.
  if (codegen::nativeAvailable()) {
    EXPECT_EQ(R[3].EngineUsed, Engine::Native);
  } else {
    EXPECT_EQ(R[3].EngineUsed, Engine::Bytecode);
  }
}

TEST(NativeEngine, OutOfBoundsTrapIdentity) {
  // A lane-varying gather where some active lane runs off the end: the
  // native module must collect the same faulting lane set and render
  // the same location/detail as every other engine.
  Program P("oob");
  P.setDialect(Dialect::F90Simd);
  P.addVar("A", ScalarKind::Int, {4}, Dist::Distributed);
  P.addVar("v", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(B.set("v", B.laneIndex()));
  // Lane 4 reads A(5): out of bounds on an active lane.
  P.body().push_back(
      B.set("v", B.at("A", B.add(B.var("v"), B.lit(1)))));
  machine::MachineConfig M = lanes(4, machine::Layout::Cyclic);
  Trap T[4];
  int I = 0;
  for (Engine E : AllEngines) {
    RunOptions O;
    O.Eng = E;
    SimdInterp Interp(P, M, nullptr, O);
    auto R = Interp.run();
    ASSERT_FALSE(R) << engineName(E);
    T[I++] = R.error();
  }
  EXPECT_EQ(T[0].Kind, TrapKind::OutOfBounds);
  EXPECT_EQ(T[0].Lanes, (std::vector<int64_t>{3}));
  for (int J : {1, 2, 3})
    expectSameTrap(T[0], T[J]);
}

TEST(NativeEngine, FuelTrapIdentity) {
  // The watchdog fires after the same charged instruction under every
  // engine - the native module counts charges exactly like charge().
  ExampleSpec Spec = paperExampleSpec();
  transform::PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  auto C = transform::compileForSimdExec(makeExample(Spec), PO);
  ASSERT_TRUE(static_cast<bool>(C));
  machine::MachineConfig M = lanes(4, machine::Layout::Cyclic);
  Trap T[4];
  int I = 0;
  for (Engine E : AllEngines) {
    RunOptions O;
    O.Eng = E;
    O.Fuel = 25;
    SimdInterp Interp(C->Prog, M, nullptr, O);
    if (E != Engine::Tree)
      Interp.setCompiled(C->Code);
    Interp.store().setInt("K", Spec.K);
    Interp.store().setIntArray("L", Spec.L);
    auto R = Interp.run();
    ASSERT_FALSE(R) << engineName(E);
    T[I++] = R.error();
  }
  EXPECT_EQ(T[0].Kind, TrapKind::FuelExhausted);
  for (int J : {1, 2, 3})
    expectSameTrap(T[0], T[J]);
}

TEST(NativeEngine, ExternCallsPerActiveLaneInOrder) {
  // Extern invocation order, arguments, and work-call accounting cross
  // the ABI: the host-side CallLane must replay the interpreter's
  // per-active-lane order exactly.
  Program P("sub");
  P.setDialect(Dialect::F90Simd);
  P.addVar("v", ScalarKind::Int, {}, Dist::Replicated);
  P.addExtern("Probe", ScalarKind::Int, /*Pure=*/false,
              /*IsSubroutine=*/true);
  Builder B(P);
  P.body().push_back(B.set("v", B.laneIndex()));
  std::vector<ExprPtr> Args;
  Args.push_back(B.var("v"));
  P.body().push_back(B.where(
      B.le(B.var("v"), B.lit(2)),
      Builder::body(B.callSub("Probe", std::move(Args)))));
  machine::MachineConfig M = lanes(4, machine::Layout::Cyclic);
  std::vector<int64_t> Logs[4];
  RunStats Stats[4];
  int I = 0;
  for (Engine E : AllEngines) {
    ExternRegistry Reg;
    std::vector<int64_t> &Seen = Logs[I];
    Reg.bind(
        "Probe",
        [&Seen](std::span<const ScalVal> A) {
          Seen.push_back(A[0].I);
          return ScalVal::makeInt(0);
        },
        /*Cost=*/7.0);
    RunOptions O;
    O.Eng = E;
    O.WorkCalls = {"Probe"};
    SimdInterp Interp(P, M, &Reg, O);
    Stats[I] = Interp.run().value().Stats;
    ++I;
  }
  EXPECT_EQ(Logs[0], (std::vector<int64_t>{1, 2}));
  for (int J : {1, 2, 3}) {
    EXPECT_EQ(Logs[0], Logs[J]) << engineName(AllEngines[J]);
    expectSameStats(Stats[0], Stats[J]);
  }
}

TEST(NativeEngine, ExternFailureTrapIdentity) {
  // A throwing extern: ExternFailure with the failing lane, identical
  // detail text, after the same committed prefix of calls.
  Program P("fail");
  P.setDialect(Dialect::F90Simd);
  P.addVar("v", ScalarKind::Int, {}, Dist::Replicated);
  P.addExtern("Probe", ScalarKind::Int, /*Pure=*/false,
              /*IsSubroutine=*/true);
  Builder B(P);
  P.body().push_back(B.set("v", B.laneIndex()));
  std::vector<ExprPtr> Args;
  Args.push_back(B.var("v"));
  P.body().push_back(B.callSub("Probe", std::move(Args)));
  machine::MachineConfig M = lanes(4, machine::Layout::Cyclic);
  Trap T[4];
  std::vector<int64_t> Logs[4];
  int I = 0;
  for (Engine E : AllEngines) {
    ExternRegistry Reg;
    std::vector<int64_t> &Seen = Logs[I];
    Reg.bind("Probe", [&Seen](std::span<const ScalVal> A) {
      if (A[0].I == 3)
        throw ExternError{"lane three refuses"};
      Seen.push_back(A[0].I);
      return ScalVal::makeInt(0);
    });
    RunOptions O;
    O.Eng = E;
    SimdInterp Interp(P, M, &Reg, O);
    auto R = Interp.run();
    ASSERT_FALSE(R) << engineName(E);
    T[I++] = R.error();
  }
  EXPECT_EQ(T[0].Kind, TrapKind::ExternFailure);
  EXPECT_EQ(T[0].Lanes, (std::vector<int64_t>{2}));
  for (int J : {1, 2, 3}) {
    expectSameTrap(T[0], T[J]);
    EXPECT_EQ(Logs[0], Logs[J]);
  }
}

TEST(NativeEngine, ExpiredDeadlineTrapIdentity) {
  // A deadline already in the past traps at the first poll point with
  // the same statement location and detail under every engine.
  ExampleSpec Spec = paperExampleSpec();
  transform::PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  auto C = transform::compileForSimdExec(makeExample(Spec), PO);
  ASSERT_TRUE(static_cast<bool>(C));
  machine::MachineConfig M = lanes(4, machine::Layout::Cyclic);
  Trap T[4];
  int I = 0;
  for (Engine E : AllEngines) {
    RunOptions O;
    O.Eng = E;
    O.Deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(5);
    SimdInterp Interp(C->Prog, M, nullptr, O);
    if (E != Engine::Tree)
      Interp.setCompiled(C->Code);
    Interp.store().setInt("K", Spec.K);
    Interp.store().setIntArray("L", Spec.L);
    auto R = Interp.run();
    ASSERT_FALSE(R) << engineName(E);
    T[I++] = R.error();
  }
  EXPECT_EQ(T[0].Kind, TrapKind::DeadlineExpired);
  for (int J : {1, 2, 3})
    expectSameTrap(T[0], T[J]);
}

TEST(NativeEngine, BlockLayoutForall) {
  // Block layout exercises the other FaLayerMask/laneOf emission path.
  Program P("fb");
  P.setDialect(Dialect::F90Simd);
  P.addVar("A", ScalarKind::Int, {10}, Dist::Distributed);
  P.addVar("e", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(B.forall(
      "e", B.lit(1), B.lit(10), nullptr,
      Builder::body(B.assign(B.at("A", B.var("e")),
                             B.mul(B.var("e"), B.lit(3))))));
  machine::MachineConfig M = lanes(4, machine::Layout::Block);
  std::vector<int64_t> Want;
  for (int64_t E = 1; E <= 10; ++E)
    Want.push_back(3 * E);
  RunStats Stats[4];
  int I = 0;
  for (Engine E : AllEngines) {
    RunOptions O;
    O.Eng = E;
    SimdInterp Interp(P, M, nullptr, O);
    Stats[I] = Interp.run().value().Stats;
    EXPECT_EQ(Interp.store().getIntArray("A"), Want) << engineName(E);
    EXPECT_EQ(Stats[I].CommAccesses, 0) << engineName(E);
    ++I;
  }
  for (int J : {1, 2, 3})
    expectSameStats(Stats[0], Stats[J]);
}

TEST(NativeEngine, DegradesToBytecodeWithoutCompiler) {
  // Pointing the JIT at a nonexistent compiler and an uncreatable
  // artifact directory (so no prior on-disk .so can satisfy the build
  // either) must not fail the run: the result is computed by the
  // bytecode engine and EngineUsed says so. Uses a distinct lane count
  // so no earlier test's in-process memo can satisfy this program.
  ::setenv("SIMDFLAT_JIT_CC", "/nonexistent/compiler-for-fallback-test",
           1);
  ::setenv("SIMDFLAT_JIT_DIR", "/dev/null/no-jit-dir", 1);
  ExampleSpec Spec = paperExampleSpec();
  transform::PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  auto C = transform::compileForSimdExec(makeExample(Spec), PO);
  ASSERT_TRUE(static_cast<bool>(C));
  machine::MachineConfig M = lanes(8, machine::Layout::Cyclic);
  RunOptions O;
  O.Eng = Engine::Native;
  SimdInterp Interp(C->Prog, M, nullptr, O);
  Interp.setCompiled(C->Code);
  Interp.store().setInt("K", Spec.K);
  Interp.store().setIntArray("L", Spec.L);
  SimdRunResult R = Interp.run().value();
  ::unsetenv("SIMDFLAT_JIT_CC");
  ::unsetenv("SIMDFLAT_JIT_DIR");
  EXPECT_EQ(R.EngineUsed, Engine::Bytecode);
  EXPECT_GT(R.Stats.Instructions, 0);
  // The failed compile is a cached outcome, visible in the stats.
  if (codegen::jitAvailable()) {
    EXPECT_GE(codegen::jitStats().Failures, 1);
  }
}

} // namespace
