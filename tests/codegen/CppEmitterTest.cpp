//===- tests/codegen/CppEmitterTest.cpp ------------------------*- C++ -*-===//
//
// Contract tests for codegen::emitCpp and the JitCache keying layer
// that do not need a host toolchain: which programs the emitter
// accepts, what the generated TU must structurally contain, and that
// source keys are stable and content-sensitive.
//
//===----------------------------------------------------------------------===//

#include "codegen/CppEmitter.h"
#include "codegen/JitCache.h"
#include "exec/Lower.h"
#include "transform/Pipeline.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::workloads;

namespace {

std::string emitExample() {
  transform::PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  auto C = transform::compileForSimdExec(
      makeExample(paperExampleSpec()), PO);
  EXPECT_TRUE(static_cast<bool>(C));
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  return codegen::emitCpp(*C->Code, C->Prog, M);
}

TEST(CppEmitter, SimdProgramEmitsEntryAndAbiGuard) {
  std::string Src = emitExample();
  ASSERT_FALSE(Src.empty());
  // Structural landmarks the loader and the ABI contract rely on.
  EXPECT_NE(Src.find("simdflat_native_run"), std::string::npos);
  EXPECT_NE(Src.find("SfContext"), std::string::npos);
  EXPECT_NE(Src.find("AbiVersion"), std::string::npos);
  EXPECT_NE(Src.find("return 1;"), std::string::npos);
  // Masked execution scaffolding must be present.
  EXPECT_NE(Src.find("MaskCur"), std::string::npos);
  // Real-constant pools are emitted as bit-exact hexfloat literals.
  EXPECT_EQ(Src.find("e+0"), std::string::npos)
      << "decimal real literal leaked into generated source";
}

TEST(CppEmitter, EmissionIsDeterministic) {
  EXPECT_EQ(emitExample(), emitExample());
}

TEST(CppEmitter, ScalarModeProgramIsRejected) {
  // The native tier only implements the SIMD policy; a scalar-mode
  // lowering must yield "" so the dispatcher falls back to bytecode.
  ir::Program P = makeExample(paperExampleSpec());
  exec::Program EP = exec::lower(P, exec::Mode::Scalar);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  EXPECT_EQ(codegen::emitCpp(EP, P, M), "");
}

TEST(JitCache, SourceKeyStableAndContentSensitive) {
  std::string A = "int f() { return 1; }";
  EXPECT_EQ(codegen::sourceKey(A), codegen::sourceKey(A));
  EXPECT_NE(codegen::sourceKey(A),
            codegen::sourceKey("int f() { return 2; }"));
}

TEST(JitCache, AvailabilityMatchesBuildConfig) {
  // jitAvailable() may be false (SIMDFLAT_ENABLE_JIT=OFF), but must be
  // callable and stable either way.
  EXPECT_EQ(codegen::jitAvailable(), codegen::jitAvailable());
}

} // namespace
