//===- tests/analysis/NormalFormTest.cpp -----------------------*- C++ -*-===//

#include "analysis/NormalForm.h"

#include "ir/Builder.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::analysis;
using namespace simdflat::ir;

namespace {

class NormalFormTest : public ::testing::Test {
protected:
  NormalFormTest() : P("t"), B(P) {
    P.addVar("i", ScalarKind::Int);
    P.addVar("K", ScalarKind::Int);
    P.addVar("L", ScalarKind::Int, {8});
    P.addVar("n", ScalarKind::Int);
    P.addExtern("Impure", ScalarKind::Int, /*Pure=*/false);
  }
  Program P;
  Builder B;
};

TEST_F(NormalFormTest, DoLoopPhases) {
  StmtPtr Loop = B.doLoop("i", B.lit(1), B.var("K"),
                          Builder::body(B.set("n", B.var("i"))));
  auto NF = normalFormOf(*Loop, P);
  ASSERT_TRUE(NF.has_value());
  ASSERT_EQ(NF->Init.size(), 1u);
  EXPECT_EQ(printStmt(*NF->Init[0]), "i = 1\n");
  EXPECT_EQ(printExpr(*NF->Test), "i <= K");
  ASSERT_EQ(NF->Increment.size(), 1u);
  EXPECT_EQ(printStmt(*NF->Increment[0]), "i = i + 1\n");
  ASSERT_NE(NF->Done, nullptr);
  EXPECT_EQ(printExpr(*NF->Done), "i >= K");
  EXPECT_EQ(NF->IndexVar, "i");
  EXPECT_FALSE(NF->PostTest);
  EXPECT_TRUE(NF->ControlIsPure);
  EXPECT_FALSE(NF->ProvablyMinOneTrip); // K unknown
}

TEST_F(NormalFormTest, DoLoopWithStep) {
  StmtPtr Loop = B.doLoop("i", B.lit(2), B.lit(10),
                          Builder::body(B.set("n", B.var("i"))), B.lit(3));
  auto NF = normalFormOf(*Loop, P);
  ASSERT_TRUE(NF.has_value());
  EXPECT_EQ(printStmt(*NF->Increment[0]), "i = i + 3\n");
  EXPECT_EQ(NF->Done, nullptr); // done-test only for unit step
  EXPECT_TRUE(NF->ProvablyMinOneTrip);
}

TEST_F(NormalFormTest, NegativeStep) {
  StmtPtr Loop = B.doLoop("i", B.lit(10), B.lit(1),
                          Builder::body(B.set("n", B.var("i"))), B.lit(-1));
  auto NF = normalFormOf(*Loop, P);
  ASSERT_TRUE(NF.has_value());
  EXPECT_EQ(printExpr(*NF->Test), "i >= 1");
  EXPECT_TRUE(NF->ProvablyMinOneTrip);
}

TEST_F(NormalFormTest, NonLiteralStepRejected) {
  StmtPtr Loop = B.doLoop("i", B.lit(1), B.lit(10),
                          Builder::body(B.set("n", B.var("i"))), B.var("n"));
  EXPECT_FALSE(normalFormOf(*Loop, P).has_value());
}

TEST_F(NormalFormTest, WhileLoopPhases) {
  StmtPtr Loop =
      B.whileLoop(B.le(B.var("i"), B.at("L", B.var("n"))),
                  Builder::body(B.set("i", B.add(B.var("i"), B.lit(1)))));
  auto NF = normalFormOf(*Loop, P);
  ASSERT_TRUE(NF.has_value());
  EXPECT_TRUE(NF->Init.empty());
  EXPECT_TRUE(NF->Increment.empty());
  EXPECT_EQ(printExpr(*NF->Test), "i <= L(n)");
  EXPECT_EQ(NF->BodyStmts.size(), 1u);
  EXPECT_EQ(NF->Done, nullptr);
  EXPECT_FALSE(NF->ProvablyMinOneTrip);
}

TEST_F(NormalFormTest, RepeatLoopIsPostTest) {
  StmtPtr Loop = B.repeatUntil(
      Builder::body(B.set("i", B.add(B.var("i"), B.lit(1)))),
      B.gt(B.var("i"), B.var("K")));
  auto NF = normalFormOf(*Loop, P);
  ASSERT_TRUE(NF.has_value());
  EXPECT_TRUE(NF->PostTest);
  EXPECT_TRUE(NF->ProvablyMinOneTrip);
  EXPECT_EQ(printExpr(*NF->Test), ".NOT. i > K");
}

TEST_F(NormalFormTest, ImpureGuardDetected) {
  StmtPtr Loop = B.whileLoop(B.le(B.callFn("Impure", {}), B.var("K")),
                             Builder::body(B.set("n", B.lit(1))));
  auto NF = normalFormOf(*Loop, P);
  ASSERT_TRUE(NF.has_value());
  EXPECT_FALSE(NF->ControlIsPure);
}

TEST_F(NormalFormTest, NonLoopRejected) {
  StmtPtr S = B.set("n", B.lit(1));
  EXPECT_FALSE(normalFormOf(*S, P).has_value());
  EXPECT_FALSE(isLoopStmt(*S));
  StmtPtr W = B.whileLoop(B.lt(B.var("i"), B.lit(2)), {});
  EXPECT_TRUE(isLoopStmt(*W));
}

} // namespace
