//===- tests/analysis/LoopNestsTest.cpp ------------------------*- C++ -*-===//

#include "analysis/LoopNests.h"

#include "ir/Builder.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::analysis;
using namespace simdflat::ir;

namespace {

TEST(LoopNests, PaperExampleTree) {
  Program Ex = workloads::makeExample(workloads::paperExampleSpec());
  std::vector<LoopNestNode> Roots = findLoopNests(Ex);
  ASSERT_EQ(Roots.size(), 1u);
  EXPECT_EQ(Roots[0].Kind, "DOALL");
  EXPECT_EQ(Roots[0].IndexVar, "i");
  EXPECT_TRUE(Roots[0].Parallel);
  EXPECT_TRUE(Roots[0].FlattenableShape);
  EXPECT_EQ(Roots[0].depth(), 2);
  ASSERT_EQ(Roots[0].Children.size(), 1u);
  EXPECT_EQ(Roots[0].Children[0].Kind, "DO");
  EXPECT_EQ(Roots[0].Children[0].depth(), 1);
  EXPECT_FALSE(Roots[0].Children[0].FlattenableShape); // no child loop
}

TEST(LoopNests, RenderTree) {
  Program Ex = workloads::makeExample(workloads::paperExampleSpec());
  std::string Out = renderLoopNests(findLoopNests(Ex));
  EXPECT_EQ(Out, "DOALL i [depth 2, flattenable shape]\n"
                 "  DO j [depth 1]\n");
}

TEST(LoopNests, SiblingsBreakTheShape) {
  Program P("sib");
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  Body Outer = Builder::body(
      B.doLoop("j", B.lit(1), B.lit(2),
               Builder::body(B.set("n", B.var("j")))),
      B.doLoop("j", B.lit(1), B.lit(3),
               Builder::body(B.set("n", B.var("j")))));
  P.body().push_back(
      B.doLoop("i", B.lit(1), B.lit(4), std::move(Outer), nullptr, true));
  std::vector<LoopNestNode> Roots = findLoopNests(P);
  ASSERT_EQ(Roots.size(), 1u);
  EXPECT_FALSE(Roots[0].FlattenableShape); // two inner loops
  EXPECT_EQ(Roots[0].Children.size(), 2u);
}

TEST(LoopNests, LoopsInsideIfAreFoundButNotFlattenable) {
  Program P("cond");
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  Body Then = Builder::body(B.whileLoop(
      B.lt(B.var("j"), B.lit(2)),
      Builder::body(B.set("j", B.add(B.var("j"), B.lit(1))))));
  Body Outer =
      Builder::body(B.ifStmt(B.gt(B.var("n"), B.lit(0)), std::move(Then)));
  P.body().push_back(
      B.doLoop("i", B.lit(1), B.lit(4), std::move(Outer), nullptr, true));
  std::vector<LoopNestNode> Roots = findLoopNests(P);
  ASSERT_EQ(Roots.size(), 1u);
  // The WHILE is discovered as a child...
  ASSERT_EQ(Roots[0].Children.size(), 1u);
  EXPECT_EQ(Roots[0].Children[0].Kind, "WHILE");
  // ...but the shape is not flattenable (the loop hides inside an IF).
  EXPECT_FALSE(Roots[0].FlattenableShape);
}

TEST(LoopNests, DeepNestDepth) {
  Program P("deep");
  P.addVar("a", ScalarKind::Int);
  P.addVar("b", ScalarKind::Int);
  P.addVar("c", ScalarKind::Int);
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  Body Innermost = Builder::body(B.set("n", B.lit(1)));
  Body Mid = Builder::body(
      B.doLoop("c", B.lit(1), B.lit(2), std::move(Innermost)));
  Body Top =
      Builder::body(B.doLoop("b", B.lit(1), B.lit(2), std::move(Mid)));
  P.body().push_back(B.doLoop("a", B.lit(1), B.lit(2), std::move(Top)));
  std::vector<LoopNestNode> Roots = findLoopNests(P);
  ASSERT_EQ(Roots.size(), 1u);
  EXPECT_EQ(Roots[0].depth(), 3);
  EXPECT_TRUE(Roots[0].FlattenableShape);
  EXPECT_TRUE(Roots[0].Children[0].FlattenableShape);
}

} // namespace
