//===- tests/analysis/ProfitabilityTest.cpp --------------------*- C++ -*-===//

#include "analysis/Profitability.h"

#include <gtest/gtest.h>

#include <vector>

using namespace simdflat;
using namespace simdflat::analysis;

namespace {

TEST(Profitability, PaperExampleNumbers) {
  // Sec. 3: K = 8, L = 4,1,2,1,1,3,1,3, P = 2, block distribution:
  // TIME_MIMD = 8 (Eq. 1), TIME_SIMD = 12 (Eq. 2).
  std::vector<int64_t> L = {4, 1, 2, 1, 1, 3, 1, 3};
  ProfitEstimate E = estimateProfit(L, 2, machine::Layout::Block);
  EXPECT_EQ(E.FlattenedSteps, 8);
  EXPECT_EQ(E.UnflattenedSteps, 12);
  EXPECT_DOUBLE_EQ(E.Speedup, 1.5);
  EXPECT_DOUBLE_EQ(E.MaxOverAvg, 2.0); // max 4 / avg 2
}

TEST(Profitability, SpeedupBoundedByMaxOverAvg) {
  // Sec. 5.5: "the given Lu/Lf ratios are bounded by the
  // pCntmax/pCntavg ratios." (Exact when the flattened schedule is
  // perfectly balanced.)
  std::vector<int64_t> L = {10, 1, 7, 3, 9, 2, 8, 4, 6, 5, 1, 10};
  for (int64_t P : {1, 2, 3, 4, 6}) {
    for (auto Layout : {machine::Layout::Block, machine::Layout::Cyclic}) {
      ProfitEstimate E = estimateProfit(L, P, Layout);
      EXPECT_LE(E.Speedup, E.MaxOverAvg + 1e-9)
          << "P=" << P;
      EXPECT_GE(E.Speedup, 1.0 - 1e-9);
    }
  }
}

TEST(Profitability, ZeroVarianceGivesNoSpeedup) {
  std::vector<int64_t> L(16, 5);
  ProfitEstimate E = estimateProfit(L, 4, machine::Layout::Cyclic);
  EXPECT_EQ(E.FlattenedSteps, E.UnflattenedSteps);
  EXPECT_DOUBLE_EQ(E.Speedup, 1.0);
  EXPECT_DOUBLE_EQ(E.MaxOverAvg, 1.0);
}

TEST(Profitability, SingleProcessorDegenerate) {
  // P = 1: both schedules execute every iteration: no speedup.
  std::vector<int64_t> L = {4, 1, 2, 1};
  ProfitEstimate E = estimateProfit(L, 1, machine::Layout::Block);
  EXPECT_EQ(E.FlattenedSteps, 8);
  EXPECT_EQ(E.UnflattenedSteps, 8);
  EXPECT_DOUBLE_EQ(E.Speedup, 1.0);
}

TEST(Profitability, EmptyTripCounts) {
  ProfitEstimate E = estimateProfit({}, 4, machine::Layout::Block);
  EXPECT_EQ(E.FlattenedSteps, 0);
  EXPECT_EQ(E.UnflattenedSteps, 0);
  EXPECT_DOUBLE_EQ(E.Speedup, 1.0);
}

TEST(Profitability, ZeroTripIterationsAllowed) {
  std::vector<int64_t> L = {0, 0, 3, 0};
  ProfitEstimate E = estimateProfit(L, 2, machine::Layout::Block);
  // Block: proc0 {0,0}=0, proc1 {3,0}=3 -> flattened 3.
  EXPECT_EQ(E.FlattenedSteps, 3);
  // Rows: max(0,3)=3, max(0,0)=0 -> 3.
  EXPECT_EQ(E.UnflattenedSteps, 3);
}

TEST(Profitability, MoreProcessorsRaiseSpeedupOnSkewedLoad) {
  // With one heavy iteration per P-block, the unflattened schedule pays
  // the max every row; flattening lets light lanes catch up.
  // Period 9 is co-prime with every P below, so the heavy iterations
  // rotate across lanes instead of piling onto one.
  std::vector<int64_t> L;
  for (int I = 0; I < 64; ++I)
    L.push_back(I % 9 == 0 ? 16 : 1);
  double PrevSpeedup = 0.0;
  for (int64_t P : {2, 4, 8}) {
    ProfitEstimate E = estimateProfit(L, P, machine::Layout::Cyclic);
    EXPECT_GE(E.Speedup, PrevSpeedup - 1e-9) << "P=" << P;
    PrevSpeedup = E.Speedup;
  }
  EXPECT_GT(PrevSpeedup, 1.5);
}

TEST(Profitability, MsimdInterpolatesBetweenEq2AndEq1) {
  std::vector<int64_t> L;
  for (int I = 0; I < 128; ++I)
    L.push_back(1 + (I * 37) % 23);
  for (auto Lay : {machine::Layout::Block, machine::Layout::Cyclic}) {
    ProfitEstimate E = estimateProfit(L, 16, Lay);
    EXPECT_EQ(estimateMsimdSteps(L, 16, 1, Lay), E.UnflattenedSteps);
    EXPECT_EQ(estimateMsimdSteps(L, 16, 16, Lay), E.FlattenedSteps);
    // Monotone: more program counters never hurt.
    int64_t Prev = E.UnflattenedSteps;
    for (int64_t G : {2, 4, 8, 16}) {
      int64_t S = estimateMsimdSteps(L, 16, G, Lay);
      EXPECT_LE(S, Prev) << "G=" << G;
      Prev = S;
    }
  }
}

TEST(Profitability, MsimdPaperExample) {
  // K = 8, L = 4,1,2,1,1,3,1,3, P = 2, block: G=1 -> 12, G=2 -> 8.
  std::vector<int64_t> L = {4, 1, 2, 1, 1, 3, 1, 3};
  EXPECT_EQ(estimateMsimdSteps(L, 2, 1, machine::Layout::Block), 12);
  EXPECT_EQ(estimateMsimdSteps(L, 2, 2, machine::Layout::Block), 8);
}

TEST(Profitability, MsimdEmpty) {
  EXPECT_EQ(estimateMsimdSteps({}, 8, 2, machine::Layout::Cyclic), 0);
}

} // namespace
