//===- tests/analysis/ProfitabilityTest.cpp --------------------*- C++ -*-===//

#include "analysis/Profitability.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace simdflat;
using namespace simdflat::analysis;
using simdflat::interp::TripHistogram;

namespace {

TEST(Profitability, PaperExampleNumbers) {
  // Sec. 3: K = 8, L = 4,1,2,1,1,3,1,3, P = 2, block distribution:
  // TIME_MIMD = 8 (Eq. 1), TIME_SIMD = 12 (Eq. 2).
  std::vector<int64_t> L = {4, 1, 2, 1, 1, 3, 1, 3};
  ProfitEstimate E = estimateProfit(L, 2, machine::Layout::Block);
  EXPECT_EQ(E.FlattenedSteps, 8);
  EXPECT_EQ(E.UnflattenedSteps, 12);
  EXPECT_DOUBLE_EQ(E.Speedup, 1.5);
  EXPECT_DOUBLE_EQ(E.MaxOverAvg, 2.0); // max 4 / avg 2
}

TEST(Profitability, SpeedupBoundedByMaxOverAvg) {
  // Sec. 5.5: "the given Lu/Lf ratios are bounded by the
  // pCntmax/pCntavg ratios." (Exact when the flattened schedule is
  // perfectly balanced.)
  std::vector<int64_t> L = {10, 1, 7, 3, 9, 2, 8, 4, 6, 5, 1, 10};
  for (int64_t P : {1, 2, 3, 4, 6}) {
    for (auto Layout : {machine::Layout::Block, machine::Layout::Cyclic}) {
      ProfitEstimate E = estimateProfit(L, P, Layout);
      EXPECT_LE(E.Speedup, E.MaxOverAvg + 1e-9)
          << "P=" << P;
      EXPECT_GE(E.Speedup, 1.0 - 1e-9);
    }
  }
}

TEST(Profitability, ZeroVarianceGivesNoSpeedup) {
  std::vector<int64_t> L(16, 5);
  ProfitEstimate E = estimateProfit(L, 4, machine::Layout::Cyclic);
  EXPECT_EQ(E.FlattenedSteps, E.UnflattenedSteps);
  EXPECT_DOUBLE_EQ(E.Speedup, 1.0);
  EXPECT_DOUBLE_EQ(E.MaxOverAvg, 1.0);
}

TEST(Profitability, SingleProcessorDegenerate) {
  // P = 1: both schedules execute every iteration: no speedup.
  std::vector<int64_t> L = {4, 1, 2, 1};
  ProfitEstimate E = estimateProfit(L, 1, machine::Layout::Block);
  EXPECT_EQ(E.FlattenedSteps, 8);
  EXPECT_EQ(E.UnflattenedSteps, 8);
  EXPECT_DOUBLE_EQ(E.Speedup, 1.0);
}

TEST(Profitability, EmptyTripCounts) {
  ProfitEstimate E = estimateProfit({}, 4, machine::Layout::Block);
  EXPECT_EQ(E.FlattenedSteps, 0);
  EXPECT_EQ(E.UnflattenedSteps, 0);
  EXPECT_DOUBLE_EQ(E.Speedup, 1.0);
}

TEST(Profitability, ZeroTripIterationsAllowed) {
  std::vector<int64_t> L = {0, 0, 3, 0};
  ProfitEstimate E = estimateProfit(L, 2, machine::Layout::Block);
  // Block: proc0 {0,0}=0, proc1 {3,0}=3 -> flattened 3.
  EXPECT_EQ(E.FlattenedSteps, 3);
  // Rows: max(0,3)=3, max(0,0)=0 -> 3.
  EXPECT_EQ(E.UnflattenedSteps, 3);
}

TEST(Profitability, MoreProcessorsRaiseSpeedupOnSkewedLoad) {
  // With one heavy iteration per P-block, the unflattened schedule pays
  // the max every row; flattening lets light lanes catch up.
  // Period 9 is co-prime with every P below, so the heavy iterations
  // rotate across lanes instead of piling onto one.
  std::vector<int64_t> L;
  for (int I = 0; I < 64; ++I)
    L.push_back(I % 9 == 0 ? 16 : 1);
  double PrevSpeedup = 0.0;
  for (int64_t P : {2, 4, 8}) {
    ProfitEstimate E = estimateProfit(L, P, machine::Layout::Cyclic);
    EXPECT_GE(E.Speedup, PrevSpeedup - 1e-9) << "P=" << P;
    PrevSpeedup = E.Speedup;
  }
  EXPECT_GT(PrevSpeedup, 1.5);
}

TEST(Profitability, MsimdInterpolatesBetweenEq2AndEq1) {
  std::vector<int64_t> L;
  for (int I = 0; I < 128; ++I)
    L.push_back(1 + (I * 37) % 23);
  for (auto Lay : {machine::Layout::Block, machine::Layout::Cyclic}) {
    ProfitEstimate E = estimateProfit(L, 16, Lay);
    EXPECT_EQ(estimateMsimdSteps(L, 16, 1, Lay), E.UnflattenedSteps);
    EXPECT_EQ(estimateMsimdSteps(L, 16, 16, Lay), E.FlattenedSteps);
    // Monotone: more program counters never hurt.
    int64_t Prev = E.UnflattenedSteps;
    for (int64_t G : {2, 4, 8, 16}) {
      int64_t S = estimateMsimdSteps(L, 16, G, Lay);
      EXPECT_LE(S, Prev) << "G=" << G;
      Prev = S;
    }
  }
}

TEST(Profitability, MsimdPaperExample) {
  // K = 8, L = 4,1,2,1,1,3,1,3, P = 2, block: G=1 -> 12, G=2 -> 8.
  std::vector<int64_t> L = {4, 1, 2, 1, 1, 3, 1, 3};
  EXPECT_EQ(estimateMsimdSteps(L, 2, 1, machine::Layout::Block), 12);
  EXPECT_EQ(estimateMsimdSteps(L, 2, 2, machine::Layout::Block), 8);
}

TEST(Profitability, MsimdEmpty) {
  EXPECT_EQ(estimateMsimdSteps({}, 8, 2, machine::Layout::Cyclic), 0);
}

//===--------------------------------------------------------------------===//
// TripDistribution: the adapter feeding chooseStrategy.
//===--------------------------------------------------------------------===//

TEST(TripDistribution, SpanViewIsExact) {
  std::vector<int64_t> L = {4, 1, 2, 1};
  TripDistribution D{std::span<const int64_t>(L)};
  EXPECT_EQ(D.samples(), 4);
  EXPECT_EQ(D.sum(), 8);
  EXPECT_EQ(D.max(), 4);
  ASSERT_EQ(D.trips().size(), 4u);
  EXPECT_EQ(D.trips()[0], 4);
}

TEST(TripDistribution, NegativeSpanTripsClampToZero) {
  // Fortran DO semantics: a negative trip count executes nothing. The
  // distribution must present zeros, never negatives, to the model.
  std::vector<int64_t> L = {3, -2, 5, -1};
  TripDistribution D{std::span<const int64_t>(L)};
  EXPECT_EQ(D.sum(), 8);
  EXPECT_EQ(D.max(), 5);
  for (int64_t T : D.trips())
    EXPECT_GE(T, 0);
}

TEST(TripDistribution, HistogramExpansionKeepsMoments) {
  TripHistogram H;
  for (int I = 0; I < 7; ++I)
    H.record(1);
  H.record(120);
  TripDistribution D{H};
  EXPECT_EQ(D.samples(), 8);
  EXPECT_EQ(D.sum(), 127); // exact, not the bucket representative
  EXPECT_EQ(D.max(), 120);
  // Expansion: seven exact 1s plus one representative for the [64,128)
  // bucket (its midpoint, 96).
  ASSERT_EQ(D.trips().size(), 8u);
  int64_t Nines = 0;
  for (int64_t T : D.trips())
    Nines += T == 96;
  EXPECT_EQ(Nines, 1);
}

TEST(TripDistribution, HugeHistogramDownsamplesButKeepsOutliers) {
  TripHistogram H;
  for (int I = 0; I < 100000; ++I)
    H.record(2);
  H.record(5000); // single outlier, must survive the cap
  TripDistribution D{H};
  EXPECT_LE(static_cast<int64_t>(D.trips().size()),
            TripDistribution::ExpandCap + 1);
  bool SawOutlier = false;
  for (int64_t T : D.trips())
    SawOutlier |= T > 4000;
  EXPECT_TRUE(SawOutlier);
}

//===--------------------------------------------------------------------===//
// chooseStrategy: deterministic goldens over adversarial distributions.
// The numbers below are hand-evaluated from the documented cost model
// (FlattenOverhead 1.25, inspector 2.0/outer); changing the constants
// changes these goldens with them.
//===--------------------------------------------------------------------===//

TEST(ChooseStrategy, EmptyDistributionDefaultsToFlattened) {
  TripHistogram H; // never recorded into
  StrategyChoice C =
      chooseStrategy(TripDistribution{H}, 4, machine::Layout::Cyclic);
  EXPECT_EQ(C.Primary, Strategy::Flattened);
  EXPECT_DOUBLE_EQ(C.Confidence, 0.0);
}

TEST(ChooseStrategy, AllZeroTripsTieBreaksToFlattened) {
  // Every schedule costs zero steps; the historical pipeline order
  // (Flattened first) breaks the tie, at zero confidence.
  std::vector<int64_t> L(8, 0);
  StrategyChoice C = chooseStrategy(TripDistribution{std::span<const int64_t>(L)},
                                    4, machine::Layout::Cyclic);
  EXPECT_EQ(C.Primary, Strategy::Flattened);
  EXPECT_DOUBLE_EQ(C.Confidence, 0.0);
  EXPECT_DOUBLE_EQ(C.scoreOf(Strategy::Flattened), 0.0);
  EXPECT_DOUBLE_EQ(C.scoreOf(Strategy::Unflattened), 0.0);
}

TEST(ChooseStrategy, UniformTripsPickUnflattened) {
  // Zero variance: flattening buys nothing and pays its 1.25x guard
  // overhead. K=8 x trip 6 on 4 lanes: Unflat 12, Flat 15, Coal 28.
  std::vector<int64_t> L(8, 6);
  StrategyChoice C = chooseStrategy(TripDistribution{std::span<const int64_t>(L)},
                                    4, machine::Layout::Cyclic);
  EXPECT_EQ(C.Primary, Strategy::Unflattened);
  EXPECT_DOUBLE_EQ(C.scoreOf(Strategy::Unflattened), 12.0);
  EXPECT_DOUBLE_EQ(C.scoreOf(Strategy::Flattened), 15.0);
  EXPECT_DOUBLE_EQ(C.scoreOf(Strategy::Coalesced), 28.0);
  EXPECT_DOUBLE_EQ(C.Confidence, 3.0 / 15.0);
}

TEST(ChooseStrategy, BimodalSkewPicksFlattened) {
  // Heavy rows rotate across lanes: flattening lets light lanes catch
  // up. L = {9,1,1,1,1,9,1,1}, P=4 cyclic: lane sums {10,10,2,2} ->
  // Flat 12.5; row maxima 9+9 -> Unflat 18; Coal 6+16=22.
  std::vector<int64_t> L = {9, 1, 1, 1, 1, 9, 1, 1};
  StrategyChoice C = chooseStrategy(TripDistribution{std::span<const int64_t>(L)},
                                    4, machine::Layout::Cyclic);
  EXPECT_EQ(C.Primary, Strategy::Flattened);
  EXPECT_DOUBLE_EQ(C.scoreOf(Strategy::Flattened), 12.5);
  EXPECT_DOUBLE_EQ(C.scoreOf(Strategy::Unflattened), 18.0);
  EXPECT_DOUBLE_EQ(C.scoreOf(Strategy::Coalesced), 22.0);
  EXPECT_EQ(C.Ranked[1], Strategy::Unflattened);
  EXPECT_EQ(C.Ranked[2], Strategy::Coalesced);
}

TEST(ChooseStrategy, SingleHotOutlierPicksCoalesced) {
  // One row dominates: every lane-preserving schedule waits on it, only
  // redistribution balances. L = {120,1*7}, P=4 cyclic: Unflat 121,
  // Flat 151.25, Coal ceil(127/4)+2*8 = 48.
  std::vector<int64_t> L = {120, 1, 1, 1, 1, 1, 1, 1};
  StrategyCosts Costs;
  Costs.CoalesceMaxOuter = 16;
  Costs.CoalesceMaxTotal = 512;
  StrategyChoice C = chooseStrategy(TripDistribution{std::span<const int64_t>(L)},
                                    4, machine::Layout::Cyclic, Costs);
  EXPECT_EQ(C.Primary, Strategy::Coalesced);
  EXPECT_DOUBLE_EQ(C.scoreOf(Strategy::Coalesced), 48.0);
  EXPECT_DOUBLE_EQ(C.scoreOf(Strategy::Unflattened), 121.0);
  EXPECT_DOUBLE_EQ(C.scoreOf(Strategy::Flattened), 151.25);
  EXPECT_DOUBLE_EQ(C.Confidence, (121.0 - 48.0) / 121.0);
}

TEST(ChooseStrategy, CoalesceIneligibleBeyondStaticBounds) {
  // The same hot outlier, but the inspector arrays cannot hold the
  // observed shape: coalescing must rank last at infinite cost.
  std::vector<int64_t> L = {120, 1, 1, 1, 1, 1, 1, 1};
  StrategyCosts Tight;
  Tight.CoalesceMaxOuter = 4; // observed outer count is 8
  StrategyChoice C = chooseStrategy(TripDistribution{std::span<const int64_t>(L)},
                                    4, machine::Layout::Cyclic, Tight);
  EXPECT_EQ(C.Primary, Strategy::Unflattened);
  EXPECT_EQ(C.Ranked[2], Strategy::Coalesced);
  EXPECT_TRUE(std::isinf(C.scoreOf(Strategy::Coalesced)));
}

TEST(ChooseStrategy, CoalesceMarginDisqualifiesNearTrapBoundary) {
  // Total 127 fits a 160-slot coalRow, but exceeds the 75% drift
  // margin: a distribution this close to the trap boundary must not
  // pick the build that traps when it drifts further.
  std::vector<int64_t> L = {120, 1, 1, 1, 1, 1, 1, 1};
  StrategyCosts Near;
  Near.CoalesceMaxOuter = 16;
  Near.CoalesceMaxTotal = 160; // margin: 0.75 * 160 = 120 < 127
  StrategyChoice C = chooseStrategy(TripDistribution{std::span<const int64_t>(L)},
                                    4, machine::Layout::Cyclic, Near);
  EXPECT_TRUE(std::isinf(C.scoreOf(Strategy::Coalesced)));
  EXPECT_EQ(C.Primary, Strategy::Unflattened);
}

TEST(ChooseStrategy, HistogramAndSpanAgreeOnTheWinner) {
  // The histogram quantizes the outlier (120 -> bucket midpoint 96) but
  // must not change the verdict.
  std::vector<int64_t> L = {120, 1, 1, 1, 1, 1, 1, 1};
  TripHistogram H;
  for (int64_t T : L)
    H.record(T);
  StrategyCosts Costs;
  Costs.CoalesceMaxOuter = 16;
  Costs.CoalesceMaxTotal = 512;
  StrategyChoice FromSpan = chooseStrategy(
      TripDistribution{std::span<const int64_t>(L)}, 4,
      machine::Layout::Cyclic, Costs);
  StrategyChoice FromHist = chooseStrategy(TripDistribution{H}, 4,
                                           machine::Layout::Cyclic, Costs);
  EXPECT_EQ(FromHist.Primary, FromSpan.Primary);
  // Coalesced score uses the exact moments, so it is identical.
  EXPECT_DOUBLE_EQ(FromHist.scoreOf(Strategy::Coalesced),
                   FromSpan.scoreOf(Strategy::Coalesced));
}

} // namespace
