//===- tests/analysis/SideEffectsTest.cpp ----------------------*- C++ -*-===//

#include "analysis/SideEffects.h"

#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::analysis;
using namespace simdflat::ir;

namespace {

class SideEffectsTest : public ::testing::Test {
protected:
  SideEffectsTest() : P("t"), B(P) {
    P.addVar("i", ScalarKind::Int);
    P.addVar("j", ScalarKind::Int);
    P.addVar("A", ScalarKind::Int, {8});
    P.addExtern("Pure", ScalarKind::Int, /*Pure=*/true);
    P.addExtern("Impure", ScalarKind::Int, /*Pure=*/false);
  }
  Program P;
  Builder B;
};

TEST_F(SideEffectsTest, PureExpressions) {
  EXPECT_FALSE(exprHasSideEffects(*B.add(B.var("i"), B.lit(1)), P));
  EXPECT_FALSE(exprHasSideEffects(*B.at("A", B.var("i")), P));
  EXPECT_FALSE(exprHasSideEffects(*B.callFn("Pure", {}), P));
}

TEST_F(SideEffectsTest, ImpureCallDetected) {
  EXPECT_TRUE(exprHasSideEffects(*B.callFn("Impure", {}), P));
  // Nested deep inside an expression.
  EXPECT_TRUE(exprHasSideEffects(
      *B.add(B.lit(1), B.mul(B.callFn("Impure", {}), B.lit(2))), P));
}

TEST_F(SideEffectsTest, BodyCallsImpure) {
  Body Pure = Builder::body(B.set("i", B.callFn("Pure", {})));
  EXPECT_FALSE(bodyCallsImpure(Pure, P));
  Body Impure = Builder::body(
      B.ifStmt(B.gt(B.var("i"), B.lit(0)),
               Builder::body(B.set("j", B.callFn("Impure", {})))));
  EXPECT_TRUE(bodyCallsImpure(Impure, P));
}

TEST_F(SideEffectsTest, NamesWritten) {
  Body Bd = Builder::body(
      B.set("i", B.lit(1)),
      B.doLoop("j", B.lit(1), B.lit(4),
               Builder::body(B.assign(B.at("A", B.var("j")), B.var("j")))));
  auto W = namesWritten(Bd);
  EXPECT_TRUE(W.count("i"));
  EXPECT_TRUE(W.count("j")); // loop index counts as written
  EXPECT_TRUE(W.count("A"));
  EXPECT_EQ(W.size(), 3u);
}

TEST_F(SideEffectsTest, NamesReadInExpr) {
  auto R = namesRead(*B.add(B.at("A", B.var("i")), B.var("j")));
  EXPECT_TRUE(R.count("A"));
  EXPECT_TRUE(R.count("i"));
  EXPECT_TRUE(R.count("j"));
}

TEST_F(SideEffectsTest, NamesReadInBody) {
  Body Bd = Builder::body(
      B.whileLoop(B.le(B.var("i"), B.lit(4)),
                  Builder::body(B.set("i", B.add(B.var("i"), B.var("j"))))));
  auto R = namesRead(Bd);
  EXPECT_TRUE(R.count("i"));
  EXPECT_TRUE(R.count("j"));
}

} // namespace
