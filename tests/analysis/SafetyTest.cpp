//===- tests/analysis/SafetyTest.cpp ---------------------------*- C++ -*-===//

#include "analysis/Safety.h"

#include "ir/Builder.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::analysis;
using namespace simdflat::ir;

namespace {

class SafetyTest : public ::testing::Test {
protected:
  SafetyTest() : P("t"), B(P) {
    P.addVar("i", ScalarKind::Int);
    P.addVar("j", ScalarKind::Int);
    P.addVar("K", ScalarKind::Int);
    P.addVar("s", ScalarKind::Int);
    P.addVar("A", ScalarKind::Int, {8});
    P.addVar("C", ScalarKind::Int, {8});
    P.addVar("L", ScalarKind::Int, {8});
    P.addExtern("Impure", ScalarKind::Int, /*Pure=*/false);
  }

  SafetyResult check(StmtPtr Loop) {
    return checkParallelizable(*cast<DoStmt>(Loop.get()), P);
  }

  Program P;
  Builder B;
};

TEST_F(SafetyTest, PaperExampleIsParallelizable) {
  ir::Program Ex = workloads::makeExample(workloads::paperExampleSpec());
  const auto *Outer = cast<DoStmt>(Ex.body()[0].get());
  SafetyResult R = checkParallelizable(*Outer, Ex);
  EXPECT_TRUE(R.Parallelizable) << R.Reason;
}

TEST_F(SafetyTest, OwnerComputesWrite) {
  StmtPtr Loop = B.doLoop(
      "i", B.lit(1), B.var("K"),
      Builder::body(B.assign(B.at("A", B.var("i")), B.var("i"))));
  EXPECT_TRUE(check(std::move(Loop)).Parallelizable);
}

TEST_F(SafetyTest, ShiftedWriteRejected) {
  StmtPtr Loop = B.doLoop(
      "i", B.lit(1), B.var("K"),
      Builder::body(
          B.assign(B.at("A", B.add(B.var("i"), B.lit(1))), B.var("i"))));
  SafetyResult R = check(std::move(Loop));
  EXPECT_FALSE(R.Parallelizable);
  EXPECT_NE(R.Reason.find("A"), std::string::npos);
}

TEST_F(SafetyTest, ReadOfWrittenArrayAtOtherIndexRejected) {
  // A(i) = A(i-1): loop-carried flow dependence.
  StmtPtr Loop = B.doLoop(
      "i", B.lit(2), B.var("K"),
      Builder::body(B.assign(B.at("A", B.var("i")),
                             B.at("A", B.sub(B.var("i"), B.lit(1))))));
  EXPECT_FALSE(check(std::move(Loop)).Parallelizable);
}

TEST_F(SafetyTest, ReadOnlyArrayAtAnyIndexIsFine) {
  // A(i) = L(C(i)): indirect read of a read-only array is fine.
  StmtPtr Loop = B.doLoop(
      "i", B.lit(1), B.lit(8),
      Builder::body(
          B.assign(B.at("A", B.var("i")), B.at("L", B.at("C", B.var("i"))))));
  EXPECT_TRUE(check(std::move(Loop)).Parallelizable);
}

TEST_F(SafetyTest, ScalarReductionRejected) {
  // s = s + A(i): carried scalar dependence.
  StmtPtr Loop = B.doLoop(
      "i", B.lit(1), B.var("K"),
      Builder::body(B.set("s", B.add(B.var("s"), B.at("A", B.var("i"))))));
  SafetyResult R = check(std::move(Loop));
  EXPECT_FALSE(R.Parallelizable);
  EXPECT_NE(R.Reason.find("s"), std::string::npos);
}

TEST_F(SafetyTest, PrivatizableScalarAccepted) {
  // s = A(i); A(i) = s * 2 - s is defined before use each iteration.
  StmtPtr Loop = B.doLoop(
      "i", B.lit(1), B.lit(8),
      Builder::body(B.set("s", B.at("A", B.var("i"))),
                    B.assign(B.at("A", B.var("i")),
                             B.mul(B.var("s"), B.lit(2)))));
  EXPECT_TRUE(check(std::move(Loop)).Parallelizable);
}

TEST_F(SafetyTest, InnerLoopIndexIsPrivate) {
  StmtPtr Loop = B.doLoop(
      "i", B.lit(1), B.lit(8),
      Builder::body(B.doLoop(
          "j", B.lit(1), B.at("L", B.var("i")),
          Builder::body(B.assign(B.at("A", B.var("i")), B.var("j"))))));
  EXPECT_TRUE(check(std::move(Loop)).Parallelizable);
}

TEST_F(SafetyTest, ImpureCallRejected) {
  StmtPtr Loop = B.doLoop(
      "i", B.lit(1), B.lit(8),
      Builder::body(B.assign(B.at("A", B.var("i")),
                             B.callFn("Impure", {}))));
  SafetyResult R = check(std::move(Loop));
  EXPECT_FALSE(R.Parallelizable);
  EXPECT_NE(R.Reason.find("impure"), std::string::npos);
}

TEST_F(SafetyTest, IndexModificationRejected) {
  StmtPtr Loop = B.doLoop(
      "i", B.lit(1), B.lit(8),
      Builder::body(B.set("i", B.add(B.var("i"), B.lit(1)))));
  EXPECT_FALSE(check(std::move(Loop)).Parallelizable);
}

} // namespace
