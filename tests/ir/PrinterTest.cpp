//===- tests/ir/PrinterTest.cpp --------------------------------*- C++ -*-===//

#include "ir/Printer.h"

#include "ir/Builder.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::ir;

namespace {

class PrinterTest : public ::testing::Test {
protected:
  PrinterTest() : P("t"), B(P) {
    P.addVar("i", ScalarKind::Int);
    P.addVar("j", ScalarKind::Int);
    P.addVar("f", ScalarKind::Bool);
    P.addVar("x", ScalarKind::Real);
    P.addVar("A", ScalarKind::Int, {8});
  }

  Program P;
  Builder B;
};

TEST_F(PrinterTest, Literals) {
  EXPECT_EQ(printExpr(*B.lit(42)), "42");
  EXPECT_EQ(printExpr(*B.lit(-7)), "-7");
  EXPECT_EQ(printExpr(*B.lit(2.5)), "2.5");
  EXPECT_EQ(printExpr(*B.lit(3.0)), "3.0"); // decimal point forced
  EXPECT_EQ(printExpr(*B.lit(true)), ".TRUE.");
  EXPECT_EQ(printExpr(*B.lit(false)), ".FALSE.");
}

TEST_F(PrinterTest, PrecedenceMinimalParens) {
  // i + j * 2 needs no parens.
  EXPECT_EQ(printExpr(*B.add(B.var("i"), B.mul(B.var("j"), B.lit(2)))),
            "i + j * 2");
  // (i + j) * 2 needs them.
  EXPECT_EQ(printExpr(*B.mul(B.add(B.var("i"), B.var("j")), B.lit(2))),
            "(i + j) * 2");
  // Left associativity: i - j - 1 prints flat, i - (j - 1) parenthesized.
  EXPECT_EQ(printExpr(*B.sub(B.sub(B.var("i"), B.var("j")), B.lit(1))),
            "i - j - 1");
  EXPECT_EQ(printExpr(*B.sub(B.var("i"), B.sub(B.var("j"), B.lit(1)))),
            "i - (j - 1)");
}

TEST_F(PrinterTest, LogicalOperators) {
  ExprPtr E = B.land(B.le(B.var("i"), B.lit(4)),
                     B.lnot(B.eq(B.var("j"), B.lit(0))));
  EXPECT_EQ(printExpr(*E), "i <= 4 .AND. .NOT. j == 0");
  ExprPtr E2 = B.lor(B.var("f"), B.land(B.var("f"), B.var("f")));
  EXPECT_EQ(printExpr(*E2), "f .OR. f .AND. f");
  ExprPtr E3 = B.land(B.lor(B.var("f"), B.var("f")), B.var("f"));
  EXPECT_EQ(printExpr(*E3), "(f .OR. f) .AND. f");
}

TEST_F(PrinterTest, ModPrintsFunctionStyle) {
  EXPECT_EQ(printExpr(*B.mod(B.var("i"), B.lit(8))), "MOD(i, 8)");
}

TEST_F(PrinterTest, Intrinsics) {
  EXPECT_EQ(printExpr(*B.max(B.var("i"), B.var("j"))), "MAX(i, j)");
  EXPECT_EQ(printExpr(*B.any(B.le(B.var("i"), B.lit(4)))), "ANY(i <= 4)");
  EXPECT_EQ(printExpr(*B.maxVal("A")), "MAXVAL(A)");
  EXPECT_EQ(printExpr(*B.laneIndex()), "LANEINDEX()");
}

TEST_F(PrinterTest, ArrayRefs) {
  EXPECT_EQ(printExpr(*B.at("A", B.add(B.var("i"), B.lit(1)))), "A(i + 1)");
}

TEST_F(PrinterTest, AssignStmt) {
  StmtPtr S = B.assign(B.at("A", B.var("i")), B.mul(B.var("i"), B.var("j")));
  EXPECT_EQ(printStmt(*S), "A(i) = i * j\n");
}

TEST_F(PrinterTest, IfElse) {
  StmtPtr S = B.ifStmt(B.var("f"),
                       Builder::body(B.set("i", B.lit(1))),
                       Builder::body(B.set("i", B.lit(2))));
  EXPECT_EQ(printStmt(*S), "IF (f) THEN\n"
                           "  i = 1\n"
                           "ELSE\n"
                           "  i = 2\n"
                           "ENDIF\n");
}

TEST_F(PrinterTest, WhereElsewhere) {
  StmtPtr S = B.where(B.le(B.var("i"), B.lit(4)),
                      Builder::body(B.set("i", B.add(B.var("i"), B.lit(1)))),
                      Builder::body(B.set("j", B.lit(1))));
  EXPECT_EQ(printStmt(*S), "WHERE (i <= 4)\n"
                           "  i = i + 1\n"
                           "ELSEWHERE\n"
                           "  j = 1\n"
                           "ENDWHERE\n");
}

TEST_F(PrinterTest, ConditionalGotoOneLine) {
  StmtPtr S = B.gotoStmt(10, B.le(B.var("i"), B.lit(4)));
  EXPECT_EQ(printStmt(*S), "IF (i <= 4) GOTO 10\n");
  StmtPtr L = B.label(10);
  EXPECT_EQ(printStmt(*L), "10 CONTINUE\n");
}

TEST_F(PrinterTest, RepeatUntil) {
  StmtPtr S = B.repeatUntil(Builder::body(B.set("i", B.lit(1))),
                            B.gt(B.var("i"), B.lit(4)));
  EXPECT_EQ(printStmt(*S), "REPEAT\n"
                           "  i = 1\n"
                           "UNTIL (i > 4)\n");
}

TEST_F(PrinterTest, Forall) {
  StmtPtr S =
      B.forall("i", B.lit(1), B.lit(8), B.le(B.var("i"), B.lit(4)),
               Builder::body(B.assign(B.at("A", B.var("i")), B.var("i"))));
  EXPECT_EQ(printStmt(*S), "FORALL (i = 1 : 8, i <= 4)\n"
                           "  A(i) = i\n"
                           "ENDFORALL\n");
}

TEST_F(PrinterTest, PaperExampleFigure1) {
  // The printed EXAMPLE must match Fig. 1 of the paper (modulo DOALL
  // marking the parallel loop, which Fig. 2's Fortran D version implies).
  ir::Program Ex = workloads::makeExample(workloads::paperExampleSpec());
  EXPECT_EQ(printBody(Ex.body()), "DOALL i = 1, K\n"
                                  "  DO j = 1, L(i)\n"
                                  "    X(i, j) = i * j\n"
                                  "  ENDDO\n"
                                  "ENDDO\n");
}

TEST_F(PrinterTest, ProgramWithDecls) {
  Program Q("small");
  Q.addExtern("Force", ScalarKind::Real, /*Pure=*/true);
  Q.addVar("n", ScalarKind::Int);
  Q.addVar("V", ScalarKind::Real, {4}, Dist::Distributed);
  Builder QB(Q);
  Q.body().push_back(QB.set("n", QB.lit(3)));
  std::string Out = printProgram(Q);
  EXPECT_EQ(Out, "PROGRAM small\n"
                 "EXTERN REAL FUNCTION Force\n"
                 "INTEGER n\n"
                 "DISTRIBUTED REAL V(4)\n"
                 "BEGIN\n"
                 "  n = 3\n"
                 "END\n");
}

} // namespace
