//===- tests/ir/WalkTest.cpp -----------------------------------*- C++ -*-===//

#include "ir/Walk.h"

#include "ir/Builder.h"
#include "ir/Printer.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::ir;

namespace {

class WalkTest : public ::testing::Test {
protected:
  WalkTest() : P("t"), B(P) {
    P.addVar("i", ScalarKind::Int);
    P.addVar("j", ScalarKind::Int);
    P.addVar("K", ScalarKind::Int);
    P.addVar("A", ScalarKind::Int, {8});
  }

  Program P;
  Builder B;
};

TEST_F(WalkTest, CloneExprIsEqualButDistinct) {
  ExprPtr E = B.add(B.at("A", B.var("i")), B.mul(B.var("j"), B.lit(2)));
  ExprPtr C = cloneExpr(*E);
  EXPECT_TRUE(exprEquals(*E, *C));
  EXPECT_NE(E.get(), C.get());
}

TEST_F(WalkTest, CloneStmtDeep) {
  StmtPtr S = B.doLoop(
      "i", B.lit(1), B.var("K"),
      Builder::body(B.whileLoop(
          B.le(B.var("j"), B.lit(4)),
          Builder::body(B.assign(B.at("A", B.var("j")), B.var("i"))))));
  StmtPtr C = cloneStmt(*S);
  EXPECT_TRUE(stmtEquals(*S, *C));
  EXPECT_EQ(printStmt(*S), printStmt(*C));
}

TEST_F(WalkTest, ClonePreservesParallelFlagAndStep) {
  StmtPtr S = B.doLoop("i", B.lit(1), B.lit(8), {}, B.lit(2), true);
  StmtPtr C = cloneStmt(*S);
  const auto *D = cast<DoStmt>(C.get());
  EXPECT_TRUE(D->isParallel());
  ASSERT_NE(D->step(), nullptr);
  EXPECT_TRUE(exprEquals(*D->step(), *B.lit(2)));
}

TEST_F(WalkTest, EqualsDistinguishes) {
  EXPECT_FALSE(exprEquals(*B.lit(1), *B.lit(2)));
  EXPECT_FALSE(exprEquals(*B.var("i"), *B.var("j")));
  EXPECT_FALSE(exprEquals(*B.add(B.var("i"), B.lit(1)),
                          *B.sub(B.var("i"), B.lit(1))));
  EXPECT_FALSE(stmtEquals(*B.set("i", B.lit(1)), *B.set("j", B.lit(1))));
  // Different kinds.
  EXPECT_FALSE(exprEquals(*B.lit(1), *B.var("i")));
}

TEST_F(WalkTest, SubstituteVarInExpr) {
  ExprPtr E = B.add(B.var("i"), B.at("A", B.var("i")));
  ExprPtr R = B.add(B.var("j"), B.lit(4));
  ExprPtr Out = substituteVar(*E, "i", *R);
  EXPECT_EQ(printExpr(*Out), "j + 4 + A(j + 4)");
  // Original untouched.
  EXPECT_EQ(printExpr(*E), "i + A(i)");
}

TEST_F(WalkTest, SubstituteDoesNotTouchArrayNames) {
  ExprPtr E2 = B.at("A", B.var("i"));
  ExprPtr Out = substituteVar(*E2, "A", *B.lit(0));
  EXPECT_EQ(printExpr(*Out), "A(i)"); // array name preserved
}

TEST_F(WalkTest, SubstituteInsideStmt) {
  StmtPtr S = B.whileLoop(
      B.le(B.var("i"), B.var("K")),
      Builder::body(B.assign(B.at("A", B.var("i")), B.var("i"))));
  substituteVarInStmt(*S, "i", *B.var("j"));
  EXPECT_EQ(printStmt(*S), "WHILE (j <= K)\n"
                           "  A(j) = j\n"
                           "ENDWHILE\n");
}

TEST_F(WalkTest, ForEachExprVisitsAllNodes) {
  ExprPtr E = B.add(B.var("i"), B.mul(B.var("j"), B.lit(2)));
  int Count = 0;
  forEachExpr(*E, [&Count](const Expr &) { ++Count; });
  EXPECT_EQ(Count, 5); // add, i, mul, j, 2
}

TEST_F(WalkTest, ForEachStmtRecurses) {
  ir::Program Ex = workloads::makeExample(workloads::paperExampleSpec());
  size_t N = countStmts(Ex.body());
  EXPECT_EQ(N, 3u); // outer DO, inner DO, assignment
}

TEST_F(WalkTest, ForEachExprInStmtFindsLoopBounds) {
  ir::Program Ex = workloads::makeExample(workloads::paperExampleSpec());
  bool SawL = false;
  forEachExprInStmt(*Ex.body()[0], [&](const Expr &E) {
    if (const auto *A = dyn_cast<ArrayRef>(&E); A && A->name() == "L")
      SawL = true;
  });
  EXPECT_TRUE(SawL);
}

TEST_F(WalkTest, MixedLoopFormsBuild) {
  using workloads::LoopForm;
  for (LoopForm Inner : {LoopForm::Do, LoopForm::While, LoopForm::Repeat,
                         LoopForm::GotoLoop}) {
    ir::Program Ex =
        workloads::makeExample(workloads::paperExampleSpec(), Inner);
    EXPECT_GE(countStmts(Ex.body()), 3u);
  }
}

} // namespace
