//===- tests/ir/VerifyTest.cpp ---------------------------------*- C++ -*-===//

#include "ir/Verify.h"

#include "ir/Builder.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::ir;

namespace {

TEST(Verify, CleanProgramsPass) {
  Program Ex = workloads::makeExample(workloads::paperExampleSpec());
  EXPECT_TRUE(verifyProgram(Ex).empty());
}

TEST(Verify, UndeclaredVariable) {
  Program P("v");
  P.addVar("i", ScalarKind::Int);
  P.body().push_back(std::make_unique<AssignStmt>(
      std::make_unique<VarRef>("i", ScalarKind::Int),
      std::make_unique<VarRef>("ghost", ScalarKind::Int)));
  std::vector<std::string> I = verifyProgram(P);
  ASSERT_EQ(I.size(), 1u);
  EXPECT_NE(I[0].find("ghost"), std::string::npos);
}

TEST(Verify, WrongCachedType) {
  Program P("v");
  P.addVar("x", ScalarKind::Real);
  P.addVar("i", ScalarKind::Int);
  // VarRef claims x is an integer.
  P.body().push_back(std::make_unique<AssignStmt>(
      std::make_unique<VarRef>("i", ScalarKind::Int),
      std::make_unique<VarRef>("x", ScalarKind::Int)));
  std::vector<std::string> I = verifyProgram(P);
  ASSERT_FALSE(I.empty());
  EXPECT_NE(I[0].find("wrong type"), std::string::npos);
}

TEST(Verify, RankMismatch) {
  Program P("v");
  P.addVar("A", ScalarKind::Int, {4, 4});
  P.addVar("i", ScalarKind::Int);
  std::vector<ExprPtr> Idx;
  Idx.push_back(std::make_unique<IntLit>(1));
  P.body().push_back(std::make_unique<AssignStmt>(
      std::make_unique<ArrayRef>("A", ScalarKind::Int, std::move(Idx)),
      std::make_unique<IntLit>(0)));
  std::vector<std::string> I = verifyProgram(P);
  ASSERT_FALSE(I.empty());
  EXPECT_NE(I[0].find("rank"), std::string::npos);
}

TEST(Verify, NonLogicalCondition) {
  Program P("v");
  P.addVar("i", ScalarKind::Int);
  Builder B(P);
  // Hand-build a WHILE with an integer condition (the builder would
  // assert, so construct the node directly).
  P.body().push_back(std::make_unique<WhileStmt>(
      std::make_unique<VarRef>("i", ScalarKind::Int), Body{}));
  std::vector<std::string> I = verifyProgram(P);
  ASSERT_FALSE(I.empty());
  EXPECT_NE(I[0].find("WHILE condition"), std::string::npos);
}

TEST(Verify, SubroutineUsedAsFunction) {
  Program P("v");
  P.addExtern("S", ScalarKind::Int, true, /*IsSubroutine=*/true);
  P.addVar("i", ScalarKind::Int);
  P.body().push_back(std::make_unique<AssignStmt>(
      std::make_unique<VarRef>("i", ScalarKind::Int),
      std::make_unique<CallExpr>("S", std::vector<ExprPtr>{},
                                 ScalarKind::Int)));
  std::vector<std::string> I = verifyProgram(P);
  ASSERT_FALSE(I.empty());
  EXPECT_NE(I[0].find("subroutine"), std::string::npos);
}

TEST(Verify, SimdDialectRejectsGoto) {
  Program P("v");
  P.setDialect(Dialect::F90Simd);
  P.body().push_back(std::make_unique<LabelStmt>(10));
  P.body().push_back(std::make_unique<GotoStmt>(10, nullptr));
  std::vector<std::string> I = verifyProgram(P);
  ASSERT_FALSE(I.empty());
  EXPECT_NE(I.back().find("GOTO"), std::string::npos);
}

TEST(Verify, F77DialectAllowsGoto) {
  Program P("v");
  P.body().push_back(std::make_unique<LabelStmt>(10));
  P.body().push_back(std::make_unique<GotoStmt>(10, nullptr));
  EXPECT_TRUE(verifyProgram(P).empty());
}

TEST(Verify, UndeclaredDoIndex) {
  Program P("v");
  P.body().push_back(std::make_unique<DoStmt>(
      "phantom", std::make_unique<IntLit>(1), std::make_unique<IntLit>(4),
      nullptr, Body{}, false));
  std::vector<std::string> I = verifyProgram(P);
  ASSERT_FALSE(I.empty());
  EXPECT_NE(I[0].find("phantom"), std::string::npos);
}

TEST(Verify, CollectsMultipleIssues) {
  Program P("v");
  P.body().push_back(std::make_unique<AssignStmt>(
      std::make_unique<VarRef>("a", ScalarKind::Int),
      std::make_unique<VarRef>("b", ScalarKind::Int)));
  P.body().push_back(std::make_unique<AssignStmt>(
      std::make_unique<VarRef>("c", ScalarKind::Int),
      std::make_unique<VarRef>("d", ScalarKind::Int)));
  EXPECT_GE(verifyProgram(P).size(), 4u);
}

} // namespace
