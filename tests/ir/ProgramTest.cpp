//===- tests/ir/ProgramTest.cpp --------------------------------*- C++ -*-===//

#include "ir/Program.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::ir;

TEST(Program, AddAndLookupVars) {
  Program P("p");
  P.addVar("i", ScalarKind::Int);
  P.addVar("X", ScalarKind::Real, {4, 5}, Dist::Distributed);
  ASSERT_NE(P.lookupVar("i"), nullptr);
  EXPECT_EQ(P.lookupVar("i")->Kind, ScalarKind::Int);
  EXPECT_TRUE(P.lookupVar("i")->isScalar());
  ASSERT_NE(P.lookupVar("X"), nullptr);
  EXPECT_TRUE(P.lookupVar("X")->isArray());
  EXPECT_EQ(P.lookupVar("X")->numElements(), 20);
  EXPECT_EQ(P.lookupVar("X")->Distribution, Dist::Distributed);
  EXPECT_EQ(P.lookupVar("missing"), nullptr);
}

TEST(Program, FreshVarNaming) {
  Program P("p");
  VarDecl &T1 = P.addFreshVar("t1", ScalarKind::Bool);
  EXPECT_EQ(T1.Name, "t1");
  // Now t1 is taken: the next request gets a suffixed name.
  VarDecl &T1b = P.addFreshVar("t1", ScalarKind::Bool);
  EXPECT_EQ(T1b.Name, "t11");
  VarDecl &T1c = P.addFreshVar("t1", ScalarKind::Bool);
  EXPECT_EQ(T1c.Name, "t12");
}

TEST(Program, Externs) {
  Program P("p");
  P.addExtern("Force", ScalarKind::Real, /*Pure=*/true);
  P.addExtern("Bump", ScalarKind::Int, /*Pure=*/false);
  ASSERT_NE(P.lookupExtern("Force"), nullptr);
  EXPECT_TRUE(P.lookupExtern("Force")->Pure);
  EXPECT_FALSE(P.lookupExtern("Bump")->Pure);
  EXPECT_EQ(P.lookupExtern("nope"), nullptr);
}

TEST(Program, DialectDefaultsToF77) {
  Program P("p");
  EXPECT_EQ(P.dialect(), Dialect::F77);
  P.setDialect(Dialect::F90Simd);
  EXPECT_EQ(P.dialect(), Dialect::F90Simd);
}

TEST(Program, ScalarNumElements) {
  VarDecl D{"s", ScalarKind::Real, {}, Dist::Control};
  EXPECT_EQ(D.numElements(), 1);
}

TEST(Program, MoveSemantics) {
  Program P("p");
  P.addVar("i", ScalarKind::Int);
  Program Q = std::move(P);
  EXPECT_EQ(Q.name(), "p");
  ASSERT_NE(Q.lookupVar("i"), nullptr);
}
