//===- tests/ir/ExprFuzzTest.cpp -------------------------------*- C++ -*-===//
//
// Random-expression property tests: for arbitrarily nested typed
// expressions, (a) printing uses minimal parentheses yet re-parses to a
// structurally identical tree, and (b) the scalar interpreter computes
// the same value before and after a print -> parse round trip and after
// simplification.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "interp/ScalarInterp.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "ir/Verify.h"
#include "ir/Walk.h"
#include "support/Random.h"
#include "transform/Simplify.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::ir;

namespace {

/// Grows a random integer-typed expression of depth <= Depth over
/// variables a, b, c (kept small and positive so / and MOD stay safe).
ExprPtr randInt(Rng &R, Builder &B, int Depth);

ExprPtr randBool(Rng &R, Builder &B, int Depth) {
  if (Depth <= 0 || R.chance(0.2)) {
    switch (R.uniformInt(0, 2)) {
    case 0:
      return B.lit(true);
    case 1:
      return B.lit(false);
    default:
      return B.le(randInt(R, B, 0), randInt(R, B, 0));
    }
  }
  switch (R.uniformInt(0, 3)) {
  case 0:
    return B.land(randBool(R, B, Depth - 1), randBool(R, B, Depth - 1));
  case 1:
    return B.lor(randBool(R, B, Depth - 1), randBool(R, B, Depth - 1));
  case 2:
    return B.lnot(randBool(R, B, Depth - 1));
  default: {
    ExprPtr L = randInt(R, B, Depth - 1);
    ExprPtr Rt = randInt(R, B, Depth - 1);
    switch (R.uniformInt(0, 5)) {
    case 0:
      return B.eq(std::move(L), std::move(Rt));
    case 1:
      return B.ne(std::move(L), std::move(Rt));
    case 2:
      return B.lt(std::move(L), std::move(Rt));
    case 3:
      return B.le(std::move(L), std::move(Rt));
    case 4:
      return B.gt(std::move(L), std::move(Rt));
    default:
      return B.ge(std::move(L), std::move(Rt));
    }
  }
  }
}

ExprPtr randInt(Rng &R, Builder &B, int Depth) {
  if (Depth <= 0 || R.chance(0.25)) {
    switch (R.uniformInt(0, 3)) {
    case 0:
      return B.lit(R.uniformInt(0, 9));
    case 1:
      return B.var("a");
    case 2:
      return B.var("b");
    default:
      return B.var("c");
    }
  }
  switch (R.uniformInt(0, 6)) {
  case 0:
    return B.add(randInt(R, B, Depth - 1), randInt(R, B, Depth - 1));
  case 1:
    return B.sub(randInt(R, B, Depth - 1), randInt(R, B, Depth - 1));
  case 2:
    return B.mul(randInt(R, B, Depth - 1), randInt(R, B, Depth - 1));
  case 3: // keep the divisor positive
    return B.div(randInt(R, B, Depth - 1),
                 B.add(B.var("c"), B.lit(R.uniformInt(1, 4))));
  case 4:
    return B.mod(randInt(R, B, Depth - 1),
                 B.add(B.var("b"), B.lit(R.uniformInt(1, 4))));
  case 5:
    return B.max(randInt(R, B, Depth - 1), randInt(R, B, Depth - 1));
  default:
    return B.neg(randInt(R, B, Depth - 1));
  }
}

/// Program evaluating Value into `r`, with a/b/c preset.
Program makeEvalProgram(ExprPtr Value, bool IsBool) {
  Program P("eval");
  P.addVar("a", ScalarKind::Int);
  P.addVar("b", ScalarKind::Int);
  P.addVar("c", ScalarKind::Int);
  P.addVar("r", IsBool ? ScalarKind::Bool : ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.set("r", std::move(Value)));
  return P;
}

int64_t evaluate(const Program &P) {
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  Program Copy = cloneProgram(P);
  interp::ScalarInterp I(Copy, M, nullptr);
  I.store().setInt("a", 5);
  I.store().setInt("b", 3);
  I.store().setInt("c", 2);
  I.run().value();
  return I.store().slot("r").I[0];
}

class ExprFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprFuzz, RoundTripAndValuePreserved) {
  Rng R(GetParam() * 977 + 13);
  bool IsBool = R.chance(0.5);
  // Build the expression twice from the same seed state by cloning.
  Program Dummy("d");
  Dummy.addVar("a", ScalarKind::Int);
  Dummy.addVar("b", ScalarKind::Int);
  Dummy.addVar("c", ScalarKind::Int);
  Builder DB(Dummy);
  ExprPtr E = IsBool ? randBool(R, DB, 4) : randInt(R, DB, 4);
  ExprPtr ECopy = cloneExpr(*E);

  Program P = makeEvalProgram(std::move(E), IsBool);
  int64_t Want = evaluate(P);

  // (a) print -> parse -> structurally identical + same print.
  std::string Printed = printProgram(P);
  frontend::ParseResult PR = frontend::parseProgram(Printed);
  ASSERT_TRUE(PR.ok()) << PR.Diags.renderAll() << "\n" << Printed;
  EXPECT_EQ(printProgram(*PR.Prog), Printed);
  EXPECT_TRUE(bodyEquals(PR.Prog->body(), P.body())) << Printed;
  EXPECT_EQ(evaluate(*PR.Prog), Want) << Printed;

  // (b) simplification preserves the value.
  Program PS = makeEvalProgram(std::move(ECopy), IsBool);
  transform::simplifyProgram(PS);
  EXPECT_TRUE(ir::verifyProgram(PS).empty()) << printProgram(PS);
  EXPECT_EQ(evaluate(PS), Want) << printProgram(PS);
}


INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzz,
                         ::testing::Range<uint64_t>(0, 80));

} // namespace
