//===- tests/ir/BuilderTest.cpp --------------------------------*- C++ -*-===//

#include "ir/Builder.h"

#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::ir;

namespace {

class BuilderTest : public ::testing::Test {
protected:
  BuilderTest() : P("test"), B(P) {
    P.addVar("i", ScalarKind::Int);
    P.addVar("x", ScalarKind::Real);
    P.addVar("f", ScalarKind::Bool);
    P.addVar("A", ScalarKind::Int, {10});
    P.addVar("M", ScalarKind::Real, {4, 5});
    P.addExtern("Force", ScalarKind::Real, /*Pure=*/true);
    P.addExtern("Dump", ScalarKind::Real, /*Pure=*/false,
                /*IsSubroutine=*/true);
  }

  Program P;
  Builder B;
};

TEST_F(BuilderTest, Literals) {
  EXPECT_EQ(B.lit(int64_t{5})->type(), ScalarKind::Int);
  EXPECT_EQ(B.lit(2.5)->type(), ScalarKind::Real);
  EXPECT_EQ(B.lit(true)->type(), ScalarKind::Bool);
  EXPECT_EQ(cast<IntLit>(B.lit(int64_t{-3}).get())->value(), -3);
  EXPECT_EQ(cast<RealLit>(B.lit(0.5).get())->value(), 0.5);
  EXPECT_TRUE(cast<BoolLit>(B.lit(true).get())->value());
}

TEST_F(BuilderTest, VarRefTypeComesFromDecl) {
  EXPECT_EQ(B.var("i")->type(), ScalarKind::Int);
  EXPECT_EQ(B.var("x")->type(), ScalarKind::Real);
  EXPECT_EQ(B.var("f")->type(), ScalarKind::Bool);
}

TEST_F(BuilderTest, ArrayRefRankChecked) {
  ExprPtr E = B.at("A", B.lit(3));
  EXPECT_EQ(E->type(), ScalarKind::Int);
  ExprPtr E2 = B.at("M", B.var("i"), B.lit(2));
  EXPECT_EQ(E2->type(), ScalarKind::Real);
  const auto *AR = cast<ArrayRef>(E2.get());
  EXPECT_EQ(AR->name(), "M");
  EXPECT_EQ(AR->indices().size(), 2u);
}

TEST_F(BuilderTest, ArithmeticPromotion) {
  EXPECT_EQ(B.add(B.var("i"), B.lit(1))->type(), ScalarKind::Int);
  EXPECT_EQ(B.add(B.var("i"), B.var("x"))->type(), ScalarKind::Real);
  EXPECT_EQ(B.mul(B.var("x"), B.var("x"))->type(), ScalarKind::Real);
  EXPECT_EQ(B.div(B.var("i"), B.lit(2))->type(), ScalarKind::Int);
  EXPECT_EQ(B.mod(B.var("i"), B.lit(2))->type(), ScalarKind::Int);
}

TEST_F(BuilderTest, ComparisonsAreBool) {
  EXPECT_EQ(B.le(B.var("i"), B.lit(4))->type(), ScalarKind::Bool);
  EXPECT_EQ(B.eq(B.var("x"), B.lit(0.0))->type(), ScalarKind::Bool);
  EXPECT_EQ(B.land(B.var("f"), B.lit(true))->type(), ScalarKind::Bool);
  EXPECT_EQ(B.lnot(B.var("f"))->type(), ScalarKind::Bool);
}

TEST_F(BuilderTest, Intrinsics) {
  EXPECT_EQ(B.max(B.var("i"), B.lit(3))->type(), ScalarKind::Int);
  EXPECT_EQ(B.max(B.var("i"), B.var("x"))->type(), ScalarKind::Real);
  EXPECT_EQ(B.sqrt(B.var("x"))->type(), ScalarKind::Real);
  EXPECT_EQ(B.laneIndex()->type(), ScalarKind::Int);
  EXPECT_EQ(B.numLanes()->type(), ScalarKind::Int);
  EXPECT_EQ(B.any(B.var("f"))->type(), ScalarKind::Bool);
  EXPECT_EQ(B.maxRed(B.var("i"))->type(), ScalarKind::Int);
  EXPECT_EQ(B.maxVal("A")->type(), ScalarKind::Int);
  EXPECT_EQ(B.sumVal("M")->type(), ScalarKind::Real);
}

TEST_F(BuilderTest, CallTypes) {
  ExprPtr C = B.callFn("Force", {});
  EXPECT_EQ(C->type(), ScalarKind::Real);
  StmtPtr S = B.callSub("Dump", {});
  EXPECT_EQ(S->kind(), Stmt::Kind::Call);
}

TEST_F(BuilderTest, StatementKinds) {
  EXPECT_EQ(B.set("i", B.lit(1))->kind(), Stmt::Kind::Assign);
  EXPECT_EQ(B.ifStmt(B.var("f"), {})->kind(), Stmt::Kind::If);
  EXPECT_EQ(B.where(B.var("f"), {})->kind(), Stmt::Kind::Where);
  EXPECT_EQ(B.doLoop("i", B.lit(1), B.lit(4), {})->kind(), Stmt::Kind::Do);
  EXPECT_EQ(B.whileLoop(B.var("f"), {})->kind(), Stmt::Kind::While);
  EXPECT_EQ(B.repeatUntil({}, B.var("f"))->kind(), Stmt::Kind::Repeat);
  EXPECT_EQ(B.forall("i", B.lit(1), B.lit(4), nullptr, {})->kind(),
            Stmt::Kind::Forall);
  EXPECT_EQ(B.label(10)->kind(), Stmt::Kind::Label);
  EXPECT_EQ(B.gotoStmt(10)->kind(), Stmt::Kind::Goto);
}

TEST_F(BuilderTest, DoLoopDefaults) {
  StmtPtr S = B.doLoop("i", B.lit(1), B.lit(8), {});
  const auto *D = cast<DoStmt>(S.get());
  EXPECT_EQ(D->step(), nullptr);
  EXPECT_FALSE(D->isParallel());
  StmtPtr S2 = B.doLoop("i", B.lit(1), B.lit(8), {}, B.lit(2),
                        /*IsParallel=*/true);
  const auto *D2 = cast<DoStmt>(S2.get());
  EXPECT_NE(D2->step(), nullptr);
  EXPECT_TRUE(D2->isParallel());
}

TEST_F(BuilderTest, BodyHelper) {
  Body Bd = Builder::body(B.set("i", B.lit(1)), B.set("i", B.lit(2)));
  EXPECT_EQ(Bd.size(), 2u);
}

} // namespace
