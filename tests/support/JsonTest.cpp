//===- tests/support/JsonTest.cpp ------------------------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace simdflat;
using namespace simdflat::json;

namespace {

TEST(Json, ScalarKinds) {
  EXPECT_TRUE(Value().isNull());
  EXPECT_TRUE(Value(true).isBool());
  EXPECT_TRUE(Value(true).asBool());
  EXPECT_TRUE(Value(int64_t{42}).isInt());
  EXPECT_EQ(Value(int64_t{42}).asInt(), 42);
  EXPECT_TRUE(Value(2.5).isNumber());
  EXPECT_DOUBLE_EQ(Value(2.5).asDouble(), 2.5);
  EXPECT_TRUE(Value("hi").isString());
  EXPECT_EQ(Value("hi").asString(), "hi");
  // Ints read back through the double accessor too.
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).asDouble(), 7.0);
}

TEST(Json, ObjectInsertionOrderPreserved) {
  Value O = Value::object();
  O.set("zebra", int64_t{1});
  O.set("alpha", int64_t{2});
  O.set("mid", int64_t{3});
  ASSERT_EQ(O.members().size(), 3u);
  EXPECT_EQ(O.members()[0].first, "zebra");
  EXPECT_EQ(O.members()[1].first, "alpha");
  EXPECT_EQ(O.members()[2].first, "mid");
  ASSERT_NE(O.get("alpha"), nullptr);
  EXPECT_EQ(O.get("alpha")->asInt(), 2);
  EXPECT_EQ(O.get("absent"), nullptr);
  // Re-setting replaces in place, no duplicate key.
  O.set("alpha", int64_t{9});
  EXPECT_EQ(O.members().size(), 3u);
  EXPECT_EQ(O.get("alpha")->asInt(), 9);
}

TEST(Json, DumpParseRoundTrip) {
  Value Doc = Value::object();
  Doc.set("name", "bench/x");
  Doc.set("count", int64_t{-17});
  Doc.set("ratio", 0.1);
  Doc.set("flag", false);
  Doc.set("nothing", Value());
  Value Arr = Value::array();
  Arr.push(int64_t{1});
  Arr.push("two");
  Arr.push(3.5);
  Doc.set("items", std::move(Arr));
  Value Nested = Value::object();
  Nested.set("inner", int64_t{1});
  Doc.set("nested", std::move(Nested));

  for (int Indent : {0, 2}) {
    auto Back = Value::parse(Doc.dump(Indent));
    ASSERT_TRUE(Back.ok()) << Back.error().render();
    EXPECT_EQ(Back->get("name")->asString(), "bench/x");
    EXPECT_EQ(Back->get("count")->asInt(), -17);
    EXPECT_DOUBLE_EQ(Back->get("ratio")->asDouble(), 0.1);
    EXPECT_FALSE(Back->get("flag")->asBool());
    EXPECT_TRUE(Back->get("nothing")->isNull());
    ASSERT_EQ(Back->get("items")->size(), 3u);
    EXPECT_EQ(Back->get("items")->at(1).asString(), "two");
    EXPECT_EQ(Back->get("nested")->get("inner")->asInt(), 1);
    // Round-tripping the dump again is a fixed point.
    EXPECT_EQ(Back->dump(Indent), Doc.dump(Indent));
  }
}

TEST(Json, StringEscaping) {
  Value V(std::string("a\"b\\c\n\t\x01z"));
  std::string Dumped = V.dump();
  EXPECT_EQ(Dumped, "\"a\\\"b\\\\c\\n\\t\\u0001z\"");
  auto Back = Value::parse(Dumped);
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(Back->asString(), "a\"b\\c\n\t\x01z");
}

TEST(Json, ParseUnicodeEscapes) {
  auto V = Value::parse("\"\\u00e9\\u20ac\"");
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(V->asString(), "\xc3\xa9\xe2\x82\xac"); // é then €
}

TEST(Json, ParseNumbers) {
  auto I = Value::parse("9223372036854775807");
  ASSERT_TRUE(I.ok());
  EXPECT_TRUE(I->isInt());
  EXPECT_EQ(I->asInt(), std::numeric_limits<int64_t>::max());
  // Overflowing the int64 range falls back to double, not an error.
  auto Big = Value::parse("123456789012345678901234567890");
  ASSERT_TRUE(Big.ok());
  EXPECT_TRUE(Big->isNumber());
  EXPECT_FALSE(Big->isInt());
  auto E = Value::parse("-1.25e3");
  ASSERT_TRUE(E.ok());
  EXPECT_DOUBLE_EQ(E->asDouble(), -1250.0);
}

TEST(Json, NonFiniteDoublesDumpSafely) {
  // NaN has no JSON spelling; the writer must not emit invalid tokens.
  EXPECT_EQ(Value(std::nan("")).dump(), "null");
  std::string Inf = Value(std::numeric_limits<double>::infinity()).dump();
  auto Back = Value::parse(Inf);
  ASSERT_TRUE(Back.ok());
  EXPECT_TRUE(Back->isNumber());
}

TEST(Json, ParseErrors) {
  for (const char *Bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated",
        "{\"a\":1,}", "01", "1 2", "{\"a\" 1}", "[1 2]", "\"\\q\"",
        "nulll"}) {
    auto R = Value::parse(Bad);
    EXPECT_FALSE(R.ok()) << "accepted invalid input: " << Bad;
    if (!R.ok()) {
      EXPECT_FALSE(R.error().render().empty());
    }
  }
}

TEST(Json, RejectsDuplicateObjectKeys) {
  // Duplicate keys are a silent-data-loss hazard (last-wins would drop
  // the first binding unnoticed); the strict parser refuses them.
  auto R = Value::parse(R"({"a": 1, "b": 2, "a": 3})");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().Message.find("duplicate object key"),
            std::string::npos);
  EXPECT_NE(R.error().Message.find("\"a\""), std::string::npos);
  // Nested objects are checked too, but an inner key may repeat an
  // outer one - scopes are independent.
  EXPECT_FALSE(Value::parse(R"({"o": {"x": 1, "x": 2}})").ok());
  EXPECT_TRUE(Value::parse(R"({"x": 1, "o": {"x": 2}})").ok());
  // Programmatic set() still replaces in place (not a parse).
  Value V = Value::object();
  V.set("k", 1);
  V.set("k", 2);
  EXPECT_EQ(V.get("k")->asInt(), 2);
}

TEST(Json, RejectsTrailingNonWhitespace) {
  for (const char *Bad : {"{} x", "1,", "[1] [2]", "null null",
                          "{\"a\": 1} }", "true\ngarbage"}) {
    auto R = Value::parse(Bad);
    ASSERT_FALSE(R.ok()) << "accepted: " << Bad;
    EXPECT_NE(R.error().Message.find("trailing"), std::string::npos)
        << Bad;
  }
  // Trailing whitespace (including a final newline, as writeFile
  // emits) is fine.
  EXPECT_TRUE(Value::parse("{\"a\": 1}\n").ok());
  EXPECT_TRUE(Value::parse("  [1, 2]  \t\r\n").ok());
}

TEST(Json, ParseDepthLimit) {
  std::string Deep(200, '[');
  Deep += std::string(200, ']');
  EXPECT_FALSE(Value::parse(Deep).ok());
  std::string Fine(50, '[');
  Fine += std::string(50, ']');
  EXPECT_TRUE(Value::parse(Fine).ok());
}

TEST(Json, FileRoundTrip) {
  Value Doc = Value::object();
  Doc.set("k", int64_t{5});
  std::string Path = testing::TempDir() + "/simdflat_json_test.json";
  ASSERT_TRUE(writeFile(Path, Doc));
  auto Back = parseFile(Path);
  ASSERT_TRUE(Back.ok()) << Back.error().render();
  EXPECT_EQ(Back->get("k")->asInt(), 5);
  EXPECT_FALSE(parseFile(Path + ".does-not-exist").ok());
}

} // namespace
