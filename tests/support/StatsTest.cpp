//===- tests/support/StatsTest.cpp -----------------------------*- C++ -*-===//

#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace simdflat;

TEST(Stats, Empty) {
  Summary S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.sum(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
}

TEST(Stats, SingleObservation) {
  Summary S;
  S.add(4.0);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_EQ(S.min(), 4.0);
  EXPECT_EQ(S.max(), 4.0);
  EXPECT_EQ(S.mean(), 4.0);
  EXPECT_EQ(S.variance(), 0.0);
}

TEST(Stats, PaperExampleTripCounts) {
  // L = 4,1,2,1,1,3,1,3 from Sec. 3: mean 2, max 4, sum 16.
  Summary S;
  for (double V : {4.0, 1.0, 2.0, 1.0, 1.0, 3.0, 1.0, 3.0})
    S.add(V);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_EQ(S.sum(), 16.0);
  EXPECT_EQ(S.mean(), 2.0);
  EXPECT_EQ(S.min(), 1.0);
  EXPECT_EQ(S.max(), 4.0);
  // Population variance: mean of squares 42/8 minus mean^2 4 = 1.25.
  EXPECT_DOUBLE_EQ(S.variance(), 1.25);
}

TEST(Stats, NegativeValues) {
  Summary S;
  S.add(-2.0);
  S.add(2.0);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.min(), -2.0);
  EXPECT_EQ(S.max(), 2.0);
  EXPECT_DOUBLE_EQ(S.variance(), 4.0);
}

TEST(Stats, ConstantSeriesHasZeroVariance) {
  Summary S;
  for (int I = 0; I < 100; ++I)
    S.add(7.5);
  EXPECT_NEAR(S.variance(), 0.0, 1e-12);
  EXPECT_EQ(S.stddev(), S.stddev()); // not NaN
}
