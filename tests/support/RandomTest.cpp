//===- tests/support/RandomTest.cpp ----------------------------*- C++ -*-===//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace simdflat;

TEST(Random, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 5);
}

TEST(Random, UniformIntInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.uniformInt(-3, 9);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 9);
  }
}

TEST(Random, UniformIntCoversRange) {
  Rng R(11);
  std::set<int64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.uniformInt(0, 4));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Random, UniformIntSingleton) {
  Rng R(3);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(R.uniformInt(5, 5), 5);
}

TEST(Random, UniformRealInUnitInterval) {
  Rng R(13);
  for (int I = 0; I < 1000; ++I) {
    double V = R.uniformReal();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(Random, UniformRealMeanRoughlyHalf) {
  Rng R(17);
  double Sum = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += R.uniformReal();
  EXPECT_NEAR(Sum / N, 0.5, 0.02);
}

TEST(Random, NormalMoments) {
  Rng R(19);
  double Sum = 0, Sum2 = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double V = R.normal();
    Sum += V;
    Sum2 += V * V;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.05);
  EXPECT_NEAR(Sum2 / N, 1.0, 0.05);
}

TEST(Random, ShufflePermutes) {
  Rng R(23);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::multiset<int> A(V.begin(), V.end()), B(Orig.begin(), Orig.end());
  EXPECT_EQ(A, B);
}

TEST(Random, ChanceExtremes) {
  Rng R(29);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.chance(0.0));
    EXPECT_TRUE(R.chance(1.0));
  }
}
