//===- tests/support/FormatTest.cpp ----------------------------*- C++ -*-===//

#include "support/Format.h"

#include <gtest/gtest.h>

using namespace simdflat;

TEST(Format, Formatf) {
  EXPECT_EQ(formatf("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(formatf("%s", "hello"), "hello");
  EXPECT_EQ(formatf("%.3f", 1.23456), "1.235");
  EXPECT_EQ(formatf("empty"), "empty");
}

TEST(Format, FormatfLongOutput) {
  std::string Long(1000, 'x');
  EXPECT_EQ(formatf("%s!", Long.c_str()), Long + "!");
}

TEST(Format, PadLeft) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
  EXPECT_EQ(padLeft("", 2), "  ");
}

TEST(Format, PadRight) {
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padRight("abcdef", 3), "abcdef");
}

TEST(Format, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Format, Repeat) {
  EXPECT_EQ(repeat("-", 3), "---");
  EXPECT_EQ(repeat("ab", 2), "abab");
  EXPECT_EQ(repeat("x", 0), "");
}
