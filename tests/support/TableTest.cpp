//===- tests/support/TableTest.cpp -----------------------------*- C++ -*-===//

#include "support/Table.h"

#include <gtest/gtest.h>

using namespace simdflat;

TEST(Table, AlignsColumns) {
  TextTable T;
  T.setHeader({"Gran", "Lu", "Lf"});
  T.addRow({"1024", "1512", "906"});
  T.addRow({"8192", "216", "216"});
  std::string Out = T.render();
  EXPECT_EQ(Out, "Gran    Lu   Lf\n"
                 "---------------\n"
                 "1024  1512  906\n"
                 "8192   216  216\n");
}

TEST(Table, SparseRows) {
  // Table 1 in the paper has empty cells for unrunnable configurations.
  TextTable T;
  T.setHeader({"P", "L1u", "L2u", "Lf"});
  T.addRow({"1024", "3.89"});
  T.addRow({"2048", "6.57", "3.86", "2.13"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("1024  3.89\n"), std::string::npos);
  EXPECT_NE(Out.find("2048  6.57  3.86  2.13"), std::string::npos);
}

TEST(Table, Separator) {
  TextTable T;
  T.setHeader({"a", "b"});
  T.addRow({"1", "2"});
  T.addSeparator();
  T.addRow({"3", "4"});
  std::string Out = T.render();
  // Header separator plus the explicit one.
  size_t First = Out.find("----");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(Out.find("----", First + 1), std::string::npos);
}

TEST(Table, LeftAlignOverride) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.setAlign(1, TextTable::Align::Left);
  T.addRow({"x", "1"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("x     1"), std::string::npos);
}

TEST(Table, NumRows) {
  TextTable T;
  T.setHeader({"a"});
  EXPECT_EQ(T.numRows(), 0u);
  T.addRow({"1"});
  T.addRow({"2"});
  EXPECT_EQ(T.numRows(), 2u);
}
