//===- tests/robustness/FaultInjectionTest.cpp -----------------*- C++ -*-===//
//
// Differential fault injection: randomized DOALL nests run through all
// four executors (scalar, MIMD, unflattened SIMD, flattened SIMD) with
// at most one injected fault - an out-of-bounds subscript, a zero
// divisor, a hostile extern, or a starved fuel budget. Every executor
// must either complete with identical stores or raise a trap of the
// same kind; no generated input may abort the process.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include "interp/MimdInterp.h"
#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::transform;

namespace {

enum class FaultMode {
  None,          // control: everything completes, stores agree
  OutOfBounds,   // one row's trip count walks past X's extent
  DivByZero,     // one row divides by D(i) == 0
  HostileExtern, // the bound extern throws ExternError on its first call
  FuelLimit,     // a budget far below the work the nest needs
};

struct FaultCase {
  Program Prog;
  FaultMode Mode = FaultMode::None;
  int64_t K = 0;
  std::vector<int64_t> L;
  std::vector<int64_t> D;
  int64_t Fuel = 0; // 0 = unlimited

  explicit FaultCase(Program P) : Prog(std::move(P)) {}
};

constexpr int64_t MaxL = 6;

/// An irregular DOALL/DO nest in the paper's shape, with one fault
/// injected according to \p Mode:
///
///   DOALL i = 1, K
///     DO j = 1, L(i)
///       X(i,j) = i*10 + j  [+ j / D(i)]  [+ Probe(j)]
///       A(i)   = A(i) + j
FaultCase makeCase(uint64_t Seed, FaultMode Mode) {
  Rng R(Seed);
  int64_t K = R.uniformInt(3, 8);
  // An injected fault must actually execute, so the faulting modes
  // force at least one inner trip per row; the control mode keeps
  // zero-trip rows in play.
  bool MinOne = Mode != FaultMode::None || R.chance(0.5);
  std::vector<int64_t> L, D;
  for (int64_t I = 0; I < K; ++I) {
    L.push_back(R.uniformInt(MinOne ? 1 : 0, 5));
    D.push_back(1 + R.uniformInt(0, 3));
  }
  int64_t Bad = R.uniformInt(0, K - 1);
  if (Mode == FaultMode::OutOfBounds)
    L[Bad] = MaxL + 1 + R.uniformInt(0, 2);
  if (Mode == FaultMode::DivByZero)
    D[Bad] = 0;

  Program P("fault" + std::to_string(Seed));
  P.addVar("K", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {K}, Dist::Distributed);
  P.addVar("D", ScalarKind::Int, {K}, Dist::Distributed);
  P.addVar("X", ScalarKind::Int, {K, MaxL}, Dist::Distributed);
  P.addVar("A", ScalarKind::Int, {K}, Dist::Distributed);
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  if (Mode == FaultMode::HostileExtern)
    P.addExtern("Probe", ScalarKind::Int, /*Pure=*/false);
  Builder B(P);

  ExprPtr Val = B.add(B.mul(B.var("i"), B.lit(10)), B.var("j"));
  if (Mode == FaultMode::DivByZero)
    Val = B.add(std::move(Val), B.div(B.var("j"), B.at("D", B.var("i"))));
  if (Mode == FaultMode::HostileExtern) {
    std::vector<ExprPtr> Args;
    Args.push_back(B.var("j"));
    Val = B.add(std::move(Val), B.callFn("Probe", std::move(Args)));
  }
  Body Inner;
  Inner.push_back(
      B.assign(B.at("X", B.var("i"), B.var("j")), std::move(Val)));
  Inner.push_back(B.assign(B.at("A", B.var("i")),
                           B.add(B.at("A", B.var("i")), B.var("j"))));

  Body Outer;
  Outer.push_back(B.doLoop("j", B.lit(1), B.at("L", B.var("i")),
                           std::move(Inner)));
  P.body().push_back(B.doLoop("i", B.lit(1), B.var("K"),
                              std::move(Outer), nullptr,
                              /*IsParallel=*/true));

  FaultCase Out(std::move(P));
  Out.Mode = Mode;
  Out.K = K;
  Out.L = std::move(L);
  Out.D = std::move(D);
  // Far below the instructions the nest needs on any executor (with
  // MinOne there are at least 3 inner iterations of two assignments
  // each), so every executor runs out mid-flight.
  if (Mode == FaultMode::FuelLimit)
    Out.Fuel = 5;
  return Out;
}

ExternRegistry makeRegistry() {
  ExternRegistry Reg;
  Reg.bind("Probe", [](std::span<const ScalVal> A) -> ScalVal {
    if (A[0].I == 1)
      throw ExternError{"probe rejected its input"};
    return ScalVal::makeInt(A[0].I);
  });
  return Reg;
}

struct Stores {
  std::vector<int64_t> X, A;
  bool operator==(const Stores &O) const = default;
};

struct Outcome {
  std::string Executor;
  std::optional<Trap> T;
  Stores S;
};

void seed(DataStore &S, const FaultCase &FC) {
  S.setInt("K", FC.K);
  S.setIntArray("L", FC.L);
  S.setIntArray("D", FC.D);
}

RunOptions optsFor(const FaultCase &FC) {
  RunOptions O;
  O.Fuel = FC.Fuel;
  return O;
}

Outcome runScalar(const FaultCase &FC, const ExternRegistry *Reg) {
  ScalarInterp I(FC.Prog, machine::MachineConfig::sparc2(), Reg,
                 optsFor(FC));
  seed(I.store(), FC);
  Outcome O{"scalar", {}, {}};
  RunOutcome<ScalarRunResult> R = I.run();
  if (!R) {
    O.T = R.error();
    return O;
  }
  O.S = {I.store().getIntArray("X"), I.store().getIntArray("A")};
  return O;
}

Outcome runMimd(const FaultCase &FC, const ExternRegistry *Reg) {
  MimdInterp I(FC.Prog, machine::MachineConfig::sparc2(), Reg,
               /*NumProcs=*/3, machine::Layout::Block, optsFor(FC));
  Outcome O{"mimd", {}, {}};
  RunOutcome<MimdRunResult> R =
      I.run([&](DataStore &S) { seed(S, FC); });
  if (!R) {
    O.T = R.error();
    return O;
  }
  O.S = {R->Merged->getIntArray("X"), R->Merged->getIntArray("A")};
  return O;
}

Outcome runSimd(const FaultCase &FC, const ExternRegistry *Reg,
                bool Flatten) {
  PipelineOptions PO;
  PO.Layout = machine::Layout::Cyclic;
  PO.Flatten = Flatten;
  PipelineReport Rep;
  Program P = compileForSimd(FC.Prog, PO, &Rep).value();
  // The pure-arithmetic nests must flatten; the hostile-extern case may
  // legitimately fall back to the unflattened path.
  if (Flatten && FC.Mode != FaultMode::HostileExtern) {
    EXPECT_TRUE(Rep.Flattened) << Rep.FlattenSkipReason;
  }

  machine::MachineConfig M;
  M.Name = "fault";
  M.Processors = 4;
  M.Gran = 4;
  M.DataLayout = machine::Layout::Cyclic;
  SimdInterp I(P, M, Reg, optsFor(FC));
  seed(I.store(), FC);
  Outcome O{Flatten ? "simd-flat" : "simd", {}, {}};
  RunOutcome<SimdRunResult> R = I.run();
  if (!R) {
    O.T = R.error();
    return O;
  }
  O.S = {I.store().getIntArray("X"), I.store().getIntArray("A")};
  return O;
}

class FaultInjection : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultInjection, ExecutorsAgreeOnResultOrTrapKind) {
  uint64_t Seed = GetParam();
  FaultMode Mode = static_cast<FaultMode>(Seed % 5);
  FaultCase FC = makeCase(Seed, Mode);
  ExternRegistry Reg = makeRegistry();
  const ExternRegistry *R =
      FC.Mode == FaultMode::HostileExtern ? &Reg : nullptr;

  std::vector<Outcome> Outs;
  Outs.push_back(runScalar(FC, R));
  Outs.push_back(runMimd(FC, R));
  Outs.push_back(runSimd(FC, R, /*Flatten=*/false));
  Outs.push_back(runSimd(FC, R, /*Flatten=*/true));

  // The injected fault (or its absence) dictates the scalar outcome.
  const Outcome &Ref = Outs.front();
  std::optional<TrapKind> Want;
  switch (Mode) {
  case FaultMode::None:
    break;
  case FaultMode::OutOfBounds:
    Want = TrapKind::OutOfBounds;
    break;
  case FaultMode::DivByZero:
    Want = TrapKind::DivByZero;
    break;
  case FaultMode::HostileExtern:
    Want = TrapKind::ExternFailure;
    break;
  case FaultMode::FuelLimit:
    Want = TrapKind::FuelExhausted;
    break;
  }
  if (!Want) {
    ASSERT_FALSE(Ref.T.has_value())
        << "control case trapped: " << Ref.T->render();
  } else {
    ASSERT_TRUE(Ref.T.has_value())
        << "injected fault never fired\n" << printBody(FC.Prog.body());
    EXPECT_EQ(Ref.T->Kind, *Want) << Ref.T->render();
  }

  // Differential check: every executor matches the scalar reference -
  // same trap kind, or same stores.
  for (const Outcome &O : Outs) {
    ASSERT_EQ(O.T.has_value(), Ref.T.has_value())
        << O.Executor << ": "
        << (O.T ? O.T->render() : "completed") << "\n  scalar: "
        << (Ref.T ? Ref.T->render() : "completed") << "\n"
        << printBody(FC.Prog.body());
    if (O.T)
      EXPECT_EQ(O.T->Kind, Ref.T->Kind)
          << O.Executor << ": " << O.T->render() << "\n  scalar: "
          << Ref.T->render();
    else
      EXPECT_EQ(O.S, Ref.S) << O.Executor;
  }
}

// Seed % 5 selects the fault mode, so the range covers every mode
// eight times over distinct programs.
INSTANTIATE_TEST_SUITE_P(Seeds, FaultInjection,
                         ::testing::Range<uint64_t>(0, 40));

} // namespace
