//===- tests/transform/PipelineFuzzTest.cpp --------------------*- C++ -*-===//
//
// Property-based pipeline fuzzing: randomly generated irregular loop
// nests must compute identical stores under (a) sequential execution,
// (b) flattened sequential execution, (c) the full flatten+SIMDize
// pipeline on 1..8 lanes under both layouts, and (d) the unflattened
// SIMDize pipeline - and the flattened SIMD schedule must never take
// more work steps than the unflattened one.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include "frontend/Parser.h"
#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "ir/Walk.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::transform;

namespace {

/// A randomly generated nest plus its runtime inputs.
struct FuzzCase {
  Program Prog;
  int64_t K;
  std::vector<int64_t> L;
  bool MinOne;

  explicit FuzzCase(Program P) : Prog(std::move(P)) {}
};

/// Generates a DOALL nest with a random inner loop form, random Pre/Post
/// regions and random body statements - always safe (owner-computes
/// writes, privatizable scalars), sometimes with zero-trip rows.
FuzzCase makeCase(uint64_t Seed) {
  Rng R(Seed);
  int64_t K = R.uniformInt(1, 10);
  bool MinOne = R.chance(0.5);
  std::vector<int64_t> L;
  for (int64_t I = 0; I < K; ++I)
    L.push_back(R.uniformInt(MinOne ? 1 : 0, 5));
  // The step-2 inner form indexes X by j = 1, 3, ..., 2*L(i)-1.
  int64_t MaxL = 12;

  Program P("fuzz" + std::to_string(Seed));
  P.addVar("K", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {K}, Dist::Distributed);
  P.addVar("X", ScalarKind::Int, {K, MaxL}, Dist::Distributed);
  P.addVar("A", ScalarKind::Int, {K}, Dist::Distributed);
  P.addVar("C", ScalarKind::Int, {K}, Dist::Distributed);
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  P.addVar("s", ScalarKind::Int);
  Builder B(P);

  // Inner body: one or two owner-computes updates.
  Body Inner;
  if (R.chance(0.8))
    Inner.push_back(B.assign(B.at("X", B.var("i"), B.var("j")),
                             B.add(B.mul(B.var("i"), B.lit(10)),
                                   B.var("j"))));
  if (R.chance(0.6))
    Inner.push_back(B.assign(
        B.at("A", B.var("i")),
        B.add(B.at("A", B.var("i")), B.add(B.var("j"), B.lit(1)))));
  if (Inner.empty())
    Inner.push_back(B.assign(B.at("A", B.var("i")), B.var("j")));
  // Sometimes make the body conditional (a lane-varying IF that the
  // SIMDizer must turn into a WHERE inside the flattened loop).
  if (R.chance(0.4)) {
    Body Else;
    if (R.chance(0.5))
      Else.push_back(B.assign(
          B.at("A", B.var("i")),
          B.sub(B.at("A", B.var("i")), B.lit(1))));
    Body Wrapped;
    Wrapped.push_back(B.ifStmt(
        B.eq(B.mod(B.add(B.var("i"), B.var("j")), B.lit(2)), B.lit(0)),
        std::move(Inner), std::move(Else)));
    Inner = std::move(Wrapped);
  }

  // Random inner loop form.
  int Form = static_cast<int>(R.uniformInt(0, 3));
  StmtPtr InnerLoop;
  Body Pre;
  bool UsesS = R.chance(0.5);
  if (UsesS)
    Pre.push_back(B.set("s", B.add(B.at("L", B.var("i")), B.lit(2))));
  switch (Form) {
  case 0: // DO j = 1, L(i)
    InnerLoop = B.doLoop("j", B.lit(1), B.at("L", B.var("i")),
                         std::move(Inner));
    break;
  case 1: { // DO with step 2 over 1..2*L(i) (same trip count)
    InnerLoop = B.doLoop("j", B.lit(1),
                         B.mul(B.at("L", B.var("i")), B.lit(2)),
                         std::move(Inner), B.lit(2));
    break;
  }
  case 2: { // WHILE (j <= L(i))
    Pre.push_back(B.set("j", B.lit(1)));
    Body WB = std::move(Inner);
    WB.push_back(B.set("j", B.add(B.var("j"), B.lit(1))));
    InnerLoop = B.whileLoop(B.le(B.var("j"), B.at("L", B.var("i"))),
                            std::move(WB));
    break;
  }
  default: { // REPEAT ... UNTIL (j > L(i)) - runs at least once
    Pre.push_back(B.set("j", B.lit(1)));
    Body RB = std::move(Inner);
    RB.push_back(B.set("j", B.add(B.var("j"), B.lit(1))));
    InnerLoop = B.repeatUntil(std::move(RB),
                              B.gt(B.var("j"), B.at("L", B.var("i"))));
    break;
  }
  }

  Body Outer = std::move(Pre);
  Outer.push_back(std::move(InnerLoop));
  if (UsesS && R.chance(0.7))
    Outer.push_back(B.assign(B.at("C", B.var("i")), B.var("s")));

  P.body().push_back(B.doLoop("i", B.lit(1), B.var("K"),
                              std::move(Outer), nullptr,
                              /*IsParallel=*/true));
  FuzzCase Out(std::move(P));
  Out.K = K;
  Out.L = std::move(L);
  Out.MinOne = MinOne;
  return Out;
}

struct Stores {
  std::vector<int64_t> X, A, C;
  bool operator==(const Stores &O) const = default;
};

Stores grab(const DataStore &S) {
  return {S.getIntArray("X"), S.getIntArray("A"), S.getIntArray("C")};
}

Stores runScalar(const FuzzCase &FC, Program &P) {
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  ScalarInterp Interp(P, M, nullptr);
  Interp.store().setInt("K", FC.K);
  Interp.store().setIntArray("L", FC.L);
  Interp.run().value();
  return grab(Interp.store());
}

std::pair<Stores, int64_t> runSimd(const FuzzCase &FC, Program &P,
                                   int64_t Lanes, machine::Layout Lay) {
  machine::MachineConfig M;
  M.Name = "fuzz";
  M.Processors = Lanes;
  M.Gran = Lanes;
  M.DataLayout = Lay;
  RunOptions Opts;
  Opts.WorkTargets = {"X", "A"};
  SimdInterp Interp(P, M, nullptr, Opts);
  Interp.store().setInt("K", FC.K);
  Interp.store().setIntArray("L", FC.L);
  SimdRunResult R = Interp.run().value();
  return {grab(Interp.store()), R.Stats.WorkSteps};
}

class PipelineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFuzz, AllExecutionsAgree) {
  FuzzCase FC = makeCase(GetParam());

  Program Orig = cloneProgram(FC.Prog);
  Stores Want = runScalar(FC, Orig);

  // Flattened, sequential (no lane distribution).
  {
    Program P = cloneProgram(FC.Prog);
    FlattenOptions Opts;
    Opts.AssumeInnerMinOneTrip = FC.MinOne;
    FlattenResult R = flattenNest(P, Opts);
    ASSERT_TRUE(R.Changed) << R.Reason << "\n"
                           << printBody(FC.Prog.body());
    EXPECT_EQ(runScalar(FC, P), Want) << "flattened scalar, level "
                                      << flattenLevelName(R.Applied);
  }

  // Full SIMD pipelines.
  for (int64_t Lanes : {1, 3, 4, 8}) {
    for (machine::Layout Lay :
         {machine::Layout::Cyclic, machine::Layout::Block}) {
      PipelineOptions PO;
      PO.Layout = Lay;
      PO.AssumeInnerMinOneTrip = FC.MinOne;
      PipelineReport Rep;
      Program Flat = compileForSimd(FC.Prog, PO, &Rep).value();
      ASSERT_TRUE(Rep.Flattened) << Rep.FlattenSkipReason;
      auto [FlatStores, FlatSteps] = runSimd(FC, Flat, Lanes, Lay);
      EXPECT_EQ(FlatStores, Want)
          << "lanes " << Lanes << " layout " << static_cast<int>(Lay)
          << "\n" << printBody(Flat.body());

      PO.Flatten = false;
      Program Unflat = compileForSimd(FC.Prog, PO).value();
      auto [UnflatStores, UnflatSteps] = runSimd(FC, Unflat, Lanes, Lay);
      EXPECT_EQ(UnflatStores, Want) << "unflattened, lanes " << Lanes;
      // The conservative Fig. 10 form runs BODY one final time fully
      // masked after the catch-up loop exhausts every lane (the WHILE
      // ANY(t1) re-test happens only at the top); that costs one masked
      // step per work statement in BODY. The optimized forms advance
      // after BODY in the same iteration and have no such tail.
      int64_t WorkStmtsInBody = 0;
      forEachStmt(FC.Prog.body(), [&](const Stmt &S) {
        if (const auto *A = dyn_cast<AssignStmt>(&S))
          if (const auto *T = dyn_cast<ArrayRef>(&A->target()))
            WorkStmtsInBody += T->name() == "X" || T->name() == "A";
      });
      int64_t Slack = Rep.LevelApplied == FlattenLevel::General
                          ? WorkStmtsInBody
                          : 0;
      EXPECT_LE(FlatSteps, UnflatSteps + Slack) << "lanes " << Lanes;

      // Every generated SIMD program must survive a print -> parse ->
      // print round trip through the front end (lanes/layout invariant;
      // do it once).
      if (Lanes == 1 && Lay == machine::Layout::Cyclic) {
        std::string Printed = printProgram(Flat);
        frontend::ParseResult PR = frontend::parseProgram(Printed);
        ASSERT_TRUE(PR.ok()) << PR.Diags.renderAll() << Printed;
        EXPECT_EQ(printProgram(*PR.Prog), Printed);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<uint64_t>(0, 60));

} // namespace
