//===- tests/transform/FlattenTest.cpp -------------------------*- C++ -*-===//
//
// Verifies the loop-flattening transformation (Figs. 10-12): golden
// shapes for the EXAMPLE, semantic equivalence across every loop form
// and level, the exact instruction-order invariant for impure guards,
// per-lane induction distribution, deep nests and rejection reasons.
//
//===----------------------------------------------------------------------===//

#include "transform/Flatten.h"

#include "interp/ScalarInterp.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "ir/Walk.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::transform;
using namespace simdflat::workloads;

namespace {

machine::MachineConfig sparc() { return machine::MachineConfig::sparc2(); }

std::vector<int64_t> runExample(Program &P, const ExampleSpec &Spec,
                                const ExternRegistry *Reg = nullptr) {
  machine::MachineConfig M = sparc();
  ScalarInterp Interp(P, M, Reg);
  Interp.store().setInt("K", Spec.K);
  Interp.store().setIntArray("L", Spec.L);
  Interp.run().value();
  return Interp.store().getIntArray("X");
}

TEST(Flatten, Figure12Golden) {
  // EXAMPLE flattened at the done-test level must be Fig. 12 (our done
  // test spells j >= L(i) rather than j = L(i)).
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  FlattenOptions Opts;
  Opts.Force = FlattenLevel::DoneTest;
  Opts.AssumeInnerMinOneTrip = true;
  FlattenResult R = flattenNest(P, Opts);
  ASSERT_TRUE(R.Changed) << R.Reason;
  EXPECT_EQ(R.Applied, FlattenLevel::DoneTest);
  EXPECT_EQ(R.OuterIndexVar, "i");
  EXPECT_EQ(printBody(P.body()), "i = 1\n"
                                 "j = 1\n"
                                 "WHILE (i <= K)\n"
                                 "  X(i, j) = i * j\n"
                                 "  IF (j >= L(i)) THEN\n"
                                 "    i = i + 1\n"
                                 "    j = 1\n"
                                 "  ELSE\n"
                                 "    j = j + 1\n"
                                 "  ENDIF\n"
                                 "ENDWHILE\n");
}

TEST(Flatten, Figure11Golden) {
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  FlattenOptions Opts;
  Opts.Force = FlattenLevel::Optimized;
  Opts.AssumeInnerMinOneTrip = true;
  FlattenResult R = flattenNest(P, Opts);
  ASSERT_TRUE(R.Changed) << R.Reason;
  EXPECT_EQ(printBody(P.body()), "i = 1\n"
                                 "j = 1\n"
                                 "WHILE (i <= K)\n"
                                 "  X(i, j) = i * j\n"
                                 "  j = j + 1\n"
                                 "  IF (.NOT. j <= L(i)) THEN\n"
                                 "    i = i + 1\n"
                                 "    j = 1\n"
                                 "  ENDIF\n"
                                 "ENDWHILE\n");
}

TEST(Flatten, Figure10Golden) {
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  FlattenOptions Opts;
  Opts.Force = FlattenLevel::General;
  FlattenResult R = flattenNest(P, Opts);
  ASSERT_TRUE(R.Changed) << R.Reason;
  EXPECT_EQ(printBody(P.body()), "i = 1\n"
                                 "t1 = i <= K\n"
                                 "IF (t1) THEN\n"
                                 "  j = 1\n"
                                 "ENDIF\n"
                                 "WHILE (t1)\n"
                                 "  t2 = j <= L(i)\n"
                                 "  WHILE (t1 .AND. .NOT. t2)\n"
                                 "    i = i + 1\n"
                                 "    t1 = i <= K\n"
                                 "    IF (t1) THEN\n"
                                 "      j = 1\n"
                                 "      t2 = j <= L(i)\n"
                                 "    ENDIF\n"
                                 "  ENDWHILE\n"
                                 "  IF (t1) THEN\n"
                                 "    X(i, j) = i * j\n"
                                 "    j = j + 1\n"
                                 "  ENDIF\n"
                                 "ENDWHILE\n");
}

struct EquivCase {
  LoopForm Inner;
  FlattenLevel Level;
  bool AssumeMinOne;
};

class FlattenEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(FlattenEquivalence, MatchesOriginalStores) {
  EquivCase C = GetParam();
  // Several trip-count patterns, including zero-trip rows for the
  // general level (pre-test forms only).
  std::vector<ExampleSpec> Specs = {
      paperExampleSpec(),
      {1, {1}},
      {5, {3, 3, 3, 3, 3}},
      {6, {1, 5, 2, 4, 3, 6}},
  };
  bool PostTestForm =
      C.Inner == LoopForm::Repeat || C.Inner == LoopForm::GotoLoop;
  if (!C.AssumeMinOne && !PostTestForm && C.Level == FlattenLevel::General)
    Specs.push_back({4, {2, 0, 0, 3}}); // zero-trip inner iterations

  for (const ExampleSpec &Spec : Specs) {
    Program Orig = makeExample(Spec, C.Inner);
    std::vector<int64_t> Want = runExample(Orig, Spec);

    Program P = makeExample(Spec, C.Inner);
    FlattenOptions Opts;
    Opts.Force = C.Level;
    Opts.AssumeInnerMinOneTrip = C.AssumeMinOne;
    FlattenResult R = flattenNest(P, Opts);
    if (!R.Changed) {
      // Some level/form combinations are legitimately rejected (e.g.
      // DoneTest needs a counted inner loop).
      continue;
    }
    EXPECT_EQ(runExample(P, Spec), Want)
        << "inner " << static_cast<int>(C.Inner) << " level "
        << flattenLevelName(C.Level) << " K=" << Spec.K;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormsAndLevels, FlattenEquivalence,
    ::testing::Values(
        EquivCase{LoopForm::Do, FlattenLevel::General, false},
        EquivCase{LoopForm::Do, FlattenLevel::Optimized, true},
        EquivCase{LoopForm::Do, FlattenLevel::DoneTest, true},
        EquivCase{LoopForm::While, FlattenLevel::General, false},
        EquivCase{LoopForm::While, FlattenLevel::Optimized, true},
        EquivCase{LoopForm::Repeat, FlattenLevel::Optimized, false},
        EquivCase{LoopForm::Repeat, FlattenLevel::DoneTest, false}));

TEST(Flatten, AutoLevelSelection) {
  ExampleSpec Spec = paperExampleSpec();
  {
    // DO inner + min-one assumption: best level is DoneTest.
    Program P = makeExample(Spec, LoopForm::Do);
    FlattenOptions Opts;
    Opts.AssumeInnerMinOneTrip = true;
    FlattenResult R = flattenNest(P, Opts);
    ASSERT_TRUE(R.Changed) << R.Reason;
    EXPECT_EQ(R.Applied, FlattenLevel::DoneTest);
  }
  {
    // Without the assumption, min-one is unprovable: fall to General.
    Program P = makeExample(Spec, LoopForm::Do);
    FlattenResult R = flattenNest(P);
    ASSERT_TRUE(R.Changed) << R.Reason;
    EXPECT_EQ(R.Applied, FlattenLevel::General);
  }
  {
    // WHILE inner has no done test: Optimized at best.
    Program P = makeExample(Spec, LoopForm::While);
    FlattenOptions Opts;
    Opts.AssumeInnerMinOneTrip = true;
    FlattenResult R = flattenNest(P, Opts);
    ASSERT_TRUE(R.Changed) << R.Reason;
    EXPECT_EQ(R.Applied, FlattenLevel::Optimized);
  }
  {
    // REPEAT inner is structurally min-one: Optimized without the flag.
    Program P = makeExample(Spec, LoopForm::Repeat);
    FlattenResult R = flattenNest(P);
    ASSERT_TRUE(R.Changed) << R.Reason;
    EXPECT_EQ(R.Applied, FlattenLevel::Optimized);
  }
}

TEST(Flatten, ImpureGuardForcesGeneralAndPreservesCallOrder) {
  // The paper's invariant: "we still execute exactly the same
  // instructions in the same order and the same number of times."
  ExampleSpec Spec{3, {2, 1, 3}};

  auto RunAndLog = [&](Program &P) {
    ExternRegistry Reg;
    std::vector<int64_t> Log;
    int64_t Counter = 0;
    Reg.bind("Bump", [&](std::span<const ScalVal>) {
      ++Counter;
      Log.push_back(Counter);
      return ScalVal::makeInt(Counter);
    });
    runExample(P, Spec, &Reg);
    return Log;
  };

  Program Orig = makeExampleImpureGuard(Spec);
  std::vector<int64_t> WantLog = RunAndLog(Orig);

  // The conservative dependence test cannot prove a loop with impure
  // calls parallel; the DOALL header is the user's assertion (Sec. 6).
  Program P = makeExampleImpureGuard(Spec);
  FlattenOptions GOpts;
  GOpts.CheckSafety = false;
  FlattenResult R = flattenNest(P, GOpts);
  ASSERT_TRUE(R.Changed) << R.Reason;
  EXPECT_EQ(R.Applied, FlattenLevel::General); // impure guard
  EXPECT_EQ(RunAndLog(P), WantLog);

  // Forcing an optimized level must be rejected.
  Program P2 = makeExampleImpureGuard(Spec);
  FlattenOptions Opts;
  Opts.CheckSafety = false;
  Opts.Force = FlattenLevel::Optimized;
  Opts.AssumeInnerMinOneTrip = true;
  FlattenResult R2 = flattenNest(P2, Opts);
  EXPECT_FALSE(R2.Changed);
  EXPECT_NE(R2.Reason.find("side-effect"), std::string::npos);
}

TEST(Flatten, DistributedInductionIsSequentialOnOneLane) {
  // With LANEINDEX()=NUMLANES()=1 (scalar machine), the distributed
  // flattened program must still compute the original stores.
  ExampleSpec Spec = paperExampleSpec();
  Program Orig = makeExample(Spec);
  std::vector<int64_t> Want = runExample(Orig, Spec);
  for (machine::Layout L :
       {machine::Layout::Block, machine::Layout::Cyclic}) {
    Program P = makeExample(Spec);
    FlattenOptions Opts;
    Opts.AssumeInnerMinOneTrip = true;
    Opts.DistributeOuter = L;
    FlattenResult R = flattenNest(P, Opts);
    ASSERT_TRUE(R.Changed) << R.Reason;
    EXPECT_EQ(runExample(P, Spec), Want);
  }
}

TEST(Flatten, DistributedCyclicGolden) {
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  FlattenOptions Opts;
  Opts.Force = FlattenLevel::DoneTest;
  Opts.AssumeInnerMinOneTrip = true;
  Opts.DistributeOuter = machine::Layout::Cyclic;
  FlattenResult R = flattenNest(P, Opts);
  ASSERT_TRUE(R.Changed) << R.Reason;
  // Fig. 15 shape: start at the lane id, stride by the lane count.
  EXPECT_EQ(printBody(P.body()),
            "i = 1 + (LANEINDEX() - 1)\n"
            "j = 1\n"
            "WHILE (i <= K)\n"
            "  X(i, j) = i * j\n"
            "  IF (j >= L(i)) THEN\n"
            "    i = i + NUMLANES()\n"
            "    j = 1\n"
            "  ELSE\n"
            "    j = j + 1\n"
            "  ENDIF\n"
            "ENDWHILE\n");
}

TEST(Flatten, PreAndPostRegions) {
  // DOALL i { s = L(i)*2 (Pre); DO j = 1, s { A(i) = A(i)+j }; C(i) = s
  // (Post) }: Pre/Post must execute once per outer iteration.
  Program P("prepost");
  P.addVar("K", ScalarKind::Int);
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  P.addVar("s", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {4}, Dist::Distributed);
  P.addVar("A", ScalarKind::Int, {4}, Dist::Distributed);
  P.addVar("C", ScalarKind::Int, {4}, Dist::Distributed);
  Builder B(P);
  Body InnerBody = Builder::body(B.assign(
      B.at("A", B.var("i")), B.add(B.at("A", B.var("i")), B.var("j"))));
  Body OuterBody = Builder::body(
      B.set("s", B.mul(B.at("L", B.var("i")), B.lit(2))),
      B.doLoop("j", B.lit(1), B.var("s"), std::move(InnerBody)),
      B.assign(B.at("C", B.var("i")), B.var("s")));
  P.body().push_back(B.doLoop("i", B.lit(1), B.var("K"),
                              std::move(OuterBody), nullptr,
                              /*IsParallel=*/true));

  auto Run = [&](Program &Q) {
    machine::MachineConfig M = sparc();
    ScalarInterp Interp(Q, M, nullptr);
    Interp.store().setInt("K", 4);
    std::vector<int64_t> L = {2, 1, 3, 1};
    Interp.store().setIntArray("L", L);
    Interp.run().value();
    return std::make_pair(Interp.store().getIntArray("A"),
                          Interp.store().getIntArray("C"));
  };

  Program Orig = cloneProgram(P);
  auto Want = Run(Orig);
  FlattenOptions Opts;
  Opts.AssumeInnerMinOneTrip = true;
  FlattenResult R = flattenNest(P, Opts);
  ASSERT_TRUE(R.Changed) << R.Reason;
  auto Got = Run(P);
  EXPECT_EQ(Got.first, Want.first);
  EXPECT_EQ(Got.second, Want.second);
}

TEST(Flatten, GuardedReinitWhenInitReadsArrays) {
  // Pre region reads L(i): after the last advance i is out of range, so
  // the re-initialization must be guarded (no out-of-bounds read).
  Program P("guardedinit");
  P.addVar("K", ScalarKind::Int);
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  P.addVar("lim", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {3}, Dist::Distributed);
  P.addVar("A", ScalarKind::Int, {3}, Dist::Distributed);
  Builder B(P);
  Body InnerBody = Builder::body(B.assign(
      B.at("A", B.var("i")), B.add(B.at("A", B.var("i")), B.lit(1))));
  Body OuterBody = Builder::body(
      B.set("lim", B.at("L", B.var("i"))),
      B.doLoop("j", B.lit(1), B.var("lim"), std::move(InnerBody)));
  P.body().push_back(B.doLoop("i", B.lit(1), B.var("K"),
                              std::move(OuterBody), nullptr, true));
  FlattenOptions Opts;
  Opts.AssumeInnerMinOneTrip = true;
  FlattenResult R = flattenNest(P, Opts);
  ASSERT_TRUE(R.Changed) << R.Reason;
  // Executing must not trip the out-of-bounds check after i passes K.
  machine::MachineConfig M = sparc();
  ScalarInterp Interp(P, M, nullptr);
  Interp.store().setInt("K", 3);
  std::vector<int64_t> L = {2, 1, 2};
  Interp.store().setIntArray("L", L);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getIntArray("A"),
            (std::vector<int64_t>{2, 1, 2}));
}

TEST(Flatten, DeepNestThreeLevels) {
  // DOALL i { DO j = 1, L(i) { DO k = 1, j { X(i) += k } } } collapses
  // into one flat loop.
  Program P("deep");
  P.addVar("K", ScalarKind::Int);
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  P.addVar("k", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {4}, Dist::Distributed);
  P.addVar("X", ScalarKind::Int, {4}, Dist::Distributed);
  Builder B(P);
  Body KBody = Builder::body(B.assign(
      B.at("X", B.var("i")), B.add(B.at("X", B.var("i")), B.var("k"))));
  Body JBody =
      Builder::body(B.doLoop("k", B.lit(1), B.var("j"), std::move(KBody)));
  Body IBody = Builder::body(
      B.doLoop("j", B.lit(1), B.at("L", B.var("i")), std::move(JBody)));
  P.body().push_back(B.doLoop("i", B.lit(1), B.var("K"),
                              std::move(IBody), nullptr, true));

  auto Run = [&](Program &Q) {
    machine::MachineConfig M = sparc();
    ScalarInterp Interp(Q, M, nullptr);
    Interp.store().setInt("K", 4);
    std::vector<int64_t> L = {3, 1, 2, 4};
    Interp.store().setIntArray("L", L);
    Interp.run().value();
    return Interp.store().getIntArray("X");
  };
  Program Orig = cloneProgram(P);
  std::vector<int64_t> Want = Run(Orig);

  FlattenOptions Opts;
  Opts.AssumeInnerMinOneTrip = true;
  FlattenResult R = flattenNestDeep(P, Opts);
  ASSERT_TRUE(R.Changed) << R.Reason;
  EXPECT_EQ(Run(P), Want);
  // The result is one flat WHILE: no loop nested inside another's body
  // beyond depth 1.
  size_t Loops = 0;
  forEachStmt(P.body(), [&](const Stmt &S) {
    if (S.kind() == Stmt::Kind::While || S.kind() == Stmt::Kind::Do)
      ++Loops;
  });
  EXPECT_EQ(Loops, 1u);
}

TEST(Flatten, RejectsUnsafeLoop) {
  // A(i) = A(i-1) marked DOALL: the safety net catches the lie.
  Program P("unsafe");
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  P.addVar("A", ScalarKind::Int, {8}, Dist::Distributed);
  Builder B(P);
  Body Inner = Builder::body(B.assign(
      B.at("A", B.var("i")), B.at("A", B.sub(B.var("i"), B.lit(1)))));
  Body Outer =
      Builder::body(B.doLoop("j", B.lit(1), B.lit(2), std::move(Inner)));
  P.body().push_back(
      B.doLoop("i", B.lit(2), B.lit(8), std::move(Outer), nullptr, true));
  FlattenResult R = flattenNest(P);
  EXPECT_FALSE(R.Changed);
  EXPECT_NE(R.Reason.find("not parallelizable"), std::string::npos);
}

TEST(Flatten, RejectsTwoInnerLoops) {
  Program P("twoinner");
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  P.addVar("A", ScalarKind::Int, {8}, Dist::Distributed);
  Builder B(P);
  Body Loop1 = Builder::body(B.assign(B.at("A", B.var("i")), B.var("j")));
  Body Loop2 = Builder::body(B.assign(B.at("A", B.var("i")), B.var("j")));
  Body Outer = Builder::body(
      B.doLoop("j", B.lit(1), B.lit(2), std::move(Loop1)),
      B.doLoop("j", B.lit(1), B.lit(3), std::move(Loop2)));
  P.body().push_back(
      B.doLoop("i", B.lit(1), B.lit(8), std::move(Outer), nullptr, true));
  FlattenResult R = flattenNest(P);
  EXPECT_FALSE(R.Changed);
  EXPECT_NE(R.Reason.find("several inner loops"), std::string::npos);
}

TEST(Flatten, NoParallelLoop) {
  Program P("nopar");
  P.addVar("i", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.doLoop("i", B.lit(1), B.lit(4), {}));
  FlattenResult R = flattenNest(P);
  EXPECT_FALSE(R.Changed);
  EXPECT_NE(R.Reason.find("no parallel"), std::string::npos);
}

TEST(Flatten, GennestWhileOuterViaExplicitApi) {
  // The GENNEST shape (Fig. 8): WHILE outer with trailing increment.
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec, LoopForm::While, LoopForm::While);
  Program Orig = cloneProgram(P);
  std::vector<int64_t> Want = runExample(Orig, Spec);
  // Body: [i = 1, WHILE(i <= K){ j = 1; WHILE(j <= L(i)){...}; i=i+1 }]
  ASSERT_EQ(P.body().size(), 2u);
  FlattenOptions Opts;
  Opts.CheckSafety = false;
  FlattenResult R = flattenLoopPairAt(P, P.body(), 1, Opts);
  ASSERT_TRUE(R.Changed) << R.Reason;
  EXPECT_EQ(R.Applied, FlattenLevel::General); // trips not provable
  EXPECT_EQ(runExample(P, Spec), Want);
}

} // namespace
