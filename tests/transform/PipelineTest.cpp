//===- tests/transform/PipelineTest.cpp ------------------------*- C++ -*-===//

#include "transform/Pipeline.h"

#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"
#include "ir/Printer.h"
#include "ir/Verify.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::transform;
using namespace simdflat::workloads;

namespace {

TEST(Pipeline, ExampleEndToEnd) {
  Program Ex = makeExample(paperExampleSpec());
  PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  PipelineReport Rep;
  Program Simd = compileForSimd(Ex, PO, &Rep).value();
  EXPECT_EQ(Simd.dialect(), Dialect::F90Simd);
  EXPECT_EQ(Rep.GotoLoopsRecovered, 0);
  EXPECT_TRUE(Rep.Flattened);
  EXPECT_EQ(Rep.LevelApplied, FlattenLevel::DoneTest);
  EXPECT_TRUE(verifyProgram(Simd).empty());
  // The input program is untouched (the pipeline works on a copy).
  EXPECT_EQ(Ex.dialect(), Dialect::F77);
}

TEST(Pipeline, RecoversGotoLoops) {
  // GOTO-form inner loop; the outer loop keeps its DOALL marker (a
  // GOTO-form outer would carry no parallel annotation, and the
  // pipeline would rightly refuse to flatten it).
  ExampleSpec Spec = paperExampleSpec();
  Program Ex = makeExample(Spec, LoopForm::GotoLoop);
  PipelineOptions PO;
  PipelineReport Rep;
  Program Simd = compileForSimd(Ex, PO, &Rep).value();
  EXPECT_EQ(Rep.GotoLoopsRecovered, 1);
  EXPECT_TRUE(Rep.Flattened); // recovered REPEATs are min-one-trip

  machine::MachineConfig M;
  M.Name = "p";
  M.Processors = 2;
  M.Gran = 2;
  M.DataLayout = machine::Layout::Cyclic;
  SimdInterp I(Simd, M, nullptr);
  I.store().setInt("K", Spec.K);
  I.store().setIntArray("L", Spec.L);
  I.run().value();
  std::vector<int64_t> Idx = {8, 3};
  EXPECT_EQ(I.store().getIntAt("X", Idx), 24);
}

TEST(Pipeline, UnflattenedPath) {
  Program Ex = makeExample(paperExampleSpec());
  PipelineOptions PO;
  PO.Flatten = false;
  PipelineReport Rep;
  Program Simd = compileForSimd(Ex, PO, &Rep).value();
  EXPECT_FALSE(Rep.Flattened);
  EXPECT_TRUE(Rep.FlattenSkipReason.empty()); // not requested != failed
  EXPECT_EQ(Simd.dialect(), Dialect::F90Simd);
}

TEST(Pipeline, RejectedLevelIsReported) {
  // Forcing DoneTest on a WHILE inner loop (no done test available).
  Program Ex = makeExample(paperExampleSpec(), LoopForm::While);
  PipelineOptions PO;
  PO.ForceLevel = FlattenLevel::DoneTest;
  PO.AssumeInnerMinOneTrip = true;
  PipelineReport Rep;
  Program Simd = compileForSimd(Ex, PO, &Rep).value();
  EXPECT_FALSE(Rep.Flattened);
  EXPECT_NE(Rep.FlattenSkipReason.find("last-iteration"),
            std::string::npos);
  // The program is still SIMDized (unflattened, Fig. 5 path).
  EXPECT_EQ(Simd.dialect(), Dialect::F90Simd);
}

TEST(Pipeline, InvalidInputIsAStructuredError) {
  // A subroutine used as a function fails verification; the pipeline
  // must hand back a PipelineError naming the stage, not abort.
  Program P("bad");
  P.addExtern("S", ScalarKind::Int, true, /*IsSubroutine=*/true);
  P.addVar("i", ScalarKind::Int);
  P.body().push_back(std::make_unique<AssignStmt>(
      std::make_unique<VarRef>("i", ScalarKind::Int),
      std::make_unique<CallExpr>("S", std::vector<ExprPtr>{},
                                 ScalarKind::Int)));
  Expected<Program, PipelineError> R = compileForSimd(P);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Stage, "input");
  ASSERT_FALSE(R.error().Issues.empty());
  std::string Msg = R.error().render();
  EXPECT_NE(Msg.find("input"), std::string::npos);
  EXPECT_NE(Msg.find("subroutine"), std::string::npos);
}

TEST(Pipeline, StageOutcomesAreRecorded) {
  Program Ex = makeExample(paperExampleSpec());
  PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  PipelineReport Rep;
  compileForSimd(Ex, PO, &Rep).value();
  bool SawFlatten = false, SawSimdize = false;
  for (const StageOutcome &S : Rep.Stages) {
    SawFlatten |= S.Stage == "flatten" && S.Ran;
    SawSimdize |= S.Stage == "simdize" && S.Ran;
    if (S.Ran) {
      EXPECT_TRUE(S.Verified) << S.Stage;
    }
  }
  EXPECT_TRUE(SawFlatten);
  EXPECT_TRUE(SawSimdize);
  // Per-stage verdicts show up in the summary (flattenc --analyze).
  EXPECT_NE(Rep.summary().find("stage"), std::string::npos);
}

TEST(Pipeline, ExplicitNormalizeStagesRunAndVerify) {
  Program Ex = makeExample(paperExampleSpec());
  PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  PO.ExplicitNormalize = true;
  PipelineReport Rep;
  Program Simd = compileForSimd(Ex, PO, &Rep).value();
  EXPECT_TRUE(verifyProgram(Simd).empty());
  bool SawNormalize = false;
  for (const StageOutcome &S : Rep.Stages)
    SawNormalize |= S.Stage == "normalize" && S.Ran && S.Verified;
  EXPECT_TRUE(SawNormalize);
}

TEST(Pipeline, PeeledRepeatDropsMinOneAssumption) {
  // Found by flattenfuzz (seed 46): explicit normalization peels a
  // REPEAT's first execution, so the residual pre-test loop runs L-1
  // trips - zero on exactly-one-trip rows. Flattening the residual at
  // the optimized level on the caller's min-one assertion re-executed
  // the body once per L == 1 row. The pipeline must drop the
  // assumption once a peel has consumed it.
  ExampleSpec Spec{4, {1, 3, 1, 2}};
  Program Ref = makeExample(Spec, LoopForm::Repeat);

  ScalarInterp SI(Ref, machine::MachineConfig::sparc2(), nullptr);
  SI.store().setInt("K", Spec.K);
  SI.store().setIntArray("L", Spec.L);
  SI.run().value();
  std::vector<int64_t> Want = SI.store().getIntArray("X");

  PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  PO.ExplicitNormalize = true;
  PipelineReport Rep;
  Program Simd =
      compileForSimd(makeExample(Spec, LoopForm::Repeat), PO, &Rep)
          .value();
  ASSERT_TRUE(Rep.Flattened) << Rep.summary();

  machine::MachineConfig M;
  M.Name = "p";
  M.Processors = 2;
  M.Gran = 2;
  M.DataLayout = machine::Layout::Cyclic;
  SimdInterp I(Simd, M, nullptr);
  I.store().setInt("K", Spec.K);
  I.store().setIntArray("L", Spec.L);
  I.run().value();
  EXPECT_EQ(I.store().getIntArray("X"), Want);
}

TEST(Pipeline, SummaryMentionsStages) {
  Program Ex = makeExample(paperExampleSpec(), LoopForm::GotoLoop);
  PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  PipelineReport Rep;
  compileForSimd(Ex, PO, &Rep).value();
  std::string S = Rep.summary();
  EXPECT_NE(S.find("recovered 1 GOTO loop"), std::string::npos);
  EXPECT_NE(S.find("flattened at the"), std::string::npos);
  EXPECT_NE(S.find("SIMDized"), std::string::npos);
}

} // namespace
