//===- tests/transform/DegenerateTripsTest.cpp -----------------*- C++ -*-===//
//
// Degenerate trip-count differential sweep at the IR level, extending
// the native-driver sweep in tests/native/FlattenedLoopTest.cpp: every
// assignment of inner trip counts from {-1, 0, 1, k} must leave the
// coalesced program, the flattened+SIMDized (and simplified) program,
// and the scalar reference in exact agreement - stores and body counts
// alike. Negative and zero rows execute no body iterations.
//
//===----------------------------------------------------------------------===//

#include "transform/Coalesce.h"
#include "transform/Pipeline.h"

#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"
#include "ir/Builder.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

#include <vector>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::transform;

namespace {

constexpr int64_t K = 4;
constexpr int64_t MaxTrip = 3;

/// DOALL i = 1, K { DO j = 1, L(i) { X(i,j) = i*10+j; A(i) += j } } -
/// a perfect nest the pipeline flattens; the A(i) reduction makes it
/// ineligible for coalescing (iterations of one row would race).
Program makeNest() {
  Program P("degenerate");
  P.addVar("K", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {K}, Dist::Distributed);
  P.addVar("X", ScalarKind::Int, {K, MaxTrip}, Dist::Distributed);
  P.addVar("A", ScalarKind::Int, {K}, Dist::Distributed);
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  Builder B(P);
  Body Inner;
  Inner.push_back(B.assign(B.at("X", B.var("i"), B.var("j")),
                           B.add(B.mul(B.var("i"), B.lit(10)),
                                 B.var("j"))));
  Inner.push_back(B.assign(B.at("A", B.var("i")),
                           B.add(B.at("A", B.var("i")), B.var("j"))));
  Body Outer;
  Outer.push_back(
      B.doLoop("j", B.lit(1), B.at("L", B.var("i")), std::move(Inner)));
  P.body().push_back(B.doLoop("i", B.lit(1), B.var("K"),
                              std::move(Outer), nullptr,
                              /*IsParallel=*/true));
  return P;
}

/// The same nest without the A(i) reduction: every store varies with j,
/// so coalesceNest accepts it. A stays declared (and all-zero) so the
/// run helpers work unchanged.
Program makeCoalesceableNest() {
  Program P("degenerate");
  P.addVar("K", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {K}, Dist::Distributed);
  P.addVar("X", ScalarKind::Int, {K, MaxTrip}, Dist::Distributed);
  P.addVar("A", ScalarKind::Int, {K}, Dist::Distributed);
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  Builder B(P);
  Body Inner;
  Inner.push_back(B.assign(B.at("X", B.var("i"), B.var("j")),
                           B.add(B.mul(B.var("i"), B.lit(10)),
                                 B.var("j"))));
  Body Outer;
  Outer.push_back(
      B.doLoop("j", B.lit(1), B.at("L", B.var("i")), std::move(Inner)));
  P.body().push_back(B.doLoop("i", B.lit(1), B.var("K"),
                              std::move(Outer), nullptr,
                              /*IsParallel=*/true));
  return P;
}

struct Outcome {
  std::vector<int64_t> X, A;
  int64_t BodyCount = 0;
};

RunOptions workOptions() {
  RunOptions O;
  O.WorkTargets = {"X", "A"};
  return O;
}

Outcome runScalar(const Program &P, const std::vector<int64_t> &L) {
  ScalarInterp I(P, machine::MachineConfig::sparc2(), nullptr,
                 workOptions());
  I.store().setInt("K", K);
  I.store().setIntArray("L", L);
  ScalarRunResult R = I.run().value();
  return {I.store().getIntArray("X"), I.store().getIntArray("A"),
          R.Stats.WorkSteps};
}

Outcome runSimd(const Program &P, const std::vector<int64_t> &L) {
  machine::MachineConfig M;
  M.Name = "sweep";
  M.Processors = 4;
  M.Gran = 4;
  M.DataLayout = machine::Layout::Cyclic;
  SimdInterp I(P, M, nullptr, workOptions());
  I.store().setInt("K", K);
  I.store().setIntArray("L", L);
  SimdRunResult R = I.run().value();
  return {I.store().getIntArray("X"), I.store().getIntArray("A"),
          R.Stats.WorkActiveLanes};
}

/// All 4^K assignments of {-1, 0, 1, MaxTrip} to the K rows.
std::vector<std::vector<int64_t>> allTripAssignments() {
  const std::vector<int64_t> Menu = {-1, 0, 1, MaxTrip};
  std::vector<std::vector<int64_t>> Out;
  for (int Case = 0; Case < 4 * 4 * 4 * 4; ++Case) {
    std::vector<int64_t> L;
    for (int Digit = 0, C = Case; Digit < K; ++Digit, C /= 4)
      L.push_back(Menu[static_cast<size_t>(C % 4)]);
    Out.push_back(std::move(L));
  }
  return Out;
}

TEST(DegenerateTrips, CoalescePathMatchesReference) {
  Program Ref = makeCoalesceableNest();
  Program Coal = makeCoalesceableNest();
  CoalesceResult CR = coalesceNest(Coal, K, K * MaxTrip);
  ASSERT_TRUE(CR.Changed) << CR.Reason;

  for (const std::vector<int64_t> &L : allTripAssignments()) {
    Outcome Want = runScalar(Ref, L);
    Outcome Got = runScalar(Coal, L);
    EXPECT_EQ(Got.X, Want.X) << printProgram(Coal);
    EXPECT_EQ(Got.A, Want.A);
    EXPECT_EQ(Got.BodyCount, Want.BodyCount);
  }
}

TEST(DegenerateTrips, CoalesceDeclinesRowReduction) {
  // A(i) = A(i) + j carries a dependence over j that only the
  // sequential inner loop orders; a coalesced DOALL would race it on
  // any parallel machine, so the transform must refuse.
  Program P = makeNest();
  CoalesceResult CR = coalesceNest(P, K, K * MaxTrip);
  EXPECT_FALSE(CR.Changed);
  EXPECT_NE(CR.Reason.find("not independent"), std::string::npos)
      << CR.Reason;
}

TEST(DegenerateTrips, CoalescedSimdMatchesReference) {
  // The full strategy path: coalesce through the pipeline, then run the
  // simdized executor on the lockstep machine across the whole sweep.
  Program Ref = makeCoalesceableNest();
  PipelineOptions PO;
  PO.Strategy = StrategyPolicy::coalesced(K, K * MaxTrip);
  PipelineReport Rep;
  Program Simd = compileForSimd(makeCoalesceableNest(), PO, &Rep).value();
  ASSERT_EQ(Rep.StrategyApplied, analysis::Strategy::Coalesced)
      << Rep.summary();

  for (const std::vector<int64_t> &L : allTripAssignments()) {
    Outcome Want = runScalar(Ref, L);
    Outcome Got = runSimd(Simd, L);
    EXPECT_EQ(Got.X, Want.X) << printProgram(Simd);
    EXPECT_EQ(Got.A, Want.A);
  }
}

TEST(DegenerateTrips, SimdAfterSimplifyMatchesReference) {
  Program Ref = makeNest();
  // Zero and negative rows rule out the min-one assumption; the
  // pipeline must pick a level that tests before executing. Simplify
  // runs as the final stage, so this sweeps the exact program the
  // SIMD machine would receive.
  PipelineOptions PO;
  PipelineReport Rep;
  Program Simd = compileForSimd(makeNest(), PO, &Rep).value();
  ASSERT_TRUE(Rep.Flattened) << Rep.summary();

  for (const std::vector<int64_t> &L : allTripAssignments()) {
    Outcome Want = runScalar(Ref, L);
    Outcome Got = runSimd(Simd, L);
    EXPECT_EQ(Got.X, Want.X) << printProgram(Simd);
    EXPECT_EQ(Got.A, Want.A);
    EXPECT_EQ(Got.BodyCount, Want.BodyCount);
  }
}

TEST(DegenerateTrips, UnflattenedSimdMatchesReference) {
  Program Ref = makeNest();
  PipelineOptions PO;
  PO.Flatten = false;
  Program Simd = compileForSimd(makeNest(), PO).value();

  for (const std::vector<int64_t> &L : allTripAssignments()) {
    Outcome Want = runScalar(Ref, L);
    Outcome Got = runSimd(Simd, L);
    EXPECT_EQ(Got.X, Want.X);
    EXPECT_EQ(Got.A, Want.A);
    EXPECT_EQ(Got.BodyCount, Want.BodyCount);
  }
}

} // namespace
