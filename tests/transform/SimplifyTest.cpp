//===- tests/transform/SimplifyTest.cpp ------------------------*- C++ -*-===//

#include "transform/Simplify.h"

#include "ir/Builder.h"
#include "ir/Printer.h"
#include "ir/Verify.h"
#include "transform/Pipeline.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::ir;
using namespace simdflat::transform;

namespace {

class SimplifyTest : public ::testing::Test {
protected:
  SimplifyTest() : P("s"), B(P) {
    P.addVar("i", ScalarKind::Int);
    P.addVar("f", ScalarKind::Bool);
    P.addVar("A", ScalarKind::Int, {8});
    P.addExtern("Eff", ScalarKind::Int, /*Pure=*/false);
  }

  std::string simp(ExprPtr E) {
    return printExpr(*simplifyExpr(std::move(E)));
  }

  Program P;
  Builder B;
};

TEST_F(SimplifyTest, LiteralFolding) {
  EXPECT_EQ(simp(B.add(B.lit(2), B.lit(3))), "5");
  EXPECT_EQ(simp(B.mul(B.lit(4), B.lit(-2))), "-8");
  EXPECT_EQ(simp(B.mod(B.lit(17), B.lit(5))), "2");
  EXPECT_EQ(simp(B.le(B.lit(2), B.lit(3))), ".TRUE.");
  EXPECT_EQ(simp(B.land(B.lit(true), B.lit(false))), ".FALSE.");
  EXPECT_EQ(simp(B.lnot(B.lit(false))), ".TRUE.");
  EXPECT_EQ(simp(B.neg(B.lit(7))), "-7");
  EXPECT_EQ(simp(B.max(B.lit(3), B.lit(9))), "9");
}

TEST_F(SimplifyTest, DivisionByZeroNotFolded) {
  EXPECT_EQ(simp(B.div(B.lit(4), B.lit(0))), "4 / 0");
  EXPECT_EQ(simp(B.mod(B.lit(4), B.lit(0))), "MOD(4, 0)");
}

TEST_F(SimplifyTest, Identities) {
  EXPECT_EQ(simp(B.add(B.var("i"), B.lit(0))), "i");
  EXPECT_EQ(simp(B.add(B.lit(0), B.var("i"))), "i");
  EXPECT_EQ(simp(B.sub(B.var("i"), B.lit(0))), "i");
  EXPECT_EQ(simp(B.mul(B.var("i"), B.lit(1))), "i");
  EXPECT_EQ(simp(B.div(B.var("i"), B.lit(1))), "i");
  EXPECT_EQ(simp(B.land(B.var("f"), B.lit(true))), "f");
  EXPECT_EQ(simp(B.lor(B.lit(false), B.var("f"))), "f");
  EXPECT_EQ(simp(B.lnot(B.lnot(B.var("f")))), "f");
}

TEST_F(SimplifyTest, SimdizeIndexPatterns) {
  // 1 + (LANEINDEX() - 1) -> LANEINDEX()
  EXPECT_EQ(simp(B.add(B.lit(1), B.sub(B.laneIndex(), B.lit(1)))),
            "LANEINDEX()");
  // (i - 1) + 3 -> i + 2
  EXPECT_EQ(simp(B.add(B.sub(B.var("i"), B.lit(1)), B.lit(3))), "i + 2");
  // (i + 2) + 3 -> i + 5
  EXPECT_EQ(simp(B.add(B.add(B.var("i"), B.lit(2)), B.lit(3))), "i + 5");
}

TEST_F(SimplifyTest, EffectsNeverDropped) {
  // Eff() * 1 -> Eff(); but nothing may erase the call itself.
  EXPECT_EQ(simp(B.mul(B.callFn("Eff", {}), B.lit(1))), "Eff()");
  // 0 * Eff() must NOT fold to 0 (the call has effects).
  EXPECT_EQ(simp(B.mul(B.lit(0), B.callFn("Eff", {}))), "0 * Eff()");
}

TEST_F(SimplifyTest, ConstantIfFolds) {
  Program Q("q");
  Q.addVar("n", ScalarKind::Int);
  Builder QB(Q);
  Q.body().push_back(QB.ifStmt(QB.lt(QB.lit(1), QB.lit(2)),
                               Builder::body(QB.set("n", QB.lit(5))),
                               Builder::body(QB.set("n", QB.lit(9)))));
  int N = simplifyProgram(Q);
  EXPECT_GT(N, 0);
  EXPECT_EQ(printBody(Q.body()), "n = 5\n");
  EXPECT_TRUE(verifyProgram(Q).empty());
}

TEST_F(SimplifyTest, PipelineOutputIsClean) {
  // After the full pipeline (which runs simplify), the flattened EXAMPLE
  // has no literal-fringe arithmetic left: the cyclic induction prints
  // exactly as the paper's Fig. 15 style.
  Program Ex = workloads::makeExample(workloads::paperExampleSpec());
  PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  Program Simd = compileForSimd(Ex, PO).value();
  std::string Out = printBody(Simd.body());
  EXPECT_EQ(Out.substr(0, Out.find('\n')), "i = LANEINDEX()");
  EXPECT_EQ(Out.find("- 1)"), std::string::npos) << Out;
}

TEST_F(SimplifyTest, IdempotentOnCleanPrograms) {
  Program Ex = workloads::makeExample(workloads::paperExampleSpec());
  PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  Program Simd = compileForSimd(Ex, PO).value();
  EXPECT_EQ(simplifyProgram(Simd), 0);
}

} // namespace
