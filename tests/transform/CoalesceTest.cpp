//===- tests/transform/CoalesceTest.cpp ------------------------*- C++ -*-===//

#include "transform/Coalesce.h"

#include "interp/MimdInterp.h"
#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"
#include "ir/Builder.h"
#include "transform/Simdize.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::transform;
using namespace simdflat::workloads;

namespace {

TEST(Coalesce, PreservesSequentialSemantics) {
  ExampleSpec Spec = paperExampleSpec();
  Program Orig = makeExample(Spec);
  Program P = makeExample(Spec);
  int64_t Total = std::accumulate(Spec.L.begin(), Spec.L.end(), int64_t{0});
  CoalesceResult R = coalesceNest(P, Spec.K, Total);
  ASSERT_TRUE(R.Changed) << R.Reason;

  machine::MachineConfig M = machine::MachineConfig::sparc2();
  auto Run = [&](Program &Q) {
    ScalarInterp Interp(Q, M, nullptr);
    Interp.store().setInt("K", Spec.K);
    Interp.store().setIntArray("L", Spec.L);
    Interp.run().value();
    return Interp.store().getIntArray("X");
  };
  EXPECT_EQ(Run(P), Run(Orig));
}

TEST(Coalesce, BalancesLoadAcrossMimdProcessors) {
  // Coalescing achieves a balanced schedule: ceil(Total / P) work per
  // processor regardless of the skew.
  ExampleSpec Spec{8, {9, 1, 1, 1, 9, 1, 1, 1}};
  Program P = makeExample(Spec);
  int64_t Total = std::accumulate(Spec.L.begin(), Spec.L.end(), int64_t{0});
  ASSERT_TRUE(coalesceNest(P, Spec.K, Total).Changed);

  machine::MachineConfig M = machine::MachineConfig::sparc2();
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  MimdInterp Interp(P, M, nullptr, 4, machine::Layout::Block, Opts);
  MimdRunResult R = Interp.run([&](DataStore &S) {
    S.setInt("K", Spec.K);
    S.setIntArray("L", Spec.L);
  }).value();
  EXPECT_EQ(R.TimeSteps, 6); // ceil(24 / 4)
}

TEST(Coalesce, SimdizedCoalescedLoopCommunicates) {
  // Coalescing changes WHICH iterations a lane executes, so
  // owner-computes locality is lost: the SIMD run shows communication,
  // unlike flattening (Sec. 7).
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  int64_t Total = std::accumulate(Spec.L.begin(), Spec.L.end(), int64_t{0});
  ASSERT_TRUE(coalesceNest(P, Spec.K, Total).Changed);
  Program Simd = simdize(P);

  machine::MachineConfig M;
  M.Name = "test";
  M.Processors = 4;
  M.Gran = 4;
  M.DataLayout = machine::Layout::Cyclic;
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  SimdInterp Interp(Simd, M, nullptr, Opts);
  Interp.store().setInt("K", Spec.K);
  Interp.store().setIntArray("L", Spec.L);
  SimdRunResult R = Interp.run().value();
  // Results still correct.
  std::vector<int64_t> X = Interp.store().getIntArray("X");
  int64_t NonZero = 0;
  for (int64_t V : X)
    NonZero += V != 0;
  EXPECT_EQ(NonZero, Total);
  // Balanced: ceil(16/4) = 4 executor steps.
  EXPECT_EQ(R.Stats.WorkSteps, 4);
  // But off-home accesses appear.
  EXPECT_GT(R.Stats.CommAccesses, 0);
}

TEST(Coalesce, RejectsImperfectNest) {
  ExampleSpec Spec = paperExampleSpec();
  Program P("imperfect");
  P.addVar("K", ScalarKind::Int);
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  P.addVar("s", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {8}, Dist::Distributed);
  P.addVar("A", ScalarKind::Int, {8}, Dist::Distributed);
  Builder B(P);
  Body Outer = Builder::body(
      B.set("s", B.lit(0)), // extra statement: not a perfect nest
      B.doLoop("j", B.lit(1), B.at("L", B.var("i")),
               Builder::body(B.assign(B.at("A", B.var("i")), B.var("j")))));
  P.body().push_back(B.doLoop("i", B.lit(1), B.var("K"), std::move(Outer),
                              nullptr, true));
  CoalesceResult R = coalesceNest(P, 8, 64);
  EXPECT_FALSE(R.Changed);
  EXPECT_NE(R.Reason.find("perfect"), std::string::npos);
}

TEST(Coalesce, RejectsWithoutDoAll) {
  Program P("plain");
  P.addVar("i", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.doLoop("i", B.lit(1), B.lit(4), {}));
  CoalesceResult R = coalesceNest(P, 4, 16);
  EXPECT_FALSE(R.Changed);
}

} // namespace
