//===- tests/transform/NormalizeTest.cpp -----------------------*- C++ -*-===//

#include "transform/Normalize.h"

#include "interp/ScalarInterp.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::transform;
using namespace simdflat::workloads;

namespace {

std::vector<int64_t> runExample(Program &P, const ExampleSpec &Spec) {
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  ScalarInterp Interp(P, M, nullptr);
  Interp.store().setInt("K", Spec.K);
  Interp.store().setIntArray("L", Spec.L);
  Interp.run().value();
  return Interp.store().getIntArray("X");
}

TEST(Normalize, DoBecomesFig8While) {
  // Fig. 8 right-hand column: the EXAMPLE inner DO in normal form.
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  int N = normalizeLoops(P);
  EXPECT_EQ(N, 1); // inner only; outer DOALL is kept by default
  EXPECT_EQ(printBody(P.body()), "DOALL i = 1, K\n"
                                 "  j = 1\n"
                                 "  WHILE (j <= L(i))\n"
                                 "    X(i, j) = i * j\n"
                                 "    j = j + 1\n"
                                 "  ENDWHILE\n"
                                 "ENDDO\n");
}

TEST(Normalize, BothLoopsWhenParallelNotSkipped) {
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  NormalizeOptions Opts;
  Opts.SkipParallel = false;
  int N = normalizeLoops(P, Opts);
  EXPECT_EQ(N, 2);
  EXPECT_EQ(printBody(P.body()), "i = 1\n"
                                 "WHILE (i <= K)\n"
                                 "  j = 1\n"
                                 "  WHILE (j <= L(i))\n"
                                 "    X(i, j) = i * j\n"
                                 "    j = j + 1\n"
                                 "  ENDWHILE\n"
                                 "  i = i + 1\n"
                                 "ENDWHILE\n");
}

TEST(Normalize, PreservesSemanticsAllForms) {
  ExampleSpec Spec = paperExampleSpec();
  for (LoopForm Inner : {LoopForm::Do, LoopForm::While, LoopForm::Repeat}) {
    Program Orig = makeExample(Spec, Inner);
    std::vector<int64_t> Want = runExample(Orig, Spec);

    Program Normalized = makeExample(Spec, Inner);
    NormalizeOptions Opts;
    Opts.SkipParallel = false;
    normalizeLoops(Normalized, Opts);
    EXPECT_EQ(runExample(Normalized, Spec), Want)
        << "inner form " << static_cast<int>(Inner);
  }
}

TEST(Normalize, RepeatPeelsFirstIteration) {
  Program P("rp");
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.repeatUntil(
      Builder::body(B.set("n", B.add(B.var("n"), B.lit(1)))),
      B.ge(B.var("n"), B.lit(3))));
  normalizeLoops(P);
  EXPECT_EQ(printBody(P.body()), "n = n + 1\n"
                                 "WHILE (.NOT. n >= 3)\n"
                                 "  n = n + 1\n"
                                 "ENDWHILE\n");
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  ScalarInterp Interp(P, M, nullptr);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getInt("n"), 3);
}

TEST(Normalize, NonLiteralStepLeftAlone) {
  Program P("vs");
  P.addVar("i", ScalarKind::Int);
  P.addVar("s", ScalarKind::Int);
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.doLoop(
      "i", B.lit(1), B.lit(10),
      Builder::body(B.set("n", B.add(B.var("n"), B.lit(1)))), B.var("s")));
  int N = normalizeLoops(P);
  EXPECT_EQ(N, 0);
  EXPECT_EQ(P.body()[0]->kind(), Stmt::Kind::Do);
}

} // namespace
