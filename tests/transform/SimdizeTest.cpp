//===- tests/transform/SimdizeTest.cpp -------------------------*- C++ -*-===//
//
// Verifies the F77 -> F90simd conversion and the full pipeline: the
// automatically SIMDized EXAMPLE reproduces the paper's 12-step Eq. 2
// schedule (Fig. 5/6), and flatten+distribute+simdize reproduces the
// 8-step Eq. 1 schedule (Fig. 7) - the headline result.
//
//===----------------------------------------------------------------------===//

#include "transform/Simdize.h"

#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "transform/Flatten.h"
#include "ir/Walk.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::transform;
using namespace simdflat::workloads;

namespace {

machine::MachineConfig lanes(int64_t N, machine::Layout L) {
  machine::MachineConfig M;
  M.Name = "test";
  M.Processors = N;
  M.Gran = N;
  M.DataLayout = L;
  M.SecondsPerCycle = 1.0;
  return M;
}

std::vector<int64_t> expectedX(const ExampleSpec &Spec) {
  int64_t MaxL = std::max<int64_t>(Spec.maxL(), 1);
  std::vector<int64_t> X(static_cast<size_t>(Spec.K * MaxL), 0);
  for (int64_t I = 1; I <= Spec.K; ++I)
    for (int64_t J = 1; J <= Spec.L[static_cast<size_t>(I - 1)]; ++J)
      X[static_cast<size_t>((I - 1) * MaxL + (J - 1))] = I * J;
  return X;
}

SimdRunResult runSimd(Program &P, const ExampleSpec &Spec,
                      const machine::MachineConfig &M,
                      std::vector<int64_t> *XOut = nullptr) {
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  SimdInterp Interp(P, M, nullptr, Opts);
  Interp.store().setInt("K", Spec.K);
  Interp.store().setIntArray("L", Spec.L);
  SimdRunResult R = Interp.run().value();
  if (XOut)
    *XOut = Interp.store().getIntArray("X");
  return R;
}

TEST(Simdize, UnflattenedExampleIsFig5) {
  // The automatic pipeline must match Eq. 2: 12 steps on 2 lanes.
  ExampleSpec Spec = paperExampleSpec();
  Program F77 = makeExample(Spec);
  SimdizeOptions SOpts;
  SOpts.DoAllLayout = machine::Layout::Block;
  Program Simd = simdize(F77, SOpts);
  EXPECT_EQ(Simd.dialect(), Dialect::F90Simd);
  // i must have become replicated; j stays control.
  EXPECT_EQ(Simd.lookupVar("i")->Distribution, Dist::Replicated);
  EXPECT_EQ(Simd.lookupVar("j")->Distribution, Dist::Control);

  std::vector<int64_t> X;
  SimdRunResult R =
      runSimd(Simd, Spec, lanes(2, machine::Layout::Block), &X);
  EXPECT_EQ(R.Stats.WorkSteps, 12);
  EXPECT_EQ(X, expectedX(Spec));
  EXPECT_EQ(R.Stats.CommAccesses, 0);
  // Fig. 6's idle slots: 16 useful lane-slots out of 24.
  EXPECT_DOUBLE_EQ(R.Stats.workUtilization(), 16.0 / 24.0);
}

TEST(Simdize, FlattenedExampleIsFig7) {
  // flatten (Fig. 12) + distribute + simdize == Fig. 7: 8 steps, full
  // utilization - the MIMD bound of Eq. 1.
  ExampleSpec Spec = paperExampleSpec();
  Program F77 = makeExample(Spec);
  FlattenOptions FOpts;
  FOpts.AssumeInnerMinOneTrip = true;
  FOpts.DistributeOuter = machine::Layout::Block;
  FlattenResult FR = flattenNest(F77, FOpts);
  ASSERT_TRUE(FR.Changed) << FR.Reason;
  Program Simd = simdize(F77);

  std::vector<int64_t> X;
  SimdRunResult R =
      runSimd(Simd, Spec, lanes(2, machine::Layout::Block), &X);
  EXPECT_EQ(R.Stats.WorkSteps, 8);
  EXPECT_EQ(X, expectedX(Spec));
  EXPECT_EQ(R.Stats.CommAccesses, 0);
  EXPECT_DOUBLE_EQ(R.Stats.workUtilization(), 1.0);
}

TEST(Simdize, FlattenedExampleGoldenFig7) {
  // The printed flattened SIMD program matches the Fig. 7 structure.
  ExampleSpec Spec = paperExampleSpec();
  Program F77 = makeExample(Spec);
  FlattenOptions FOpts;
  FOpts.Force = FlattenLevel::DoneTest;
  FOpts.AssumeInnerMinOneTrip = true;
  FOpts.DistributeOuter = machine::Layout::Cyclic;
  ASSERT_TRUE(flattenNest(F77, FOpts).Changed);
  Program Simd = simdize(F77);
  EXPECT_EQ(printBody(Simd.body()),
            "i = 1 + (LANEINDEX() - 1)\n"
            "j = 1\n"
            "WHILE (ANY(i <= K))\n"
            "  WHERE (i <= K)\n"
            "    X(i, j) = i * j\n"
            "    WHERE (j >= L(i))\n"
            "      i = i + NUMLANES()\n"
            "      j = 1\n"
            "    ELSEWHERE\n"
            "      j = j + 1\n"
            "    ENDWHERE\n"
            "  ENDWHERE\n"
            "ENDWHILE\n");
}

struct PipelineCase {
  LoopForm Inner;
  int64_t Lanes;
  machine::Layout Layout;
};

class SimdizePipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(SimdizePipeline, UnflattenedAndFlattenedMatchScalar) {
  PipelineCase C = GetParam();
  std::vector<ExampleSpec> Specs = {
      paperExampleSpec(),
      {3, {2, 1, 2}},
      {9, {1, 4, 2, 3, 1, 1, 5, 2, 1}},
      {13, {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9}},
  };
  for (const ExampleSpec &Spec : Specs) {
    std::vector<int64_t> Want = expectedX(Spec);
    machine::MachineConfig M = lanes(C.Lanes, C.Layout);

    // Unflattened pipeline.
    Program F77a = makeExample(Spec, C.Inner);
    SimdizeOptions SOpts;
    SOpts.DoAllLayout = C.Layout;
    Program SimdA = simdize(F77a, SOpts);
    std::vector<int64_t> XA;
    SimdRunResult RA = runSimd(SimdA, Spec, M, &XA);
    EXPECT_EQ(XA, Want) << "unflattened, K=" << Spec.K;
    EXPECT_EQ(RA.Stats.CommAccesses, 0);

    // Flattened pipeline.
    Program F77b = makeExample(Spec, C.Inner);
    FlattenOptions FOpts;
    FOpts.AssumeInnerMinOneTrip = true;
    FOpts.DistributeOuter = C.Layout;
    FlattenResult FR = flattenNest(F77b, FOpts);
    ASSERT_TRUE(FR.Changed) << FR.Reason;
    Program SimdB = simdize(F77b);
    std::vector<int64_t> XB;
    SimdRunResult RB = runSimd(SimdB, Spec, M, &XB);
    EXPECT_EQ(XB, Want) << "flattened, K=" << Spec.K;
    EXPECT_EQ(RB.Stats.CommAccesses, 0);

    // Flattening never takes more work steps.
    EXPECT_LE(RB.Stats.WorkSteps, RA.Stats.WorkSteps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FormsLanesLayouts, SimdizePipeline,
    ::testing::Values(
        PipelineCase{LoopForm::Do, 2, machine::Layout::Block},
        PipelineCase{LoopForm::Do, 2, machine::Layout::Cyclic},
        PipelineCase{LoopForm::Do, 4, machine::Layout::Block},
        PipelineCase{LoopForm::Do, 4, machine::Layout::Cyclic},
        PipelineCase{LoopForm::Do, 8, machine::Layout::Cyclic},
        PipelineCase{LoopForm::While, 2, machine::Layout::Block},
        PipelineCase{LoopForm::While, 4, machine::Layout::Cyclic},
        PipelineCase{LoopForm::Repeat, 4, machine::Layout::Cyclic}));

TEST(Simdize, UniformIfStaysIf) {
  Program P("uif");
  P.addVar("n", ScalarKind::Int);
  P.addVar("m", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.ifStmt(B.gt(B.var("n"), B.lit(0)),
                              Builder::body(B.set("m", B.lit(1)))));
  Program S = simdize(P);
  EXPECT_EQ(S.body()[0]->kind(), Stmt::Kind::If);
}

TEST(Simdize, VaryingIfBecomesWhere) {
  Program P("vif");
  P.addVar("K", ScalarKind::Int);
  P.addVar("i", ScalarKind::Int);
  P.addVar("A", ScalarKind::Int, {8}, Dist::Distributed);
  Builder B(P);
  Body Inner = Builder::body(
      B.ifStmt(B.gt(B.at("A", B.var("i")), B.lit(0)),
               Builder::body(B.assign(B.at("A", B.var("i")), B.lit(1))),
               Builder::body(B.assign(B.at("A", B.var("i")), B.lit(2)))));
  P.body().push_back(B.doLoop("i", B.lit(1), B.var("K"), std::move(Inner),
                              nullptr, /*IsParallel=*/true));
  Program S = simdize(P);
  bool FoundWhere = false;
  forEachStmt(S.body(), [&](const Stmt &St) {
    if (St.kind() == Stmt::Kind::Where)
      FoundWhere = true;
  });
  EXPECT_TRUE(FoundWhere);
  // And it executes correctly.
  machine::MachineConfig M = lanes(4, machine::Layout::Cyclic);
  SimdInterp Interp(S, M, nullptr);
  Interp.store().setInt("K", 8);
  std::vector<int64_t> A = {5, 0, -3, 7, 0, 1, 0, -2};
  Interp.store().setIntArray("A", A);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getIntArray("A"),
            (std::vector<int64_t>{1, 2, 2, 1, 2, 1, 2, 2}));
}

TEST(Simdize, RaggedIterationSpace) {
  // K not a multiple of the lane count: the final block is guarded.
  ExampleSpec Spec{7, {2, 1, 3, 1, 2, 1, 4}};
  Program F77 = makeExample(Spec);
  Program Simd = simdize(F77);
  std::vector<int64_t> X;
  runSimd(Simd, Spec, lanes(4, machine::Layout::Cyclic), &X);
  EXPECT_EQ(X, expectedX(Spec));
}

TEST(Simdize, RejectsDoubleSimdization) {
  Program P("dd");
  P.setDialect(Dialect::F90Simd);
  EXPECT_DEATH(simdize(P), "already in the F90simd dialect");
}

TEST(Simdize, ScalarMachineStillRunsSimdizedCode) {
  // A 1-lane SIMD machine degenerates to sequential execution.
  ExampleSpec Spec = paperExampleSpec();
  Program F77 = makeExample(Spec);
  Program Simd = simdize(F77);
  std::vector<int64_t> X;
  SimdRunResult R =
      runSimd(Simd, Spec, lanes(1, machine::Layout::Cyclic), &X);
  EXPECT_EQ(X, expectedX(Spec));
  EXPECT_EQ(R.Stats.WorkSteps, 16); // sum of all trip counts
}

TEST(Simdize, DescendingVaryingBoundUsesMinReduction) {
  // DOALL i { DO j = 6, LO(i), -1 { A(i) = A(i) + j } }: the machine
  // bound is the MIN over lanes with a >= guard.
  Program P("desc");
  P.addVar("K", ScalarKind::Int);
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  P.addVar("LO", ScalarKind::Int, {8}, Dist::Distributed);
  P.addVar("A", ScalarKind::Int, {8}, Dist::Distributed);
  Builder B(P);
  Body Inner = Builder::body(B.assign(
      B.at("A", B.var("i")), B.add(B.at("A", B.var("i")), B.var("j"))));
  Body Outer = Builder::body(B.doLoop(
      "j", B.lit(6), B.at("LO", B.var("i")), std::move(Inner),
      B.lit(-1)));
  P.body().push_back(B.doLoop("i", B.lit(1), B.var("K"),
                              std::move(Outer), nullptr, true));
  Program Simd = transform::simdize(P);
  std::string Printed = printBody(Simd.body());
  EXPECT_NE(Printed.find("MINRED"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("j >= LO(i)"), std::string::npos) << Printed;

  // Execute and compare against the sequential run.
  machine::MachineConfig M = lanes(4, machine::Layout::Cyclic);
  SimdInterp I(Simd, M, nullptr);
  I.store().setInt("K", 8);
  std::vector<int64_t> LO = {1, 5, 3, 7, 2, 6, 4, 1};
  I.store().setIntArray("LO", LO);
  I.run().value();
  std::vector<int64_t> Want(8, 0);
  for (int R = 0; R < 8; ++R)
    for (int64_t J = 6; J >= LO[static_cast<size_t>(R)]; --J)
      Want[static_cast<size_t>(R)] += J;
  EXPECT_EQ(I.store().getIntArray("A"), Want);
}

} // namespace
