//===- tests/transform/GuardIntroTest.cpp ----------------------*- C++ -*-===//

#include "transform/GuardIntro.h"

#include "interp/ScalarInterp.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "transform/Normalize.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::transform;
using namespace simdflat::workloads;

namespace {

TEST(GuardIntro, Figure9Shape) {
  // Normalize then introduce guards: the EXAMPLE should take exactly the
  // Fig. 9 shape with guard flags re-evaluated after each increment.
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  NormalizeOptions Opts;
  Opts.SkipParallel = false;
  normalizeLoops(P, Opts);
  int N = introduceGuards(P);
  EXPECT_EQ(N, 2);
  EXPECT_EQ(printBody(P.body()), "i = 1\n"
                                 "t1 = i <= K\n"
                                 "WHILE (t1)\n"
                                 "  j = 1\n"
                                 "  t = j <= L(i)\n"
                                 "  WHILE (t)\n"
                                 "    X(i, j) = i * j\n"
                                 "    j = j + 1\n"
                                 "    t = j <= L(i)\n"
                                 "  ENDWHILE\n"
                                 "  i = i + 1\n"
                                 "  t1 = i <= K\n"
                                 "ENDWHILE\n");
}

TEST(GuardIntro, SemanticsPreserved) {
  ExampleSpec Spec = paperExampleSpec();
  machine::MachineConfig M = machine::MachineConfig::sparc2();

  Program Orig = makeExample(Spec);
  ScalarInterp I1(Orig, M, nullptr);
  I1.store().setInt("K", Spec.K);
  I1.store().setIntArray("L", Spec.L);
  I1.run().value();

  Program P = makeExample(Spec);
  NormalizeOptions Opts;
  Opts.SkipParallel = false;
  normalizeLoops(P, Opts);
  introduceGuards(P);
  ScalarInterp I2(P, M, nullptr);
  I2.store().setInt("K", Spec.K);
  I2.store().setIntArray("L", Spec.L);
  I2.run().value();

  EXPECT_EQ(I1.store().getIntArray("X"), I2.store().getIntArray("X"));
}

TEST(GuardIntro, ImpureGuardEvaluatedSameNumberOfTimes) {
  // The whole point of Fig. 9: guards with side effects must run exactly
  // as often and in the same order as before.
  ExampleSpec Spec{2, {2, 1}};
  machine::MachineConfig M = machine::MachineConfig::sparc2();

  auto RunAndLog = [&](Program &P) {
    ExternRegistry Reg;
    std::vector<int64_t> Log;
    int64_t Counter = 0;
    Reg.bind("Bump", [&](std::span<const ScalVal>) {
      ++Counter;
      Log.push_back(Counter);
      return ScalVal::makeInt(Counter);
    });
    ScalarInterp Interp(P, M, &Reg);
    Interp.store().setInt("K", Spec.K);
    Interp.store().setIntArray("L", Spec.L);
    Interp.run().value();
    return Log;
  };

  Program Orig = makeExampleImpureGuard(Spec);
  std::vector<int64_t> WantLog = RunAndLog(Orig);

  Program Guarded = makeExampleImpureGuard(Spec);
  introduceGuards(Guarded);
  EXPECT_EQ(RunAndLog(Guarded), WantLog);
}

TEST(GuardIntro, FreshFlagNames) {
  Program P("g");
  P.addVar("a", ScalarKind::Int);
  P.addVar("t", ScalarKind::Int); // already taken
  Builder B(P);
  P.body().push_back(B.whileLoop(
      B.lt(B.var("a"), B.lit(2)),
      Builder::body(B.set("a", B.add(B.var("a"), B.lit(1))))));
  introduceGuards(P);
  // The guard flag must avoid colliding with the existing 't'.
  EXPECT_EQ(P.lookupVar("t")->Kind, ScalarKind::Int);
  ASSERT_NE(P.lookupVar("t1"), nullptr);
  EXPECT_EQ(P.lookupVar("t1")->Kind, ScalarKind::Bool);
}

} // namespace
