//===- tests/interp/ScalarInterpEdgeTest.cpp -------------------*- C++ -*-===//

#include "interp/ScalarInterp.h"

#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;

namespace {

machine::MachineConfig sparc() { return machine::MachineConfig::sparc2(); }

TEST(ScalarInterpEdge, ForwardConditionalGotoSkips) {
  // IF (cond) GOTO 10 jumping forward skips the middle statements.
  Program P("fwd");
  P.addVar("n", ScalarKind::Int);
  P.addVar("m", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.set("n", B.lit(1)));
  P.body().push_back(B.gotoStmt(10, B.gt(B.var("n"), B.lit(0))));
  P.body().push_back(B.set("m", B.lit(99))); // skipped
  P.body().push_back(B.label(10));
  P.body().push_back(B.set("n", B.add(B.var("n"), B.lit(1))));
  ScalarInterp I(P, sparc(), nullptr);
  I.run().value();
  EXPECT_EQ(I.store().getInt("n"), 2);
  EXPECT_EQ(I.store().getInt("m"), 0);
}

TEST(ScalarInterpEdge, NotTakenConditionalGotoFallsThrough) {
  Program P("nt");
  P.addVar("n", ScalarKind::Int);
  P.addVar("m", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.gotoStmt(10, B.gt(B.var("n"), B.lit(0))));
  P.body().push_back(B.set("m", B.lit(5))); // executed: n == 0
  P.body().push_back(B.label(10));
  ScalarInterp I(P, sparc(), nullptr);
  I.run().value();
  EXPECT_EQ(I.store().getInt("m"), 5);
}

TEST(ScalarInterpEdge, GotoToMissingLabelTraps) {
  Program P("miss");
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.gotoStmt(42, B.eq(B.var("n"), B.lit(0))));
  ScalarInterp I(P, sparc(), nullptr);
  RunOutcome<ScalarRunResult> R = I.run();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, TrapKind::InvalidProgram);
  EXPECT_NE(R.error().Detail.find("GOTO target"), std::string::npos);
}

TEST(ScalarInterpEdge, DivisionByZeroTraps) {
  Program P("dz");
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.set("n", B.div(B.lit(1), B.var("n"))));
  ScalarInterp I(P, sparc(), nullptr);
  RunOutcome<ScalarRunResult> R = I.run();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, TrapKind::DivByZero);
  EXPECT_NE(R.error().Detail.find("division by zero"), std::string::npos);
  EXPECT_NE(R.error().Location.find("assign n"), std::string::npos);
}

TEST(ScalarInterpEdge, RealToIntAssignmentTruncates) {
  Program P("rt");
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.set("n", B.lit(3.9)));
  ScalarInterp I(P, sparc(), nullptr);
  I.run().value();
  EXPECT_EQ(I.store().getInt("n"), 3);
}

TEST(ScalarInterpEdge, IntToRealAssignmentWidens) {
  Program P("ir");
  P.addVar("x", ScalarKind::Real);
  Builder B(P);
  P.body().push_back(B.set("x", B.lit(7)));
  ScalarInterp I(P, sparc(), nullptr);
  I.run().value();
  EXPECT_DOUBLE_EQ(I.store().getReal("x"), 7.0);
}

TEST(ScalarInterpEdge, LaneIntrinsicsDegenerate) {
  Program P("li");
  P.addVar("a", ScalarKind::Int);
  P.addVar("b", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.set("a", B.laneIndex()));
  P.body().push_back(B.set("b", B.numLanes()));
  ScalarInterp I(P, sparc(), nullptr);
  I.run().value();
  EXPECT_EQ(I.store().getInt("a"), 1);
  EXPECT_EQ(I.store().getInt("b"), 1);
}

TEST(ScalarInterpEdge, RunTwiceAsserts) {
  Program P("twice");
  P.addVar("n", ScalarKind::Int);
  ScalarInterp I(P, sparc(), nullptr);
  I.run().value();
  EXPECT_DEATH((void)I.run(), "once");
}

TEST(ScalarInterpEdge, SlicePartitionsEveryTopLevelParallelLoop) {
  // Two DOALL phases: the slice partitions both (each phase runs
  // distributed under the owner-computes rule).
  Program P("two");
  P.addVar("i", ScalarKind::Int);
  P.addVar("A", ScalarKind::Int, {4}, Dist::Distributed);
  P.addVar("B", ScalarKind::Int, {4}, Dist::Distributed);
  Builder B(P);
  P.body().push_back(B.doLoop(
      "i", B.lit(1), B.lit(4),
      Builder::body(B.assign(B.at("A", B.var("i")), B.var("i"))), nullptr,
      true));
  P.body().push_back(B.doLoop(
      "i", B.lit(1), B.lit(4),
      Builder::body(B.assign(B.at("B", B.var("i")), B.var("i"))), nullptr,
      true));
  ScalarInterp I(P, sparc(), nullptr);
  I.setSlice({/*Proc=*/0, /*NumProcs=*/2, machine::Layout::Block});
  I.run().value();
  // Processor 0 owns the first block of both phases.
  EXPECT_EQ(I.store().getIntArray("A"),
            (std::vector<int64_t>{1, 2, 0, 0}));
  EXPECT_EQ(I.store().getIntArray("B"),
            (std::vector<int64_t>{1, 2, 0, 0}));
}

} // namespace
