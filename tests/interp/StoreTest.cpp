//===- tests/interp/StoreTest.cpp ------------------------------*- C++ -*-===//

#include "interp/Store.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;

namespace {

Program makeProg() {
  Program P("p");
  P.addVar("c", ScalarKind::Int); // control
  P.addVar("r", ScalarKind::Int, {}, Dist::Replicated);
  P.addVar("x", ScalarKind::Real, {}, Dist::Replicated);
  P.addVar("A", ScalarKind::Int, {6}, Dist::Distributed);
  P.addVar("M", ScalarKind::Real, {2, 3}, Dist::Distributed);
  return P;
}

TEST(Store, Widths) {
  Program P = makeProg();
  DataStore S(P, /*Lanes=*/4);
  EXPECT_EQ(S.slot("c").Width, 1);
  EXPECT_EQ(S.slot("r").Width, 4);
  EXPECT_EQ(S.slot("A").Width, 6);
  EXPECT_EQ(S.slot("M").Width, 6);
}

TEST(Store, ScalarMachineCollapsesReplication) {
  Program P = makeProg();
  DataStore S(P, /*Lanes=*/1);
  EXPECT_EQ(S.slot("r").Width, 1);
}

TEST(Store, ZeroInitialized) {
  Program P = makeProg();
  DataStore S(P, 2);
  EXPECT_EQ(S.getInt("c"), 0);
  EXPECT_EQ(S.getReal("x"), 0.0);
  for (int64_t V : S.getIntArray("A"))
    EXPECT_EQ(V, 0);
}

TEST(Store, ScalarBroadcast) {
  Program P = makeProg();
  DataStore S(P, 4);
  S.setInt("r", 7);
  for (int64_t L = 0; L < 4; ++L)
    EXPECT_EQ(S.getIntLane("r", L), 7);
  S.setIntLane("r", 2, 9);
  EXPECT_EQ(S.getIntLane("r", 2), 9);
  EXPECT_EQ(S.getIntLane("r", 1), 7);
}

TEST(Store, ArrayRoundTrip) {
  Program P = makeProg();
  DataStore S(P, 2);
  std::vector<int64_t> Vals = {1, 2, 3, 4, 5, 6};
  S.setIntArray("A", Vals);
  EXPECT_EQ(S.getIntArray("A"), Vals);
  std::vector<int64_t> Idx = {3};
  EXPECT_EQ(S.getIntAt("A", Idx), 3);
  S.setIntAt("A", Idx, 42);
  EXPECT_EQ(S.getIntAt("A", Idx), 42);
}

TEST(Store, RowMajorFlatIndex) {
  Program P = makeProg();
  const VarDecl *M = P.lookupVar("M");
  std::vector<int64_t> I11 = {1, 1}, I13 = {1, 3}, I21 = {2, 1},
                       I23 = {2, 3};
  EXPECT_EQ(DataStore::flatIndex(*M, I11), 0);
  EXPECT_EQ(DataStore::flatIndex(*M, I13), 2);
  EXPECT_EQ(DataStore::flatIndex(*M, I21), 3);
  EXPECT_EQ(DataStore::flatIndex(*M, I23), 5);
}

TEST(Store, FlatIndexBoundsChecking) {
  Program P = makeProg();
  const VarDecl *M = P.lookupVar("M");
  std::vector<int64_t> Zero = {0, 1}, High = {1, 4}, Neg = {-1, 2};
  EXPECT_EQ(DataStore::flatIndex(*M, Zero), -1);
  EXPECT_EQ(DataStore::flatIndex(*M, High), -1);
  EXPECT_EQ(DataStore::flatIndex(*M, Neg), -1);
}

TEST(Store, RealArray) {
  Program P = makeProg();
  DataStore S(P, 2);
  std::vector<double> Vals = {0.5, 1.5, 2.5, 3.5, 4.5, 5.5};
  S.setRealArray("M", Vals);
  std::vector<int64_t> I = {2, 1};
  EXPECT_EQ(S.getRealAt("M", I), 3.5);
}

} // namespace
