//===- tests/interp/MimdInterpTest.cpp -------------------------*- C++ -*-===//

#include "interp/MimdInterp.h"

#include "ir/Builder.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

#include <limits>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

namespace {

TEST(MimdInterp, PaperExampleEq1) {
  // Sec. 3 / Eq. 1: with P = 2 and blockwise distribution the MIMD
  // version needs max(4+1+2+1, 1+3+1+3) = 8 inner iterations.
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  MimdInterp Interp(P, M, nullptr, /*NumProcs=*/2, machine::Layout::Block,
                    Opts);
  MimdRunResult R = Interp.run([&](DataStore &S) {
    S.setInt("K", Spec.K);
    S.setIntArray("L", Spec.L);
  }).value();
  EXPECT_EQ(R.TimeSteps, 8);
  ASSERT_EQ(R.PerProc.size(), 2u);
  EXPECT_EQ(R.PerProc[0].WorkSteps, 8);
  EXPECT_EQ(R.PerProc[1].WorkSteps, 8);
}

TEST(MimdInterp, Figure4Trace) {
  // The exact MIMD execution trace of Fig. 4 (global row numbers; the
  // paper renames rows 5..8 to a local 1..4 name space on processor 2).
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  Opts.Watch = {"i", "j"};
  MimdInterp Interp(P, M, nullptr, 2, machine::Layout::Block, Opts);
  MimdRunResult R = Interp.run([&](DataStore &S) {
    S.setInt("K", Spec.K);
    S.setIntArray("L", Spec.L);
  }).value();
  const int64_t Proc1[8][2] = {{1, 1}, {1, 2}, {1, 3}, {1, 4},
                               {2, 1}, {3, 1}, {3, 2}, {4, 1}};
  const int64_t Proc2[8][2] = {{5, 1}, {6, 1}, {6, 2}, {6, 3},
                               {7, 1}, {8, 1}, {8, 2}, {8, 3}};
  ASSERT_EQ(R.PerProcTrace[0].Steps.size(), 8u);
  ASSERT_EQ(R.PerProcTrace[1].Steps.size(), 8u);
  for (size_t S = 0; S < 8; ++S) {
    EXPECT_EQ(R.PerProcTrace[0].value(S, 0, 0), Proc1[S][0]);
    EXPECT_EQ(R.PerProcTrace[0].value(S, 1, 0), Proc1[S][1]);
    EXPECT_EQ(R.PerProcTrace[1].value(S, 0, 0), Proc2[S][0]);
    EXPECT_EQ(R.PerProcTrace[1].value(S, 1, 0), Proc2[S][1]);
  }
}

TEST(MimdInterp, MergedStoreMatchesSequential) {
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  auto Init = [&](DataStore &S) {
    S.setInt("K", Spec.K);
    S.setIntArray("L", Spec.L);
  };

  ScalarInterp Seq(P, M, nullptr);
  Init(Seq.store());
  Seq.run().value();

  for (int64_t Procs : {1, 2, 4, 8}) {
    for (machine::Layout L :
         {machine::Layout::Block, machine::Layout::Cyclic}) {
      MimdInterp Par(P, M, nullptr, Procs, L);
      MimdRunResult R = Par.run(Init).value();
      EXPECT_EQ(R.Merged->getIntArray("X"), Seq.store().getIntArray("X"))
          << Procs << " procs";
    }
  }
}

TEST(MimdInterp, MoreProcsNeverSlower) {
  // Perfect-information bound: adding processors cannot increase the
  // max-of-sums time.
  ExampleSpec Spec{12, {5, 1, 2, 7, 1, 1, 3, 2, 8, 1, 1, 4}};
  Program P = makeExample(Spec);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  auto Init = [&](DataStore &S) {
    S.setInt("K", Spec.K);
    S.setIntArray("L", Spec.L);
  };
  int64_t Prev = std::numeric_limits<int64_t>::max();
  for (int64_t Procs : {1, 2, 3, 4, 6, 12}) {
    MimdInterp Par(P, M, nullptr, Procs, machine::Layout::Block, Opts);
    MimdRunResult R = Par.run(Init).value();
    EXPECT_LE(R.TimeSteps, Prev) << Procs << " procs";
    Prev = R.TimeSteps;
  }
}

TEST(MimdInterp, CyclicPartitioningBalancesSkew) {
  // All the work is in the first half of the rows: block partitioning
  // puts it all on processor 0; cyclic spreads it.
  ExampleSpec Spec{8, {9, 9, 9, 9, 1, 1, 1, 1}};
  Program P = makeExample(Spec);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  auto Init = [&](DataStore &S) {
    S.setInt("K", Spec.K);
    S.setIntArray("L", Spec.L);
  };
  MimdInterp Block(P, M, nullptr, 2, machine::Layout::Block, Opts);
  MimdInterp Cyclic(P, M, nullptr, 2, machine::Layout::Cyclic, Opts);
  int64_t BlockTime = Block.run(Init).value().TimeSteps;
  int64_t CyclicTime = Cyclic.run(Init).value().TimeSteps;
  EXPECT_EQ(BlockTime, 36);
  EXPECT_EQ(CyclicTime, 20);
}

} // namespace
