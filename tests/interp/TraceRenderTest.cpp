//===- tests/interp/TraceRenderTest.cpp ------------------------*- C++ -*-===//

#include "interp/TraceRender.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;

namespace {

Trace makeSimdTrace() {
  Trace T;
  T.Watch = {"i", "j"};
  T.Lanes = 2;
  // Two steps; lane 2 idle in step 2.
  Trace::Step S1;
  S1.Values = {1, 5, /* j: */ 1, 1};
  S1.Active = {1, 1};
  Trace::Step S2;
  S2.Values = {1, 5, /* j: */ 2, 2};
  S2.Active = {1, 0};
  T.Steps = {std::move(S1), std::move(S2)};
  return T;
}

TEST(TraceRender, SimdLayoutMatchesFigure6Style) {
  std::string Out = renderSimdTrace(makeSimdTrace());
  EXPECT_EQ(Out, "Time     1   2\n"
                 "i1       1   1\n"
                 "j1       1   2\n"
                 "i2       5   -\n"
                 "j2       1   -\n");
}

TEST(TraceRender, EmptyTrace) {
  Trace T;
  T.Watch = {"i"};
  T.Lanes = 1;
  std::string Out = renderSimdTrace(T);
  EXPECT_EQ(Out, "Time\ni1\n");
}

TEST(TraceRender, MimdUnevenProcessors) {
  Trace P1;
  P1.Watch = {"i"};
  P1.Lanes = 1;
  for (int64_t V : {1, 2, 3}) {
    Trace::Step S;
    S.Values = {V};
    S.Active = {1};
    P1.Steps.push_back(std::move(S));
  }
  Trace P2 = P1;
  P2.Steps.pop_back(); // processor 2 finishes earlier
  std::string Out = renderMimdTrace({P1, P2});
  EXPECT_EQ(Out, "Time     1   2   3\n"
                 "i1       1   2   3\n"
                 "i2       1   2\n");
}

} // namespace
