//===- tests/interp/ScalarInterpTest.cpp -----------------------*- C++ -*-===//

#include "interp/ScalarInterp.h"

#include "ir/Builder.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

namespace {

machine::MachineConfig testMachine() {
  return machine::MachineConfig::sparc2();
}

/// Fills EXAMPLE inputs (K, L) into a store.
void setExampleInputs(DataStore &S, const ExampleSpec &Spec) {
  S.setInt("K", Spec.K);
  S.setIntArray("L", Spec.L);
}

/// The expected X contents after EXAMPLE: X(i,j) = i*j for j <= L(i).
std::vector<int64_t> expectedX(const ExampleSpec &Spec) {
  int64_t MaxL = std::max<int64_t>(Spec.maxL(), 1);
  std::vector<int64_t> X(static_cast<size_t>(Spec.K * MaxL), 0);
  for (int64_t I = 1; I <= Spec.K; ++I)
    for (int64_t J = 1; J <= Spec.L[static_cast<size_t>(I - 1)]; ++J)
      X[static_cast<size_t>((I - 1) * MaxL + (J - 1))] = I * J;
  return X;
}

TEST(ScalarInterp, RunsPaperExample) {
  machine::MachineConfig M = testMachine();
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  ScalarInterp Interp(P, M, nullptr, Opts);
  setExampleInputs(Interp.store(), Spec);
  ScalarRunResult R = Interp.run().value();
  EXPECT_EQ(Interp.store().getIntArray("X"), expectedX(Spec));
  // Sequential work = sum of inner trip counts = 16.
  EXPECT_EQ(R.Stats.WorkSteps, 16);
  EXPECT_GT(R.Stats.Cycles, 0.0);
  EXPECT_GT(R.Stats.Seconds, 0.0);
}

TEST(ScalarInterp, AllLoopFormsAgree) {
  machine::MachineConfig M = testMachine();
  ExampleSpec Spec = paperExampleSpec();
  std::vector<int64_t> Want = expectedX(Spec);
  for (LoopForm Inner : {LoopForm::Do, LoopForm::While, LoopForm::Repeat,
                         LoopForm::GotoLoop}) {
    for (LoopForm Outer : {LoopForm::Do, LoopForm::While}) {
      Program P = makeExample(Spec, Inner, Outer);
      ScalarInterp Interp(P, M, nullptr);
      setExampleInputs(Interp.store(), Spec);
      Interp.run().value();
      EXPECT_EQ(Interp.store().getIntArray("X"), Want)
          << "inner form " << static_cast<int>(Inner) << ", outer "
          << static_cast<int>(Outer);
    }
  }
}

TEST(ScalarInterp, GotoOuterLoopToo) {
  machine::MachineConfig M = testMachine();
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec, LoopForm::GotoLoop, LoopForm::GotoLoop);
  ScalarInterp Interp(P, M, nullptr);
  setExampleInputs(Interp.store(), Spec);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getIntArray("X"), expectedX(Spec));
}

TEST(ScalarInterp, TraceRecordsEveryWorkStep) {
  machine::MachineConfig M = testMachine();
  ExampleSpec Spec{3, {2, 1, 2}};
  Program P = makeExample(Spec);
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  Opts.Watch = {"i", "j"};
  ScalarInterp Interp(P, M, nullptr, Opts);
  setExampleInputs(Interp.store(), Spec);
  ScalarRunResult R = Interp.run().value();
  ASSERT_EQ(R.Tr.Steps.size(), 5u);
  // (i, j) sequence: (1,1) (1,2) (2,1) (3,1) (3,2).
  const int64_t Want[5][2] = {{1, 1}, {1, 2}, {2, 1}, {3, 1}, {3, 2}};
  for (size_t S = 0; S < 5; ++S) {
    EXPECT_EQ(R.Tr.value(S, 0, 0), Want[S][0]);
    EXPECT_EQ(R.Tr.value(S, 1, 0), Want[S][1]);
  }
}

TEST(ScalarInterp, ImpureExternSequencing) {
  machine::MachineConfig M = testMachine();
  ExampleSpec Spec{2, {2, 1}};
  Program P = makeExampleImpureGuard(Spec);
  // Bump() returns the current inner counter (like reading j) by keeping
  // its own mirror of the loop position.
  ExternRegistry Reg;
  std::vector<int64_t> CallLog;
  int64_t Counter = 0;
  Reg.bind("Bump", [&](std::span<const ScalVal>) {
    ++Counter;
    CallLog.push_back(Counter);
    return ScalVal::makeInt(Counter);
  });
  // Returning an always-growing counter would loop forever; the kernel's
  // guard is Bump() <= L(i), and Bump keeps counting up, so each inner
  // while terminates after L(i)+... - reset the counter per row via the
  // log length instead: simpler: make Bump return 1,2,3,... and L small.
  ScalarInterp Interp(P, M, &Reg);
  Interp.store().setInt("K", Spec.K);
  Interp.store().setIntArray("L", Spec.L);
  Interp.run().value();
  // Row 1 (L=2): Bump -> 1 (<=2, body), 2 (<=2, body), 3 (>2, exit).
  // Row 2 (L=1): Bump -> 4 (>1, exit immediately): no body execution.
  EXPECT_EQ(CallLog, (std::vector<int64_t>{1, 2, 3, 4}));
}

TEST(ScalarInterp, DoLoopStepAndExitValue) {
  Program P("steps");
  P.addVar("i", ScalarKind::Int);
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.doLoop(
      "i", B.lit(1), B.lit(9),
      Builder::body(B.set("n", B.add(B.var("n"), B.lit(1)))), B.lit(3)));
  machine::MachineConfig M = testMachine();
  ScalarInterp Interp(P, M, nullptr);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getInt("n"), 3);  // i = 1, 4, 7
  EXPECT_EQ(Interp.store().getInt("i"), 10); // one step past
}

TEST(ScalarInterp, ZeroTripDoLoop) {
  Program P("zt");
  P.addVar("i", ScalarKind::Int);
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.doLoop(
      "i", B.lit(5), B.lit(4),
      Builder::body(B.set("n", B.add(B.var("n"), B.lit(1))))));
  machine::MachineConfig M = testMachine();
  ScalarInterp Interp(P, M, nullptr);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getInt("n"), 0);
}

TEST(ScalarInterp, RepeatRunsBodyAtLeastOnce) {
  Program P("rp");
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.repeatUntil(
      Builder::body(B.set("n", B.add(B.var("n"), B.lit(1)))),
      B.ge(B.var("n"), B.lit(1))));
  machine::MachineConfig M = testMachine();
  ScalarInterp Interp(P, M, nullptr);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getInt("n"), 1);
}

TEST(ScalarInterp, WhereActsAsIf) {
  Program P("wh");
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.where(B.gt(B.var("n"), B.lit(0)),
                             Builder::body(B.set("n", B.lit(10))),
                             Builder::body(B.set("n", B.lit(20)))));
  machine::MachineConfig M = testMachine();
  ScalarInterp Interp(P, M, nullptr);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getInt("n"), 20);
}

TEST(ScalarInterp, IntrinsicEvaluation) {
  Program P("in");
  P.addVar("a", ScalarKind::Int);
  P.addVar("b", ScalarKind::Int);
  P.addVar("r", ScalarKind::Real);
  P.addVar("A", ScalarKind::Int, {4});
  Builder B(P);
  P.body().push_back(B.set("a", B.max(B.lit(3), B.lit(7))));
  P.body().push_back(B.set("b", B.maxVal("A")));
  P.body().push_back(B.set("r", B.sqrt(B.lit(2.25))));
  machine::MachineConfig M = testMachine();
  ScalarInterp Interp(P, M, nullptr);
  std::vector<int64_t> A = {5, 9, 2, 8};
  Interp.store().setIntArray("A", A);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getInt("a"), 7);
  EXPECT_EQ(Interp.store().getInt("b"), 9);
  EXPECT_DOUBLE_EQ(Interp.store().getReal("r"), 1.5);
}

TEST(ScalarInterp, ModAndIntDivision) {
  Program P("md");
  P.addVar("a", ScalarKind::Int);
  P.addVar("b", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.set("a", B.mod(B.lit(17), B.lit(5))));
  P.body().push_back(B.set("b", B.div(B.lit(17), B.lit(5))));
  machine::MachineConfig M = testMachine();
  ScalarInterp Interp(P, M, nullptr);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getInt("a"), 2);
  EXPECT_EQ(Interp.store().getInt("b"), 3);
}

TEST(ScalarInterp, WorkCallCounting) {
  Program P("wc");
  P.addVar("i", ScalarKind::Int);
  P.addVar("s", ScalarKind::Real);
  P.addExtern("Force", ScalarKind::Real);
  Builder B(P);
  P.body().push_back(B.doLoop(
      "i", B.lit(1), B.lit(5),
      Builder::body(B.set(
          "s", B.add(B.var("s"), B.callFn("Force", {}))))));
  ExternRegistry Reg;
  Reg.bind("Force",
           [](std::span<const ScalVal>) { return ScalVal::makeReal(1.0); },
           /*Cost=*/100.0);
  RunOptions Opts;
  Opts.WorkCalls = {"Force"};
  machine::MachineConfig M = testMachine();
  ScalarInterp Interp(P, M, &Reg, Opts);
  ScalarRunResult R = Interp.run().value();
  EXPECT_EQ(R.Stats.WorkSteps, 5);
  EXPECT_DOUBLE_EQ(Interp.store().getReal("s"), 5.0);
  EXPECT_GE(R.Stats.Cycles, 500.0);
}

} // namespace
