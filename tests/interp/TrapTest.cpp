//===- tests/interp/TrapTest.cpp -------------------------------*- C++ -*-===//
//
// Structured trap raising across the executors: a program fault (an
// out-of-bounds subscript, a zero divisor under a WHERE mask, a
// lane-varying DO bound, an exhausted fuel budget, a failing extern)
// must come back as a Trap carrying the kind, the faulting lane set,
// and the statement location - never as a process abort.
//
//===----------------------------------------------------------------------===//

#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"

#include "ir/Builder.h"
#include "ir/Walk.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;

namespace {

machine::MachineConfig lanes(int64_t N) {
  machine::MachineConfig M;
  M.Name = "trap";
  M.Processors = N;
  M.Gran = N;
  M.DataLayout = machine::Layout::Cyclic;
  M.SecondsPerCycle = 1.0;
  return M;
}

TEST(Trap, RenderNamesKindLanesAndLocation) {
  Trap T{TrapKind::OutOfBounds, {0, 2}, "DO i / assign A",
         "active lane(s) read out of bounds from 'A'"};
  std::string S = T.render();
  EXPECT_NE(S.find("out-of-bounds"), std::string::npos);
  EXPECT_NE(S.find("DO i / assign A"), std::string::npos);
  EXPECT_NE(S.find("0 2"), std::string::npos);
  // A control-unit trap renders without a lane clause.
  Trap U{TrapKind::FuelExhausted, {}, "WHILE", "fuel budget exhausted"};
  EXPECT_EQ(U.render().find("lane"), std::string::npos);
}

TEST(Trap, SimdOutOfBoundsNamesOnlyActiveFaultingLanes) {
  // Four lanes gather A(idx): lanes hold idx = {1, 2, 5, 6} of a
  // 4-element array, but the WHERE mask only activates lanes with
  // idx <= 5. Lane 2 (0-based, idx 5) is active and faults; lane 3
  // (idx 6) also faults but is idle, so it must not be named.
  Program P("oob");
  P.setDialect(Dialect::F90Simd);
  P.addVar("A", ScalarKind::Int, {4}, Dist::Distributed);
  P.addVar("idx", ScalarKind::Int, {}, Dist::Replicated);
  P.addVar("v", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  // idx = laneIndex + 2 * ((laneIndex - 1) / 2): 1, 2, 5, 6.
  P.body().push_back(B.set(
      "idx",
      B.add(B.laneIndex(),
            B.mul(B.lit(2),
                  B.div(B.sub(B.laneIndex(), B.lit(1)), B.lit(2))))));
  P.body().push_back(
      B.where(B.le(B.var("idx"), B.lit(5)),
              Builder::body(B.set("v", B.at("A", B.var("idx"))))));
  SimdInterp I(P, lanes(4), nullptr);
  RunOutcome<SimdRunResult> R = I.run();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, TrapKind::OutOfBounds);
  EXPECT_EQ(R.error().Lanes, (std::vector<int64_t>{2}));
  EXPECT_NE(R.error().Location.find("WHERE"), std::string::npos);
  EXPECT_NE(R.error().Location.find("assign v"), std::string::npos);
}

TEST(Trap, SimdNonUniformDoBoundsTrap) {
  // DO bounds must be control-uniform; a lane-varying upper bound is
  // the classic SIMDization bug and must name every divergent lane.
  Program P("nu");
  P.setDialect(Dialect::F90Simd);
  P.addVar("n", ScalarKind::Int, {}, Dist::Replicated);
  P.addVar("i", ScalarKind::Int);
  P.addVar("s", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(B.set("n", B.laneIndex()));
  P.body().push_back(
      B.doLoop("i", B.lit(1), B.var("n"),
               Builder::body(B.set("s", B.add(B.var("s"), B.lit(1))))));
  SimdInterp I(P, lanes(4), nullptr);
  RunOutcome<SimdRunResult> R = I.run();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, TrapKind::NonUniformControl);
  EXPECT_EQ(R.error().Lanes, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_NE(R.error().Location.find("DO i"), std::string::npos);
  EXPECT_NE(R.error().Detail.find("DO upper bound"), std::string::npos);
}

TEST(Trap, SimdDivByZeroUnderWhereNamesActiveLanes) {
  // v = 10 / (laneIndex - 2) under WHERE(laneIndex >= 2): lane 1
  // (0-based, laneIndex 2) divides by zero and is active.
  Program P("dz");
  P.setDialect(Dialect::F90Simd);
  P.addVar("v", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(B.where(
      B.ge(B.laneIndex(), B.lit(2)),
      Builder::body(B.set(
          "v", B.div(B.lit(10), B.sub(B.laneIndex(), B.lit(2)))))));
  SimdInterp I(P, lanes(4), nullptr);
  RunOutcome<SimdRunResult> R = I.run();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, TrapKind::DivByZero);
  EXPECT_EQ(R.error().Lanes, (std::vector<int64_t>{1}));
  EXPECT_NE(R.error().Location.find("WHERE"), std::string::npos);
}

TEST(Trap, SimdIdleLaneDivByZeroTolerated) {
  // The same division with the zero-divisor lane masked off completes.
  Program P("dzok");
  P.setDialect(Dialect::F90Simd);
  P.addVar("v", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(B.where(
      B.ge(B.laneIndex(), B.lit(3)),
      Builder::body(B.set(
          "v", B.div(B.lit(10), B.sub(B.laneIndex(), B.lit(2)))))));
  SimdInterp I(P, lanes(4), nullptr);
  EXPECT_TRUE(I.run().ok());
}

TEST(Trap, FuelExhaustionOnNonTerminatingWhile) {
  // n never reaches 1, so the watchdog must stop the machine with a
  // FuelExhausted trap located at the WHILE statement.
  Program P("fuel");
  P.setDialect(Dialect::F90Simd);
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.whileLoop(
      B.lt(B.var("n"), B.lit(1)),
      Builder::body(B.set("n", B.sub(B.var("n"), B.lit(1))))));
  RunOptions Opts;
  Opts.Fuel = 500;
  SimdInterp I(P, lanes(2), nullptr, Opts);
  RunOutcome<SimdRunResult> R = I.run();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, TrapKind::FuelExhausted);
  EXPECT_TRUE(R.error().Lanes.empty()); // control-unit fault
  EXPECT_NE(R.error().Detail.find("fuel budget"), std::string::npos);
}

TEST(Trap, ScalarFuelBudgetIsDeterministic) {
  // The same budget traps after the same instruction count every time.
  auto runOnce = [](int64_t Fuel) {
    Program P("det");
    P.addVar("n", ScalarKind::Int);
    Builder B(P);
    P.body().push_back(B.whileLoop(
        B.ge(B.var("n"), B.lit(0)),
        Builder::body(B.set("n", B.add(B.var("n"), B.lit(1))))));
    RunOptions Opts;
    Opts.Fuel = Fuel;
    ScalarInterp I(P, machine::MachineConfig::sparc2(), nullptr, Opts);
    RunOutcome<ScalarRunResult> R = I.run();
    EXPECT_FALSE(R.ok());
    EXPECT_EQ(R.error().Kind, TrapKind::FuelExhausted);
    return I.store().getInt("n");
  };
  EXPECT_EQ(runOnce(1000), runOnce(1000));
}

TEST(Trap, ExternFailureSurfacesAsTrap) {
  Program P("ext");
  P.addExtern("Bad", ScalarKind::Int, /*Pure=*/false);
  P.addVar("v", ScalarKind::Int);
  Builder B(P);
  std::vector<ExprPtr> Args;
  Args.push_back(B.lit(1));
  P.body().push_back(B.set("v", B.callFn("Bad", std::move(Args))));
  ExternRegistry Reg;
  Reg.bind("Bad", [](std::span<const ScalVal>) -> ScalVal {
    throw ExternError{"device unavailable"};
  });
  ScalarInterp I(P, machine::MachineConfig::sparc2(), nullptr);
  RunOutcome<ScalarRunResult> RUnbound = I.run();
  ASSERT_FALSE(RUnbound.ok());
  EXPECT_EQ(RUnbound.error().Kind, TrapKind::ExternFailure);

  Program P2 = cloneProgram(P);
  ScalarInterp I2(P2, machine::MachineConfig::sparc2(), &Reg);
  RunOutcome<ScalarRunResult> R = I2.run();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, TrapKind::ExternFailure);
  EXPECT_NE(R.error().Detail.find("device unavailable"),
            std::string::npos);
}

TEST(Trap, StoreKeepsCommitsFromBeforeTheFault) {
  // Everything executed before the fault stays observable in the store
  // (fault containment, not transaction rollback).
  Program P("partial");
  P.addVar("a", ScalarKind::Int);
  P.addVar("b", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.set("a", B.lit(7)));
  P.body().push_back(B.set("b", B.div(B.lit(1), B.sub(B.var("a"),
                                                      B.var("a")))));
  ScalarInterp I(P, machine::MachineConfig::sparc2(), nullptr);
  RunOutcome<ScalarRunResult> R = I.run();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, TrapKind::DivByZero);
  EXPECT_EQ(I.store().getInt("a"), 7);
}

} // namespace
