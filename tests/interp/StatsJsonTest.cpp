//===- tests/interp/StatsJsonTest.cpp --------------------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/StatsJson.h"

#include "native/LaneStatsJson.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;

namespace {

TEST(StatsJson, RunStatsRoundTrip) {
  RunStats S;
  S.WorkSteps = 12;
  S.Instructions = 345;
  S.WorkActiveLanes = 20;
  S.WorkTotalLanes = 24;
  S.CommAccesses = 7;
  S.Cycles = 901.5;
  S.Seconds = 0.09015;
  json::Value V = toJson(S);
  // Serialized through text and back, every counter survives.
  auto Parsed = json::Value::parse(V.dump(2));
  ASSERT_TRUE(Parsed.ok());
  auto Back = runStatsFromJson(*Parsed);
  ASSERT_TRUE(Back.ok()) << Back.error().render();
  EXPECT_EQ(Back->WorkSteps, 12);
  EXPECT_EQ(Back->Instructions, 345);
  EXPECT_EQ(Back->WorkActiveLanes, 20);
  EXPECT_EQ(Back->WorkTotalLanes, 24);
  EXPECT_EQ(Back->CommAccesses, 7);
  EXPECT_DOUBLE_EQ(Back->Cycles, 901.5);
  EXPECT_DOUBLE_EQ(Back->Seconds, 0.09015);
  EXPECT_DOUBLE_EQ(Back->workUtilization(), S.workUtilization());
}

TEST(StatsJson, TripHistogramRoundTrip) {
  RunStats S;
  S.WorkSteps = 1;
  NestTripStats N;
  N.Name = "L0 do i";
  N.Depth = 0;
  N.Hist.record(0);
  N.Hist.record(3);
  N.Hist.record(3);
  N.Hist.record(500);
  S.TripNests.push_back(N);
  json::Value V = toJson(S);
  auto Parsed = json::Value::parse(V.dump(2));
  ASSERT_TRUE(Parsed.ok());
  auto Back = runStatsFromJson(*Parsed);
  ASSERT_TRUE(Back.ok()) << Back.error().render();
  ASSERT_EQ(Back->TripNests.size(), 1u);
  const NestTripStats &B = Back->TripNests[0];
  EXPECT_EQ(B.Name, "L0 do i");
  EXPECT_EQ(B.Depth, 0);
  EXPECT_EQ(B.Hist.Exact, N.Hist.Exact);
  EXPECT_EQ(B.Hist.Log2, N.Hist.Log2);
  EXPECT_EQ(B.Hist.Samples, 4);
  EXPECT_EQ(B.Hist.Sum, 506);
  EXPECT_EQ(B.Hist.Max, 500);
}

TEST(StatsJson, TripHistogramAbsentMeansNoNests) {
  auto V = json::Value::parse("{\"work_steps\": 3}");
  ASSERT_TRUE(V.ok());
  auto S = runStatsFromJson(*V);
  ASSERT_TRUE(S.ok());
  EXPECT_TRUE(S->TripNests.empty());
}

TEST(StatsJson, TripHistogramRejectsWrongVersion) {
  // The bucketization scheme is not self-describing, so a reader must
  // refuse blocks written under any other version rather than
  // misinterpret the buckets.
  auto V = json::Value::parse(
      "{\"trip_histogram\": {\"version\": 999, \"nests\": []}}");
  ASSERT_TRUE(V.ok());
  auto S = runStatsFromJson(*V);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().Message.find("version"), std::string::npos);
}

TEST(StatsJson, TripHistogramRejectsInconsistentCounts) {
  auto V = json::Value::parse(
      "{\"trip_histogram\": {\"version\": 1, \"nests\": ["
      "{\"name\": \"L0\", \"depth\": 0, \"samples\": 7,"
      " \"exact\": [1,0,0,0,0,0,0,0], \"log2\": {}}]}}");
  ASSERT_TRUE(V.ok());
  auto S = runStatsFromJson(*V);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().Message.find("inconsistent"), std::string::npos);
}

TEST(StatsJson, TripHistogramRejectsBadLog2Bucket) {
  auto V = json::Value::parse(
      "{\"trip_histogram\": {\"version\": 1, \"nests\": ["
      "{\"name\": \"L0\", \"depth\": 0, \"samples\": 1,"
      " \"log2\": {\"99\": 1}}]}}");
  ASSERT_TRUE(V.ok());
  auto S = runStatsFromJson(*V);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().Message.find("log2"), std::string::npos);
}

TEST(StatsJson, RunStatsMissingFieldsKeepDefaults) {
  auto V = json::Value::parse("{\"work_steps\": 3}");
  ASSERT_TRUE(V.ok());
  auto S = runStatsFromJson(*V);
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(S->WorkSteps, 3);
  EXPECT_EQ(S->Instructions, 0);
  EXPECT_DOUBLE_EQ(S->Cycles, 0.0);
}

TEST(StatsJson, RunStatsRejectsInconsistentLaneAccounting) {
  // Padded-tail regression: a record claiming more active lane slots
  // than total slots would deserialize into a >100% utilization (the
  // padded lanes are idle, never active). Reject it, and negatives too.
  auto Over = json::Value::parse(
      "{\"work_active_lanes\": 9, \"work_total_lanes\": 8}");
  ASSERT_TRUE(Over.ok());
  auto S = runStatsFromJson(*Over);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().render().find("work_active_lanes"),
            std::string::npos);

  auto Neg = json::Value::parse(
      "{\"work_active_lanes\": -1, \"work_total_lanes\": 0}");
  ASSERT_TRUE(Neg.ok());
  EXPECT_FALSE(runStatsFromJson(*Neg).ok());

  // The padded-tail shape itself (active < total, N=6 on width 4 =
  // 6/8) round-trips fine.
  auto Ok = json::Value::parse(
      "{\"work_steps\": 2, \"work_active_lanes\": 6, "
      "\"work_total_lanes\": 8}");
  ASSERT_TRUE(Ok.ok());
  auto SOk = runStatsFromJson(*Ok);
  ASSERT_TRUE(SOk.ok()) << SOk.error().render();
  EXPECT_DOUBLE_EQ(SOk->workUtilization(), 0.75);
  EXPECT_TRUE(SOk->laneAccountingConsistent());
}

TEST(StatsJson, RunStatsRejectsWrongTypes) {
  auto V = json::Value::parse("{\"work_steps\": \"three\"}");
  ASSERT_TRUE(V.ok());
  EXPECT_FALSE(runStatsFromJson(*V).ok());
  EXPECT_FALSE(runStatsFromJson(json::Value(int64_t{1})).ok());
}

TEST(StatsJson, LaneStatsRoundTrip) {
  native::LaneStats S;
  S.Steps = 9;
  S.ActiveLaneSlots = 30;
  S.TotalLaneSlots = 36;
  json::Value V = native::toJson(S);
  auto Back = native::laneStatsFromJson(V);
  ASSERT_TRUE(Back.ok()) << Back.error().render();
  EXPECT_EQ(Back->Steps, 9);
  EXPECT_EQ(Back->ActiveLaneSlots, 30);
  EXPECT_EQ(Back->TotalLaneSlots, 36);
  EXPECT_DOUBLE_EQ(Back->utilization(), S.utilization());
  // The serialized utilization field matches the recomputed one.
  ASSERT_NE(V.get("utilization"), nullptr);
  EXPECT_DOUBLE_EQ(V.get("utilization")->asDouble(), S.utilization());
}

TEST(StatsJson, TraceSerializes) {
  Trace T;
  T.Watch = {"i", "j"};
  T.Lanes = 2;
  Trace::Step Step;
  Step.Values = {1, 2, 3, 4};
  Step.Active = {1, 0};
  T.Steps.push_back(Step);
  json::Value V = toJson(T);
  ASSERT_NE(V.get("steps"), nullptr);
  ASSERT_EQ(V.get("steps")->size(), 1u);
  const json::Value &S0 = V.get("steps")->at(0);
  ASSERT_NE(S0.get("active"), nullptr);
  EXPECT_TRUE(S0.get("active")->at(0).asBool());
  EXPECT_FALSE(S0.get("active")->at(1).asBool());
}

} // namespace
