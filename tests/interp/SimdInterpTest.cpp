//===- tests/interp/SimdInterpTest.cpp -------------------------*- C++ -*-===//
//
// Exercises the SIMD machine executor on hand-built F90simd programs,
// including the paper's Fig. 5 (naive SIMDized EXAMPLE, 12 steps / Eq. 2)
// and Fig. 7 (flattened EXAMPLE, 8 steps / Eq. 1) with the Fig. 6 trace.
//
//===----------------------------------------------------------------------===//

#include "interp/SimdInterp.h"

#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;

namespace {

/// A 2-lane test machine (P = 2 "processors").
machine::MachineConfig twoLanes(machine::Layout L) {
  machine::MachineConfig M;
  M.Name = "test-2";
  M.Processors = 2;
  M.Gran = 2;
  M.DataLayout = L;
  M.SecondsPerCycle = 1.0;
  return M;
}

/// Hand-built Fig. 5: the naive SIMDized EXAMPLE for K = 8, P = 2 with
/// blockwise rows (lane p owns rows (p-1)*4+1 .. p*4).
///
///   DO i = 1, 4
///     ip = i + (LANEINDEX()-1)*4
///     DO j = 1, MAXRED(L(ip))
///       WHERE (j <= L(ip))  X(ip, j) = ip * j
///     ENDDO
///   ENDDO
Program makeFig5(int64_t K, int64_t MaxL) {
  Program P("EXAMPLE_SIMD");
  P.setDialect(Dialect::F90Simd);
  P.addVar("L", ScalarKind::Int, {K}, Dist::Distributed);
  P.addVar("X", ScalarKind::Int, {K, MaxL}, Dist::Distributed);
  P.addVar("i", ScalarKind::Int);                          // control
  P.addVar("j", ScalarKind::Int);                          // control
  P.addVar("ip", ScalarKind::Int, {}, Dist::Replicated);   // i'
  Builder B(P);
  int64_t Rows = K / 2;
  StmtPtr Inner = B.doLoop(
      "j", B.lit(1), B.maxRed(B.at("L", B.var("ip"))),
      Builder::body(B.where(
          B.le(B.var("j"), B.at("L", B.var("ip"))),
          Builder::body(B.assign(B.at("X", B.var("ip"), B.var("j")),
                                 B.mul(B.var("ip"), B.var("j")))))));
  StmtPtr Outer = B.doLoop(
      "i", B.lit(1), B.lit(Rows),
      Builder::body(
          B.set("ip", B.add(B.var("i"),
                            B.mul(B.sub(B.laneIndex(), B.lit(1)),
                                  B.lit(Rows)))),
          std::move(Inner)));
  P.body().push_back(std::move(Outer));
  return P;
}

/// Hand-built Fig. 7: the flattened EXAMPLE for K = 8, P = 2, blockwise.
///
///   i  = (LANEINDEX()-1)*4 + 1
///   myK = LANEINDEX()*4
///   j  = 1
///   WHILE ANY(i <= myK)
///     WHERE (i <= myK)
///       X(i, j) = i * j
///       WHERE (j == L(i))
///         i = i + 1 ; j = 1
///       ELSEWHERE
///         j = j + 1
///       ENDWHERE
///     ENDWHERE
///   ENDWHILE
Program makeFig7(int64_t K, int64_t MaxL) {
  Program P("EXAMPLE_FLAT_SIMD");
  P.setDialect(Dialect::F90Simd);
  P.addVar("L", ScalarKind::Int, {K}, Dist::Distributed);
  P.addVar("X", ScalarKind::Int, {K, MaxL}, Dist::Distributed);
  P.addVar("i", ScalarKind::Int, {}, Dist::Replicated);
  P.addVar("j", ScalarKind::Int, {}, Dist::Replicated);
  P.addVar("myK", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  int64_t Rows = K / 2;
  P.body().push_back(B.set(
      "i", B.add(B.mul(B.sub(B.laneIndex(), B.lit(1)), B.lit(Rows)),
                 B.lit(1))));
  P.body().push_back(B.set("myK", B.mul(B.laneIndex(), B.lit(Rows))));
  P.body().push_back(B.set("j", B.lit(1)));
  Body Advance = Builder::body(
      B.where(B.eq(B.var("j"), B.at("L", B.var("i"))),
              Builder::body(B.set("i", B.add(B.var("i"), B.lit(1))),
                            B.set("j", B.lit(1))),
              Builder::body(B.set("j", B.add(B.var("j"), B.lit(1))))));
  Body WhereBody = Builder::body(
      B.assign(B.at("X", B.var("i"), B.var("j")),
               B.mul(B.var("i"), B.var("j"))));
  for (StmtPtr &S : Advance)
    WhereBody.push_back(std::move(S));
  P.body().push_back(B.whileLoop(
      B.any(B.le(B.var("i"), B.var("myK"))),
      Builder::body(B.where(B.le(B.var("i"), B.var("myK")),
                            std::move(WhereBody)))));
  return P;
}

std::vector<int64_t> paperL() { return {4, 1, 2, 1, 1, 3, 1, 3}; }

std::vector<int64_t> expectedX() {
  std::vector<int64_t> L = paperL();
  std::vector<int64_t> X(8 * 4, 0);
  for (int64_t I = 1; I <= 8; ++I)
    for (int64_t J = 1; J <= L[static_cast<size_t>(I - 1)]; ++J)
      X[static_cast<size_t>((I - 1) * 4 + (J - 1))] = I * J;
  return X;
}

TEST(SimdInterp, Fig5TwelveSteps) {
  Program P = makeFig5(8, 4);
  machine::MachineConfig M = twoLanes(machine::Layout::Block);
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  SimdInterp Interp(P, M, nullptr, Opts);
  Interp.store().setIntArray("L", paperL());
  SimdRunResult R = Interp.run().value();
  // Eq. 2: sum over outer iterations of max_p L = 4+3+2+3 = 12.
  EXPECT_EQ(R.Stats.WorkSteps, 12);
  EXPECT_EQ(Interp.store().getIntArray("X"), expectedX());
  EXPECT_EQ(R.Stats.CommAccesses, 0);
}

TEST(SimdInterp, Fig5TraceMatchesFigure6) {
  Program P = makeFig5(8, 4);
  machine::MachineConfig M = twoLanes(machine::Layout::Block);
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  Opts.Watch = {"ip", "j"};
  SimdInterp Interp(P, M, nullptr, Opts);
  Interp.store().setIntArray("L", paperL());
  SimdRunResult R = Interp.run().value();
  ASSERT_EQ(R.Tr.Steps.size(), 12u);
  // Fig. 6 (12 steps; '-' = masked/idle). Global row numbers; processor
  // 2's rows are 4 + (local i2). j values per active lane as printed.
  struct Row {
    int64_t I1, J1;
    bool A1;
    int64_t I2, J2;
    bool A2;
  };
  const Row Want[12] = {
      {1, 1, true, 5, 1, true},   // i1=1 j=1..4, i2=1(global 5) j=1
      {1, 2, true, 5, 2, false},  // lane2 idle
      {1, 3, true, 5, 3, false},
      {1, 4, true, 5, 4, false},
      {2, 1, true, 6, 1, true},
      {2, 2, false, 6, 2, true},
      {2, 3, false, 6, 3, true},
      {3, 1, true, 7, 1, true},
      {3, 2, true, 7, 2, false},
      {4, 1, true, 8, 1, true},
      {4, 2, false, 8, 2, true},
      {4, 3, false, 8, 3, true},
  };
  for (size_t S = 0; S < 12; ++S) {
    EXPECT_EQ(R.Tr.value(S, 0, 0), Want[S].I1) << "step " << S;
    EXPECT_EQ(R.Tr.value(S, 1, 0), Want[S].J1) << "step " << S;
    EXPECT_EQ(R.Tr.active(S, 0), Want[S].A1) << "step " << S;
    EXPECT_EQ(R.Tr.value(S, 0, 1), Want[S].I2) << "step " << S;
    EXPECT_EQ(R.Tr.value(S, 1, 1), Want[S].J2) << "step " << S;
    EXPECT_EQ(R.Tr.active(S, 1), Want[S].A2) << "step " << S;
  }
}

TEST(SimdInterp, Fig7EightSteps) {
  Program P = makeFig7(8, 4);
  machine::MachineConfig M = twoLanes(machine::Layout::Block);
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  SimdInterp Interp(P, M, nullptr, Opts);
  Interp.store().setIntArray("L", paperL());
  SimdRunResult R = Interp.run().value();
  // Loop flattening reaches the MIMD bound of Eq. 1: 8 steps.
  EXPECT_EQ(R.Stats.WorkSteps, 8);
  EXPECT_EQ(Interp.store().getIntArray("X"), expectedX());
  EXPECT_EQ(R.Stats.CommAccesses, 0);
  // Full utilization: both lanes busy on every step.
  EXPECT_DOUBLE_EQ(R.Stats.workUtilization(), 1.0);
}

/// Runs Fig. 5 and Fig. 7 under \p M and returns their cycle counts.
std::pair<double, double> cyclesFig5Fig7(machine::MachineConfig M) {
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  Program P5 = makeFig5(8, 4);
  SimdInterp I5(P5, M, nullptr, Opts);
  I5.store().setIntArray("L", paperL());
  double C5 = I5.run().value().Stats.Cycles;
  Program P7 = makeFig7(8, 4);
  SimdInterp I7(P7, M, nullptr, Opts);
  I7.store().setIntArray("L", paperL());
  double C7 = I7.run().value().Stats.Cycles;
  return {C5, C7};
}

TEST(SimdInterp, Fig7BeatsFig5WhenBodyDominates) {
  // Sec. 6 profitability: flattening trades fewer BODY steps (8 vs 12)
  // for a couple of extra flag/branch operations per step. When the body
  // is expensive (here: the store, standing in for the Force call), the
  // flattened version wins.
  machine::MachineConfig M = twoLanes(machine::Layout::Block);
  M.Costs.ScatterOp = 200.0;
  auto [C5, C7] = cyclesFig5Fig7(M);
  EXPECT_LT(C7, C5);
}

TEST(SimdInterp, Fig7OverheadCanLoseOnTrivialBodies) {
  // The flip side (also Sec. 6): with a near-free body the 12 -> 8 step
  // saving does not amortize the added control per step on this tiny
  // example. This is why profitability analysis looks at the body cost
  // and trip-count variance rather than flattening unconditionally.
  machine::MachineConfig M = twoLanes(machine::Layout::Block);
  auto [C5, C7] = cyclesFig5Fig7(M);
  EXPECT_GT(C7, 0.8 * C5); // no free lunch on trivial bodies
}

TEST(SimdInterp, UtilizationReflectsIdleLanes) {
  Program P = makeFig5(8, 4);
  machine::MachineConfig M = twoLanes(machine::Layout::Block);
  RunOptions Opts;
  Opts.WorkTargets = {"X"};
  SimdInterp Interp(P, M, nullptr, Opts);
  Interp.store().setIntArray("L", paperL());
  SimdRunResult R = Interp.run().value();
  // 16 useful lane-slots over 12 steps x 2 lanes = 2/3.
  EXPECT_DOUBLE_EQ(R.Stats.workUtilization(), 16.0 / 24.0);
}

TEST(SimdInterp, ZeroWorkStepsReportZeroUtilization) {
  // No WorkTargets: nothing counts as a work step, so the run has zero
  // work lane-slots. That must read as 0% utilization, not the 100% a
  // naive 0/0 -> 1.0 convention would claim (it used to, skewing bench
  // aggregation toward idle runs).
  Program P = makeFig5(8, 4);
  machine::MachineConfig M = twoLanes(machine::Layout::Block);
  SimdInterp Interp(P, M, nullptr, RunOptions{});
  Interp.store().setIntArray("L", paperL());
  SimdRunResult R = Interp.run().value();
  EXPECT_EQ(R.Stats.WorkSteps, 0);
  EXPECT_DOUBLE_EQ(R.Stats.workUtilization(), 0.0);
  EXPECT_DOUBLE_EQ(RunStats{}.workUtilization(), 0.0);
}

TEST(SimdInterp, RejectsF77Dialect) {
  Program P("notsimd");
  machine::MachineConfig M = twoLanes(machine::Layout::Block);
  SimdInterp Interp(P, M, nullptr);
  EXPECT_DEATH((void)Interp.run(), "not in the F90simd dialect");
}

TEST(SimdInterp, RejectsLaneVaryingWhile) {
  Program P("lv");
  P.setDialect(Dialect::F90Simd);
  P.addVar("i", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(B.set("i", B.laneIndex()));
  P.body().push_back(
      B.whileLoop(B.le(B.var("i"), B.lit(1)),
                  Builder::body(B.set("i", B.add(B.var("i"), B.lit(1))))));
  machine::MachineConfig M = twoLanes(machine::Layout::Block);
  SimdInterp Interp(P, M, nullptr);
  RunOutcome<SimdRunResult> R = Interp.run();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, TrapKind::NonUniformControl);
  EXPECT_NE(R.error().Detail.find("WHILE ANY"), std::string::npos);
  EXPECT_EQ(R.error().Lanes, (std::vector<int64_t>{1}));
  EXPECT_NE(R.error().Location.find("WHILE"), std::string::npos);
}

TEST(SimdInterp, LaneVaryingStoreToControlRejected) {
  Program P("cs");
  P.setDialect(Dialect::F90Simd);
  P.addVar("c", ScalarKind::Int); // control
  Builder B(P);
  P.body().push_back(B.set("c", B.laneIndex()));
  machine::MachineConfig M = twoLanes(machine::Layout::Block);
  SimdInterp Interp(P, M, nullptr);
  RunOutcome<SimdRunResult> R = Interp.run();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, TrapKind::NonUniformControl);
  EXPECT_NE(R.error().Detail.find("lane-varying store to control"),
            std::string::npos);
  EXPECT_NE(R.error().Location.find("assign c"), std::string::npos);
}

TEST(SimdInterp, OutOfBoundsOnIdleLaneIsTolerated) {
  // Idle lanes gather garbage; only active lanes must be in bounds.
  Program P("oob");
  P.setDialect(Dialect::F90Simd);
  P.addVar("A", ScalarKind::Int, {2}, Dist::Distributed);
  P.addVar("idx", ScalarKind::Int, {}, Dist::Replicated);
  P.addVar("v", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  // Lane 1: idx=1 (ok), lane 2: idx=3 (out of bounds but masked off).
  P.body().push_back(B.set("idx", B.mul(B.laneIndex(), B.lit(1))));
  P.body().push_back(B.where(B.le(B.var("idx"), B.lit(1)),
                             Builder::body(B.set(
                                 "v", B.at("A", B.add(B.var("idx"),
                                                      B.lit(2)))))));
  machine::MachineConfig M = twoLanes(machine::Layout::Cyclic);
  SimdInterp Interp(P, M, nullptr);
  RunOutcome<SimdRunResult> R = Interp.run();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, TrapKind::OutOfBounds);
  EXPECT_EQ(R.error().Lanes, (std::vector<int64_t>{0}));
  // Version where the OOB lane is masked off runs fine: lane 1 reads
  // A(1); lane 2 holds index 4 (out of bounds) but is idle - tolerated.
  Program P3("oob3");
  P3.setDialect(Dialect::F90Simd);
  P3.addVar("A", ScalarKind::Int, {2}, Dist::Distributed);
  P3.addVar("idx", ScalarKind::Int, {}, Dist::Replicated);
  P3.addVar("v", ScalarKind::Int, {}, Dist::Replicated);
  Builder B3(P3);
  P3.body().push_back(B3.set("idx", B3.mul(B3.laneIndex(), B3.laneIndex())));
  // idx: lane1=1, lane2=4 (OOB).
  P3.body().push_back(B3.where(
      B3.le(B3.var("idx"), B3.lit(2)),
      Builder::body(B3.set("v", B3.at("A", B3.var("idx"))))));
  machine::MachineConfig M3 = twoLanes(machine::Layout::Cyclic);
  SimdInterp Interp3(P3, M3, nullptr);
  SimdRunResult R3 = Interp3.run().value();
  (void)R3;
  EXPECT_EQ(Interp3.store().getIntLane("v", 1), 0); // untouched idle lane
}

TEST(SimdInterp, ForallSweepsLayers) {
  // 6 elements on 2 lanes => 3 layers; FORALL initializes all of them.
  Program P("fa");
  P.setDialect(Dialect::F90Simd);
  P.addVar("A", ScalarKind::Int, {6}, Dist::Distributed);
  P.addVar("e", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(
      B.forall("e", B.lit(1), B.lit(6), nullptr,
               Builder::body(B.assign(B.at("A", B.var("e")),
                                      B.mul(B.var("e"), B.var("e"))))));
  machine::MachineConfig M = twoLanes(machine::Layout::Cyclic);
  SimdInterp Interp(P, M, nullptr);
  SimdRunResult R = Interp.run().value();
  EXPECT_EQ(Interp.store().getIntArray("A"),
            (std::vector<int64_t>{1, 4, 9, 16, 25, 36}));
  // No communication: cyclic FORALL aligns with the cyclic layout.
  EXPECT_EQ(R.Stats.CommAccesses, 0);
}

TEST(SimdInterp, ForallMaskRestricts) {
  Program P("fam");
  P.setDialect(Dialect::F90Simd);
  P.addVar("A", ScalarKind::Int, {4}, Dist::Distributed);
  P.addVar("e", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(B.forall(
      "e", B.lit(1), B.lit(4), B.le(B.var("e"), B.lit(2)),
      Builder::body(B.assign(B.at("A", B.var("e")), B.lit(7)))));
  machine::MachineConfig M = twoLanes(machine::Layout::Cyclic);
  SimdInterp Interp(P, M, nullptr);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getIntArray("A"),
            (std::vector<int64_t>{7, 7, 0, 0}));
}

TEST(SimdInterp, CommCountsOffHomeAccesses) {
  // Lane p reads element p+1 (its neighbor's element): Gran comm
  // accesses per gather (except the wrapped lane which reads its own?
  // No: with 2 lanes cyclic and extent 2, lane0 reads e=2 (home lane 1),
  // lane1 reads e=1 (home lane 0): 2 comm accesses.
  Program P("comm");
  P.setDialect(Dialect::F90Simd);
  P.addVar("A", ScalarKind::Int, {2}, Dist::Distributed);
  P.addVar("v", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(B.set(
      "v", B.at("A", B.add(B.mod(B.laneIndex(), B.lit(2)), B.lit(1)))));
  machine::MachineConfig M = twoLanes(machine::Layout::Cyclic);
  SimdInterp Interp(P, M, nullptr);
  std::vector<int64_t> A = {10, 20};
  Interp.store().setIntArray("A", A);
  SimdRunResult R = Interp.run().value();
  EXPECT_EQ(R.Stats.CommAccesses, 2);
  EXPECT_EQ(Interp.store().getIntLane("v", 0), 20);
  EXPECT_EQ(Interp.store().getIntLane("v", 1), 10);
}

TEST(SimdInterp, ReductionsAreMaskAware) {
  Program P("red");
  P.setDialect(Dialect::F90Simd);
  P.addVar("v", ScalarKind::Int, {}, Dist::Replicated);
  P.addVar("s", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(B.set("v", B.laneIndex())); // 1, 2
  P.body().push_back(B.where(B.ge(B.var("v"), B.lit(2)),
                             Builder::body(B.set(
                                 "s", B.sumRed(B.var("v"))))));
  machine::MachineConfig M = twoLanes(machine::Layout::Cyclic);
  SimdInterp Interp(P, M, nullptr);
  Interp.run().value();
  // Inside WHERE(v >= 2) only lane 2 is active: SUMRED = 2, stored only
  // on lane 2.
  EXPECT_EQ(Interp.store().getIntLane("s", 1), 2);
  EXPECT_EQ(Interp.store().getIntLane("s", 0), 0);
}

} // namespace
