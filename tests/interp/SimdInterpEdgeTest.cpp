//===- tests/interp/SimdInterpEdgeTest.cpp ---------------------*- C++ -*-===//
//
// Corner cases of the lockstep executor: layouts, uniform loops,
// extern subroutines, reductions on reals, runaway-loop guards, and the
// defining SIMD property that masked-out lanes still pay instruction
// time.
//
//===----------------------------------------------------------------------===//

#include "interp/SimdInterp.h"

#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;

namespace {

machine::MachineConfig lanes(int64_t N, machine::Layout L) {
  machine::MachineConfig M;
  M.Name = "edge";
  M.Processors = N;
  M.Gran = N;
  M.DataLayout = L;
  M.SecondsPerCycle = 1.0;
  return M;
}

TEST(SimdInterpEdge, NegativeStepControlDo) {
  Program P("neg");
  P.setDialect(Dialect::F90Simd);
  P.addVar("l", ScalarKind::Int);
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.doLoop(
      "l", B.lit(4), B.lit(1),
      Builder::body(B.set("n", B.add(B.var("n"), B.var("l")))),
      B.lit(-1)));
  SimdInterp I(P, lanes(2, machine::Layout::Cyclic), nullptr);
  I.run().value();
  EXPECT_EQ(I.store().getInt("n"), 10); // 4+3+2+1
  EXPECT_EQ(I.store().getInt("l"), 0);  // one step past
}

TEST(SimdInterpEdge, UniformRepeatLoop) {
  Program P("rep");
  P.setDialect(Dialect::F90Simd);
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.repeatUntil(
      Builder::body(B.set("n", B.add(B.var("n"), B.lit(1)))),
      B.ge(B.var("n"), B.lit(3))));
  SimdInterp I(P, lanes(4, machine::Layout::Cyclic), nullptr);
  I.run().value();
  EXPECT_EQ(I.store().getInt("n"), 3);
}

TEST(SimdInterpEdge, SubroutineCalledPerActiveLane) {
  Program P("sub");
  P.setDialect(Dialect::F90Simd);
  P.addVar("v", ScalarKind::Int, {}, Dist::Replicated);
  P.addExtern("Probe", ScalarKind::Int, /*Pure=*/false,
              /*IsSubroutine=*/true);
  Builder B(P);
  P.body().push_back(B.set("v", B.laneIndex()));
  std::vector<ExprPtr> Args;
  Args.push_back(B.var("v"));
  P.body().push_back(B.where(B.le(B.var("v"), B.lit(2)),
                             Builder::body(B.callSub("Probe",
                                                     std::move(Args)))));
  ExternRegistry Reg;
  std::vector<int64_t> Seen;
  Reg.bind("Probe", [&Seen](std::span<const ScalVal> A) {
    Seen.push_back(A[0].I);
    return ScalVal::makeInt(0);
  });
  SimdInterp I(P, lanes(4, machine::Layout::Cyclic), &Reg);
  I.run().value();
  EXPECT_EQ(Seen, (std::vector<int64_t>{1, 2})); // lanes 3,4 masked
}

TEST(SimdInterpEdge, ForallBlockLayoutWritesAllElements) {
  Program P("fb");
  P.setDialect(Dialect::F90Simd);
  P.addVar("A", ScalarKind::Int, {10}, Dist::Distributed);
  P.addVar("e", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(B.forall(
      "e", B.lit(1), B.lit(10), nullptr,
      Builder::body(B.assign(B.at("A", B.var("e")),
                             B.mul(B.var("e"), B.lit(3))))));
  SimdInterp I(P, lanes(4, machine::Layout::Block), nullptr);
  SimdRunResult R = I.run().value();
  std::vector<int64_t> Want;
  for (int64_t E = 1; E <= 10; ++E)
    Want.push_back(3 * E);
  EXPECT_EQ(I.store().getIntArray("A"), Want);
  // Block FORALL aligns with the block layout: no communication.
  EXPECT_EQ(R.Stats.CommAccesses, 0);
}

TEST(SimdInterpEdge, ForallNestedInWhere) {
  Program P("fw");
  P.setDialect(Dialect::F90Simd);
  P.addVar("A", ScalarKind::Int, {4}, Dist::Distributed);
  P.addVar("e", ScalarKind::Int, {}, Dist::Replicated);
  P.addVar("g", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(B.set("g", B.laneIndex()));
  // Lanes 1-2 active; the FORALL inside re-masks by element id. Lanes
  // 3-4 stay masked even for elements they own.
  P.body().push_back(B.where(
      B.le(B.var("g"), B.lit(2)),
      Builder::body(B.forall(
          "e", B.lit(1), B.lit(4), nullptr,
          Builder::body(B.assign(B.at("A", B.var("e")), B.lit(9)))))));
  SimdInterp I(P, lanes(4, machine::Layout::Cyclic), nullptr);
  I.run().value();
  EXPECT_EQ(I.store().getIntArray("A"),
            (std::vector<int64_t>{9, 9, 0, 0}));
}

TEST(SimdInterpEdge, NumLanesBroadcast) {
  Program P("nl");
  P.setDialect(Dialect::F90Simd);
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.set("n", B.numLanes()));
  SimdInterp I(P, lanes(8, machine::Layout::Cyclic), nullptr);
  I.run().value();
  EXPECT_EQ(I.store().getInt("n"), 8);
}

TEST(SimdInterpEdge, RealArrayReductions) {
  Program P("rr");
  P.setDialect(Dialect::F90Simd);
  P.addVar("V", ScalarKind::Real, {5}, Dist::Distributed);
  P.addVar("m", ScalarKind::Real);
  P.addVar("s", ScalarKind::Real);
  Builder B(P);
  P.body().push_back(B.set("m", B.maxVal("V")));
  P.body().push_back(B.set("s", B.sumVal("V")));
  SimdInterp I(P, lanes(2, machine::Layout::Cyclic), nullptr);
  std::vector<double> V = {1.5, -2.0, 7.25, 0.0, 3.0};
  I.store().setRealArray("V", V);
  I.run().value();
  EXPECT_DOUBLE_EQ(I.store().getReal("m"), 7.25);
  EXPECT_DOUBLE_EQ(I.store().getReal("s"), 9.75);
}

TEST(SimdInterpEdge, RunawayLoopGuardAborts) {
  Program P("run");
  P.setDialect(Dialect::F90Simd);
  P.addVar("n", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.whileLoop(
      B.lt(B.var("n"), B.lit(1)),
      Builder::body(B.set("n", B.sub(B.var("n"), B.lit(1))))));
  RunOptions Opts;
  Opts.MaxLoopIterations = 1000;
  SimdInterp I(P, lanes(2, machine::Layout::Cyclic), nullptr, Opts);
  RunOutcome<SimdRunResult> R = I.run();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, TrapKind::FuelExhausted);
  EXPECT_NE(R.error().Detail.find("loop iteration limit"),
            std::string::npos);
}

TEST(SimdInterpEdge, MaskedLanesStillPayInstructionTime) {
  // The core SIMD cost property the paper studies: the same program
  // with 1 active lane or all lanes active issues exactly the same
  // instructions and cycles.
  auto Run = [&](int64_t Bound) {
    Program P("pay");
    P.setDialect(Dialect::F90Simd);
    P.addVar("v", ScalarKind::Int, {}, Dist::Replicated);
    P.addVar("w", ScalarKind::Int, {}, Dist::Replicated);
    Builder B(P);
    P.body().push_back(B.set("v", B.laneIndex()));
    P.body().push_back(B.where(
        B.le(B.var("v"), B.lit(Bound)),
        Builder::body(B.set("w", B.add(B.mul(B.var("v"), B.lit(3)),
                                       B.lit(1))))));
    SimdInterp I(P, lanes(8, machine::Layout::Cyclic), nullptr);
    return I.run().value().Stats;
  };
  RunStats OneActive = Run(1);
  RunStats AllActive = Run(8);
  EXPECT_EQ(OneActive.Instructions, AllActive.Instructions);
  EXPECT_DOUBLE_EQ(OneActive.Cycles, AllActive.Cycles);
}

TEST(SimdInterpEdge, ControlVarInTraceBroadcasts) {
  Program P("tr");
  P.setDialect(Dialect::F90Simd);
  P.addVar("c", ScalarKind::Int);
  P.addVar("A", ScalarKind::Int, {2}, Dist::Distributed);
  P.addVar("e", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(B.set("c", B.lit(7)));
  P.body().push_back(B.forall(
      "e", B.lit(1), B.lit(2), nullptr,
      Builder::body(B.assign(B.at("A", B.var("e")), B.var("c")))));
  RunOptions Opts;
  Opts.WorkTargets = {"A"};
  Opts.Watch = {"c", "e"};
  SimdInterp I(P, lanes(2, machine::Layout::Cyclic), nullptr, Opts);
  SimdRunResult R = I.run().value();
  ASSERT_EQ(R.Tr.Steps.size(), 1u);
  EXPECT_EQ(R.Tr.value(0, 0, 0), 7); // c broadcast on lane 0
  EXPECT_EQ(R.Tr.value(0, 0, 1), 7); // and lane 1
  EXPECT_EQ(R.Tr.value(0, 1, 0), 1); // e per lane
  EXPECT_EQ(R.Tr.value(0, 1, 1), 2);
}

} // namespace
