//===- tests/interp/TripHistogramTest.cpp ----------------------*- C++ -*-===//
//
// Unit tests for the compact per-nest trip histogram: exact small
// counts, log2 bucketization of large trips, merge, and the
// consistency invariant StatsJson enforces on deserialization.
//
//===----------------------------------------------------------------------===//

#include "interp/RunStats.h"

#include <gtest/gtest.h>

#include <limits>

using namespace simdflat;
using namespace simdflat::interp;

namespace {

TEST(TripHistogram, SmallTripsAreExact) {
  TripHistogram H;
  for (int64_t T = 0; T < TripHistogram::NumExact; ++T)
    for (int64_t N = 0; N <= T; ++N)
      H.record(T);
  for (int64_t T = 0; T < TripHistogram::NumExact; ++T)
    EXPECT_EQ(H.Exact[static_cast<size_t>(T)], T + 1) << "trip " << T;
  EXPECT_EQ(H.Samples, 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
  EXPECT_TRUE(H.consistent());
}

TEST(TripHistogram, NegativeTripsClampToZero) {
  // A negative-trip DO executes zero iterations; the histogram must
  // agree rather than invent a bucket.
  TripHistogram H;
  H.record(-5);
  EXPECT_EQ(H.Exact[0], 1);
  EXPECT_EQ(H.Sum, 0);
  EXPECT_EQ(H.Max, 0);
  EXPECT_TRUE(H.consistent());
}

TEST(TripHistogram, Log2BucketBoundaries) {
  // Bucket b covers [2^(b+3), 2^(b+4)): 8 is the first bucketed trip.
  EXPECT_EQ(TripHistogram::log2Bucket(8), 0);
  EXPECT_EQ(TripHistogram::log2Bucket(15), 0);
  EXPECT_EQ(TripHistogram::log2Bucket(16), 1);
  EXPECT_EQ(TripHistogram::log2Bucket(31), 1);
  EXPECT_EQ(TripHistogram::log2Bucket(32), 2);
  EXPECT_EQ(TripHistogram::log2Bucket(1 << 20), 17); // [2^20, 2^21)
  // Bucket lo/mid representatives stay inside the bucket.
  for (int64_t B = 0; B < 20; ++B) {
    int64_t Lo = TripHistogram::log2BucketLo(B);
    EXPECT_EQ(TripHistogram::log2Bucket(Lo), B);
    EXPECT_EQ(TripHistogram::log2Bucket(TripHistogram::log2BucketMid(B)), B);
  }
}

TEST(TripHistogram, HugeTripsStayInRange) {
  // The largest representable trip lands in bucket 59 ([2^62, 2^63)),
  // comfortably inside the 61 buckets - no overflow, no clamping loss.
  int64_t Huge = std::numeric_limits<int64_t>::max();
  EXPECT_EQ(TripHistogram::log2Bucket(Huge), 59);
  TripHistogram H;
  H.record(Huge);
  EXPECT_EQ(H.Log2[59], 1);
  EXPECT_TRUE(H.consistent());
}

TEST(TripHistogram, SumMaxMeanAreExact) {
  // The histogram buckets the distribution but keeps the first moments
  // exact, so mean trips never suffers bucketization error.
  TripHistogram H;
  H.record(3);
  H.record(100);
  H.record(1000);
  EXPECT_EQ(H.Samples, 3);
  EXPECT_EQ(H.Sum, 1103);
  EXPECT_EQ(H.Max, 1000);
  EXPECT_DOUBLE_EQ(H.mean(), 1103.0 / 3.0);
}

TEST(TripHistogram, MergeAddsCounts) {
  TripHistogram A, B;
  A.record(2);
  A.record(50);
  B.record(2);
  B.record(7000);
  A.merge(B);
  EXPECT_EQ(A.Samples, 4);
  EXPECT_EQ(A.Exact[2], 2);
  EXPECT_EQ(A.Sum, 2 + 50 + 2 + 7000);
  EXPECT_EQ(A.Max, 7000);
  EXPECT_TRUE(A.consistent());
}

TEST(TripHistogram, ConsistencyRejectsTamperedCounts) {
  TripHistogram H;
  H.record(4);
  EXPECT_TRUE(H.consistent());
  H.Samples = 5; // buckets no longer sum to Samples
  EXPECT_FALSE(H.consistent());
  H.Samples = 1;
  H.Exact[4] = -1;
  EXPECT_FALSE(H.consistent());
}

TEST(TripHistogram, MergeTripNestsMatchesByName) {
  RunStats A, B;
  A.TripNests.push_back({"L0 do i", 0, {}});
  A.TripNests[0].Hist.record(3);
  B.TripNests.push_back({"L0 do i", 0, {}});
  B.TripNests[0].Hist.record(5);
  B.TripNests.push_back({"L1 while", 1, {}});
  B.TripNests[1].Hist.record(9);
  A.mergeTripNests(B.TripNests);
  ASSERT_EQ(A.TripNests.size(), 2u);
  EXPECT_EQ(A.TripNests[0].Hist.Samples, 2);
  EXPECT_EQ(A.TripNests[1].Name, "L1 while");
  EXPECT_EQ(A.TripNests[1].Hist.Samples, 1);
}

} // namespace
