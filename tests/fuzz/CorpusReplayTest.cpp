//===- tests/fuzz/CorpusReplayTest.cpp -------------------------*- C++ -*-===//
//
// Replays every checked-in corpus case through the full differential
// oracle - which runs every variant under all three engines (tree,
// bytecode, hostsimd), so this is also the corpus replay for the
// host-SIMD backend. Each file pins the loop form, inputs, and
// reference verdict of one previously generated case; a divergence or
// verdict change here is a regression in a transform or executor, not
// in the fuzzer.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Oracle.h"

#include "interp/Trap.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

using namespace simdflat;
using namespace simdflat::fuzz;

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Out;
  for (const auto &E :
       std::filesystem::directory_iterator(SIMDFLAT_FUZZ_CORPUS_DIR))
    if (E.path().extension() == ".json")
      Out.push_back(E.path().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}

TEST(FuzzCorpus, HasCheckedInCases) {
  EXPECT_GE(corpusFiles().size(), 5u);
}

TEST(FuzzCorpus, EveryCaseReplaysClean) {
  for (const std::string &Path : corpusFiles()) {
    Expected<FuzzCase, CorpusError> C = readCase(Path);
    ASSERT_TRUE(C) << Path << ": " << C.error().Message;
    OracleResult R = runOracle(*C);
    EXPECT_FALSE(R.Diverged) << Path << ":\n" << R.report();

    const VariantOutcome &Ref = R.reference();
    switch (C->Expect) {
    case ExpectedVerdict::Any:
      break;
    case ExpectedVerdict::Complete:
      EXPECT_FALSE(Ref.T.has_value())
          << Path << ": expected completion, got " << Ref.T->render();
      break;
    case ExpectedVerdict::Trap:
      ASSERT_TRUE(Ref.T.has_value()) << Path << ": expected a trap";
      EXPECT_EQ(interp::trapKindName(Ref.T->Kind), C->ExpectTrapKind)
          << Path;
      break;
    }
  }
}

TEST(FuzzCorpus, RenderParseRoundTrips) {
  for (const std::string &Path : corpusFiles()) {
    Expected<FuzzCase, CorpusError> C = readCase(Path);
    ASSERT_TRUE(C) << Path << ": " << C.error().Message;
    Expected<FuzzCase, CorpusError> Again = parseCase(renderCase(*C));
    ASSERT_TRUE(Again) << Path << ": " << Again.error().Message;
    EXPECT_EQ(ir::printProgram(Again->Prog), ir::printProgram(C->Prog))
        << Path;
    EXPECT_EQ(Again->Ints, C->Ints) << Path;
    EXPECT_EQ(Again->IntArrays, C->IntArrays) << Path;
    EXPECT_EQ(Again->Fuel, C->Fuel) << Path;
    EXPECT_EQ(Again->ExternTrapArg, C->ExternTrapArg) << Path;
    EXPECT_EQ(Again->MinOne, C->MinOne) << Path;
    EXPECT_EQ(Again->Expect, C->Expect) << Path;
  }
}

TEST(FuzzCorpus, RejectsWrongFormatTag) {
  json::Value Doc = json::Value::object();
  Doc.set("format", "not-a-corpus-file");
  Expected<FuzzCase, CorpusError> C = parseCase(Doc);
  ASSERT_FALSE(C);
  EXPECT_NE(C.error().Message.find("format"), std::string::npos);
}

} // namespace
