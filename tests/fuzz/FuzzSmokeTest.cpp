//===- tests/fuzz/FuzzSmokeTest.cpp ----------------------------*- C++ -*-===//
//
// Smoke coverage for the differential fuzzer itself: the generator is
// deterministic and covers every loop form, a seed sweep through the
// full oracle is divergence-free, the oracle catches a deliberately
// seeded transform bug, and the fault campaign degrades identically
// across executors.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"

#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::fuzz;

namespace {

TEST(FuzzGenerator, DeterministicAcrossCalls) {
  for (uint64_t Seed : {1u, 7u, 23u, 111u}) {
    FuzzCase A = generateCase(Seed);
    FuzzCase B = generateCase(Seed);
    EXPECT_EQ(ir::printProgram(A.Prog), ir::printProgram(B.Prog));
    EXPECT_EQ(A.Ints, B.Ints);
    EXPECT_EQ(A.IntArrays, B.IntArrays);
    EXPECT_EQ(A.RealArrays, B.RealArrays);
    EXPECT_EQ(A.MinOne, B.MinOne);
  }
}

TEST(FuzzGenerator, CoversEveryLoopForm) {
  bool SawDo = false, SawStep2 = false, SawWhile = false,
       SawRepeat = false, SawGoto = false;
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    std::string Src = ir::printProgram(generateCase(Seed).Prog);
    if (Src.find("GOTO") != std::string::npos)
      SawGoto = true;
    else if (Src.find("REPEAT") != std::string::npos)
      SawRepeat = true;
    else if (Src.find("WHILE") != std::string::npos)
      SawWhile = true;
    else if (Src.find(", 2\n") != std::string::npos)
      SawStep2 = true;
    else if (Src.find("DO j") != std::string::npos)
      SawDo = true;
  }
  EXPECT_TRUE(SawDo);
  EXPECT_TRUE(SawStep2);
  EXPECT_TRUE(SawWhile);
  EXPECT_TRUE(SawRepeat);
  EXPECT_TRUE(SawGoto);
}

TEST(FuzzGenerator, ArmsAtMostOneFaultSource) {
  // A zero divisor and an out-of-bounds trip count in the same case
  // would make the first-trap kind schedule-dependent, so the
  // generator must never arm both.
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    FuzzCase C = generateCase(Seed);
    bool HasZeroDiv = false, HasOobTrip = false;
    for (int64_t V : C.IntArrays.at("D"))
      HasZeroDiv = HasZeroDiv || V == 0;
    for (int64_t V : C.IntArrays.at("L"))
      HasOobTrip = HasOobTrip || V > 6;
    EXPECT_FALSE(HasZeroDiv && HasOobTrip) << "seed " << Seed;
  }
}

TEST(FuzzOracle, SeedSweepIsDivergenceFree) {
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    FuzzCase C = generateCase(Seed);
    OracleResult R = runOracle(C);
    EXPECT_FALSE(R.Diverged)
        << "seed " << Seed << ":\n"
        << R.report() << ir::printProgram(C.Prog);
  }
}

TEST(FuzzOracle, CatchesSeededGuardCacheBug) {
  // Disabling GuardIntro's side-effect cache re-evaluates the guard's
  // Tick() call at the bottom of every iteration; the extern log must
  // betray it on programs whose guard has a side effect.
  GeneratorOptions GO;
  GO.ForceGuardSideEffect = true;
  OracleOptions OO;
  OO.BreakGuardSideEffectCache = true;
  int Caught = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    FuzzCase C = generateCase(Seed, GO);
    if (runOracle(C, OO).Diverged)
      ++Caught;
    // Sanity: the same case is clean with the cache intact.
    EXPECT_FALSE(runOracle(C).Diverged) << "seed " << Seed;
  }
  EXPECT_GT(Caught, 0);
}

TEST(FuzzCampaign, FaultDegradationIsIdentical) {
  CampaignOptions CO;
  CO.Count = 60;
  CampaignResult CR = runFaultCampaign(CO);
  EXPECT_EQ(CR.Ran, 60);
  for (const std::string &F : CR.Failures)
    ADD_FAILURE() << F;
  // Fuel and hostile-extern cases (two of every three) must trap.
  EXPECT_GE(CR.Trapped, 2 * CR.Ran / 3);
}

TEST(FuzzCampaign, FaultCaseShapes) {
  FuzzCase Fuel = makeFaultCase(5, FaultKind::Fuel);
  EXPECT_GT(Fuel.Fuel, 0);
  EXPECT_EQ(Fuel.Expect, ExpectedVerdict::Trap);

  FuzzCase Hostile = makeFaultCase(5, FaultKind::HostileExtern);
  EXPECT_EQ(Hostile.ExternTrapArg, 1);
  EXPECT_EQ(Hostile.Expect, ExpectedVerdict::Trap);

  FuzzCase Nan = makeFaultCase(5, FaultKind::NanPoison);
  bool SawNan = false;
  for (const auto &[Name, Vals] : Nan.RealArrays)
    for (double V : Vals)
      SawNan = SawNan || V != V;
  EXPECT_TRUE(SawNan);
  EXPECT_EQ(Nan.Expect, ExpectedVerdict::Complete);
}

} // namespace
