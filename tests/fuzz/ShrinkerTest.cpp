//===- tests/fuzz/ShrinkerTest.cpp -----------------------------*- C++ -*-===//
//
// The greedy shrinker must turn a diverging case into a small, still-
// diverging repro. The acceptance bar from the issue: the seeded
// GuardIntro-cache bug shrinks to at most 10 IR statements.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "fuzz/Shrinker.h"

#include "ir/Printer.h"
#include "ir/Walk.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::fuzz;

namespace {

/// First seed in [1, 20] that diverges under the seeded guard-cache
/// bug.
FuzzCase firstDivergingCase(const OracleOptions &OO) {
  GeneratorOptions GO;
  GO.ForceGuardSideEffect = true;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    FuzzCase C = generateCase(Seed, GO);
    if (runOracle(C, OO).Diverged)
      return C;
  }
  ADD_FAILURE() << "no diverging seed in [1, 20]";
  return generateCase(1, GO);
}

TEST(FuzzShrinker, SeededBugShrinksToTenStatementsOrFewer) {
  OracleOptions OO;
  OO.BreakGuardSideEffectCache = true;
  FuzzCase C = firstDivergingCase(OO);
  size_t Before = ir::countStmts(C.Prog.body());

  ShrinkResult SR = shrinkCase(C, OO);
  EXPECT_GT(SR.Reductions, 0);
  EXPECT_TRUE(runOracle(SR.Case, OO).Diverged)
      << ir::printProgram(SR.Case.Prog);
  size_t After = ir::countStmts(SR.Case.Prog.body());
  EXPECT_LT(After, Before);
  EXPECT_LE(After, 10u) << ir::printProgram(SR.Case.Prog);
  // The guard's side effect is the bug's trigger; it must survive.
  EXPECT_NE(ir::printProgram(SR.Case.Prog).find("Tick"),
            std::string::npos);
}

TEST(FuzzShrinker, NonDivergingCaseIsUntouched) {
  FuzzCase C = generateCase(3);
  ASSERT_FALSE(runOracle(C).Diverged);
  std::string Before = ir::printProgram(C.Prog);
  ShrinkResult SR = shrinkCase(C, OracleOptions{});
  EXPECT_EQ(SR.Reductions, 0);
  EXPECT_EQ(ir::printProgram(SR.Case.Prog), Before);
}

TEST(FuzzShrinker, ShrunkCaseStaysPipelineValid) {
  // Whatever the shrinker keeps must still clear the whole oracle
  // variant matrix when the seeded bug is switched off - a shrunk
  // repro that only diverges because it became malformed is useless.
  OracleOptions OO;
  OO.BreakGuardSideEffectCache = true;
  ShrinkResult SR = shrinkCase(firstDivergingCase(OO), OO);
  OracleResult Clean = runOracle(SR.Case);
  EXPECT_FALSE(Clean.Diverged) << Clean.report();
}

} // namespace
