//===- tests/workloads/TripCountsTest.cpp ----------------------*- C++ -*-===//

#include "workloads/TripCounts.h"

#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::workloads;

namespace {

class TripCountsAll : public ::testing::TestWithParam<TripDist> {};

TEST_P(TripCountsAll, PositiveAndRoughMean) {
  TripDist D = GetParam();
  const int64_t K = 4096, Mean = 20;
  std::vector<int64_t> L = generateTripCounts(D, K, Mean, 7);
  ASSERT_EQ(L.size(), static_cast<size_t>(K));
  Summary S;
  for (int64_t V : L) {
    EXPECT_GE(V, 1) << tripDistName(D);
    S.add(static_cast<double>(V));
  }
  EXPECT_NEAR(S.mean(), static_cast<double>(Mean),
              0.25 * static_cast<double>(Mean))
      << tripDistName(D);
}

TEST_P(TripCountsAll, Deterministic) {
  TripDist D = GetParam();
  EXPECT_EQ(generateTripCounts(D, 128, 10, 42),
            generateTripCounts(D, 128, 10, 42));
}

INSTANTIATE_TEST_SUITE_P(All, TripCountsAll,
                         ::testing::ValuesIn(AllTripDists),
                         [](const auto &Info) {
                           return tripDistName(Info.param);
                         });

TEST(TripCounts, ConstantHasZeroVariance) {
  std::vector<int64_t> L =
      generateTripCounts(TripDist::Constant, 64, 5, 1);
  for (int64_t V : L)
    EXPECT_EQ(V, 5);
}

TEST(TripCounts, VarianceOrdering) {
  // Constant < uniform < bimodal in spread (the ablation axis).
  auto Var = [](TripDist D) {
    Summary S;
    for (int64_t V : generateTripCounts(D, 8192, 20, 3))
      S.add(static_cast<double>(V));
    return S.variance();
  };
  EXPECT_EQ(Var(TripDist::Constant), 0.0);
  EXPECT_GT(Var(TripDist::Uniform), 0.0);
  EXPECT_GT(Var(TripDist::Bimodal), Var(TripDist::Uniform));
}

} // namespace
