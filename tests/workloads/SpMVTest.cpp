//===- tests/workloads/SpMVTest.cpp ----------------------------*- C++ -*-===//

#include "workloads/SpMV.h"

#include "analysis/Profitability.h"
#include "analysis/Safety.h"
#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

namespace {

SpMVSpec smallSpec() {
  SpMVSpec S;
  S.Rows = S.Cols = 96;
  S.MeanRowNnz = 6;
  return S;
}

void setInputs(DataStore &Store, const CsrMatrix &M,
               const std::vector<double> &X, int64_t MaxRows,
               int64_t MaxNnz) {
  Store.setInt("nRows", M.Rows);
  std::vector<int64_t> RowPtr(static_cast<size_t>(MaxRows + 1), 0);
  std::copy(M.RowPtr.begin(), M.RowPtr.end(), RowPtr.begin());
  Store.setIntArray("rowPtr", RowPtr);
  std::vector<int64_t> Col(static_cast<size_t>(MaxNnz), 1);
  std::copy(M.Col.begin(), M.Col.end(), Col.begin());
  Store.setIntArray("col", Col);
  std::vector<double> Val(static_cast<size_t>(MaxNnz), 0.0);
  std::copy(M.Val.begin(), M.Val.end(), Val.begin());
  Store.setRealArray("val", Val);
  std::vector<double> XP(static_cast<size_t>(MaxRows), 0.0);
  std::copy(X.begin(), X.end(), XP.begin());
  Store.setRealArray("x", XP);
}

std::vector<double> inputVector(int64_t N) {
  std::vector<double> X;
  for (int64_t I = 0; I < N; ++I)
    X.push_back(0.25 * static_cast<double>(I % 7) - 0.5);
  return X;
}

TEST(SpMV, GeneratorProducesValidCsr) {
  CsrMatrix M = makeSparseMatrix(smallSpec());
  ASSERT_EQ(static_cast<int64_t>(M.RowPtr.size()), M.Rows + 1);
  EXPECT_EQ(M.RowPtr.front(), 1);
  EXPECT_EQ(M.RowPtr.back(), M.nnz() + 1);
  for (int64_t R = 1; R <= M.Rows; ++R) {
    EXPECT_GE(M.rowLength(R), 1) << "row " << R;
    // Columns sorted and distinct within the row, in range.
    for (int64_t K = M.RowPtr[static_cast<size_t>(R - 1)];
         K < M.RowPtr[static_cast<size_t>(R)]; ++K) {
      int64_t C = M.Col[static_cast<size_t>(K - 1)];
      EXPECT_GE(C, 1);
      EXPECT_LE(C, M.Cols);
      if (K > M.RowPtr[static_cast<size_t>(R - 1)]) {
        EXPECT_LT(M.Col[static_cast<size_t>(K - 2)], C);
      }
    }
  }
}

TEST(SpMV, RowLengthsAreSkewed) {
  CsrMatrix M = makeSparseMatrix(smallSpec());
  std::vector<int64_t> L = M.rowLengths();
  int64_t Max = *std::max_element(L.begin(), L.end());
  int64_t Min = *std::min_element(L.begin(), L.end());
  EXPECT_GT(Max, 3 * Min); // power-law tail exists
}

TEST(SpMV, KernelIsProvablyParallel) {
  Program P = spmvF77(96, 4096);
  const auto *Outer = cast<DoStmt>(P.body()[0].get());
  analysis::SafetyResult R = analysis::checkParallelizable(*Outer, P);
  EXPECT_TRUE(R.Parallelizable) << R.Reason;
}

TEST(SpMV, ScalarKernelMatchesOracle) {
  CsrMatrix M = makeSparseMatrix(smallSpec());
  std::vector<double> X = inputVector(M.Cols);
  std::vector<double> Want = M.multiply(X);

  int64_t MaxRows = 96, MaxNnz = M.nnz();
  Program P = spmvF77(MaxRows, MaxNnz);
  machine::MachineConfig MC = machine::MachineConfig::sparc2();
  ScalarInterp Interp(P, MC, nullptr);
  setInputs(Interp.store(), M, X, MaxRows, MaxNnz);
  Interp.run().value();
  std::vector<double> Y = Interp.store().getRealArray("y");
  for (int64_t R = 0; R < M.Rows; ++R)
    EXPECT_NEAR(Y[static_cast<size_t>(R)], Want[static_cast<size_t>(R)],
                1e-12)
        << "row " << R + 1;
}

TEST(SpMV, PipelineMatchesOracleAndEq1) {
  CsrMatrix M = makeSparseMatrix(smallSpec());
  std::vector<double> X = inputVector(M.Cols);
  std::vector<double> Want = M.multiply(X);
  int64_t MaxRows = 96, MaxNnz = M.nnz();
  Program F77 = spmvF77(MaxRows, MaxNnz);

  for (int64_t Lanes : {4, 16}) {
    for (bool Flatten : {true, false}) {
      transform::PipelineOptions PO;
      PO.Flatten = Flatten;
      PO.AssumeInnerMinOneTrip = true; // every row has its diagonal
      transform::PipelineReport Rep;
      Program Simd = transform::compileForSimd(F77, PO, &Rep).value();
      machine::MachineConfig MC;
      MC.Name = "spmv";
      MC.Processors = Lanes;
      MC.Gran = Lanes;
      MC.DataLayout = machine::Layout::Cyclic;
      RunOptions Opts;
      Opts.WorkTargets = {"y"};
      SimdInterp Interp(Simd, MC, nullptr, Opts);
      setInputs(Interp.store(), M, X, MaxRows, MaxNnz);
      SimdRunResult RR = Interp.run().value();
      std::vector<double> Y = Interp.store().getRealArray("y");
      for (int64_t R = 0; R < M.Rows; ++R)
        EXPECT_NEAR(Y[static_cast<size_t>(R)],
                    Want[static_cast<size_t>(R)], 1e-12)
            << (Flatten ? "flat" : "unflat") << " lanes " << Lanes;
      // Step counts match the closed forms.
      analysis::ProfitEstimate E = analysis::estimateProfit(
          M.rowLengths(), Lanes, machine::Layout::Cyclic);
      EXPECT_EQ(RR.Stats.WorkSteps,
                Flatten ? E.FlattenedSteps : E.UnflattenedSteps);
      // The x(col(k)) gather is genuinely irregular: communication
      // happens (unlike NBFORCE, whose data is pre-localized).
      EXPECT_GT(RR.Stats.CommAccesses, 0);
    }
  }
}

} // namespace
