//===- tests/workloads/MandelbrotTest.cpp ----------------------*- C++ -*-===//

#include "workloads/Mandelbrot.h"

#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"
#include "transform/Flatten.h"
#include "transform/Simdize.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

namespace {

MandelbrotSpec smallSpec() {
  MandelbrotSpec S;
  S.Width = 16;
  S.Height = 12;
  S.MaxIter = 40;
  return S;
}

TEST(Mandelbrot, NativeCountsSane) {
  MandelbrotSpec S = smallSpec();
  std::vector<int64_t> It = mandelbrotIterations(S);
  ASSERT_EQ(It.size(), static_cast<size_t>(S.numPixels()));
  bool SawInterior = false, SawEscape = false;
  for (int64_t V : It) {
    EXPECT_GE(V, 1);
    EXPECT_LE(V, S.MaxIter);
    SawInterior |= V == S.MaxIter;
    SawEscape |= V < S.MaxIter;
  }
  EXPECT_TRUE(SawInterior); // the view contains part of the set
  EXPECT_TRUE(SawEscape);
}

TEST(Mandelbrot, F77KernelMatchesNative) {
  MandelbrotSpec S = smallSpec();
  Program P = mandelbrotF77(S);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  ScalarInterp Interp(P, M, nullptr);
  Interp.store().setInt("maxIter", S.MaxIter);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getIntArray("IT"), mandelbrotIterations(S));
}

TEST(Mandelbrot, FlattenedSimdPipelineMatchesAndWins) {
  MandelbrotSpec S = smallSpec();
  std::vector<int64_t> Want = mandelbrotIterations(S);

  machine::MachineConfig M;
  M.Name = "test";
  M.Processors = 16;
  M.Gran = 16;
  M.DataLayout = machine::Layout::Cyclic;
  RunOptions Opts;
  Opts.WorkTargets = {"tmp"}; // tmp is assigned once per inner iteration

  // Unflattened.
  Program PU = mandelbrotF77(S);
  transform::SimdizeOptions SOpts;
  SOpts.DoAllLayout = machine::Layout::Cyclic;
  Program SU = transform::simdize(PU, SOpts);
  SimdInterp IU(SU, M, nullptr, Opts);
  IU.store().setInt("maxIter", S.MaxIter);
  SimdRunResult RU = IU.run().value();
  EXPECT_EQ(IU.store().getIntArray("IT"), Want);

  // Flattened.
  Program PF = mandelbrotF77(S);
  transform::FlattenOptions FOpts;
  FOpts.AssumeInnerMinOneTrip = true; // z=0 starts inside the circle
  FOpts.DistributeOuter = machine::Layout::Cyclic;
  transform::FlattenResult FR = transform::flattenNest(PF, FOpts);
  ASSERT_TRUE(FR.Changed) << FR.Reason;
  Program SF = transform::simdize(PF);
  SimdInterp IF_(SF, M, nullptr, Opts);
  IF_.store().setInt("maxIter", S.MaxIter);
  SimdRunResult RF = IF_.run().value();
  EXPECT_EQ(IF_.store().getIntArray("IT"), Want);

  // Escape-time counts are highly skewed: flattening must win steps.
  EXPECT_LT(RF.Stats.WorkSteps, RU.Stats.WorkSteps);
  EXPECT_GT(RF.Stats.workUtilization(), RU.Stats.workUtilization());
}

} // namespace
