//===- tests/workloads/RegionGrowTest.cpp ----------------------*- C++ -*-===//

#include "workloads/RegionGrow.h"

#include "interp/ScalarInterp.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

namespace {

TEST(RegionGrow, SizesPartitionTheImage) {
  RegionGrowSpec S;
  S.Width = 32;
  S.Height = 24;
  S.NumRegions = 10;
  std::vector<int64_t> Sizes = regionSizes(S);
  ASSERT_EQ(Sizes.size(), 10u);
  for (int64_t V : Sizes)
    EXPECT_GE(V, 1);
  EXPECT_EQ(std::accumulate(Sizes.begin(), Sizes.end(), int64_t{0}),
            S.Width * S.Height);
}

TEST(RegionGrow, SizesVary) {
  RegionGrowSpec S;
  std::vector<int64_t> Sizes = regionSizes(S);
  int64_t Min = Sizes[0], Max = Sizes[0];
  for (int64_t V : Sizes) {
    Min = std::min(Min, V);
    Max = std::max(Max, V);
  }
  // "dominated by the largest region": the skew must exist.
  EXPECT_GT(Max, 2 * Min);
}

TEST(RegionGrow, Deterministic) {
  RegionGrowSpec S;
  EXPECT_EQ(regionSizes(S), regionSizes(S));
}

TEST(RegionGrow, KernelAccumulatesTriangularNumbers) {
  RegionGrowSpec S;
  S.Width = 16;
  S.Height = 16;
  S.NumRegions = 6;
  std::vector<int64_t> Sizes = regionSizes(S);
  int64_t MaxSize = *std::max_element(Sizes.begin(), Sizes.end());
  Program P = regionGrowF77(S.NumRegions, MaxSize);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  ScalarInterp Interp(P, M, nullptr);
  Interp.store().setInt("nRegions", S.NumRegions);
  Interp.store().setIntArray("SIZE", Sizes);
  Interp.run().value();
  std::vector<int64_t> Grown = Interp.store().getIntArray("GROWN");
  for (size_t R = 0; R < Sizes.size(); ++R)
    EXPECT_EQ(Grown[R], Sizes[R] * (Sizes[R] + 1) / 2) << "region " << R;
}

} // namespace
