//===- tests/machine/MachineTest.cpp ---------------------------*- C++ -*-===//

#include "machine/Machine.h"

#include <gtest/gtest.h>

#include <set>

using namespace simdflat;
using namespace simdflat::machine;

TEST(Machine, Cm2Granularity) {
  // Sec. 5.2: slicewise Gran = P * 4 / 32 = P / 8.
  MachineConfig M = MachineConfig::cm2(8192);
  EXPECT_EQ(M.Gran, 1024);
  EXPECT_EQ(M.DataLayout, Layout::Block);
  EXPECT_TRUE(M.VirtualProcessorSweep);
  EXPECT_EQ(MachineConfig::cm2(1024).Gran, 128);
}

TEST(Machine, DecmppGranularity) {
  MachineConfig M = MachineConfig::decmpp(8192);
  EXPECT_EQ(M.Gran, 8192);
  EXPECT_EQ(M.DataLayout, Layout::Cyclic);
  EXPECT_FALSE(M.VirtualProcessorSweep);
}

TEST(Machine, SparcIsScalar) {
  MachineConfig M = MachineConfig::sparc2();
  EXPECT_EQ(M.Gran, 1);
  EXPECT_EQ(M.Processors, 1);
}

TEST(Machine, LayersFor) {
  MachineConfig M = MachineConfig::decmpp(1024);
  EXPECT_EQ(M.layersFor(1), 1);
  EXPECT_EQ(M.layersFor(1024), 1);
  EXPECT_EQ(M.layersFor(1025), 2);
  // Paper Sec. 5.3: N = 6968, Gran = 128 => Lrs = 55.
  MachineConfig C = MachineConfig::cm2(1024);
  EXPECT_EQ(C.Gran, 128);
  EXPECT_EQ(C.layersFor(6968), 55);
  // Gran = 8192 => Lrs = 1.
  EXPECT_EQ(MachineConfig::decmpp(8192).layersFor(6968), 1);
}

TEST(Machine, CyclicLayoutMapping) {
  MachineConfig M = MachineConfig::decmpp(4);
  // Cut-and-stack: element e -> lane (e-1) mod 4, layer (e-1) / 4.
  EXPECT_EQ(M.laneOf(1, 10), 0);
  EXPECT_EQ(M.laneOf(4, 10), 3);
  EXPECT_EQ(M.laneOf(5, 10), 0);
  EXPECT_EQ(M.layerOf(5, 10), 1);
  EXPECT_EQ(M.layerOf(10, 10), 2);
}

TEST(Machine, BlockLayoutMapping) {
  MachineConfig M = MachineConfig::cm2(32); // Gran = 4
  ASSERT_EQ(M.Gran, 4);
  // 10 elements over 4 lanes: chunk = ceil(10/4) = 3.
  EXPECT_EQ(M.laneOf(1, 10), 0);
  EXPECT_EQ(M.laneOf(3, 10), 0);
  EXPECT_EQ(M.laneOf(4, 10), 1);
  EXPECT_EQ(M.laneOf(10, 10), 3);
  EXPECT_EQ(M.layerOf(4, 10), 0);
  EXPECT_EQ(M.layerOf(6, 10), 2);
}

TEST(Machine, LayoutsAreInjective) {
  for (MachineConfig M : {MachineConfig::cm2(32), MachineConfig::decmpp(4)}) {
    const int64_t Extent = 11;
    std::set<std::pair<int64_t, int64_t>> Seen;
    for (int64_t E = 1; E <= Extent; ++E) {
      auto Key = std::make_pair(M.laneOf(E, Extent), M.layerOf(E, Extent));
      EXPECT_TRUE(Seen.insert(Key).second)
          << M.Name << ": element " << E << " collides";
      EXPECT_GE(Key.first, 0);
      EXPECT_LT(Key.first, M.Gran);
      EXPECT_GE(Key.second, 0);
      EXPECT_LT(Key.second, M.layersFor(Extent));
    }
  }
}
