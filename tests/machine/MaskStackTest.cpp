//===- tests/machine/MaskStackTest.cpp -------------------------*- C++ -*-===//

#include "machine/MaskStack.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::machine;

TEST(MaskStack, StartsAllActive) {
  MaskStack M(4);
  EXPECT_EQ(M.activeCount(), 4);
  EXPECT_EQ(M.depth(), 0u);
  for (int64_t L = 0; L < 4; ++L)
    EXPECT_TRUE(M.isActive(L));
}

TEST(MaskStack, PushAndRestricts) {
  MaskStack M(4);
  M.pushAnd({1, 0, 1, 0});
  EXPECT_EQ(M.activeCount(), 2);
  EXPECT_TRUE(M.isActive(0));
  EXPECT_FALSE(M.isActive(1));
  M.pop();
  EXPECT_EQ(M.activeCount(), 4);
}

TEST(MaskStack, NestedAnd) {
  MaskStack M(4);
  M.pushAnd({1, 1, 0, 0});
  M.pushAnd({1, 0, 1, 0});
  EXPECT_TRUE(M.isActive(0));
  EXPECT_FALSE(M.isActive(1));
  EXPECT_FALSE(M.isActive(2)); // parent masked it out
  EXPECT_FALSE(M.isActive(3));
  M.pop();
  EXPECT_EQ(M.activeCount(), 2);
  M.pop();
  EXPECT_EQ(M.activeCount(), 4);
}

TEST(MaskStack, FlipTopIsElsewhere) {
  MaskStack M(4);
  M.pushAnd({1, 1, 0, 0});
  M.pushAnd({1, 0, 1, 0}); // WHERE: lanes {0}
  EXPECT_EQ(M.activeCount(), 1);
  M.flipTop(); // ELSEWHERE: parent {0,1} minus cond {0,2} = {1}
  EXPECT_FALSE(M.isActive(0));
  EXPECT_TRUE(M.isActive(1));
  EXPECT_FALSE(M.isActive(2));
  EXPECT_EQ(M.activeCount(), 1);
  M.pop();
  EXPECT_EQ(M.activeCount(), 2);
}

TEST(MaskStack, NoneActive) {
  MaskStack M(2);
  EXPECT_FALSE(M.noneActive());
  M.pushAnd({0, 0});
  EXPECT_TRUE(M.noneActive());
}

TEST(MaskStack, FlipInsideEmptyParent) {
  MaskStack M(2);
  M.pushAnd({0, 0});
  M.pushAnd({1, 1});
  EXPECT_TRUE(M.noneActive());
  M.flipTop();
  EXPECT_TRUE(M.noneActive()); // parent empty => elsewhere empty too
}

// A WHERE ladder ~100 deep: each level masks out one more lane-group
// slot of a 128-lane machine. Exercises the Saved vector far past any
// realistic program and checks pop unwinds exactly.
TEST(MaskStack, DeepNesting) {
  constexpr int64_t Lanes = 128;
  constexpr int Levels = 100;
  MaskStack M(Lanes);
  for (int D = 0; D < Levels; ++D) {
    // Level D turns off lane D and keeps everything else.
    std::vector<uint8_t> Cond(static_cast<size_t>(Lanes), 1);
    Cond[static_cast<size_t>(D)] = 0;
    M.pushAnd(Cond);
    EXPECT_EQ(M.depth(), static_cast<size_t>(D + 1));
    EXPECT_EQ(M.activeCount(), Lanes - (D + 1));
    EXPECT_FALSE(M.isActive(D));
    EXPECT_TRUE(M.isActive(Levels)); // never masked by any level
  }
  // flipTop at full depth: the parent (depth 99) has lanes 99..127
  // active, the top condition masks exactly lane 99, so the ELSEWHERE
  // flip yields parent AND NOT cond = {99}.
  M.flipTop();
  EXPECT_EQ(M.activeCount(), 1);
  EXPECT_TRUE(M.isActive(Levels - 1));
  for (int D = Levels; D > 0; --D) {
    M.pop();
    EXPECT_EQ(M.depth(), static_cast<size_t>(D - 1));
    EXPECT_EQ(M.activeCount(), Lanes - (D - 1));
  }
  EXPECT_EQ(M.activeCount(), Lanes);
}

// Once every lane is masked, further nesting keeps the machine fully
// idle no matter what conditions are pushed - the lockstep core still
// walks the bodies, but no level may reactivate a lane its parent
// masked. This is the invariant the bytecode engine's WherePush relies
// on when it skips noneActive store commits.
TEST(MaskStack, AllLanesMaskedStaysMasked) {
  MaskStack M(4);
  M.pushAnd({0, 0, 0, 0});
  EXPECT_TRUE(M.noneActive());
  M.pushAnd({1, 1, 1, 1});
  EXPECT_TRUE(M.noneActive());
  M.flipTop(); // NOT cond = all zero; parent empty anyway
  EXPECT_TRUE(M.noneActive());
  M.pushAnd({1, 0, 1, 0});
  EXPECT_TRUE(M.noneActive());
  EXPECT_EQ(M.depth(), 3u);
  M.pop();
  M.pop();
  M.pop();
  EXPECT_EQ(M.activeCount(), 4);
  EXPECT_EQ(M.depth(), 0u);
}

// Misuse of the stack protocol is a programming error in the control
// unit, caught by assertions: popping or flipping with no pushed level
// must abort in debug builds rather than corrupt the mask.
#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST(MaskStackDeathTest, PopOnEmptyAsserts) {
  MaskStack M(4);
  EXPECT_DEATH(M.pop(), "pop at top level");
}

TEST(MaskStackDeathTest, FlipOnEmptyAsserts) {
  MaskStack M(4);
  EXPECT_DEATH(M.flipTop(), "flipTop at top level");
}

TEST(MaskStackDeathTest, WidthMismatchAsserts) {
  MaskStack M(4);
  EXPECT_DEATH(M.pushAnd({1, 0}), "mask width mismatch");
}
#endif
