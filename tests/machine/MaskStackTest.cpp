//===- tests/machine/MaskStackTest.cpp -------------------------*- C++ -*-===//

#include "machine/MaskStack.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::machine;

TEST(MaskStack, StartsAllActive) {
  MaskStack M(4);
  EXPECT_EQ(M.activeCount(), 4);
  EXPECT_EQ(M.depth(), 0u);
  for (int64_t L = 0; L < 4; ++L)
    EXPECT_TRUE(M.isActive(L));
}

TEST(MaskStack, PushAndRestricts) {
  MaskStack M(4);
  M.pushAnd({1, 0, 1, 0});
  EXPECT_EQ(M.activeCount(), 2);
  EXPECT_TRUE(M.isActive(0));
  EXPECT_FALSE(M.isActive(1));
  M.pop();
  EXPECT_EQ(M.activeCount(), 4);
}

TEST(MaskStack, NestedAnd) {
  MaskStack M(4);
  M.pushAnd({1, 1, 0, 0});
  M.pushAnd({1, 0, 1, 0});
  EXPECT_TRUE(M.isActive(0));
  EXPECT_FALSE(M.isActive(1));
  EXPECT_FALSE(M.isActive(2)); // parent masked it out
  EXPECT_FALSE(M.isActive(3));
  M.pop();
  EXPECT_EQ(M.activeCount(), 2);
  M.pop();
  EXPECT_EQ(M.activeCount(), 4);
}

TEST(MaskStack, FlipTopIsElsewhere) {
  MaskStack M(4);
  M.pushAnd({1, 1, 0, 0});
  M.pushAnd({1, 0, 1, 0}); // WHERE: lanes {0}
  EXPECT_EQ(M.activeCount(), 1);
  M.flipTop(); // ELSEWHERE: parent {0,1} minus cond {0,2} = {1}
  EXPECT_FALSE(M.isActive(0));
  EXPECT_TRUE(M.isActive(1));
  EXPECT_FALSE(M.isActive(2));
  EXPECT_EQ(M.activeCount(), 1);
  M.pop();
  EXPECT_EQ(M.activeCount(), 2);
}

TEST(MaskStack, NoneActive) {
  MaskStack M(2);
  EXPECT_FALSE(M.noneActive());
  M.pushAnd({0, 0});
  EXPECT_TRUE(M.noneActive());
}

TEST(MaskStack, FlipInsideEmptyParent) {
  MaskStack M(2);
  M.pushAnd({0, 0});
  M.pushAnd({1, 1});
  EXPECT_TRUE(M.noneActive());
  M.flipTop();
  EXPECT_TRUE(M.noneActive()); // parent empty => elsewhere empty too
}
