//===- tests/exec/HostSimdBackendTest.cpp ----------------------*- C++ -*-===//
//
// The HostSimd backend's own contract, beyond the generic triple-engine
// sweeps: the configure-time arch query is coherent, real-arithmetic
// kernels (including the NaN/-0.0/denormal-sensitive MAX/MIN/DIV/SQRT
// paths) are bitwise identical to the reference engines, masked WHERE
// commits blend exactly like the generic masked store, and a padded
// tail (N not divisible by the machine width) charges idle lane slots
// without ever counting them active - on every engine.
//
//===----------------------------------------------------------------------===//

#include "exec/Engine.h"
#include "frontend/Parser.h"
#include "interp/SimdInterp.h"
#include "machine/HostVector.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

using namespace simdflat;
using namespace simdflat::interp;

namespace {

constexpr Engine AllEngines[] = {Engine::Tree, Engine::Bytecode,
                                 Engine::HostSimd};

/// Bitwise equality for doubles: distinguishes -0.0 from 0.0 and treats
/// identical NaN payloads as equal, which value comparison cannot.
bool bitwiseEqual(const std::vector<double> &A,
                  const std::vector<double> &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(double)) == 0);
}

struct SimdRun {
  SimdRunResult R;
  std::map<std::string, std::vector<double>> RealArrays;
  std::map<std::string, std::vector<int64_t>> IntArrays;
};

/// Compiles \p Source through the full pipeline and runs it on a 4-lane
/// machine under \p E, seeding the named arrays first.
SimdRun runSource(
    const std::string &Source, Engine E,
    const std::map<std::string, std::vector<double>> &SeedReals = {},
    const std::map<std::string, std::vector<int64_t>> &SeedInts = {},
    const std::vector<std::string> &WorkTargets = {}) {
  frontend::ParseResult PR = frontend::parseProgram(Source);
  EXPECT_TRUE(PR.ok()) << PR.Diags.renderAll();
  auto C = transform::compileForSimdExec(*PR.Prog);
  EXPECT_TRUE(static_cast<bool>(C)) << C.error().render();
  machine::MachineConfig M;
  M.Name = "test-4";
  M.Processors = 4;
  M.Gran = 4;
  M.DataLayout = machine::Layout::Cyclic;
  RunOptions O;
  O.Eng = E;
  O.WorkTargets = WorkTargets;
  SimdInterp Interp(C->Prog, M, nullptr, O);
  if (E != Engine::Tree)
    Interp.setCompiled(C->Code);
  for (const auto &[Name, V] : SeedReals)
    Interp.store().setRealArray(Name, V);
  for (const auto &[Name, V] : SeedInts)
    Interp.store().setIntArray(Name, V);
  SimdRun Out;
  auto R = Interp.run();
  EXPECT_TRUE(static_cast<bool>(R))
      << engineName(E) << ": " << (R ? "" : R.error().render());
  if (R)
    Out.R = std::move(*R);
  for (const auto &[Name, V] : SeedReals)
    Out.RealArrays[Name] = Interp.store().getRealArray(Name);
  for (const auto &[Name, V] : SeedInts)
    Out.IntArrays[Name] = Interp.store().getIntArray(Name);
  return Out;
}

TEST(HostSimdBackend, ArchQueryCoherent) {
  machine::HostVectorCaps Caps = machine::hostVectorCaps();
  EXPECT_STREQ(Caps.Arch, exec::hostSimdArch());
  EXPECT_EQ(Caps.Width, exec::hostSimdWidth());
  EXPECT_EQ(Caps.Width, 4);
  std::string Arch = Caps.Arch;
  EXPECT_TRUE(Arch == "avx2" || Arch == "portable") << Arch;
  EXPECT_EQ(Caps.IsHardware, Arch == "avx2");
}

TEST(HostSimdBackend, PaddedTailNeverCountsActive) {
  // 6 trips on a 4-lane machine: layer 1 full, layer 2 half idle. Every
  // engine must report 2 work steps covering 8 lane slots of which
  // exactly 6 were active - the padded tail charges the total but can
  // never count as active work (75% utilization, not 100%).
  const char *Source = "PROGRAM PAD\n"
                       "DISTRIBUTED INTEGER A(6)\n"
                       "INTEGER j\n"
                       "BEGIN\n"
                       "  DOALL j = 1, 6\n"
                       "    A(j) = j * j\n"
                       "  ENDDO\n"
                       "END\n";
  for (Engine E : AllEngines) {
    SimdRun Out = runSource(Source, E, {}, {{"A", std::vector<int64_t>(6)}},
                            {"A"});
    EXPECT_EQ(Out.R.Stats.WorkSteps, 2) << engineName(E);
    EXPECT_EQ(Out.R.Stats.WorkActiveLanes, 6) << engineName(E);
    EXPECT_EQ(Out.R.Stats.WorkTotalLanes, 8) << engineName(E);
    EXPECT_DOUBLE_EQ(Out.R.Stats.workUtilization(), 0.75) << engineName(E);
    EXPECT_TRUE(Out.R.Stats.laneAccountingConsistent()) << engineName(E);
    EXPECT_EQ(Out.IntArrays["A"],
              (std::vector<int64_t>{1, 4, 9, 16, 25, 36}))
        << engineName(E);
  }
}

TEST(HostSimdBackend, RealKernelsBitIdentical) {
  // One expression soup over the value cases where vector instructions
  // and scalar C++ can legitimately disagree: signed zero (negation,
  // division), denormals, huge magnitudes, divide-by-zero (defined to
  // 0.0 here), MAX/MIN (blend rules), ABS, SQRT. The result arrays must
  // be bitwise equal across all three engines.
  const char *Source =
      "PROGRAM RK\n"
      "DISTRIBUTED REAL A(8)\n"
      "DISTRIBUTED REAL B(8)\n"
      "DISTRIBUTED REAL C(8)\n"
      "DISTRIBUTED REAL D(8)\n"
      "INTEGER k\n"
      "BEGIN\n"
      "  DOALL k = 1, 8\n"
      "    C(k) = (A(k) + B(k)) * A(k) - B(k) / A(k)\n"
      "    D(k) = MAX(A(k), B(k)) + MIN(A(k), B(k)) - (-A(k))\n"
      "    D(k) = D(k) + ABS(B(k)) + SQRT(ABS(A(k)))\n"
      "  ENDDO\n"
      "END\n";
  std::map<std::string, std::vector<double>> Seeds = {
      {"A", {1.5, -2.25, 0.0, 5e-324, -0.0, 3.75, 1e300, -5.5}},
      {"B", {-0.0, 0.5, -1.25, 0.0, 2.0, -7.5, 1e-300, 4.25}},
      {"C", std::vector<double>(8, 0.0)},
      {"D", std::vector<double>(8, 0.0)},
  };
  SimdRun Ref = runSource(Source, Engine::Tree, Seeds);
  for (Engine E : {Engine::Bytecode, Engine::HostSimd}) {
    SimdRun Got = runSource(Source, E, Seeds);
    EXPECT_TRUE(bitwiseEqual(Ref.RealArrays["C"], Got.RealArrays["C"]))
        << engineName(E);
    EXPECT_TRUE(bitwiseEqual(Ref.RealArrays["D"], Got.RealArrays["D"]))
        << engineName(E);
    EXPECT_EQ(Ref.R.Stats.Instructions, Got.R.Stats.Instructions)
        << engineName(E);
    EXPECT_EQ(Ref.R.Stats.Cycles, Got.R.Stats.Cycles) << engineName(E);
  }
}

TEST(HostSimdBackend, MaskedWhereBlendsExactly) {
  // Divergent WHERE/ELSEWHERE: under the vector kernels the masked
  // commit is a blend, and idle lanes must keep their old bits exactly
  // (including a -0.0 that a sloppy blend could renormalize).
  const char *Source = "PROGRAM WB\n"
                       "DISTRIBUTED REAL V(8)\n"
                       "DISTRIBUTED INTEGER W(8)\n"
                       "INTEGER k\n"
                       "BEGIN\n"
                       "  DOALL k = 1, 8\n"
                       "    WHERE (V(k) > 0.5)\n"
                       "      V(k) = V(k) * 2.0\n"
                       "      W(k) = k\n"
                       "    ELSEWHERE\n"
                       "      W(k) = -k\n"
                       "    ENDWHERE\n"
                       "  ENDDO\n"
                       "END\n";
  std::map<std::string, std::vector<double>> Seeds = {
      {"V", {1.0, 0.25, -0.0, 2.5, 0.5, 7.75, -3.0, 0.75}},
  };
  std::map<std::string, std::vector<int64_t>> IntSeeds = {
      {"W", std::vector<int64_t>(8, 0)},
  };
  SimdRun Ref = runSource(Source, Engine::Tree, Seeds, IntSeeds);
  EXPECT_EQ(Ref.IntArrays["W"],
            (std::vector<int64_t>{1, -2, -3, 4, -5, 6, -7, 8}));
  for (Engine E : {Engine::Bytecode, Engine::HostSimd}) {
    SimdRun Got = runSource(Source, E, Seeds, IntSeeds);
    EXPECT_TRUE(bitwiseEqual(Ref.RealArrays["V"], Got.RealArrays["V"]))
        << engineName(E);
    EXPECT_EQ(Ref.IntArrays["W"], Got.IntArrays["W"]) << engineName(E);
  }
}

TEST(HostSimdBackend, SqrtNegativeActiveLaneTrapsIdentically) {
  // The AVX2 sqrt kernel has a fast path (no negative anywhere) and a
  // generic trap-collecting fallback; force the fallback and require
  // the same per-lane trap set as the reference engines.
  const char *Source = "PROGRAM SN\n"
                       "DISTRIBUTED REAL A(4)\n"
                       "DISTRIBUTED REAL B(4)\n"
                       "INTEGER k\n"
                       "BEGIN\n"
                       "  DOALL k = 1, 4\n"
                       "    B(k) = SQRT(A(k))\n"
                       "  ENDDO\n"
                       "END\n";
  auto RunIt = [&](Engine E) {
    frontend::ParseResult PR = frontend::parseProgram(Source);
    EXPECT_TRUE(PR.ok()) << PR.Diags.renderAll();
    auto C = transform::compileForSimdExec(*PR.Prog);
    EXPECT_TRUE(static_cast<bool>(C)) << C.error().render();
    machine::MachineConfig M;
    M.Name = "test-4";
    M.Processors = 4;
    M.Gran = 4;
    M.DataLayout = machine::Layout::Cyclic;
    RunOptions O;
    O.Eng = E;
    SimdInterp Interp(C->Prog, M, nullptr, O);
    if (E != Engine::Tree)
      Interp.setCompiled(C->Code);
    const std::vector<double> A = {4.0, -1.0, 9.0, -16.0};
    Interp.store().setRealArray("A", A);
    Interp.store().setRealArray("B", std::vector<double>(4, 0.0));
    return Interp.run();
  };
  auto Tree = RunIt(Engine::Tree);
  ASSERT_FALSE(static_cast<bool>(Tree));
  EXPECT_EQ(Tree.error().Kind, TrapKind::DomainError);
  EXPECT_EQ(Tree.error().Lanes, (std::vector<int64_t>{1, 3}));
  for (Engine E : {Engine::Bytecode, Engine::HostSimd}) {
    auto Got = RunIt(E);
    ASSERT_FALSE(static_cast<bool>(Got)) << engineName(E);
    EXPECT_EQ(Tree.error().Kind, Got.error().Kind) << engineName(E);
    EXPECT_EQ(Tree.error().Lanes, Got.error().Lanes) << engineName(E);
    EXPECT_EQ(Tree.error().Detail, Got.error().Detail) << engineName(E);
  }
}

} // namespace
