//===- tests/exec/FuelEdgeTest.cpp -----------------------------*- C++ -*-===//
//
// Fuel-budget edge semantics, pinned across all three engines: Fuel = 0
// is unlimited, a budget of exactly the program's instruction count
// completes while one less traps, and SIMD trap *sets* (the per-lane
// Lanes vector, location and detail) are identical between the tree
// reference, the bytecode engine and the host-SIMD backend. The serving
// core leans on these edges: MaxFuel admission and FuelExhausted
// replies are only deterministic if every engine charges identically.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"
#include "transform/Pipeline.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::workloads;

namespace {

void expectSameTrap(const Trap &A, const Trap &B) {
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(A.Lanes, B.Lanes);
  EXPECT_EQ(A.Location, B.Location);
  EXPECT_EQ(A.Detail, B.Detail);
}

/// Runs the paper example on the scalar interpreter with \p Fuel;
/// returns the outcome.
RunOutcome<ScalarRunResult> runScalar(Engine E, int64_t Fuel) {
  ExampleSpec Spec = paperExampleSpec();
  ir::Program P = makeExample(Spec);
  RunOptions O;
  O.Eng = E;
  O.Fuel = Fuel;
  ScalarInterp Interp(P, machine::MachineConfig::sparc2(), nullptr, O);
  Interp.store().setInt("K", Spec.K);
  Interp.store().setIntArray("L", Spec.L);
  return Interp.run();
}

TEST(FuelEdge, ZeroFuelIsUnlimited) {
  for (Engine E :
       {Engine::Tree, Engine::Bytecode, Engine::HostSimd}) {
    auto R = runScalar(E, 0);
    ASSERT_TRUE(static_cast<bool>(R))
        << engineName(E) << ": " << R.error().render();
    EXPECT_GT(R->Stats.Instructions, 0) << engineName(E);
  }
}

TEST(FuelEdge, ExactBudgetCompletesOneLessTraps) {
  for (Engine E :
       {Engine::Tree, Engine::Bytecode, Engine::HostSimd}) {
    // Total charge of the unlimited run...
    auto Free = runScalar(E, 0);
    ASSERT_TRUE(static_cast<bool>(Free)) << engineName(E);
    int64_t Total = Free->Stats.Instructions;
    ASSERT_GT(Total, 1) << engineName(E);

    // ...is exactly enough fuel: the last instruction does not trap.
    auto Exact = runScalar(E, Total);
    ASSERT_TRUE(static_cast<bool>(Exact))
        << engineName(E) << ": a budget of the full instruction count "
        << "must complete, got " << Exact.error().render();
    EXPECT_EQ(Exact->Stats.Instructions, Total) << engineName(E);

    // One unit less traps, with the spent budget in the detail.
    auto Starved = runScalar(E, Total - 1);
    ASSERT_FALSE(static_cast<bool>(Starved)) << engineName(E);
    EXPECT_EQ(Starved.error().Kind, TrapKind::FuelExhausted)
        << engineName(E);
  }
}

TEST(FuelEdge, ExhaustionTrapIdenticalAcrossEngines) {
  auto Free = runScalar(Engine::Tree, 0);
  ASSERT_TRUE(static_cast<bool>(Free));
  int64_t Budget = Free->Stats.Instructions / 2;
  auto Tree = runScalar(Engine::Tree, Budget);
  ASSERT_FALSE(static_cast<bool>(Tree));
  for (Engine E : {Engine::Bytecode, Engine::HostSimd}) {
    auto Got = runScalar(E, Budget);
    ASSERT_FALSE(static_cast<bool>(Got)) << engineName(E);
    expectSameTrap(Tree.error(), Got.error());
  }
}

/// Compiles \p Source through the full pipeline and runs it on the
/// 4-lane SIMD machine with \p Fuel; returns the outcome per engine.
RunOutcome<SimdRunResult> runSimd(const std::string &Source, Engine E,
                                  int64_t Fuel) {
  frontend::ParseResult PR = frontend::parseProgram(Source);
  EXPECT_TRUE(PR.ok()) << PR.Diags.renderAll();
  auto C = transform::compileForSimdExec(*PR.Prog);
  EXPECT_TRUE(static_cast<bool>(C)) << C.error().render();
  machine::MachineConfig M;
  M.Name = "test-4";
  M.Processors = 4;
  M.Gran = 4;
  M.DataLayout = machine::Layout::Cyclic;
  RunOptions O;
  O.Eng = E;
  O.Fuel = Fuel;
  SimdInterp Interp(C->Prog, M, nullptr, O);
  if (E != Engine::Tree)
    Interp.setCompiled(C->Code);
  const std::vector<int64_t> L = {1, 2, 9, 3};
  Interp.store().setIntArray("L", L);
  return Interp.run();
}

constexpr const char *PerLaneOobSource =
    "PROGRAM LANES\n"
    "DISTRIBUTED INTEGER A(8)\n"
    "DISTRIBUTED INTEGER L(4)\n"
    "INTEGER j\n"
    "BEGIN\n"
    "  DOALL j = 1, 4\n"
    "    A(L(j)) = j\n"
    "  ENDDO\n"
    "END\n";

TEST(FuelEdge, SimdPerLaneTrapSetEquality) {
  // L(3) = 9 sends exactly one lane out of A's extent: the trap's lane
  // set, location chain and detail must match across all engines.
  auto Tree = runSimd(PerLaneOobSource, Engine::Tree, 0);
  ASSERT_FALSE(static_cast<bool>(Tree));
  EXPECT_EQ(Tree.error().Kind, TrapKind::OutOfBounds);
  ASSERT_FALSE(Tree.error().Lanes.empty())
      << "an OOB store under SIMD must name the faulting lane(s)";
  for (Engine E : {Engine::Bytecode, Engine::HostSimd}) {
    auto Got = runSimd(PerLaneOobSource, E, 0);
    ASSERT_FALSE(static_cast<bool>(Got)) << engineName(E);
    expectSameTrap(Tree.error(), Got.error());
  }
}

TEST(FuelEdge, SimdFuelTrapSetEquality) {
  // Starve the same SIMD program of fuel before the trapping store so
  // every engine reports the identical FuelExhausted trap instead.
  auto Tree = runSimd(PerLaneOobSource, Engine::Tree, 2);
  ASSERT_FALSE(static_cast<bool>(Tree));
  EXPECT_EQ(Tree.error().Kind, TrapKind::FuelExhausted);
  for (Engine E : {Engine::Bytecode, Engine::HostSimd}) {
    auto Got = runSimd(PerLaneOobSource, E, 2);
    ASSERT_FALSE(static_cast<bool>(Got)) << engineName(E);
    expectSameTrap(Tree.error(), Got.error());
  }
}

/// Runs PerLaneOobSource with a deadline that expired before the run
/// started: the DeadlineExpired trap must fire at the first poll point
/// (instruction 1) with identical location and detail on all engines.
RunOutcome<SimdRunResult> runSimdExpired(Engine E) {
  frontend::ParseResult PR = frontend::parseProgram(PerLaneOobSource);
  EXPECT_TRUE(PR.ok()) << PR.Diags.renderAll();
  auto C = transform::compileForSimdExec(*PR.Prog);
  EXPECT_TRUE(static_cast<bool>(C)) << C.error().render();
  machine::MachineConfig M;
  M.Name = "test-4";
  M.Processors = 4;
  M.Gran = 4;
  M.DataLayout = machine::Layout::Cyclic;
  RunOptions O;
  O.Eng = E;
  O.Deadline = std::chrono::steady_clock::now() -
               std::chrono::milliseconds(10);
  SimdInterp Interp(C->Prog, M, nullptr, O);
  if (E != Engine::Tree)
    Interp.setCompiled(C->Code);
  const std::vector<int64_t> L = {1, 2, 9, 3};
  Interp.store().setIntArray("L", L);
  return Interp.run();
}

TEST(FuelEdge, DeadlineTrapIdenticalAcrossEngines) {
  auto Tree = runSimdExpired(Engine::Tree);
  ASSERT_FALSE(static_cast<bool>(Tree));
  EXPECT_EQ(Tree.error().Kind, TrapKind::DeadlineExpired);
  for (Engine E : {Engine::Bytecode, Engine::HostSimd}) {
    auto Got = runSimdExpired(E);
    ASSERT_FALSE(static_cast<bool>(Got)) << engineName(E);
    expectSameTrap(Tree.error(), Got.error());
  }
}

} // namespace
