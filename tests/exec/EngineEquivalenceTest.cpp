//===- tests/exec/EngineEquivalenceTest.cpp --------------------*- C++ -*-===//
//
// Triple-engine equivalence: the bytecode core and the host-SIMD
// backend must be observably identical to the tree-walking reference on
// stores, every RunStats counter, traces, and traps (kind, lanes,
// location, detail) across the scalar, MIMD and SIMD executors. These
// are the focused unit-level checks; the differential fuzzer covers the
// same contract at scale.
//
//===----------------------------------------------------------------------===//

#include "interp/MimdInterp.h"
#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"
#include "transform/Pipeline.h"
#include "workloads/PaperKernels.h"

#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::workloads;

namespace {

void expectSameStats(const RunStats &A, const RunStats &B) {
  EXPECT_EQ(A.WorkSteps, B.WorkSteps);
  EXPECT_EQ(A.Instructions, B.Instructions);
  EXPECT_EQ(A.WorkActiveLanes, B.WorkActiveLanes);
  EXPECT_EQ(A.WorkTotalLanes, B.WorkTotalLanes);
  EXPECT_EQ(A.CommAccesses, B.CommAccesses);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Seconds, B.Seconds);
}

void expectSameTrap(const Trap &A, const Trap &B) {
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(A.Lanes, B.Lanes);
  EXPECT_EQ(A.Location, B.Location);
  EXPECT_EQ(A.Detail, B.Detail);
}

void expectSameTrace(const Trace &A, const Trace &B) {
  EXPECT_EQ(A.Watch, B.Watch);
  EXPECT_EQ(A.Lanes, B.Lanes);
  ASSERT_EQ(A.Steps.size(), B.Steps.size());
  for (size_t S = 0; S < A.Steps.size(); ++S) {
    EXPECT_EQ(A.Steps[S].Values, B.Steps[S].Values) << "step " << S;
    EXPECT_EQ(A.Steps[S].Active, B.Steps[S].Active) << "step " << S;
  }
}

RunOptions optsFor(Engine E) {
  RunOptions O;
  O.WorkTargets = {"X"};
  O.Eng = E;
  return O;
}

TEST(EngineEquivalence, ScalarStoresAndStats) {
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  std::vector<int64_t> X[3];
  ScalarRunResult R[3];
  int I = 0;
  for (Engine E :
       {Engine::Tree, Engine::Bytecode, Engine::HostSimd}) {
    ScalarInterp Interp(P, M, nullptr, optsFor(E));
    Interp.store().setInt("K", Spec.K);
    Interp.store().setIntArray("L", Spec.L);
    R[I] = Interp.run().value();
    X[I] = Interp.store().getIntArray("X");
    ++I;
  }
  EXPECT_EQ(X[0], X[1]);
  EXPECT_EQ(X[0], X[2]);
  expectSameStats(R[0].Stats, R[1].Stats);
  expectSameStats(R[0].Stats, R[2].Stats);
}

TEST(EngineEquivalence, ScalarOutOfBoundsTrap) {
  // A(9) with extent 8: both engines trap with the same rendered
  // location chain and detail text.
  Program P("OOB");
  P.addVar("A", ScalarKind::Int, {8});
  P.addVar("i", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.doLoop(
      "i", B.lit(1), B.lit(9),
      Builder::body(B.assign(B.at("A", B.var("i")), B.var("i")))));
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  Trap T[3];
  int I = 0;
  for (Engine E :
       {Engine::Tree, Engine::Bytecode, Engine::HostSimd}) {
    RunOptions O;
    O.Eng = E;
    ScalarInterp Interp(P, M, nullptr, O);
    auto R = Interp.run();
    ASSERT_FALSE(R) << engineName(E);
    T[I++] = R.error();
  }
  EXPECT_EQ(T[0].Kind, TrapKind::OutOfBounds);
  expectSameTrap(T[0], T[1]);
  expectSameTrap(T[0], T[2]);
}

TEST(EngineEquivalence, ScalarFuelTrap) {
  // The fuel watchdog fires after the same number of charged
  // instructions in both engines.
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  Trap T[3];
  int I = 0;
  for (Engine E :
       {Engine::Tree, Engine::Bytecode, Engine::HostSimd}) {
    RunOptions O = optsFor(E);
    O.Fuel = 40;
    ScalarInterp Interp(P, M, nullptr, O);
    Interp.store().setInt("K", Spec.K);
    Interp.store().setIntArray("L", Spec.L);
    auto R = Interp.run();
    ASSERT_FALSE(R) << engineName(E);
    T[I++] = R.error();
  }
  EXPECT_EQ(T[0].Kind, TrapKind::FuelExhausted);
  expectSameTrap(T[0], T[1]);
  expectSameTrap(T[0], T[2]);
}

TEST(EngineEquivalence, MimdSlicingAndMerge) {
  // Each MIMD processor runs the scalar engine over its owned slice;
  // per-processor stats, Eq. 1 time and the merged store must match.
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  MimdRunResult R[3];
  int I = 0;
  for (Engine E :
       {Engine::Tree, Engine::Bytecode, Engine::HostSimd}) {
    MimdInterp Interp(P, M, nullptr, /*NumProcs=*/2,
                      machine::Layout::Block, optsFor(E));
    R[I++] = Interp.run([&](DataStore &S) {
               S.setInt("K", Spec.K);
               S.setIntArray("L", Spec.L);
             }).value();
  }
  for (int J : {1, 2}) {
    EXPECT_EQ(R[0].TimeSteps, R[J].TimeSteps);
    EXPECT_EQ(R[0].Seconds, R[J].Seconds);
    ASSERT_EQ(R[0].PerProc.size(), R[J].PerProc.size());
    for (size_t Proc = 0; Proc < R[0].PerProc.size(); ++Proc)
      expectSameStats(R[0].PerProc[Proc], R[J].PerProc[Proc]);
    EXPECT_EQ(R[0].Merged->getIntArray("X"),
              R[J].Merged->getIntArray("X"));
  }
}

TEST(EngineEquivalence, SimdTraceAndStats) {
  // The flattened EXAMPLE on a 2-lane machine, with the Fig. 6 trace
  // recorded: step-by-step values and activity masks must be identical.
  ExampleSpec Spec = paperExampleSpec();
  transform::PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  auto C = transform::compileForSimdExec(makeExample(Spec), PO);
  ASSERT_TRUE(static_cast<bool>(C));
  machine::MachineConfig M;
  M.Name = "test-2";
  M.Processors = 2;
  M.Gran = 2;
  M.DataLayout = machine::Layout::Cyclic;
  SimdRunResult R[3];
  int I = 0;
  for (Engine E :
       {Engine::Tree, Engine::Bytecode, Engine::HostSimd}) {
    RunOptions O = optsFor(E);
    O.Watch = {"i", "j"};
    SimdInterp Interp(C->Prog, M, nullptr, O);
    if (E != Engine::Tree)
      Interp.setCompiled(C->Code);
    Interp.store().setInt("K", Spec.K);
    Interp.store().setIntArray("L", Spec.L);
    R[I++] = Interp.run().value();
  }
  expectSameStats(R[0].Stats, R[1].Stats);
  expectSameStats(R[0].Stats, R[2].Stats);
  expectSameTrace(R[0].Tr, R[1].Tr);
  expectSameTrace(R[0].Tr, R[2].Tr);
}

TEST(EngineEquivalence, SharedCompiledProgramReuse) {
  // One lowered Program serves many interpreter instances (the pipeline
  // cache contract): repeated runs keep producing identical results.
  ExampleSpec Spec = paperExampleSpec();
  transform::PipelineOptions PO;
  PO.AssumeInnerMinOneTrip = true;
  auto C = transform::compileForSimdExec(makeExample(Spec), PO);
  ASSERT_TRUE(static_cast<bool>(C));
  machine::MachineConfig M;
  M.Name = "test-4";
  M.Processors = 4;
  M.Gran = 4;
  M.DataLayout = machine::Layout::Cyclic;
  RunStats First;
  for (int Round = 0; Round < 3; ++Round) {
    SimdInterp Interp(C->Prog, M, nullptr, optsFor(Engine::Bytecode));
    Interp.setCompiled(C->Code);
    Interp.store().setInt("K", Spec.K);
    Interp.store().setIntArray("L", Spec.L);
    SimdRunResult R = Interp.run().value();
    if (Round == 0)
      First = R.Stats;
    else
      expectSameStats(First, R.Stats);
  }
}

} // namespace
