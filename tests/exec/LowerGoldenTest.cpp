//===- tests/exec/LowerGoldenTest.cpp --------------------------*- C++ -*-===//
//
// Golden disassembly tests for the ir:: -> bytecode lowering. The exact
// instruction streams for two tiny programs are pinned so accidental
// changes to register assignment, pool deduplication or control-flow
// layout show up as a readable diff rather than a perf mystery.
//
//===----------------------------------------------------------------------===//

#include "exec/Bytecode.h"
#include "exec/Lower.h"

#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::ir;

namespace {

/// DO i = 1, 4:  A(i) = i * 2
Program makeTinyLoop() {
  Program P("TINY");
  P.addVar("A", ScalarKind::Int, {4});
  P.addVar("i", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.doLoop(
      "i", B.lit(1), B.lit(4),
      Builder::body(
          B.assign(B.at("A", B.var("i")), B.mul(B.var("i"), B.lit(2))))));
  return P;
}

/// WHERE (t) X = X + 1 ELSEWHERE X = 0 ENDWHERE  (F90simd dialect).
Program makeTinyWhere() {
  Program P("TINYWHERE");
  P.setDialect(Dialect::F90Simd);
  P.addVar("t", ScalarKind::Bool, {}, Dist::Replicated);
  P.addVar("X", ScalarKind::Int, {}, Dist::Replicated);
  Builder B(P);
  P.body().push_back(
      B.where(B.var("t"),
              Builder::body(B.set("X", B.add(B.var("X"), B.lit(1)))),
              Builder::body(B.set("X", B.lit(0)))));
  return P;
}

TEST(LowerGolden, TinyScalarLoop) {
  exec::Program EP = exec::lower(makeTinyLoop(), exec::Mode::Scalar);
  EXPECT_EQ(exec::disassemble(EP),
            "program 'TINY' mode=scalar regs=3 ctl=5 code=21\n"
            "    0: ld.int             0      0      0      0 ; 1\n"
            "    1: ctl.fromreg        0      0     -1      0\n"
            "    2: ld.int             0      1      0      0 ; 4\n"
            "    3: ctl.fromreg        1      0     -1      0\n"
            "    4: ctl.imm            2      0      0      0 ; 1\n"
            "    5: check.step         2      0      0      0 ; "
            "\"DO i has a step of zero\"\n"
            "    6: ctl.imm            4      2      0      0 ; 0\n"
            "    7: do.test            0      0      0     18\n"
            "    8: loop.iter          0      0      0      0\n"
            "    9: ctl.inc            4      0      0      0\n"
            "   10: set.idx            0      0      0      0 ; i\n"
            "   11: ld.var             1      0      0      0 ; i\n"
            "   12: ld.int             2      3      0      0 ; 2\n"
            "   13: mul.i              0      1      2      0\n"
            "   14: ld.var             1      0      0      0 ; i\n"
            "   15: st.arr             1      0      0      0 ; A\n"
            "   16: do.step            0      0      0      0\n"
            "   17: jmp                0      0      0      7\n"
            "   18: trip.rec           4      0      0      0 ; L0 do i\n"
            "   19: set.idx            0      0      0      0 ; i\n"
            "   20: halt               0      0      0      0\n");
}

TEST(LowerGolden, TinySimdWhere) {
  exec::Program EP = exec::lower(makeTinyWhere(), exec::Mode::Simd);
  EXPECT_EQ(exec::disassemble(EP),
            "program 'TINYWHERE' mode=simd regs=3 ctl=0 code=11\n"
            "    0: ld.var             0      0      0      0 ; t\n"
            "    1: where.push         0      0      0      0\n"
            "    2: ld.var             1      1      0      0 ; X\n"
            "    3: ld.int             2      0      0      0 ; 1\n"
            "    4: add.i              0      1      2      0\n"
            "    5: st.var             1      0      0      0 ; X\n"
            "    6: where.flip         0      0      0      0\n"
            "    7: ld.int             0      1      0      0 ; 0\n"
            "    8: st.var             1      0      0      0 ; X\n"
            "    9: mask.pop           0      0      0      0\n"
            "   10: halt               0      0      0      0\n");
}

/// DO i = 1, 2: IF (X > 0) GOTO 10  (F90simd dialect). Exercises every
/// opcode whose pool-index operands the disassembler symbolizes: the
/// simd DO bounds carry uniformity messages in C (ctl.fromreg), the IF
/// lowers to ubr.false with its violation message in B, and the GOTO
/// lowers to a trap whose A operand is a TrapKind - not a register.
Program makeTinyTrap() {
  Program P("TINYTRAP");
  P.setDialect(Dialect::F90Simd);
  P.addVar("X", ScalarKind::Int, {}, Dist::Replicated);
  P.addVar("i", ScalarKind::Int);
  Builder B(P);
  P.body().push_back(B.doLoop(
      "i", B.lit(1), B.lit(2),
      Builder::body(B.ifStmt(B.gt(B.var("X"), B.lit(0)),
                             Builder::body(B.gotoStmt(10))))));
  return P;
}

TEST(LowerGolden, TinySimdTrapOperandsAreSymbolized) {
  exec::Program EP = exec::lower(makeTinyTrap(), exec::Mode::Simd);
  EXPECT_EQ(
      exec::disassemble(EP),
      "program 'TINYTRAP' mode=simd regs=3 ctl=5 code=22\n"
      "    0: ld.int             0      0      0      0 ; 1\n"
      "    1: ctl.fromreg        0      0      0      0 ; "
      "\"DO lower bound\"\n"
      "    2: ld.int             0      1      0      0 ; 2\n"
      "    3: ctl.fromreg        1      0      1      0 ; "
      "\"DO upper bound\"\n"
      "    4: ctl.imm            2      0      0      0 ; 1\n"
      "    5: check.step         2      2      0      0 ; "
      "\"DO step of zero\"\n"
      "    6: ctl.imm            4      2      0      0 ; 0\n"
      "    7: do.test            0      0      0     19\n"
      "    8: loop.iter          0      0      0      0\n"
      "    9: ctl.inc            4      0      0      0\n"
      "   10: set.idx            0      0      0      0 ; i\n"
      "   11: charge             2      0      0      0\n"
      "   12: ld.var             1      1      0      0 ; X\n"
      "   13: ld.int             2      2      0      0 ; 0\n"
      "   14: cmp.gt             0      1      2      0\n"
      "   15: ubr.false          0      3      0     17 ; "
      "\"IF condition\"\n"
      "   16: trap               8      4      0      0 ; "
      "invalid-program \"GOTO-form control flow is not executable on "
      "the SIMD machine; run the front end's loop recovery first\"\n"
      "   17: do.step            0      0      0      0\n"
      "   18: jmp                0      0      0      7\n"
      "   19: trip.rec           4      0      0      0 ; L0 do i\n"
      "   20: set.idx            0      0      0      0 ; i\n"
      "   21: halt               0      0      0      0\n");
}

TEST(LowerGolden, LiteralPoolsDeduplicate) {
  // The same literal appearing many times lowers to one pool entry.
  Program P("POOLS");
  P.addVar("X", ScalarKind::Int);
  Builder B(P);
  for (int I = 0; I < 4; ++I)
    P.body().push_back(B.set("X", B.add(B.var("X"), B.lit(7))));
  exec::Program EP = exec::lower(P, exec::Mode::Scalar);
  EXPECT_EQ(std::count(EP.IntPool.begin(), EP.IntPool.end(), 7), 1);
}

TEST(LowerGolden, LocationsArePrerendered) {
  // Every instruction carries a location index into a deduplicated
  // string pool; the loop body's statements share one rendered chain.
  exec::Program EP = exec::lower(makeTinyLoop(), exec::Mode::Scalar);
  ASSERT_FALSE(EP.Locs.empty());
  bool SawDoChain = false;
  for (const std::string &L : EP.Locs)
    if (L.find("DO i") != std::string::npos)
      SawDoChain = true;
  EXPECT_TRUE(SawDoChain);
  for (const exec::Instr &I : EP.Code)
    if (I.Loc >= 0) {
      EXPECT_LT(static_cast<size_t>(I.Loc), EP.Locs.size());
    }
}

} // namespace
