//===- tests/bench/BenchReporterTest.cpp -----------------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchReporter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

using namespace simdflat;
using namespace simdflat::bench;

namespace {

/// Builds an argv the reporter can consume (it keeps pointers into the
/// strings, so they must outlive the reporter).
struct Argv {
  std::vector<std::string> Store;
  std::vector<char *> Ptrs;
  explicit Argv(std::initializer_list<const char *> Args) {
    for (const char *A : Args)
      Store.emplace_back(A);
    for (std::string &S : Store)
      Ptrs.push_back(S.data());
  }
  int argc() { return static_cast<int>(Ptrs.size()); }
  char **argv() { return Ptrs.data(); }
};

TEST(BenchReporter, ConsumesOwnFlagsLeavesRest) {
  Argv A({"bench", "--smoke", "--benchmark_filter=x", "--json=/dev/null"});
  BenchReporter Rep("t", A.argc(), A.argv());
  EXPECT_TRUE(Rep.smoke());
  ASSERT_EQ(Rep.argc(), 2);
  EXPECT_STREQ(Rep.argv()[0], "bench");
  EXPECT_STREQ(Rep.argv()[1], "--benchmark_filter=x");
}

TEST(BenchReporter, SmokeSchemaDocument) {
  Argv A({"bench", "--smoke"});
  BenchReporter Rep("mybench", A.argc(), A.argv());
  Rep.meta("grid", int64_t{64});
  Rep.meta("kernel", "EXAMPLE");
  Rep.record("case1", "steps", 100.0, "steps");
  Rep.record("case1", "utilization", 0.75, "frac", /*Gate=*/true,
             Direction::HigherIsBetter);
  Rep.record("case1", "wall_seconds", 0.01, "s", /*Gate=*/false);
  Rep.setPassed(true);

  json::Value Doc = Rep.toJson();
  EXPECT_EQ(Doc.get("schema")->asString(), "simdflat-bench-v1");
  EXPECT_EQ(Doc.get("bench")->asString(), "mybench");
  EXPECT_TRUE(Doc.get("smoke")->asBool());
  EXPECT_TRUE(Doc.get("passed")->asBool());
  EXPECT_EQ(Doc.get("meta")->get("grid")->asInt(), 64);
  EXPECT_EQ(Doc.get("meta")->get("kernel")->asString(), "EXAMPLE");
  ASSERT_EQ(Doc.get("metrics")->size(), 3u);
  const json::Value &M0 = Doc.get("metrics")->at(0);
  EXPECT_EQ(M0.get("case")->asString(), "case1");
  EXPECT_EQ(M0.get("metric")->asString(), "steps");
  EXPECT_DOUBLE_EQ(M0.get("value")->asDouble(), 100.0);
  EXPECT_TRUE(M0.get("gate")->asBool());
  EXPECT_EQ(M0.get("better")->asString(), "lower");
  const json::Value &M1 = Doc.get("metrics")->at(1);
  EXPECT_EQ(M1.get("better")->asString(), "higher");
  const json::Value &M2 = Doc.get("metrics")->at(2);
  EXPECT_FALSE(M2.get("gate")->asBool());
  // The dumped text parses back.
  EXPECT_TRUE(json::Value::parse(Doc.dump(2)).ok());
}

TEST(BenchReporter, RecordRunStatsExpandsStandardSet) {
  Argv A({"bench"});
  BenchReporter Rep("t", A.argc(), A.argv());
  interp::RunStats S;
  S.WorkSteps = 10;
  S.WorkActiveLanes = 30;
  S.WorkTotalLanes = 40;
  Rep.recordRunStats("c", S);
  bool SawSteps = false, SawUtil = false;
  for (const BenchMetric &M : Rep.metrics()) {
    if (M.Metric == "work_steps") {
      SawSteps = true;
      EXPECT_DOUBLE_EQ(M.Value, 10.0);
      EXPECT_TRUE(M.Gate);
      EXPECT_EQ(M.Better, Direction::LowerIsBetter);
    }
    if (M.Metric == "work_utilization") {
      SawUtil = true;
      EXPECT_DOUBLE_EQ(M.Value, 0.75);
      EXPECT_EQ(M.Better, Direction::HigherIsBetter);
    }
  }
  EXPECT_TRUE(SawSteps);
  EXPECT_TRUE(SawUtil);
}

TEST(BenchReporter, FinishWritesFileAndPropagatesExitCode) {
  std::string Path = testing::TempDir() + "/simdflat_benchrep_test.json";
  Argv A({"bench", std::string("--json=" + Path).c_str()});
  BenchReporter Rep("t", A.argc(), A.argv());
  Rep.record("c", "m", 1.0);
  EXPECT_EQ(Rep.finish(0), 0);
  auto Doc = json::parseFile(Path);
  ASSERT_TRUE(Doc.ok()) << Doc.error().render();
  EXPECT_EQ(Doc->get("bench")->asString(), "t");
  // total_wall_seconds rides along ungated.
  bool SawWall = false;
  for (size_t I = 0; I < Doc->get("metrics")->size(); ++I) {
    const json::Value &M = Doc->get("metrics")->at(I);
    if (M.get("metric")->asString() == "total_wall_seconds") {
      SawWall = true;
      EXPECT_FALSE(M.get("gate")->asBool());
    }
  }
  EXPECT_TRUE(SawWall);
  std::remove(Path.c_str());
}

TEST(BenchReporter, FinishFailureExitCodeClearsPassed) {
  Argv A({"bench"});
  BenchReporter Rep("t", A.argc(), A.argv());
  EXPECT_EQ(Rep.finish(1), 1);
  EXPECT_FALSE(Rep.toJson().get("passed")->asBool());
}

TEST(BenchReporter, TimeMedianSmokeClampsRepeats) {
  Argv A({"bench", "--smoke"});
  BenchReporter Rep("t", A.argc(), A.argv());
  int Calls = 0;
  double Sec = Rep.timeSecondsMedian([&] { ++Calls; }, /*Warmup=*/3,
                                     /*Repeats=*/9);
  // Smoke mode: at most one warmup plus exactly one timed call.
  EXPECT_EQ(Calls, 2);
  EXPECT_GE(Sec, 0.0);
}

} // namespace
