//===- tests/serve/BreakerTest.cpp -----------------------------*- C++ -*-===//
//
// The count-based circuit breaker state machine: threshold opening,
// open-budget fallback serving, half-open probes, and per-key
// independence. Deterministic by construction (no clocks).
//
//===----------------------------------------------------------------------===//

#include "serve/CircuitBreaker.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace simdflat;
using namespace simdflat::serve;

namespace {

using State = CircuitBreaker::State;

CircuitBreaker::Options smallOptions() {
  CircuitBreaker::Options O;
  O.FailureThreshold = 2;
  O.OpenBudget = 3;
  return O;
}

TEST(CircuitBreaker, ClosedByDefault) {
  CircuitBreaker B;
  EXPECT_EQ(B.peek(1), State::Closed);
  EXPECT_EQ(B.admit(1), State::Closed);
  EXPECT_EQ(B.stats().Opens, 0);
}

TEST(CircuitBreaker, OpensAtThreshold) {
  CircuitBreaker B(smallOptions());
  B.admit(1);
  B.recordFailure(1);
  EXPECT_EQ(B.peek(1), State::Closed) << "one failure is below threshold";
  B.admit(1);
  B.recordFailure(1);
  EXPECT_EQ(B.peek(1), State::Open);
  EXPECT_EQ(B.stats().Opens, 1);
}

TEST(CircuitBreaker, SuccessResetsConsecutiveFailures) {
  CircuitBreaker B(smallOptions());
  B.admit(1);
  B.recordFailure(1);
  B.admit(1);
  B.recordSuccess(1); // breaks the streak
  B.admit(1);
  B.recordFailure(1);
  EXPECT_EQ(B.peek(1), State::Closed)
      << "non-consecutive failures must not open the breaker";
}

TEST(CircuitBreaker, OpenServesFallbackThenProbes) {
  CircuitBreaker B(smallOptions());
  for (int I = 0; I < 2; ++I) {
    B.admit(1);
    B.recordFailure(1);
  }
  // Three fallback serves (the open budget), then the next admit is the
  // half-open probe.
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(B.admit(1), State::Open) << "budget serve " << I;
  EXPECT_EQ(B.admit(1), State::HalfOpen);
  EXPECT_EQ(B.stats().Probes, 1);
}

TEST(CircuitBreaker, ProbeSuccessCloses) {
  CircuitBreaker B(smallOptions());
  for (int I = 0; I < 2; ++I) {
    B.admit(1);
    B.recordFailure(1);
  }
  for (int I = 0; I < 3; ++I)
    B.admit(1);
  ASSERT_EQ(B.admit(1), State::HalfOpen);
  B.recordSuccess(1);
  EXPECT_EQ(B.peek(1), State::Closed);
  EXPECT_EQ(B.admit(1), State::Closed);
}

TEST(CircuitBreaker, ProbeFailureReopensWithFreshBudget) {
  CircuitBreaker B(smallOptions());
  for (int I = 0; I < 2; ++I) {
    B.admit(1);
    B.recordFailure(1);
  }
  for (int I = 0; I < 3; ++I)
    B.admit(1);
  ASSERT_EQ(B.admit(1), State::HalfOpen);
  B.recordFailure(1);
  EXPECT_EQ(B.peek(1), State::Open);
  // A full fresh budget of fallback serves before the next probe.
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(B.admit(1), State::Open) << "refilled serve " << I;
  EXPECT_EQ(B.admit(1), State::HalfOpen);
  EXPECT_EQ(B.stats().Opens, 2);
  EXPECT_EQ(B.stats().Probes, 2);
}

TEST(CircuitBreaker, KeysAreIndependent) {
  CircuitBreaker B(smallOptions());
  for (int I = 0; I < 2; ++I) {
    B.admit(1);
    B.recordFailure(1);
  }
  EXPECT_EQ(B.peek(1), State::Open);
  EXPECT_EQ(B.peek(2), State::Closed);
  EXPECT_EQ(B.admit(2), State::Closed)
      << "one program's quarantine must not affect another's";
}

TEST(CircuitBreaker, CooldownReprobesSparseTraffic) {
  // The sparse-traffic fix: with a large open budget and rare requests,
  // a count-only breaker would stay open forever. The cooldown converts
  // an open breaker into a half-open probe once enough (injected) time
  // has passed, even with budget to spare.
  int64_t Now = 0;
  CircuitBreaker::Options O = smallOptions();
  O.OpenBudget = 1'000'000; // counts alone would never probe here
  O.CooldownMicros = 500;
  O.NowMicros = [&Now] { return Now; };
  CircuitBreaker B(O);

  for (int I = 0; I < 2; ++I) {
    B.admit(1);
    B.recordFailure(1);
  }
  ASSERT_EQ(B.peek(1), State::Open);

  Now = 499;
  EXPECT_EQ(B.admit(1), State::Open) << "cooldown fired one tick early";
  Now = 500;
  EXPECT_EQ(B.admit(1), State::HalfOpen)
      << "elapsed cooldown must convert the admit into a probe";
  EXPECT_EQ(B.stats().Probes, 1);

  // A failed probe re-opens AND re-anchors the cooldown at the failure
  // time, so the next probe is a full cooldown away.
  B.recordFailure(1);
  ASSERT_EQ(B.peek(1), State::Open);
  Now = 999;
  EXPECT_EQ(B.admit(1), State::Open)
      << "cooldown must restart from the reopen, not the first open";
  Now = 1000;
  EXPECT_EQ(B.admit(1), State::HalfOpen);
  B.recordSuccess(1);
  EXPECT_EQ(B.peek(1), State::Closed);
}

TEST(CircuitBreaker, ZeroCooldownKeepsCountOnlyBehaviour) {
  // Legacy configurations (CooldownMicros = 0) must never probe on
  // time, only on spent budget - even with a clock that jumps far
  // ahead.
  int64_t Now = 0;
  CircuitBreaker::Options O = smallOptions();
  O.NowMicros = [&Now] { return Now; };
  CircuitBreaker B(O);
  for (int I = 0; I < 2; ++I) {
    B.admit(1);
    B.recordFailure(1);
  }
  Now = 1'000'000'000;
  EXPECT_EQ(B.admit(1), State::Open)
      << "a zero cooldown must not re-probe on time";
}

TEST(CircuitBreaker, StateNames) {
  EXPECT_STREQ(breakerStateName(State::Closed), "closed");
  EXPECT_STREQ(breakerStateName(State::Open), "open");
  EXPECT_STREQ(breakerStateName(State::HalfOpen), "half-open");
}

TEST(CircuitBreaker, StateNamesAreExhaustive) {
  // Every enumerator renders to a distinct, non-empty name: adding a
  // State without extending breakerStateName fails to compile (the
  // switch has no default), and this loop pins the rendered set.
  const State All[] = {State::Closed, State::Open, State::HalfOpen};
  std::vector<std::string> Seen;
  for (State St : All) {
    const char *Name = breakerStateName(St);
    ASSERT_NE(Name, nullptr);
    EXPECT_FALSE(std::string(Name).empty());
    for (const std::string &Prev : Seen)
      EXPECT_NE(Prev, Name) << "two states share a name";
    Seen.push_back(Name);
  }
}

} // namespace
