//===- tests/serve/BreakerTest.cpp -----------------------------*- C++ -*-===//
//
// The count-based circuit breaker state machine: threshold opening,
// open-budget fallback serving, half-open probes, and per-key
// independence. Deterministic by construction (no clocks).
//
//===----------------------------------------------------------------------===//

#include "serve/CircuitBreaker.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::serve;

namespace {

using State = CircuitBreaker::State;

CircuitBreaker::Options smallOptions() {
  CircuitBreaker::Options O;
  O.FailureThreshold = 2;
  O.OpenBudget = 3;
  return O;
}

TEST(CircuitBreaker, ClosedByDefault) {
  CircuitBreaker B;
  EXPECT_EQ(B.peek(1), State::Closed);
  EXPECT_EQ(B.admit(1), State::Closed);
  EXPECT_EQ(B.stats().Opens, 0);
}

TEST(CircuitBreaker, OpensAtThreshold) {
  CircuitBreaker B(smallOptions());
  B.admit(1);
  B.recordFailure(1);
  EXPECT_EQ(B.peek(1), State::Closed) << "one failure is below threshold";
  B.admit(1);
  B.recordFailure(1);
  EXPECT_EQ(B.peek(1), State::Open);
  EXPECT_EQ(B.stats().Opens, 1);
}

TEST(CircuitBreaker, SuccessResetsConsecutiveFailures) {
  CircuitBreaker B(smallOptions());
  B.admit(1);
  B.recordFailure(1);
  B.admit(1);
  B.recordSuccess(1); // breaks the streak
  B.admit(1);
  B.recordFailure(1);
  EXPECT_EQ(B.peek(1), State::Closed)
      << "non-consecutive failures must not open the breaker";
}

TEST(CircuitBreaker, OpenServesFallbackThenProbes) {
  CircuitBreaker B(smallOptions());
  for (int I = 0; I < 2; ++I) {
    B.admit(1);
    B.recordFailure(1);
  }
  // Three fallback serves (the open budget), then the next admit is the
  // half-open probe.
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(B.admit(1), State::Open) << "budget serve " << I;
  EXPECT_EQ(B.admit(1), State::HalfOpen);
  EXPECT_EQ(B.stats().Probes, 1);
}

TEST(CircuitBreaker, ProbeSuccessCloses) {
  CircuitBreaker B(smallOptions());
  for (int I = 0; I < 2; ++I) {
    B.admit(1);
    B.recordFailure(1);
  }
  for (int I = 0; I < 3; ++I)
    B.admit(1);
  ASSERT_EQ(B.admit(1), State::HalfOpen);
  B.recordSuccess(1);
  EXPECT_EQ(B.peek(1), State::Closed);
  EXPECT_EQ(B.admit(1), State::Closed);
}

TEST(CircuitBreaker, ProbeFailureReopensWithFreshBudget) {
  CircuitBreaker B(smallOptions());
  for (int I = 0; I < 2; ++I) {
    B.admit(1);
    B.recordFailure(1);
  }
  for (int I = 0; I < 3; ++I)
    B.admit(1);
  ASSERT_EQ(B.admit(1), State::HalfOpen);
  B.recordFailure(1);
  EXPECT_EQ(B.peek(1), State::Open);
  // A full fresh budget of fallback serves before the next probe.
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(B.admit(1), State::Open) << "refilled serve " << I;
  EXPECT_EQ(B.admit(1), State::HalfOpen);
  EXPECT_EQ(B.stats().Opens, 2);
  EXPECT_EQ(B.stats().Probes, 2);
}

TEST(CircuitBreaker, KeysAreIndependent) {
  CircuitBreaker B(smallOptions());
  for (int I = 0; I < 2; ++I) {
    B.admit(1);
    B.recordFailure(1);
  }
  EXPECT_EQ(B.peek(1), State::Open);
  EXPECT_EQ(B.peek(2), State::Closed);
  EXPECT_EQ(B.admit(2), State::Closed)
      << "one program's quarantine must not affect another's";
}

TEST(CircuitBreaker, StateNames) {
  EXPECT_STREQ(breakerStateName(State::Closed), "closed");
  EXPECT_STREQ(breakerStateName(State::Open), "open");
  EXPECT_STREQ(breakerStateName(State::HalfOpen), "half-open");
}

} // namespace
