//===- tests/serve/TenantRegistryTest.cpp ----------------------*- C++ -*-===//
//
// The tenancy building blocks in isolation, under a hand-stepped
// virtual-time clock: token-bucket admission (request rate + fuel rate
// + in-flight), refusal pricing (refill-time hints, permanent
// refusals), the per-tenant conservation laws, and the stride-scheduled
// FairQueue the Server dequeues from.
//
//===----------------------------------------------------------------------===//

#include "serve/FairQueue.h"
#include "serve/TenantRegistry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace simdflat;
using namespace simdflat::serve;

namespace {

/// Hand-stepped nanosecond clock: tests advance time explicitly, so
/// every refill is an arithmetic fact, not a race.
struct ManualClock {
  int64_t Nanos = 0;
  ClockFn fn() {
    return [this] { return Nanos; };
  }
  void advanceMs(int64_t Ms) { Nanos += Ms * 1'000'000; }
};

TEST(TenantRegistry, FrozenClockAdmitsExactlyTheBurst) {
  ManualClock Clk;
  TenantQuota Q;
  Q.RatePerSec = 1;
  Q.Burst = 3;
  TenantRegistry Reg(Q, Clk.fn());

  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(Reg.tryAdmit("t", 0).Admit) << "burst admission " << I;
  TenantRegistry::Decision D = Reg.tryAdmit("t", 0);
  EXPECT_FALSE(D.Admit);
  EXPECT_FALSE(D.Permanent);
  EXPECT_NE(D.Reason.find("request-rate"), std::string::npos) << D.Reason;
  // One token at 1/s is 1000ms away; the hint prices it exactly.
  EXPECT_EQ(D.RetryAfterMs, 1000);
}

TEST(TenantRegistry, SteppingTheClockRefillsTheBucket) {
  ManualClock Clk;
  TenantQuota Q;
  Q.RatePerSec = 2; // one token per 500ms
  Q.Burst = 1;
  TenantRegistry Reg(Q, Clk.fn());

  EXPECT_TRUE(Reg.tryAdmit("t", 0).Admit);
  EXPECT_FALSE(Reg.tryAdmit("t", 0).Admit);
  Clk.advanceMs(499);
  EXPECT_FALSE(Reg.tryAdmit("t", 0).Admit) << "refill arrived early";
  Clk.advanceMs(1);
  EXPECT_TRUE(Reg.tryAdmit("t", 0).Admit) << "full refill not credited";
  // Burst caps accumulation: a long idle stretch still buys one token.
  Clk.advanceMs(60'000);
  EXPECT_TRUE(Reg.tryAdmit("t", 0).Admit);
  EXPECT_FALSE(Reg.tryAdmit("t", 0).Admit);
}

TEST(TenantRegistry, InFlightCapReleasesWithTheSlot) {
  ManualClock Clk;
  TenantQuota Q;
  Q.MaxInFlight = 2;
  TenantRegistry Reg(Q, Clk.fn());

  EXPECT_TRUE(Reg.tryAdmit("t", 0).Admit);
  EXPECT_TRUE(Reg.tryAdmit("t", 0).Admit);
  TenantRegistry::Decision D = Reg.tryAdmit("t", 0);
  EXPECT_FALSE(D.Admit);
  EXPECT_NE(D.Reason.find("in-flight"), std::string::npos) << D.Reason;
  // The in-flight cap has no refill clock to price; the server applies
  // its own floor hint.
  EXPECT_EQ(D.RetryAfterMs, 0);
  EXPECT_EQ(Reg.inFlight("t"), 2);

  Reg.release("t");
  EXPECT_EQ(Reg.inFlight("t"), 1);
  EXPECT_TRUE(Reg.tryAdmit("t", 0).Admit);
}

TEST(TenantRegistry, FuelMeteringChargesAndRefuses) {
  ManualClock Clk;
  TenantQuota Q;
  Q.FuelPerSec = 1000; // bucket capacity defaults to FuelPerSec
  TenantRegistry Reg(Q, Clk.fn());

  // 1000 fuel tokens, frozen: 400 + 400 fit, the third 400 does not.
  EXPECT_TRUE(Reg.tryAdmit("t", 400).Admit);
  EXPECT_TRUE(Reg.tryAdmit("t", 400).Admit);
  TenantRegistry::Decision D = Reg.tryAdmit("t", 400);
  EXPECT_FALSE(D.Admit);
  EXPECT_FALSE(D.Permanent);
  // 200 of 400 tokens remain; the 200-token deficit at 1000/s is 200ms.
  EXPECT_EQ(D.RetryAfterMs, 200);
  Clk.advanceMs(200);
  EXPECT_TRUE(Reg.tryAdmit("t", 400).Admit);
}

TEST(TenantRegistry, UnservableFuelDemandsRefusePermanently) {
  ManualClock Clk;
  TenantQuota Q;
  Q.FuelPerSec = 1000;
  Q.FuelBurst = 500;
  TenantRegistry Reg(Q, Clk.fn());

  // No declared fuel on a metered tenant: unaccountable, refuse.
  TenantRegistry::Decision NoFuel = Reg.tryAdmit("t", 0);
  EXPECT_FALSE(NoFuel.Admit);
  EXPECT_TRUE(NoFuel.Permanent);
  EXPECT_EQ(NoFuel.RetryAfterMs, 0);

  // Demand above the bucket capacity: no amount of waiting helps.
  TenantRegistry::Decision TooBig = Reg.tryAdmit("t", 501);
  EXPECT_FALSE(TooBig.Admit);
  EXPECT_TRUE(TooBig.Permanent);
  EXPECT_EQ(TooBig.RetryAfterMs, 0);

  // A refusal charges nothing: the full burst is still spendable.
  EXPECT_TRUE(Reg.tryAdmit("t", 500).Admit);
}

TEST(TenantRegistry, QuotaChangeReprimesTheBuckets) {
  ManualClock Clk;
  TenantQuota Small;
  Small.RatePerSec = 1;
  Small.Burst = 1;
  TenantRegistry Reg(Small, Clk.fn());
  EXPECT_TRUE(Reg.tryAdmit("t", 0).Admit);
  EXPECT_FALSE(Reg.tryAdmit("t", 0).Admit);

  TenantQuota Big;
  Big.RatePerSec = 1;
  Big.Burst = 4;
  Reg.setQuota("t", Big);
  for (int I = 0; I < 4; ++I)
    EXPECT_TRUE(Reg.tryAdmit("t", 0).Admit) << "re-primed admission " << I;
  EXPECT_FALSE(Reg.tryAdmit("t", 0).Admit);
}

TEST(TenantRegistry, TenantsAreIsolated) {
  ManualClock Clk;
  TenantQuota Q;
  Q.RatePerSec = 1;
  Q.Burst = 2;
  TenantRegistry Reg(Q, Clk.fn());

  EXPECT_TRUE(Reg.tryAdmit("a", 0).Admit);
  EXPECT_TRUE(Reg.tryAdmit("a", 0).Admit);
  EXPECT_FALSE(Reg.tryAdmit("a", 0).Admit);
  // Draining "a"'s bucket spent nothing of "b"'s.
  EXPECT_TRUE(Reg.tryAdmit("b", 0).Admit);
  EXPECT_TRUE(Reg.tryAdmit("b", 0).Admit);
  EXPECT_FALSE(Reg.tryAdmit("b", 0).Admit);
}

TEST(TenantRegistry, ConservationLawsHoldPerTenant) {
  TenantRegistry Reg;
  Reg.countSubmitted("t");
  Reg.countSubmitted("t");
  Reg.countSubmitted("t");
  Reg.countAdmitted("t");
  Reg.countAdmitted("t");
  Reg.countOutcome("t", Outcome::Shed, /*AfterAdmission=*/false);
  Reg.countOutcome("t", Outcome::Served, /*AfterAdmission=*/true);
  Reg.countOutcome("t", Outcome::Shed, /*AfterAdmission=*/true);

  TenantStats S = Reg.statsFor("t");
  EXPECT_EQ(S.Submitted, 3);
  EXPECT_EQ(S.Admitted, 2);
  EXPECT_EQ(S.ShedAtAdmission, 1);
  EXPECT_EQ(S.ShedInService, 1);
  EXPECT_EQ(S.shed(), 2);
  EXPECT_TRUE(S.consistent());
  EXPECT_TRUE(Reg.consistent());

  // Breaking either law is detected: an outcome with no admission.
  Reg.countOutcome("t", Outcome::Served, /*AfterAdmission=*/true);
  EXPECT_FALSE(Reg.statsFor("t").consistent());
  EXPECT_FALSE(Reg.consistent());
}

TEST(FairQueue, RoundRobinsEqualWeights) {
  FairQueue<int> Q;
  for (int I = 0; I < 3; ++I) {
    Q.push("a", 1, I * 10);
    Q.push("b", 1, I * 10 + 1);
  }
  // Equal weights alternate (ties break lexicographically), so neither
  // tenant's backlog runs before the other's.
  std::vector<std::string> Order;
  while (!Q.empty())
    Order.push_back(Q.pop().first);
  EXPECT_EQ(Order,
            (std::vector<std::string>{"a", "b", "a", "b", "a", "b"}));
}

TEST(FairQueue, WeightsProportionTheDequeueRate) {
  FairQueue<int> Q;
  for (int I = 0; I < 12; ++I) {
    Q.push("heavy", 3, I);
    Q.push("light", 1, I);
  }
  // In any window of 4 dequeues, weight-3 gets ~3 and weight-1 gets ~1.
  int Heavy = 0, Light = 0;
  for (int I = 0; I < 8; ++I) {
    auto [Tenant, V] = Q.pop();
    (Tenant == "heavy" ? Heavy : Light) += 1;
  }
  EXPECT_EQ(Heavy, 6);
  EXPECT_EQ(Light, 2);
}

TEST(FairQueue, FifoWithinOneTenant) {
  FairQueue<int> Q;
  for (int I = 0; I < 5; ++I)
    Q.push("t", 1, I);
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(Q.pop().second, I);
}

TEST(FairQueue, ReactivatedTenantDoesNotBankIdleCredit) {
  FairQueue<int> Q;
  // "b" drains fully while "a" keeps a backlog; when "b" returns, its
  // pass aligns to the active minimum instead of replaying the idle
  // stretch as burst credit.
  for (int I = 0; I < 6; ++I)
    Q.push("a", 1, I);
  Q.push("b", 1, 100);
  (void)Q.pop();
  (void)Q.pop(); // both lanes sampled once
  (void)Q.pop();
  (void)Q.pop(); // "b" is now empty, "a" keeps going
  Q.push("b", 1, 101);
  int BRuns = 0;
  std::string Prev;
  for (int I = 0; I < 4 && !Q.empty(); ++I) {
    auto [Tenant, V] = Q.pop();
    if (Tenant == "b")
      ++BRuns;
  }
  // "b" gets its fair alternating share (1-2 of 4), not a monopoly.
  EXPECT_GE(BRuns, 1);
  EXPECT_LE(BRuns, 2);
}

TEST(FairQueue, DrainAllEmptiesInFairOrder) {
  FairQueue<int> Q;
  Q.push("a", 1, 1);
  Q.push("b", 1, 2);
  Q.push("a", 1, 3);
  std::vector<std::string> Order;
  Q.drainAll([&](const std::string &Tenant, int &&V) {
    Order.push_back(Tenant + ":" + std::to_string(V));
  });
  EXPECT_TRUE(Q.empty());
  EXPECT_EQ(Q.size(), 0u);
  EXPECT_EQ(Order,
            (std::vector<std::string>{"a:1", "b:2", "a:3"}));
}

TEST(FairQueue, SizeOfTracksPerTenantBacklog) {
  FairQueue<int> Q;
  Q.push("a", 1, 1);
  Q.push("a", 1, 2);
  Q.push("b", 1, 3);
  EXPECT_EQ(Q.size(), 3u);
  EXPECT_EQ(Q.sizeOf("a"), 2u);
  EXPECT_EQ(Q.sizeOf("b"), 1u);
  EXPECT_EQ(Q.sizeOf("nobody"), 0u);
  (void)Q.pop();
  EXPECT_EQ(Q.size(), 2u);
}

} // namespace
