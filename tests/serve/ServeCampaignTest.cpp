//===- tests/serve/ServeCampaignTest.cpp -----------------------*- C++ -*-===//
//
// Runs the full serving fault campaign (ISSUE acceptance: injected
// compile failures, fuel/deadline exhaustion, mid-flight cache
// eviction, queue saturation at 2x capacity) under ctest and asserts
// zero crashes/hangs plus exact served+trapped+shed+failed accounting.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ServeCampaign.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::fuzz;

namespace {

TEST(ServeCampaign, AllPhasesHoldTheRobustnessContract) {
  ServeCampaignOptions Opts;
  Opts.BaseSeed = 1;
  Opts.Count = 30; // 5 of each mixed category
  ServeCampaignResult R = runServeCampaign(Opts);
  for (const std::string &F : R.Failures)
    ADD_FAILURE() << F;
  EXPECT_TRUE(R.ok());
  EXPECT_GT(R.Submitted, 0);
  // Zero-loss accounting across every phase.
  EXPECT_EQ(R.Served + R.Trapped + R.Shed + R.CompileErrors, R.Submitted);
  // Each phase contributed: something was served, something shed
  // (saturation), something rejected (hostile sources).
  EXPECT_GT(R.Served, 0);
  EXPECT_GT(R.Shed, 0);
  EXPECT_GT(R.CompileErrors, 0);
  EXPECT_GT(R.Trapped, 0);
}

TEST(ServeCampaign, DeterministicAcrossReruns) {
  // Same seed, same request mix: the campaign is replayable, so a CI
  // failure reproduces locally. (Timing-dependent outcome *splits* -
  // served vs shed - may differ; the contract counters may not.)
  ServeCampaignOptions Opts;
  Opts.Count = 12;
  ServeCampaignResult A = runServeCampaign(Opts);
  ServeCampaignResult B = runServeCampaign(Opts);
  EXPECT_TRUE(A.ok());
  EXPECT_TRUE(B.ok());
  EXPECT_EQ(A.Submitted, B.Submitted);
}

} // namespace
