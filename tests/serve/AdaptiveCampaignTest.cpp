//===- tests/serve/AdaptiveCampaignTest.cpp --------------------*- C++ -*-===//
//
// Runs the adaptive-strategy fault campaign (ISSUE acceptance: drifting
// trip distributions mid-stream, strategy flips under cache pressure
// and mid-flight eviction, poisoned-primary fallback) under ctest and
// asserts the adaptivity contract: bit-exact results across every
// strategy flip, real respecializations on drift, honest strategy tags,
// and conserved accounting.
//
//===----------------------------------------------------------------------===//

#include "fuzz/AdaptiveCampaign.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace simdflat;
using namespace simdflat::fuzz;

namespace {

TEST(AdaptiveCampaign, AllPhasesHoldTheAdaptivityContract) {
  AdaptiveCampaignOptions Opts;
  Opts.BaseSeed = 1;
  Opts.Count = 12;
  AdaptiveCampaignResult R = runAdaptiveCampaign(Opts);
  for (const std::string &F : R.Failures)
    ADD_FAILURE() << F;
  EXPECT_TRUE(R.ok());
  EXPECT_GT(R.Submitted, 0);
  // Zero-loss accounting across every phase.
  EXPECT_EQ(R.Served + R.Trapped + R.Shed + R.CompileErrors, R.Submitted);
  // The feedback loop actually moved: decisions fired and the
  // distribution shift forced at least one strategy change.
  EXPECT_GE(R.Decisions, 2);
  EXPECT_GE(R.Respecializations, 1);
  // Both schedules the drift regimes favor showed up on the wire.
  EXPECT_NE(std::find(R.StrategiesSeen.begin(), R.StrategiesSeen.end(),
                      "unflattened"),
            R.StrategiesSeen.end());
  EXPECT_NE(std::find(R.StrategiesSeen.begin(), R.StrategiesSeen.end(),
                      "coalesced"),
            R.StrategiesSeen.end());
}

TEST(AdaptiveCampaign, DeterministicAcrossReruns) {
  // Same seed, same trip schedule: a CI failure reproduces locally.
  // The drift phase is single-worker and sequential, so even the
  // decision/respecialization counters must match exactly.
  AdaptiveCampaignOptions Opts;
  Opts.Count = 8;
  AdaptiveCampaignResult A = runAdaptiveCampaign(Opts);
  AdaptiveCampaignResult B = runAdaptiveCampaign(Opts);
  EXPECT_TRUE(A.ok());
  EXPECT_TRUE(B.ok());
  EXPECT_EQ(A.Submitted, B.Submitted);
  EXPECT_EQ(A.StrategiesSeen, B.StrategiesSeen);
}

} // namespace
