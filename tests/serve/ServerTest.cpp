//===- tests/serve/ServerTest.cpp ------------------------------*- C++ -*-===//
//
// The serving core's robustness contract, request by request: every
// submission resolves to exactly one structured reply (served, trapped,
// shed, or compile-error), admission control sheds deterministically,
// budgets are enforced end to end, compile failures retry / degrade to
// the fallback, and the counters partition the submissions. The
// ConcurrentSoak test at the bottom is the TSan target.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "codegen/NativeEngine.h"

#include "interp/Trap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

using namespace simdflat;
using namespace simdflat::serve;

namespace {

constexpr const char *ExampleSource =
    "PROGRAM EX\n"
    "INTEGER K\n"
    "DISTRIBUTED INTEGER L(8)\n"
    "DISTRIBUTED INTEGER X(8, 4)\n"
    "INTEGER i\n"
    "INTEGER j\n"
    "BEGIN\n"
    "  DOALL i = 1, K\n"
    "    DO j = 1, L(i)\n"
    "      X(i, j) = i * j\n"
    "    ENDDO\n"
    "  ENDDO\n"
    "END\n";

constexpr const char *ScalarSource = "PROGRAM REPEAT\n"
                                     "INTEGER a\n"
                                     "INTEGER b\n"
                                     "BEGIN\n"
                                     "  b = a * 3 + 1\n"
                                     "END\n";

Request exampleRequest() {
  Request R;
  R.Source = ExampleSource;
  R.Ints["K"] = 8;
  R.IntArrays["L"] = {4, 1, 2, 1, 1, 3, 1, 3};
  R.Lanes = 4;
  R.Fuel = 100'000;
  return R;
}

Reply getReply(std::future<Reply> F) {
  // Generous bound: a miss here is a hang, the one thing the server
  // must never do.
  EXPECT_EQ(F.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "reply never arrived";
  return F.get();
}

void expectConsistent(const Server &S) {
  ServerStats St = S.stats();
  EXPECT_TRUE(St.consistent())
      << St.Served << " served + " << St.Trapped << " trapped + "
      << St.Shed << " shed + " << St.CompileErrors
      << " compile-errors != " << St.Submitted << " submitted";
}

TEST(Server, ServesAndReturnsRequestedArrays) {
  Server S;
  Request R = exampleRequest();
  R.Id = 42;
  R.WantArrays = true;
  Reply Rep = getReply(S.submit(std::move(R)));
  EXPECT_EQ(Rep.Id, 42u);
  ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
  EXPECT_GT(Rep.Tele.FuelSpent, 0);
  EXPECT_EQ(Rep.Tele.Engine, "bytecode");
  EXPECT_FALSE(Rep.Tele.CacheHit);

  // Only arrays the *submitted* program declares come back - pipeline
  // temporaries stay hidden.
  ASSERT_EQ(Rep.IntArrays.count("X"), 1u);
  ASSERT_EQ(Rep.IntArrays.count("L"), 1u);
  EXPECT_EQ(Rep.IntArrays.size(), 2u);
  // X(i, j) = i * j for j <= L(i): the element sum is layout-agnostic.
  //   sum_i i * tri(L(i)) = 1*10+2*1+3*3+4*1+5*1+6*6+7*1+8*6 = 121
  const std::vector<int64_t> &X = Rep.IntArrays["X"];
  EXPECT_EQ(X.size(), 32u);
  EXPECT_EQ(std::accumulate(X.begin(), X.end(), int64_t{0}), 121);
  expectConsistent(S);
}

TEST(Server, RepeatIsACacheHit) {
  ServerOptions SO;
  SO.Workers = 1; // serialize so the second request sees the cache
  Server S(SO);
  Reply First = getReply(S.submit(exampleRequest()));
  ASSERT_EQ(First.Out, Outcome::Served) << First.Error;
  EXPECT_FALSE(First.Tele.CacheHit);
  Reply Second = getReply(S.submit(exampleRequest()));
  ASSERT_EQ(Second.Out, Outcome::Served) << Second.Error;
  EXPECT_TRUE(Second.Tele.CacheHit);
  EXPECT_EQ(Second.Tele.CompileAttempts, 0);
  ServerStats St = S.stats();
  EXPECT_EQ(St.CacheHits, 1);
  EXPECT_EQ(St.CacheMisses, 1);
  expectConsistent(S);
}

TEST(Server, ParseFailureIsCompileError) {
  Server S;
  Request R;
  R.Source = "PROGRAM BROKEN\nBEGIN\n  THIS IS NOT FORTRAN\nEND\n";
  Reply Rep = getReply(S.submit(std::move(R)));
  EXPECT_EQ(Rep.Out, Outcome::CompileError);
  EXPECT_FALSE(Rep.Error.empty());
  expectConsistent(S);
}

TEST(Server, BadInputsAreCompileErrors) {
  Server S;
  // Undeclared scalar.
  Request R1 = exampleRequest();
  R1.Ints["nosuch"] = 1;
  Reply Rep1 = getReply(S.submit(std::move(R1)));
  EXPECT_EQ(Rep1.Out, Outcome::CompileError);
  EXPECT_NE(Rep1.Error.find("not declared"), std::string::npos)
      << Rep1.Error;
  // Mis-sized array.
  Request R2 = exampleRequest();
  R2.IntArrays["L"] = {1, 2};
  Reply Rep2 = getReply(S.submit(std::move(R2)));
  EXPECT_EQ(Rep2.Out, Outcome::CompileError);
  EXPECT_NE(Rep2.Error.find("elements"), std::string::npos) << Rep2.Error;
  expectConsistent(S);
}

TEST(Server, ProgramTrapIsATrappedReply) {
  Server S;
  Request R;
  R.Source = "PROGRAM OOB\n"
             "DISTRIBUTED INTEGER A(4)\n"
             "INTEGER i\n"
             "BEGIN\n"
             "  DOALL i = 1, 4\n"
             "    A(i + 4) = i\n"
             "  ENDDO\n"
             "END\n";
  R.Lanes = 4;
  Reply Rep = getReply(S.submit(std::move(R)));
  ASSERT_EQ(Rep.Out, Outcome::Trapped) << Rep.Error;
  ASSERT_TRUE(Rep.T.has_value());
  EXPECT_EQ(Rep.T->Kind, interp::TrapKind::OutOfBounds);
  expectConsistent(S);
}

TEST(Server, FuelExhaustionTraps) {
  Server S;
  Request R;
  R.Source = ScalarSource;
  R.Ints["a"] = 7;
  R.Lanes = 1;
  R.Fuel = 1;
  Reply Rep = getReply(S.submit(std::move(R)));
  ASSERT_EQ(Rep.Out, Outcome::Trapped) << Rep.Error;
  ASSERT_TRUE(Rep.T.has_value());
  EXPECT_EQ(Rep.T->Kind, interp::TrapKind::FuelExhausted);
  expectConsistent(S);
}

TEST(Server, DeadlineExpiresMidRun) {
  Server S;
  Request R;
  R.Source = "PROGRAM SPIN\n"
             "INTEGER i\n"
             "INTEGER s\n"
             "BEGIN\n"
             "  s = 0\n"
             "  DO i = 1, 50000000\n"
             "    s = s + i\n"
             "  ENDDO\n"
             "END\n";
  R.Lanes = 1;
  R.DeadlineMs = 30; // far less than 5e7 interpreted iterations take
  Reply Rep = getReply(S.submit(std::move(R)));
  ASSERT_EQ(Rep.Out, Outcome::Trapped) << Rep.Error;
  ASSERT_TRUE(Rep.T.has_value());
  EXPECT_EQ(Rep.T->Kind, interp::TrapKind::DeadlineExpired);
  expectConsistent(S);
}

TEST(Server, OverBudgetRequestsShedAtSubmitWithNoRetryHint) {
  ServerOptions SO;
  SO.MaxFuel = 1000;
  Server S(SO);
  // Fuel beyond the cap.
  Request R1 = exampleRequest();
  R1.Fuel = 2000;
  Reply Rep1 = getReply(S.submit(std::move(R1)));
  EXPECT_EQ(Rep1.Out, Outcome::Shed);
  EXPECT_EQ(Rep1.RetryAfterMs, 0) << "retrying an over-budget request is "
                                     "pointless";
  // Unlimited fuel is over budget too when the server enforces a cap.
  Request R2 = exampleRequest();
  R2.Fuel = 0;
  Reply Rep2 = getReply(S.submit(std::move(R2)));
  EXPECT_EQ(Rep2.Out, Outcome::Shed);
  // Lanes beyond the cap.
  Request R3 = exampleRequest();
  R3.Fuel = 1000;
  R3.Lanes = SO.MaxLanes + 1;
  Reply Rep3 = getReply(S.submit(std::move(R3)));
  EXPECT_EQ(Rep3.Out, Outcome::Shed);
  EXPECT_EQ(S.stats().Shed, 3);
  expectConsistent(S);
}

TEST(Server, OversizedSourceSheds) {
  ServerOptions SO;
  SO.MaxSourceBytes = 64;
  Server S(SO);
  Request R = exampleRequest();
  ASSERT_GT(R.Source.size(), SO.MaxSourceBytes);
  Reply Rep = getReply(S.submit(std::move(R)));
  EXPECT_EQ(Rep.Out, Outcome::Shed);
  EXPECT_EQ(Rep.RetryAfterMs, 0);
  expectConsistent(S);
}

TEST(Server, FullQueueShedsWithRetryHint) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 2;
  SO.RetryAfterMs = 7;
  // Stall the worker so the burst outruns the drain deterministically.
  SO.Faults.WorkerStallMicros = 30'000;
  Server S(SO);
  const int N = 8;
  std::vector<std::future<Reply>> Pending;
  for (int I = 0; I < N; ++I) {
    Request R;
    R.Id = (uint64_t)I;
    R.Source = ScalarSource;
    R.Lanes = 1;
    Pending.push_back(S.submit(std::move(R)));
  }
  int ShedCount = 0;
  for (auto &F : Pending) {
    Reply Rep = getReply(std::move(F));
    if (Rep.Out == Outcome::Shed) {
      ++ShedCount;
      // The hint scales with observed congestion: base * (1 + depth /
      // workers). A queue-full shed always sees depth == capacity == 2
      // and one worker, so the scaled hint is exactly 7 * 3.
      EXPECT_EQ(Rep.RetryAfterMs, 21)
          << "a queue-full shed must carry the depth-scaled retry hint";
    } else {
      EXPECT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
    }
  }
  // Queue (2) + in-flight (1) + submission-race slack; the rest shed.
  EXPECT_GE(ShedCount, N - (int)SO.QueueCapacity - SO.Workers - 2);
  expectConsistent(S);
}

TEST(Server, QueueTimeoutShedsStaleRequests) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 8;
  SO.Faults.WorkerStallMicros = 30'000;
  Server S(SO);
  std::vector<std::future<Reply>> Pending;
  for (int I = 0; I < 3; ++I) {
    Request R;
    R.Id = (uint64_t)I;
    R.Source = ScalarSource;
    R.Lanes = 1;
    R.QueueTimeoutMs = 1; // expires while the worker stalls on request 0
    Pending.push_back(S.submit(std::move(R)));
  }
  int TimedOut = 0;
  for (auto &F : Pending) {
    Reply Rep = getReply(std::move(F));
    if (Rep.Out == Outcome::Shed) {
      ++TimedOut;
      EXPECT_NE(Rep.Error.find("queue budget"), std::string::npos)
          << Rep.Error;
    }
  }
  EXPECT_GE(TimedOut, 1) << "requests behind the stalled worker must "
                            "time out of the queue";
  expectConsistent(S);
}

TEST(Server, TransientCompileFailureRecoversViaRetry) {
  ServerOptions SO;
  SO.Faults.CompileFailures = 1; // first attempt fails, retry succeeds
  SO.CompileRetries = 2;
  SO.BackoffBaseMicros = 10; // keep the test fast
  Server S(SO);
  Reply Rep = getReply(S.submit(exampleRequest()));
  ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
  EXPECT_FALSE(Rep.Tele.Fallback)
      << "the retried primary compile should have succeeded";
  EXPECT_EQ(Rep.Tele.CompileAttempts, 2);
  EXPECT_GE(S.stats().CompileRetries, 1);
  expectConsistent(S);
}

TEST(Server, TotalPrimaryFailureDegradesToFallback) {
  ServerOptions SO;
  SO.Faults.CompileFailures = 1'000'000;
  SO.CompileRetries = 0;
  Server S(SO);
  Reply Rep = getReply(S.submit(exampleRequest()));
  ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
  EXPECT_TRUE(Rep.Tele.Fallback);
  EXPECT_EQ(S.stats().FallbackServes, 1);
  expectConsistent(S);
}

TEST(Server, BreakerOpensUnderRepeatedPrimaryFailure) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.Faults.CompileFailures = 1'000'000;
  SO.CompileRetries = 0;
  SO.Breaker.FailureThreshold = 2;
  SO.Breaker.OpenBudget = 8;
  Server S(SO);
  for (int I = 0; I < 5; ++I) {
    Reply Rep = getReply(S.submit(exampleRequest()));
    ASSERT_EQ(Rep.Out, Outcome::Served)
        << "request " << I << ": " << Rep.Error;
    EXPECT_TRUE(Rep.Tele.Fallback) << "request " << I;
  }
  ServerStats St = S.stats();
  EXPECT_GE(St.BreakerOpens, 1)
      << "consecutive primary failures must open the breaker";
  EXPECT_EQ(St.FallbackServes, 5);
  expectConsistent(S);
}

TEST(Server, ShutdownShedsQueuedRequests) {
  std::vector<std::future<Reply>> Pending;
  {
    ServerOptions SO;
    SO.Workers = 1;
    SO.QueueCapacity = 8;
    SO.Faults.WorkerStallMicros = 20'000;
    Server S(SO);
    for (int I = 0; I < 4; ++I) {
      Request R;
      R.Id = (uint64_t)I;
      R.Source = ScalarSource;
      R.Lanes = 1;
      Pending.push_back(S.submit(std::move(R)));
    }
    // The server is destroyed with requests still queued.
  }
  for (auto &F : Pending) {
    Reply Rep = getReply(std::move(F));
    // Every future resolved: served if the worker got to it, shed with
    // no retry hint otherwise. Nothing is dropped on the floor.
    if (Rep.Out == Outcome::Shed) {
      EXPECT_NE(Rep.Error.find("shutting down"), std::string::npos)
          << Rep.Error;
      EXPECT_EQ(Rep.RetryAfterMs, 0);
    } else {
      EXPECT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
    }
  }
}

void expectTenantsConsistent(const Server &S) {
  ServerStats St = S.stats();
  EXPECT_TRUE(St.tenantsConsistent());
  for (const auto &[Tenant, TS] : St.Tenants)
    EXPECT_TRUE(TS.consistent())
        << "tenant '" << Tenant << "': submitted=" << TS.Submitted
        << " admitted=" << TS.Admitted << " served=" << TS.Served
        << " trapped=" << TS.Trapped
        << " compile-errors=" << TS.CompileErrors
        << " shed-at-admission=" << TS.ShedAtAdmission
        << " shed-in-service=" << TS.ShedInService;
}

Request scalarRequest(const std::string &Tenant, uint64_t Id) {
  Request R;
  R.Id = Id;
  R.Tenant = Tenant;
  R.Source = ScalarSource;
  R.Ints["a"] = (int64_t)(Id % 50);
  R.Lanes = 1;
  R.Fuel = 1000;
  return R;
}

// The acceptance criterion of the tenancy work, as a deterministic
// test: tenant "hot" offers 10x tenant "victim"'s load. The quota
// clock is frozen, so each tenant's token bucket holds exactly its
// burst - the victim (load == burst) must shed NOTHING while the hot
// tenant sheds exactly its overage. No sleeps, no timing assumptions.
TEST(Server, SkewedTenantCannotStarveVictim) {
  constexpr int VictimLoad = 8;
  constexpr int HotLoad = VictimLoad * 10;
  constexpr int HotBurst = 4;

  ServerOptions SO;
  SO.Workers = 2;
  SO.QueueCapacity = 128; // congestion must not mask quota decisions
  SO.QuotaClock = [] { return (int64_t)0; };
  TenantQuota HotQ;
  HotQ.RatePerSec = 1;
  HotQ.Burst = HotBurst;
  SO.TenantQuotas["hot"] = HotQ;
  TenantQuota VictimQ;
  VictimQ.RatePerSec = 1;
  VictimQ.Burst = VictimLoad;
  SO.TenantQuotas["victim"] = VictimQ;
  Server S(SO);

  std::vector<std::future<Reply>> VictimPending, HotPending;
  for (int V = 0; V < VictimLoad; ++V) {
    // 10 hot submissions around every victim one: temporal skew, not
    // just aggregate.
    for (int H = 0; H < HotLoad / VictimLoad; ++H)
      HotPending.push_back(
          S.submit(scalarRequest("hot", (uint64_t)(V * 10 + H))));
    VictimPending.push_back(
        S.submit(scalarRequest("victim", (uint64_t)V)));
  }

  for (auto &F : VictimPending) {
    Reply Rep = getReply(std::move(F));
    EXPECT_EQ(Rep.Out, Outcome::Served)
        << "victim request " << Rep.Id
        << " inside its quota envelope was not served: " << Rep.Error;
  }
  int HotServed = 0, HotShed = 0;
  for (auto &F : HotPending) {
    Reply Rep = getReply(std::move(F));
    if (Rep.Out == Outcome::Shed) {
      ++HotShed;
      EXPECT_GT(Rep.RetryAfterMs, 0)
          << "a rate-bucket shed must price its refill time";
    } else {
      EXPECT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
      ++HotServed;
    }
  }
  EXPECT_EQ(HotServed, HotBurst);
  EXPECT_EQ(HotShed, HotLoad - HotBurst);

  ServerStats St = S.stats();
  TenantStats Victim = St.Tenants["victim"];
  TenantStats Hot = St.Tenants["hot"];
  EXPECT_EQ(Victim.shed(), 0)
      << "hot tenant leaked pressure across the isolation boundary";
  EXPECT_EQ(Victim.Served, VictimLoad);
  EXPECT_EQ(Hot.Admitted, HotBurst);
  EXPECT_EQ(Hot.ShedAtAdmission, HotLoad - HotBurst);
  EXPECT_EQ(St.QuotaSheds, HotLoad - HotBurst);
  expectConsistent(S);
  expectTenantsConsistent(S);
}

TEST(Server, TenantQueueShareLimitsOneTenantsBacklog) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 16;
  SO.Faults.WorkerStallMicros = 30'000; // backlog builds deterministically
  TenantQuota Q;
  Q.MaxQueued = 2;
  SO.TenantQuotas["greedy"] = Q;
  Server S(SO);

  std::vector<std::future<Reply>> Pending;
  for (int I = 0; I < 8; ++I)
    Pending.push_back(S.submit(scalarRequest("greedy", (uint64_t)I)));
  int Shed = 0;
  for (auto &F : Pending) {
    Reply Rep = getReply(std::move(F));
    if (Rep.Out == Outcome::Shed) {
      ++Shed;
      EXPECT_NE(Rep.Error.find("queue share"), std::string::npos)
          << Rep.Error;
    }
  }
  // At most MaxQueued queued + 1 executing + submission-race slack.
  EXPECT_GE(Shed, 8 - 2 - 1 - 2);
  EXPECT_GT(S.stats().QuotaSheds, 0);
  expectConsistent(S);
  expectTenantsConsistent(S);
}

TEST(Server, PerTenantStatsPartitionTheGlobalCounters) {
  ServerOptions SO;
  SO.Workers = 1;
  Server S(SO);
  // Two tenants, one anonymous (lands on "default"), mixed outcomes.
  std::vector<std::future<Reply>> Pending;
  Pending.push_back(S.submit(scalarRequest("a", 1)));
  Request Bad = scalarRequest("a", 2);
  Bad.Source = "PROGRAM P\nBEGIN\n  NOPE\nEND\n";
  Pending.push_back(S.submit(std::move(Bad)));
  Request Starved = scalarRequest("b", 3);
  Starved.Fuel = 1;
  Pending.push_back(S.submit(std::move(Starved)));
  Request Anon = scalarRequest("", 4);
  Anon.Tenant.clear();
  Pending.push_back(S.submit(std::move(Anon)));
  for (auto &F : Pending)
    getReply(std::move(F));

  ServerStats St = S.stats();
  ASSERT_EQ(St.Tenants.size(), 3u);
  EXPECT_EQ(St.Tenants["a"].Submitted, 2);
  EXPECT_EQ(St.Tenants["a"].Served, 1);
  EXPECT_EQ(St.Tenants["a"].CompileErrors, 1);
  EXPECT_EQ(St.Tenants["b"].Trapped, 1);
  EXPECT_EQ(St.Tenants["default"].Served, 1);
  int64_t TenantSubmitted = 0;
  for (const auto &[Name, TS] : St.Tenants)
    TenantSubmitted += TS.Submitted;
  EXPECT_EQ(TenantSubmitted, St.Submitted);
  expectConsistent(S);
  expectTenantsConsistent(S);
}

TEST(Server, DrainUnderLoadResolvesEveryAdmittedRequest) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 16;
  SO.Faults.WorkerStallMicros = 30'000; // 12 queued => ~360ms of work
  Server S(SO);

  std::vector<std::future<Reply>> Pending;
  for (int I = 0; I < 12; ++I)
    Pending.push_back(
        S.submit(scalarRequest(I % 2 ? "odd" : "even", (uint64_t)I)));

  S.beginDrain();
  EXPECT_TRUE(S.draining());

  // Late arrival: shed immediately with the structured draining status.
  Reply Late = getReply(S.submit(scalarRequest("late", 99)));
  EXPECT_EQ(Late.Out, Outcome::Shed);
  EXPECT_TRUE(Late.Draining);

  // The deadline cannot cover ~360ms of stalled work: the sweep fires,
  // but drain still waits for the executing request, so on return
  // nothing is unresolved.
  bool Clean = S.drain(/*HardDeadlineMs=*/40);
  EXPECT_FALSE(Clean);
  EXPECT_EQ(S.inFlight(), 0u);

  int Swept = 0;
  for (auto &F : Pending) {
    Reply Rep = getReply(std::move(F));
    if (Rep.Out == Outcome::Shed) {
      ++Swept;
      EXPECT_TRUE(Rep.Draining)
          << "deadline-swept request " << Rep.Id
          << " shed without the draining status";
    } else {
      EXPECT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
    }
  }
  EXPECT_GE(Swept, 1);
  EXPECT_EQ(S.stats().DrainSheds, Swept + 1); // + the late arrival
  expectConsistent(S);
  expectTenantsConsistent(S);
}

TEST(Server, UnloadedDrainIsClean) {
  ServerOptions SO;
  SO.Workers = 2;
  Server S(SO);
  std::vector<std::future<Reply>> Pending;
  for (int I = 0; I < 4; ++I)
    Pending.push_back(S.submit(scalarRequest("calm", (uint64_t)I)));
  EXPECT_TRUE(S.drain(/*HardDeadlineMs=*/10'000));
  for (auto &F : Pending)
    EXPECT_EQ(getReply(std::move(F)).Out, Outcome::Served);
  EXPECT_EQ(S.stats().DrainSheds, 0);
  expectConsistent(S);
  expectTenantsConsistent(S);
}

TEST(Server, ConcurrentSoak) {
  // The TSan target: several submitter threads hammer one server with
  // a mix of valid (cache-hitting), hostile, trapping and fuel-starved
  // requests while LRU pressure and mid-flight eviction churn the
  // cache. The only assertions are the robustness contract itself:
  // every reply arrives and the accounting partitions the submissions.
  ServerOptions SO;
  SO.Workers = 4;
  SO.QueueCapacity = 256;
  SO.CacheCapacity = 2; // constant eviction pressure
  SO.Faults.EvictMidFlight = true;
  Server S(SO);

  constexpr int NumThreads = 4;
  constexpr int PerThread = 32;
  std::atomic<int64_t> Served{0}, Trapped{0}, Shed{0}, Errors{0},
      Missing{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      std::vector<std::future<Reply>> Mine;
      for (int I = 0; I < PerThread; ++I) {
        Request R;
        R.Id = (uint64_t)(T * PerThread + I);
        R.Lanes = 1 + (I % 4);
        R.Fuel = 100'000;
        switch (I % 4) {
        case 0:
          R = exampleRequest();
          R.WantArrays = (I % 8) == 0;
          break;
        case 1:
          R.Source = ScalarSource;
          R.Ints["a"] = I;
          break;
        case 2:
          R.Source = "PROGRAM BAD\nBEGIN\n  NOPE " + std::to_string(I) +
                     "\nEND\n";
          break;
        case 3:
          R.Source = ScalarSource;
          R.Fuel = 1; // starves
          break;
        }
        Mine.push_back(S.submit(std::move(R)));
      }
      for (auto &F : Mine) {
        if (F.wait_for(std::chrono::seconds(60)) !=
            std::future_status::ready) {
          ++Missing;
          continue;
        }
        switch (F.get().Out) {
        case Outcome::Served:
          ++Served;
          break;
        case Outcome::Trapped:
          ++Trapped;
          break;
        case Outcome::Shed:
          ++Shed;
          break;
        case Outcome::CompileError:
          ++Errors;
          break;
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Missing.load(), 0) << "hang: replies never arrived";
  const int64_t Total = NumThreads * PerThread;
  EXPECT_EQ(Served + Trapped + Shed + Errors, Total);
  ServerStats St = S.stats();
  EXPECT_EQ(St.Submitted, Total);
  EXPECT_TRUE(St.consistent());
  EXPECT_EQ(St.Served, Served.load());
  EXPECT_EQ(St.Trapped, Trapped.load());
  EXPECT_EQ(St.CompileErrors, Errors.load());
  // Mid-flight eviction drops every entry right after its lookup, so
  // cache hits are impossible here by construction; the eviction
  // counter is what proves the churn actually happened.
  EXPECT_GT(St.CacheEvictions, 0) << "eviction pressure never fired";
}

TEST(Server, ConcurrentDrainSoak) {
  // The drain-path TSan target: submitter threads race a drain while
  // byte pressure (tight global + per-tenant budgets, inflated costs)
  // and mid-flight eviction churn the cache. The contract under attack:
  // every future resolves exactly once, drain returns with nothing
  // unresolved, post-drain sheds carry the draining status, and the
  // accounting conserves globally and per tenant.
  ServerOptions SO;
  SO.Workers = 4;
  SO.QueueCapacity = 256;
  SO.CacheCapacity = 4;
  SO.CacheMaxBytes = 4096;
  SO.CacheTenantMaxBytes = 2048;
  SO.Faults.InflateCostBytes = 1500;
  SO.Faults.EvictMidFlight = true;
  Server S(SO);

  constexpr int NumThreads = 4;
  constexpr int PerThread = 48;
  std::atomic<int64_t> Resolved{0}, Missing{0}, ShedsWithoutStatus{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      std::vector<std::future<Reply>> Mine;
      for (int I = 0; I < PerThread; ++I) {
        Request R;
        R.Id = (uint64_t)(T * PerThread + I);
        R.Tenant = T % 2 ? "tsanA" : "tsanB";
        R.Lanes = 1 + (I % 4);
        R.Fuel = 100'000;
        if (I % 3 == 0) {
          R = exampleRequest();
          R.Tenant = T % 2 ? "tsanA" : "tsanB";
        } else {
          R.Source = ScalarSource;
          R.Ints["a"] = I;
          R.Lanes = 1;
        }
        Mine.push_back(S.submit(std::move(R)));
      }
      for (auto &F : Mine) {
        if (F.wait_for(std::chrono::seconds(60)) !=
            std::future_status::ready) {
          ++Missing;
          continue;
        }
        Reply Rep = F.get();
        ++Resolved;
        // A drain-shed reply that forgot its status would strand a
        // client retry loop; count violations, assert after the join.
        if (Rep.Out == Outcome::Shed && Rep.Draining &&
            Rep.Error.empty())
          ++ShedsWithoutStatus;
      }
    });

  // Let the submitters build real pressure, then drain under them: the
  // race between submit() and beginDrain() is exactly what TSan should
  // see. A generous deadline keeps the sweep rare but legal.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  S.beginDrain();
  S.drain(/*HardDeadlineMs=*/30'000);
  EXPECT_EQ(S.inFlight(), 0u);

  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Missing.load(), 0) << "hang: replies never arrived";
  EXPECT_EQ(Resolved.load(), NumThreads * PerThread);
  EXPECT_EQ(ShedsWithoutStatus.load(), 0);
  ServerStats St = S.stats();
  EXPECT_EQ(St.Submitted, NumThreads * PerThread);
  EXPECT_TRUE(St.consistent());
  EXPECT_TRUE(St.tenantsConsistent());
  EXPECT_LE(St.CacheBytesResident, (int64_t)SO.CacheMaxBytes);
  int64_t TenantSubmitted = 0;
  for (const auto &[Name, TS] : St.Tenants) {
    EXPECT_TRUE(TS.consistent()) << "tenant " << Name;
    TenantSubmitted += TS.Submitted;
  }
  EXPECT_EQ(TenantSubmitted, St.Submitted);
}

// A nest with a wide inner dimension so skewed trip vectors stay in
// bounds: X(i, j) = i * j for j <= L(i), i = 1..8, L(i) <= 64.
constexpr const char *WideNestSource =
    "PROGRAM WIDE\n"
    "INTEGER K\n"
    "DISTRIBUTED INTEGER L(8)\n"
    "DISTRIBUTED INTEGER X(8, 64)\n"
    "INTEGER i\n"
    "INTEGER j\n"
    "BEGIN\n"
    "  DOALL i = 1, K\n"
    "    DO j = 1, L(i)\n"
    "      X(i, j) = i * j\n"
    "    ENDDO\n"
    "  ENDDO\n"
    "END\n";

Request wideRequest(std::vector<int64_t> Trips) {
  Request R;
  R.Source = WideNestSource;
  R.Ints["K"] = 8;
  R.IntArrays["L"] = std::move(Trips);
  R.Lanes = 4;
  R.Fuel = 100'000;
  R.WantArrays = true;
  return R;
}

// sum X = sum_i i * tri(L(i)) with tri(n) = n(n+1)/2.
int64_t wideExpectedSum(const std::vector<int64_t> &Trips) {
  int64_t Sum = 0;
  for (size_t I = 0; I < Trips.size(); ++I)
    Sum += (int64_t)(I + 1) * Trips[I] * (Trips[I] + 1) / 2;
  return Sum;
}

TEST(Server, AdaptiveOffIsStatic) {
  // The legacy default: no profiles, no decisions, every reply tagged
  // static at epoch zero.
  ServerOptions SO;
  SO.Workers = 1;
  Server S(SO);
  for (int I = 0; I < 3; ++I) {
    Reply Rep = getReply(S.submit(exampleRequest()));
    ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
    EXPECT_EQ(Rep.Tele.Strategy, "static");
    EXPECT_EQ(Rep.Tele.StrategyEpoch, 0);
  }
  ServerStats St = S.stats();
  EXPECT_EQ(St.AdaptiveDecisions, 0);
  EXPECT_EQ(St.Respecializations, 0);
}

TEST(Server, AdaptiveWarmupDecidesAndRecompiles) {
  // The profile-guided loop end to end: requests warm up as probes
  // (the unflattened profiling variant, whose inner loop reports the
  // true source trip distribution), the accumulated histograms trigger
  // a strategy decision, and the epoch in reply telemetry advances.
  // Results stay bit-identical throughout: the strategy changes
  // performance, never answers.
  ServerOptions SO;
  SO.Workers = 1; // serialize so decisions land between requests
  SO.Adaptive = true;
  SO.AdaptiveMinSamples = 4;
  Server S(SO);

  const std::vector<int64_t> Uniform = {6, 6, 6, 6, 6, 6, 6, 6};
  const int64_t Want = wideExpectedSum(Uniform);
  int64_t Epoch = 0;
  std::string Last;
  for (int I = 0; I < 12; ++I) {
    Reply Rep = getReply(S.submit(wideRequest(Uniform)));
    ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
    EXPECT_NE(Rep.Tele.Strategy, "static");
    const std::vector<int64_t> &X = Rep.IntArrays["X"];
    EXPECT_EQ(std::accumulate(X.begin(), X.end(), int64_t{0}), Want)
        << "answer changed under strategy " << Rep.Tele.Strategy;
    Epoch = std::max(Epoch, Rep.Tele.StrategyEpoch);
    Last = Rep.Tele.Strategy;
  }
  EXPECT_GE(Epoch, 1) << "no strategy decision after warmup";
  ServerStats St = S.stats();
  EXPECT_GE(St.AdaptiveDecisions, 1);
  EXPECT_TRUE(St.consistent());
  EXPECT_TRUE(St.tenantsConsistent());
  // Uniform trips on the Sec. 6 cost model: the unflattened Eq. 2
  // schedule has no imbalance to recover, so it wins (and uniform
  // traffic never drifts, so the choice is stable).
  EXPECT_EQ(Last, "unflattened");
  EXPECT_EQ(St.Respecializations, 0);
}

TEST(Server, AdaptiveDriftRespecializes) {
  // Distribution drift mid-stream: uniform traffic decides one
  // strategy; a switch to one hot row drifts the observed histogram
  // past the threshold, forcing a re-decision that changes the
  // strategy (a respecialization). Answers stay exact across the flip.
  ServerOptions SO;
  SO.Workers = 1;
  SO.Adaptive = true;
  SO.AdaptiveMinSamples = 4;
  SO.AdaptiveDriftThreshold = 0.25;
  Server S(SO);

  const std::vector<int64_t> Uniform = {6, 6, 6, 6, 6, 6, 6, 6};
  const std::vector<int64_t> Skewed = {60, 1, 1, 1, 1, 1, 1, 1};

  for (int I = 0; I < 12; ++I) {
    Reply Rep = getReply(S.submit(wideRequest(Uniform)));
    ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
  }
  ServerStats Warm = S.stats();
  EXPECT_GE(Warm.AdaptiveDecisions, 1);

  const int64_t Want = wideExpectedSum(Skewed);
  std::vector<std::string> Seen;
  for (int I = 0; I < 40; ++I) {
    Reply Rep = getReply(S.submit(wideRequest(Skewed)));
    ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
    const std::vector<int64_t> &X = Rep.IntArrays["X"];
    EXPECT_EQ(std::accumulate(X.begin(), X.end(), int64_t{0}), Want)
        << "answer changed under strategy " << Rep.Tele.Strategy;
    Seen.push_back(Rep.Tele.Strategy);
  }
  ServerStats St = S.stats();
  EXPECT_GE(St.Respecializations, 1)
      << "drifted distribution never respecialized";
  EXPECT_TRUE(St.consistent());
  EXPECT_TRUE(St.tenantsConsistent());
  // One hot row among short ones is the coalescing transform's home
  // turf (ceil(total/P) beats both static schedules), so exploit
  // serves after the flip run coalesced (probes stay unflattened).
  EXPECT_NE(std::find(Seen.begin(), Seen.end(), "coalesced"), Seen.end())
      << "no exploit serve ran the respecialized strategy";
  // A strategy variant compiled under its own canonical key: at least
  // the probe variant plus the coalesced variant missed once each.
  EXPECT_GE(St.CacheMisses, 2);
}

TEST(Server, AdaptiveFallbackStaysStaticAndFeedsNoProfile) {
  // With every primary compile failing, serves come from the
  // unflattened fallback: tagged static, and never folded into the
  // profile (a breaker-open spell must not masquerade as drift).
  ServerOptions SO;
  SO.Workers = 1;
  SO.Adaptive = true;
  SO.AdaptiveMinSamples = 1;
  SO.CompileRetries = 0;
  SO.Faults.CompileFailures = 1'000'000;
  SO.Breaker.FailureThreshold = 1'000'000; // keep the breaker closed
  Server S(SO);
  for (int I = 0; I < 5; ++I) {
    Reply Rep = getReply(S.submit(exampleRequest()));
    ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
    EXPECT_TRUE(Rep.Tele.Fallback);
    EXPECT_EQ(Rep.Tele.Strategy, "static");
    EXPECT_EQ(Rep.Tele.StrategyEpoch, 0);
  }
  ServerStats St = S.stats();
  EXPECT_EQ(St.AdaptiveDecisions, 0);
  EXPECT_EQ(St.Respecializations, 0);
  EXPECT_TRUE(St.consistent());
}

TEST(Server, AdaptiveSurvivesCachePressureAndEviction) {
  // Respecialization under byte-budget pressure and mid-flight
  // eviction: strategy variants churn in and out of a tiny cache while
  // the distribution drifts. The robustness contract (conservation,
  // per-tenant consistency, byte budget) must hold the whole way.
  ServerOptions SO;
  SO.Workers = 2;
  SO.Adaptive = true;
  SO.AdaptiveMinSamples = 4;
  SO.CacheCapacity = 2;
  SO.CacheMaxBytes = 3000;
  SO.Faults.InflateCostBytes = 1500;
  SO.Faults.EvictMidFlight = true;
  Server S(SO);

  const std::vector<int64_t> Shapes[] = {
      {6, 6, 6, 6, 6, 6, 6, 6},
      {60, 1, 1, 1, 1, 1, 1, 1},
      {1, 1, 1, 1, 60, 60, 60, 60},
  };
  int64_t ServedOk = 0;
  for (int I = 0; I < 36; ++I) {
    const std::vector<int64_t> &Trips = Shapes[(I / 6) % 3];
    Reply Rep = getReply(S.submit(wideRequest(Trips)));
    ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
    const std::vector<int64_t> &X = Rep.IntArrays["X"];
    EXPECT_EQ(std::accumulate(X.begin(), X.end(), int64_t{0}),
              wideExpectedSum(Trips))
        << "answer changed under strategy " << Rep.Tele.Strategy;
    ++ServedOk;
  }
  ServerStats St = S.stats();
  EXPECT_EQ(ServedOk, 36);
  EXPECT_TRUE(St.consistent());
  EXPECT_TRUE(St.tenantsConsistent());
  EXPECT_LE(St.CacheBytesResident, (int64_t)SO.CacheMaxBytes);
  EXPECT_GE(St.AdaptiveDecisions, 1);
}

TEST(Server, NativeEngineServesWithAuthoritativeTag) {
  // --engine=native end to end: the reply's engine tag is what the
  // interpreter actually executed, never an assumption. On a build
  // with a toolchain the request runs native; without one it degrades
  // to bytecode and the fallback is counted. Answers are identical
  // either way.
  ServerOptions SO;
  SO.Workers = 1;
  SO.Eng = interp::Engine::Native;
  Server S(SO);
  Request R = exampleRequest();
  R.WantArrays = true;
  Reply Rep = getReply(S.submit(std::move(R)));
  ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
  ServerStats St = S.stats();
  if (codegen::nativeAvailable()) {
    EXPECT_EQ(Rep.Tele.Engine, "native");
    EXPECT_EQ(St.NativeFallbacks, 0);
  } else {
    EXPECT_EQ(Rep.Tele.Engine, "bytecode");
    EXPECT_EQ(St.NativeFallbacks, 1);
  }
  // The answers match a bytecode serve of the same request.
  ServerOptions BO;
  BO.Workers = 1;
  Server SB(BO);
  Request RB = exampleRequest();
  RB.WantArrays = true;
  Reply ByteRep = getReply(SB.submit(std::move(RB)));
  ASSERT_EQ(ByteRep.Out, Outcome::Served) << ByteRep.Error;
  EXPECT_EQ(Rep.IntArrays.at("X"), ByteRep.IntArrays.at("X"));
}

TEST(Server, NativeCompileFailureDegradesToBytecodeServe) {
  // A native tier that cannot produce an artifact (compiler missing,
  // artifact dir unwritable) must not fail or delay the request
  // beyond one compile attempt: the serve completes on bytecode, the
  // telemetry says so, and NativeFallbacks counts it. A distinct lane
  // count keeps this program out of every other test's memoized
  // native module.
  ::setenv("SIMDFLAT_JIT_CC", "/nonexistent/cxx-for-serve-test", 1);
  ::setenv("SIMDFLAT_JIT_DIR", "/dev/null/no-jit-dir", 1);
  ServerOptions SO;
  SO.Workers = 1;
  SO.Eng = interp::Engine::Native;
  Server S(SO);
  Request R = exampleRequest();
  R.Lanes = 6;
  R.WantArrays = true;
  Reply Rep = getReply(S.submit(std::move(R)));
  ::unsetenv("SIMDFLAT_JIT_CC");
  ::unsetenv("SIMDFLAT_JIT_DIR");
  ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
  EXPECT_EQ(Rep.Tele.Engine, "bytecode");
  ServerStats St = S.stats();
  EXPECT_EQ(St.NativeFallbacks, 1);
  EXPECT_EQ(St.Served, 1);
  EXPECT_TRUE(St.consistent());
}

TEST(Server, AdaptiveWindowAgesOutTransientDrift) {
  // Recency-weighted drift detection (--adaptive-window): the drift
  // test sees only the last AdaptiveWindow probe runs. A one-request
  // spike ages out of the ring before it can force a respecialization
  // (legacy accumulate-forever mode would keep its weight until the
  // next decision); sustained drift fills the whole window and still
  // respecializes. Each probe run of WIDE at 4 lanes records two
  // dominant-nest samples (one per SIMD layer), so MinSamples = 7
  // demands a full 4-run window before any evaluation - which also
  // keeps the freshly-cleared post-decision ring from re-deciding on
  // a single run.
  ServerOptions SO;
  SO.Workers = 1;
  SO.Adaptive = true;
  SO.AdaptiveWindow = 4;
  SO.AdaptiveMinSamples = 7; // 4 probe runs x 2 layer samples = 8
  SO.AdaptiveDriftThreshold = 0.4;
  SO.AdaptiveProbeEvery = 1; // every request probes: ring advances
  Server S(SO);

  const std::vector<int64_t> Uniform = {6, 6, 6, 6, 6, 6, 6, 6};
  const std::vector<int64_t> Skewed = {60, 1, 1, 1, 1, 1, 1, 1};
  auto Serve = [&](const std::vector<int64_t> &Trips) {
    Reply Rep = getReply(S.submit(wideRequest(Trips)));
    ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
    const std::vector<int64_t> &X = Rep.IntArrays["X"];
    EXPECT_EQ(std::accumulate(X.begin(), X.end(), int64_t{0}),
              wideExpectedSum(Trips))
        << "answer changed under strategy " << Rep.Tele.Strategy;
  };

  // Warm up on uniform traffic to the first decision.
  for (int I = 0; I < 6; ++I)
    Serve(Uniform);
  ServerStats Warm = S.stats();
  ASSERT_GE(Warm.AdaptiveDecisions, 1);
  ASSERT_EQ(Warm.Respecializations, 0);

  // One-request spike, then uniform again: by the time the window
  // has MinSamples the spike is 1 run in 4 (TV = 0.25 < 0.4), and
  // four uniform runs later it has aged out entirely.
  Serve(Skewed);
  for (int I = 0; I < 6; ++I)
    Serve(Uniform);
  EXPECT_EQ(S.stats().Respecializations, 0)
      << "a transient spike respecialized despite the recency window";

  // Sustained drift fills the ring with skewed runs: TV 1.0 fires.
  for (int I = 0; I < 8; ++I)
    Serve(Skewed);
  ServerStats St = S.stats();
  EXPECT_GE(St.Respecializations, 1)
      << "sustained drift never respecialized in windowed mode";
  EXPECT_TRUE(St.consistent());
  EXPECT_TRUE(St.tenantsConsistent());
}

} // namespace
