//===- tests/serve/ServerTest.cpp ------------------------------*- C++ -*-===//
//
// The serving core's robustness contract, request by request: every
// submission resolves to exactly one structured reply (served, trapped,
// shed, or compile-error), admission control sheds deterministically,
// budgets are enforced end to end, compile failures retry / degrade to
// the fallback, and the counters partition the submissions. The
// ConcurrentSoak test at the bottom is the TSan target.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "interp/Trap.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

using namespace simdflat;
using namespace simdflat::serve;

namespace {

constexpr const char *ExampleSource =
    "PROGRAM EX\n"
    "INTEGER K\n"
    "DISTRIBUTED INTEGER L(8)\n"
    "DISTRIBUTED INTEGER X(8, 4)\n"
    "INTEGER i\n"
    "INTEGER j\n"
    "BEGIN\n"
    "  DOALL i = 1, K\n"
    "    DO j = 1, L(i)\n"
    "      X(i, j) = i * j\n"
    "    ENDDO\n"
    "  ENDDO\n"
    "END\n";

constexpr const char *ScalarSource = "PROGRAM REPEAT\n"
                                     "INTEGER a\n"
                                     "INTEGER b\n"
                                     "BEGIN\n"
                                     "  b = a * 3 + 1\n"
                                     "END\n";

Request exampleRequest() {
  Request R;
  R.Source = ExampleSource;
  R.Ints["K"] = 8;
  R.IntArrays["L"] = {4, 1, 2, 1, 1, 3, 1, 3};
  R.Lanes = 4;
  R.Fuel = 100'000;
  return R;
}

Reply getReply(std::future<Reply> F) {
  // Generous bound: a miss here is a hang, the one thing the server
  // must never do.
  EXPECT_EQ(F.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "reply never arrived";
  return F.get();
}

void expectConsistent(const Server &S) {
  ServerStats St = S.stats();
  EXPECT_TRUE(St.consistent())
      << St.Served << " served + " << St.Trapped << " trapped + "
      << St.Shed << " shed + " << St.CompileErrors
      << " compile-errors != " << St.Submitted << " submitted";
}

TEST(Server, ServesAndReturnsRequestedArrays) {
  Server S;
  Request R = exampleRequest();
  R.Id = 42;
  R.WantArrays = true;
  Reply Rep = getReply(S.submit(std::move(R)));
  EXPECT_EQ(Rep.Id, 42u);
  ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
  EXPECT_GT(Rep.Tele.FuelSpent, 0);
  EXPECT_EQ(Rep.Tele.Engine, "bytecode");
  EXPECT_FALSE(Rep.Tele.CacheHit);

  // Only arrays the *submitted* program declares come back - pipeline
  // temporaries stay hidden.
  ASSERT_EQ(Rep.IntArrays.count("X"), 1u);
  ASSERT_EQ(Rep.IntArrays.count("L"), 1u);
  EXPECT_EQ(Rep.IntArrays.size(), 2u);
  // X(i, j) = i * j for j <= L(i): the element sum is layout-agnostic.
  //   sum_i i * tri(L(i)) = 1*10+2*1+3*3+4*1+5*1+6*6+7*1+8*6 = 121
  const std::vector<int64_t> &X = Rep.IntArrays["X"];
  EXPECT_EQ(X.size(), 32u);
  EXPECT_EQ(std::accumulate(X.begin(), X.end(), int64_t{0}), 121);
  expectConsistent(S);
}

TEST(Server, RepeatIsACacheHit) {
  ServerOptions SO;
  SO.Workers = 1; // serialize so the second request sees the cache
  Server S(SO);
  Reply First = getReply(S.submit(exampleRequest()));
  ASSERT_EQ(First.Out, Outcome::Served) << First.Error;
  EXPECT_FALSE(First.Tele.CacheHit);
  Reply Second = getReply(S.submit(exampleRequest()));
  ASSERT_EQ(Second.Out, Outcome::Served) << Second.Error;
  EXPECT_TRUE(Second.Tele.CacheHit);
  EXPECT_EQ(Second.Tele.CompileAttempts, 0);
  ServerStats St = S.stats();
  EXPECT_EQ(St.CacheHits, 1);
  EXPECT_EQ(St.CacheMisses, 1);
  expectConsistent(S);
}

TEST(Server, ParseFailureIsCompileError) {
  Server S;
  Request R;
  R.Source = "PROGRAM BROKEN\nBEGIN\n  THIS IS NOT FORTRAN\nEND\n";
  Reply Rep = getReply(S.submit(std::move(R)));
  EXPECT_EQ(Rep.Out, Outcome::CompileError);
  EXPECT_FALSE(Rep.Error.empty());
  expectConsistent(S);
}

TEST(Server, BadInputsAreCompileErrors) {
  Server S;
  // Undeclared scalar.
  Request R1 = exampleRequest();
  R1.Ints["nosuch"] = 1;
  Reply Rep1 = getReply(S.submit(std::move(R1)));
  EXPECT_EQ(Rep1.Out, Outcome::CompileError);
  EXPECT_NE(Rep1.Error.find("not declared"), std::string::npos)
      << Rep1.Error;
  // Mis-sized array.
  Request R2 = exampleRequest();
  R2.IntArrays["L"] = {1, 2};
  Reply Rep2 = getReply(S.submit(std::move(R2)));
  EXPECT_EQ(Rep2.Out, Outcome::CompileError);
  EXPECT_NE(Rep2.Error.find("elements"), std::string::npos) << Rep2.Error;
  expectConsistent(S);
}

TEST(Server, ProgramTrapIsATrappedReply) {
  Server S;
  Request R;
  R.Source = "PROGRAM OOB\n"
             "DISTRIBUTED INTEGER A(4)\n"
             "INTEGER i\n"
             "BEGIN\n"
             "  DOALL i = 1, 4\n"
             "    A(i + 4) = i\n"
             "  ENDDO\n"
             "END\n";
  R.Lanes = 4;
  Reply Rep = getReply(S.submit(std::move(R)));
  ASSERT_EQ(Rep.Out, Outcome::Trapped) << Rep.Error;
  ASSERT_TRUE(Rep.T.has_value());
  EXPECT_EQ(Rep.T->Kind, interp::TrapKind::OutOfBounds);
  expectConsistent(S);
}

TEST(Server, FuelExhaustionTraps) {
  Server S;
  Request R;
  R.Source = ScalarSource;
  R.Ints["a"] = 7;
  R.Lanes = 1;
  R.Fuel = 1;
  Reply Rep = getReply(S.submit(std::move(R)));
  ASSERT_EQ(Rep.Out, Outcome::Trapped) << Rep.Error;
  ASSERT_TRUE(Rep.T.has_value());
  EXPECT_EQ(Rep.T->Kind, interp::TrapKind::FuelExhausted);
  expectConsistent(S);
}

TEST(Server, DeadlineExpiresMidRun) {
  Server S;
  Request R;
  R.Source = "PROGRAM SPIN\n"
             "INTEGER i\n"
             "INTEGER s\n"
             "BEGIN\n"
             "  s = 0\n"
             "  DO i = 1, 50000000\n"
             "    s = s + i\n"
             "  ENDDO\n"
             "END\n";
  R.Lanes = 1;
  R.DeadlineMs = 30; // far less than 5e7 interpreted iterations take
  Reply Rep = getReply(S.submit(std::move(R)));
  ASSERT_EQ(Rep.Out, Outcome::Trapped) << Rep.Error;
  ASSERT_TRUE(Rep.T.has_value());
  EXPECT_EQ(Rep.T->Kind, interp::TrapKind::DeadlineExpired);
  expectConsistent(S);
}

TEST(Server, OverBudgetRequestsShedAtSubmitWithNoRetryHint) {
  ServerOptions SO;
  SO.MaxFuel = 1000;
  Server S(SO);
  // Fuel beyond the cap.
  Request R1 = exampleRequest();
  R1.Fuel = 2000;
  Reply Rep1 = getReply(S.submit(std::move(R1)));
  EXPECT_EQ(Rep1.Out, Outcome::Shed);
  EXPECT_EQ(Rep1.RetryAfterMs, 0) << "retrying an over-budget request is "
                                     "pointless";
  // Unlimited fuel is over budget too when the server enforces a cap.
  Request R2 = exampleRequest();
  R2.Fuel = 0;
  Reply Rep2 = getReply(S.submit(std::move(R2)));
  EXPECT_EQ(Rep2.Out, Outcome::Shed);
  // Lanes beyond the cap.
  Request R3 = exampleRequest();
  R3.Fuel = 1000;
  R3.Lanes = SO.MaxLanes + 1;
  Reply Rep3 = getReply(S.submit(std::move(R3)));
  EXPECT_EQ(Rep3.Out, Outcome::Shed);
  EXPECT_EQ(S.stats().Shed, 3);
  expectConsistent(S);
}

TEST(Server, OversizedSourceSheds) {
  ServerOptions SO;
  SO.MaxSourceBytes = 64;
  Server S(SO);
  Request R = exampleRequest();
  ASSERT_GT(R.Source.size(), SO.MaxSourceBytes);
  Reply Rep = getReply(S.submit(std::move(R)));
  EXPECT_EQ(Rep.Out, Outcome::Shed);
  EXPECT_EQ(Rep.RetryAfterMs, 0);
  expectConsistent(S);
}

TEST(Server, FullQueueShedsWithRetryHint) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 2;
  SO.RetryAfterMs = 7;
  // Stall the worker so the burst outruns the drain deterministically.
  SO.Faults.WorkerStallMicros = 30'000;
  Server S(SO);
  const int N = 8;
  std::vector<std::future<Reply>> Pending;
  for (int I = 0; I < N; ++I) {
    Request R;
    R.Id = (uint64_t)I;
    R.Source = ScalarSource;
    R.Lanes = 1;
    Pending.push_back(S.submit(std::move(R)));
  }
  int ShedCount = 0;
  for (auto &F : Pending) {
    Reply Rep = getReply(std::move(F));
    if (Rep.Out == Outcome::Shed) {
      ++ShedCount;
      EXPECT_EQ(Rep.RetryAfterMs, 7)
          << "a queue-full shed must carry the retry hint";
    } else {
      EXPECT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
    }
  }
  // Queue (2) + in-flight (1) + submission-race slack; the rest shed.
  EXPECT_GE(ShedCount, N - (int)SO.QueueCapacity - SO.Workers - 2);
  expectConsistent(S);
}

TEST(Server, QueueTimeoutShedsStaleRequests) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 8;
  SO.Faults.WorkerStallMicros = 30'000;
  Server S(SO);
  std::vector<std::future<Reply>> Pending;
  for (int I = 0; I < 3; ++I) {
    Request R;
    R.Id = (uint64_t)I;
    R.Source = ScalarSource;
    R.Lanes = 1;
    R.QueueTimeoutMs = 1; // expires while the worker stalls on request 0
    Pending.push_back(S.submit(std::move(R)));
  }
  int TimedOut = 0;
  for (auto &F : Pending) {
    Reply Rep = getReply(std::move(F));
    if (Rep.Out == Outcome::Shed) {
      ++TimedOut;
      EXPECT_NE(Rep.Error.find("queue budget"), std::string::npos)
          << Rep.Error;
    }
  }
  EXPECT_GE(TimedOut, 1) << "requests behind the stalled worker must "
                            "time out of the queue";
  expectConsistent(S);
}

TEST(Server, TransientCompileFailureRecoversViaRetry) {
  ServerOptions SO;
  SO.Faults.CompileFailures = 1; // first attempt fails, retry succeeds
  SO.CompileRetries = 2;
  SO.BackoffBaseMicros = 10; // keep the test fast
  Server S(SO);
  Reply Rep = getReply(S.submit(exampleRequest()));
  ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
  EXPECT_FALSE(Rep.Tele.Fallback)
      << "the retried primary compile should have succeeded";
  EXPECT_EQ(Rep.Tele.CompileAttempts, 2);
  EXPECT_GE(S.stats().CompileRetries, 1);
  expectConsistent(S);
}

TEST(Server, TotalPrimaryFailureDegradesToFallback) {
  ServerOptions SO;
  SO.Faults.CompileFailures = 1'000'000;
  SO.CompileRetries = 0;
  Server S(SO);
  Reply Rep = getReply(S.submit(exampleRequest()));
  ASSERT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
  EXPECT_TRUE(Rep.Tele.Fallback);
  EXPECT_EQ(S.stats().FallbackServes, 1);
  expectConsistent(S);
}

TEST(Server, BreakerOpensUnderRepeatedPrimaryFailure) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.Faults.CompileFailures = 1'000'000;
  SO.CompileRetries = 0;
  SO.Breaker.FailureThreshold = 2;
  SO.Breaker.OpenBudget = 8;
  Server S(SO);
  for (int I = 0; I < 5; ++I) {
    Reply Rep = getReply(S.submit(exampleRequest()));
    ASSERT_EQ(Rep.Out, Outcome::Served)
        << "request " << I << ": " << Rep.Error;
    EXPECT_TRUE(Rep.Tele.Fallback) << "request " << I;
  }
  ServerStats St = S.stats();
  EXPECT_GE(St.BreakerOpens, 1)
      << "consecutive primary failures must open the breaker";
  EXPECT_EQ(St.FallbackServes, 5);
  expectConsistent(S);
}

TEST(Server, ShutdownShedsQueuedRequests) {
  std::vector<std::future<Reply>> Pending;
  {
    ServerOptions SO;
    SO.Workers = 1;
    SO.QueueCapacity = 8;
    SO.Faults.WorkerStallMicros = 20'000;
    Server S(SO);
    for (int I = 0; I < 4; ++I) {
      Request R;
      R.Id = (uint64_t)I;
      R.Source = ScalarSource;
      R.Lanes = 1;
      Pending.push_back(S.submit(std::move(R)));
    }
    // The server is destroyed with requests still queued.
  }
  for (auto &F : Pending) {
    Reply Rep = getReply(std::move(F));
    // Every future resolved: served if the worker got to it, shed with
    // no retry hint otherwise. Nothing is dropped on the floor.
    if (Rep.Out == Outcome::Shed) {
      EXPECT_NE(Rep.Error.find("shutting down"), std::string::npos)
          << Rep.Error;
      EXPECT_EQ(Rep.RetryAfterMs, 0);
    } else {
      EXPECT_EQ(Rep.Out, Outcome::Served) << Rep.Error;
    }
  }
}

TEST(Server, ConcurrentSoak) {
  // The TSan target: several submitter threads hammer one server with
  // a mix of valid (cache-hitting), hostile, trapping and fuel-starved
  // requests while LRU pressure and mid-flight eviction churn the
  // cache. The only assertions are the robustness contract itself:
  // every reply arrives and the accounting partitions the submissions.
  ServerOptions SO;
  SO.Workers = 4;
  SO.QueueCapacity = 256;
  SO.CacheCapacity = 2; // constant eviction pressure
  SO.Faults.EvictMidFlight = true;
  Server S(SO);

  constexpr int NumThreads = 4;
  constexpr int PerThread = 32;
  std::atomic<int64_t> Served{0}, Trapped{0}, Shed{0}, Errors{0},
      Missing{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      std::vector<std::future<Reply>> Mine;
      for (int I = 0; I < PerThread; ++I) {
        Request R;
        R.Id = (uint64_t)(T * PerThread + I);
        R.Lanes = 1 + (I % 4);
        R.Fuel = 100'000;
        switch (I % 4) {
        case 0:
          R = exampleRequest();
          R.WantArrays = (I % 8) == 0;
          break;
        case 1:
          R.Source = ScalarSource;
          R.Ints["a"] = I;
          break;
        case 2:
          R.Source = "PROGRAM BAD\nBEGIN\n  NOPE " + std::to_string(I) +
                     "\nEND\n";
          break;
        case 3:
          R.Source = ScalarSource;
          R.Fuel = 1; // starves
          break;
        }
        Mine.push_back(S.submit(std::move(R)));
      }
      for (auto &F : Mine) {
        if (F.wait_for(std::chrono::seconds(60)) !=
            std::future_status::ready) {
          ++Missing;
          continue;
        }
        switch (F.get().Out) {
        case Outcome::Served:
          ++Served;
          break;
        case Outcome::Trapped:
          ++Trapped;
          break;
        case Outcome::Shed:
          ++Shed;
          break;
        case Outcome::CompileError:
          ++Errors;
          break;
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Missing.load(), 0) << "hang: replies never arrived";
  const int64_t Total = NumThreads * PerThread;
  EXPECT_EQ(Served + Trapped + Shed + Errors, Total);
  ServerStats St = S.stats();
  EXPECT_EQ(St.Submitted, Total);
  EXPECT_TRUE(St.consistent());
  EXPECT_EQ(St.Served, Served.load());
  EXPECT_EQ(St.Trapped, Trapped.load());
  EXPECT_EQ(St.CompileErrors, Errors.load());
  // Mid-flight eviction drops every entry right after its lookup, so
  // cache hits are impossible here by construction; the eviction
  // counter is what proves the churn actually happened.
  EXPECT_GT(St.CacheEvictions, 0) << "eviction pressure never fired";
}

} // namespace
