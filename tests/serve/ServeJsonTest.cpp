//===- tests/serve/ServeJsonTest.cpp ---------------------------*- C++ -*-===//
//
// The flattend wire format: strict request parsing (a hostile line is a
// structured parse error, never a misread request), reply/telemetry
// serialization, and the compact JSON-lines framing.
//
//===----------------------------------------------------------------------===//

#include "serve/ServeJson.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::serve;

namespace {

json::Value parseDoc(const std::string &Text) {
  auto V = json::Value::parse(Text);
  EXPECT_TRUE(static_cast<bool>(V)) << Text;
  return *V;
}

TEST(ServeJson, ParsesFullRequest) {
  auto R = parseRequest(parseDoc(
      R"({"id": 7, "source": "PROGRAM P\nEND\n", "ints": {"K": 8},
          "int_arrays": {"L": [1, 2, 3]}, "real_arrays": {"W": [0.5, 2]},
          "lanes": 8, "fuel": 5000, "deadline_ms": 100,
          "queue_timeout_ms": 10, "min_one": true, "want_arrays": true})"));
  ASSERT_TRUE(static_cast<bool>(R)) << R.error();
  EXPECT_EQ(R->Id, 7u);
  EXPECT_EQ(R->Source, "PROGRAM P\nEND\n");
  EXPECT_EQ(R->Ints.at("K"), 8);
  EXPECT_EQ(R->IntArrays.at("L"), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(R->RealArrays.at("W"), (std::vector<double>{0.5, 2.0}));
  EXPECT_EQ(R->Lanes, 8);
  EXPECT_EQ(R->Fuel, 5000);
  EXPECT_EQ(R->DeadlineMs, 100);
  EXPECT_EQ(R->QueueTimeoutMs, 10);
  EXPECT_TRUE(R->MinOne);
  EXPECT_TRUE(R->WantArrays);
}

TEST(ServeJson, DefaultsApplyWhenFieldsAbsent) {
  auto R = parseRequest(parseDoc(R"({"source": "x"})"));
  ASSERT_TRUE(static_cast<bool>(R)) << R.error();
  EXPECT_EQ(R->Id, 0u);
  EXPECT_EQ(R->Lanes, 4);
  EXPECT_EQ(R->Fuel, 0);
  EXPECT_FALSE(R->WantArrays);
}

TEST(ServeJson, RejectsMalformedRequests) {
  // Not an object.
  EXPECT_FALSE(static_cast<bool>(parseRequest(parseDoc("[1, 2]"))));
  // Missing source.
  EXPECT_FALSE(static_cast<bool>(parseRequest(parseDoc(R"({"id": 1})"))));
  // Source of the wrong type.
  EXPECT_FALSE(
      static_cast<bool>(parseRequest(parseDoc(R"({"source": 3})"))));
  // Unknown field: a typo must not be silently ignored.
  auto Unknown =
      parseRequest(parseDoc(R"({"source": "x", "fuell": 10})"));
  ASSERT_FALSE(static_cast<bool>(Unknown));
  EXPECT_NE(Unknown.error().find("fuell"), std::string::npos);
  // Wrong field types.
  EXPECT_FALSE(static_cast<bool>(
      parseRequest(parseDoc(R"({"source": "x", "fuel": "lots"})"))));
  EXPECT_FALSE(static_cast<bool>(
      parseRequest(parseDoc(R"({"source": "x", "ints": [1]})"))));
  EXPECT_FALSE(static_cast<bool>(parseRequest(
      parseDoc(R"({"source": "x", "int_arrays": {"A": [1, "two"]}})"))));
}

Reply sampleReply() {
  Reply R;
  R.Id = 9;
  R.Out = Outcome::Served;
  R.IntArrays["X"] = {1, 2, 3};
  R.Tele.QueueNanos = 10;
  R.Tele.CompileNanos = 20;
  R.Tele.RunNanos = 30;
  R.Tele.CacheHit = true;
  R.Tele.CompileAttempts = 1;
  R.Tele.FuelSpent = 44;
  R.Tele.CyclesSpent = 17.5;
  return R;
}

TEST(ServeJson, ServedReplySerialization) {
  json::Value O = toJson(sampleReply());
  EXPECT_EQ(O.get("id")->asInt(), 9);
  EXPECT_EQ(O.get("outcome")->asString(), "served");
  EXPECT_EQ(O.get("error"), nullptr) << "no error field when served";
  EXPECT_EQ(O.get("retry_after_ms"), nullptr)
      << "retry hint is shed-only";
  ASSERT_NE(O.get("int_arrays"), nullptr);
  EXPECT_EQ(O.get("int_arrays")->get("X")->size(), 3u);
  const json::Value *Tele = O.get("telemetry");
  ASSERT_NE(Tele, nullptr);
  EXPECT_EQ(Tele->get("engine")->asString(), "bytecode");
  EXPECT_TRUE(Tele->get("cache_hit")->asBool());
  EXPECT_EQ(Tele->get("fuel_spent")->asInt(), 44);
  EXPECT_DOUBLE_EQ(Tele->get("cycles_spent")->asDouble(), 17.5);
}

TEST(ServeJson, ShedAndTrappedReplySerialization) {
  Reply Shed;
  Shed.Id = 1;
  Shed.Out = Outcome::Shed;
  Shed.Error = "admission queue full (4 waiting)";
  Shed.RetryAfterMs = 5;
  json::Value SO = toJson(Shed);
  EXPECT_EQ(SO.get("outcome")->asString(), "shed");
  EXPECT_EQ(SO.get("retry_after_ms")->asInt(), 5);
  EXPECT_NE(SO.get("error")->asString().find("queue full"),
            std::string::npos);

  Reply Trapped;
  Trapped.Id = 2;
  Trapped.Out = Outcome::Trapped;
  interp::Trap T;
  T.Kind = interp::TrapKind::FuelExhausted;
  T.Lanes = {0, 2};
  T.Location = "DO i";
  T.Detail = "fuel exhausted";
  Trapped.T = T;
  json::Value TO = toJson(Trapped);
  EXPECT_EQ(TO.get("outcome")->asString(), "trapped");
  const json::Value *Trap = TO.get("trap");
  ASSERT_NE(Trap, nullptr);
  EXPECT_EQ(Trap->get("kind")->asString(),
            interp::trapKindName(interp::TrapKind::FuelExhausted));
  EXPECT_EQ(Trap->get("lanes")->size(), 2u);
  EXPECT_EQ(Trap->get("location")->asString(), "DO i");
}

TEST(ServeJson, StrategyTelemetryRoundTrips) {
  // The adaptive layer's reply tags: which strategy compiled the
  // primary and at which decision epoch. Absent fields keep the
  // "static"/0 defaults so pre-adaptive logs still parse.
  Reply R = sampleReply();
  R.Tele.Strategy = "coalesced";
  R.Tele.StrategyEpoch = 3;
  json::Value O = toJson(R);
  const json::Value *Tele = O.get("telemetry");
  ASSERT_NE(Tele, nullptr);
  EXPECT_EQ(Tele->get("strategy")->asString(), "coalesced");
  EXPECT_EQ(Tele->get("strategy_epoch")->asInt(), 3);
  auto Back = parseReply(O);
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_EQ(Back->Tele.Strategy, "coalesced");
  EXPECT_EQ(Back->Tele.StrategyEpoch, 3);

  auto Old = json::Value::parse(
      "{\"id\": 1, \"outcome\": \"served\", \"telemetry\": {}}");
  ASSERT_TRUE(Old.ok());
  auto Legacy = parseReply(*Old);
  ASSERT_TRUE(Legacy.ok()) << Legacy.error();
  EXPECT_EQ(Legacy->Tele.Strategy, "static");
  EXPECT_EQ(Legacy->Tele.StrategyEpoch, 0);

  json::Value Log = telemetryJson(R);
  EXPECT_EQ(Log.get("strategy")->asString(), "coalesced");
  EXPECT_EQ(Log.get("strategy_epoch")->asInt(), 3);
}

TEST(ServeJson, StatsSerializationCarriesAdaptiveCounters) {
  ServerStats S;
  S.AdaptiveDecisions = 5;
  S.Respecializations = 2;
  json::Value O = toJson(S);
  EXPECT_EQ(O.get("adaptive_decisions")->asInt(), 5);
  EXPECT_EQ(O.get("respecializations")->asInt(), 2);
}

TEST(ServeJson, OutcomeNamesRoundTrip) {
  for (Outcome O : {Outcome::Served, Outcome::Trapped, Outcome::Shed,
                    Outcome::CompileError}) {
    Outcome Back;
    ASSERT_TRUE(outcomeFromName(outcomeName(O), Back)) << outcomeName(O);
    EXPECT_EQ(Back, O);
  }
  Outcome Out;
  EXPECT_FALSE(outcomeFromName("exploded", Out));
}

TEST(ServeJson, TelemetryRecordIsSchemaTagged) {
  json::Value O = telemetryJson(sampleReply());
  EXPECT_EQ(O.get("schema")->asString(), "simdflat-serve-v1");
  EXPECT_EQ(O.get("outcome")->asString(), "served");
  EXPECT_EQ(O.get("engine")->asString(), "bytecode");
  EXPECT_EQ(O.get("compile_attempts")->asInt(), 1);
}

TEST(ServeJson, StatsSerializationCarriesConsistency) {
  ServerStats S;
  S.Submitted = 4;
  S.Served = 2;
  S.Shed = 1;
  S.CompileErrors = 1;
  json::Value O = toJson(S);
  EXPECT_EQ(O.get("submitted")->asInt(), 4);
  EXPECT_TRUE(O.get("consistent")->asBool());
  S.Shed = 0; // lose a request: the summary must say so
  EXPECT_FALSE(toJson(S).get("consistent")->asBool());
}

TEST(ServeJson, ToLineIsCompactAndRoundTrips) {
  json::Value Doc = toJson(sampleReply());
  std::string Line = toLine(Doc);
  EXPECT_EQ(Line.find('\n'), std::string::npos);
  EXPECT_EQ(Line.front(), '{');
  auto Back = json::Value::parse(Line);
  ASSERT_TRUE(static_cast<bool>(Back)) << Line;
  EXPECT_EQ(Back->dump(), Doc.dump());
}

TEST(ServeJson, RequestTenantRoundTrips) {
  auto R = parseRequest(
      parseDoc(R"({"source": "x", "tenant": "team-blue"})"));
  ASSERT_TRUE(static_cast<bool>(R)) << R.error();
  EXPECT_EQ(R->Tenant, "team-blue");
  // Absent tenant stays empty here; the server normalizes to "default".
  auto Anon = parseRequest(parseDoc(R"({"source": "x"})"));
  ASSERT_TRUE(static_cast<bool>(Anon));
  EXPECT_TRUE(Anon->Tenant.empty());
  // Wrong type is a structured parse error, not a silent default.
  EXPECT_FALSE(static_cast<bool>(
      parseRequest(parseDoc(R"({"source": "x", "tenant": 7})"))));
}

TEST(ServeJson, ReplyCarriesTenantAndDrainingStatus) {
  Reply R = sampleReply();
  R.Tele.Tenant = "team-blue";
  json::Value Served = toJson(R);
  EXPECT_EQ(Served.get("draining"), nullptr)
      << "draining is shed-only wire noise otherwise";
  EXPECT_EQ(Served.get("telemetry")->get("tenant")->asString(),
            "team-blue");

  Reply Shed;
  Shed.Id = 3;
  Shed.Out = Outcome::Shed;
  Shed.Error = "server draining";
  Shed.RetryAfterMs = 5;
  Shed.Draining = true;
  json::Value SO = toJson(Shed);
  ASSERT_NE(SO.get("draining"), nullptr);
  EXPECT_TRUE(SO.get("draining")->asBool());
}

TEST(ServeJson, StatsSerializationCarriesTenants) {
  ServerStats S;
  S.Submitted = 3;
  S.Served = 2;
  S.Shed = 1;
  S.QuotaSheds = 1;
  TenantStats T;
  T.Submitted = 3;
  T.Admitted = 2;
  T.Served = 2;
  T.ShedAtAdmission = 1;
  S.Tenants["blue"] = T;
  json::Value O = toJson(S);
  EXPECT_EQ(O.get("quota_sheds")->asInt(), 1);
  EXPECT_EQ(O.get("drain_sheds")->asInt(), 0);
  const json::Value *Tenants = O.get("tenants");
  ASSERT_NE(Tenants, nullptr);
  const json::Value *Blue = Tenants->get("blue");
  ASSERT_NE(Blue, nullptr);
  EXPECT_EQ(Blue->get("submitted")->asInt(), 3);
  EXPECT_EQ(Blue->get("admitted")->asInt(), 2);
  EXPECT_EQ(Blue->get("shed_at_admission")->asInt(), 1);
  EXPECT_TRUE(Blue->get("consistent")->asBool());
  EXPECT_TRUE(O.get("tenants_consistent")->asBool());

  // Break one tenant's conservation law: the wire format says so.
  S.Tenants["blue"].Served = 1;
  json::Value Broken = toJson(S);
  EXPECT_FALSE(
      Broken.get("tenants")->get("blue")->get("consistent")->asBool());
  EXPECT_FALSE(Broken.get("tenants_consistent")->asBool());
}

TEST(ServeJson, ParseReplyRoundTripsEveryOutcome) {
  // Served with arrays and telemetry.
  Reply Served = sampleReply();
  Served.Tele.Tenant = "t";
  auto BackServed = parseReply(toJson(Served));
  ASSERT_TRUE(static_cast<bool>(BackServed)) << BackServed.error();
  EXPECT_EQ(BackServed->Id, 9u);
  EXPECT_EQ(BackServed->Out, Outcome::Served);
  EXPECT_EQ(BackServed->IntArrays.at("X"), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(BackServed->Tele.FuelSpent, 44);
  EXPECT_DOUBLE_EQ(BackServed->Tele.CyclesSpent, 17.5);
  EXPECT_EQ(BackServed->Tele.Tenant, "t");
  EXPECT_TRUE(BackServed->Tele.CacheHit);

  // Shed with hint and draining marker.
  Reply Shed;
  Shed.Id = 1;
  Shed.Out = Outcome::Shed;
  Shed.Error = "server draining";
  Shed.RetryAfterMs = 12;
  Shed.Draining = true;
  auto BackShed = parseReply(toJson(Shed));
  ASSERT_TRUE(static_cast<bool>(BackShed)) << BackShed.error();
  EXPECT_EQ(BackShed->RetryAfterMs, 12);
  EXPECT_TRUE(BackShed->Draining);

  // Trapped with a structured trap.
  Reply Trapped;
  Trapped.Id = 2;
  Trapped.Out = Outcome::Trapped;
  interp::Trap T;
  T.Kind = interp::TrapKind::OutOfBounds;
  T.Lanes = {1, 3};
  T.Location = "DO i";
  T.Detail = "lane 1 reads A(9)";
  Trapped.T = T;
  Trapped.Error = T.render();
  auto BackTrapped = parseReply(toJson(Trapped));
  ASSERT_TRUE(static_cast<bool>(BackTrapped)) << BackTrapped.error();
  ASSERT_TRUE(BackTrapped->T.has_value());
  EXPECT_EQ(BackTrapped->T->Kind, interp::TrapKind::OutOfBounds);
  EXPECT_EQ(BackTrapped->T->Lanes, (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(BackTrapped->T->Location, "DO i");
}

TEST(ServeJson, ParseReplyEnforcesTheShedRetryContract) {
  // A shed reply MUST price the retry: absent retry_after_ms is a
  // protocol violation, not a default.
  auto NoHint = parseReply(
      parseDoc(R"({"id": 1, "outcome": "shed", "error": "full"})"));
  ASSERT_FALSE(static_cast<bool>(NoHint));
  EXPECT_NE(NoHint.error().find("retry_after_ms"), std::string::npos);

  // Negative hints are rejected outright.
  auto Negative = parseReply(parseDoc(
      R"({"id": 1, "outcome": "shed", "error": "full",
          "retry_after_ms": -3})"));
  ASSERT_FALSE(static_cast<bool>(Negative));
  EXPECT_NE(Negative.error().find(">= 0"), std::string::npos);

  // Zero is legal: "retrying is pointless" (over-budget, shutdown).
  auto Zero = parseReply(parseDoc(
      R"({"id": 1, "outcome": "shed", "error": "over budget",
          "retry_after_ms": 0})"));
  EXPECT_TRUE(static_cast<bool>(Zero)) << Zero.error();

  // A retry hint on a non-shed reply is equally malformed.
  auto ServedWithHint = parseReply(parseDoc(
      R"({"id": 1, "outcome": "served", "retry_after_ms": 5})"));
  EXPECT_FALSE(static_cast<bool>(ServedWithHint));
}

TEST(ServeJson, ParseReplyRejectsHostileDocuments) {
  // Unknown fields.
  auto Unknown = parseReply(parseDoc(
      R"({"id": 1, "outcome": "served", "surprise": true})"));
  ASSERT_FALSE(static_cast<bool>(Unknown));
  EXPECT_NE(Unknown.error().find("surprise"), std::string::npos);
  // Unknown outcome.
  EXPECT_FALSE(static_cast<bool>(
      parseReply(parseDoc(R"({"id": 1, "outcome": "exploded"})"))));
  // Unknown trap kind.
  EXPECT_FALSE(static_cast<bool>(parseReply(parseDoc(
      R"({"id": 1, "outcome": "trapped",
          "trap": {"kind": "spontaneous-combustion"}})"))));
  // Wrong-typed telemetry.
  EXPECT_FALSE(static_cast<bool>(parseReply(parseDoc(
      R"({"id": 1, "outcome": "served",
          "telemetry": {"fuel_spent": "lots"}})"))));
  // Not an object at all.
  EXPECT_FALSE(static_cast<bool>(parseReply(parseDoc("[1]"))));
}

TEST(ServeJson, ToLineEscapesStrings) {
  json::Value Doc = json::Value::object();
  Doc.set("s", std::string("a\"b\nc"));
  std::string Line = toLine(Doc);
  EXPECT_EQ(Line.find('\n'), std::string::npos)
      << "embedded newlines must be escaped for JSON-lines framing";
  auto Back = json::Value::parse(Line);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->get("s")->asString(), "a\"b\nc");
}

} // namespace
