//===- tests/serve/ProgramCacheTest.cpp ------------------------*- C++ -*-===//
//
// The compile-once/run-many cache contract: LRU bounds, single-flight
// compilation, failure-not-cached with a surviving attempt counter, and
// eviction that never invalidates a handed-out program.
//
//===----------------------------------------------------------------------===//

#include "serve/ProgramCache.h"

#include "frontend/Parser.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace simdflat;
using namespace simdflat::serve;

namespace {

/// One real compiled program all tests share as the cache payload.
transform::CompiledSimdProgram compiledFixture() {
  frontend::ParseResult PR = frontend::parseProgram("PROGRAM FIX\n"
                                                    "INTEGER a\n"
                                                    "INTEGER b\n"
                                                    "BEGIN\n"
                                                    "  b = a * 3 + 1\n"
                                                    "END\n");
  EXPECT_TRUE(PR.ok()) << PR.Diags.renderAll();
  auto C = transform::compileForSimdExec(*PR.Prog);
  EXPECT_TRUE(static_cast<bool>(C)) << C.error().render();
  return std::move(*C);
}

ProgramCache::Compiler okCompiler(std::atomic<int> *Runs = nullptr) {
  return [Runs](int &Attempts) {
    ++Attempts;
    if (Runs)
      ++*Runs;
    return Expected<transform::CompiledSimdProgram, CompileFailure>(
        compiledFixture());
  };
}

TEST(ProgramCache, MissThenHit) {
  ProgramCache C(4);
  std::atomic<int> Runs{0};
  ProgramCache::Outcome First = C.getOrCompile(1, okCompiler(&Runs));
  ASSERT_NE(First.Prog, nullptr);
  EXPECT_FALSE(First.Hit);
  EXPECT_FALSE(First.Waited);
  EXPECT_EQ(First.Attempts, 1);

  ProgramCache::Outcome Second = C.getOrCompile(1, okCompiler(&Runs));
  ASSERT_NE(Second.Prog, nullptr);
  EXPECT_TRUE(Second.Hit);
  EXPECT_EQ(Second.Attempts, 0);
  EXPECT_EQ(Runs.load(), 1) << "a hit must not recompile";
  EXPECT_EQ(Second.Prog, First.Prog) << "hits share the entry";

  ProgramCache::Stats S = C.stats();
  EXPECT_EQ(S.Misses, 1);
  EXPECT_EQ(S.Hits, 1);
  EXPECT_EQ(C.size(), 1u);
}

TEST(ProgramCache, SingleFlightCompilesOnce) {
  // Eight threads race for one uncached key; exactly one compiler run,
  // everyone gets the same program.
  ProgramCache C(4);
  std::atomic<int> Runs{0};
  ProgramCache::Compiler Slow = [&Runs](int &Attempts) {
    ++Attempts;
    ++Runs;
    // Long enough that the other threads reliably join the flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return Expected<transform::CompiledSimdProgram, CompileFailure>(
        compiledFixture());
  };
  constexpr int N = 8;
  std::vector<ProgramCache::Outcome> Out(N);
  std::vector<std::thread> Threads;
  for (int I = 0; I < N; ++I)
    Threads.emplace_back(
        [&, I] { Out[I] = C.getOrCompile(7, Slow); });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Runs.load(), 1) << "single-flight violated";
  for (int I = 0; I < N; ++I) {
    ASSERT_NE(Out[I].Prog, nullptr) << "thread " << I;
    EXPECT_EQ(Out[I].Prog, Out[0].Prog) << "thread " << I;
  }
}

TEST(ProgramCache, FailureIsNotCachedButAttemptsSurvive) {
  ProgramCache C(4);
  std::atomic<int> Runs{0};
  ProgramCache::Compiler FailOnce = [&Runs](int &Attempts) {
    int Attempt = ++Attempts;
    ++Runs;
    if (Attempt == 1)
      return Expected<transform::CompiledSimdProgram, CompileFailure>(
          CompileFailure{"injected", /*Transient=*/true});
    return Expected<transform::CompiledSimdProgram, CompileFailure>(
        compiledFixture());
  };
  ProgramCache::Outcome First = C.getOrCompile(3, FailOnce);
  EXPECT_EQ(First.Prog, nullptr);
  EXPECT_EQ(First.Error, "injected");
  EXPECT_EQ(C.size(), 0u) << "failures must not occupy a slot";

  // The next lookup re-runs the compiler, and the per-key attempt
  // counter resumed at 1, so attempt 2 succeeds.
  ProgramCache::Outcome Second = C.getOrCompile(3, FailOnce);
  ASSERT_NE(Second.Prog, nullptr);
  EXPECT_EQ(Second.Attempts, 2)
      << "attempt history must survive the failed flight";
  EXPECT_EQ(Runs.load(), 2);
}

TEST(ProgramCache, LruEvictsOldestCompleted) {
  ProgramCache C(2);
  std::atomic<int> Runs{0};
  C.getOrCompile(1, okCompiler(&Runs));
  C.getOrCompile(2, okCompiler(&Runs));
  // Touch 1 so 2 is the LRU victim when 3 arrives.
  EXPECT_TRUE(C.getOrCompile(1, okCompiler(&Runs)).Hit);
  C.getOrCompile(3, okCompiler(&Runs));
  EXPECT_EQ(C.size(), 2u);
  EXPECT_EQ(C.stats().Evictions, 1);
  EXPECT_TRUE(C.getOrCompile(1, okCompiler(&Runs)).Hit);
  EXPECT_FALSE(C.getOrCompile(2, okCompiler(&Runs)).Hit)
      << "the LRU key must have been evicted";
}

TEST(ProgramCache, EvictionKeepsHandedOutProgramsAlive) {
  ProgramCache C(1);
  ProgramCache::Outcome Out = C.getOrCompile(9, okCompiler());
  ASSERT_NE(Out.Prog, nullptr);
  C.evict(9);
  EXPECT_EQ(C.size(), 0u);
  // The shared_ptr handoff keeps the compiled program valid.
  ASSERT_NE(Out.Prog->Code, nullptr);
  EXPECT_FALSE(C.getOrCompile(9, okCompiler()).Hit);
}

TEST(ProgramCache, EvictUnknownKeyIsNoop) {
  ProgramCache C(2);
  C.evict(42);
  EXPECT_EQ(C.stats().Evictions, 0);
  EXPECT_EQ(C.size(), 0u);
}

TEST(ProgramCache, ProgramCostBytesIsStableAndBeyondOverhead) {
  transform::CompiledSimdProgram P = compiledFixture();
  size_t Cost = programCostBytes(P);
  // The estimate always includes the fixed per-entry overhead plus the
  // bytecode payload, and it is a pure function of the program.
  EXPECT_GT(Cost, (size_t)512);
  EXPECT_EQ(Cost, programCostBytes(P));
}

TEST(ProgramCache, ByteBudgetEvictsGlobalLru) {
  ProgramCache::Options O;
  O.MaxEntries = 64;
  O.MaxBytes = 2500;
  O.CostOverrideBytes = 1000; // deterministic: every entry "costs" 1000
  ProgramCache C(O);

  C.getOrCompile(1, okCompiler());
  C.getOrCompile(2, okCompiler());
  EXPECT_EQ(C.bytesResident(), 2000u);
  // The third 1000-byte entry busts the 2500-byte budget: the global
  // LRU victim (key 1) goes, the newcomer stays.
  C.getOrCompile(3, okCompiler());
  ProgramCache::Stats S = C.stats();
  EXPECT_EQ(S.ByteEvictions, 1);
  EXPECT_EQ(S.BytesResident, 2000);
  EXPECT_EQ(C.bytesResident(), 2000u);
  EXPECT_FALSE(C.getOrCompile(1, okCompiler()).Hit) << "LRU victim";
  // Re-checking key 1 republished it (another byte eviction); 2 or 3 is
  // still resident alongside it.
  EXPECT_EQ(C.size(), 2u);
}

TEST(ProgramCache, JustPublishedEntryIsNeverItsOwnVictim) {
  ProgramCache::Options O;
  O.MaxBytes = 500; // below a single entry's (overridden) cost
  O.CostOverrideBytes = 1000;
  ProgramCache C(O);

  // The entry the cache just compiled must be served and stay resident
  // even though it alone exceeds the budget - otherwise a tight budget
  // would recompile every request forever.
  ProgramCache::Outcome Out = C.getOrCompile(1, okCompiler());
  ASSERT_NE(Out.Prog, nullptr);
  EXPECT_EQ(C.size(), 1u);
  EXPECT_TRUE(C.getOrCompile(1, okCompiler()).Hit);

  // A second over-budget entry displaces the first, never itself.
  C.getOrCompile(2, okCompiler());
  EXPECT_EQ(C.size(), 1u);
  EXPECT_TRUE(C.getOrCompile(2, okCompiler()).Hit);
  EXPECT_EQ(C.stats().ByteEvictions, 1);
}

TEST(ProgramCache, TenantCapEvictsTheTenantsOwnLruFirst) {
  ProgramCache::Options O;
  O.MaxEntries = 64;
  O.TenantMaxBytes = 1000; // one (overridden) entry per tenant
  O.CostOverrideBytes = 1000;
  ProgramCache C(O);

  C.getOrCompile(1, okCompiler(), "a");
  C.getOrCompile(10, okCompiler(), "b");
  EXPECT_EQ(C.tenantBytes("a"), 1000u);
  EXPECT_EQ(C.tenantBytes("b"), 1000u);

  // Tenant "a"'s second program busts its own cap: its key 1 goes,
  // tenant "b"'s entry is untouched.
  C.getOrCompile(2, okCompiler(), "a");
  ProgramCache::Stats S = C.stats();
  EXPECT_EQ(S.TenantEvictions, 1);
  EXPECT_EQ(C.tenantBytes("a"), 1000u);
  EXPECT_EQ(C.tenantBytes("b"), 1000u);
  EXPECT_TRUE(C.getOrCompile(10, okCompiler(), "b").Hit)
      << "one tenant's churn must not evict another tenant's program";
  EXPECT_TRUE(C.getOrCompile(2, okCompiler(), "a").Hit);
  EXPECT_FALSE(C.getOrCompile(1, okCompiler(), "a").Hit);
}

TEST(ProgramCache, EvictionCreditsBytesBack) {
  ProgramCache::Options O;
  O.CostOverrideBytes = 1000;
  ProgramCache C(O);
  C.getOrCompile(1, okCompiler(), "a");
  C.getOrCompile(2, okCompiler(), "a");
  EXPECT_EQ(C.bytesResident(), 2000u);
  C.evict(1);
  EXPECT_EQ(C.bytesResident(), 1000u);
  EXPECT_EQ(C.tenantBytes("a"), 1000u);
  C.evict(2);
  EXPECT_EQ(C.bytesResident(), 0u);
  EXPECT_EQ(C.tenantBytes("a"), 0u);
}

TEST(ProgramCache, MeasuredCostsDriveTheBudgetWithoutOverride) {
  // No override: the budget works off programCostBytes. A budget of
  // 1.5x one program's cost holds exactly one resident entry.
  size_t OneCost = programCostBytes(compiledFixture());
  ProgramCache::Options O;
  O.MaxBytes = OneCost + OneCost / 2;
  ProgramCache C(O);
  C.getOrCompile(1, okCompiler());
  EXPECT_EQ(C.bytesResident(), OneCost);
  C.getOrCompile(2, okCompiler());
  EXPECT_EQ(C.size(), 1u);
  EXPECT_EQ(C.stats().ByteEvictions, 1);
  EXPECT_TRUE(C.getOrCompile(2, okCompiler()).Hit);
}

TEST(ProgramCache, RespecializationCostChangeNeverLeaksBytes) {
  // The respecialization pattern the adaptive server drives: the same
  // key is evicted and re-published with a *different* measured cost
  // (a strategy change compiles a structurally different program).
  // Byte accounting must track the live entry exactly - the old cost
  // is credited back in full, the new cost is charged in full, and no
  // reserved bytes leak through any number of round trips. Measured
  // costs, no override: this is the accounting path production runs.
  frontend::ParseResult Big = frontend::parseProgram(
      "PROGRAM BIGFIX\n"
      "INTEGER K\n"
      "DISTRIBUTED INTEGER L(8)\n"
      "DISTRIBUTED INTEGER X(8, 4)\n"
      "INTEGER i\n"
      "INTEGER j\n"
      "BEGIN\n"
      "  DOALL i = 1, K\n"
      "    DO j = 1, L(i)\n"
      "      X(i, j) = i * j + L(i)\n"
      "    ENDDO\n"
      "  ENDDO\n"
      "END\n");
  ASSERT_TRUE(Big.ok()) << Big.Diags.renderAll();
  ProgramCache::Compiler BigCompiler = [&Big](int &Attempts) {
    ++Attempts;
    auto C = transform::compileForSimdExec(*Big.Prog);
    EXPECT_TRUE(static_cast<bool>(C));
    return Expected<transform::CompiledSimdProgram, CompileFailure>(
        std::move(*C));
  };
  const size_t SmallCost = programCostBytes(compiledFixture());
  size_t BigCost = 0;
  {
    auto C = transform::compileForSimdExec(*Big.Prog);
    ASSERT_TRUE(static_cast<bool>(C));
    BigCost = programCostBytes(*C);
  }
  ASSERT_NE(SmallCost, BigCost)
      << "fixtures must differ in measured cost for this test to bite";

  ProgramCache::Options O;
  O.MaxEntries = 8;
  ProgramCache C(O);

  ASSERT_NE(C.getOrCompile(42, okCompiler(), "acme").Prog, nullptr);
  EXPECT_EQ(C.bytesResident(), SmallCost);
  EXPECT_EQ(C.tenantBytes("acme"), SmallCost);

  // Eviction credits every byte back, globally and per tenant.
  C.evict(42);
  EXPECT_EQ(C.bytesResident(), 0u);
  EXPECT_EQ(C.tenantBytes("acme"), 0u);

  // Re-publish the same key at the new (bigger) cost: the ledger holds
  // exactly the new cost - a stale small-cost reservation would show
  // up here as a shortfall or an accumulation.
  ASSERT_NE(C.getOrCompile(42, BigCompiler, "acme").Prog, nullptr);
  EXPECT_EQ(C.bytesResident(), BigCost);
  EXPECT_EQ(C.tenantBytes("acme"), BigCost);
  EXPECT_EQ(C.stats().BytesResident, (int64_t)BigCost);

  // Churn the same key through both costs repeatedly: accounting is
  // exact after every round trip, not just the first.
  for (int I = 0; I < 4; ++I) {
    C.evict(42);
    const bool BigRound = (I % 2) == 0;
    ASSERT_NE(C.getOrCompile(42, BigRound ? okCompiler() : BigCompiler,
                             "acme")
                  .Prog,
              nullptr);
    const size_t Want = BigRound ? SmallCost : BigCost;
    EXPECT_EQ(C.bytesResident(), Want) << "round " << I;
    EXPECT_EQ(C.tenantBytes("acme"), Want) << "round " << I;
  }
  EXPECT_EQ(C.stats().ByteEvictions, 0)
      << "explicit evictions must not count as byte-budget evictions";
}

} // namespace
