//===- tests/md/NBForceTest.cpp --------------------------------*- C++ -*-===//
//
// End-to-end NBFORCE checks on a small molecule: the scalar, MIMD,
// unflattened-SIMD, L1u/L2u and flattened-SIMD executions must all
// compute the same forces; the step counts must obey Eq. 1'/2'.
//
//===----------------------------------------------------------------------===//

#include "md/NBForce.h"

#include "analysis/Profitability.h"
#include "interp/MimdInterp.h"
#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace simdflat;
using namespace simdflat::interp;
using namespace simdflat::ir;
using namespace simdflat::md;

namespace {

constexpr int64_t NMax = 256;

struct Fixture {
  Molecule Mol;
  PairList PL;
  int64_t MaxP;
  ExternRegistry Reg;

  explicit Fixture(double Cutoff = 6.0)
      : Mol(Molecule::syntheticSOD([] {
          SodParams P;
          P.NumAtoms = 200;
          return P;
        }())),
        PL(buildPairList(Mol, Cutoff)) {
    PL.ensureMinOnePartner();
    MaxP = PL.maxPCnt();
    bindForceExterns(Reg, Mol, /*ForceCost=*/200.0, /*LayerCheckCost=*/4.0);
  }
};

machine::MachineConfig simdMachine(int64_t Lanes, machine::Layout L) {
  machine::MachineConfig M;
  M.Name = "test";
  M.Processors = Lanes;
  M.Gran = Lanes;
  M.DataLayout = L;
  M.SecondsPerCycle = 1.0;
  return M;
}

/// Reference force accumulation computed directly in C++.
std::vector<double> referenceForces(const Fixture &F) {
  std::vector<double> Out(static_cast<size_t>(NMax), 0.0);
  for (int64_t I = 0; I < F.PL.numAtoms(); ++I)
    for (int64_t K = 1; K <= F.PL.PCnt[static_cast<size_t>(I)]; ++K)
      Out[static_cast<size_t>(I)] +=
          pairForce(F.Mol, I + 1, F.PL.partner(I, K));
  return Out;
}

void expectForcesNear(const std::vector<double> &Got,
                      const std::vector<double> &Want) {
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t I = 0; I < Got.size(); ++I)
    EXPECT_NEAR(Got[I], Want[I], 1e-9) << "atom " << I + 1;
}

TEST(NBForce, ScalarMatchesReference) {
  Fixture F;
  Program P = nbforceF77(NMax, F.MaxP);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  ScalarInterp Interp(P, M, &F.Reg);
  setNBForceInputs(Interp.store(), F.PL, NMax, F.MaxP, /*Sweep=*/NMax);
  Interp.run().value();
  expectForcesNear(Interp.store().getRealArray("F"), referenceForces(F));
}

TEST(NBForce, MimdMatchesReferenceAndEq1) {
  Fixture F;
  Program P = nbforceF77(NMax, F.MaxP);
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  RunOptions Opts;
  Opts.WorkCalls = {"Force"};
  MimdInterp Interp(P, M, &F.Reg, /*NumProcs=*/4, machine::Layout::Cyclic,
                    Opts);
  MimdRunResult R = Interp.run([&](DataStore &S) {
    setNBForceInputs(S, F.PL, NMax, F.MaxP, NMax);
  }).value();
  expectForcesNear(R.Merged->getRealArray("F"), referenceForces(F));
  // Eq. 1: max over processors of their pair-count sums.
  analysis::ProfitEstimate E = analysis::estimateProfit(
      F.PL.PCnt, 4, machine::Layout::Cyclic);
  EXPECT_EQ(R.TimeSteps, E.FlattenedSteps);
}

TEST(NBForce, FlattenedSimdMatchesFig15) {
  Fixture F;
  Program P = nbforceFlattenedSimd(NMax, F.MaxP, machine::Layout::Cyclic);
  machine::MachineConfig M = simdMachine(8, machine::Layout::Cyclic);
  RunOptions Opts;
  Opts.WorkCalls = {"Force"};
  SimdInterp Interp(P, M, &F.Reg, Opts);
  setNBForceInputs(Interp.store(), F.PL, NMax, F.MaxP, NMax);
  SimdRunResult R = Interp.run().value();
  expectForcesNear(Interp.store().getRealArray("F"), referenceForces(F));
  EXPECT_EQ(R.Stats.CommAccesses, 0);
  // Eq. 1': the flattened SIMD step count reaches the MIMD bound.
  analysis::ProfitEstimate E = analysis::estimateProfit(
      F.PL.PCnt, 8, machine::Layout::Cyclic);
  EXPECT_EQ(R.Stats.WorkSteps, E.FlattenedSteps);
}

TEST(NBForce, UnflattenedSimdMatchesEq2) {
  Fixture F;
  Program P = nbforceUnflattenedSimd(NMax, F.MaxP, machine::Layout::Cyclic);
  machine::MachineConfig M = simdMachine(8, machine::Layout::Cyclic);
  RunOptions Opts;
  Opts.WorkCalls = {"Force"};
  SimdInterp Interp(P, M, &F.Reg, Opts);
  setNBForceInputs(Interp.store(), F.PL, NMax, F.MaxP, NMax);
  SimdRunResult R = Interp.run().value();
  expectForcesNear(Interp.store().getRealArray("F"), referenceForces(F));
  // Eq. 2': sum over atom blocks of the max pCnt in the block.
  analysis::ProfitEstimate E = analysis::estimateProfit(
      F.PL.PCnt, 8, machine::Layout::Cyclic);
  EXPECT_EQ(R.Stats.WorkSteps, E.UnflattenedSteps);
}

TEST(NBForce, L1uCountsAreMaxPTimesLayers) {
  Fixture F;
  Program P = nbforceL1u(NMax, F.MaxP);
  machine::MachineConfig M = simdMachine(16, machine::Layout::Cyclic);
  RunOptions Opts;
  Opts.WorkCalls = {"Force"};
  SimdInterp Interp(P, M, &F.Reg, Opts);
  // Pruning machine: sweep only the active atoms.
  setNBForceInputs(Interp.store(), F.PL, NMax, F.MaxP,
                   /*Sweep=*/F.PL.numAtoms());
  SimdRunResult R = Interp.run().value();
  expectForcesNear(Interp.store().getRealArray("F"), referenceForces(F));
  int64_t Lrs = M.layersFor(F.PL.numAtoms());
  EXPECT_EQ(R.Stats.WorkSteps, F.MaxP * Lrs);
}

TEST(NBForce, L2uSweepsAllDeclaredLayers) {
  Fixture F;
  Program P = nbforceL2u(NMax, F.MaxP);
  machine::MachineConfig M = simdMachine(16, machine::Layout::Cyclic);
  RunOptions Opts;
  Opts.WorkCalls = {"Force"};
  SimdInterp Interp(P, M, &F.Reg, Opts);
  setNBForceInputs(Interp.store(), F.PL, NMax, F.MaxP, /*Sweep=*/NMax);
  SimdRunResult R = Interp.run().value();
  expectForcesNear(Interp.store().getRealArray("F"), referenceForces(F));
  int64_t MaxLrs = M.layersFor(NMax);
  EXPECT_EQ(R.Stats.WorkSteps, F.MaxP * MaxLrs);
}

TEST(NBForce, FlattenedBeatsUnflattenedInSeconds) {
  Fixture F;
  machine::MachineConfig M = simdMachine(16, machine::Layout::Cyclic);
  RunOptions Opts;
  Opts.WorkCalls = {"Force"};

  Program PU = nbforceL1u(NMax, F.MaxP);
  SimdInterp IU(PU, M, &F.Reg, Opts);
  setNBForceInputs(IU.store(), F.PL, NMax, F.MaxP, F.PL.numAtoms());
  double SecondsU = IU.run().value().Stats.Seconds;

  Program PF = nbforceFlattenedSimd(NMax, F.MaxP, machine::Layout::Cyclic);
  SimdInterp IF_(PF, M, &F.Reg, Opts);
  setNBForceInputs(IF_.store(), F.PL, NMax, F.MaxP, NMax);
  double SecondsF = IF_.run().value().Stats.Seconds;

  EXPECT_LT(SecondsF, SecondsU);
}

TEST(NBForce, PairForceProperties) {
  Fixture F;
  // Self-pairs contribute nothing.
  EXPECT_EQ(pairForce(F.Mol, 5, 5), 0.0);
  // Symmetric in its arguments.
  EXPECT_DOUBLE_EQ(pairForce(F.Mol, 3, 17), pairForce(F.Mol, 17, 3));
  // Finite everywhere on the molecule.
  for (int64_t I = 1; I <= 50; ++I)
    EXPECT_TRUE(std::isfinite(pairForce(F.Mol, I, I + 1)));
}

TEST(NBForce, SpeedupBoundedByMaxOverAvg) {
  // Sec. 5.5: Lu/Lf <= pCntmax / pCntavg.
  Fixture F;
  for (int64_t Lanes : {4, 8, 16, 32}) {
    analysis::ProfitEstimate E = analysis::estimateProfit(
        F.PL.PCnt, Lanes, machine::Layout::Cyclic);
    EXPECT_LE(E.Speedup, E.MaxOverAvg + 1e-9) << Lanes;
  }
}

TEST(NBForce, Figure15Golden) {
  // The derived flattened SIMD kernel is the paper's Fig. 15, verbatim
  // modulo our done-test spelling (pr >= pCnt vs pr = pCnt).
  ir::Program P = nbforceFlattenedSimd(64, 8, machine::Layout::Cyclic);
  EXPECT_EQ(ir::printBody(P.body()),
            "at1 = 1 + (LANEINDEX() - 1)\n"
            "pr = 1\n"
            "WHILE (ANY(at1 <= nAtoms))\n"
            "  WHERE (at1 <= nAtoms)\n"
            "    at2 = partners(at1, pr)\n"
            "    F(at1) = F(at1) + Force(at1, at2)\n"
            "    WHERE (pr >= pCnt(at1))\n"
            "      at1 = at1 + NUMLANES()\n"
            "      pr = 1\n"
            "    ELSEWHERE\n"
            "      pr = pr + 1\n"
            "    ENDWHERE\n"
            "  ENDWHERE\n"
            "ENDWHILE\n");
}

} // namespace
