//===- tests/md/PairListTest.cpp -------------------------------*- C++ -*-===//

#include "md/PairList.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::md;

namespace {

Molecule smallMolecule() {
  SodParams P;
  P.NumAtoms = 300;
  return Molecule::syntheticSOD(P);
}

TEST(PairList, MatchesBruteForce) {
  Molecule M = smallMolecule();
  for (double Cutoff : {2.0, 4.0, 8.0}) {
    PairList Fast = buildPairList(M, Cutoff);
    PairList Slow = buildPairListBruteForce(M, Cutoff);
    EXPECT_EQ(Fast.PCnt, Slow.PCnt) << "cutoff " << Cutoff;
    EXPECT_EQ(Fast.Partners, Slow.Partners) << "cutoff " << Cutoff;
    EXPECT_EQ(Fast.Offsets, Slow.Offsets) << "cutoff " << Cutoff;
  }
}

TEST(PairList, HalfCounting) {
  // Every partner id is strictly greater than its owner (1-based).
  Molecule M = smallMolecule();
  PairList PL = buildPairList(M, 6.0);
  for (int64_t I = 0; I < PL.numAtoms(); ++I)
    for (int64_t K = 1; K <= PL.PCnt[static_cast<size_t>(I)]; ++K)
      EXPECT_GT(PL.partner(I, K), I + 1);
}

TEST(PairList, TotalsAndStats) {
  Molecule M = smallMolecule();
  PairList PL = buildPairList(M, 6.0);
  int64_t Sum = 0;
  for (int64_t C : PL.PCnt)
    Sum += C;
  EXPECT_EQ(Sum, PL.total());
  EXPECT_GT(PL.maxPCnt(), 0);
  EXPECT_GT(PL.avgPCnt(), 0.0);
  EXPECT_GE(PL.maxPCnt(), static_cast<int64_t>(PL.avgPCnt()));
}

TEST(PairList, GrowsWithCutoff) {
  Molecule M = smallMolecule();
  PairList A = buildPairList(M, 4.0);
  PairList B = buildPairList(M, 8.0);
  EXPECT_GT(B.total(), A.total());
  EXPECT_GE(B.maxPCnt(), A.maxPCnt());
}

TEST(PairList, EnsureMinOnePartner) {
  Molecule M = smallMolecule();
  PairList PL = buildPairList(M, 4.0);
  // The raw half-counted list always has at least one zero (the last
  // atom has no higher-index partner).
  EXPECT_EQ(PL.PCnt.back(), 0);
  int64_t Before = PL.total();
  int64_t Padded = PL.ensureMinOnePartner();
  EXPECT_GT(Padded, 0);
  EXPECT_EQ(PL.total(), Before + Padded);
  for (int64_t I = 0; I < PL.numAtoms(); ++I)
    EXPECT_GE(PL.PCnt[static_cast<size_t>(I)], 1);
  // Padded entries are self-pairs.
  EXPECT_EQ(PL.partner(PL.numAtoms() - 1, 1), PL.numAtoms());
}

TEST(PairList, RectangularPadding) {
  Molecule M = smallMolecule();
  PairList PL = buildPairList(M, 5.0);
  PL.ensureMinOnePartner();
  int64_t NMax = 512, MaxP = PL.maxPCnt() + 3;
  std::vector<int64_t> Rect = PL.rectangularPartners(NMax, MaxP);
  ASSERT_EQ(static_cast<int64_t>(Rect.size()), NMax * MaxP);
  for (int64_t I = 0; I < PL.numAtoms(); ++I) {
    for (int64_t K = 1; K <= MaxP; ++K) {
      int64_t Want =
          K <= PL.PCnt[static_cast<size_t>(I)] ? PL.partner(I, K) : 0;
      EXPECT_EQ(Rect[static_cast<size_t>(I * MaxP + K - 1)], Want);
    }
  }
  // Rows beyond the molecule are all zero.
  for (int64_t I = PL.numAtoms(); I < NMax; ++I)
    for (int64_t K = 0; K < MaxP; ++K)
      EXPECT_EQ(Rect[static_cast<size_t>(I * MaxP + K)], 0);
  std::vector<int64_t> PC = PL.paddedPCnt(NMax);
  EXPECT_EQ(static_cast<int64_t>(PC.size()), NMax);
  EXPECT_EQ(PC[static_cast<size_t>(PL.numAtoms())], 0);
}

TEST(PairList, HandPlacedGeometry) {
  // Four atoms on a line at x = 0, 1, 2, 10; cutoff 1.5.
  std::vector<Atom> Atoms(4);
  Atoms[1].X = 1.0;
  Atoms[2].X = 2.0;
  Atoms[3].X = 10.0;
  Molecule M(std::move(Atoms));
  PairList PL = buildPairList(M, 1.5);
  EXPECT_EQ(PL.PCnt, (std::vector<int64_t>{1, 1, 0, 0}));
  EXPECT_EQ(PL.partner(0, 1), 2); // atom 1 - atom 2
  EXPECT_EQ(PL.partner(1, 1), 3); // atom 2 - atom 3
  EXPECT_EQ(PL.total(), 2);
  // Exactly on the cutoff counts as a neighbor (<=).
  PairList PL2 = buildPairList(M, 1.0);
  EXPECT_EQ(PL2.total(), 2);
  // Just below the spacing: nothing.
  PairList PL3 = buildPairList(M, 0.99);
  EXPECT_EQ(PL3.total(), 0);
}

} // namespace
