//===- tests/md/MoleculeTest.cpp -------------------------------*- C++ -*-===//

#include "md/Molecule.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace simdflat;
using namespace simdflat::md;

TEST(Molecule, SodHasPaperSize) {
  Molecule M = Molecule::syntheticSOD();
  EXPECT_EQ(M.size(), 6968); // Sec. 5.4
}

TEST(Molecule, Deterministic) {
  SodParams P;
  P.NumAtoms = 500;
  Molecule A = Molecule::syntheticSOD(P);
  Molecule B = Molecule::syntheticSOD(P);
  ASSERT_EQ(A.size(), B.size());
  for (int64_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A.atom(I).X, B.atom(I).X);
    EXPECT_EQ(A.atom(I).Y, B.atom(I).Y);
    EXPECT_EQ(A.atom(I).Z, B.atom(I).Z);
  }
}

TEST(Molecule, DifferentSeedsDiffer) {
  SodParams P1, P2;
  P1.NumAtoms = P2.NumAtoms = 200;
  P2.Seed = 7;
  Molecule A = Molecule::syntheticSOD(P1);
  Molecule B = Molecule::syntheticSOD(P2);
  bool AnyDiff = false;
  for (int64_t I = 0; I < A.size(); ++I)
    AnyDiff |= A.atom(I).X != B.atom(I).X;
  EXPECT_TRUE(AnyDiff);
}

TEST(Molecule, ChainStepsAreBondLength) {
  SodParams P;
  P.NumAtoms = 400;
  Molecule M = Molecule::syntheticSOD(P);
  // Consecutive atoms within a subunit sit one bond apart.
  int64_t Half = P.NumAtoms / 2;
  for (int64_t I = 0; I + 1 < Half; ++I) {
    double D = std::sqrt(M.dist2(I, I + 1));
    EXPECT_NEAR(D, P.BondLength, 1e-9) << "atom " << I;
  }
}

TEST(Molecule, TwoSubunitsAreSpatiallySeparated) {
  Molecule M = Molecule::syntheticSOD();
  int64_t Half = M.size() / 2;
  double Mean1 = 0, Mean2 = 0;
  for (int64_t I = 0; I < Half; ++I)
    Mean1 += M.atom(I).X;
  for (int64_t I = Half; I < M.size(); ++I)
    Mean2 += M.atom(I).X;
  Mean1 /= static_cast<double>(Half);
  Mean2 /= static_cast<double>(M.size() - Half);
  EXPECT_LT(Mean1, 0.0);
  EXPECT_GT(Mean2, 0.0);
  EXPECT_GT(Mean2 - Mean1, 15.0); // well-separated subunit centroids
}

TEST(Molecule, DensityRoughlyMatchesTarget) {
  // All atoms of subunit 1 stay within its confinement sphere.
  SodParams P;
  Molecule M = Molecule::syntheticSOD(P);
  int64_t Half = M.size() / 2;
  double Volume = static_cast<double>(Half) / P.Density;
  double Radius = std::cbrt(3.0 * Volume / (4.0 * M_PI));
  double CX = -Radius * 0.95;
  for (int64_t I = 0; I < Half; ++I) {
    double DX = M.atom(I).X - CX, DY = M.atom(I).Y, DZ = M.atom(I).Z;
    EXPECT_LE(std::sqrt(DX * DX + DY * DY + DZ * DZ), Radius + 1e-6);
  }
}
