//===- tests/native/FlattenedLoopTest.cpp ----------------------*- C++ -*-===//

#include "native/FlattenedLoop.h"

#include "workloads/TripCounts.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

using namespace simdflat;
using namespace simdflat::native;
using namespace simdflat::workloads;

namespace {

using PairSet = std::map<std::pair<int64_t, int64_t>, int>;

template <typename Driver> PairSet collect(int64_t N, Driver &&D) {
  PairSet Out;
  D(N, [&Out](int64_t O, int64_t I) { Out[{O, I}] += 1; });
  return Out;
}

PairSet wantSet(int64_t N, const std::vector<int64_t> &Trips) {
  PairSet Out;
  for (int64_t O = 0; O < N; ++O)
    for (int64_t I = 0; I < Trips[static_cast<size_t>(O)]; ++I)
      Out[{O, I}] = 1;
  return Out;
}

class FlattenedLoopDist : public ::testing::TestWithParam<TripDist> {};

TEST_P(FlattenedLoopDist, AllDriversCoverTheSameSet) {
  const int64_t N = 103; // deliberately not a multiple of W
  std::vector<int64_t> Trips =
      generateTripCounts(GetParam(), N, 9, 1234);
  auto T = [&Trips](int64_t O) { return Trips[static_cast<size_t>(O)]; };
  PairSet Want = wantSet(N, Trips);

  PairSet Nested = collect(N, [&](int64_t M, auto Body) {
    nestedForEach(M, T, Body);
  });
  PairSet Fused = collect(N, [&](int64_t M, auto Body) {
    flattenedScalar(M, T, Body);
  });
  PairSet Padded = collect(N, [&](int64_t M, auto Body) {
    paddedForEach<8>(M, T, Body);
  });
  PairSet Flat = collect(N, [&](int64_t M, auto Body) {
    flattenedForEach<8>(M, T, Body);
  });
  EXPECT_EQ(Nested, Want);
  EXPECT_EQ(Fused, Want);
  EXPECT_EQ(Padded, Want);
  EXPECT_EQ(Flat, Want);
}

INSTANTIATE_TEST_SUITE_P(All, FlattenedLoopDist,
                         ::testing::ValuesIn(AllTripDists),
                         [](const auto &Info) {
                           return tripDistName(Info.param);
                         });

TEST(FlattenedLoop, StepCountsMatchEq1AndEq2) {
  // Trips 4,1,2,1 | 1,3,1,3 on 2 lanes: padded = 12 steps, flattened = 8
  // (the Sec. 3 EXAMPLE numbers; lanes here take rows cyclically so the
  // assignment differs from the paper's blocks, but the totals match
  // because the loads happen to balance).
  std::vector<int64_t> Trips = {4, 1, 1, 3, 2, 1, 1, 3};
  auto T = [&Trips](int64_t O) { return Trips[static_cast<size_t>(O)]; };
  auto Nop = [](int64_t, int64_t) {};
  LaneStats Padded = paddedForEach<2>(8, T, Nop);
  LaneStats Flat = flattenedForEach<2>(8, T, Nop);
  EXPECT_EQ(Padded.Steps, 12);
  EXPECT_EQ(Flat.Steps, 8);
  EXPECT_EQ(Padded.ActiveLaneSlots, 16);
  EXPECT_EQ(Flat.ActiveLaneSlots, 16);
  EXPECT_DOUBLE_EQ(Flat.utilization(), 1.0);
  EXPECT_LT(Padded.utilization(), 1.0);
}

TEST(FlattenedLoop, ZeroTripRowsSkipped) {
  std::vector<int64_t> Trips = {0, 3, 0, 0, 2, 0};
  auto T = [&Trips](int64_t O) { return Trips[static_cast<size_t>(O)]; };
  PairSet Want = wantSet(6, Trips);
  PairSet Flat = collect(6, [&](int64_t M, auto Body) {
    flattenedForEach<4>(M, T, Body);
  });
  PairSet Fused = collect(6, [&](int64_t M, auto Body) {
    flattenedScalar(M, T, Body);
  });
  EXPECT_EQ(Flat, Want);
  EXPECT_EQ(Fused, Want);
}

TEST(FlattenedLoop, AllRowsEmpty) {
  auto T = [](int64_t) { return int64_t{0}; };
  int Calls = 0;
  flattenedForEach<4>(16, T, [&Calls](int64_t, int64_t) { ++Calls; });
  flattenedScalar(16, T, [&Calls](int64_t, int64_t) { ++Calls; });
  LaneStats S = paddedForEach<4>(16, T, [&Calls](int64_t, int64_t) {
    ++Calls;
  });
  EXPECT_EQ(Calls, 0);
  EXPECT_EQ(S.Steps, 0);
  // A run that did nothing is 0% utilized, not 100%: the empty case
  // must not report perfect utilization into bench aggregates.
  EXPECT_DOUBLE_EQ(S.utilization(), 0.0);
  EXPECT_DOUBLE_EQ(LaneStats{}.utilization(), 0.0);
}

/// All four drivers must agree on the exact (o, i) multiset - body call
/// counts included - for trip counts drawn from {-1, 0, 1, k}. The
/// flattened drivers' skip loops once tested `== 0` only, so a row with
/// a negative trip count executed Body(o, 0) once while the nested
/// reference ran it zero times.
TEST(FlattenedLoop, DifferentialNegativeAndZeroTrips) {
  const int64_t K = 5;
  const std::vector<int64_t> Menu = {-1, 0, 1, K};
  // Sweep every trip-count assignment for a short nest (4^4 cases) so
  // all placements of negative rows (leading, trailing, interior,
  // adjacent) are covered, with W chosen to straddle row groups.
  const int64_t N = 4;
  for (int Case = 0; Case < 4 * 4 * 4 * 4; ++Case) {
    std::vector<int64_t> Trips;
    for (int Digit = 0, C = Case; Digit < N; ++Digit, C /= 4)
      Trips.push_back(Menu[static_cast<size_t>(C % 4)]);
    auto T = [&Trips](int64_t O) {
      return Trips[static_cast<size_t>(O)];
    };
    PairSet Want;
    nestedForEach(N, T, [&Want](int64_t O, int64_t I) {
      Want[{O, I}] += 1;
    });
    PairSet Fused = collect(N, [&](int64_t M, auto Body) {
      flattenedScalar(M, T, Body);
    });
    PairSet Padded = collect(N, [&](int64_t M, auto Body) {
      paddedForEach<2>(M, T, Body);
    });
    PairSet Flat = collect(N, [&](int64_t M, auto Body) {
      flattenedForEach<2>(M, T, Body);
    });
    EXPECT_EQ(Fused, Want) << "case " << Case;
    EXPECT_EQ(Padded, Want) << "case " << Case;
    EXPECT_EQ(Flat, Want) << "case " << Case;
  }
}

TEST(FlattenedLoop, NegativeTripRowsRunNoBody) {
  // The minimal regression: one row, trip count -1.
  auto T = [](int64_t) { return int64_t{-1}; };
  int Calls = 0;
  auto Count = [&Calls](int64_t, int64_t) { ++Calls; };
  nestedForEach(1, T, Count);
  flattenedScalar(1, T, Count);
  flattenedForEach<4>(1, T, Count);
  paddedForEach<4>(1, T, Count);
  EXPECT_EQ(Calls, 0);
}

TEST(FlattenedLoop, PaddedPartialGroupAccounting) {
  // N = 5, W = 4: the second group holds one row. By default the group
  // is padded to the full machine width (the paper's L2u model: idle
  // hardware lanes still burn their slots); with PadToMachineWidth off
  // only the occupied lane is charged.
  std::vector<int64_t> Trips = {2, 2, 2, 2, 3};
  auto T = [&Trips](int64_t O) { return Trips[static_cast<size_t>(O)]; };
  auto Nop = [](int64_t, int64_t) {};
  LaneStats Full = paddedForEach<4>(5, T, Nop);
  EXPECT_EQ(Full.Steps, 5); // 2 for the full group + 3 for the tail
  EXPECT_EQ(Full.ActiveLaneSlots, 11);
  EXPECT_EQ(Full.TotalLaneSlots, 5 * 4);
  LaneStats Tight = paddedForEach<4>(5, T, Nop,
                                     /*PadToMachineWidth=*/false);
  EXPECT_EQ(Tight.Steps, 5);
  EXPECT_EQ(Tight.ActiveLaneSlots, 11);
  // Tail group charges 1 lane per step instead of 4.
  EXPECT_EQ(Tight.TotalLaneSlots, 2 * 4 + 3 * 1);
  EXPECT_GT(Tight.utilization(), Full.utilization());
}

TEST(FlattenedLoop, FlattenedNeverMoreStepsThanPadded) {
  for (TripDist D : AllTripDists) {
    std::vector<int64_t> Trips = generateTripCounts(D, 257, 6, 99);
    auto T = [&Trips](int64_t O) {
      return Trips[static_cast<size_t>(O)];
    };
    auto Nop = [](int64_t, int64_t) {};
    LaneStats Padded = paddedForEach<8>(257, T, Nop);
    LaneStats Flat = flattenedForEach<8>(257, T, Nop);
    EXPECT_LE(Flat.Steps, Padded.Steps) << tripDistName(D);
    EXPECT_EQ(Flat.ActiveLaneSlots, Padded.ActiveLaneSlots);
  }
}

TEST(FlattenedLoop, RowMajorOrderWithinEachRow) {
  // Within one row, inner iterations arrive in order for every driver.
  std::vector<int64_t> Trips = {3, 5, 2};
  auto T = [&Trips](int64_t O) { return Trips[static_cast<size_t>(O)]; };
  std::map<int64_t, std::vector<int64_t>> SeenFlat;
  flattenedForEach<2>(3, T, [&](int64_t O, int64_t I) {
    SeenFlat[O].push_back(I);
  });
  for (auto &[O, Is] : SeenFlat) {
    for (size_t K = 0; K < Is.size(); ++K)
      EXPECT_EQ(Is[K], static_cast<int64_t>(K)) << "row " << O;
  }
}

} // namespace
