//===- tests/tools/FlattendCliTest.cpp -------------------------*- C++ -*-===//
//
// The flattend process contract at the stdin/stdout boundary: a
// truncated final JSON line (EOF mid-record, no terminating newline) is
// a structured per-request error - answered in sequence and counted in
// the summary - never an exit-5 accounting inconsistency; an
// unterminated line that still parses as a complete request is served
// normally; and --engine selects the execution backend, echoed in the
// summary record. FLATTEND_BIN is injected by the build (see
// tests/CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

namespace {

struct CliResult {
  int ExitCode = -1;
  std::string Output; // stdout + stderr interleaved
};

/// Runs flattend with \p Args, feeding \p Stdin verbatim (no newline is
/// appended - callers control whether the final record is terminated),
/// capturing combined output and the exit code.
CliResult runFlattend(const std::string &Args, const std::string &Stdin) {
  CliResult R;
  std::string In = "/tmp/flattend_cli_in_" + std::to_string(getpid());
  if (FILE *F = std::fopen(In.c_str(), "wb")) {
    std::fwrite(Stdin.data(), 1, Stdin.size(), F);
    std::fclose(F);
  }
  std::string Cmd =
      std::string(FLATTEND_BIN) + " " + Args + " < " + In + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  std::array<char, 4096> Buf;
  size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), P)) > 0)
    R.Output.append(Buf.data(), N);
  int Status = pclose(P);
  if (Status >= 0 && WIFEXITED(Status))
    R.ExitCode = WEXITSTATUS(Status);
  std::remove(In.c_str());
  return R;
}

/// One complete request line (terminated by the caller). The program is
/// trivially servable on any engine.
std::string goodRequest(int Id) {
  return "{\"id\": " + std::to_string(Id) +
         ", \"source\": \"PROGRAM REPEAT\\nINTEGER a\\nINTEGER b\\n"
         "BEGIN\\n  b = a * 3 + 1\\nEND\\n\", \"fuel\": 100000}";
}

TEST(FlattendCli, TruncatedFinalLineIsStructuredErrorNotExitFive) {
  // A valid request, then a record cut off mid-JSON with no newline -
  // the shape a killed producer leaves behind. The cut record must get
  // its own structured reply naming the truncation, the summary must
  // count it as a bad line, and the accounting self-check must pass.
  std::string In =
      goodRequest(1) + "\n{\"id\": 2, \"source\": \"PROGRAM CU";
  CliResult R = runFlattend("--workers=1", In);
  EXPECT_EQ(R.ExitCode, 0)
      << "a truncated record is a per-request error, not an accounting "
         "inconsistency; output:\n"
      << R.Output;
  EXPECT_NE(R.Output.find("truncated (EOF mid-record)"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"outcome\":\"served\""), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"outcome\":\"compile-error\""),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"bad_lines\":1"), std::string::npos)
      << R.Output;
}

TEST(FlattendCli, UnterminatedCompleteFinalLineIsServed) {
  // Missing only the final newline: the record itself is whole, so it
  // must be served like any other - no truncation diagnostic.
  CliResult R = runFlattend("--workers=1", goodRequest(1));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"outcome\":\"served\""), std::string::npos)
      << R.Output;
  EXPECT_EQ(R.Output.find("truncated"), std::string::npos) << R.Output;
}

TEST(FlattendCli, EngineFlagSelectsBackendAndIsEchoed) {
  for (const char *Eng : {"tree", "bytecode", "hostsimd"}) {
    CliResult R = runFlattend(
        std::string("--workers=1 --engine=") + Eng, goodRequest(1) + "\n");
    EXPECT_EQ(R.ExitCode, 0) << Eng << ":\n" << R.Output;
    EXPECT_NE(R.Output.find("\"outcome\":\"served\""), std::string::npos)
        << Eng << ":\n" << R.Output;
    EXPECT_NE(R.Output.find(std::string("\"engine\":\"") + Eng + "\""),
              std::string::npos)
        << Eng << ":\n" << R.Output;
  }
  EXPECT_EQ(runFlattend("--engine=warp", "").ExitCode, 2);
}

/// A request whose program has the DOALL/DO nest the adaptive layer
/// profiles; trips come from the L array.
std::string nestRequest(int Id, const std::string &LValues) {
  return "{\"id\": " + std::to_string(Id) +
         ", \"source\": \"PROGRAM WIDE\\nINTEGER K\\n"
         "DISTRIBUTED INTEGER L(8)\\nDISTRIBUTED INTEGER X(8, 64)\\n"
         "INTEGER i\\nINTEGER j\\nBEGIN\\n  DOALL i = 1, K\\n"
         "    DO j = 1, L(i)\\n      X(i, j) = i * j\\n    ENDDO\\n"
         "  ENDDO\\nEND\\n\", \"ints\": {\"K\": 8}, "
         "\"int_arrays\": {\"L\": [" +
         LValues + "]}, \"lanes\": 4, \"fuel\": 100000}";
}

TEST(FlattendCli, AdaptiveModeDecidesAndTagsReplies) {
  // Repeated probe runs accumulate the trip profile; once the decision
  // fires, replies carry the chosen strategy and a positive epoch, and
  // the summary counts the decision. Without --adaptive every reply
  // stays tagged "static".
  std::string In;
  for (int I = 1; I <= 12; ++I)
    In += nestRequest(I, "6,6,6,6,6,6,6,6") + "\n";

  CliResult Adaptive = runFlattend(
      "--workers=1 --adaptive --adaptive-min-samples=4", In);
  EXPECT_EQ(Adaptive.ExitCode, 0) << Adaptive.Output;
  EXPECT_EQ(Adaptive.Output.find("\"strategy\":\"static\""),
            std::string::npos)
      << "adaptive replies must be tagged with a real strategy:\n"
      << Adaptive.Output;
  EXPECT_NE(Adaptive.Output.find("\"strategy\":\"unflattened\""),
            std::string::npos)
      << Adaptive.Output;
  EXPECT_NE(Adaptive.Output.find("\"strategy_epoch\":1"),
            std::string::npos)
      << "a decision must bump the epoch:\n"
      << Adaptive.Output;
  EXPECT_NE(Adaptive.Output.find("\"adaptive\":true"), std::string::npos)
      << Adaptive.Output;
  EXPECT_EQ(Adaptive.Output.find("\"adaptive_decisions\":0"),
            std::string::npos)
      << "the summary must count the decision:\n"
      << Adaptive.Output;

  CliResult Static = runFlattend("--workers=1", nestRequest(1, "6,6,6,6,6,6,6,6") + "\n");
  EXPECT_EQ(Static.ExitCode, 0) << Static.Output;
  EXPECT_NE(Static.Output.find("\"strategy\":\"static\""),
            std::string::npos)
      << Static.Output;
}

TEST(FlattendCli, ExceptionBarrierExitsFourWithDiagnostic) {
  CliResult R = runFlattend("--test-throw", "");
  EXPECT_EQ(R.ExitCode, 4) << R.Output;
  EXPECT_NE(R.Output.find("flattend: internal error:"), std::string::npos)
      << R.Output;
}

TEST(FlattendCli, HealthCheckReportsOkAndExitsZero) {
  for (const char *Eng : {"bytecode", "hostsimd"}) {
    CliResult R =
        runFlattend(std::string("--health --engine=") + Eng, "");
    EXPECT_EQ(R.ExitCode, 0) << Eng << ":\n" << R.Output;
    EXPECT_NE(R.Output.find("\"health\":\"ok\""), std::string::npos)
        << Eng << ":\n" << R.Output;
    EXPECT_NE(R.Output.find(std::string("\"engine\":\"") + Eng + "\""),
              std::string::npos)
        << Eng << ":\n" << R.Output;
  }
}

TEST(FlattendCli, HealthCheckFailsWhenTheConfigurationCannotServe) {
  // --max-fuel=1 caps the probe's own fuel at 1: it traps, which means
  // this configuration cannot serve real programs - unhealthy, exit 1.
  CliResult R = runFlattend("--health --max-fuel=1", "");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  EXPECT_NE(R.Output.find("\"health\":\"bad\""), std::string::npos)
      << R.Output;
}

/// Launches flattend with \p Args (split on spaces) with pipes on stdin
/// and stdout; popen cannot deliver signals, so the drain test needs
/// the raw pid.
struct FlattendProcess {
  pid_t Pid = -1;
  int In = -1;  ///< write end of the child's stdin
  int Out = -1; ///< read end of the child's stdout

  static FlattendProcess launch(const std::vector<std::string> &Args) {
    FlattendProcess P;
    int InPipe[2], OutPipe[2];
    if (pipe(InPipe) != 0 || pipe(OutPipe) != 0)
      return P;
    pid_t Pid = fork();
    if (Pid == 0) {
      dup2(InPipe[0], STDIN_FILENO);
      dup2(OutPipe[1], STDOUT_FILENO);
      close(InPipe[0]);
      close(InPipe[1]);
      close(OutPipe[0]);
      close(OutPipe[1]);
      std::vector<char *> Argv;
      static std::string Bin = FLATTEND_BIN;
      Argv.push_back(Bin.data());
      std::vector<std::string> Copy = Args;
      for (std::string &A : Copy)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      execv(Bin.c_str(), Argv.data());
      _exit(127);
    }
    close(InPipe[0]);
    close(OutPipe[1]);
    P.Pid = Pid;
    P.In = InPipe[1];
    P.Out = OutPipe[0];
    return P;
  }

  void write(const std::string &S) const {
    ssize_t N = ::write(In, S.data(), S.size());
    (void)N;
  }

  /// Reads the child's stdout to EOF, then reaps it.
  int finish(std::string &Output) {
    std::array<char, 4096> Buf;
    ssize_t N;
    while ((N = ::read(Out, Buf.data(), Buf.size())) > 0)
      Output.append(Buf.data(), (size_t)N);
    close(Out);
    int Status = 0;
    waitpid(Pid, &Status, 0);
    return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  }
};

TEST(FlattendCli, SigtermDrainsGracefullyAndAccountingBalances) {
  // The lifecycle contract under SIGTERM: a daemon mid-stream with a
  // stalled backlog must stop reading, resolve every request it
  // admitted (finish or shed with the draining status), print every
  // reply plus a drained summary, and exit 0 with balanced accounting.
  FlattendProcess P = FlattendProcess::launch(
      {"--workers=1", "--fault-worker-stall-micros=50000",
       "--drain-deadline-ms=100"});
  ASSERT_GT(P.Pid, 0);

  constexpr int N = 8;
  for (int I = 1; I <= N; ++I)
    P.write(goodRequest(I) + "\n");
  // Leave stdin OPEN: the signal must interrupt the blocking read, not
  // ride in behind an EOF. Give the daemon time to admit the backlog
  // and start the (stalled) first request.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_EQ(kill(P.Pid, SIGTERM), 0);

  std::string Output;
  int Exit = P.finish(Output);
  close(P.In);

  EXPECT_EQ(Exit, 0) << "a graceful drain is a success, not a crash:\n"
                     << Output;
  EXPECT_NE(Output.find("\"drained\":true"), std::string::npos) << Output;
  EXPECT_NE(Output.find("\"summary\":true"), std::string::npos) << Output;
  // Every admitted request resolved: count reply lines by their ids.
  int Replies = 0, Served = 0, DrainingSheds = 0;
  size_t Pos = 0;
  while ((Pos = Output.find("\"outcome\":", Pos)) != std::string::npos) {
    ++Replies;
    Pos += 10;
  }
  Pos = 0;
  while ((Pos = Output.find("\"outcome\":\"served\"", Pos)) !=
         std::string::npos) {
    ++Served;
    ++Pos;
  }
  Pos = 0;
  while ((Pos = Output.find("\"draining\":true", Pos)) !=
         std::string::npos) {
    ++DrainingSheds;
    ++Pos;
  }
  EXPECT_EQ(Replies, N) << "every submitted request must get a reply:\n"
                        << Output;
  EXPECT_GE(Served, 1) << Output;
  // 8 x 50ms of stalled work against a 100ms drain deadline: the sweep
  // must shed at least one queued request with the draining status.
  EXPECT_GE(DrainingSheds, 1) << Output;
  EXPECT_EQ(Served + DrainingSheds, N)
      << "drain outcomes must partition the backlog:\n"
      << Output;
  // The summary's own self-check ran (exit 0 already proves it, but
  // pin the counters the test depends on).
  EXPECT_NE(Output.find("\"drain_sheds\":" + std::to_string(DrainingSheds)),
            std::string::npos)
      << Output;
}

} // namespace
