//===- tests/tools/FlattendCliTest.cpp -------------------------*- C++ -*-===//
//
// The flattend process contract at the stdin/stdout boundary: a
// truncated final JSON line (EOF mid-record, no terminating newline) is
// a structured per-request error - answered in sequence and counted in
// the summary - never an exit-5 accounting inconsistency; an
// unterminated line that still parses as a complete request is served
// normally; and --engine selects the execution backend, echoed in the
// summary record. FLATTEND_BIN is injected by the build (see
// tests/CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

namespace {

struct CliResult {
  int ExitCode = -1;
  std::string Output; // stdout + stderr interleaved
};

/// Runs flattend with \p Args, feeding \p Stdin verbatim (no newline is
/// appended - callers control whether the final record is terminated),
/// capturing combined output and the exit code.
CliResult runFlattend(const std::string &Args, const std::string &Stdin) {
  CliResult R;
  std::string In = "/tmp/flattend_cli_in_" + std::to_string(getpid());
  if (FILE *F = std::fopen(In.c_str(), "wb")) {
    std::fwrite(Stdin.data(), 1, Stdin.size(), F);
    std::fclose(F);
  }
  std::string Cmd =
      std::string(FLATTEND_BIN) + " " + Args + " < " + In + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  std::array<char, 4096> Buf;
  size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), P)) > 0)
    R.Output.append(Buf.data(), N);
  int Status = pclose(P);
  if (Status >= 0 && WIFEXITED(Status))
    R.ExitCode = WEXITSTATUS(Status);
  std::remove(In.c_str());
  return R;
}

/// One complete request line (terminated by the caller). The program is
/// trivially servable on any engine.
std::string goodRequest(int Id) {
  return "{\"id\": " + std::to_string(Id) +
         ", \"source\": \"PROGRAM REPEAT\\nINTEGER a\\nINTEGER b\\n"
         "BEGIN\\n  b = a * 3 + 1\\nEND\\n\", \"fuel\": 100000}";
}

TEST(FlattendCli, TruncatedFinalLineIsStructuredErrorNotExitFive) {
  // A valid request, then a record cut off mid-JSON with no newline -
  // the shape a killed producer leaves behind. The cut record must get
  // its own structured reply naming the truncation, the summary must
  // count it as a bad line, and the accounting self-check must pass.
  std::string In =
      goodRequest(1) + "\n{\"id\": 2, \"source\": \"PROGRAM CU";
  CliResult R = runFlattend("--workers=1", In);
  EXPECT_EQ(R.ExitCode, 0)
      << "a truncated record is a per-request error, not an accounting "
         "inconsistency; output:\n"
      << R.Output;
  EXPECT_NE(R.Output.find("truncated (EOF mid-record)"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"outcome\":\"served\""), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"outcome\":\"compile-error\""),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"bad_lines\":1"), std::string::npos)
      << R.Output;
}

TEST(FlattendCli, UnterminatedCompleteFinalLineIsServed) {
  // Missing only the final newline: the record itself is whole, so it
  // must be served like any other - no truncation diagnostic.
  CliResult R = runFlattend("--workers=1", goodRequest(1));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"outcome\":\"served\""), std::string::npos)
      << R.Output;
  EXPECT_EQ(R.Output.find("truncated"), std::string::npos) << R.Output;
}

TEST(FlattendCli, EngineFlagSelectsBackendAndIsEchoed) {
  for (const char *Eng : {"tree", "bytecode", "hostsimd"}) {
    CliResult R = runFlattend(
        std::string("--workers=1 --engine=") + Eng, goodRequest(1) + "\n");
    EXPECT_EQ(R.ExitCode, 0) << Eng << ":\n" << R.Output;
    EXPECT_NE(R.Output.find("\"outcome\":\"served\""), std::string::npos)
        << Eng << ":\n" << R.Output;
    EXPECT_NE(R.Output.find(std::string("\"engine\":\"") + Eng + "\""),
              std::string::npos)
        << Eng << ":\n" << R.Output;
  }
  EXPECT_EQ(runFlattend("--engine=warp", "").ExitCode, 2);
}

TEST(FlattendCli, ExceptionBarrierExitsFourWithDiagnostic) {
  CliResult R = runFlattend("--test-throw", "");
  EXPECT_EQ(R.ExitCode, 4) << R.Output;
  EXPECT_NE(R.Output.find("flattend: internal error:"), std::string::npos)
      << R.Output;
}

} // namespace
