//===- tests/tools/PerfCompareTest.cpp -------------------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/perf_compare/PerfCompare.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace simdflat;
using namespace simdflat::perfcompare;

namespace {

/// A minimal simdflat-bench-v1 document with one metric per entry of
/// \p Metrics: (case, metric, value, gate, lowerIsBetter).
struct Spec {
  const char *Case;
  const char *Metric;
  double Value;
  bool Gate = true;
  bool Lower = true;
};

json::Value makeDoc(std::initializer_list<Spec> Metrics) {
  json::Value Doc = json::Value::object();
  Doc.set("schema", "simdflat-bench-v1");
  Doc.set("bench", "unit");
  json::Value Arr = json::Value::array();
  for (const Spec &S : Metrics) {
    json::Value M = json::Value::object();
    M.set("case", S.Case);
    M.set("metric", S.Metric);
    M.set("value", S.Value);
    M.set("gate", S.Gate);
    M.set("better", S.Lower ? "lower" : "higher");
    Arr.push(std::move(M));
  }
  Doc.set("metrics", std::move(Arr));
  return Doc;
}

TEST(PerfCompare, IdenticalRunsPass) {
  json::Value Doc = makeDoc({{"a", "steps", 100.0}});
  auto R = compareBenchJson(Doc, Doc);
  ASSERT_TRUE(R.ok()) << R.error().render();
  EXPECT_TRUE(R->ok());
  EXPECT_EQ(R->regressionCount(), 0);
  ASSERT_EQ(R->Deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(R->Deltas[0].RelDelta, 0.0);
}

TEST(PerfCompare, RegressionBeyondThresholdFails) {
  auto R = compareBenchJson(makeDoc({{"a", "steps", 100.0}}),
                            makeDoc({{"a", "steps", 120.0}}));
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(R->ok());
  EXPECT_EQ(R->regressionCount(), 1);
  EXPECT_TRUE(R->Deltas[0].Regressed);
  EXPECT_NEAR(R->Deltas[0].RelDelta, 0.2, 1e-12);
}

TEST(PerfCompare, WithinThresholdPasses) {
  auto R = compareBenchJson(makeDoc({{"a", "steps", 100.0}}),
                            makeDoc({{"a", "steps", 109.0}}));
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R->ok());
  EXPECT_FALSE(R->Deltas[0].Regressed);
  EXPECT_FALSE(R->Deltas[0].Improved);
}

TEST(PerfCompare, ImprovementNeverFails) {
  auto R = compareBenchJson(makeDoc({{"a", "steps", 100.0}}),
                            makeDoc({{"a", "steps", 50.0}}));
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R->ok());
  EXPECT_TRUE(R->Deltas[0].Improved);
}

TEST(PerfCompare, HigherIsBetterDirectionFlips) {
  // Utilization dropping 20% is a regression...
  auto R = compareBenchJson(
      makeDoc({{"a", "utilization", 0.9, true, false}}),
      makeDoc({{"a", "utilization", 0.7, true, false}}));
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(R->ok());
  // ...and rising 20% is an improvement.
  auto R2 = compareBenchJson(
      makeDoc({{"a", "utilization", 0.7, true, false}}),
      makeDoc({{"a", "utilization", 0.9, true, false}}));
  ASSERT_TRUE(R2.ok());
  EXPECT_TRUE(R2->ok());
  EXPECT_TRUE(R2->Deltas[0].Improved);
}

TEST(PerfCompare, UngatedMetricsNeverRegress) {
  auto R = compareBenchJson(
      makeDoc({{"a", "wall_seconds", 1.0, false}}),
      makeDoc({{"a", "wall_seconds", 10.0, false}}));
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R->ok());
  EXPECT_FALSE(R->Deltas[0].Regressed);
}

TEST(PerfCompare, TripHistogramCountersAreInformational) {
  // A workload re-seed can shift the trip profile arbitrarily; the
  // histogram counters must never fail the gate, even when a producer
  // (old bench binary, hand-edited baseline) marked them gated.
  auto R = compareBenchJson(
      makeDoc({{"a", "trip_hist_samples", 64.0, /*Gate=*/true},
               {"a", "trip_hist_mean", 6.0, /*Gate=*/true},
               {"a", "trip_hist_exact_6", 64.0, /*Gate=*/true},
               {"a", "work_steps", 100.0}}),
      makeDoc({{"a", "trip_hist_samples", 640.0, /*Gate=*/true},
               {"a", "trip_hist_mean", 60.0, /*Gate=*/true},
               {"a", "trip_hist_exact_6", 0.0, /*Gate=*/true},
               {"a", "work_steps", 100.0}}));
  ASSERT_TRUE(R.ok()) << R.error().render();
  EXPECT_TRUE(R->ok());
  EXPECT_EQ(R->regressionCount(), 0);
  for (const MetricDelta &D : R->Deltas)
    EXPECT_FALSE(D.Regressed) << D.Case << "/" << D.Metric;
  // And a dropped histogram counter is not a "gated metric dropped"
  // warning either: the gate flag was stripped on both sides.
  auto R2 = compareBenchJson(
      makeDoc({{"a", "trip_hist_log2_2", 8.0, /*Gate=*/true},
               {"a", "work_steps", 100.0}}),
      makeDoc({{"a", "work_steps", 100.0}}));
  ASSERT_TRUE(R2.ok());
  EXPECT_TRUE(R2->MissingInNew.empty());
}

TEST(PerfCompare, CustomThreshold) {
  CompareOptions Opts;
  Opts.Threshold = 0.5;
  auto R = compareBenchJson(makeDoc({{"a", "steps", 100.0}}),
                            makeDoc({{"a", "steps", 140.0}}), Opts);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R->ok());
}

TEST(PerfCompare, ZeroBaselineBreach) {
  // 0 -> nonzero on a lower-is-better gate must regress even though the
  // ratio is undefined.
  auto R = compareBenchJson(makeDoc({{"a", "steps", 0.0}}),
                            makeDoc({{"a", "steps", 5.0}}));
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(R->ok());
  // 0 -> 0 is clean.
  auto R2 = compareBenchJson(makeDoc({{"a", "steps", 0.0}}),
                             makeDoc({{"a", "steps", 0.0}}));
  ASSERT_TRUE(R2.ok());
  EXPECT_TRUE(R2->ok());
}

TEST(PerfCompare, MissingMetricsReported) {
  auto R = compareBenchJson(
      makeDoc({{"a", "steps", 1.0}, {"b", "steps", 2.0}}),
      makeDoc({{"a", "steps", 1.0}, {"c", "steps", 3.0}}));
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R->ok()); // warnings, not failures
  ASSERT_EQ(R->MissingInNew.size(), 1u);
  EXPECT_EQ(R->MissingInNew[0], "b/steps");
  ASSERT_EQ(R->MissingInBase.size(), 1u);
  EXPECT_EQ(R->MissingInBase[0], "c/steps");
}

TEST(PerfCompare, NewCounterFamilyInTheNewRunIsInformational) {
  // The exact shape of a PR that teaches an existing bench new
  // counters: the new run records a gated family (fairness/*) the
  // baseline has never heard of. The unknown metrics must surface as
  // notes - never compared, never regressed - while the shared metric
  // stays gated, so landing new counters and their baseline update in
  // one PR keeps the gate green in both orders.
  auto R = compareBenchJson(
      makeDoc({{"cache", "served", 16.0}}),
      makeDoc({{"cache", "served", 16.0},
               {"fairness", "victim_shed", 0.0},
               {"fairness", "hot_shed", 76.0, true, false}}));
  ASSERT_TRUE(R.ok()) << R.error().render();
  EXPECT_TRUE(R->ok()) << "a new counter family tripped the gate";
  EXPECT_EQ(R->regressionCount(), 0);
  ASSERT_EQ(R->Deltas.size(), 1u) << "only the shared metric compares";
  EXPECT_EQ(R->Deltas[0].Metric, "served");
  ASSERT_EQ(R->MissingInBase.size(), 2u);
  EXPECT_EQ(R->MissingInBase[0], "fairness/hot_shed");
  EXPECT_EQ(R->MissingInBase[1], "fairness/victim_shed");
  std::string Text = R->render({});
  EXPECT_NE(Text.find("new metric with no baseline"), std::string::npos);
  EXPECT_NE(Text.find("OK"), std::string::npos);
}

TEST(PerfCompare, SchemaAndNameValidation) {
  json::Value NoSchema = json::Value::object();
  NoSchema.set("metrics", json::Value::array());
  EXPECT_FALSE(compareBenchJson(NoSchema, NoSchema).ok());

  json::Value Other = makeDoc({});
  Other.set("bench", "different");
  EXPECT_FALSE(compareBenchJson(makeDoc({}), Other).ok());
}

/// Stamps meta.engine = \p Eng onto a copy of \p Doc.
json::Value withEngine(json::Value Doc, const char *Eng) {
  json::Value Meta = json::Value::object();
  Meta.set("engine", Eng);
  Doc.set("meta", std::move(Meta));
  return Doc;
}

TEST(PerfCompare, EngineTagMatrixRefusesAnyCrossEngineDiff) {
  // The cross-engine refusal is generic over the tag value: every
  // off-diagonal pair of the three-engine matrix refuses (a hostsimd
  // baseline diffs only against a hostsimd run), every diagonal pair
  // compares normally.
  const char *Tags[] = {"tree", "bytecode", "hostsimd"};
  for (const char *BaseEng : Tags) {
    for (const char *NewEng : Tags) {
      auto R = compareBenchJson(
          withEngine(makeDoc({{"a", "steps", 100.0}}), BaseEng),
          withEngine(makeDoc({{"a", "steps", 100.0}}), NewEng));
      if (std::string(BaseEng) == NewEng) {
        ASSERT_TRUE(R.ok()) << BaseEng << " vs " << NewEng << ": "
                            << R.error().render();
        EXPECT_TRUE(R->ok());
      } else {
        ASSERT_FALSE(R.ok()) << BaseEng << " vs " << NewEng
                             << " must refuse";
        EXPECT_NE(R.error().render().find(BaseEng), std::string::npos);
        EXPECT_NE(R.error().render().find(NewEng), std::string::npos);
      }
    }
  }
}

TEST(PerfCompare, UntaggedDocumentComparesWithAnyEngine) {
  // Seed baselines predate the engine tag; they stay comparable against
  // every engine rather than bricking the gate.
  for (const char *Eng : {"tree", "bytecode", "hostsimd"}) {
    auto Tagged = withEngine(makeDoc({{"a", "steps", 100.0}}), Eng);
    auto Plain = makeDoc({{"a", "steps", 100.0}});
    EXPECT_TRUE(compareBenchJson(Plain, Tagged).ok()) << Eng;
    EXPECT_TRUE(compareBenchJson(Tagged, Plain).ok()) << Eng;
  }
}

TEST(PerfCompare, RenderMentionsVerdict) {
  auto R = compareBenchJson(makeDoc({{"a", "steps", 100.0}}),
                            makeDoc({{"a", "steps", 200.0}}));
  ASSERT_TRUE(R.ok());
  std::string Text = R->render({});
  EXPECT_NE(Text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(Text.find("FAIL"), std::string::npos);
}

TEST(PerfCompare, FileApiRejectsMissingFile) {
  EXPECT_FALSE(
      compareBenchFiles("/nonexistent/a.json", "/nonexistent/b.json")
          .ok());
}

/// Two fresh sibling directories under the test temp dir, wiped on
/// construction so reruns start clean.
struct DirPair {
  std::filesystem::path Base, New;
  explicit DirPair(const std::string &Tag) {
    std::filesystem::path Root =
        std::filesystem::path(testing::TempDir()) / ("perfcmp_" + Tag);
    std::filesystem::remove_all(Root);
    Base = Root / "base";
    New = Root / "new";
    std::filesystem::create_directories(Base);
    std::filesystem::create_directories(New);
  }
  void writeBench(const std::filesystem::path &Dir,
                  const std::string &File, const char *Bench,
                  double Steps) {
    json::Value Doc = makeDoc({{"a", "steps", Steps}});
    Doc.set("bench", Bench);
    ASSERT_TRUE(json::writeFile((Dir / File).string(), Doc));
  }
};

TEST(PerfCompare, DirCompareGatesCommonBenches) {
  DirPair D("gate");
  D.writeBench(D.Base, "BENCH_x.json", "x", 100.0);
  D.writeBench(D.New, "BENCH_x.json", "x", 150.0);
  auto R = compareBenchDirs(D.Base.string(), D.New.string());
  ASSERT_TRUE(R.ok()) << R.error().render();
  EXPECT_FALSE(R->ok()); // a real regression still fails
  ASSERT_EQ(R->Compared.size(), 1u);
  EXPECT_EQ(R->Compared[0].first, "BENCH_x.json");
  EXPECT_EQ(R->regressionCount(), 1);
}

TEST(PerfCompare, DirCompareAddedAndRemovedAreInformational) {
  // A bench introduced (or renamed - one removal plus one addition) in
  // the same PR must keep the gate green.
  DirPair D("addrm");
  D.writeBench(D.Base, "BENCH_same.json", "same", 10.0);
  D.writeBench(D.New, "BENCH_same.json", "same", 10.0);
  D.writeBench(D.Base, "BENCH_old.json", "old", 5.0);
  D.writeBench(D.New, "BENCH_fresh.json", "fresh", 7.0);
  auto R = compareBenchDirs(D.Base.string(), D.New.string());
  ASSERT_TRUE(R.ok()) << R.error().render();
  EXPECT_TRUE(R->ok());
  ASSERT_EQ(R->OnlyInBase.size(), 1u);
  EXPECT_EQ(R->OnlyInBase[0], "BENCH_old.json");
  ASSERT_EQ(R->OnlyInNew.size(), 1u);
  EXPECT_EQ(R->OnlyInNew[0], "BENCH_fresh.json");
  EXPECT_EQ(R->Compared.size(), 1u);
  std::string Text = R->render({});
  EXPECT_NE(Text.find("bench added"), std::string::npos);
  EXPECT_NE(Text.find("bench removed"), std::string::npos);
  EXPECT_NE(Text.find("OK"), std::string::npos);
}

TEST(PerfCompare, DirCompareNewBenchFamilyDoesNotTripTheGate) {
  // The exact shape of landing a serving benchmark: the PR adds
  // BENCH_serve.json with no baseline counterpart. The new family must
  // be reported as informational while existing families stay gated.
  DirPair D("newfam");
  D.writeBench(D.Base, "BENCH_example.json", "example", 100.0);
  D.writeBench(D.New, "BENCH_example.json", "example", 100.0);
  D.writeBench(D.New, "BENCH_serve.json", "serve", 1234.0);
  auto R = compareBenchDirs(D.Base.string(), D.New.string());
  ASSERT_TRUE(R.ok()) << R.error().render();
  EXPECT_TRUE(R->ok()) << "a brand-new bench family tripped the gate";
  EXPECT_EQ(R->regressionCount(), 0);
  ASSERT_EQ(R->OnlyInNew.size(), 1u);
  EXPECT_EQ(R->OnlyInNew[0], "BENCH_serve.json");
  EXPECT_TRUE(R->OnlyInBase.empty());
  std::string Text = R->render({});
  EXPECT_NE(Text.find("bench added"), std::string::npos);
  EXPECT_NE(Text.find("OK"), std::string::npos);
}

TEST(PerfCompare, DirCompareRenameInPlaceIsInformational) {
  // Same filename, different embedded bench name: comparing the old
  // metrics against the new bench's would be meaningless, so the pair
  // is reported as renamed instead of erroring.
  DirPair D("rename");
  D.writeBench(D.Base, "BENCH_k.json", "kernel_v1", 10.0);
  D.writeBench(D.New, "BENCH_k.json", "kernel_v2", 99.0);
  auto R = compareBenchDirs(D.Base.string(), D.New.string());
  ASSERT_TRUE(R.ok()) << R.error().render();
  EXPECT_TRUE(R->ok());
  EXPECT_TRUE(R->Compared.empty());
  ASSERT_EQ(R->Renamed.size(), 1u);
  EXPECT_NE(R->Renamed[0].find("kernel_v1"), std::string::npos);
  EXPECT_NE(R->Renamed[0].find("kernel_v2"), std::string::npos);
  EXPECT_NE(R->render({}).find("renamed"), std::string::npos);
}

TEST(PerfCompare, DirCompareMalformedFileIsStillAnError) {
  DirPair D("bad");
  D.writeBench(D.Base, "BENCH_x.json", "x", 1.0);
  std::ofstream((D.New / "BENCH_x.json").string()) << "{not json";
  EXPECT_FALSE(
      compareBenchDirs(D.Base.string(), D.New.string()).ok());
  EXPECT_FALSE(compareBenchDirs("/nonexistent/base", D.New.string())
                   .ok());
}

} // namespace
