//===- tests/tools/FlattencCliTest.cpp -------------------------*- C++ -*-===//
//
// The flattenc exit-code contract at the process boundary, notably the
// top-level exception barrier: an escaped exception must become a
// structured one-line diagnostic and exit code 4, never std::terminate.
// FLATTENC_BIN is injected by the build (see tests/CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <sys/wait.h>

namespace {

struct CliResult {
  int ExitCode = -1;
  std::string Output; // stdout + stderr interleaved
};

/// Runs flattenc with \p Args, capturing combined output and the exit
/// code (-1 if the process died on a signal, e.g. std::terminate).
CliResult runFlattenc(const std::string &Args) {
  CliResult R;
  std::string Cmd = std::string(FLATTENC_BIN) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  std::array<char, 4096> Buf;
  size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), P)) > 0)
    R.Output.append(Buf.data(), N);
  int Status = pclose(P);
  if (Status >= 0 && WIFEXITED(Status))
    R.ExitCode = WEXITSTATUS(Status);
  return R;
}

TEST(FlattencCli, ExceptionBarrierExitsFourWithDiagnostic) {
  CliResult R = runFlattenc("--test-throw /dev/null");
  EXPECT_EQ(R.ExitCode, 4)
      << "an escaped exception must exit 4, not crash; output:\n"
      << R.Output;
  EXPECT_NE(R.Output.find("flattenc: internal error:"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("--test-throw requested"), std::string::npos)
      << R.Output;
}

TEST(FlattencCli, BadCommandLineExitsTwo) {
  EXPECT_EQ(runFlattenc("--no-such-flag").ExitCode, 2);
  // No input file at all.
  EXPECT_EQ(runFlattenc("").ExitCode, 2);
}

TEST(FlattencCli, MissingInputFileIsAFrontEndError) {
  CliResult R = runFlattenc("/nonexistent/prog.f");
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.ExitCode, 4)
      << "an unreadable input is an ordinary error, not the barrier";
}

TEST(FlattencCli, UsageMentionsAllExitCodes) {
  CliResult R = runFlattenc("--help");
  EXPECT_NE(R.Output.find("4 internal error"), std::string::npos)
      << R.Output;
}

} // namespace
