//===- tests/tools/FlattencCliTest.cpp -------------------------*- C++ -*-===//
//
// The flattenc exit-code contract at the process boundary, notably the
// top-level exception barrier: an escaped exception must become a
// structured one-line diagnostic and exit code 4, never std::terminate.
// FLATTENC_BIN is injected by the build (see tests/CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

namespace {

struct CliResult {
  int ExitCode = -1;
  std::string Output; // stdout + stderr interleaved
};

/// Runs flattenc with \p Args, capturing combined output and the exit
/// code (-1 if the process died on a signal, e.g. std::terminate).
CliResult runFlattenc(const std::string &Args) {
  CliResult R;
  std::string Cmd = std::string(FLATTENC_BIN) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  std::array<char, 4096> Buf;
  size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), P)) > 0)
    R.Output.append(Buf.data(), N);
  int Status = pclose(P);
  if (Status >= 0 && WIFEXITED(Status))
    R.ExitCode = WEXITSTATUS(Status);
  return R;
}

TEST(FlattencCli, ExceptionBarrierExitsFourWithDiagnostic) {
  CliResult R = runFlattenc("--test-throw /dev/null");
  EXPECT_EQ(R.ExitCode, 4)
      << "an escaped exception must exit 4, not crash; output:\n"
      << R.Output;
  EXPECT_NE(R.Output.find("flattenc: internal error:"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("--test-throw requested"), std::string::npos)
      << R.Output;
}

TEST(FlattencCli, BadCommandLineExitsTwo) {
  EXPECT_EQ(runFlattenc("--no-such-flag").ExitCode, 2);
  // No input file at all.
  EXPECT_EQ(runFlattenc("").ExitCode, 2);
}

TEST(FlattencCli, MissingInputFileIsAFrontEndError) {
  CliResult R = runFlattenc("/nonexistent/prog.f");
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.ExitCode, 4)
      << "an unreadable input is an ordinary error, not the barrier";
}

TEST(FlattencCli, UsageMentionsAllExitCodes) {
  CliResult R = runFlattenc("--help");
  EXPECT_NE(R.Output.find("4 internal error"), std::string::npos)
      << R.Output;
}

/// Writes the strategy-test fixture (a DOALL/DO nest whose inner trips
/// come from the L array) and returns its path.
std::string writeNestFixture() {
  std::string Path =
      "/tmp/flattenc_cli_nest_" + std::to_string(getpid()) + ".f";
  if (FILE *F = std::fopen(Path.c_str(), "w")) {
    std::fputs("PROGRAM WIDE\n"
               "INTEGER K\n"
               "DISTRIBUTED INTEGER L(8)\n"
               "DISTRIBUTED INTEGER X(8, 8)\n"
               "INTEGER i\n"
               "INTEGER j\n"
               "BEGIN\n"
               "  DOALL i = 1, K\n"
               "    DO j = 1, L(i)\n"
               "      X(i, j) = i * j\n"
               "    ENDDO\n"
               "  ENDDO\n"
               "END\n",
               F);
    std::fclose(F);
  }
  return Path;
}

/// The "  X = ..." result line printed after --run, or "" if absent.
std::string xLine(const std::string &Output) {
  size_t Pos = Output.find("  X =");
  if (Pos == std::string::npos)
    return "";
  return Output.substr(Pos, Output.find('\n', Pos) - Pos);
}

TEST(FlattencCli, StrategyVariantsAgreeOnResults) {
  // The semantic-preservation contract at the CLI boundary: the same
  // program and inputs produce identical results under every forced
  // loop strategy, and the applied strategy is echoed.
  std::string Fix = writeNestFixture();
  std::string Baseline;
  for (const char *S : {"unflattened", "flattened", "coalesced"}) {
    CliResult R = runFlattenc(
        std::string("--strategy=") + S +
        " --run --lanes=4 --set K=8 --set-array L=8,1,1,1,1,1,1,1 " +
        Fix);
    EXPECT_EQ(R.ExitCode, 0) << S << ":\n" << R.Output;
    EXPECT_NE(R.Output.find(std::string("flattenc: strategy: ") + S),
              std::string::npos)
        << S << ":\n" << R.Output;
    std::string X = xLine(R.Output);
    EXPECT_FALSE(X.empty()) << S << ":\n" << R.Output;
    if (Baseline.empty())
      Baseline = X;
    else
      EXPECT_EQ(X, Baseline) << S << " diverged:\n" << R.Output;
  }
  std::remove(Fix.c_str());
}

TEST(FlattencCli, AdaptiveTwoPassPicksFromTheProfile) {
  // One hot row on 4 lanes: the profiled distribution makes the
  // balanced coalesced schedule the model's winner. Uniform trips keep
  // the plain unflattened build. Both runs must produce the identical
  // result array the forced-strategy runs produce.
  std::string Fix = writeNestFixture();
  std::string Stats =
      "/tmp/flattenc_cli_stats_" + std::to_string(getpid()) + ".json";
  CliResult Skew = runFlattenc(
      "--adaptive --run --lanes=4 --set K=8 "
      "--set-array L=8,1,1,1,1,1,1,1 --stats-json=" +
      Stats + " " + Fix);
  EXPECT_EQ(Skew.ExitCode, 0) << Skew.Output;
  EXPECT_NE(Skew.Output.find("adaptive profile chose coalesced"),
            std::string::npos)
      << Skew.Output;
  EXPECT_NE(Skew.Output.find("flattenc: strategy: coalesced"),
            std::string::npos)
      << Skew.Output;
  EXPECT_FALSE(xLine(Skew.Output).empty()) << Skew.Output;

  CliResult Uniform = runFlattenc(
      "--adaptive --run --lanes=4 --set K=8 "
      "--set-array L=5,5,5,5,5,5,5,5 " +
      Fix);
  EXPECT_EQ(Uniform.ExitCode, 0) << Uniform.Output;
  EXPECT_NE(Uniform.Output.find("adaptive profile chose unflattened"),
            std::string::npos)
      << Uniform.Output;

  // The stats document records the verdict for offline analysis.
  std::string Doc;
  if (FILE *F = std::fopen(Stats.c_str(), "r")) {
    std::array<char, 4096> Buf;
    size_t N;
    while ((N = fread(Buf.data(), 1, Buf.size(), F)) > 0)
      Doc.append(Buf.data(), N);
    std::fclose(F);
  }
  EXPECT_NE(Doc.find("\"adaptive\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("coalesced"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"confidence\""), std::string::npos) << Doc;
  std::remove(Stats.c_str());
  std::remove(Fix.c_str());
}

TEST(FlattencCli, AdaptiveAndStrategyFlagValidation) {
  std::string Fix = writeNestFixture();
  // --adaptive needs a run to profile.
  EXPECT_EQ(runFlattenc("--adaptive " + Fix).ExitCode, 2);
  // --adaptive picks the strategy itself.
  EXPECT_EQ(runFlattenc("--adaptive --run --strategy=flattened " + Fix)
                .ExitCode,
            2);
  // Unknown strategy name.
  EXPECT_EQ(runFlattenc("--strategy=warp " + Fix).ExitCode, 2);
  // Strategies drive the full SIMD pipeline.
  EXPECT_EQ(
      runFlattenc("--strategy=flattened --emit=flat " + Fix).ExitCode, 2);
  EXPECT_EQ(
      runFlattenc("--strategy=flattened --no-flatten " + Fix).ExitCode,
      2);
  std::remove(Fix.c_str());
}

} // namespace
