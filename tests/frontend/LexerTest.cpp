//===- tests/frontend/LexerTest.cpp ----------------------------*- C++ -*-===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::frontend;

namespace {

std::vector<Token> lex(const std::string &S) {
  Diagnostics D;
  std::vector<Token> T = tokenize(S, D);
  EXPECT_TRUE(D.empty()) << D.renderAll();
  return T;
}

TEST(Lexer, Identifiers) {
  auto T = lex("foo Bar_9 DOALL");
  ASSERT_GE(T.size(), 4u);
  EXPECT_EQ(T[0].Kind, TokKind::Identifier);
  EXPECT_EQ(T[0].Text, "foo");
  EXPECT_EQ(T[1].Text, "Bar_9");
  EXPECT_TRUE(T[2].isKeyword("DOALL"));
  EXPECT_FALSE(T[2].isKeyword("DO")); // prefix is not a match
}

TEST(Lexer, KeywordsCaseInsensitive) {
  auto T = lex("while While WHILE");
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(T[static_cast<size_t>(I)].isKeyword("WHILE"));
}

TEST(Lexer, IntAndRealLiterals) {
  auto T = lex("42 3.5 2. 1e3 2.5e-2");
  EXPECT_EQ(T[0].Kind, TokKind::IntLiteral);
  EXPECT_EQ(T[0].IntValue, 42);
  EXPECT_EQ(T[1].Kind, TokKind::RealLiteral);
  EXPECT_DOUBLE_EQ(T[1].RealValue, 3.5);
  EXPECT_EQ(T[2].Kind, TokKind::RealLiteral);
  EXPECT_DOUBLE_EQ(T[2].RealValue, 2.0);
  EXPECT_EQ(T[3].Kind, TokKind::RealLiteral);
  EXPECT_DOUBLE_EQ(T[3].RealValue, 1000.0);
  EXPECT_EQ(T[4].Kind, TokKind::RealLiteral);
  EXPECT_DOUBLE_EQ(T[4].RealValue, 0.025);
}

TEST(Lexer, Operators) {
  auto T = lex("= == /= < <= > >= + - * / ( ) , :");
  TokKind Want[] = {TokKind::Assign, TokKind::Eq,     TokKind::Ne,
                    TokKind::Lt,     TokKind::Le,     TokKind::Gt,
                    TokKind::Ge,     TokKind::Plus,   TokKind::Minus,
                    TokKind::Star,   TokKind::Slash,  TokKind::LParen,
                    TokKind::RParen, TokKind::Comma,  TokKind::Colon};
  for (size_t I = 0; I < std::size(Want); ++I)
    EXPECT_EQ(T[I].Kind, Want[I]) << I;
}

TEST(Lexer, DotKeywords) {
  auto T = lex(".AND. .or. .NOT. .TRUE. .false.");
  EXPECT_EQ(T[0].Kind, TokKind::DotAnd);
  EXPECT_EQ(T[1].Kind, TokKind::DotOr);
  EXPECT_EQ(T[2].Kind, TokKind::DotNot);
  EXPECT_EQ(T[3].Kind, TokKind::DotTrue);
  EXPECT_EQ(T[4].Kind, TokKind::DotFalse);
}

TEST(Lexer, NewlinesCollapseAndComments) {
  auto T = lex("a ! comment here\n\n\nb");
  ASSERT_EQ(T.size(), 4u); // a, NL, b, EOF
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Kind, TokKind::Newline);
  EXPECT_EQ(T[2].Text, "b");
  EXPECT_EQ(T[3].Kind, TokKind::Eof);
}

TEST(Lexer, SourceLocations) {
  auto T = lex("a\n  b");
  EXPECT_EQ(T[0].Loc.Line, 1);
  EXPECT_EQ(T[0].Loc.Col, 1);
  EXPECT_EQ(T[2].Loc.Line, 2);
  EXPECT_EQ(T[2].Loc.Col, 3);
}

TEST(Lexer, BadCharacterReported) {
  Diagnostics D;
  auto T = tokenize("a # b", D);
  EXPECT_EQ(D.count(), 1u);
  ASSERT_GE(T.size(), 3u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b"); // '#' skipped
}

} // namespace
