//===- tests/frontend/GotoRecoveryTest.cpp ---------------------*- C++ -*-===//

#include "frontend/GotoRecovery.h"

#include "frontend/Parser.h"
#include "interp/ScalarInterp.h"
#include "ir/Printer.h"
#include "ir/Walk.h"
#include "transform/Flatten.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::frontend;
using namespace simdflat::ir;
using namespace simdflat::workloads;

namespace {

TEST(GotoRecovery, RecoversSimpleLoop) {
  const char *Src = R"(PROGRAM p
INTEGER n
BEGIN
  n = 0
  10 CONTINUE
  n = n + 1
  IF (n < 5) GOTO 10
END
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
  EXPECT_TRUE(hasUnstructuredControl(*R.Prog));
  int N = recoverGotoLoops(*R.Prog);
  EXPECT_EQ(N, 1);
  EXPECT_FALSE(hasUnstructuredControl(*R.Prog));
  EXPECT_EQ(printBody(R.Prog->body()), "n = 0\n"
                                       "REPEAT\n"
                                       "  n = n + 1\n"
                                       "UNTIL (.NOT. n < 5)\n");
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  interp::ScalarInterp Interp(*R.Prog, M, nullptr);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getInt("n"), 5);
}

TEST(GotoRecovery, GotoFormExampleSemantics) {
  // The GOTO-form EXAMPLE recovers, flattens and still computes X.
  ExampleSpec Spec = paperExampleSpec();
  Program P = makeExample(Spec, LoopForm::GotoLoop, LoopForm::GotoLoop);
  EXPECT_TRUE(hasUnstructuredControl(P));
  int N = recoverGotoLoops(P);
  EXPECT_EQ(N, 2);
  EXPECT_FALSE(hasUnstructuredControl(P));

  machine::MachineConfig M = machine::MachineConfig::sparc2();
  interp::ScalarInterp Interp(P, M, nullptr);
  Interp.store().setInt("K", Spec.K);
  Interp.store().setIntArray("L", Spec.L);
  Interp.run().value();
  std::vector<int64_t> X = Interp.store().getIntArray("X");
  EXPECT_EQ(X[static_cast<size_t>(7 * 4 + 2)], 24); // X(8,3) = 24
}

TEST(GotoRecovery, NestedGotoLoopsRecoverInnermostFirst) {
  ExampleSpec Spec{3, {2, 1, 3}};
  Program P = makeExample(Spec, LoopForm::GotoLoop, LoopForm::GotoLoop);
  recoverGotoLoops(P);
  // Two nested REPEATs now; count loop statements.
  int Repeats = 0;
  forEachStmt(P.body(), [&Repeats](const Stmt &S) {
    if (S.kind() == Stmt::Kind::Repeat)
      ++Repeats;
  });
  EXPECT_EQ(Repeats, 2);
}

TEST(GotoRecovery, UnconditionalBackwardJumpLeftAlone) {
  const char *Src = R"(PROGRAM p
INTEGER n
BEGIN
  10 CONTINUE
  n = n + 1
  GOTO 10
END
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
  EXPECT_EQ(recoverGotoLoops(*R.Prog), 0);
  EXPECT_TRUE(hasUnstructuredControl(*R.Prog));
}

TEST(GotoRecovery, MultiplyReferencedLabelLeftAlone) {
  const char *Src = R"(PROGRAM p
INTEGER n
BEGIN
  10 CONTINUE
  n = n + 1
  IF (n < 3) GOTO 10
  IF (n < 9) GOTO 10
END
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
  EXPECT_EQ(recoverGotoLoops(*R.Prog), 0);
}

TEST(GotoRecovery, RecoveredLoopFeedsThePipeline) {
  // Dusty-deck source -> parse -> recover -> flatten: the full Sec. 6
  // story for GOTO loops.
  const char *Src = R"(PROGRAM dusty
INTEGER K
DISTRIBUTED INTEGER L(8)
DISTRIBUTED INTEGER X(8, 4)
INTEGER i
INTEGER j
BEGIN
  DOALL i = 1, K
    j = 1
    20 CONTINUE
    X(i, j) = i * j
    j = j + 1
    IF (j <= L(i)) GOTO 20
  ENDDO
END
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
  EXPECT_EQ(recoverGotoLoops(*R.Prog), 1);
  transform::FlattenResult FR = transform::flattenNest(*R.Prog);
  EXPECT_TRUE(FR.Changed) << FR.Reason;
  // Post-test loop: structurally min-one-trip, so Optimized applies.
  EXPECT_EQ(FR.Applied, transform::FlattenLevel::Optimized);
}

} // namespace
