//===- tests/frontend/ParserTest.cpp ---------------------------*- C++ -*-===//

#include "frontend/Parser.h"

#include "interp/ScalarInterp.h"
#include "ir/Printer.h"
#include "ir/Walk.h"
#include "workloads/PaperKernels.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::frontend;
using namespace simdflat::ir;

namespace {

const char *ExampleSource = R"(PROGRAM EXAMPLE
INTEGER K
DISTRIBUTED INTEGER L(8)
DISTRIBUTED INTEGER X(8, 4)
INTEGER i
INTEGER j
BEGIN
  DOALL i = 1, K
    DO j = 1, L(i)
      X(i, j) = i * j
    ENDDO
  ENDDO
END
)";

TEST(Parser, ParsesExample) {
  ParseResult R = parseProgram(ExampleSource);
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
  EXPECT_EQ(R.Prog->name(), "EXAMPLE");
  ASSERT_NE(R.Prog->lookupVar("X"), nullptr);
  EXPECT_EQ(R.Prog->lookupVar("X")->Dims,
            (std::vector<int64_t>{8, 4}));
  EXPECT_EQ(R.Prog->lookupVar("X")->Distribution, Dist::Distributed);
  // The parsed program is structurally the builder-made EXAMPLE.
  ir::Program Want =
      workloads::makeExample(workloads::paperExampleSpec());
  EXPECT_TRUE(bodyEquals(R.Prog->body(), Want.body()));
}

TEST(Parser, PrintParseRoundTrip) {
  // printProgram output is valid input: round-tripping is the identity.
  ir::Program Orig =
      workloads::makeExample(workloads::paperExampleSpec());
  std::string Printed = printProgram(Orig);
  ParseResult R = parseProgram(Printed);
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
  EXPECT_EQ(printProgram(*R.Prog), Printed);
}

TEST(Parser, ParsedProgramExecutes) {
  ParseResult R = parseProgram(ExampleSource);
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
  machine::MachineConfig M = machine::MachineConfig::sparc2();
  interp::ScalarInterp Interp(*R.Prog, M, nullptr);
  Interp.store().setInt("K", 8);
  std::vector<int64_t> L = {4, 1, 2, 1, 1, 3, 1, 3};
  Interp.store().setIntArray("L", L);
  Interp.run().value();
  EXPECT_EQ(Interp.store().getIntAt("X", std::vector<int64_t>{8, 3}), 24);
}

TEST(Parser, LabelLintIsAWarningNotAnError) {
  // An orphaned label and a GOTO to nowhere are legal F77 (the latter
  // traps at runtime), so the parser must still succeed - but each
  // gets a warning, and warnings don't flip hasErrors()/ok().
  const char *Src = R"(PROGRAM lint
INTEGER n
BEGIN
10 CONTINUE
  n = 1
  IF (n > 5) GOTO 20
END
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
  EXPECT_FALSE(R.Diags.hasErrors());
  ASSERT_EQ(R.Diags.all().size(), 2u);
  std::string All = R.Diags.renderAll();
  EXPECT_NE(All.find("warning: label 10 is never the target"),
            std::string::npos);
  EXPECT_NE(All.find("warning: GOTO to undefined label 20"),
            std::string::npos);
}

TEST(Parser, AllStatementForms) {
  const char *Src = R"(PROGRAM forms
EXTERN REAL FUNCTION Force
EXTERN IMPURE SUBROUTINE Dump
INTEGER i
INTEGER n
REAL x
LOGICAL f
REPLICATED INTEGER lane
DISTRIBUTED REAL V(16)
BEGIN
  n = MOD(7, 3) + MAX(1, 2)
  x = SQRT(2.25) * 2.0
  f = n >= 2 .AND. .NOT. n == 5
  IF (f) THEN
    n = 1
  ELSE
    n = 2
  ENDIF
  WHERE (lane <= 4)
    lane = lane + 1
  ELSEWHERE
    lane = 0
  ENDWHERE
  DO i = 1, 10, 2
    n = n + i
  ENDDO
  WHILE (n > 0)
    n = n - 3
  ENDWHILE
  REPEAT
    n = n + 1
  UNTIL (n >= 4)
  FORALL (i = 1 : 16, i <= 8)
    V(i) = x
  ENDFORALL
  CALL Dump(n, x)
  x = Force(n, n) + SUMVAL(V)
  10 CONTINUE
  n = n - 1
  IF (n > 0) GOTO 10
END
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
  // Round-trip.
  std::string Printed = printProgram(*R.Prog);
  ParseResult R2 = parseProgram(Printed);
  ASSERT_TRUE(R2.ok()) << R2.Diags.renderAll();
  EXPECT_EQ(printProgram(*R2.Prog), Printed);
}

TEST(Parser, ReportsUndeclaredVariable) {
  ParseResult R = parseProgram("PROGRAM p\nBEGIN\n  x = 1\nEND\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Diags.renderAll().find("undeclared"), std::string::npos);
}

TEST(Parser, ReportsRankMismatch) {
  ParseResult R = parseProgram("PROGRAM p\nINTEGER A(4, 4)\nINTEGER i\n"
                               "BEGIN\n  i = A(1)\nEND\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Diags.renderAll().find("rank"), std::string::npos);
}

TEST(Parser, ReportsTypeErrors) {
  ParseResult R = parseProgram("PROGRAM p\nINTEGER i\nLOGICAL f\n"
                               "BEGIN\n  i = f .AND. 3 > 1\nEND\n");
  EXPECT_FALSE(R.ok()); // assigning logical to integer
  ParseResult R2 = parseProgram("PROGRAM p\nINTEGER i\nBEGIN\n"
                                "  WHILE (i + 1)\n  ENDWHILE\nEND\n");
  EXPECT_FALSE(R2.ok());
  EXPECT_NE(R2.Diags.renderAll().find("WHILE condition"),
            std::string::npos);
}

TEST(Parser, ErrorRecoveryFindsMultipleProblems) {
  const char *Src = R"(PROGRAM p
INTEGER i
BEGIN
  x = 1
  y = 2
  i = 3
END
)";
  ParseResult R = parseProgram(Src);
  EXPECT_FALSE(R.ok());
  EXPECT_GE(R.Diags.count(), 2u); // both x and y reported
  ASSERT_TRUE(R.Prog.has_value());
  EXPECT_EQ(R.Prog->body().size(), 3u); // parsing continued
}

TEST(Parser, ReportsMissingEnd) {
  ParseResult R = parseProgram("PROGRAM p\nBEGIN\n  DO\n");
  EXPECT_FALSE(R.ok());
}

TEST(Parser, SubroutineAsFunctionRejected) {
  ParseResult R = parseProgram("PROGRAM p\nEXTERN SUBROUTINE S\n"
                               "INTEGER i\nBEGIN\n  i = S(1)\nEND\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Diags.renderAll().find("subroutine"), std::string::npos);
}

TEST(Parser, DiagnosticLocations) {
  ParseResult R = parseProgram("PROGRAM p\nINTEGER i\nBEGIN\n  q = 1\nEND\n");
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_EQ(R.Diags.all()[0].Loc.Line, 4);
}

} // namespace
