//===- tests/frontend/FrontendEdgeTest.cpp ---------------------*- C++ -*-===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"

#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace simdflat;
using namespace simdflat::frontend;

namespace {

TEST(FrontendEdge, IntFollowedByDotKeyword) {
  // `1.AND.` must lex as IntLiteral(1) + .AND., not a real literal.
  Diagnostics D;
  auto T = tokenize("f = 3 > 1.AND.f", D);
  EXPECT_TRUE(D.empty()) << D.renderAll();
  bool SawAnd = false, SawInt = false;
  for (const Token &Tok : T) {
    SawAnd |= Tok.Kind == TokKind::DotAnd;
    SawInt |= Tok.Kind == TokKind::IntLiteral && Tok.IntValue == 1;
  }
  EXPECT_TRUE(SawAnd);
  EXPECT_TRUE(SawInt);
}

TEST(FrontendEdge, NegativeLiteralInExpression) {
  ParseResult R = parseProgram("PROGRAM p\nINTEGER i\nBEGIN\n"
                               "  i = -3 + -i\nEND\n");
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
  EXPECT_EQ(ir::printBody(R.Prog->body()), "i = -3 + -i\n");
}

TEST(FrontendEdge, NestedRepeatParses) {
  const char *Src = R"(PROGRAM p
INTEGER a
INTEGER b
BEGIN
  REPEAT
    a = a + 1
    b = 0
    REPEAT
      b = b + 1
    UNTIL (b >= 2)
  UNTIL (a >= 3)
END
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
  std::string Printed = ir::printProgram(*R.Prog);
  ParseResult R2 = parseProgram(Printed);
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(ir::printProgram(*R2.Prog), Printed);
}

TEST(FrontendEdge, ForallWithoutMask) {
  ParseResult R = parseProgram("PROGRAM p\nINTEGER e\n"
                               "DISTRIBUTED INTEGER A(8)\nBEGIN\n"
                               "  FORALL (e = 1 : 8)\n"
                               "    A(e) = e\n"
                               "  ENDFORALL\nEND\n");
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
}

TEST(FrontendEdge, CallWithoutParens) {
  ParseResult R = parseProgram("PROGRAM p\nEXTERN SUBROUTINE Tick\n"
                               "BEGIN\n  CALL Tick\nEND\n");
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
}

TEST(FrontendEdge, EmptyBodyProgram) {
  ParseResult R = parseProgram("PROGRAM empty\nBEGIN\nEND\n");
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
  EXPECT_TRUE(R.Prog->body().empty());
}

TEST(FrontendEdge, CommentsEverywhere) {
  const char *Src = "PROGRAM p ! name\n"
                    "INTEGER i ! counter\n"
                    "BEGIN ! body starts\n"
                    "  i = 1 ! set\n"
                    "END ! done\n";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
}

TEST(FrontendEdge, KeywordsNotReservedAsPrefixes) {
  // Identifiers that merely start with keyword letters are fine.
  ParseResult R = parseProgram("PROGRAM p\nINTEGER dot\nINTEGER whileX\n"
                               "BEGIN\n  dot = 1\n  whileX = dot\nEND\n");
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
}

TEST(FrontendEdge, MissingParenRecovered) {
  ParseResult R = parseProgram("PROGRAM p\nINTEGER i\nBEGIN\n"
                               "  WHILE (i < 2\n  ENDWHILE\n  i = 5\nEND\n");
  EXPECT_FALSE(R.ok());
  // But the parser recovered and saw the later assignment.
  ASSERT_TRUE(R.Prog.has_value());
  EXPECT_FALSE(R.Prog->body().empty());
}

TEST(FrontendEdge, DeepNestingRoundTrips) {
  const char *Src = R"(PROGRAM deep
INTEGER a
INTEGER b
INTEGER c
LOGICAL f
BEGIN
  DO a = 1, 2
    WHILE (b < 3)
      IF (f) THEN
        REPEAT
          c = c + 1
        UNTIL (c > 1)
      ELSE
        b = b + 1
      ENDIF
    ENDWHILE
  ENDDO
END
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.renderAll();
  std::string P1 = ir::printProgram(*R.Prog);
  ParseResult R2 = parseProgram(P1);
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(ir::printProgram(*R2.Prog), P1);
}

} // namespace
