//===- fuzz/Campaign.cpp - Fault-injection campaigns -----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include "fuzz/Generator.h"
#include "interp/Trap.h"

#include <cmath>
#include <limits>

using namespace simdflat;
using namespace simdflat::fuzz;
using namespace simdflat::interp;

const char *fuzz::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::Fuel:
    return "fuel";
  case FaultKind::HostileExtern:
    return "hostile-extern";
  case FaultKind::NanPoison:
    return "nan-poison";
  case FaultKind::Deadline:
    return "deadline";
  }
  return "fuel";
}

FuzzCase fuzz::makeFaultCase(uint64_t Seed, FaultKind Kind) {
  GeneratorOptions GO;
  // Exactly one fault per case: the generator's own trap sources are
  // disabled and every row runs at least once so the injection fires.
  GO.AllowTrappyDiv = false;
  GO.AllowTrappyBounds = false;
  GO.AllowDegenerateTrips = false;
  GO.ForceMinOneTrips = true;
  GO.ForceExtern = Kind == FaultKind::HostileExtern;
  GO.ForceReal = Kind == FaultKind::NanPoison;
  FuzzCase C = generateCase(Seed, GO);
  C.Name = "fault-" + std::string(faultKindName(Kind)) + "-" +
           std::to_string(Seed);
  switch (Kind) {
  case FaultKind::Fuel:
    // Far below what any executor needs (>= 3 rows of >= 1 trip with
    // at least one assignment each), so every executor starves.
    C.Fuel = 1 + static_cast<int64_t>(Seed % 5);
    C.Expect = ExpectedVerdict::Trap;
    C.ExpectTrapKind = trapKindName(TrapKind::FuelExhausted);
    break;
  case FaultKind::HostileExtern:
    // The generated Probe argument is the inner index j, and j = 1 is
    // executed on every row, so the throw is guaranteed.
    C.ExternTrapArg = 1;
    C.Expect = ExpectedVerdict::Trap;
    C.ExpectTrapKind = trapKindName(TrapKind::ExternFailure);
    break;
  case FaultKind::NanPoison: {
    std::vector<double> &W = C.RealArrays["W"];
    int64_t K = C.Ints["K"];
    W[static_cast<size_t>(Seed % static_cast<uint64_t>(K))] =
        std::numeric_limits<double>::quiet_NaN();
    C.Expect = ExpectedVerdict::Complete;
    break;
  }
  case FaultKind::Deadline:
    // Already expired at entry, so every engine hits the first
    // deterministic deadline poll (instruction 1) - tree and bytecode
    // must agree on the trap statement exactly, with no dependence on
    // how fast the host actually runs.
    C.DeadlineNs = 0;
    C.Expect = ExpectedVerdict::Trap;
    C.ExpectTrapKind = trapKindName(TrapKind::DeadlineExpired);
    break;
  }
  return C;
}

CampaignResult fuzz::runFaultCampaign(const CampaignOptions &Opts,
                                      const OracleOptions &OOpts) {
  CampaignResult Res;
  for (int I = 0; I < Opts.Count; ++I) {
    uint64_t Seed = Opts.BaseSeed + static_cast<uint64_t>(I);
    FaultKind Kind = static_cast<FaultKind>(Seed % 4);
    FuzzCase C = makeFaultCase(Seed, Kind);
    ++Res.Ran;
    auto Fail = [&](const std::string &What) {
      Res.Failures.push_back("seed " + std::to_string(Seed) + " (" +
                             faultKindName(Kind) + "): " + What);
    };

    OracleResult OR = runOracle(C, OOpts);
    const VariantOutcome &Ref = OR.reference();
    if (Ref.T)
      ++Res.Trapped;

    // The injected fault must fire (or, for NaN, must not trap).
    if (C.Expect == ExpectedVerdict::Trap) {
      if (!Ref.T) {
        Fail("injected fault never fired");
        continue;
      }
      if (trapKindName(Ref.T->Kind) != C.ExpectTrapKind)
        Fail("reference trap " + Ref.T->render() + ", want " +
             C.ExpectTrapKind);
    } else if (Ref.T) {
      Fail("NaN case trapped: " + Ref.T->render());
      continue;
    }

    // Every executor degrades identically (the oracle's kind/store
    // checks), plus: the MIMD executor runs the same untransformed
    // tree, so its trap location must match the reference exactly.
    for (const std::string &F : OR.Failures)
      Fail(F);
    if (Ref.T && Kind == FaultKind::HostileExtern) {
      for (const VariantOutcome &V : OR.Variants) {
        if (V.Variant != "mimd/original" || !V.T)
          continue;
        if (V.T->Location != Ref.T->Location)
          Fail("mimd trap location '" + V.T->Location +
               "' != scalar '" + Ref.T->Location + "'");
      }
    }
  }
  return Res;
}
