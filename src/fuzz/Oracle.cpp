//===- fuzz/Oracle.cpp - Cross-executor differential oracle ----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "frontend/GotoRecovery.h"
#include "fuzz/Generator.h"
#include "interp/MimdInterp.h"
#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"
#include "transform/Coalesce.h"
#include "transform/GuardIntro.h"
#include "transform/Normalize.h"
#include "transform/Pipeline.h"
#include "transform/Simdize.h"
#include "transform/Simplify.h"

#include <algorithm>
#include <cstring>
#include <sstream>

using namespace simdflat;
using namespace simdflat::fuzz;
using namespace simdflat::interp;
using namespace simdflat::ir;

std::string OracleResult::report() const {
  std::ostringstream OS;
  for (const std::string &F : Failures)
    OS << F << "\n";
  return OS.str();
}

ExternRegistry fuzz::makeFuzzRegistry(std::vector<std::string> &Log,
                                      int64_t ExternTrapArg) {
  ExternRegistry Reg;
  Reg.bind(ProbeFn,
           [&Log, ExternTrapArg](std::span<const ScalVal> A) -> ScalVal {
             if (A[0].I == ExternTrapArg)
               throw ExternError{"Probe rejected " +
                                 std::to_string(A[0].I)};
             Log.push_back("Probe(" + std::to_string(A[0].I) + ")");
             return ScalVal::makeInt(A[0].I % 7);
           });
  Reg.bind(TickFn, [&Log](std::span<const ScalVal> A) -> ScalVal {
    Log.push_back("Tick(" + std::to_string(A[0].I) + ")");
    return ScalVal::makeInt(0);
  });
  Reg.bind(NoteSub, [&Log](std::span<const ScalVal> A) -> ScalVal {
    Log.push_back("Note(" + std::to_string(A[0].I) + ")");
    return ScalVal::makeInt(0);
  });
  return Reg;
}

namespace {

constexpr int64_t CoalesceMaxOuter = 16;
constexpr int64_t CoalesceMaxTotal = 512;

RunOptions runOptionsFor(const FuzzCase &C, Engine E) {
  RunOptions O;
  O.WorkTargets = {"X", "A", "C", "R"};
  O.WorkCalls = {ProbeFn, NoteSub};
  O.Fuel = C.Fuel;
  if (C.DeadlineNs >= 0)
    O.Deadline = std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds(C.DeadlineNs);
  // Generated programs need a few hundred iterations at most; a tight
  // backstop keeps shrinker candidates that loop forever (the increment
  // was deleted) from stalling the whole run on the default 2e8 guard.
  O.MaxLoopIterations = 100'000;
  O.Eng = E;
  return O;
}

void seedStore(DataStore &S, const FuzzCase &C) {
  for (const auto &[Name, V] : C.Ints)
    S.setInt(Name, V);
  for (const auto &[Name, V] : C.IntArrays)
    S.setIntArray(Name, V);
  for (const auto &[Name, V] : C.RealArrays)
    S.setRealArray(Name, V);
}

/// Copies the final contents of every array the *original* program
/// declares out of \p S. Arrays a transformation introduced (guard
/// flags, coalesce inspector tables) are implementation detail.
void captureArrays(const DataStore &S, const ir::Program &Orig,
                   VariantOutcome &Out) {
  for (const VarDecl &V : Orig.vars()) {
    if (!V.isArray())
      continue;
    if (V.Kind == ScalarKind::Real)
      Out.RealArrays[V.Name] = S.getRealArray(V.Name);
    else
      Out.IntArrays[V.Name] = S.getIntArray(V.Name);
  }
}

/// The seeded guard-intro bug: duplicate the `t = test` re-evaluation
/// at the bottom of every guarded WHILE, so the test's side effects run
/// twice per iteration (a GuardIntro without the Fig. 9 cache).
void breakGuardCache(Body &B) {
  for (StmtPtr &S : B) {
    if (auto *W = dyn_cast<WhileStmt>(S.get())) {
      breakGuardCache(W->body());
      if (isa<VarRef>(&W->cond()) && !W->body().empty() &&
          isa<AssignStmt>(W->body().back().get()))
        W->body().push_back(cloneStmt(*W->body().back()));
      continue;
    }
    if (auto *D = dyn_cast<DoStmt>(S.get()))
      breakGuardCache(D->body());
    else if (auto *R = dyn_cast<RepeatStmt>(S.get()))
      breakGuardCache(R->body());
    else if (auto *F = dyn_cast<ForallStmt>(S.get()))
      breakGuardCache(F->body());
    else if (auto *I = dyn_cast<IfStmt>(S.get())) {
      breakGuardCache(I->thenBody());
      breakGuardCache(I->elseBody());
    } else if (auto *Wh = dyn_cast<WhereStmt>(S.get())) {
      breakGuardCache(Wh->thenBody());
      breakGuardCache(Wh->elseBody());
    }
  }
}

VariantOutcome runScalarOn(const std::string &Name, const ir::Program &P,
                           const FuzzCase &C, const ir::Program &Orig,
                           Engine E) {
  VariantOutcome Out;
  Out.Variant = Name;
  ExternRegistry Reg = makeFuzzRegistry(Out.ExternLog, C.ExternTrapArg);
  ScalarInterp I(P, machine::MachineConfig::sparc2(), &Reg,
                 runOptionsFor(C, E));
  seedStore(I.store(), C);
  RunOutcome<ScalarRunResult> R = I.run();
  if (!R) {
    Out.T = R.error();
    return Out;
  }
  Out.BodyCount = R->Stats.WorkSteps;
  Out.Stats = R->Stats;
  captureArrays(I.store(), Orig, Out);
  return Out;
}

VariantOutcome runMimdOn(const FuzzCase &C, const OracleOptions &Opts,
                         Engine E) {
  VariantOutcome Out;
  Out.Variant = "mimd/original";
  ExternRegistry Reg = makeFuzzRegistry(Out.ExternLog, C.ExternTrapArg);
  MimdInterp I(C.Prog, machine::MachineConfig::sparc2(), &Reg,
               Opts.MimdProcs, machine::Layout::Block,
               runOptionsFor(C, E));
  RunOutcome<MimdRunResult> R =
      I.run([&](DataStore &S) { seedStore(S, C); });
  if (!R) {
    Out.T = R.error();
    return Out;
  }
  for (const RunStats &S : R->PerProc) {
    Out.BodyCount += S.WorkSteps;
    Out.Stats.WorkSteps += S.WorkSteps;
    Out.Stats.Instructions += S.Instructions;
    Out.Stats.WorkActiveLanes += S.WorkActiveLanes;
    Out.Stats.WorkTotalLanes += S.WorkTotalLanes;
    Out.Stats.CommAccesses += S.CommAccesses;
    Out.Stats.Cycles += S.Cycles;
    Out.Stats.Seconds += S.Seconds;
  }
  captureArrays(*R->Merged, C.Prog, Out);
  return Out;
}

VariantOutcome runSimdOn(const std::string &Name, const ir::Program &P,
                         const FuzzCase &C, const OracleOptions &Opts,
                         Engine E,
                         std::shared_ptr<const exec::Program> Code) {
  VariantOutcome Out;
  Out.Variant = Name;
  machine::MachineConfig M;
  M.Name = "fuzz";
  M.Processors = Opts.SimdGran;
  M.Gran = Opts.SimdGran;
  M.DataLayout = machine::Layout::Cyclic;
  ExternRegistry Reg = makeFuzzRegistry(Out.ExternLog, C.ExternTrapArg);
  SimdInterp I(P, M, &Reg, runOptionsFor(C, E));
  if (Code)
    I.setCompiled(std::move(Code));
  seedStore(I.store(), C);
  RunOutcome<SimdRunResult> R = I.run();
  if (!R) {
    Out.T = R.error();
    return Out;
  }
  // On the lockstep machine one work step covers all active lanes, so
  // the sum of active lanes is the executions the scalar engine counts.
  Out.BodyCount = R->Stats.WorkActiveLanes;
  Out.Stats = R->Stats;
  captureArrays(I.store(), C.Prog, Out);
  return Out;
}

bool bitwiseEqual(const std::vector<double> &A,
                  const std::vector<double> &B) {
  if (A.size() != B.size())
    return false;
  return A.empty() ||
         std::memcmp(A.data(), B.data(), A.size() * sizeof(double)) == 0;
}

/// Renders a lane set for twin-divergence messages.
std::string lanesOf(const Trap &T) {
  std::string Out = "{";
  for (size_t I = 0; I < T.Lanes.size(); ++I) {
    if (I)
      Out += ",";
    Out += std::to_string(T.Lanes[I]);
  }
  Out += "}";
  return Out;
}

/// Every lowered engine (bytecode, hostsimd) claims bit-identical
/// semantics with the tree walker; hold each to it. Unlike
/// compareVariant below, nothing here is schedule-dependent: same
/// program, same store seed, same machine - every observable must match
/// exactly, including trap location/detail and the charged cycle count.
/// \p EngName labels the non-tree engine in failure messages.
void compareEngines(const VariantOutcome &TreeOut,
                    const VariantOutcome &ByteOut, const char *EngName,
                    std::vector<std::string> &Failures) {
  auto Fail = [&](const std::string &What) {
    Failures.push_back(ByteOut.Variant + " [engine " + EngName +
                       "]: " + What);
  };
  if (TreeOut.Skipped || ByteOut.Skipped)
    return;
  if (TreeOut.T.has_value() != ByteOut.T.has_value()) {
    Fail(ByteOut.T
             ? std::string(EngName) + " trapped (" + ByteOut.T->render() +
                   ") but tree completed"
             : std::string(EngName) +
                   " completed but tree trapped (" + TreeOut.T->render() +
                   ")");
    return;
  }
  if (TreeOut.T) {
    if (TreeOut.T->Kind != ByteOut.T->Kind)
      Fail("trap kind " + std::string(trapKindName(ByteOut.T->Kind)) +
           " != tree " + trapKindName(TreeOut.T->Kind));
    if (TreeOut.T->Lanes != ByteOut.T->Lanes)
      Fail("trap lanes " + lanesOf(*ByteOut.T) + " != tree " +
           lanesOf(*TreeOut.T));
    if (TreeOut.T->Location != ByteOut.T->Location)
      Fail("trap location '" + ByteOut.T->Location + "' != tree '" +
           TreeOut.T->Location + "'");
    if (TreeOut.T->Detail != ByteOut.T->Detail)
      Fail("trap detail '" + ByteOut.T->Detail + "' != tree '" +
           TreeOut.T->Detail + "'");
    return;
  }
  if (TreeOut.IntArrays != ByteOut.IntArrays)
    Fail("int arrays differ between engines");
  for (const auto &[Name, Want] : TreeOut.RealArrays) {
    auto It = ByteOut.RealArrays.find(Name);
    if (It == ByteOut.RealArrays.end() || !bitwiseEqual(It->second, Want))
      Fail("real array " + Name + " differs between engines (bitwise)");
  }
  if (TreeOut.BodyCount != ByteOut.BodyCount)
    Fail("body count " + std::to_string(ByteOut.BodyCount) + " != tree " +
         std::to_string(TreeOut.BodyCount));
  if (TreeOut.ExternLog != ByteOut.ExternLog)
    Fail("extern log differs between engines (" +
         std::to_string(ByteOut.ExternLog.size()) + " vs " +
         std::to_string(TreeOut.ExternLog.size()) + " entries)");
  const RunStats &A = TreeOut.Stats, &B = ByteOut.Stats;
  if (A.WorkSteps != B.WorkSteps || A.Instructions != B.Instructions ||
      A.WorkActiveLanes != B.WorkActiveLanes ||
      A.WorkTotalLanes != B.WorkTotalLanes ||
      A.CommAccesses != B.CommAccesses || A.Cycles != B.Cycles ||
      A.Seconds != B.Seconds)
    Fail("RunStats differ between engines");
}

/// Bitwise trip-histogram identity between two lowered engines (the
/// tree oracle records none, so this compares bytecode against
/// hostsimd/native). Histograms are uncharged telemetry, but the
/// serving layer's adaptive respecialization keys off them - an engine
/// that drifts here silently changes strategy decisions.
void compareTripNests(const VariantOutcome &ByteOut,
                      const VariantOutcome &Other, const char *EngName,
                      std::vector<std::string> &Failures) {
  if (ByteOut.Skipped || Other.Skipped)
    return;
  auto Fail = [&](const std::string &What) {
    Failures.push_back(ByteOut.Variant + " [engine " + EngName +
                       "]: " + What);
  };
  const auto &A = ByteOut.Stats.TripNests, &B = Other.Stats.TripNests;
  if (A.size() != B.size()) {
    Fail("trip nest count " + std::to_string(B.size()) +
         " != bytecode " + std::to_string(A.size()));
    return;
  }
  for (size_t I = 0; I < A.size(); ++I) {
    const interp::NestTripStats &X = A[I], &Y = B[I];
    if (X.Name != Y.Name || X.Depth != Y.Depth ||
        X.Hist.Exact != Y.Hist.Exact || X.Hist.Log2 != Y.Hist.Log2 ||
        X.Hist.Samples != Y.Hist.Samples || X.Hist.Sum != Y.Hist.Sum ||
        X.Hist.Max != Y.Hist.Max)
      Fail("trip histogram for nest '" + X.Name +
           "' differs from bytecode");
  }
}

/// Tick entries are excluded from multiset comparison: a lockstep
/// WHILE ANY() guard is evaluated speculatively on finished lanes.
std::vector<std::string> sortedLogLessTicks(
    const std::vector<std::string> &Log) {
  std::vector<std::string> Out;
  for (const std::string &E : Log)
    if (E.compare(0, 5, "Tick(") != 0)
      Out.push_back(E);
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Appends a failure line if \p V disagrees with the reference \p Ref.
/// \p ExactLog selects entry-by-entry log equality (order-preserving
/// scalar variants) vs. multiset-without-Tick (MIMD/SIMD).
void compareVariant(const VariantOutcome &Ref, const VariantOutcome &V,
                    bool ExactLog, std::vector<std::string> &Failures) {
  auto Fail = [&](const std::string &What) {
    Failures.push_back(V.Variant + ": " + What);
  };
  if (V.Skipped)
    return;
  if (Ref.T.has_value() != V.T.has_value()) {
    Fail(V.T ? "trapped (" + V.T->render() + ") but reference completed"
             : "completed but reference trapped (" + Ref.T->render() +
                   ")");
    return;
  }
  if (Ref.T) {
    if (Ref.T->Kind != V.T->Kind)
      Fail("trap kind " + std::string(trapKindName(V.T->Kind)) +
           " != reference " + trapKindName(Ref.T->Kind));
    return;
  }
  for (const auto &[Name, Want] : Ref.IntArrays) {
    auto It = V.IntArrays.find(Name);
    if (It == V.IntArrays.end() || It->second != Want)
      Fail("int array " + Name + " differs");
  }
  for (const auto &[Name, Want] : Ref.RealArrays) {
    auto It = V.RealArrays.find(Name);
    if (It == V.RealArrays.end() || !bitwiseEqual(It->second, Want))
      Fail("real array " + Name + " differs (bitwise)");
  }
  if (V.BodyCount != Ref.BodyCount)
    Fail("body count " + std::to_string(V.BodyCount) + " != reference " +
         std::to_string(Ref.BodyCount));
  if (ExactLog) {
    if (V.ExternLog != Ref.ExternLog)
      Fail("extern log differs (" + std::to_string(V.ExternLog.size()) +
           " vs " + std::to_string(Ref.ExternLog.size()) + " entries)");
  } else if (sortedLogLessTicks(V.ExternLog) !=
             sortedLogLessTicks(Ref.ExternLog)) {
    Fail("extern call multiset differs");
  }
}

} // namespace

OracleResult fuzz::runOracle(const FuzzCase &C, const OracleOptions &Opts) {
  OracleResult Res;

  // Every variant runs three times - tree-walk reference engine, then
  // the bytecode engine, then the host-SIMD backend - four with
  // Opts.Native (the JIT'd native tier) - and each lowered engine is
  // held to exact equality with the tree before the bytecode outcome
  // joins the cross-executor comparison below. (On variants without
  // SIMD lanes HostSimd and Native take the bytecode path by design;
  // the tuple still pins the dispatch plumbing.)
  auto pushTwin = [&Res, &Opts](auto Make) {
    VariantOutcome TreeOut = Make(Engine::Tree);
    VariantOutcome ByteOut = Make(Engine::Bytecode);
    VariantOutcome HostOut = Make(Engine::HostSimd);
    compareEngines(TreeOut, ByteOut, "bytecode", Res.Failures);
    compareEngines(TreeOut, HostOut, "hostsimd", Res.Failures);
    compareTripNests(ByteOut, HostOut, "hostsimd", Res.Failures);
    if (Opts.Native) {
      // The quad leg: JIT'd native loops, held to the same bar (on a
      // toolchain-less build Native degrades to bytecode and trivially
      // agrees - the leg then pins the fallback plumbing instead).
      VariantOutcome NatOut = Make(Engine::Native);
      compareEngines(TreeOut, NatOut, "native", Res.Failures);
      compareTripNests(ByteOut, NatOut, "native", Res.Failures);
    }
    Res.Variants.push_back(std::move(ByteOut));
  };

  // Reference: the scalar engine on the untouched tree (GOTOs and all).
  pushTwin([&](Engine E) {
    return runScalarOn("scalar/original", C.Prog, C, C.Prog, E);
  });

  // Scalar engine over each explicit rewrite stage. Order-preserving,
  // so these must reproduce the extern log exactly.
  {
    ir::Program P = cloneProgram(C.Prog);
    frontend::recoverGotoLoops(P);
    pushTwin([&](Engine E) {
      return runScalarOn("scalar/goto-recovered", P, C, C.Prog, E);
    });

    transform::normalizeLoops(P);
    pushTwin([&](Engine E) {
      return runScalarOn("scalar/normalized", P, C, C.Prog, E);
    });

    transform::introduceGuards(P);
    if (Opts.BreakGuardSideEffectCache)
      breakGuardCache(P.body());
    pushTwin([&](Engine E) {
      return runScalarOn("scalar/guard-intro", P, C, C.Prog, E);
    });
  }
  {
    ir::Program P = cloneProgram(C.Prog);
    frontend::recoverGotoLoops(P);
    transform::simplifyProgram(P);
    pushTwin([&](Engine E) {
      return runScalarOn("scalar/simplified", P, C, C.Prog, E);
    });
  }
  {
    ir::Program P = cloneProgram(C.Prog);
    frontend::recoverGotoLoops(P);
    transform::CoalesceResult CR =
        transform::coalesceNest(P, CoalesceMaxOuter, CoalesceMaxTotal);
    if (CR.Changed) {
      pushTwin([&](Engine E) {
        return runScalarOn("scalar/coalesced", P, C, C.Prog, E);
      });
    } else {
      VariantOutcome Out;
      Out.Variant = "scalar/coalesced";
      Out.Skipped = true;
      Out.SkipReason = CR.Reason;
      Res.Variants.push_back(std::move(Out));
    }
  }

  // Parallel executors (lane/processor order differs legitimately).
  pushTwin([&](Engine E) { return runMimdOn(C, Opts, E); });
  {
    ir::Program P = cloneProgram(C.Prog);
    frontend::recoverGotoLoops(P);
    transform::SimdizeOptions SO;
    SO.DoAllLayout = machine::Layout::Cyclic;
    ir::Program Simd = transform::simdize(P, SO);
    pushTwin([&](Engine E) {
      return runSimdOn("simd/raw", Simd, C, Opts, E, nullptr);
    });
  }
  // Pipeline variants: compile (and lower) once per variant, then run
  // both engines on the shared CompiledSimdProgram - exactly the reuse
  // benches and the transform::Pipeline cache rely on.
  auto pushPipelineTwin = [&](const std::string &Name, bool Flatten,
                              bool ExplicitNormalize) {
    transform::PipelineOptions PO;
    PO.Layout = machine::Layout::Cyclic;
    PO.Flatten = Flatten;
    PO.AssumeInnerMinOneTrip = C.MinOne;
    PO.ExplicitNormalize = ExplicitNormalize;
    Expected<transform::CompiledSimdProgram, transform::PipelineError> P =
        transform::compileForSimdExec(C.Prog, PO);
    if (!P) {
      // compileForSimd reverts damaged stages; a structured error on a
      // well-formed input is itself a robustness finding.
      VariantOutcome Out;
      Out.Variant = Name;
      Out.T = Trap{TrapKind::InvalidProgram, {}, P.error().Stage,
                   P.error().render()};
      Res.Variants.push_back(std::move(Out));
      return;
    }
    pushTwin([&](Engine E) {
      return runSimdOn(Name, P->Prog, C, Opts, E, P->Code);
    });
  };
  pushPipelineTwin("simd/unflattened", /*Flatten=*/false,
                   /*ExplicitNormalize=*/false);
  pushPipelineTwin("simd/flatten", /*Flatten=*/true,
                   /*ExplicitNormalize=*/false);
  pushPipelineTwin("simd/flatten-explicit", /*Flatten=*/true,
                   /*ExplicitNormalize=*/true);
  // The strategy seam, forced to each variant it can build. Strategy
  // selection may only change performance, never observables: the
  // coalesced build (or its flattened fallback when the nest declines)
  // must agree with the scalar reference like every other variant.
  auto pushStrategyTwin = [&](const std::string &Name,
                              transform::StrategyPolicy SP) {
    transform::PipelineOptions PO;
    PO.Layout = machine::Layout::Cyclic;
    PO.AssumeInnerMinOneTrip = C.MinOne;
    PO.Strategy = SP;
    Expected<transform::CompiledSimdProgram, transform::PipelineError> P =
        transform::compileForSimdExec(C.Prog, PO);
    if (!P) {
      VariantOutcome Out;
      Out.Variant = Name;
      Out.T = Trap{TrapKind::InvalidProgram, {}, P.error().Stage,
                   P.error().render()};
      Res.Variants.push_back(std::move(Out));
      return;
    }
    pushTwin([&](Engine E) {
      return runSimdOn(Name, P->Prog, C, Opts, E, P->Code);
    });
  };
  pushStrategyTwin("simd/strategy-unflattened",
                   transform::StrategyPolicy::unflattened());
  pushStrategyTwin("simd/strategy-flattened",
                   transform::StrategyPolicy::flattened());
  pushStrategyTwin("simd/strategy-coalesced",
                   transform::StrategyPolicy::coalesced(CoalesceMaxOuter,
                                                        CoalesceMaxTotal));

  const VariantOutcome &Ref = Res.Variants.front();
  for (const VariantOutcome &V : Res.Variants) {
    if (&V == &Ref)
      continue;
    bool ExactLog = V.Variant.compare(0, 7, "scalar/") == 0;
    compareVariant(Ref, V, ExactLog, Res.Failures);
  }
  Res.Diverged = !Res.Failures.empty();
  return Res;
}
