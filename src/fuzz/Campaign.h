//===- fuzz/Campaign.h - Fault-injection campaigns -------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault-injection campaigns over generated programs:
/// every case gets exactly one injected fault - a starved fuel budget,
/// an already-expired wall-clock deadline, a trap-throwing extern, or a
/// NaN-poisoned real input - and the
/// differential oracle then asserts that every executor degrades to the
/// same structured outcome (the same Trap kind, or bitwise-identical
/// NaN-poisoned stores) with no crash or UB. On top of the oracle's
/// kind check, the campaign pins the trap *location* between the scalar
/// reference and the MIMD executor: both run the untransformed tree, so
/// their statement chains must match exactly. (Transformed SIMD
/// variants stop at a renamed statement chain by construction, so
/// location equality is only meaningful between same-tree executors -
/// see DESIGN.md Sec. 10.)
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_FUZZ_CAMPAIGN_H
#define SIMDFLAT_FUZZ_CAMPAIGN_H

#include "fuzz/Case.h"
#include "fuzz/Oracle.h"

#include <string>
#include <vector>

namespace simdflat {
namespace fuzz {

/// The fault injected into one campaign case.
enum class FaultKind { Fuel, HostileExtern, NanPoison, Deadline };

const char *faultKindName(FaultKind K);

/// Builds the campaign case for \p Seed: a generated min-one-trip
/// program (so the fault is guaranteed to execute) with exactly the one
/// fault of \p Kind injected.
FuzzCase makeFaultCase(uint64_t Seed, FaultKind Kind);

/// Campaign configuration.
struct CampaignOptions {
  uint64_t BaseSeed = 1;
  /// Number of cases; the fault kind cycles with the seed.
  int Count = 200;
};

/// Campaign outcome.
struct CampaignResult {
  int Ran = 0;
  /// Cases whose reference trapped (all Fuel/HostileExtern cases).
  int Trapped = 0;
  /// One entry per failing case: "seed 7 (fuel): <what>".
  std::vector<std::string> Failures;

  bool ok() const { return Failures.empty(); }
};

/// Runs the campaign: for each seed, builds the fault case, checks the
/// injected fault actually fired with the expected trap kind, and runs
/// the full differential oracle on it.
CampaignResult runFaultCampaign(const CampaignOptions &Opts = {},
                                const OracleOptions &OOpts = {});

} // namespace fuzz
} // namespace simdflat

#endif // SIMDFLAT_FUZZ_CAMPAIGN_H
