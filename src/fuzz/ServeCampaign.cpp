//===- fuzz/ServeCampaign.cpp - Serving-core fault campaign ----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ServeCampaign.h"

#include "fuzz/Generator.h"
#include "interp/Trap.h"
#include "ir/Printer.h"
#include "serve/Server.h"

#include <chrono>
#include <sstream>

using namespace simdflat;
using namespace simdflat::fuzz;
using namespace simdflat::serve;

namespace {

/// The request categories of the mixed-traffic phase, cycled by seed.
enum class Category {
  GeneratedValid,  ///< generator program; Served (or extern-trap / shed)
  RepeatedValid,   ///< one fixed program, repeated: drives cache hits
  HostileSource,   ///< not Fortran; always CompileError
  FuelStarved,     ///< valid program, starved budget; FuelExhausted trap
  OverBudget,      ///< fuel beyond the server cap; shed at admission
  TightDeadline,   ///< long program, 1ms budget; DeadlineExpired or shed
};
constexpr int NumCategories = 6;

const char *categoryName(Category C) {
  switch (C) {
  case Category::GeneratedValid:
    return "generated-valid";
  case Category::RepeatedValid:
    return "repeated-valid";
  case Category::HostileSource:
    return "hostile-source";
  case Category::FuelStarved:
    return "fuel-starved";
  case Category::OverBudget:
    return "over-budget";
  case Category::TightDeadline:
    return "tight-deadline";
  }
  return "generated-valid";
}

constexpr const char *RepeatedSource = "PROGRAM REPEAT\n"
                                       "INTEGER a\n"
                                       "INTEGER b\n"
                                       "BEGIN\n"
                                       "  b = a * 3 + 1\n"
                                       "END\n";

constexpr const char *LongRunningSource = "PROGRAM SPIN\n"
                                          "INTEGER i\n"
                                          "INTEGER s\n"
                                          "BEGIN\n"
                                          "  s = 0\n"
                                          "  DO i = 1, 50000000\n"
                                          "    s = s + i\n"
                                          "  ENDDO\n"
                                          "END\n";

/// Builds the mixed-phase request for \p Seed. \p MaxFuel is the
/// server's admission cap (the over-budget category must exceed it).
Request makeRequest(uint64_t Seed, Category Cat, int64_t MaxFuel) {
  Request R;
  R.Id = Seed;
  R.Lanes = 1 + (int64_t)(Seed % 4);
  R.Fuel = MaxFuel;
  switch (Cat) {
  case Category::GeneratedValid: {
    GeneratorOptions GO;
    GO.AllowTrappyDiv = false;
    GO.AllowTrappyBounds = false;
    GO.AllowDegenerateTrips = false;
    GO.ForceMinOneTrips = true;
    FuzzCase C = generateCase(Seed, GO);
    R.Source = ir::printProgram(C.Prog);
    R.Ints = C.Ints;
    R.IntArrays = C.IntArrays;
    R.RealArrays = C.RealArrays;
    R.MinOne = C.MinOne;
    R.Lanes = 4;
    break;
  }
  case Category::RepeatedValid:
    R.Source = RepeatedSource;
    R.Ints["a"] = (int64_t)(Seed % 100);
    R.Lanes = 1;
    break;
  case Category::HostileSource:
    R.Source = "PROGRAM P\nBEGIN\n  GIBBERISH " + std::to_string(Seed) +
               "\nEND\n";
    break;
  case Category::FuelStarved:
    R.Source = RepeatedSource;
    R.Ints["a"] = 7;
    R.Fuel = 1; // the body needs at least 2 instructions
    R.Lanes = 1;
    break;
  case Category::OverBudget:
    R.Source = RepeatedSource;
    R.Fuel = MaxFuel * 2;
    break;
  case Category::TightDeadline:
    R.Source = LongRunningSource;
    R.Fuel = MaxFuel;
    R.DeadlineMs = 1;
    R.Lanes = 1;
    break;
  }
  return R;
}

struct Collector {
  ServeCampaignResult &Res;
  int64_t HangTimeoutSec;

  /// Resolves one future with the hang guard; a timeout is a campaign
  /// failure (reported, not waited out).
  bool get(std::future<Reply> &F, const std::string &What, Reply &Out) {
    if (F.wait_for(std::chrono::seconds(HangTimeoutSec)) !=
        std::future_status::ready) {
      Res.Failures.push_back(What + ": reply not ready after " +
                             std::to_string(HangTimeoutSec) +
                             "s (hang)");
      return false;
    }
    Out = F.get();
    switch (Out.Out) {
    case Outcome::Served:
      ++Res.Served;
      break;
    case Outcome::Trapped:
      ++Res.Trapped;
      break;
    case Outcome::Shed:
      ++Res.Shed;
      break;
    case Outcome::CompileError:
      ++Res.CompileErrors;
      break;
    }
    return true;
  }
};

/// Checks one mixed-phase reply against its category's allowed set.
void checkMixedReply(Category Cat, uint64_t Seed, const Reply &Rep,
                     ServeCampaignResult &Res) {
  auto Fail = [&](const std::string &What) {
    std::ostringstream OS;
    OS << "seed " << Seed << " (" << categoryName(Cat) << "): " << What
       << " [reply: " << outcomeName(Rep.Out)
       << (Rep.Error.empty() ? "" : ", " + Rep.Error) << "]";
    Res.Failures.push_back(OS.str());
  };
  switch (Cat) {
  case Category::GeneratedValid:
    // Generated programs may call the Probe/Tick externs; the server
    // binds no registry, so those trap with ExternFailure - a correct
    // structured outcome, not a campaign failure.
    if (Rep.Out == Outcome::CompileError)
      Fail("valid generated program rejected as compile-error");
    if (Rep.Out == Outcome::Trapped &&
        Rep.T->Kind != interp::TrapKind::ExternFailure)
      Fail("unexpected trap " + Rep.T->render());
    break;
  case Category::RepeatedValid:
    if (Rep.Out != Outcome::Served && Rep.Out != Outcome::Shed)
      Fail("fixed valid program neither served nor shed");
    break;
  case Category::HostileSource:
    if (Rep.Out != Outcome::CompileError)
      Fail("hostile source not answered with compile-error");
    break;
  case Category::FuelStarved:
    if (Rep.Out == Outcome::Trapped) {
      if (Rep.T->Kind != interp::TrapKind::FuelExhausted)
        Fail("starved budget trapped with " +
             std::string(interp::trapKindName(Rep.T->Kind)));
    } else if (Rep.Out != Outcome::Shed) {
      Fail("starved budget neither trapped nor shed");
    }
    break;
  case Category::OverBudget:
    if (Rep.Out != Outcome::Shed)
      Fail("over-budget request not shed");
    else if (Rep.RetryAfterMs != 0)
      Fail("over-budget shed carries a retry hint (retrying is "
           "pointless)");
    break;
  case Category::TightDeadline:
    if (Rep.Out == Outcome::Trapped) {
      if (Rep.T->Kind != interp::TrapKind::DeadlineExpired)
        Fail("tight deadline trapped with " +
             std::string(interp::trapKindName(Rep.T->Kind)));
    } else if (Rep.Out != Outcome::Shed) {
      Fail("tight deadline neither trapped nor shed");
    }
    break;
  }
}

/// Asserts a server's final accounting partitions its submissions.
void checkAccounting(const char *Phase, const Server &S,
                     ServeCampaignResult &Res) {
  ServerStats St = S.stats();
  if (!St.consistent()) {
    std::ostringstream OS;
    OS << Phase << ": accounting broken: " << St.Served << " served + "
       << St.Trapped << " trapped + " << St.Shed << " shed + "
       << St.CompileErrors << " compile-errors != " << St.Submitted
       << " submitted";
    Res.Failures.push_back(OS.str());
  }
}

void runMixedPhase(const ServeCampaignOptions &Opts,
                   ServeCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 2;
  // Roomy queue: this phase checks per-category outcomes, not load
  // shedding (the saturation phase owns that).
  SO.QueueCapacity = (size_t)Opts.Count + 8;
  SO.CacheCapacity = 16;
  SO.MaxFuel = 200'000;
  Server S(SO);

  std::vector<std::pair<uint64_t, std::future<Reply>>> Pending;
  for (int I = 0; I < Opts.Count; ++I) {
    uint64_t Seed = Opts.BaseSeed + (uint64_t)I;
    Category Cat = (Category)(Seed % NumCategories);
    Pending.emplace_back(Seed,
                         S.submit(makeRequest(Seed, Cat, SO.MaxFuel)));
    ++Res.Submitted;
  }
  for (auto &[Seed, F] : Pending) {
    Category Cat = (Category)(Seed % NumCategories);
    Reply Rep;
    if (Col.get(F, std::string("mixed ") + categoryName(Cat), Rep))
      checkMixedReply(Cat, Seed, Rep, Res);
  }
  checkAccounting("mixed", S, Res);
  if (S.stats().CacheHits == 0)
    Res.Failures.push_back(
        "mixed: repeated source produced no cache hits");
}

void runSaturationPhase(ServeCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 4;
  SO.MaxFuel = 200'000;
  // Each request stalls its worker long enough that the whole burst is
  // submitted before the queue drains meaningfully.
  SO.Faults.WorkerStallMicros = 20'000;
  Server S(SO);

  // Twice the admission capacity on top of what queue + worker can
  // hold: the excess MUST shed, deterministically and immediately.
  int N = (int)SO.QueueCapacity * 2 + SO.Workers + 2;
  std::vector<std::future<Reply>> Pending;
  Request Proto;
  Proto.Source = RepeatedSource;
  Proto.Fuel = 1000;
  Proto.Lanes = 1;
  for (int I = 0; I < N; ++I) {
    Request R = Proto;
    R.Id = (uint64_t)I;
    Pending.push_back(S.submit(std::move(R)));
    ++Res.Submitted;
  }
  int64_t PhaseShed = 0;
  for (auto &F : Pending) {
    Reply Rep;
    if (!Col.get(F, "saturation", Rep))
      continue;
    if (Rep.Out == Outcome::Shed) {
      ++PhaseShed;
      if (Rep.RetryAfterMs <= 0)
        Res.Failures.push_back(
            "saturation: queue-full shed without a retry hint");
    } else if (Rep.Out != Outcome::Served) {
      Res.Failures.push_back(std::string("saturation: unexpected ") +
                             outcomeName(Rep.Out) + ": " + Rep.Error);
    }
  }
  // The worker can drain at most a couple of requests while the burst
  // is submitted; everything beyond queue + in-flight must have shed.
  int64_t MinShed = N - (int64_t)SO.QueueCapacity - SO.Workers - 2;
  if (PhaseShed < MinShed) {
    std::ostringstream OS;
    OS << "saturation: only " << PhaseShed << " of " << N
       << " requests shed; expected at least " << MinShed;
    Res.Failures.push_back(OS.str());
  }
  checkAccounting("saturation", S, Res);
}

void runBreakerPhase(ServeCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 32;
  SO.MaxFuel = 200'000;
  // Every primary compile attempt fails; retries are off so each
  // request burns exactly one attempt and the breaker trips quickly.
  SO.Faults.CompileFailures = 1'000'000;
  SO.CompileRetries = 0;
  SO.Breaker.FailureThreshold = 2;
  SO.Breaker.OpenBudget = 3;
  Server S(SO);

  const int N = 8;
  for (int I = 0; I < N; ++I) {
    Request R;
    R.Id = (uint64_t)I;
    R.Source = RepeatedSource;
    R.Ints["a"] = 5;
    R.Fuel = 1000;
    R.Lanes = 1;
    auto F = S.submit(std::move(R));
    ++Res.Submitted;
    Reply Rep;
    // Sequential submission: the breaker state machine advances
    // deterministically request by request.
    if (!Col.get(F, "breaker", Rep))
      continue;
    if (Rep.Out != Outcome::Served)
      Res.Failures.push_back(
          "breaker: request " + std::to_string(I) +
          " not served through the fallback: " + Rep.Error);
    else if (!Rep.Tele.Fallback)
      Res.Failures.push_back("breaker: request " + std::to_string(I) +
                             " claims the primary pipeline compiled "
                             "despite total injection");
  }
  ServerStats St = S.stats();
  if (St.FallbackServes != N)
    Res.Failures.push_back(
        "breaker: " + std::to_string(St.FallbackServes) + " of " +
        std::to_string(N) + " requests served via fallback");
  if (St.BreakerOpens < 1)
    Res.Failures.push_back(
        "breaker: never opened despite consecutive primary failures");
  checkAccounting("breaker", S, Res);
}

void runEvictionPhase(const ServeCampaignOptions &Opts,
                      ServeCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 2;
  SO.QueueCapacity = 32;
  SO.MaxFuel = 200'000;
  SO.CacheCapacity = 1; // LRU pressure from every second program
  SO.Faults.EvictMidFlight = true;
  Server S(SO);

  const int N = 12;
  std::vector<std::pair<uint64_t, std::future<Reply>>> Pending;
  for (int I = 0; I < N; ++I) {
    uint64_t Seed = Opts.BaseSeed + (uint64_t)I;
    Request R = makeRequest(Seed, Category::GeneratedValid, SO.MaxFuel);
    R.Id = (uint64_t)I;
    Pending.emplace_back(Seed, S.submit(std::move(R)));
    ++Res.Submitted;
  }
  for (auto &[Seed, F] : Pending) {
    Reply Rep;
    if (!Col.get(F, "eviction", Rep))
      continue;
    // Same allowed set as the mixed phase: eviction must not change
    // outcomes, only cache statistics.
    checkMixedReply(Category::GeneratedValid, Seed, Rep, Res);
  }
  if (S.stats().CacheEvictions < 1)
    Res.Failures.push_back(
        "eviction: fault plan evicted nothing (probe dead?)");
  checkAccounting("eviction", S, Res);
}

} // namespace

ServeCampaignResult
fuzz::runServeCampaign(const ServeCampaignOptions &Opts) {
  ServeCampaignResult Res;
  Collector Col{Res, Opts.HangTimeoutSec};
  runMixedPhase(Opts, Res, Col);
  runSaturationPhase(Res, Col);
  runBreakerPhase(Res, Col);
  runEvictionPhase(Opts, Res, Col);
  // Global zero-loss check across all phases: every submission landed
  // in exactly one bucket.
  if (Res.Served + Res.Trapped + Res.Shed + Res.CompileErrors !=
      Res.Submitted)
    Res.Failures.push_back(
        "campaign: replies collected (" +
        std::to_string(Res.Served + Res.Trapped + Res.Shed +
                       Res.CompileErrors) +
        ") != requests submitted (" + std::to_string(Res.Submitted) +
        ")");
  return Res;
}
