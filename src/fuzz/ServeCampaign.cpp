//===- fuzz/ServeCampaign.cpp - Serving-core fault campaign ----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ServeCampaign.h"

#include "fuzz/Generator.h"
#include "interp/Trap.h"
#include "ir/Printer.h"
#include "serve/Server.h"

#include <chrono>
#include <sstream>

using namespace simdflat;
using namespace simdflat::fuzz;
using namespace simdflat::serve;

namespace {

/// The request categories of the mixed-traffic phase, cycled by seed.
enum class Category {
  GeneratedValid,  ///< generator program; Served (or extern-trap / shed)
  RepeatedValid,   ///< one fixed program, repeated: drives cache hits
  HostileSource,   ///< not Fortran; always CompileError
  FuelStarved,     ///< valid program, starved budget; FuelExhausted trap
  OverBudget,      ///< fuel beyond the server cap; shed at admission
  TightDeadline,   ///< long program, 1ms budget; DeadlineExpired or shed
};
constexpr int NumCategories = 6;

const char *categoryName(Category C) {
  switch (C) {
  case Category::GeneratedValid:
    return "generated-valid";
  case Category::RepeatedValid:
    return "repeated-valid";
  case Category::HostileSource:
    return "hostile-source";
  case Category::FuelStarved:
    return "fuel-starved";
  case Category::OverBudget:
    return "over-budget";
  case Category::TightDeadline:
    return "tight-deadline";
  }
  return "generated-valid";
}

constexpr const char *RepeatedSource = "PROGRAM REPEAT\n"
                                       "INTEGER a\n"
                                       "INTEGER b\n"
                                       "BEGIN\n"
                                       "  b = a * 3 + 1\n"
                                       "END\n";

constexpr const char *LongRunningSource = "PROGRAM SPIN\n"
                                          "INTEGER i\n"
                                          "INTEGER s\n"
                                          "BEGIN\n"
                                          "  s = 0\n"
                                          "  DO i = 1, 50000000\n"
                                          "    s = s + i\n"
                                          "  ENDDO\n"
                                          "END\n";

/// Builds the mixed-phase request for \p Seed. \p MaxFuel is the
/// server's admission cap (the over-budget category must exceed it).
Request makeRequest(uint64_t Seed, Category Cat, int64_t MaxFuel) {
  Request R;
  R.Id = Seed;
  R.Lanes = 1 + (int64_t)(Seed % 4);
  R.Fuel = MaxFuel;
  switch (Cat) {
  case Category::GeneratedValid: {
    GeneratorOptions GO;
    GO.AllowTrappyDiv = false;
    GO.AllowTrappyBounds = false;
    GO.AllowDegenerateTrips = false;
    GO.ForceMinOneTrips = true;
    FuzzCase C = generateCase(Seed, GO);
    R.Source = ir::printProgram(C.Prog);
    R.Ints = C.Ints;
    R.IntArrays = C.IntArrays;
    R.RealArrays = C.RealArrays;
    R.MinOne = C.MinOne;
    R.Lanes = 4;
    break;
  }
  case Category::RepeatedValid:
    R.Source = RepeatedSource;
    R.Ints["a"] = (int64_t)(Seed % 100);
    R.Lanes = 1;
    break;
  case Category::HostileSource:
    R.Source = "PROGRAM P\nBEGIN\n  GIBBERISH " + std::to_string(Seed) +
               "\nEND\n";
    break;
  case Category::FuelStarved:
    R.Source = RepeatedSource;
    R.Ints["a"] = 7;
    R.Fuel = 1; // the body needs at least 2 instructions
    R.Lanes = 1;
    break;
  case Category::OverBudget:
    R.Source = RepeatedSource;
    R.Fuel = MaxFuel * 2;
    break;
  case Category::TightDeadline:
    R.Source = LongRunningSource;
    R.Fuel = MaxFuel;
    R.DeadlineMs = 1;
    R.Lanes = 1;
    break;
  }
  return R;
}

struct Collector {
  ServeCampaignResult &Res;
  int64_t HangTimeoutSec;

  /// Resolves one future with the hang guard; a timeout is a campaign
  /// failure (reported, not waited out).
  bool get(std::future<Reply> &F, const std::string &What, Reply &Out) {
    if (F.wait_for(std::chrono::seconds(HangTimeoutSec)) !=
        std::future_status::ready) {
      Res.Failures.push_back(What + ": reply not ready after " +
                             std::to_string(HangTimeoutSec) +
                             "s (hang)");
      return false;
    }
    Out = F.get();
    switch (Out.Out) {
    case Outcome::Served:
      ++Res.Served;
      break;
    case Outcome::Trapped:
      ++Res.Trapped;
      break;
    case Outcome::Shed:
      ++Res.Shed;
      break;
    case Outcome::CompileError:
      ++Res.CompileErrors;
      break;
    }
    return true;
  }
};

/// Checks one mixed-phase reply against its category's allowed set.
void checkMixedReply(Category Cat, uint64_t Seed, const Reply &Rep,
                     ServeCampaignResult &Res) {
  auto Fail = [&](const std::string &What) {
    std::ostringstream OS;
    OS << "seed " << Seed << " (" << categoryName(Cat) << "): " << What
       << " [reply: " << outcomeName(Rep.Out)
       << (Rep.Error.empty() ? "" : ", " + Rep.Error) << "]";
    Res.Failures.push_back(OS.str());
  };
  switch (Cat) {
  case Category::GeneratedValid:
    // Generated programs may call the Probe/Tick externs; the server
    // binds no registry, so those trap with ExternFailure - a correct
    // structured outcome, not a campaign failure.
    if (Rep.Out == Outcome::CompileError)
      Fail("valid generated program rejected as compile-error");
    if (Rep.Out == Outcome::Trapped &&
        Rep.T->Kind != interp::TrapKind::ExternFailure)
      Fail("unexpected trap " + Rep.T->render());
    break;
  case Category::RepeatedValid:
    if (Rep.Out != Outcome::Served && Rep.Out != Outcome::Shed)
      Fail("fixed valid program neither served nor shed");
    break;
  case Category::HostileSource:
    if (Rep.Out != Outcome::CompileError)
      Fail("hostile source not answered with compile-error");
    break;
  case Category::FuelStarved:
    if (Rep.Out == Outcome::Trapped) {
      if (Rep.T->Kind != interp::TrapKind::FuelExhausted)
        Fail("starved budget trapped with " +
             std::string(interp::trapKindName(Rep.T->Kind)));
    } else if (Rep.Out != Outcome::Shed) {
      Fail("starved budget neither trapped nor shed");
    }
    break;
  case Category::OverBudget:
    if (Rep.Out != Outcome::Shed)
      Fail("over-budget request not shed");
    else if (Rep.RetryAfterMs != 0)
      Fail("over-budget shed carries a retry hint (retrying is "
           "pointless)");
    break;
  case Category::TightDeadline:
    if (Rep.Out == Outcome::Trapped) {
      if (Rep.T->Kind != interp::TrapKind::DeadlineExpired)
        Fail("tight deadline trapped with " +
             std::string(interp::trapKindName(Rep.T->Kind)));
    } else if (Rep.Out != Outcome::Shed) {
      Fail("tight deadline neither trapped nor shed");
    }
    break;
  }
}

/// Asserts a server's final accounting partitions its submissions,
/// globally and tenant by tenant (admitted = served + trapped + shed +
/// compile-errors per tenant - the conservation law every phase must
/// respect, including drain-under-load).
void checkAccounting(const char *Phase, const Server &S,
                     ServeCampaignResult &Res) {
  ServerStats St = S.stats();
  if (!St.consistent()) {
    std::ostringstream OS;
    OS << Phase << ": accounting broken: " << St.Served << " served + "
       << St.Trapped << " trapped + " << St.Shed << " shed + "
       << St.CompileErrors << " compile-errors != " << St.Submitted
       << " submitted";
    Res.Failures.push_back(OS.str());
  }
  for (const auto &[Tenant, TS] : St.Tenants) {
    if (TS.consistent())
      continue;
    std::ostringstream OS;
    OS << Phase << ": tenant '" << Tenant
       << "' accounting broken: submitted=" << TS.Submitted
       << " admitted=" << TS.Admitted << " served=" << TS.Served
       << " trapped=" << TS.Trapped
       << " compile-errors=" << TS.CompileErrors
       << " shed-at-admission=" << TS.ShedAtAdmission
       << " shed-in-service=" << TS.ShedInService;
    Res.Failures.push_back(OS.str());
  }
}

void runMixedPhase(const ServeCampaignOptions &Opts,
                   ServeCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 2;
  // Roomy queue: this phase checks per-category outcomes, not load
  // shedding (the saturation phase owns that).
  SO.QueueCapacity = (size_t)Opts.Count + 8;
  SO.CacheCapacity = 16;
  SO.MaxFuel = 200'000;
  Server S(SO);

  std::vector<std::pair<uint64_t, std::future<Reply>>> Pending;
  for (int I = 0; I < Opts.Count; ++I) {
    uint64_t Seed = Opts.BaseSeed + (uint64_t)I;
    Category Cat = (Category)(Seed % NumCategories);
    Pending.emplace_back(Seed,
                         S.submit(makeRequest(Seed, Cat, SO.MaxFuel)));
    ++Res.Submitted;
  }
  for (auto &[Seed, F] : Pending) {
    Category Cat = (Category)(Seed % NumCategories);
    Reply Rep;
    if (Col.get(F, std::string("mixed ") + categoryName(Cat), Rep))
      checkMixedReply(Cat, Seed, Rep, Res);
  }
  checkAccounting("mixed", S, Res);
  if (S.stats().CacheHits == 0)
    Res.Failures.push_back(
        "mixed: repeated source produced no cache hits");
}

void runSaturationPhase(ServeCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 4;
  SO.MaxFuel = 200'000;
  // Each request stalls its worker long enough that the whole burst is
  // submitted before the queue drains meaningfully.
  SO.Faults.WorkerStallMicros = 20'000;
  Server S(SO);

  // Twice the admission capacity on top of what queue + worker can
  // hold: the excess MUST shed, deterministically and immediately.
  int N = (int)SO.QueueCapacity * 2 + SO.Workers + 2;
  std::vector<std::future<Reply>> Pending;
  Request Proto;
  Proto.Source = RepeatedSource;
  Proto.Fuel = 1000;
  Proto.Lanes = 1;
  for (int I = 0; I < N; ++I) {
    Request R = Proto;
    R.Id = (uint64_t)I;
    Pending.push_back(S.submit(std::move(R)));
    ++Res.Submitted;
  }
  int64_t PhaseShed = 0;
  for (auto &F : Pending) {
    Reply Rep;
    if (!Col.get(F, "saturation", Rep))
      continue;
    if (Rep.Out == Outcome::Shed) {
      ++PhaseShed;
      if (Rep.RetryAfterMs <= 0)
        Res.Failures.push_back(
            "saturation: queue-full shed without a retry hint");
    } else if (Rep.Out != Outcome::Served) {
      Res.Failures.push_back(std::string("saturation: unexpected ") +
                             outcomeName(Rep.Out) + ": " + Rep.Error);
    }
  }
  // The worker can drain at most a couple of requests while the burst
  // is submitted; everything beyond queue + in-flight must have shed.
  int64_t MinShed = N - (int64_t)SO.QueueCapacity - SO.Workers - 2;
  if (PhaseShed < MinShed) {
    std::ostringstream OS;
    OS << "saturation: only " << PhaseShed << " of " << N
       << " requests shed; expected at least " << MinShed;
    Res.Failures.push_back(OS.str());
  }
  checkAccounting("saturation", S, Res);
}

void runBreakerPhase(ServeCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 32;
  SO.MaxFuel = 200'000;
  // Every primary compile attempt fails; retries are off so each
  // request burns exactly one attempt and the breaker trips quickly.
  SO.Faults.CompileFailures = 1'000'000;
  SO.CompileRetries = 0;
  SO.Breaker.FailureThreshold = 2;
  SO.Breaker.OpenBudget = 3;
  Server S(SO);

  const int N = 8;
  for (int I = 0; I < N; ++I) {
    Request R;
    R.Id = (uint64_t)I;
    R.Source = RepeatedSource;
    R.Ints["a"] = 5;
    R.Fuel = 1000;
    R.Lanes = 1;
    auto F = S.submit(std::move(R));
    ++Res.Submitted;
    Reply Rep;
    // Sequential submission: the breaker state machine advances
    // deterministically request by request.
    if (!Col.get(F, "breaker", Rep))
      continue;
    if (Rep.Out != Outcome::Served)
      Res.Failures.push_back(
          "breaker: request " + std::to_string(I) +
          " not served through the fallback: " + Rep.Error);
    else if (!Rep.Tele.Fallback)
      Res.Failures.push_back("breaker: request " + std::to_string(I) +
                             " claims the primary pipeline compiled "
                             "despite total injection");
  }
  ServerStats St = S.stats();
  if (St.FallbackServes != N)
    Res.Failures.push_back(
        "breaker: " + std::to_string(St.FallbackServes) + " of " +
        std::to_string(N) + " requests served via fallback");
  if (St.BreakerOpens < 1)
    Res.Failures.push_back(
        "breaker: never opened despite consecutive primary failures");
  checkAccounting("breaker", S, Res);
}

void runEvictionPhase(const ServeCampaignOptions &Opts,
                      ServeCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 2;
  SO.QueueCapacity = 32;
  SO.MaxFuel = 200'000;
  SO.CacheCapacity = 1; // LRU pressure from every second program
  SO.Faults.EvictMidFlight = true;
  Server S(SO);

  const int N = 12;
  std::vector<std::pair<uint64_t, std::future<Reply>>> Pending;
  for (int I = 0; I < N; ++I) {
    uint64_t Seed = Opts.BaseSeed + (uint64_t)I;
    Request R = makeRequest(Seed, Category::GeneratedValid, SO.MaxFuel);
    R.Id = (uint64_t)I;
    Pending.emplace_back(Seed, S.submit(std::move(R)));
    ++Res.Submitted;
  }
  for (auto &[Seed, F] : Pending) {
    Reply Rep;
    if (!Col.get(F, "eviction", Rep))
      continue;
    // Same allowed set as the mixed phase: eviction must not change
    // outcomes, only cache statistics.
    checkMixedReply(Category::GeneratedValid, Seed, Rep, Res);
  }
  if (S.stats().CacheEvictions < 1)
    Res.Failures.push_back(
        "eviction: fault plan evicted nothing (probe dead?)");
  checkAccounting("eviction", S, Res);
}

/// The acceptance scenario of the tenancy work: tenant "hot" offers 10x
/// tenant "victim"'s load against per-tenant token buckets driven by a
/// frozen virtual-time clock (no refill: each tenant gets exactly its
/// burst, deterministically). The victim must stay entirely inside its
/// quota envelope - zero sheds - while the hot tenant sheds exactly its
/// overage with priced retry hints.
void runTenantSkewPhase(ServeCampaignResult &Res, Collector &Col) {
  constexpr int VictimLoad = 8; // == victim burst: all must land
  constexpr int HotLoad = VictimLoad * 10;

  ServerOptions SO;
  SO.Workers = 2;
  SO.QueueCapacity = 128; // congestion must not mask quota decisions
  SO.MaxFuel = 200'000;
  SO.QuotaClock = [] { return (int64_t)0; };
  SO.TenantQuotas["hot"] = TenantQuota{/*RatePerSec=*/1, /*Burst=*/4};
  SO.TenantQuotas["victim"] =
      TenantQuota{/*RatePerSec=*/1, /*Burst=*/VictimLoad};
  Server S(SO);

  // Interleave 10 hot submissions around every victim one, so the skew
  // is temporal, not just aggregate.
  std::vector<std::pair<std::string, std::future<Reply>>> Pending;
  auto SubmitOne = [&](const std::string &Tenant, uint64_t Id) {
    Request R;
    R.Id = Id;
    R.Tenant = Tenant;
    R.Source = RepeatedSource;
    R.Ints["a"] = (int64_t)(Id % 50);
    R.Fuel = 1000;
    R.Lanes = 1;
    Pending.emplace_back(Tenant, S.submit(std::move(R)));
    ++Res.Submitted;
  };
  for (int V = 0; V < VictimLoad; ++V) {
    for (int H = 0; H < HotLoad / VictimLoad; ++H)
      SubmitOne("hot", (uint64_t)(V * 10 + H));
    SubmitOne("victim", (uint64_t)V);
  }

  for (auto &[Tenant, F] : Pending) {
    Reply Rep;
    if (!Col.get(F, "tenant-skew " + Tenant, Rep))
      continue;
    if (Tenant == "victim" && Rep.Out != Outcome::Served)
      Res.Failures.push_back(
          "tenant-skew: victim request " + std::to_string(Rep.Id) +
          " not served despite staying inside its quota envelope: " +
          outcomeName(Rep.Out) + " " + Rep.Error);
    if (Rep.Out == Outcome::Shed && Rep.RetryAfterMs <= 0)
      Res.Failures.push_back("tenant-skew: quota shed without a priced "
                             "retry hint (id " +
                             std::to_string(Rep.Id) + ")");
  }

  ServerStats St = S.stats();
  TenantStats Victim = St.Tenants["victim"];
  TenantStats Hot = St.Tenants["hot"];
  if (Victim.shed() != 0)
    Res.Failures.push_back(
        "tenant-skew: victim shed " + std::to_string(Victim.shed()) +
        " of its " + std::to_string(VictimLoad) +
        " in-quota requests (hot tenant leaked pressure across the "
        "isolation boundary)");
  if (Hot.Admitted != 4)
    Res.Failures.push_back("tenant-skew: hot tenant admitted " +
                           std::to_string(Hot.Admitted) +
                           " != its burst of 4 under a frozen clock");
  if (Hot.ShedAtAdmission != HotLoad - 4)
    Res.Failures.push_back(
        "tenant-skew: hot tenant shed " +
        std::to_string(Hot.ShedAtAdmission) + " of " +
        std::to_string(HotLoad) + "; expected exactly " +
        std::to_string(HotLoad - 4));
  if (St.QuotaSheds != HotLoad - 4)
    Res.Failures.push_back("tenant-skew: quota-shed counter " +
                           std::to_string(St.QuotaSheds) +
                           " != " + std::to_string(HotLoad - 4));
  checkAccounting("tenant-skew", S, Res);
}

/// Drives every quota dimension to refusal and checks each refusal's
/// pricing: rate and fuel buckets hint their refill time, demands above
/// bucket capacity refuse permanently with hint 0, and the in-flight
/// cap sheds with the server's floor hint.
void runQuotaExhaustionPhase(ServeCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 2;
  SO.QueueCapacity = 32;
  // MaxFuel stays 0 (fuel optional) so the *tenant's* fuel metering,
  // not the server-wide budget envelope, owns the fuel-less and
  // over-capacity refusals below.
  SO.QuotaClock = [] { return (int64_t)0; };
  // "fuelish": 10k fuel tokens, frozen - exactly ten 1000-fuel requests
  // fit. "narrow": one admitted-but-unresolved request at a time.
  SO.TenantQuotas["fuelish"] = [] {
    TenantQuota Q;
    Q.FuelPerSec = 10'000;
    return Q;
  }();
  SO.TenantQuotas["narrow"] = [] {
    TenantQuota Q;
    Q.MaxInFlight = 1;
    return Q;
  }();
  SO.Faults.WorkerStallMicros = 10'000; // hold in-flight slots open
  Server S(SO);

  auto MakeReq = [](const std::string &Tenant, uint64_t Id, int64_t Fuel) {
    Request R;
    R.Id = Id;
    R.Tenant = Tenant;
    R.Source = RepeatedSource;
    R.Ints["a"] = 5;
    R.Fuel = Fuel;
    R.Lanes = 1;
    return R;
  };

  // Fuel bucket: 12 requests of 1000 fuel against a frozen 10k bucket.
  std::vector<std::future<Reply>> FuelPending;
  for (int I = 0; I < 12; ++I) {
    FuelPending.push_back(S.submit(MakeReq("fuelish", (uint64_t)I, 1000)));
    ++Res.Submitted;
  }
  int64_t FuelSheds = 0;
  for (auto &F : FuelPending) {
    Reply Rep;
    if (!Col.get(F, "quota-exhaustion fuelish", Rep))
      continue;
    if (Rep.Out == Outcome::Shed) {
      ++FuelSheds;
      if (Rep.RetryAfterMs <= 0)
        Res.Failures.push_back("quota-exhaustion: fuel-bucket shed "
                               "without a refill-time hint");
    }
  }
  if (FuelSheds != 2)
    Res.Failures.push_back(
        "quota-exhaustion: " + std::to_string(FuelSheds) +
        " fuel sheds; a frozen 10k bucket admits exactly 10 of 12 "
        "1000-fuel requests");

  // Permanent refusals: a fuel-metered tenant rejects fuel-less
  // requests and demands beyond bucket capacity - no retry hint, ever.
  for (int64_t Fuel : {(int64_t)0, (int64_t)50'000}) {
    auto F = S.submit(MakeReq("fuelish", (uint64_t)(100 + Fuel), Fuel));
    ++Res.Submitted;
    Reply Rep;
    if (!Col.get(F, "quota-exhaustion permanent", Rep))
      continue;
    if (Rep.Out != Outcome::Shed)
      Res.Failures.push_back("quota-exhaustion: unservable fuel demand " +
                             std::to_string(Fuel) + " not shed");
    else if (Rep.RetryAfterMs != 0)
      Res.Failures.push_back(
          "quota-exhaustion: permanent refusal (fuel " +
          std::to_string(Fuel) +
          ") carries a retry hint; retrying is pointless");
  }

  // In-flight cap: a burst against MaxInFlight=1 with stalled workers
  // must shed at least one request (with the server's floor hint), and
  // releasing slots must let later requests through.
  std::vector<std::future<Reply>> NarrowPending;
  for (int I = 0; I < 6; ++I) {
    NarrowPending.push_back(
        S.submit(MakeReq("narrow", (uint64_t)(200 + I), 1000)));
    ++Res.Submitted;
  }
  int64_t NarrowSheds = 0, NarrowServed = 0;
  for (auto &F : NarrowPending) {
    Reply Rep;
    if (!Col.get(F, "quota-exhaustion narrow", Rep))
      continue;
    if (Rep.Out == Outcome::Shed) {
      ++NarrowSheds;
      if (Rep.RetryAfterMs <= 0)
        Res.Failures.push_back("quota-exhaustion: in-flight shed "
                               "without the floor retry hint");
    } else if (Rep.Out == Outcome::Served) {
      ++NarrowServed;
    }
  }
  if (NarrowSheds < 1)
    Res.Failures.push_back(
        "quota-exhaustion: burst against MaxInFlight=1 shed nothing");
  if (NarrowServed < 1)
    Res.Failures.push_back("quota-exhaustion: in-flight cap starved the "
                           "tenant outright (nothing served)");

  ServerStats St = S.stats();
  if (St.QuotaSheds != FuelSheds + 2 + NarrowSheds)
    Res.Failures.push_back(
        "quota-exhaustion: quota-shed counter " +
        std::to_string(St.QuotaSheds) + " != observed quota sheds " +
        std::to_string(FuelSheds + 2 + NarrowSheds));
  checkAccounting("quota-exhaustion", S, Res);
}

/// SIGTERM's contract, exercised in-process: drain under load with a
/// hard deadline too short for the stalled queue. Every admitted
/// request must still resolve - executing ones finish, queued ones shed
/// with the structured draining status - post-drain submissions shed
/// immediately, and the accounting still conserves per tenant.
void runDrainPhase(ServeCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 16;
  SO.MaxFuel = 200'000;
  SO.Faults.WorkerStallMicros = 30'000; // 12 queued => ~360ms of work
  Server S(SO);

  auto MakeReq = [](const std::string &Tenant, uint64_t Id) {
    Request R;
    R.Id = Id;
    R.Tenant = Tenant;
    R.Source = RepeatedSource;
    R.Ints["a"] = 9;
    R.Fuel = 1000;
    R.Lanes = 1;
    return R;
  };

  std::vector<std::future<Reply>> Pending;
  for (int I = 0; I < 12; ++I) {
    Pending.push_back(
        S.submit(MakeReq(I % 2 ? "odd" : "even", (uint64_t)I)));
    ++Res.Submitted;
  }

  S.beginDrain();
  if (!S.draining())
    Res.Failures.push_back("drain: beginDrain() did not close admission");

  // Late arrivals: shed immediately with the draining status.
  for (int I = 0; I < 3; ++I) {
    auto F = S.submit(MakeReq("late", (uint64_t)(100 + I)));
    ++Res.Submitted;
    Reply Rep;
    if (!Col.get(F, "drain late-arrival", Rep))
      continue;
    if (Rep.Out != Outcome::Shed || !Rep.Draining)
      Res.Failures.push_back(
          "drain: post-drain submission not shed with the draining "
          "status (got " + std::string(outcomeName(Rep.Out)) + ")");
  }

  // The deadline is far below the ~360ms the stalled queue needs, so
  // the sweep must fire; drain() still waits for executing requests.
  bool Clean = S.drain(/*HardDeadlineMs=*/40);
  if (Clean)
    Res.Failures.push_back("drain: reported a clean drain although the "
                           "deadline could not cover the queue");
  if (S.inFlight() != 0)
    Res.Failures.push_back("drain: returned with " +
                           std::to_string(S.inFlight()) +
                           " requests still unresolved");

  int64_t DrainSheds = 0;
  for (auto &F : Pending) {
    Reply Rep;
    if (!Col.get(F, "drain admitted", Rep))
      continue;
    if (Rep.Out == Outcome::Shed) {
      ++DrainSheds;
      if (!Rep.Draining)
        Res.Failures.push_back("drain: deadline-swept request " +
                               std::to_string(Rep.Id) +
                               " shed without the draining status");
    } else if (Rep.Out != Outcome::Served) {
      Res.Failures.push_back(
          std::string("drain: unexpected outcome ") +
          outcomeName(Rep.Out) + " for admitted request " +
          std::to_string(Rep.Id));
    }
  }
  if (DrainSheds < 1)
    Res.Failures.push_back("drain: the deadline sweep shed nothing "
                           "despite a 40ms bound on ~360ms of work");

  ServerStats St = S.stats();
  if (St.DrainSheds != DrainSheds + 3)
    Res.Failures.push_back("drain: drain-shed counter " +
                           std::to_string(St.DrainSheds) +
                           " != observed draining sheds " +
                           std::to_string(DrainSheds + 3));
  checkAccounting("drain", S, Res);

  // Control: with a generous deadline and no late arrivals the drain
  // is clean - nothing swept, everything served.
  ServerOptions SO2;
  SO2.Workers = 2;
  SO2.MaxFuel = 200'000;
  Server S2(SO2);
  std::vector<std::future<Reply>> P2;
  for (int I = 0; I < 4; ++I) {
    P2.push_back(S2.submit(MakeReq("calm", (uint64_t)I)));
    ++Res.Submitted;
  }
  if (!S2.drain(/*HardDeadlineMs=*/10'000))
    Res.Failures.push_back(
        "drain: unloaded server did not drain cleanly in 10s");
  for (auto &F : P2) {
    Reply Rep;
    if (Col.get(F, "drain clean", Rep) && Rep.Out != Outcome::Served)
      Res.Failures.push_back(
          std::string("drain: clean drain lost a request to ") +
          outcomeName(Rep.Out));
  }
  checkAccounting("drain-clean", S2, Res);
}

/// Cache byte-pressure: every compiled program pretends to cost 3000
/// bytes (FaultPlan::InflateCostBytes) against an 8192-byte global
/// budget and a 3000-byte per-tenant cap. (Mid-flight eviction is
/// deliberately NOT stacked on: it empties the cache before byte
/// pressure can build; the eviction phase owns that fault.) Outcomes
/// must not change; only the cache counters may move.
void runCachePressurePhase(const ServeCampaignOptions &Opts,
                           ServeCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 2;
  SO.QueueCapacity = 32;
  SO.MaxFuel = 200'000;
  SO.CacheCapacity = 8;
  SO.CacheMaxBytes = 8192;       // room for two inflated programs
  SO.CacheTenantMaxBytes = 3000; // one inflated program per tenant
  SO.Faults.InflateCostBytes = 3000;
  Server S(SO);

  const int N = 12;
  std::vector<std::pair<uint64_t, std::future<Reply>>> Pending;
  for (int I = 0; I < N; ++I) {
    uint64_t Seed = Opts.BaseSeed + 1000 + (uint64_t)I;
    Request R = makeRequest(Seed, Category::GeneratedValid, SO.MaxFuel);
    R.Id = (uint64_t)I;
    R.Tenant = I % 2 ? "cacheA" : "cacheB";
    Pending.emplace_back(Seed, S.submit(std::move(R)));
    ++Res.Submitted;
  }
  for (auto &[Seed, F] : Pending) {
    Reply Rep;
    if (!Col.get(F, "cache-pressure", Rep))
      continue;
    checkMixedReply(Category::GeneratedValid, Seed, Rep, Res);
  }

  ServerStats St = S.stats();
  if (St.CacheByteEvictions + St.CacheTenantEvictions < 1)
    Res.Failures.push_back("cache-pressure: distinct inflated programs "
                           "forced no budget evictions (probe dead?)");
  if (St.CacheBytesResident > (int64_t)SO.CacheMaxBytes)
    Res.Failures.push_back(
        "cache-pressure: " + std::to_string(St.CacheBytesResident) +
        " bytes resident exceeds the " +
        std::to_string(SO.CacheMaxBytes) + "-byte budget");
  checkAccounting("cache-pressure", S, Res);
}

} // namespace

ServeCampaignResult
fuzz::runServeCampaign(const ServeCampaignOptions &Opts) {
  ServeCampaignResult Res;
  Collector Col{Res, Opts.HangTimeoutSec};
  runMixedPhase(Opts, Res, Col);
  runSaturationPhase(Res, Col);
  runBreakerPhase(Res, Col);
  runEvictionPhase(Opts, Res, Col);
  runTenantSkewPhase(Res, Col);
  runQuotaExhaustionPhase(Res, Col);
  runDrainPhase(Res, Col);
  runCachePressurePhase(Opts, Res, Col);
  // Global zero-loss check across all phases: every submission landed
  // in exactly one bucket.
  if (Res.Served + Res.Trapped + Res.Shed + Res.CompileErrors !=
      Res.Submitted)
    Res.Failures.push_back(
        "campaign: replies collected (" +
        std::to_string(Res.Served + Res.Trapped + Res.Shed +
                       Res.CompileErrors) +
        ") != requests submitted (" + std::to_string(Res.Submitted) +
        ")");
  return Res;
}
