//===- fuzz/Corpus.cpp - Replayable corpus files ---------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include "frontend/Parser.h"
#include "ir/Printer.h"

#include <cmath>
#include <limits>

using namespace simdflat;
using namespace simdflat::fuzz;
using json::Value;

namespace {

const char *verdictName(ExpectedVerdict V) {
  switch (V) {
  case ExpectedVerdict::Any:
    return "any";
  case ExpectedVerdict::Complete:
    return "complete";
  case ExpectedVerdict::Trap:
    return "trap";
  }
  return "any";
}

} // namespace

Value fuzz::renderCase(const FuzzCase &C) {
  Value Doc = Value::object();
  Doc.set("format", CorpusFormat);
  Doc.set("name", C.Name);
  Doc.set("seed", static_cast<int64_t>(C.Seed));
  Doc.set("expect", verdictName(C.Expect));
  if (C.Expect == ExpectedVerdict::Trap)
    Doc.set("expectTrapKind", C.ExpectTrapKind);
  Doc.set("source", ir::printProgram(C.Prog));

  Value Ints = Value::object();
  for (const auto &[Name, V] : C.Ints)
    Ints.set(Name, V);
  Doc.set("ints", std::move(Ints));

  Value IntArrays = Value::object();
  for (const auto &[Name, Arr] : C.IntArrays) {
    Value A = Value::array();
    for (int64_t V : Arr)
      A.push(V);
    IntArrays.set(Name, std::move(A));
  }
  Doc.set("intArrays", std::move(IntArrays));

  Value RealArrays = Value::object();
  for (const auto &[Name, Arr] : C.RealArrays) {
    Value A = Value::array();
    for (double V : Arr)
      A.push(V); // NaN serializes as null (see formatDouble)
    RealArrays.set(Name, std::move(A));
  }
  Doc.set("realArrays", std::move(RealArrays));

  Doc.set("fuel", C.Fuel);
  Doc.set("deadlineNs", C.DeadlineNs);
  Doc.set("externTrapArg", C.ExternTrapArg);
  Doc.set("minOne", C.MinOne);
  return Doc;
}

Expected<FuzzCase, CorpusError> fuzz::parseCase(const Value &Doc) {
  auto Fail = [](std::string Msg) -> Expected<FuzzCase, CorpusError> {
    return CorpusError{std::move(Msg)};
  };
  if (!Doc.isObject())
    return Fail("corpus document is not an object");
  const Value *Format = Doc.get("format");
  if (!Format || !Format->isString() ||
      Format->asString() != CorpusFormat)
    return Fail("unknown corpus format (want " +
                std::string(CorpusFormat) + ")");
  const Value *Source = Doc.get("source");
  if (!Source || !Source->isString())
    return Fail("corpus case has no program source");

  frontend::ParseResult PR = frontend::parseProgram(Source->asString());
  if (!PR.ok())
    return Fail("corpus program does not parse: " +
                PR.Diags.renderAll());

  FuzzCase C(std::move(*PR.Prog));
  if (const Value *N = Doc.get("name"); N && N->isString())
    C.Name = N->asString();
  if (const Value *S = Doc.get("seed"); S && S->isInt())
    C.Seed = static_cast<uint64_t>(S->asInt());
  if (const Value *E = Doc.get("expect"); E && E->isString()) {
    if (E->asString() == "complete")
      C.Expect = ExpectedVerdict::Complete;
    else if (E->asString() == "trap")
      C.Expect = ExpectedVerdict::Trap;
    else if (E->asString() == "any")
      C.Expect = ExpectedVerdict::Any;
    else
      return Fail("unknown expect verdict '" + E->asString() + "'");
  }
  if (const Value *K = Doc.get("expectTrapKind"); K && K->isString())
    C.ExpectTrapKind = K->asString();

  if (const Value *Ints = Doc.get("ints")) {
    for (const auto &[Name, V] : Ints->members()) {
      if (!V.isInt())
        return Fail("ints." + Name + " is not an integer");
      C.Ints[Name] = V.asInt();
    }
  }
  if (const Value *Arrs = Doc.get("intArrays")) {
    for (const auto &[Name, A] : Arrs->members()) {
      if (!A.isArray())
        return Fail("intArrays." + Name + " is not an array");
      std::vector<int64_t> Vals;
      for (size_t I = 0; I < A.size(); ++I) {
        if (!A.at(I).isInt())
          return Fail("intArrays." + Name + " has a non-integer entry");
        Vals.push_back(A.at(I).asInt());
      }
      C.IntArrays[Name] = std::move(Vals);
    }
  }
  if (const Value *Arrs = Doc.get("realArrays")) {
    for (const auto &[Name, A] : Arrs->members()) {
      if (!A.isArray())
        return Fail("realArrays." + Name + " is not an array");
      std::vector<double> Vals;
      for (size_t I = 0; I < A.size(); ++I) {
        const Value &E = A.at(I);
        if (E.isNull()) // the writer's NaN convention
          Vals.push_back(std::numeric_limits<double>::quiet_NaN());
        else if (E.isNumber())
          Vals.push_back(E.asDouble());
        else
          return Fail("realArrays." + Name + " has a non-number entry");
      }
      C.RealArrays[Name] = std::move(Vals);
    }
  }
  if (const Value *F = Doc.get("fuel"); F && F->isInt())
    C.Fuel = F->asInt();
  if (const Value *D = Doc.get("deadlineNs"); D && D->isInt())
    C.DeadlineNs = D->asInt();
  if (const Value *T = Doc.get("externTrapArg"); T && T->isInt())
    C.ExternTrapArg = T->asInt();
  if (const Value *M = Doc.get("minOne"); M && M->isBool())
    C.MinOne = M->asBool();
  return C;
}

bool fuzz::writeCase(const FuzzCase &C, const std::string &Path) {
  return json::writeFile(Path, renderCase(C));
}

Expected<FuzzCase, CorpusError> fuzz::readCase(const std::string &Path) {
  Expected<Value, json::JsonError> Doc = json::parseFile(Path);
  if (!Doc)
    return CorpusError{Path + ": " + Doc.error().render()};
  Expected<FuzzCase, CorpusError> C = parseCase(*Doc);
  if (!C)
    return CorpusError{Path + ": " + C.error().Message};
  return C;
}
