//===- fuzz/Shrinker.cpp - Greedy divergence minimizer ---------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Shrinker.h"

#include "frontend/GotoRecovery.h"
#include "ir/Walk.h"

#include <utility>
#include <vector>

using namespace simdflat;
using namespace simdflat::fuzz;
using namespace simdflat::ir;

namespace {

/// Hard cap on candidate evaluations, far above what the small
/// generated programs need; a backstop against pathological inputs.
constexpr int MaxSteps = 4000;

/// Pre-order (Body, index) slots of every statement, recursing into
/// nested bodies. Recollected per candidate - positions shift after
/// each kept mutation.
void collectStmtSlots(Body &B,
                      std::vector<std::pair<Body *, size_t>> &Out) {
  for (size_t I = 0; I < B.size(); ++I) {
    Out.push_back({&B, I});
    Stmt *S = B[I].get();
    if (auto *D = dyn_cast<DoStmt>(S))
      collectStmtSlots(D->body(), Out);
    else if (auto *W = dyn_cast<WhileStmt>(S))
      collectStmtSlots(W->body(), Out);
    else if (auto *R = dyn_cast<RepeatStmt>(S))
      collectStmtSlots(R->body(), Out);
    else if (auto *F = dyn_cast<ForallStmt>(S))
      collectStmtSlots(F->body(), Out);
    else if (auto *If = dyn_cast<IfStmt>(S)) {
      collectStmtSlots(If->thenBody(), Out);
      collectStmtSlots(If->elseBody(), Out);
    } else if (auto *Wh = dyn_cast<WhereStmt>(S)) {
      collectStmtSlots(Wh->thenBody(), Out);
      collectStmtSlots(Wh->elseBody(), Out);
    }
  }
}

void collectIntLitSlotsInExpr(ExprPtr &E,
                              std::vector<ExprPtr *> &Out) {
  if (!E)
    return;
  if (isa<IntLit>(E.get())) {
    Out.push_back(&E);
    return;
  }
  if (auto *U = dyn_cast<UnaryExpr>(E.get()))
    collectIntLitSlotsInExpr(U->operandPtr(), Out);
  else if (auto *Bi = dyn_cast<BinaryExpr>(E.get())) {
    collectIntLitSlotsInExpr(Bi->lhsPtr(), Out);
    collectIntLitSlotsInExpr(Bi->rhsPtr(), Out);
  } else if (auto *In = dyn_cast<IntrinsicExpr>(E.get()))
    for (ExprPtr &A : In->args())
      collectIntLitSlotsInExpr(A, Out);
  else if (auto *C = dyn_cast<CallExpr>(E.get()))
    for (ExprPtr &A : C->args())
      collectIntLitSlotsInExpr(A, Out);
  else if (auto *A = dyn_cast<ArrayRef>(E.get()))
    for (ExprPtr &I : A->indices())
      collectIntLitSlotsInExpr(I, Out);
}

/// ExprPtr slots holding an integer literal, in program order.
void collectIntLitSlots(Body &B, std::vector<ExprPtr *> &Out) {
  for (StmtPtr &SP : B) {
    Stmt *S = SP.get();
    if (auto *A = dyn_cast<AssignStmt>(S)) {
      collectIntLitSlotsInExpr(A->targetPtr(), Out);
      collectIntLitSlotsInExpr(A->valuePtr(), Out);
    } else if (auto *If = dyn_cast<IfStmt>(S)) {
      collectIntLitSlotsInExpr(If->condPtr(), Out);
      collectIntLitSlots(If->thenBody(), Out);
      collectIntLitSlots(If->elseBody(), Out);
    } else if (auto *Wh = dyn_cast<WhereStmt>(S)) {
      collectIntLitSlotsInExpr(Wh->condPtr(), Out);
      collectIntLitSlots(Wh->thenBody(), Out);
      collectIntLitSlots(Wh->elseBody(), Out);
    } else if (auto *D = dyn_cast<DoStmt>(S)) {
      collectIntLitSlotsInExpr(D->loPtr(), Out);
      collectIntLitSlotsInExpr(D->hiPtr(), Out);
      collectIntLitSlotsInExpr(D->stepPtr(), Out);
      collectIntLitSlots(D->body(), Out);
    } else if (auto *W = dyn_cast<WhileStmt>(S)) {
      collectIntLitSlotsInExpr(W->condPtr(), Out);
      collectIntLitSlots(W->body(), Out);
    } else if (auto *R = dyn_cast<RepeatStmt>(S)) {
      collectIntLitSlots(R->body(), Out);
      collectIntLitSlotsInExpr(R->untilCondPtr(), Out);
    } else if (auto *F = dyn_cast<ForallStmt>(S)) {
      collectIntLitSlotsInExpr(F->loPtr(), Out);
      collectIntLitSlotsInExpr(F->hiPtr(), Out);
      collectIntLitSlotsInExpr(F->maskPtr(), Out);
      collectIntLitSlots(F->body(), Out);
    } else if (auto *C = dyn_cast<CallStmt>(S)) {
      for (ExprPtr &A : C->args())
        collectIntLitSlotsInExpr(A, Out);
    } else if (auto *G = dyn_cast<GotoStmt>(S)) {
      collectIntLitSlotsInExpr(G->condPtr(), Out);
    }
  }
}

/// A candidate must stay inside the pipeline's contract: after GOTO
/// recovery no unstructured label/goto may remain (simdize asserts on
/// them), which deleting half of a label/goto cycle would cause.
bool isStructurallySafe(const FuzzCase &C) {
  ir::Program P = cloneProgram(C.Prog);
  frontend::recoverGotoLoops(P);
  bool Unstructured = false;
  forEachStmt(P.body(), [&](const Stmt &S) {
    if (isa<GotoStmt>(&S) || isa<LabelStmt>(&S))
      Unstructured = true;
  });
  return !Unstructured;
}

struct Shrinker {
  const OracleOptions &Opts;
  int Steps = 0;

  bool diverges(const FuzzCase &C) {
    ++Steps;
    return isStructurallySafe(C) && runOracle(C, Opts).Diverged;
  }

  /// One pass of statement deletions; returns true if any was kept.
  bool deletePass(FuzzCase &Cur) {
    bool Any = false;
    for (size_t K = 0;; ++K) {
      if (Steps >= MaxSteps)
        return Any;
      FuzzCase Cand = cloneCase(Cur);
      std::vector<std::pair<Body *, size_t>> Slots;
      collectStmtSlots(Cand.Prog.body(), Slots);
      if (K >= Slots.size())
        return Any;
      Slots[K].first->erase(Slots[K].first->begin() +
                            static_cast<ptrdiff_t>(Slots[K].second));
      if (Cand.Prog.body().empty() || !diverges(Cand))
        continue;
      Cur = std::move(Cand);
      Any = true;
      --K; // the slot list shifted; retry the same position
    }
  }

  /// One pass of loop unwrapping (loop -> its body).
  bool unwrapPass(FuzzCase &Cur) {
    bool Any = false;
    for (size_t K = 0;; ++K) {
      if (Steps >= MaxSteps)
        return Any;
      FuzzCase Cand = cloneCase(Cur);
      std::vector<std::pair<Body *, size_t>> Slots;
      collectStmtSlots(Cand.Prog.body(), Slots);
      if (K >= Slots.size())
        return Any;
      auto [B, I] = Slots[K];
      Stmt *S = (*B)[I].get();
      Body Inner;
      if (auto *D = dyn_cast<DoStmt>(S))
        Inner = std::move(D->body());
      else if (auto *W = dyn_cast<WhileStmt>(S))
        Inner = std::move(W->body());
      else if (auto *R = dyn_cast<RepeatStmt>(S))
        Inner = std::move(R->body());
      else if (auto *If = dyn_cast<IfStmt>(S))
        Inner = std::move(If->thenBody());
      else
        continue;
      B->erase(B->begin() + static_cast<ptrdiff_t>(I));
      for (size_t J = 0; J < Inner.size(); ++J)
        B->insert(B->begin() + static_cast<ptrdiff_t>(I + J),
                  std::move(Inner[J]));
      if (!diverges(Cand))
        continue;
      Cur = std::move(Cand);
      Any = true;
    }
  }

  /// One pass of literal and input reduction.
  bool reducePass(FuzzCase &Cur) {
    bool Any = false;
    // Integer literals: try 0, then halving toward 0.
    for (size_t K = 0;; ++K) {
      if (Steps >= MaxSteps)
        return Any;
      std::vector<ExprPtr *> Probe;
      collectIntLitSlots(Cur.Prog.body(), Probe);
      if (K >= Probe.size())
        break;
      int64_t V = cast<IntLit>(Probe[K]->get())->value();
      for (int64_t Next : {int64_t{0}, V / 2}) {
        if (Next == V || Steps >= MaxSteps)
          continue;
        FuzzCase Cand = cloneCase(Cur);
        std::vector<ExprPtr *> Slots;
        collectIntLitSlots(Cand.Prog.body(), Slots);
        *Slots[K] = std::make_unique<IntLit>(Next);
        if (!diverges(Cand))
          continue;
        Cur = std::move(Cand);
        Any = true;
        break;
      }
    }
    // Runtime inputs: scalars halve toward 1, array entries toward 0.
    for (auto &[Name, V] : Cur.Ints) {
      while (V > 1 && Steps < MaxSteps) {
        FuzzCase Cand = cloneCase(Cur);
        Cand.Ints[Name] = V / 2;
        if (!diverges(Cand))
          break;
        V = V / 2;
        Any = true;
      }
    }
    for (auto &[Name, Arr] : Cur.IntArrays) {
      for (size_t I = 0; I < Arr.size(); ++I) {
        if (Arr[I] == 0 || Steps >= MaxSteps)
          continue;
        FuzzCase Cand = cloneCase(Cur);
        Cand.IntArrays[Name][I] = 0;
        if (!diverges(Cand))
          continue;
        Arr[I] = 0;
        Any = true;
      }
    }
    return Any;
  }
};

} // namespace

ShrinkResult fuzz::shrinkCase(const FuzzCase &C, const OracleOptions &Opts) {
  ShrinkResult Res(cloneCase(C));
  Shrinker S{Opts};
  if (!S.diverges(Res.Case)) {
    Res.StepsTried = S.Steps;
    return Res;
  }
  for (int Round = 0; Round < 50; ++Round) {
    bool Any = false;
    Any |= S.deletePass(Res.Case);
    Any |= S.unwrapPass(Res.Case);
    Any |= S.reducePass(Res.Case);
    if (Any)
      ++Res.Reductions;
    if (!Any || S.Steps >= MaxSteps)
      break;
  }
  Res.StepsTried = S.Steps;
  Res.Case.Name = C.Name + "-min";
  return Res;
}
