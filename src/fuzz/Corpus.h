//===- fuzz/Corpus.h - Replayable corpus files -----------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of FuzzCases to the `flattenfuzz-case-v1` JSON format
/// checked into tests/fuzz/corpus/. A corpus file carries a replay
/// header (format tag, case name, originating seed, the expected scalar
/// verdict) plus everything needed to re-run the case: the program in
/// the printer's concrete syntax (re-parsed by the front end on load,
/// so print->parse round-tripping is exercised on every replay), the
/// runtime inputs, and the fault-injection knobs. Real inputs may be
/// NaN; JSON has no NaN literal, so entries use `null` (matching the
/// telemetry writer's convention) and load back as quiet NaN.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_FUZZ_CORPUS_H
#define SIMDFLAT_FUZZ_CORPUS_H

#include "fuzz/Case.h"
#include "support/Json.h"

#include <string>

namespace simdflat {
namespace fuzz {

/// Format tag of corpus files this build reads and writes.
inline constexpr const char *CorpusFormat = "flattenfuzz-case-v1";

/// A malformed or unreadable corpus file.
struct CorpusError {
  std::string Message;
  std::string render() const { return Message; }
};

/// Renders \p C as a corpus JSON document.
json::Value renderCase(const FuzzCase &C);

/// Reconstructs a case from a corpus document.
Expected<FuzzCase, CorpusError> parseCase(const json::Value &Doc);

/// Writes \p C to \p Path; false on IO failure.
bool writeCase(const FuzzCase &C, const std::string &Path);

/// Loads a corpus file.
Expected<FuzzCase, CorpusError> readCase(const std::string &Path);

} // namespace fuzz
} // namespace simdflat

#endif // SIMDFLAT_FUZZ_CORPUS_H
