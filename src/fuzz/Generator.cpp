//===- fuzz/Generator.cpp - Seeded IR loop-nest generator ------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"

#include "ir/Builder.h"
#include "support/Random.h"

using namespace simdflat;
using namespace simdflat::fuzz;
using namespace simdflat::ir;

namespace {

/// Declared extents are fixed so the shrinker can lower the runtime K
/// without redeclaring arrays.
constexpr int64_t KDim = 8;
constexpr int64_t MaxL = 6;

/// The five inner-loop forms of the paper's Fig. 8 family plus the
/// Sec. 6 GOTO cycle.
enum class LoopForm { DoStep1, DoStep2, While, Repeat, Goto };

} // namespace

FuzzCase fuzz::generateCase(uint64_t Seed, const GeneratorOptions &Opts) {
  Rng R(Seed);

  // --- Shape draws (all before IR construction, so adding a new shape
  // knob below an existing one keeps earlier draws stable). ---
  int64_t K = Opts.ForceMinOneTrips ? R.uniformInt(3, KDim)
                                    : R.uniformInt(1, KDim);
  LoopForm Form = Opts.ForceGuardSideEffect
                      ? LoopForm::While
                      : static_cast<LoopForm>(R.uniformInt(0, 4));
  bool HasX = Opts.ForceMinOneTrips || R.chance(0.85);
  bool HasA = R.chance(0.6);
  bool HasDiv = HasX && R.chance(0.35);
  bool HasProbe = HasX && (Opts.ForceExtern || R.chance(0.25));
  bool HasNote = R.chance(0.25);
  bool HasReal = Opts.ForceReal || R.chance(0.25);
  bool HasIf = R.chance(0.4);
  bool HasElse = HasIf && R.chance(0.5);
  bool HasTick = Form == LoopForm::While &&
                 (Opts.ForceGuardSideEffect || R.chance(0.3));
  bool UsesS = R.chance(0.5);
  bool WritesC = UsesS && R.chance(0.7);
  if (!HasX && !HasA && !HasReal)
    HasA = true; // never an empty body

  // --- Runtime inputs. ---
  int64_t TripLo = Opts.ForceMinOneTrips ? 1
                   : Opts.AllowDegenerateTrips ? -2
                                               : 0;
  std::vector<int64_t> L, D;
  for (int64_t I = 0; I < KDim; ++I) {
    L.push_back(R.uniformInt(TripLo, 5));
    D.push_back(R.uniformInt(1, 4));
  }
  // Arm at most ONE fault source per case: when several independent
  // faults exist, which one fires first is schedule-dependent (a scalar
  // sweep and a lockstep lane step reach them in different orders), so
  // trap-kind equality is only a meaningful oracle for single-fault
  // programs.
  bool ArmDiv = HasDiv && Opts.AllowTrappyDiv && R.chance(0.2);
  if (ArmDiv)
    D[static_cast<size_t>(R.uniformInt(0, K - 1))] = 0;
  if (!ArmDiv && HasX && Opts.AllowTrappyBounds && R.chance(0.15))
    L[static_cast<size_t>(R.uniformInt(0, K - 1))] =
        MaxL + 1 + R.uniformInt(0, 1);
  std::vector<double> W;
  for (int64_t I = 0; I < KDim; ++I)
    W.push_back(0.25 * static_cast<double>(R.uniformInt(2, 8)));

  // --- Declarations. ---
  Program P("fuzz" + std::to_string(Seed));
  P.addVar("K", ScalarKind::Int);
  P.addVar("L", ScalarKind::Int, {KDim}, Dist::Distributed);
  P.addVar("D", ScalarKind::Int, {KDim}, Dist::Distributed);
  P.addVar("X", ScalarKind::Int, {KDim, MaxL}, Dist::Distributed);
  P.addVar("A", ScalarKind::Int, {KDim}, Dist::Distributed);
  P.addVar("C", ScalarKind::Int, {KDim}, Dist::Distributed);
  if (HasReal) {
    P.addVar("R", ScalarKind::Real, {KDim}, Dist::Distributed);
    P.addVar("W", ScalarKind::Real, {KDim}, Dist::Distributed);
  }
  P.addVar("i", ScalarKind::Int);
  P.addVar("j", ScalarKind::Int);
  if (UsesS)
    P.addVar("s", ScalarKind::Int);
  if (HasProbe)
    P.addExtern(ProbeFn, ScalarKind::Int, /*Pure=*/false);
  if (HasTick)
    P.addExtern(TickFn, ScalarKind::Int, /*Pure=*/false);
  if (HasNote)
    P.addExtern(NoteSub, ScalarKind::Int, /*Pure=*/false,
                /*IsSubroutine=*/true);
  Builder B(P);

  // --- Inner body. ---
  // Step-2 loops run j over 1,3,..,2*L(i)-1, so the X column index is
  // compressed to (j+1)/2; every other form subscripts by j directly.
  auto XCol = [&]() -> ExprPtr {
    if (Form == LoopForm::DoStep2)
      return B.div(B.add(B.var("j"), B.lit(1)), B.lit(2));
    return B.var("j");
  };
  Body Inner;
  if (HasX) {
    ExprPtr Val = B.add(B.mul(B.var("i"), B.lit(10)), B.var("j"));
    if (HasDiv)
      Val = B.add(std::move(Val), B.div(B.var("j"), B.at("D", B.var("i"))));
    if (HasProbe) {
      std::vector<ExprPtr> Args;
      Args.push_back(B.var("j"));
      Val = B.add(std::move(Val), B.callFn(ProbeFn, std::move(Args)));
    }
    Inner.push_back(B.assign(B.at("X", B.var("i"), XCol()), std::move(Val)));
  }
  if (HasA)
    Inner.push_back(B.assign(B.at("A", B.var("i")),
                             B.add(B.at("A", B.var("i")), B.var("j"))));
  if (HasReal)
    Inner.push_back(B.assign(
        B.at("R", B.var("i")),
        B.add(B.at("R", B.var("i")),
              B.mul(B.at("W", B.var("i")), B.var("j")))));
  if (HasIf) {
    Body Else;
    if (HasElse)
      Else.push_back(B.assign(B.at("A", B.var("i")),
                              B.sub(B.at("A", B.var("i")), B.lit(1))));
    Body Wrapped;
    Wrapped.push_back(B.ifStmt(
        B.eq(B.mod(B.add(B.var("i"), B.var("j")), B.lit(2)), B.lit(0)),
        std::move(Inner), std::move(Else)));
    Inner = std::move(Wrapped);
  }
  if (HasNote) {
    // A *guarded* side-effecting extern: the call only happens on some
    // iterations, so caching/reordering bugs change the call log.
    std::vector<ExprPtr> Args;
    Args.push_back(B.add(B.mul(B.var("i"), B.lit(100)), B.var("j")));
    Body CallB;
    CallB.push_back(B.callSub(NoteSub, std::move(Args)));
    Inner.push_back(B.ifStmt(
        B.eq(B.mod(B.var("j"), B.lit(3)), B.lit(1)), std::move(CallB)));
  }

  // --- Inner loop. ---
  Body Pre;
  if (UsesS)
    Pre.push_back(B.set("s", B.add(B.at("L", B.var("i")), B.lit(2))));
  StmtPtr InnerLoop;
  switch (Form) {
  case LoopForm::DoStep1:
    InnerLoop =
        B.doLoop("j", B.lit(1), B.at("L", B.var("i")), std::move(Inner));
    break;
  case LoopForm::DoStep2:
    InnerLoop = B.doLoop("j", B.lit(1),
                         B.mul(B.at("L", B.var("i")), B.lit(2)),
                         std::move(Inner), B.lit(2));
    break;
  case LoopForm::While: {
    Pre.push_back(B.set("j", B.lit(1)));
    Body WB = std::move(Inner);
    WB.push_back(B.set("j", B.add(B.var("j"), B.lit(1))));
    ExprPtr Bound = B.at("L", B.var("i"));
    if (HasTick) {
      // Side effect in the guard itself: Tick logs its argument and
      // returns 0, so the bound is unchanged but every guard
      // evaluation is observable (Fig. 9's motivating case).
      std::vector<ExprPtr> Args;
      Args.push_back(B.var("j"));
      Bound = B.add(std::move(Bound), B.callFn(TickFn, std::move(Args)));
    }
    InnerLoop =
        B.whileLoop(B.le(B.var("j"), std::move(Bound)), std::move(WB));
    break;
  }
  case LoopForm::Repeat: {
    Pre.push_back(B.set("j", B.lit(1)));
    Body RB = std::move(Inner);
    RB.push_back(B.set("j", B.add(B.var("j"), B.lit(1))));
    InnerLoop = B.repeatUntil(std::move(RB),
                              B.gt(B.var("j"), B.at("L", B.var("i"))));
    break;
  }
  case LoopForm::Goto: {
    // The dusty-deck post-test cycle GotoRecovery structures into a
    // REPEAT; the scalar reference executes the raw GOTO directly, so
    // this form differentially pins the recovery itself.
    Pre.push_back(B.set("j", B.lit(1)));
    Pre.push_back(B.label(10));
    Body &Flat = Pre;
    for (StmtPtr &S : Inner)
      Flat.push_back(std::move(S));
    Flat.push_back(B.set("j", B.add(B.var("j"), B.lit(1))));
    Flat.push_back(
        B.gotoStmt(10, B.le(B.var("j"), B.at("L", B.var("i")))));
    break;
  }
  }

  Body Outer = std::move(Pre);
  if (InnerLoop)
    Outer.push_back(std::move(InnerLoop));
  if (WritesC)
    Outer.push_back(B.assign(B.at("C", B.var("i")), B.var("s")));

  P.body().push_back(B.doLoop("i", B.lit(1), B.var("K"), std::move(Outer),
                              nullptr, /*IsParallel=*/true));

  // Post-test forms run the body at least once even on degenerate rows;
  // for counted/pre-test forms MinOne is a property of the inputs.
  bool TripsAllPositive = true;
  for (int64_t I = 0; I < K; ++I)
    TripsAllPositive = TripsAllPositive && L[static_cast<size_t>(I)] >= 1;

  FuzzCase Out(std::move(P));
  Out.Name = "fuzz" + std::to_string(Seed);
  Out.Seed = Seed;
  Out.Ints["K"] = K;
  Out.IntArrays["L"] = std::move(L);
  Out.IntArrays["D"] = std::move(D);
  if (HasReal)
    Out.RealArrays["W"] = std::move(W);
  Out.MinOne = TripsAllPositive;
  return Out;
}
