//===- fuzz/Shrinker.h - Greedy divergence minimizer -----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy test-case minimizer: given a FuzzCase on which the oracle
/// diverges, repeatedly tries structure-shrinking mutations - deleting
/// a statement subtree, replacing a loop by its body, zeroing/halving
/// integer literals, and shrinking the runtime inputs - keeping a
/// mutation only if the oracle still diverges on the mutated case.
/// Candidates that would leave unstructured control flow behind (a GOTO
/// whose label was deleted) are rejected up front, so the shrinker
/// never feeds the pipeline a program outside its contract.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_FUZZ_SHRINKER_H
#define SIMDFLAT_FUZZ_SHRINKER_H

#include "fuzz/Case.h"
#include "fuzz/Oracle.h"

namespace simdflat {
namespace fuzz {

/// Outcome of a shrink run.
struct ShrinkResult {
  FuzzCase Case;
  /// Mutations that were kept.
  int Reductions = 0;
  /// Candidate oracle runs spent.
  int StepsTried = 0;

  explicit ShrinkResult(FuzzCase C) : Case(std::move(C)) {}
};

/// Minimizes \p C, re-checking runOracle(., Opts) after every candidate
/// mutation. If \p C does not diverge under \p Opts it is returned
/// unchanged. Deterministic: mutations are enumerated in program order.
ShrinkResult shrinkCase(const FuzzCase &C, const OracleOptions &Opts);

} // namespace fuzz
} // namespace simdflat

#endif // SIMDFLAT_FUZZ_SHRINKER_H
