//===- fuzz/Generator.h - Seeded IR loop-nest generator --------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, deterministic generator of well-formed-by-construction F77
/// loop nests for differential fuzzing. Every program has the paper's
/// DOALL-over-irregular-inner-loop shape, but the generator varies
/// everything the Fig. 8/9 rewrites must normalize: the inner loop form
/// (DO with step 1 or 2, WHILE, REPEAT, GOTO cycle), trip counts
/// (including zero and negative rows), guarded side-effecting extern
/// calls, side effects in the loop *guard* itself (the Fig. 9 cache
/// case), real-valued accumulations, and div/index expressions that can
/// trap at runtime. A generated program that traps is a valid fuzzing
/// outcome: the oracle treats the trap as a verdict every executor must
/// reproduce, not as a generator bug.
///
/// Determinism: all draws come from support/Random's splitmix64 Rng, so
/// a seed reproduces the same case bit-for-bit on every platform; no
/// wall-clock or global state is consulted.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_FUZZ_GENERATOR_H
#define SIMDFLAT_FUZZ_GENERATOR_H

#include "fuzz/Case.h"

namespace simdflat {
namespace fuzz {

/// Knobs restricting what the generator may emit. The defaults produce
/// the widest program family; the fault campaign narrows them so an
/// injected fault is guaranteed to fire.
struct GeneratorOptions {
  /// Allow a divisor row of 0 (a DivByZero trap when the division
  /// statement is present).
  bool AllowTrappyDiv = true;
  /// Allow a trip-count row beyond the X extent (an OutOfBounds trap).
  bool AllowTrappyBounds = true;
  /// Allow zero and negative trip-count rows.
  bool AllowDegenerateTrips = true;
  /// Force every row to at least one trip (fault campaigns need the
  /// injected fault to actually execute).
  bool ForceMinOneTrips = false;
  /// Always include the impure Probe extern in the inner body.
  bool ForceExtern = false;
  /// Always include the real-valued accumulation (NaN campaigns poison
  /// its input array).
  bool ForceReal = false;
  /// Always use the WHILE form with the side-effecting Tick() call in
  /// the guard - the exact Fig. 9 case the guard-intro cache exists
  /// for. Used to demonstrate that the oracle catches a broken cache.
  bool ForceGuardSideEffect = false;
};

/// Generates the case for \p Seed under \p Opts.
FuzzCase generateCase(uint64_t Seed, const GeneratorOptions &Opts = {});

/// Names of the extern hooks generated programs may call. Bindings are
/// built by makeFuzzRegistry (Oracle.h).
inline constexpr const char *ProbeFn = "Probe";  ///< impure int function
inline constexpr const char *TickFn = "Tick";    ///< impure guard probe
inline constexpr const char *NoteSub = "Note";   ///< impure subroutine

} // namespace fuzz
} // namespace simdflat

#endif // SIMDFLAT_FUZZ_GENERATOR_H
