//===- fuzz/AdaptiveCampaign.h - Adaptive-strategy fault campaign -*- C++ -*-//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Campaign against the profile-guided adaptive serving layer: stream
/// deterministic traffic whose trip distribution shifts mid-stream at
/// an Adaptive serve::Server and assert the adaptivity contract end to
/// end:
///
///  * semantics first: every served reply's result array is bit-exact
///    against the closed-form answer, across every strategy the layer
///    flips through (probe, decided, respecialized);
///  * the feedback loop works: shifting the distribution re-decides the
///    strategy (Respecializations advances) and a stable distribution
///    does not thrash;
///  * replies are honestly tagged: adaptive traffic never reports the
///    "static" strategy, fallback traffic reports nothing else;
///  * chaos does not break it: mid-flight eviction, cache byte
///    pressure, and a poisoned primary pipeline (breaker + fallback)
///    leave the conservation law served + trapped + shed +
///    compile-errors == submitted intact, globally and per tenant, and
///    the byte budget is never exceeded;
///  * the fallback path never feeds the profile: a breaker-open spell
///    records zero decisions.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_FUZZ_ADAPTIVECAMPAIGN_H
#define SIMDFLAT_FUZZ_ADAPTIVECAMPAIGN_H

#include <cstdint>
#include <string>
#include <vector>

namespace simdflat {
namespace fuzz {

struct AdaptiveCampaignOptions {
  /// Seeds the deterministic trip-shape schedule (uniform value, hot-row
  /// position and height vary with it).
  uint64_t BaseSeed = 1;
  /// Requests per distribution regime in the drift phase.
  int Count = 24;
  /// Reply wait bound; exceeding it is reported as a hang.
  int64_t HangTimeoutSec = 120;
};

struct AdaptiveCampaignResult {
  int64_t Submitted = 0;
  int64_t Served = 0;
  int64_t Trapped = 0;
  int64_t Shed = 0;
  int64_t CompileErrors = 0;
  /// Strategy decisions and respecializations observed across phases.
  int64_t Decisions = 0;
  int64_t Respecializations = 0;
  /// Distinct strategy tags seen on served replies (drift phase).
  std::vector<std::string> StrategiesSeen;
  /// One entry per violated expectation.
  std::vector<std::string> Failures;

  bool ok() const { return Failures.empty(); }
};

/// Runs all phases: distribution drift (uniform -> skewed -> uniform),
/// adaptivity under cache chaos (mid-flight eviction + byte pressure),
/// and the poisoned-primary fallback spell.
AdaptiveCampaignResult
runAdaptiveCampaign(const AdaptiveCampaignOptions &Opts = {});

} // namespace fuzz
} // namespace simdflat

#endif // SIMDFLAT_FUZZ_ADAPTIVECAMPAIGN_H
