//===- fuzz/Oracle.h - Cross-executor differential oracle ------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle behind flattenfuzz: one FuzzCase is executed
/// by the scalar reference and then by every interesting (stage,
/// executor) variant - the scalar engine on the goto-recovered,
/// normalized, guard-introduced, simplified and coalesced trees, the
/// MIMD executor on the original tree, and the SIMD machine on the raw
/// simdized tree plus the full pipeline output (flattened, flattened
/// with the explicit Fig. 8/9 rewrites, and unflattened). Every variant
/// must match the reference on the observables the paper's equivalence
/// argument covers: final array stores (bitwise for reals, so NaN
/// poisoning is pinned too), work-step body counts, the extern-call
/// log, and - when the program faults - the structured Trap kind. A
/// trap is a verdict to reproduce, not a failure.
///
/// Comparison rules (see DESIGN.md Sec. 10 for the rationale):
///  * Trap runs compare kind only; the committed store prefix is
///    schedule-dependent and deliberately not compared.
///  * Scalar-engine variants preserve execution order, so their extern
///    logs must match the reference exactly, entry by entry.
///  * MIMD/SIMD variants legitimately reorder lanes/processors, so
///    their logs are compared as multisets - and guard probes (Tick)
///    are excluded, because a lockstep WHILE ANY() loop evaluates its
///    guard speculatively on lanes that already finished.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_FUZZ_ORACLE_H
#define SIMDFLAT_FUZZ_ORACLE_H

#include "fuzz/Case.h"
#include "interp/Extern.h"
#include "interp/RunStats.h"
#include "interp/Trap.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace simdflat {
namespace fuzz {

/// Oracle configuration.
struct OracleOptions {
  int64_t MimdProcs = 3;
  int64_t SimdGran = 4;
  /// Seeded bug switch: after guard introduction, re-evaluate each
  /// cached guard test a second time per iteration - exactly what a
  /// GuardIntro without the Fig. 9 side-effect cache would do. The
  /// oracle must catch this through the extern log whenever the guard
  /// has a side effect (GeneratorOptions::ForceGuardSideEffect).
  bool BreakGuardSideEffectCache = false;
  /// Also run every variant under Engine::Native (JIT-compiled host
  /// loops) and hold it to the same exact-equality bar, plus bitwise
  /// trip-histogram identity against the bytecode engine. Off by
  /// default: each distinct program shape costs one host-compiler
  /// invocation, so callers bound the case count (the codegen-smoke CI
  /// leg and the quad-engine ctest). A build without a toolchain
  /// degrades Native to bytecode, which still must pass - the flag is
  /// always safe to set.
  bool Native = false;
};

/// What one (stage, executor) variant observed.
struct VariantOutcome {
  /// "scalar/original", "scalar/guard-intro", "mimd/original",
  /// "simd/flatten", ...
  std::string Variant;
  /// The stage declined this program shape (e.g. coalesce on a
  /// non-perfect nest); nothing was executed.
  bool Skipped = false;
  std::string SkipReason;
  /// Set when execution trapped; the observables below are then empty.
  std::optional<interp::Trap> T;
  /// Final contents of every array declared in the *original* program.
  std::map<std::string, std::vector<int64_t>> IntArrays;
  std::map<std::string, std::vector<double>> RealArrays;
  /// Extern-call log, e.g. "Note(104)"; execution order.
  std::vector<std::string> ExternLog;
  /// Work-statement executions: scalar/MIMD count executions, SIMD
  /// counts active lanes over work steps - the same quantity.
  int64_t BodyCount = 0;
  /// Full interpreter counters (MIMD: summed over processors); used by
  /// the tree-vs-bytecode twin comparison, which demands exact equality
  /// down to the charged cycle count.
  interp::RunStats Stats;
};

/// Result of one differential run.
struct OracleResult {
  bool Diverged = false;
  /// One line per divergent variant; empty when !Diverged.
  std::vector<std::string> Failures;
  /// All variant outcomes, reference ("scalar/original") first.
  std::vector<VariantOutcome> Variants;

  const VariantOutcome &reference() const { return Variants.front(); }
  std::string report() const;
};

/// Bindings for the generator's Probe/Tick/Note hooks. Calls append
/// "Name(arg)" to \p Log; Probe throws ExternError when its argument
/// equals \p ExternTrapArg (the fault campaign's hostile extern).
interp::ExternRegistry makeFuzzRegistry(std::vector<std::string> &Log,
                                        int64_t ExternTrapArg = -1);

/// Runs every variant of \p C and compares against the scalar
/// reference. Never aborts on a trapping program.
///
/// Every variant executes three times - tree-walk engine, bytecode
/// engine, host-SIMD backend - four with OracleOptions::Native, which
/// adds the JIT'd native tier. Each lowered engine must agree with
/// the tree *exactly*: same stores (bitwise), same body count, same
/// extern log entry by entry, same trap kind/lanes/location/detail,
/// same RunStats down to the charged cycle count; the lowered engines
/// must additionally agree among themselves on trip histograms
/// bitwise. A mismatch is reported as a failure for variant
/// "<name> [engine <eng>]"; Variants keeps the bytecode outcome.
OracleResult runOracle(const FuzzCase &C, const OracleOptions &Opts = {});

} // namespace fuzz
} // namespace simdflat

#endif // SIMDFLAT_FUZZ_ORACLE_H
