//===- fuzz/AdaptiveCampaign.cpp - Adaptive-strategy campaign --*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/AdaptiveCampaign.h"

#include "serve/Server.h"

#include <algorithm>
#include <chrono>
#include <sstream>

using namespace simdflat;
using namespace simdflat::fuzz;
using namespace simdflat::serve;

namespace {

/// The profiled program of every phase: a DOALL over K=8 rows whose
/// inner trips come from the L array. X is wide enough for the tallest
/// hot row the schedule generates.
constexpr const char *NestSource = "PROGRAM WIDE\n"
                                   "INTEGER K\n"
                                   "DISTRIBUTED INTEGER L(8)\n"
                                   "DISTRIBUTED INTEGER X(8, 64)\n"
                                   "INTEGER i\n"
                                   "INTEGER j\n"
                                   "BEGIN\n"
                                   "  DOALL i = 1, K\n"
                                   "    DO j = 1, L(i)\n"
                                   "      X(i, j) = i * j\n"
                                   "    ENDDO\n"
                                   "  ENDDO\n"
                                   "END\n";
constexpr int64_t NumRows = 8;

/// All rows run 3..6 trips: the unflattened schedule is already
/// balanced, so the model keeps it.
std::vector<int64_t> uniformTrips(uint64_t Seed) {
  return std::vector<int64_t>(NumRows, 3 + (int64_t)(Seed % 4));
}

/// One hot row of 40..55 trips against seven 1-trip rows: lanes idle
/// behind the hot one, so the balanced coalesced schedule wins.
std::vector<int64_t> skewedTrips(uint64_t Seed) {
  std::vector<int64_t> T(NumRows, 1);
  T[Seed % NumRows] = 40 + (int64_t)(Seed % 16);
  return T;
}

/// Closed form for the served X array: X(i,j) = i*j for j <= L(i), so
/// the total is sum_i i * L_i(L_i+1)/2.
int64_t expectedSum(const std::vector<int64_t> &Trips) {
  int64_t Sum = 0;
  for (int64_t I = 0; I < NumRows; ++I) {
    int64_t L = Trips[(size_t)I];
    Sum += (I + 1) * (L * (L + 1) / 2);
  }
  return Sum;
}

Request nestRequest(uint64_t Id, const std::string &Tenant,
                    const std::vector<int64_t> &Trips) {
  Request R;
  R.Id = Id;
  R.Tenant = Tenant;
  R.Source = NestSource;
  R.Ints["K"] = NumRows;
  R.IntArrays["L"] = Trips;
  R.Lanes = 4;
  R.Fuel = 200'000;
  R.WantArrays = true;
  return R;
}

struct Collector {
  AdaptiveCampaignResult &Res;
  int64_t HangTimeoutSec;

  bool get(std::future<Reply> &F, const std::string &What, Reply &Out) {
    if (F.wait_for(std::chrono::seconds(HangTimeoutSec)) !=
        std::future_status::ready) {
      Res.Failures.push_back(What + ": reply not ready after " +
                             std::to_string(HangTimeoutSec) + "s (hang)");
      return false;
    }
    Out = F.get();
    switch (Out.Out) {
    case Outcome::Served:
      ++Res.Served;
      break;
    case Outcome::Trapped:
      ++Res.Trapped;
      break;
    case Outcome::Shed:
      ++Res.Shed;
      break;
    case Outcome::CompileError:
      ++Res.CompileErrors;
      break;
    }
    return true;
  }
};

/// Served, and bit-exact: the semantic floor under every strategy flip.
void checkServedExact(const char *Phase, const Reply &Rep,
                      const std::vector<int64_t> &Trips,
                      AdaptiveCampaignResult &Res) {
  auto Fail = [&](const std::string &What) {
    std::ostringstream OS;
    OS << Phase << ": id " << Rep.Id << ": " << What
       << " [outcome: " << outcomeName(Rep.Out)
       << ", strategy: " << Rep.Tele.Strategy
       << (Rep.Error.empty() ? "" : ", " + Rep.Error) << "]";
    Res.Failures.push_back(OS.str());
  };
  if (Rep.Out != Outcome::Served) {
    Fail("valid nest request not served");
    return;
  }
  auto It = Rep.IntArrays.find("X");
  if (It == Rep.IntArrays.end()) {
    Fail("served reply missing the X result array");
    return;
  }
  int64_t Sum = 0;
  for (int64_t V : It->second)
    Sum += V;
  int64_t Want = expectedSum(Trips);
  if (Sum != Want)
    Fail("result sum " + std::to_string(Sum) +
         " != closed form " + std::to_string(Want) +
         " (a strategy flip changed semantics)");
}

void checkAccounting(const char *Phase, const Server &S,
                     AdaptiveCampaignResult &Res) {
  ServerStats St = S.stats();
  if (!St.consistent() || !St.tenantsConsistent()) {
    std::ostringstream OS;
    OS << Phase << ": accounting broken: " << St.Served << " served + "
       << St.Trapped << " trapped + " << St.Shed << " shed + "
       << St.CompileErrors << " compile-errors != " << St.Submitted
       << " submitted (or a tenant ledger diverged)";
    Res.Failures.push_back(OS.str());
  }
}

void noteStrategy(const Reply &Rep, AdaptiveCampaignResult &Res) {
  if (std::find(Res.StrategiesSeen.begin(), Res.StrategiesSeen.end(),
                Rep.Tele.Strategy) == Res.StrategiesSeen.end())
    Res.StrategiesSeen.push_back(Rep.Tele.Strategy);
}

/// Distribution drift: uniform -> skewed -> uniform. The layer must
/// decide, respecialize on the shift, flip back, and never lose
/// exactness or tag a reply "static".
void runDriftPhase(const AdaptiveCampaignOptions &Opts,
                   AdaptiveCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 1; // deterministic profile accumulation order
  SO.QueueCapacity = 128;
  SO.Adaptive = true;
  SO.AdaptiveMinSamples = 4;
  SO.AdaptiveProbeEvery = 2;
  Server S(SO);

  uint64_t Id = 0;
  auto RunRegime = [&](const char *Name, bool Skewed) {
    for (int I = 0; I < Opts.Count; ++I) {
      uint64_t Seed = Opts.BaseSeed + (uint64_t)I;
      std::vector<int64_t> Trips =
          Skewed ? skewedTrips(Seed) : uniformTrips(Seed);
      auto F = S.submit(nestRequest(++Id, "drift", Trips));
      ++Res.Submitted;
      Reply Rep;
      // Sequential: each reply lands before the next request routes, so
      // the probe cadence and decision points are reproducible.
      if (!Col.get(F, std::string("drift ") + Name, Rep))
        continue;
      checkServedExact("drift", Rep, Trips, Res);
      noteStrategy(Rep, Res);
      if (Rep.Tele.Strategy == "static")
        Res.Failures.push_back(
            "drift: adaptive reply " + std::to_string(Rep.Id) +
            " tagged 'static' (the layer went dark)");
    }
  };
  RunRegime("uniform", false);
  RunRegime("skewed", true);
  RunRegime("uniform-again", false);

  ServerStats St = S.stats();
  Res.Decisions += St.AdaptiveDecisions;
  Res.Respecializations += St.Respecializations;
  if (St.AdaptiveDecisions < 2)
    Res.Failures.push_back(
        "drift: only " + std::to_string(St.AdaptiveDecisions) +
        " decision(s) across three regimes; the shift went unnoticed");
  if (St.Respecializations < 1)
    Res.Failures.push_back(
        "drift: distribution shift triggered no respecialization");
  if (Res.StrategiesSeen.size() < 2)
    Res.Failures.push_back(
        "drift: every reply used the same strategy; the model never "
        "changed its mind");
  checkAccounting("drift", S, Res);
}

/// The drift schedule under cache chaos: mid-flight eviction plus an
/// inflated byte budget too small for every variant at once. Outcomes
/// and exactness must hold; only cache counters may move.
void runChaosPhase(const AdaptiveCampaignOptions &Opts,
                   AdaptiveCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 2;
  SO.QueueCapacity = 128;
  SO.Adaptive = true;
  SO.AdaptiveMinSamples = 4;
  SO.AdaptiveProbeEvery = 2;
  SO.CacheCapacity = 2;
  SO.CacheMaxBytes = 3000;
  SO.Faults.InflateCostBytes = 1500;
  SO.Faults.EvictMidFlight = true;
  Server S(SO);

  std::vector<std::pair<std::vector<int64_t>, std::future<Reply>>> Pending;
  for (int I = 0; I < 3 * Opts.Count; ++I) {
    uint64_t Seed = Opts.BaseSeed + (uint64_t)I;
    std::vector<int64_t> Trips =
        I % 2 ? skewedTrips(Seed) : uniformTrips(Seed);
    auto F = S.submit(
        nestRequest((uint64_t)I, I % 2 ? "chaosA" : "chaosB", Trips));
    ++Res.Submitted;
    Pending.emplace_back(std::move(Trips), std::move(F));
  }
  for (auto &[Trips, F] : Pending) {
    Reply Rep;
    if (Col.get(F, "chaos", Rep))
      checkServedExact("chaos", Rep, Trips, Res);
  }

  ServerStats St = S.stats();
  Res.Decisions += St.AdaptiveDecisions;
  Res.Respecializations += St.Respecializations;
  if (St.AdaptiveDecisions < 1)
    Res.Failures.push_back(
        "chaos: eviction pressure starved the profile; no decision "
        "ever fired");
  if (St.CacheBytesResident > (int64_t)SO.CacheMaxBytes)
    Res.Failures.push_back(
        "chaos: " + std::to_string(St.CacheBytesResident) +
        " bytes resident exceeds the " +
        std::to_string(SO.CacheMaxBytes) + "-byte budget");
  if (St.CacheEvictions + St.CacheByteEvictions < 1)
    Res.Failures.push_back(
        "chaos: the fault plan evicted nothing (probe dead?)");
  checkAccounting("chaos", S, Res);
}

/// Poisoned primary: every compile attempt fails, so everything serves
/// through the fallback. Fallback replies must be tagged "static" at
/// epoch 0, stay exact, and feed the profile nothing - a breaker-open
/// spell must not register as drift.
void runFallbackPhase(const AdaptiveCampaignOptions &Opts,
                      AdaptiveCampaignResult &Res, Collector &Col) {
  ServerOptions SO;
  SO.Workers = 1;
  SO.QueueCapacity = 64;
  SO.Adaptive = true;
  SO.AdaptiveMinSamples = 2;
  SO.Faults.CompileFailures = 1'000'000;
  SO.CompileRetries = 0;
  Server S(SO);

  const int N = 8;
  for (int I = 0; I < N; ++I) {
    std::vector<int64_t> Trips = uniformTrips(Opts.BaseSeed + (uint64_t)I);
    auto F = S.submit(nestRequest((uint64_t)I, "poisoned", Trips));
    ++Res.Submitted;
    Reply Rep;
    if (!Col.get(F, "fallback", Rep))
      continue;
    checkServedExact("fallback", Rep, Trips, Res);
    if (Rep.Out != Outcome::Served)
      continue;
    if (!Rep.Tele.Fallback)
      Res.Failures.push_back(
          "fallback: request " + std::to_string(Rep.Id) +
          " claims the primary compiled despite total injection");
    if (Rep.Tele.Strategy != "static" || Rep.Tele.StrategyEpoch != 0)
      Res.Failures.push_back(
          "fallback: request " + std::to_string(Rep.Id) +
          " tagged " + Rep.Tele.Strategy + "/" +
          std::to_string(Rep.Tele.StrategyEpoch) +
          "; fallback serves the static build at epoch 0");
  }

  ServerStats St = S.stats();
  if (St.AdaptiveDecisions != 0)
    Res.Failures.push_back(
        "fallback: " + std::to_string(St.AdaptiveDecisions) +
        " decision(s) from fallback-only traffic; the fallback path "
        "must not feed the profile");
  checkAccounting("fallback", S, Res);
}

} // namespace

AdaptiveCampaignResult
fuzz::runAdaptiveCampaign(const AdaptiveCampaignOptions &Opts) {
  AdaptiveCampaignResult Res;
  Collector Col{Res, Opts.HangTimeoutSec};
  runDriftPhase(Opts, Res, Col);
  runChaosPhase(Opts, Res, Col);
  runFallbackPhase(Opts, Res, Col);
  if (Res.Served + Res.Trapped + Res.Shed + Res.CompileErrors !=
      Res.Submitted)
    Res.Failures.push_back(
        "campaign: replies collected (" +
        std::to_string(Res.Served + Res.Trapped + Res.Shed +
                       Res.CompileErrors) +
        ") != requests submitted (" + std::to_string(Res.Submitted) +
        ")");
  return Res;
}
