//===- fuzz/Case.h - One fuzzing test case ---------------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FuzzCase bundles everything one differential run needs: the F77
/// program, its runtime inputs, and the fault-injection knobs. Cases
/// come from the generator (Generator.h), from the shrinker
/// (Shrinker.h) or from a corpus replay file (Corpus.h) - the oracle
/// does not care which.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_FUZZ_CASE_H
#define SIMDFLAT_FUZZ_CASE_H

#include "ir/Program.h"
#include "ir/Walk.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace simdflat {
namespace fuzz {

/// What the scalar reference is expected to do when a case is replayed
/// from the corpus. `Any` records no expectation (fresh cases).
enum class ExpectedVerdict { Any, Complete, Trap };

/// One self-contained differential test case.
struct FuzzCase {
  ir::Program Prog;
  std::string Name;
  uint64_t Seed = 0;

  /// \name Runtime inputs, seeded into every executor's store.
  /// @{
  std::map<std::string, int64_t> Ints;
  std::map<std::string, std::vector<int64_t>> IntArrays;
  /// Real inputs; entries may be NaN (the NaN-poisoning campaign).
  std::map<std::string, std::vector<double>> RealArrays;
  /// @}

  /// \name Fault-injection knobs.
  /// @{
  /// Watchdog fuel for every executor (0 = unlimited).
  int64_t Fuel = 0;
  /// Wall-clock deadline for every executor, nanoseconds after run
  /// start (-1 = none). Differential cases use 0 - already expired at
  /// entry - so every engine traps at the first deterministic deadline
  /// poll instead of at a schedule-dependent instant.
  int64_t DeadlineNs = -1;
  /// Probe(arg) throws ExternError when arg equals this (-1 = never).
  int64_t ExternTrapArg = -1;
  /// @}

  /// True when every inner trip count is >= 1 (forwarded to the
  /// pipeline as AssumeInnerMinOneTrip).
  bool MinOne = false;

  /// Corpus replay expectation for the scalar reference.
  ExpectedVerdict Expect = ExpectedVerdict::Any;
  /// Expected trap kind name (trapKindName form) when Expect == Trap.
  std::string ExpectTrapKind;

  explicit FuzzCase(ir::Program P) : Prog(std::move(P)) {}
  FuzzCase(FuzzCase &&) = default;
  FuzzCase &operator=(FuzzCase &&) = default;
};

/// Deep copy (Program is move-only, so FuzzCase is too).
inline FuzzCase cloneCase(const FuzzCase &C) {
  FuzzCase Out(ir::cloneProgram(C.Prog));
  Out.Name = C.Name;
  Out.Seed = C.Seed;
  Out.Ints = C.Ints;
  Out.IntArrays = C.IntArrays;
  Out.RealArrays = C.RealArrays;
  Out.Fuel = C.Fuel;
  Out.DeadlineNs = C.DeadlineNs;
  Out.ExternTrapArg = C.ExternTrapArg;
  Out.MinOne = C.MinOne;
  Out.Expect = C.Expect;
  Out.ExpectTrapKind = C.ExpectTrapKind;
  return Out;
}

} // namespace fuzz
} // namespace simdflat

#endif // SIMDFLAT_FUZZ_CASE_H
