//===- fuzz/ServeCampaign.h - Serving-core fault campaign ------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-layer counterpart of the executor fault campaign: hammer
/// an in-process serve::Server with a deterministic mix of valid,
/// hostile and over-budget requests - under injected compile failures,
/// mid-flight cache eviction, worker stalls, and queue saturation at
/// twice the admission capacity - and assert the robustness contract:
///
///  * zero crashes or hangs: every submitted request resolves to a
///    structured reply within the campaign's generous timeout;
///  * exact accounting: served + trapped + shed + compile-errors ==
///    submitted, phase by phase;
///  * each request category lands in its allowed outcome set (a valid
///    program is never a CompileError, a hostile one never Served, an
///    over-budget one always Shed with no retry hint, ...);
///  * degraded modes work: an always-failing primary pipeline still
///    serves every request through the fallback and trips the breaker,
///    and eviction under execution never invalidates a running program;
///  * tenancy holds under chaos: a tenant offering 10x load sheds only
///    its own overage while the victim tenant stays inside its quota
///    envelope (frozen virtual-time clock, so the skew phase is exactly
///    reproducible); quota exhaustion prices refusals correctly
///    (refill-time hints, permanent refusals with no hint); per-tenant
///    accounting conserves - admitted = served + trapped + shed +
///    compile-errors for every tenant in every phase;
///  * lifecycle holds under chaos: drain-under-load resolves every
///    already-admitted request (finished or shed with the structured
///    draining status) and cache byte-pressure (inflated program costs
///    against a tight byte budget, plus mid-flight eviction) never
///    changes outcomes, only cache counters.
///
/// Request programs come from the differential fuzzer's generator, so
/// the campaign sweeps the same program family the oracle does.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_FUZZ_SERVECAMPAIGN_H
#define SIMDFLAT_FUZZ_SERVECAMPAIGN_H

#include <cstdint>
#include <string>
#include <vector>

namespace simdflat {
namespace fuzz {

struct ServeCampaignOptions {
  uint64_t BaseSeed = 1;
  /// Requests in the mixed-traffic phase (categories cycle with the
  /// seed).
  int Count = 48;
  /// Reply wait bound; exceeding it is reported as a hang, not waited
  /// out forever.
  int64_t HangTimeoutSec = 120;
};

struct ServeCampaignResult {
  /// Requests submitted across all phases.
  int64_t Submitted = 0;
  int64_t Served = 0;
  int64_t Trapped = 0;
  int64_t Shed = 0;
  int64_t CompileErrors = 0;
  /// One entry per violated expectation.
  std::vector<std::string> Failures;

  bool ok() const { return Failures.empty(); }
};

/// Runs all phases: mixed traffic, queue saturation (2x capacity),
/// always-failing primary compile (breaker + fallback), eviction under
/// execution, tenant skew (10x hot tenant vs quota-protected victim),
/// quota exhaustion (rate/fuel/in-flight refusal pricing), drain under
/// load, and cache byte-pressure.
ServeCampaignResult runServeCampaign(const ServeCampaignOptions &Opts = {});

} // namespace fuzz
} // namespace simdflat

#endif // SIMDFLAT_FUZZ_SERVECAMPAIGN_H
