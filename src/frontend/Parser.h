//===- frontend/Parser.h - Mini-Fortran parser -----------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser and semantic checker for the pseudo-Fortran
/// concrete syntax:
///
/// \code
///   PROGRAM name
///   EXTERN [IMPURE] REAL FUNCTION Force
///   EXTERN [IMPURE] SUBROUTINE Dump
///   INTEGER K
///   DISTRIBUTED INTEGER L(8)
///   REPLICATED INTEGER i
///   BEGIN
///     <statements>
///   END
/// \endcode
///
/// Statements cover every loop form of Sec. 4/6: DO/DOALL, WHILE,
/// REPEAT/UNTIL, FORALL, IF/WHERE, CALL, labels and (conditional)
/// GOTOs. Semantic checks: declared symbols, array ranks, index and
/// operand types, call targets. Errors are collected (with source
/// locations) and parsing continues at the next statement.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_FRONTEND_PARSER_H
#define SIMDFLAT_FRONTEND_PARSER_H

#include "frontend/Diagnostics.h"
#include "ir/Program.h"

#include <optional>
#include <string>

namespace simdflat {
namespace frontend {

/// Outcome of parsing: the program (present even with recoverable
/// errors, for tooling) plus diagnostics. Warnings alone do not make
/// the parse fail.
struct ParseResult {
  std::optional<ir::Program> Prog;
  Diagnostics Diags;

  bool ok() const { return Prog.has_value() && !Diags.hasErrors(); }
};

/// Parses a full `PROGRAM ... BEGIN ... END` unit.
ParseResult parseProgram(const std::string &Source);

} // namespace frontend
} // namespace simdflat

#endif // SIMDFLAT_FRONTEND_PARSER_H
