//===- frontend/Lexer.h - Mini-Fortran tokenizer ---------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the pseudo-Fortran concrete syntax (exactly what
/// ir::printProgram emits, so print -> parse round-trips). Keywords are
/// case-insensitive; newlines are statement separators and are reported
/// as tokens; `!` starts a comment.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_FRONTEND_LEXER_H
#define SIMDFLAT_FRONTEND_LEXER_H

#include "frontend/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace simdflat {
namespace frontend {

/// Token kinds. Keywords carry their spelling in Text (uppercased).
enum class TokKind {
  Eof,
  Newline,
  Identifier, ///< includes keywords; see isKeyword()
  IntLiteral,
  RealLiteral,
  LParen,
  RParen,
  Comma,
  Colon,
  Assign, ///< =
  Eq,     ///< ==
  Ne,     ///< /=
  Lt,
  Le,
  Gt,
  Ge,
  Plus,
  Minus,
  Star,
  Slash,
  DotAnd, ///< .AND.
  DotOr,  ///< .OR.
  DotNot, ///< .NOT.
  DotTrue,
  DotFalse,
};

/// One token.
struct Token {
  TokKind Kind = TokKind::Eof;
  /// Identifier/keyword spelling (identifiers keep their case; keyword
  /// comparison uses the uppercased form).
  std::string Text;
  int64_t IntValue = 0;
  double RealValue = 0.0;
  SourceLoc Loc;

  /// True if this is an identifier whose uppercased spelling is \p KW.
  bool isKeyword(const char *KW) const;
};

/// Tokenizes \p Source; lexical errors go to \p Diags (the bad character
/// is skipped).
std::vector<Token> tokenize(const std::string &Source, Diagnostics &Diags);

} // namespace frontend
} // namespace simdflat

#endif // SIMDFLAT_FRONTEND_LEXER_H
