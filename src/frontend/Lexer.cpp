//===- frontend/Lexer.cpp -------------------------------------*- C++ -*-===//

#include "frontend/Lexer.h"

#include "support/Format.h"

#include <cctype>
#include <cstdlib>

using namespace simdflat;
using namespace simdflat::frontend;

std::string Diagnostic::render() const {
  std::string Out;
  if (Loc.Line != 0)
    Out = formatf("line %d, col %d: ", Loc.Line, Loc.Col);
  if (Sev == Severity::Warning)
    Out += "warning: ";
  Out += Message;
  return Out;
}

std::string Diagnostics::renderAll() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.render();
    Out += '\n';
  }
  return Out;
}

bool Token::isKeyword(const char *KW) const {
  if (Kind != TokKind::Identifier)
    return false;
  size_t I = 0;
  for (; KW[I] != '\0'; ++I) {
    if (I >= Text.size() ||
        std::toupper(static_cast<unsigned char>(Text[I])) != KW[I])
      return false;
  }
  return I == Text.size();
}

namespace {

class LexerImpl {
public:
  LexerImpl(const std::string &Source, Diagnostics &Diags)
      : Src(Source), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Out;
    while (true) {
      Token T = next();
      bool IsEof = T.Kind == TokKind::Eof;
      // Collapse duplicate newlines.
      if (T.Kind == TokKind::Newline && !Out.empty() &&
          Out.back().Kind == TokKind::Newline)
        continue;
      Out.push_back(std::move(T));
      if (IsEof)
        return Out;
    }
  }

private:
  const std::string &Src;
  Diagnostics &Diags;
  size_t Pos = 0;
  int Line = 1, Col = 1;

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }

  char bump() {
    char C = peek();
    ++Pos;
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  SourceLoc here() const { return {Line, Col}; }

  Token make(TokKind K) {
    Token T;
    T.Kind = K;
    T.Loc = here();
    return T;
  }

  /// Matches a dot-keyword like .AND. starting at the current '.'.
  bool tryDotWord(const char *Word, TokKind K, Token &Out) {
    size_t Len = 0;
    while (Word[Len] != '\0')
      ++Len;
    if (peek() != '.')
      return false;
    for (size_t I = 0; I < Len; ++I)
      if (std::toupper(static_cast<unsigned char>(peek(1 + I))) != Word[I])
        return false;
    if (peek(1 + Len) != '.')
      return false;
    Out = make(K);
    for (size_t I = 0; I < Len + 2; ++I)
      bump();
    return true;
  }

  Token next() {
    // Skip spaces, tabs and comments.
    while (true) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r') {
        bump();
        continue;
      }
      if (C == '!') {
        while (peek() != '\n' && peek() != '\0')
          bump();
        continue;
      }
      break;
    }

    char C = peek();
    if (C == '\0')
      return make(TokKind::Eof);
    if (C == '\n') {
      Token T = make(TokKind::Newline);
      bump();
      return T;
    }

    // Dot keywords and dot-leading reals (.5).
    if (C == '.') {
      Token T;
      if (tryDotWord("AND", TokKind::DotAnd, T) ||
          tryDotWord("OR", TokKind::DotOr, T) ||
          tryDotWord("NOT", TokKind::DotNot, T) ||
          tryDotWord("TRUE", TokKind::DotTrue, T) ||
          tryDotWord("FALSE", TokKind::DotFalse, T))
        return T;
      if (std::isdigit(static_cast<unsigned char>(peek(1))))
        return lexNumber();
      Token Bad = make(TokKind::Eof);
      Diags.error(here(), "stray '.' in input");
      bump();
      return next();
      (void)Bad;
    }

    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber();

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      Token T = make(TokKind::Identifier);
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_')
        T.Text += bump();
      return T;
    }

    switch (C) {
    case '(':
      bump();
      return make(TokKind::LParen);
    case ')':
      bump();
      return make(TokKind::RParen);
    case ',':
      bump();
      return make(TokKind::Comma);
    case ':':
      bump();
      return make(TokKind::Colon);
    case '+':
      bump();
      return make(TokKind::Plus);
    case '-':
      bump();
      return make(TokKind::Minus);
    case '*':
      bump();
      return make(TokKind::Star);
    case '=':
      bump();
      if (peek() == '=') {
        bump();
        return make(TokKind::Eq);
      }
      return make(TokKind::Assign);
    case '/':
      bump();
      if (peek() == '=') {
        bump();
        return make(TokKind::Ne);
      }
      return make(TokKind::Slash);
    case '<':
      bump();
      if (peek() == '=') {
        bump();
        return make(TokKind::Le);
      }
      return make(TokKind::Lt);
    case '>':
      bump();
      if (peek() == '=') {
        bump();
        return make(TokKind::Ge);
      }
      return make(TokKind::Gt);
    default:
      Diags.error(here(), formatf("unexpected character '%c'", C));
      bump();
      return next();
    }
  }

  Token lexNumber() {
    Token T = make(TokKind::IntLiteral);
    std::string Digits;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits += bump();
    bool IsReal = false;
    // A '.' starts a fraction only if not a dot-keyword (e.g. `4.AND.`
    // cannot occur in our grammar, but `1.5` and `2.` can).
    if (peek() == '.' &&
        !std::isalpha(static_cast<unsigned char>(peek(1)))) {
      IsReal = true;
      Digits += bump();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Digits += bump();
    }
    if (std::toupper(static_cast<unsigned char>(peek())) == 'E' &&
        (std::isdigit(static_cast<unsigned char>(peek(1))) ||
         ((peek(1) == '+' || peek(1) == '-') &&
          std::isdigit(static_cast<unsigned char>(peek(2)))))) {
      IsReal = true;
      Digits += bump();
      if (peek() == '+' || peek() == '-')
        Digits += bump();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Digits += bump();
    }
    if (IsReal) {
      T.Kind = TokKind::RealLiteral;
      T.RealValue = std::strtod(Digits.c_str(), nullptr);
    } else {
      T.IntValue = std::strtoll(Digits.c_str(), nullptr, 10);
    }
    return T;
  }
};

} // namespace

std::vector<Token> frontend::tokenize(const std::string &Source,
                                      Diagnostics &Diags) {
  return LexerImpl(Source, Diags).run();
}
