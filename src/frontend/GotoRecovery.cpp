//===- frontend/GotoRecovery.cpp ------------------------------*- C++ -*-===//

#include "frontend/GotoRecovery.h"

#include "ir/Builder.h"
#include "ir/Walk.h"

#include <map>

using namespace simdflat;
using namespace simdflat::frontend;
using namespace simdflat::ir;

namespace {

/// Counts GOTO references per label over the whole program.
void countGotoRefs(const Body &B, std::map<int, int> &Refs) {
  forEachStmt(B, [&Refs](const Stmt &S) {
    if (const auto *G = dyn_cast<GotoStmt>(&S))
      Refs[G->label()] += 1;
  });
}

class Recovery {
public:
  explicit Recovery(Program &P) : P(P) {
    countGotoRefs(P.body(), Refs);
  }

  int run() {
    processBody(P.body());
    return Count;
  }

private:
  Program &P;
  std::map<int, int> Refs;
  int Count = 0;

  void processBody(Body &B) {
    // Recurse into nested bodies first (innermost loops recover first).
    for (StmtPtr &SP : B) {
      switch (SP->kind()) {
      case Stmt::Kind::If:
        processBody(cast<IfStmt>(SP.get())->thenBody());
        processBody(cast<IfStmt>(SP.get())->elseBody());
        break;
      case Stmt::Kind::Where:
        processBody(cast<WhereStmt>(SP.get())->thenBody());
        processBody(cast<WhereStmt>(SP.get())->elseBody());
        break;
      case Stmt::Kind::Do:
        processBody(cast<DoStmt>(SP.get())->body());
        break;
      case Stmt::Kind::While:
        processBody(cast<WhileStmt>(SP.get())->body());
        break;
      case Stmt::Kind::Repeat:
        processBody(cast<RepeatStmt>(SP.get())->body());
        break;
      case Stmt::Kind::Forall:
        processBody(cast<ForallStmt>(SP.get())->body());
        break;
      default:
        break;
      }
    }
    // Repeatedly recover the innermost label/goto cycle in this list.
    while (recoverOne(B))
      ++Count;
  }

  /// Finds a label L at index i and a conditional GOTO L at index j > i
  /// with no other reference to L anywhere and no other label between
  /// them with references from outside the range; rewrites to REPEAT.
  bool recoverOne(Body &B) {
    for (size_t LabelIdx = 0; LabelIdx < B.size(); ++LabelIdx) {
      const auto *L = dyn_cast<LabelStmt>(B[LabelIdx].get());
      if (!L)
        continue;
      if (Refs[L->label()] != 1)
        continue;
      for (size_t GotoIdx = LabelIdx + 1; GotoIdx < B.size(); ++GotoIdx) {
        const auto *G = dyn_cast<GotoStmt>(B[GotoIdx].get());
        if (!G || G->label() != L->label())
          continue;
        if (!G->cond())
          return false; // unconditional backward jump: leave it
        // The loop body must not contain other labels or gotos (they
        // would be jumps into/out of the region).
        bool Clean = true;
        for (size_t I = LabelIdx + 1; I < GotoIdx && Clean; ++I) {
          Body One;
          One.push_back(cloneStmt(*B[I]));
          forEachStmt(One, [&Clean](const Stmt &S) {
            if (S.kind() == Stmt::Kind::Label ||
                S.kind() == Stmt::Kind::Goto)
              Clean = false;
          });
        }
        if (!Clean)
          continue;
        // Build REPEAT body UNTIL (.NOT. cond).
        Body LoopBody;
        for (size_t I = LabelIdx + 1; I < GotoIdx; ++I)
          LoopBody.push_back(std::move(B[I]));
        ExprPtr Until = std::make_unique<UnaryExpr>(
            UnOp::Not, cloneExpr(*G->cond()), ScalarKind::Bool);
        StmtPtr Loop = std::make_unique<RepeatStmt>(std::move(LoopBody),
                                                    std::move(Until));
        Refs[L->label()] = 0;
        B.erase(B.begin() + static_cast<long>(LabelIdx),
                B.begin() + static_cast<long>(GotoIdx) + 1);
        B.insert(B.begin() + static_cast<long>(LabelIdx),
                 std::move(Loop));
        return true;
      }
    }
    return false;
  }
};

} // namespace

int frontend::recoverGotoLoops(Program &P) { return Recovery(P).run(); }

int frontend::recoverGotoLoops(Program &P, Diagnostics &Diags) {
  int Count = Recovery(P).run();
  forEachStmt(P.body(), [&Diags](const Stmt &S) {
    if (const auto *L = dyn_cast<LabelStmt>(&S))
      Diags.warning({}, "label " + std::to_string(L->label()) +
                            " survives GOTO-loop recovery; the SIMD "
                            "pipeline cannot execute it");
    else if (const auto *G = dyn_cast<GotoStmt>(&S))
      Diags.warning({}, "GOTO " + std::to_string(G->label()) +
                            " survives GOTO-loop recovery; the SIMD "
                            "pipeline cannot execute it");
  });
  return Count;
}

bool frontend::hasUnstructuredControl(const Program &P) {
  bool Found = false;
  forEachStmt(P.body(), [&Found](const Stmt &S) {
    if (S.kind() == Stmt::Kind::Label || S.kind() == Stmt::Kind::Goto)
      Found = true;
  });
  return Found;
}
