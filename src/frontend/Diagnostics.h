//===- frontend/Diagnostics.h - Parse/sema error reporting -----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection for the mini-Fortran front end. Errors are
/// recoverable: the parser records them and keeps going so one run
/// reports as many problems as possible.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_FRONTEND_DIAGNOSTICS_H
#define SIMDFLAT_FRONTEND_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace simdflat {
namespace frontend {

/// A source position (1-based).
struct SourceLoc {
  int Line = 0;
  int Col = 0;
};

/// How bad a diagnostic is. Errors make the parse fail; warnings are
/// advisory (suspicious but legal input) and never block compilation.
enum class Severity {
  Error,
  Warning,
};

/// One reported problem.
struct Diagnostic {
  SourceLoc Loc;
  std::string Message;
  Severity Sev = Severity::Error;

  /// "line L, col C: message", with a "warning: " prefix on warnings
  /// and the position omitted when there is none (Line == 0).
  /// Error-message style: lowercase start, no trailing period.
  std::string render() const;
};

/// Ordered diagnostic sink.
class Diagnostics {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({Loc, std::move(Message), Severity::Error});
  }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({Loc, std::move(Message), Severity::Warning});
  }

  bool empty() const { return Diags.empty(); }
  size_t count() const { return Diags.size(); }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// True when any diagnostic is an error (warnings alone leave the
  /// parse usable).
  bool hasErrors() const {
    for (const Diagnostic &D : Diags)
      if (D.Sev == Severity::Error)
        return true;
    return false;
  }

  /// All diagnostics joined with newlines.
  std::string renderAll() const;

private:
  std::vector<Diagnostic> Diags;
};

} // namespace frontend
} // namespace simdflat

#endif // SIMDFLAT_FRONTEND_DIAGNOSTICS_H
