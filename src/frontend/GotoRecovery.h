//===- frontend/GotoRecovery.h - Structure GOTO loops ----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recovers dusty-deck GOTO loops into structured REPEAT loops so the
/// analyses and transformations (which require structured control flow)
/// can handle them - the paper's Sec. 6: "GOTO loops: similarly to
/// WHILE loops, we can identify the phases by their position between
/// labels and jumps."
///
/// Recognized pattern (within a single statement list):
/// \code
///   10 CONTINUE
///      <body>
///      IF (cond) GOTO 10        ! or an unconditional GOTO elsewhere? no
/// \endcode
/// becomes `REPEAT <body> UNTIL (.NOT. cond)`. The label must have
/// exactly one referencing GOTO, the GOTO must be conditional (a
/// backward unconditional jump is an infinite loop) and must appear
/// after the label at the same nesting level.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_FRONTEND_GOTORECOVERY_H
#define SIMDFLAT_FRONTEND_GOTORECOVERY_H

#include "frontend/Diagnostics.h"
#include "ir/Program.h"

namespace simdflat {
namespace frontend {

/// Rewrites recoverable GOTO loops in \p P; returns how many loops were
/// structured. Unrecoverable labels/GOTOs are left in place (the SIMD
/// pipeline will reject them with a diagnostic).
int recoverGotoLoops(ir::Program &P);

/// Same, but additionally emits a warning into \p Diags for every label
/// and GOTO that survives recovery (the statements the SIMD pipeline
/// cannot execute).
int recoverGotoLoops(ir::Program &P, Diagnostics &Diags);

/// True if \p P still contains any Label or Goto statement.
bool hasUnstructuredControl(const ir::Program &P);

} // namespace frontend
} // namespace simdflat

#endif // SIMDFLAT_FRONTEND_GOTORECOVERY_H
