//===- frontend/Parser.cpp ------------------------------------*- C++ -*-===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "support/Format.h"

#include <cassert>
#include <cctype>
#include <map>

using namespace simdflat;
using namespace simdflat::frontend;
using namespace simdflat::ir;

namespace {

bool isNumeric(ScalarKind K) {
  return K == ScalarKind::Int || K == ScalarKind::Real;
}

ScalarKind promote(ScalarKind A, ScalarKind B) {
  return (A == ScalarKind::Real || B == ScalarKind::Real)
             ? ScalarKind::Real
             : ScalarKind::Int;
}

class Parser {
public:
  Parser(const std::string &Source, ParseResult &Result)
      : Result(Result) {
    Toks = tokenize(Source, Result.Diags);
  }

  void run() {
    skipNewlines();
    if (!expectKeyword("PROGRAM"))
      return;
    if (cur().Kind != TokKind::Identifier) {
      error("expected a program name after PROGRAM");
      return;
    }
    Result.Prog.emplace(cur().Text);
    P = &*Result.Prog;
    advance();
    expectNewline();
    parseDecls();
    if (!expectKeyword("BEGIN"))
      return;
    expectNewline();
    Body B = parseBody({"END"});
    expectKeyword("END");
    P->setBody(std::move(B));
    checkLabels();
  }

private:
  ParseResult &Result;
  std::vector<Token> Toks;
  size_t Pos = 0;
  Program *P = nullptr;
  /// First definition / first GOTO reference of each label number.
  std::map<int, SourceLoc> DefinedLabels;
  std::map<int, SourceLoc> GotoTargets;

  //--- Token helpers ----------------------------------------------------

  const Token &cur() const { return Toks[Pos]; }
  const Token &la(size_t Ahead) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  void advance() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }
  bool atKeyword(const char *KW) const { return cur().isKeyword(KW); }

  void error(const std::string &Msg) {
    Result.Diags.error(cur().Loc, Msg);
  }

  void warning(SourceLoc Loc, const std::string &Msg) {
    Result.Diags.warning(Loc, Msg);
  }

  /// Labels nobody jumps to and jumps to nowhere are legal but almost
  /// always typos; the latter traps at run time, so flag both here.
  void checkLabels() {
    for (const auto &[Label, Loc] : DefinedLabels)
      if (!GotoTargets.count(Label))
        warning(Loc, formatf("label %d is never the target of a GOTO",
                             Label));
    for (const auto &[Label, Loc] : GotoTargets)
      if (!DefinedLabels.count(Label))
        warning(Loc, formatf("GOTO to undefined label %d", Label));
  }

  void skipNewlines() {
    while (cur().Kind == TokKind::Newline)
      advance();
  }

  /// Skips to just past the next newline (statement-level recovery).
  void recoverToNewline() {
    while (cur().Kind != TokKind::Newline && cur().Kind != TokKind::Eof)
      advance();
    skipNewlines();
  }

  bool expectKeyword(const char *KW) {
    if (atKeyword(KW)) {
      advance();
      return true;
    }
    error(formatf("expected %s", KW));
    return false;
  }

  bool expect(TokKind K, const char *What) {
    if (cur().Kind == K) {
      advance();
      return true;
    }
    error(formatf("expected %s", What));
    return false;
  }

  void expectNewline() {
    if (cur().Kind == TokKind::Newline || cur().Kind == TokKind::Eof) {
      skipNewlines();
      return;
    }
    error("expected end of statement");
    recoverToNewline();
  }

  //--- Declarations -----------------------------------------------------

  std::optional<ScalarKind> kindKeyword() {
    if (atKeyword("INTEGER"))
      return ScalarKind::Int;
    if (atKeyword("REAL"))
      return ScalarKind::Real;
    if (atKeyword("LOGICAL"))
      return ScalarKind::Bool;
    return std::nullopt;
  }

  void parseDecls() {
    while (true) {
      skipNewlines();
      if (atKeyword("EXTERN")) {
        parseExtern();
        continue;
      }
      Dist D = Dist::Control;
      size_t Save = Pos;
      if (atKeyword("REPLICATED")) {
        D = Dist::Replicated;
        advance();
      } else if (atKeyword("DISTRIBUTED")) {
        D = Dist::Distributed;
        advance();
      }
      std::optional<ScalarKind> K = kindKeyword();
      if (!K) {
        Pos = Save;
        return; // end of declarations
      }
      advance();
      parseVarDecl(*K, D);
    }
  }

  void parseExtern() {
    advance(); // EXTERN
    bool Pure = true;
    if (atKeyword("IMPURE")) {
      Pure = false;
      advance();
    }
    if (atKeyword("SUBROUTINE")) {
      advance();
      if (cur().Kind != TokKind::Identifier) {
        error("expected a subroutine name");
        recoverToNewline();
        return;
      }
      P->addExtern(cur().Text, ScalarKind::Int, Pure,
                   /*IsSubroutine=*/true);
      advance();
      expectNewline();
      return;
    }
    std::optional<ScalarKind> K = kindKeyword();
    if (!K) {
      error("expected INTEGER/REAL/LOGICAL or SUBROUTINE after EXTERN");
      recoverToNewline();
      return;
    }
    advance();
    if (!expectKeyword("FUNCTION")) {
      recoverToNewline();
      return;
    }
    if (cur().Kind != TokKind::Identifier) {
      error("expected a function name");
      recoverToNewline();
      return;
    }
    P->addExtern(cur().Text, *K, Pure);
    advance();
    expectNewline();
  }

  void parseVarDecl(ScalarKind K, Dist D) {
    if (cur().Kind != TokKind::Identifier) {
      error("expected a variable name");
      recoverToNewline();
      return;
    }
    std::string Name = cur().Text;
    advance();
    std::vector<int64_t> Dims;
    if (cur().Kind == TokKind::LParen) {
      advance();
      while (true) {
        if (cur().Kind != TokKind::IntLiteral) {
          error("array extents must be integer literals");
          recoverToNewline();
          return;
        }
        Dims.push_back(cur().IntValue);
        advance();
        if (cur().Kind == TokKind::Comma) {
          advance();
          continue;
        }
        break;
      }
      expect(TokKind::RParen, "')'");
    }
    if (P->lookupVar(Name)) {
      error(formatf("variable '%s' redeclared", Name.c_str()));
    } else {
      P->addVar(Name, K, std::move(Dims), D);
    }
    expectNewline();
  }

  //--- Expressions ------------------------------------------------------

  ExprPtr badExpr() { return std::make_unique<IntLit>(0); }

  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr L = parseAnd();
    while (cur().Kind == TokKind::DotOr) {
      advance();
      ExprPtr R = parseAnd();
      checkBool(*L, ".OR.");
      checkBool(*R, ".OR.");
      L = std::make_unique<BinaryExpr>(BinOp::Or, std::move(L),
                                       std::move(R), ScalarKind::Bool);
    }
    return L;
  }

  ExprPtr parseAnd() {
    ExprPtr L = parseNot();
    while (cur().Kind == TokKind::DotAnd) {
      advance();
      ExprPtr R = parseNot();
      checkBool(*L, ".AND.");
      checkBool(*R, ".AND.");
      L = std::make_unique<BinaryExpr>(BinOp::And, std::move(L),
                                       std::move(R), ScalarKind::Bool);
    }
    return L;
  }

  ExprPtr parseNot() {
    if (cur().Kind == TokKind::DotNot) {
      advance();
      ExprPtr E = parseNot();
      checkBool(*E, ".NOT.");
      return std::make_unique<UnaryExpr>(UnOp::Not, std::move(E),
                                         ScalarKind::Bool);
    }
    return parseCmp();
  }

  ExprPtr parseCmp() {
    ExprPtr L = parseAdd();
    BinOp Op;
    switch (cur().Kind) {
    case TokKind::Eq:
      Op = BinOp::Eq;
      break;
    case TokKind::Ne:
      Op = BinOp::Ne;
      break;
    case TokKind::Lt:
      Op = BinOp::Lt;
      break;
    case TokKind::Le:
      Op = BinOp::Le;
      break;
    case TokKind::Gt:
      Op = BinOp::Gt;
      break;
    case TokKind::Ge:
      Op = BinOp::Ge;
      break;
    default:
      return L;
    }
    advance();
    ExprPtr R = parseAdd();
    bool BoolsOK = Op == BinOp::Eq || Op == BinOp::Ne;
    bool LB = L->type() == ScalarKind::Bool,
         RB = R->type() == ScalarKind::Bool;
    if ((LB || RB) && !(BoolsOK && LB && RB))
      error("cannot order logical values");
    return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R),
                                        ScalarKind::Bool);
  }

  ExprPtr parseAdd() {
    ExprPtr L = parseMul();
    while (cur().Kind == TokKind::Plus || cur().Kind == TokKind::Minus) {
      BinOp Op = cur().Kind == TokKind::Plus ? BinOp::Add : BinOp::Sub;
      advance();
      ExprPtr R = parseMul();
      checkNumeric(*L, "+/-");
      checkNumeric(*R, "+/-");
      ScalarKind Ty = promote(L->type(), R->type());
      L = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Ty);
    }
    return L;
  }

  ExprPtr parseMul() {
    ExprPtr L = parseUnary();
    while (cur().Kind == TokKind::Star || cur().Kind == TokKind::Slash) {
      BinOp Op = cur().Kind == TokKind::Star ? BinOp::Mul : BinOp::Div;
      advance();
      ExprPtr R = parseUnary();
      checkNumeric(*L, "*//");
      checkNumeric(*R, "*//");
      ScalarKind Ty = promote(L->type(), R->type());
      L = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Ty);
    }
    return L;
  }

  ExprPtr parseUnary() {
    if (cur().Kind == TokKind::Minus) {
      advance();
      ExprPtr E = parseUnary();
      checkNumeric(*E, "unary -");
      ScalarKind Ty = E->type();
      return std::make_unique<UnaryExpr>(UnOp::Neg, std::move(E), Ty);
    }
    return parsePrimary();
  }

  void checkBool(const Expr &E, const char *Ctx) {
    if (E.type() != ScalarKind::Bool)
      error(formatf("%s requires logical operands", Ctx));
  }

  void checkNumeric(const Expr &E, const char *Ctx) {
    if (!isNumeric(E.type()))
      error(formatf("%s requires numeric operands", Ctx));
  }

  void checkInt(const Expr &E, const char *Ctx) {
    if (E.type() != ScalarKind::Int)
      error(formatf("%s must be an integer expression", Ctx));
  }

  ExprPtr parsePrimary() {
    switch (cur().Kind) {
    case TokKind::IntLiteral: {
      auto E = std::make_unique<IntLit>(cur().IntValue);
      advance();
      return E;
    }
    case TokKind::RealLiteral: {
      auto E = std::make_unique<RealLit>(cur().RealValue);
      advance();
      return E;
    }
    case TokKind::DotTrue:
      advance();
      return std::make_unique<BoolLit>(true);
    case TokKind::DotFalse:
      advance();
      return std::make_unique<BoolLit>(false);
    case TokKind::LParen: {
      advance();
      ExprPtr E = parseExpr();
      expect(TokKind::RParen, "')'");
      return E;
    }
    case TokKind::Identifier:
      return parseNameExpr();
    default:
      error("expected an expression");
      advance();
      return badExpr();
    }
  }

  std::vector<ExprPtr> parseArgList() {
    std::vector<ExprPtr> Args;
    advance(); // '('
    if (cur().Kind == TokKind::RParen) {
      advance();
      return Args;
    }
    while (true) {
      Args.push_back(parseExpr());
      if (cur().Kind == TokKind::Comma) {
        advance();
        continue;
      }
      break;
    }
    expect(TokKind::RParen, "')'");
    return Args;
  }

  /// Identifier in expression position: variable, array element,
  /// intrinsic or extern function call.
  ExprPtr parseNameExpr() {
    std::string Name = cur().Text;
    std::string Upper = Name;
    for (char &C : Upper)
      C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
    bool HasParen = la(1).Kind == TokKind::LParen;

    if (HasParen) {
      if (ExprPtr E = tryParseIntrinsic(Upper))
        return E;
      if (const ExternDecl *ED = P->lookupExtern(Name)) {
        if (ED->IsSubroutine)
          error(formatf("subroutine '%s' used as a function",
                        Name.c_str()));
        advance();
        std::vector<ExprPtr> Args = parseArgList();
        return std::make_unique<CallExpr>(Name, std::move(Args), ED->Ret);
      }
      // Array reference.
      const VarDecl *D = P->lookupVar(Name);
      if (!D) {
        error(formatf("reference to undeclared array '%s'", Name.c_str()));
        advance();
        parseArgList();
        return badExpr();
      }
      if (D->isScalar()) {
        error(formatf("'%s' is a scalar, not an array", Name.c_str()));
        advance();
        parseArgList();
        return badExpr();
      }
      advance();
      std::vector<ExprPtr> Indices = parseArgList();
      if (Indices.size() != D->Dims.size())
        error(formatf("'%s' has rank %zu but %zu subscripts given",
                      Name.c_str(), D->Dims.size(), Indices.size()));
      for (const ExprPtr &I : Indices)
        checkInt(*I, "array subscript");
      return std::make_unique<ArrayRef>(Name, D->Kind, std::move(Indices));
    }

    const VarDecl *D = P->lookupVar(Name);
    if (!D) {
      error(formatf("reference to undeclared variable '%s'",
                    Name.c_str()));
      // Implicitly declare as an integer scalar to limit error cascades.
      P->addVar(Name, ScalarKind::Int);
      D = P->lookupVar(Name);
    }
    advance();
    return std::make_unique<VarRef>(Name, D->Kind);
  }

  /// Intrinsics callable in expression position; MOD lowers to BinOp.
  ExprPtr tryParseIntrinsic(const std::string &Upper) {
    struct Entry {
      const char *Name;
      IntrinsicOp Op;
      int Arity;
    };
    static const Entry Table[] = {
        {"MAX", IntrinsicOp::Max, 2},
        {"MIN", IntrinsicOp::Min, 2},
        {"ABS", IntrinsicOp::Abs, 1},
        {"SQRT", IntrinsicOp::Sqrt, 1},
        {"LANEINDEX", IntrinsicOp::LaneIndex, 0},
        {"NUMLANES", IntrinsicOp::NumLanes, 0},
        {"ANY", IntrinsicOp::Any, 1},
        {"ALL", IntrinsicOp::All, 1},
        {"MAXRED", IntrinsicOp::MaxRed, 1},
        {"MINRED", IntrinsicOp::MinRed, 1},
        {"SUMRED", IntrinsicOp::SumRed, 1},
        {"MAXVAL", IntrinsicOp::MaxVal, 1},
        {"SUMVAL", IntrinsicOp::SumVal, 1},
    };
    if (Upper == "MOD") {
      advance();
      std::vector<ExprPtr> Args = parseArgList();
      if (Args.size() != 2) {
        error("MOD takes two arguments");
        return badExpr();
      }
      checkInt(*Args[0], "MOD argument");
      checkInt(*Args[1], "MOD argument");
      return std::make_unique<BinaryExpr>(BinOp::Mod, std::move(Args[0]),
                                          std::move(Args[1]),
                                          ScalarKind::Int);
    }
    for (const Entry &E : Table) {
      if (Upper != E.Name)
        continue;
      advance();
      std::vector<ExprPtr> Args = parseArgList();
      if (static_cast<int>(Args.size()) != E.Arity) {
        error(formatf("%s takes %d argument(s)", E.Name, E.Arity));
        return badExpr();
      }
      return finishIntrinsic(E.Op, std::move(Args));
    }
    return nullptr;
  }

  ExprPtr finishIntrinsic(IntrinsicOp Op, std::vector<ExprPtr> Args) {
    ScalarKind Ty = ScalarKind::Int;
    switch (Op) {
    case IntrinsicOp::Max:
    case IntrinsicOp::Min:
      checkNumeric(*Args[0], "MAX/MIN");
      checkNumeric(*Args[1], "MAX/MIN");
      Ty = promote(Args[0]->type(), Args[1]->type());
      break;
    case IntrinsicOp::Abs:
      checkNumeric(*Args[0], "ABS");
      Ty = Args[0]->type();
      break;
    case IntrinsicOp::Sqrt:
      if (Args[0]->type() != ScalarKind::Real)
        error("SQRT requires a real argument");
      Ty = ScalarKind::Real;
      break;
    case IntrinsicOp::LaneIndex:
    case IntrinsicOp::NumLanes:
      Ty = ScalarKind::Int;
      break;
    case IntrinsicOp::Any:
    case IntrinsicOp::All:
      checkBool(*Args[0], "ANY/ALL");
      Ty = ScalarKind::Bool;
      break;
    case IntrinsicOp::MaxRed:
    case IntrinsicOp::MinRed:
    case IntrinsicOp::SumRed:
      checkNumeric(*Args[0], "MAXRED/MINRED/SUMRED");
      Ty = Args[0]->type();
      break;
    case IntrinsicOp::MaxVal:
    case IntrinsicOp::SumVal: {
      const auto *V = dyn_cast<VarRef>(Args[0].get());
      const VarDecl *D = V ? P->lookupVar(V->name()) : nullptr;
      if (!D || !D->isArray())
        error("MAXVAL/SUMVAL requires a whole-array argument");
      Ty = D ? D->Kind : ScalarKind::Int;
      break;
    }
    }
    return std::make_unique<IntrinsicExpr>(Op, std::move(Args), Ty);
  }

  //--- Statements -------------------------------------------------------

  /// Parses statements until one of \p Terminators (keyword spellings)
  /// is at the cursor (not consumed).
  Body parseBody(std::initializer_list<const char *> Terminators) {
    Body B;
    while (true) {
      skipNewlines();
      if (cur().Kind == TokKind::Eof)
        return B;
      bool AtTerm = false;
      for (const char *T : Terminators)
        AtTerm |= atKeyword(T);
      if (AtTerm)
        return B;
      if (StmtPtr S = parseStmt())
        B.push_back(std::move(S));
      else
        recoverToNewline();
    }
  }

  StmtPtr parseStmt() {
    // Label: `10 CONTINUE`.
    if (cur().Kind == TokKind::IntLiteral && la(1).isKeyword("CONTINUE")) {
      int Label = static_cast<int>(cur().IntValue);
      DefinedLabels.emplace(Label, cur().Loc);
      advance();
      advance();
      expectNewline();
      return std::make_unique<LabelStmt>(Label);
    }
    if (atKeyword("GOTO"))
      return parseGoto(nullptr);
    if (atKeyword("IF"))
      return parseIf();
    if (atKeyword("WHERE"))
      return parseWhere();
    if (atKeyword("DO") || atKeyword("DOALL"))
      return parseDo();
    if (atKeyword("WHILE"))
      return parseWhile();
    if (atKeyword("REPEAT"))
      return parseRepeat();
    if (atKeyword("FORALL"))
      return parseForall();
    if (atKeyword("CALL"))
      return parseCall();
    if (cur().Kind == TokKind::Identifier)
      return parseAssign();
    error("expected a statement");
    return nullptr;
  }

  StmtPtr parseGoto(ExprPtr Cond) {
    advance(); // GOTO
    if (cur().Kind != TokKind::IntLiteral) {
      error("expected a label after GOTO");
      return nullptr;
    }
    int Label = static_cast<int>(cur().IntValue);
    GotoTargets.emplace(Label, cur().Loc);
    advance();
    expectNewline();
    return std::make_unique<GotoStmt>(Label, std::move(Cond));
  }

  StmtPtr parseIf() {
    advance(); // IF
    if (!expect(TokKind::LParen, "'(' after IF"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    checkBool(*Cond, "IF condition");
    if (!expect(TokKind::RParen, "')'"))
      return nullptr;
    if (atKeyword("GOTO"))
      return parseGoto(std::move(Cond));
    if (!expectKeyword("THEN"))
      return nullptr;
    expectNewline();
    Body Then = parseBody({"ELSE", "ENDIF"});
    Body Else;
    if (atKeyword("ELSE")) {
      advance();
      expectNewline();
      Else = parseBody({"ENDIF"});
    }
    expectKeyword("ENDIF");
    expectNewline();
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else));
  }

  StmtPtr parseWhere() {
    advance(); // WHERE
    if (!expect(TokKind::LParen, "'(' after WHERE"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    checkBool(*Cond, "WHERE mask");
    expect(TokKind::RParen, "')'");
    expectNewline();
    Body Then = parseBody({"ELSEWHERE", "ENDWHERE"});
    Body Else;
    if (atKeyword("ELSEWHERE")) {
      advance();
      expectNewline();
      Else = parseBody({"ENDWHERE"});
    }
    expectKeyword("ENDWHERE");
    expectNewline();
    return std::make_unique<WhereStmt>(std::move(Cond), std::move(Then),
                                       std::move(Else));
  }

  StmtPtr parseDo() {
    bool Parallel = atKeyword("DOALL");
    advance();
    if (cur().Kind != TokKind::Identifier) {
      error("expected an index variable after DO");
      return nullptr;
    }
    std::string IV = cur().Text;
    const VarDecl *D = P->lookupVar(IV);
    if (!D) {
      error(formatf("undeclared DO index '%s'", IV.c_str()));
      P->addVar(IV, ScalarKind::Int);
    } else if (D->Kind != ScalarKind::Int || D->isArray()) {
      error("DO index must be an integer scalar");
    }
    advance();
    if (!expect(TokKind::Assign, "'='"))
      return nullptr;
    ExprPtr Lo = parseExpr();
    checkInt(*Lo, "DO lower bound");
    if (!expect(TokKind::Comma, "','"))
      return nullptr;
    ExprPtr Hi = parseExpr();
    checkInt(*Hi, "DO upper bound");
    ExprPtr Step;
    if (cur().Kind == TokKind::Comma) {
      advance();
      Step = parseExpr();
      checkInt(*Step, "DO step");
    }
    expectNewline();
    Body B = parseBody({"ENDDO"});
    expectKeyword("ENDDO");
    expectNewline();
    return std::make_unique<DoStmt>(IV, std::move(Lo), std::move(Hi),
                                    std::move(Step), std::move(B),
                                    Parallel);
  }

  StmtPtr parseWhile() {
    advance();
    if (!expect(TokKind::LParen, "'(' after WHILE"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    checkBool(*Cond, "WHILE condition");
    expect(TokKind::RParen, "')'");
    expectNewline();
    Body B = parseBody({"ENDWHILE"});
    expectKeyword("ENDWHILE");
    expectNewline();
    return std::make_unique<WhileStmt>(std::move(Cond), std::move(B));
  }

  StmtPtr parseRepeat() {
    advance();
    expectNewline();
    Body B = parseBody({"UNTIL"});
    if (!expectKeyword("UNTIL"))
      return nullptr;
    if (!expect(TokKind::LParen, "'(' after UNTIL"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    checkBool(*Cond, "UNTIL condition");
    expect(TokKind::RParen, "')'");
    expectNewline();
    return std::make_unique<RepeatStmt>(std::move(B), std::move(Cond));
  }

  StmtPtr parseForall() {
    advance();
    if (!expect(TokKind::LParen, "'(' after FORALL"))
      return nullptr;
    if (cur().Kind != TokKind::Identifier) {
      error("expected an index variable in FORALL");
      return nullptr;
    }
    std::string IV = cur().Text;
    if (!P->lookupVar(IV)) {
      error(formatf("undeclared FORALL index '%s'", IV.c_str()));
      P->addVar(IV, ScalarKind::Int);
    }
    advance();
    if (!expect(TokKind::Assign, "'='"))
      return nullptr;
    ExprPtr Lo = parseExpr();
    checkInt(*Lo, "FORALL lower bound");
    if (!expect(TokKind::Colon, "':'"))
      return nullptr;
    ExprPtr Hi = parseExpr();
    checkInt(*Hi, "FORALL upper bound");
    ExprPtr Mask;
    if (cur().Kind == TokKind::Comma) {
      advance();
      Mask = parseExpr();
      checkBool(*Mask, "FORALL mask");
    }
    expect(TokKind::RParen, "')'");
    expectNewline();
    Body B = parseBody({"ENDFORALL"});
    expectKeyword("ENDFORALL");
    expectNewline();
    return std::make_unique<ForallStmt>(IV, std::move(Lo), std::move(Hi),
                                        std::move(Mask), std::move(B));
  }

  StmtPtr parseCall() {
    advance();
    if (cur().Kind != TokKind::Identifier) {
      error("expected a subroutine name after CALL");
      return nullptr;
    }
    std::string Name = cur().Text;
    const ExternDecl *E = P->lookupExtern(Name);
    if (!E || !E->IsSubroutine)
      error(formatf("CALL of undeclared subroutine '%s'", Name.c_str()));
    advance();
    std::vector<ExprPtr> Args;
    if (cur().Kind == TokKind::LParen)
      Args = parseArgList();
    expectNewline();
    return std::make_unique<CallStmt>(Name, std::move(Args));
  }

  StmtPtr parseAssign() {
    ExprPtr Target = parseNameExpr();
    if (!isa<VarRef>(Target.get()) && !isa<ArrayRef>(Target.get())) {
      error("invalid assignment target");
      return nullptr;
    }
    if (const auto *V = dyn_cast<VarRef>(Target.get())) {
      const VarDecl *D = P->lookupVar(V->name());
      if (D && D->isArray())
        error(formatf("cannot assign to whole array '%s'",
                      V->name().c_str()));
    }
    if (!expect(TokKind::Assign, "'=' in assignment"))
      return nullptr;
    ExprPtr Value = parseExpr();
    ScalarKind TK = Target->type(), VK = Value->type();
    if (TK != VK && !(isNumeric(TK) && isNumeric(VK)))
      error("assignment of incompatible types");
    expectNewline();
    return std::make_unique<AssignStmt>(std::move(Target),
                                        std::move(Value));
  }
};

} // namespace

ParseResult frontend::parseProgram(const std::string &Source) {
  ParseResult Result;
  Parser Psr(Source, Result);
  Psr.run();
  return Result;
}
