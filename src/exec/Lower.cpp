//===- exec/Lower.cpp - ir:: -> bytecode lowering --------------*- C++ -*-===//

#include "exec/Lower.h"

#include "interp/Trap.h"
#include "ir/Program.h"
#include "support/Error.h"

#include <cassert>
#include <map>
#include <unordered_map>

using namespace simdflat;
using namespace simdflat::exec;
using namespace simdflat::ir;

namespace {

class Lowering {
public:
  Lowering(const ir::Program &P, Mode M) : Prog(P) {
    Out.M = M;
    Out.ProgName = P.name();
  }

  exec::Program run() {
    lowerBody(Prog.body());
    emit(Opcode::Halt);
    return std::move(Out);
  }

private:
  const ir::Program &Prog;
  exec::Program Out;

  std::unordered_map<std::string, int32_t> SlotIdx, CalleeIdx, MsgIdx,
      LocIdx;
  std::unordered_map<int64_t, int32_t> IntIdx;
  /// Enclosing statements at the current lowering point; mirrors the
  /// tree-walkers' runtime StmtStack (which is purely syntactic), so the
  /// prerendered location of an instruction equals what the tree would
  /// render when trapping there.
  std::vector<const Stmt *> StmtStack;
  int32_t CurLoc = -1;
  bool LocDirty = true;
  /// Control-slot allocation follows loop nesting (stack discipline), so
  /// sibling loops reuse slots and NumCtl stays small.
  int32_t CtlTop = 0;
  /// Static loop nesting depth at the current lowering point (0 =
  /// outermost); recorded per instrumented loop for the trip telemetry.
  int32_t LoopDepth = 0;

  /// Registers one instrumented loop; returns its id (TripRec's B
  /// operand). Every loop form gets a zero-initialized trip-counter ctl
  /// slot, an uncharged CtlInc next to its LoopIter, and a TripRec at
  /// the loop exit - pure telemetry that never touches charged
  /// counters, so tree/bytecode equality is unaffected.
  int32_t newLoop(const std::string &Kind) {
    int32_t Id = static_cast<int32_t>(Out.LoopNames.size());
    // Appended piecewise: GCC 12's -O2 -Werror=restrict misfires on
    // the `"lit" + std::string&&` concatenation chain here.
    std::string Name = "L";
    Name += std::to_string(Id);
    Name += ' ';
    Name += Kind;
    Out.LoopNames.push_back(std::move(Name));
    Out.LoopDepths.push_back(LoopDepth);
    return Id;
  }

  bool simd() const { return Out.M == Mode::Simd; }

  int32_t loc() {
    if (LocDirty) {
      CurLoc = internLoc(interp::renderStmtLocation(StmtStack));
      LocDirty = false;
    }
    return CurLoc;
  }

  size_t emit(Opcode Op, int32_t A = 0, int32_t B = 0, int32_t C = 0,
              int32_t D = 0) {
    Out.Code.push_back({Op, A, B, C, D, loc()});
    return Out.Code.size() - 1;
  }

  int32_t here() const { return static_cast<int32_t>(Out.Code.size()); }

  void patch(size_t InstrIdx, int32_t Target) {
    Out.Code[InstrIdx].D = Target;
  }

  void useReg(int32_t R) {
    if (R + 1 > Out.NumRegs)
      Out.NumRegs = R + 1;
  }

  int32_t allocCtl(int32_t N) {
    int32_t Base = CtlTop;
    CtlTop += N;
    if (CtlTop > Out.NumCtl)
      Out.NumCtl = CtlTop;
    return Base;
  }
  void releaseCtl(int32_t Base) { CtlTop = Base; }

  template <typename Map, typename Pool, typename Key>
  int32_t intern(Map &M, Pool &P, const Key &K) {
    auto It = M.find(K);
    if (It != M.end())
      return It->second;
    int32_t Idx = static_cast<int32_t>(P.size());
    P.push_back(K);
    M.emplace(K, Idx);
    return Idx;
  }

  int32_t internSlot(const std::string &Name) {
    return intern(SlotIdx, Out.SlotNames, Name);
  }
  int32_t internCallee(const std::string &Name) {
    return intern(CalleeIdx, Out.Callees, Name);
  }
  int32_t internMsg(const std::string &Msg) {
    return intern(MsgIdx, Out.Msgs, Msg);
  }
  int32_t internLoc(const std::string &L) {
    return intern(LocIdx, Out.Locs, L);
  }
  int32_t internInt(int64_t V) { return intern(IntIdx, Out.IntPool, V); }
  int32_t internReal(double V) {
    // Reals are rare enough to skip dedup (and NaN keys would not
    // round-trip through a map anyway).
    Out.RealPool.push_back(V);
    return static_cast<int32_t>(Out.RealPool.size() - 1);
  }

  int32_t extraList(const std::vector<int32_t> &Regs) {
    int32_t Off = static_cast<int32_t>(Out.Extra.size());
    Out.Extra.push_back(static_cast<int32_t>(Regs.size()));
    for (int32_t R : Regs)
      Out.Extra.push_back(R);
    return Off;
  }

  const VarDecl &declOf(const std::string &Name) const {
    const VarDecl *D = Prog.lookupVar(Name);
    if (!D)
      reportFatalError("exec lower: reference to undeclared variable '" +
                       Name + "'");
    return *D;
  }

  //===--------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------===//

  /// Lowers \p E so its value lands in register \p Dst; uses registers
  /// > Dst as scratch.
  void evalInto(const Expr &E, int32_t Dst) {
    useReg(Dst);
    switch (E.kind()) {
    case Expr::Kind::IntLit:
      emit(Opcode::LdInt, Dst, internInt(cast<IntLit>(&E)->value()));
      return;
    case Expr::Kind::RealLit:
      emit(Opcode::LdReal, Dst, internReal(cast<RealLit>(&E)->value()));
      return;
    case Expr::Kind::BoolLit:
      emit(Opcode::LdBool, Dst, cast<BoolLit>(&E)->value() ? 1 : 0);
      return;
    case Expr::Kind::VarRef:
      emit(Opcode::LdVar, Dst, internSlot(cast<VarRef>(&E)->name()));
      return;
    case Expr::Kind::ArrayRef: {
      const auto *A = cast<ArrayRef>(&E);
      std::vector<int32_t> IdxRegs;
      IdxRegs.reserve(A->indices().size());
      for (size_t I = 0; I < A->indices().size(); ++I) {
        int32_t R = Dst + 1 + static_cast<int32_t>(I);
        evalInto(*A->indices()[I], R);
        IdxRegs.push_back(R);
      }
      emit(Opcode::Gather, Dst, internSlot(A->name()),
           extraList(IdxRegs));
      return;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      evalInto(U->operand(), Dst + 1);
      emit(U->op() == UnOp::Not ? Opcode::NotOp : Opcode::Neg, Dst,
           Dst + 1);
      return;
    }
    case Expr::Kind::Binary:
      lowerBinary(*cast<BinaryExpr>(&E), Dst);
      return;
    case Expr::Kind::Intrinsic:
      lowerIntrinsic(*cast<IntrinsicExpr>(&E), Dst);
      return;
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(&E);
      lowerCall(C->callee(), C->args(), Dst, C->type());
      return;
    }
    }
    SIMDFLAT_UNREACHABLE("bad Expr kind");
  }

  void lowerBinary(const BinaryExpr &B, int32_t Dst) {
    evalInto(B.lhs(), Dst + 1);
    evalInto(B.rhs(), Dst + 2);
    Opcode Op = Opcode::Halt;
    switch (B.op()) {
    case BinOp::And:
      Op = Opcode::AndOp;
      break;
    case BinOp::Or:
      Op = Opcode::OrOp;
      break;
    case BinOp::Eq:
      Op = Opcode::CmpEq;
      break;
    case BinOp::Ne:
      Op = Opcode::CmpNe;
      break;
    case BinOp::Lt:
      Op = Opcode::CmpLt;
      break;
    case BinOp::Le:
      Op = Opcode::CmpLe;
      break;
    case BinOp::Gt:
      Op = Opcode::CmpGt;
      break;
    case BinOp::Ge:
      Op = Opcode::CmpGe;
      break;
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Mul:
    case BinOp::Div:
    case BinOp::Mod: {
      // The tree splits the arithmetic path on the *static* expression
      // type; transcribe that decision into the opcode.
      bool Real = B.type() == ScalarKind::Real;
      switch (B.op()) {
      case BinOp::Add:
        Op = Real ? Opcode::AddR : Opcode::AddI;
        break;
      case BinOp::Sub:
        Op = Real ? Opcode::SubR : Opcode::SubI;
        break;
      case BinOp::Mul:
        Op = Real ? Opcode::MulR : Opcode::MulI;
        break;
      case BinOp::Div:
        Op = Real ? Opcode::DivR : Opcode::DivI;
        break;
      case BinOp::Mod:
        assert(!Real && "real MOD is not in the dialect");
        Op = Opcode::ModI;
        break;
      default:
        SIMDFLAT_UNREACHABLE("not arithmetic");
      }
      break;
    }
    }
    emit(Op, Dst, Dst + 1, Dst + 2);
  }

  void lowerIntrinsic(const IntrinsicExpr &In, int32_t Dst) {
    switch (In.op()) {
    case IntrinsicOp::Max:
    case IntrinsicOp::Min: {
      evalInto(*In.args()[0], Dst + 1);
      evalInto(*In.args()[1], Dst + 2);
      int32_t Flags = (In.op() == IntrinsicOp::Max ? 1 : 0) |
                      (static_cast<int32_t>(In.type()) << 1);
      emit(Opcode::MaxMin, Dst, Dst + 1, Dst + 2, Flags);
      return;
    }
    case IntrinsicOp::Abs:
      evalInto(*In.args()[0], Dst + 1);
      emit(Opcode::AbsOp, Dst, Dst + 1);
      return;
    case IntrinsicOp::Sqrt:
      evalInto(*In.args()[0], Dst + 1);
      emit(Opcode::SqrtOp, Dst, Dst + 1);
      return;
    case IntrinsicOp::LaneIndex:
      emit(Opcode::LaneIdx, Dst);
      return;
    case IntrinsicOp::NumLanes:
      emit(Opcode::NumLanesOp, Dst);
      return;
    case IntrinsicOp::Any:
    case IntrinsicOp::All:
      evalInto(*In.args()[0], Dst + 1);
      emit(Opcode::AnyAll, Dst, Dst + 1, 0,
           In.op() == IntrinsicOp::All ? 1 : 0);
      return;
    case IntrinsicOp::MaxRed:
    case IntrinsicOp::MinRed:
    case IntrinsicOp::SumRed: {
      evalInto(*In.args()[0], Dst + 1);
      int32_t Which = In.op() == IntrinsicOp::MaxRed   ? 0
                      : In.op() == IntrinsicOp::MinRed ? 1
                                                       : 2;
      emit(Opcode::LaneRed, Dst, Dst + 1, 0, Which);
      return;
    }
    case IntrinsicOp::MaxVal:
    case IntrinsicOp::SumVal: {
      const auto *V = cast<VarRef>(In.args()[0].get());
      assert(declOf(V->name()).isArray() && "array reduction of a scalar");
      emit(Opcode::ArrRed, Dst, internSlot(V->name()), 0,
           In.op() == IntrinsicOp::MaxVal ? 0 : 1);
      return;
    }
    }
    SIMDFLAT_UNREACHABLE("bad IntrinsicOp");
  }

  /// Lowers a call; \p Dst < 0 discards the result (CALL statement).
  /// The registry checks precede argument evaluation in the tree, hence
  /// the CallCheck instruction up front.
  void lowerCall(const std::string &Callee,
                 const std::vector<ExprPtr> &Args, int32_t Dst,
                 ScalarKind RetKind) {
    int32_t CalleeIx = internCallee(Callee);
    emit(Opcode::CallCheck, 0, CalleeIx);
    int32_t Base = Dst < 0 ? 0 : Dst + 1;
    std::vector<int32_t> ArgRegs;
    ArgRegs.reserve(Args.size());
    for (size_t I = 0; I < Args.size(); ++I) {
      int32_t R = Base + static_cast<int32_t>(I);
      evalInto(*Args[I], R);
      ArgRegs.push_back(R);
    }
    emit(Opcode::CallOp, Dst, CalleeIx, extraList(ArgRegs),
         static_cast<int32_t>(RetKind));
  }

  //===--------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------===//

  void lowerAssign(const AssignStmt &A) {
    evalInto(A.value(), 0);
    if (const auto *T = dyn_cast<VarRef>(&A.target())) {
      assert(declOf(T->name()).isScalar() && "assignment to whole array");
      emit(Opcode::StVar, internSlot(T->name()), 0);
      return;
    }
    const auto *T = cast<ArrayRef>(&A.target());
    std::vector<int32_t> IdxRegs;
    IdxRegs.reserve(T->indices().size());
    for (size_t I = 0; I < T->indices().size(); ++I) {
      int32_t R = 1 + static_cast<int32_t>(I);
      evalInto(*T->indices()[I], R);
      IdxRegs.push_back(R);
    }
    emit(Opcode::StArr, internSlot(T->name()), 0, extraList(IdxRegs));
  }

  void lowerDo(const DoStmt &D) {
    int32_t C = allocCtl(5); // base 4 loop state + trip counter at C+4
    int32_t LoopId = newLoop("do " + D.indexVar());
    evalInto(D.lo(), 0);
    emit(Opcode::CtlFromReg, C + 0, 0,
         simd() ? internMsg("DO lower bound") : -1);
    evalInto(D.hi(), 0);
    emit(Opcode::CtlFromReg, C + 1, 0,
         simd() ? internMsg("DO upper bound") : -1);
    if (D.step()) {
      evalInto(*D.step(), 0);
      emit(Opcode::CtlFromReg, C + 2, 0,
           simd() ? internMsg("DO step") : -1);
    } else {
      emit(Opcode::CtlImm, C + 2, internInt(1));
    }
    emit(Opcode::CheckStep, C + 2,
         internMsg(simd() ? std::string("DO step of zero")
                          : "DO " + D.indexVar() + " has a step of zero"));
    emit(Opcode::CtlImm, C + 4, internInt(0));
    bool Parallel = !simd() && D.isParallel();
    if (Parallel)
      emit(Opcode::DoBegin, C);
    int32_t IvSlot = internSlot(D.indexVar());
    assert(declOf(D.indexVar()).isScalar() &&
           declOf(D.indexVar()).Kind != ScalarKind::Real &&
           "bad DO index variable");
    int32_t Head = here();
    size_t Test = emit(Opcode::DoTest, C);
    emit(Opcode::LoopIter);
    emit(Opcode::CtlInc, C + 4);
    emit(Opcode::SetIdx, IvSlot, C + 0);
    ++LoopDepth;
    lowerBody(D.body());
    --LoopDepth;
    emit(Opcode::DoStep, C);
    emit(Opcode::Jmp, 0, 0, 0, Head);
    patch(Test, here());
    emit(Opcode::TripRec, C + 4, LoopId);
    // Fortran leaves the index one step past the last iteration; the
    // loop counter exits holding exactly Lo + Trips * Step.
    emit(Opcode::SetIdx, IvSlot, C + 0);
    if (Parallel)
      emit(Opcode::DoEnd, C);
    releaseCtl(C);
  }

  void lowerForallScalar(const ForallStmt &F) {
    int32_t C = allocCtl(3); // lo/hi + trip counter at C+2
    int32_t LoopId = newLoop("forall " + F.indexVar());
    evalInto(F.lo(), 0);
    emit(Opcode::CtlFromReg, C + 0, 0, -1);
    evalInto(F.hi(), 0);
    emit(Opcode::CtlFromReg, C + 1, 0, -1);
    emit(Opcode::CtlImm, C + 2, internInt(0));
    int32_t IvSlot = internSlot(F.indexVar());
    int32_t Head = here();
    size_t Test = emit(Opcode::FaTest, C);
    emit(Opcode::LoopIter);
    emit(Opcode::CtlInc, C + 2);
    emit(Opcode::SetIdx, IvSlot, C + 0);
    size_t MaskBr = 0;
    if (F.mask()) {
      evalInto(*F.mask(), 0);
      MaskBr = emit(Opcode::BrFalse, 0);
    }
    ++LoopDepth;
    lowerBody(F.body());
    --LoopDepth;
    if (F.mask())
      patch(MaskBr, here());
    emit(Opcode::CtlInc, C + 0);
    emit(Opcode::Jmp, 0, 0, 0, Head);
    patch(Test, here());
    emit(Opcode::TripRec, C + 2, LoopId);
    releaseCtl(C);
  }

  void lowerForallSimd(const ForallStmt &F) {
    int32_t C = allocCtl(5); // base 4 layer state + trip counter at C+4
    int32_t LoopId = newLoop("forall " + F.indexVar());
    evalInto(F.lo(), 0);
    emit(Opcode::CtlFromReg, C + 0, 0, internMsg("FORALL lower bound"));
    evalInto(F.hi(), 0);
    emit(Opcode::CtlFromReg, C + 1, 0, internMsg("FORALL upper bound"));
    emit(Opcode::CtlImm, C + 4, internInt(0));
    int32_t IvSlot = internSlot(F.indexVar());
    size_t Begin = emit(Opcode::FaBegin, IvSlot, C);
    int32_t Head = here();
    size_t Test = emit(Opcode::FaLayerTest, C);
    emit(Opcode::LoopIter);
    emit(Opcode::CtlInc, C + 4);
    emit(Opcode::FaLayerMask, IvSlot, C);
    if (F.mask()) {
      evalInto(*F.mask(), 0);
      emit(Opcode::WherePush, 0);
    }
    ++LoopDepth;
    lowerBody(F.body());
    --LoopDepth;
    if (F.mask())
      emit(Opcode::MaskPop);
    emit(Opcode::MaskPop);
    emit(Opcode::CtlInc, C + 2);
    emit(Opcode::Jmp, 0, 0, 0, Head);
    patch(Begin, here());
    patch(Test, here());
    emit(Opcode::TripRec, C + 4, LoopId);
    releaseCtl(C);
  }

  /// Emits the shared IF-shaped diamond after the condition charge and
  /// eval: branch-to-else, then-body, jump-over, else-body.
  void lowerCondBodies(size_t Br, const Body &Then, const Body &Else) {
    lowerBody(Then);
    if (Else.empty()) {
      patch(Br, here());
      return;
    }
    size_t Over = emit(Opcode::Jmp);
    patch(Br, here());
    lowerBody(Else);
    patch(Over, here());
  }

  void lowerStmt(const Stmt &S, const Body &Enclosing,
                 const std::map<int, size_t> &FirstLabelStmt,
                 std::map<int, int32_t> &LabelCode,
                 std::vector<std::pair<size_t, int>> &GotoFixups,
                 size_t StmtIdx) {
    switch (S.kind()) {
    case Stmt::Kind::Assign:
      lowerAssign(*cast<AssignStmt>(&S));
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(&S);
      emit(Opcode::ChargeOp, static_cast<int32_t>(CostKind::CmpOp));
      evalInto(I->cond(), 0);
      size_t Br = simd()
                      ? emit(Opcode::UBrFalse, 0, internMsg("IF condition"))
                      : emit(Opcode::BrFalse, 0);
      lowerCondBodies(Br, I->thenBody(), I->elseBody());
      return;
    }
    case Stmt::Kind::Where: {
      const auto *W = cast<WhereStmt>(&S);
      if (!simd()) {
        // Single lane: WHERE degenerates to IF (but charges LogicOp).
        emit(Opcode::ChargeOp, static_cast<int32_t>(CostKind::LogicOp));
        evalInto(W->cond(), 0);
        size_t Br = emit(Opcode::BrFalse, 0);
        lowerCondBodies(Br, W->thenBody(), W->elseBody());
        return;
      }
      evalInto(W->cond(), 0);
      emit(Opcode::WherePush, 0);
      lowerBody(W->thenBody());
      if (!W->elseBody().empty()) {
        emit(Opcode::WhereFlip);
        lowerBody(W->elseBody());
      }
      emit(Opcode::MaskPop);
      return;
    }
    case Stmt::Kind::Do:
      lowerDo(*cast<DoStmt>(&S));
      return;
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(&S);
      int32_t C = allocCtl(1); // trip counter
      int32_t LoopId = newLoop("while");
      emit(Opcode::CtlImm, C, internInt(0));
      int32_t Head = here();
      evalInto(W->cond(), 0);
      size_t Br =
          simd() ? emit(Opcode::UBrFalse, 0, internMsg("WHILE condition"))
                 : emit(Opcode::BrFalse, 0);
      emit(Opcode::LoopIter);
      emit(Opcode::CtlInc, C);
      ++LoopDepth;
      lowerBody(W->body());
      --LoopDepth;
      emit(Opcode::Jmp, 0, 0, 0, Head);
      patch(Br, here());
      emit(Opcode::TripRec, C, LoopId);
      releaseCtl(C);
      return;
    }
    case Stmt::Kind::Repeat: {
      const auto *R = cast<RepeatStmt>(&S);
      int32_t C = allocCtl(1); // trip counter
      int32_t LoopId = newLoop("repeat");
      emit(Opcode::CtlImm, C, internInt(0));
      int32_t Head = here();
      emit(Opcode::LoopIter);
      emit(Opcode::CtlInc, C);
      ++LoopDepth;
      lowerBody(R->body());
      --LoopDepth;
      evalInto(R->untilCond(), 0);
      // Loop again while the UNTIL condition is false.
      if (simd())
        emit(Opcode::UBrFalse, 0, internMsg("UNTIL condition"), 0, Head);
      else
        emit(Opcode::BrFalse, 0, 0, 0, Head);
      emit(Opcode::TripRec, C, LoopId);
      releaseCtl(C);
      return;
    }
    case Stmt::Kind::Forall:
      if (simd())
        lowerForallSimd(*cast<ForallStmt>(&S));
      else
        lowerForallScalar(*cast<ForallStmt>(&S));
      return;
    case Stmt::Kind::Call: {
      const auto *C = cast<CallStmt>(&S);
      lowerCall(C->callee(), C->args(), -1, ScalarKind::Int);
      return;
    }
    case Stmt::Kind::Label: {
      if (simd()) {
        emit(Opcode::TrapMsg,
             static_cast<int32_t>(interp::TrapKind::InvalidProgram),
             simdGotoMsg());
        return;
      }
      const auto *L = cast<LabelStmt>(&S);
      auto It = FirstLabelStmt.find(L->label());
      if (It != FirstLabelStmt.end() && It->second == StmtIdx)
        LabelCode[L->label()] = here();
      return;
    }
    case Stmt::Kind::Goto: {
      const auto *G = cast<GotoStmt>(&S);
      if (simd()) {
        emit(Opcode::TrapMsg,
             static_cast<int32_t>(interp::TrapKind::InvalidProgram),
             simdGotoMsg());
        return;
      }
      size_t Skip = 0;
      if (G->cond()) {
        emit(Opcode::ChargeOp, static_cast<int32_t>(CostKind::CmpOp));
        evalInto(*G->cond(), 0);
        Skip = emit(Opcode::BrFalse, 0);
      }
      emit(Opcode::LoopIter);
      auto It = FirstLabelStmt.find(G->label());
      if (It == FirstLabelStmt.end()) {
        // The tree only discovers the missing label when the branch is
        // taken - after the loop-iteration charge. Same here.
        emit(Opcode::TrapMsg,
             static_cast<int32_t>(interp::TrapKind::InvalidProgram),
             internMsg("GOTO target not in the same body"));
      } else {
        auto Known = LabelCode.find(G->label());
        if (Known != LabelCode.end())
          emit(Opcode::Jmp, 0, 0, 0, Known->second);
        else
          GotoFixups.emplace_back(emit(Opcode::Jmp), G->label());
      }
      if (G->cond())
        patch(Skip, here());
      (void)Enclosing;
      return;
    }
    }
    SIMDFLAT_UNREACHABLE("bad Stmt kind");
  }

  int32_t simdGotoMsg() {
    return internMsg("GOTO-form control flow is not executable on the "
                     "SIMD machine; run the front end's loop recovery "
                     "first");
  }

  void lowerBody(const Body &B) {
    // The tree resolves a GOTO to the *first* matching label in its own
    // body; that search is static, so resolve it here.
    std::map<int, size_t> FirstLabelStmt;
    if (!simd())
      for (size_t I = 0; I < B.size(); ++I)
        if (const auto *L = dyn_cast<LabelStmt>(B[I].get()))
          if (!FirstLabelStmt.count(L->label()))
            FirstLabelStmt[L->label()] = I;
    std::map<int, int32_t> LabelCode;
    std::vector<std::pair<size_t, int>> GotoFixups;
    for (size_t I = 0; I < B.size(); ++I) {
      StmtStack.push_back(B[I].get());
      LocDirty = true;
      lowerStmt(*B[I], B, FirstLabelStmt, LabelCode, GotoFixups, I);
      StmtStack.pop_back();
      LocDirty = true;
    }
    for (const auto &[InstrIdx, Label] : GotoFixups) {
      auto It = LabelCode.find(Label);
      assert(It != LabelCode.end() && "forward GOTO to unresolved label");
      patch(InstrIdx, It->second);
    }
  }
};

} // namespace

exec::Program exec::lower(const ir::Program &P, Mode M) {
  return Lowering(P, M).run();
}
