//===- exec/SimdKernels.h - Lane-loop kernel policies ----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dense per-lane arithmetic loops of the SIMD evaluation core,
/// factored into interchangeable kernel policies so the one Core
/// template can retarget:
///
///  * Generic  - the plain scalar-per-lane loops the bytecode engine has
///               always run; the bit-exact reference the others must
///               match.
///  * Portable - the HostSimd fallback: hand-rolled array-of-width
///               blocks (width kern::PortableWidth) that a vectorizing
///               compiler turns into whatever the target offers. Same
///               scalar op per lane, so bit-identical by construction.
///  * Avx2     - real 256-bit vector lanes (4 x int64 / 4 x double),
///               compiled only in translation units built with -mavx2.
///               Masked commits are vector blends; every op is chosen
///               for bit-identity with the scalar forms (ordered-quiet
///               compare predicates, blend-based max/min matching
///               std::max/std::min NaN ordering, blend-to-zero for the
///               guarded divide).
///
/// Only trap-free dense math lives here. Anything that collects faulting
/// lane sets (integer divide, gather/scatter bounds checks), calls out
/// (externs), or reduces in lane order (SUM must accumulate left to
/// right for FP bit-identity) stays in the generic Core dispatch - that
/// is the scalar-fallback rule DESIGN.md §13 documents.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_EXEC_SIMDKERNELS_H
#define SIMDFLAT_EXEC_SIMDKERNELS_H

#include "exec/Bytecode.h"
#include "support/Error.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#ifdef __AVX2__
#include <immintrin.h>
#endif

namespace simdflat {
namespace exec {
namespace kern {

/// Block width of the portable array-of-width fallback.
constexpr size_t PortableWidth = 4;

//===----------------------------------------------------------------------===//
// Generic: the reference scalar-per-lane loops.
//===----------------------------------------------------------------------===//

struct Generic {
  static constexpr const char *Name = "generic";

  static void negI(int64_t *O, const int64_t *A, size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = -A[L];
  }
  static void negR(double *O, const double *A, size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = -A[L];
  }
  static void notI(int64_t *O, const int64_t *A, size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = !A[L];
  }
  static void logicOp(bool IsAnd, int64_t *O, const int64_t *A,
                      const int64_t *B, size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = IsAnd ? (A[L] && B[L]) : (A[L] || B[L]);
  }
  static void cmpRR(Opcode Op, int64_t *O, const double *A, const double *B,
                    size_t N) {
    switch (Op) {
    case Opcode::CmpEq:
      for (size_t L = 0; L < N; ++L)
        O[L] = A[L] == B[L];
      break;
    case Opcode::CmpNe:
      for (size_t L = 0; L < N; ++L)
        O[L] = A[L] != B[L];
      break;
    case Opcode::CmpLt:
      for (size_t L = 0; L < N; ++L)
        O[L] = A[L] < B[L];
      break;
    case Opcode::CmpLe:
      for (size_t L = 0; L < N; ++L)
        O[L] = A[L] <= B[L];
      break;
    case Opcode::CmpGt:
      for (size_t L = 0; L < N; ++L)
        O[L] = A[L] > B[L];
      break;
    case Opcode::CmpGe:
      for (size_t L = 0; L < N; ++L)
        O[L] = A[L] >= B[L];
      break;
    default:
      SIMDFLAT_UNREACHABLE("not a comparison");
    }
  }
  static void addI(int64_t *O, const int64_t *A, const int64_t *B,
                   size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = A[L] + B[L];
  }
  static void subI(int64_t *O, const int64_t *A, const int64_t *B,
                   size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = A[L] - B[L];
  }
  static void mulI(int64_t *O, const int64_t *A, const int64_t *B,
                   size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = A[L] * B[L];
  }
  static void addR(double *O, const double *A, const double *B, size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = A[L] + B[L];
  }
  static void subR(double *O, const double *A, const double *B, size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = A[L] - B[L];
  }
  static void mulR(double *O, const double *A, const double *B, size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = A[L] * B[L];
  }
  /// The guarded divide: a zero divisor yields 0.0 (active-lane zero
  /// divisors do not trap on the real path; the language defines the
  /// quotient away instead).
  static void divR(double *O, const double *A, const double *B, size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = B[L] == 0.0 ? 0.0 : A[L] / B[L];
  }
  static void minmaxI(bool IsMax, int64_t *O, const int64_t *A,
                      const int64_t *B, size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = IsMax ? std::max(A[L], B[L]) : std::min(A[L], B[L]);
  }
  static void minmaxR(bool IsMax, double *O, const double *A,
                      const double *B, size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = IsMax ? std::max(A[L], B[L]) : std::min(A[L], B[L]);
  }
  static void absI(int64_t *O, const int64_t *A, size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = std::llabs(A[L]);
  }
  static void absR(double *O, const double *A, size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = std::fabs(A[L]);
  }
  /// True when any lane is strictly negative (NaN lanes are not). The
  /// sqrt fast path uses this to skip the trap-collecting sweep.
  static bool anyNegative(const double *A, size_t N) {
    for (size_t L = 0; L < N; ++L)
      if (A[L] < 0.0)
        return true;
    return false;
  }
  /// Plain sqrt over every lane; only called once anyNegative said no
  /// lane traps (so no lane needs the negative-input guard).
  static void sqrtR(double *O, const double *A, size_t N) {
    for (size_t L = 0; L < N; ++L)
      O[L] = std::sqrt(A[L]);
  }
  /// Masked commit: lanes with a zero mask byte keep their old value.
  static void maskedStoreI(int64_t *Dst, const int64_t *Src,
                           const uint8_t *M, size_t N) {
    for (size_t L = 0; L < N; ++L)
      if (M[L])
        Dst[L] = Src[L];
  }
  static void maskedStoreR(double *Dst, const double *Src, const uint8_t *M,
                           size_t N) {
    for (size_t L = 0; L < N; ++L)
      if (M[L])
        Dst[L] = Src[L];
  }
};

//===----------------------------------------------------------------------===//
// Portable: hand-rolled array-of-width blocks (the HostSimd fallback).
//===----------------------------------------------------------------------===//

struct Portable {
  static constexpr const char *Name = "portable";

// Fixed-width inner blocks with a scalar tail: each op is the same
// scalar expression per lane as Generic, so results are bit-identical;
// the block shape is what lets a vectorizing compiler pick the target's
// native width.
#define SIMDFLAT_PORTABLE_MAP1(NAME, T, EXPR)                              \
  static void NAME(T *O, const T *A, size_t N) {                           \
    size_t L = 0;                                                          \
    for (; L + PortableWidth <= N; L += PortableWidth)                     \
      for (size_t K = 0; K < PortableWidth; ++K) {                         \
        const T a = A[L + K];                                              \
        O[L + K] = (EXPR);                                                 \
      }                                                                    \
    for (; L < N; ++L) {                                                   \
      const T a = A[L];                                                    \
      O[L] = (EXPR);                                                       \
    }                                                                      \
  }
#define SIMDFLAT_PORTABLE_MAP2(NAME, T, EXPR)                              \
  static void NAME(T *O, const T *A, const T *B, size_t N) {               \
    size_t L = 0;                                                          \
    for (; L + PortableWidth <= N; L += PortableWidth)                     \
      for (size_t K = 0; K < PortableWidth; ++K) {                         \
        const T a = A[L + K], b = B[L + K];                                \
        O[L + K] = (EXPR);                                                 \
      }                                                                    \
    for (; L < N; ++L) {                                                   \
      const T a = A[L], b = B[L];                                          \
      O[L] = (EXPR);                                                       \
    }                                                                      \
  }

  SIMDFLAT_PORTABLE_MAP1(negI, int64_t, -a)
  SIMDFLAT_PORTABLE_MAP1(negR, double, -a)
  SIMDFLAT_PORTABLE_MAP1(notI, int64_t, !a)
  SIMDFLAT_PORTABLE_MAP2(addI, int64_t, a + b)
  SIMDFLAT_PORTABLE_MAP2(subI, int64_t, a - b)
  SIMDFLAT_PORTABLE_MAP2(mulI, int64_t, a *b)
  SIMDFLAT_PORTABLE_MAP2(addR, double, a + b)
  SIMDFLAT_PORTABLE_MAP2(subR, double, a - b)
  SIMDFLAT_PORTABLE_MAP2(mulR, double, a *b)
  SIMDFLAT_PORTABLE_MAP2(divR, double, b == 0.0 ? 0.0 : a / b)
  SIMDFLAT_PORTABLE_MAP1(absI, int64_t, std::llabs(a))
  SIMDFLAT_PORTABLE_MAP1(absR, double, std::fabs(a))
  SIMDFLAT_PORTABLE_MAP1(sqrtR, double, std::sqrt(a))

#undef SIMDFLAT_PORTABLE_MAP1
#undef SIMDFLAT_PORTABLE_MAP2

  static void logicOp(bool IsAnd, int64_t *O, const int64_t *A,
                      const int64_t *B, size_t N) {
    Generic::logicOp(IsAnd, O, A, B, N);
  }
  static void cmpRR(Opcode Op, int64_t *O, const double *A, const double *B,
                    size_t N) {
    Generic::cmpRR(Op, O, A, B, N);
  }
  static void minmaxI(bool IsMax, int64_t *O, const int64_t *A,
                      const int64_t *B, size_t N) {
    Generic::minmaxI(IsMax, O, A, B, N);
  }
  static void minmaxR(bool IsMax, double *O, const double *A,
                      const double *B, size_t N) {
    Generic::minmaxR(IsMax, O, A, B, N);
  }
  static bool anyNegative(const double *A, size_t N) {
    return Generic::anyNegative(A, N);
  }
  static void maskedStoreI(int64_t *Dst, const int64_t *Src,
                           const uint8_t *M, size_t N) {
    Generic::maskedStoreI(Dst, Src, M, N);
  }
  static void maskedStoreR(double *Dst, const double *Src, const uint8_t *M,
                           size_t N) {
    Generic::maskedStoreR(Dst, Src, M, N);
  }
};

//===----------------------------------------------------------------------===//
// Avx2: 256-bit vector lanes. Only in -mavx2 translation units.
//===----------------------------------------------------------------------===//

#ifdef __AVX2__

struct Avx2 {
  static constexpr const char *Name = "avx2";
  static constexpr size_t W = 4; // int64/double lanes per 256-bit vector

  static __m256i loadI(const int64_t *P) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(P));
  }
  static void storeI(int64_t *P, __m256i V) {
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(P), V);
  }

  /// 0/1 int64 lanes from an all-ones/all-zeros compare mask.
  static __m256i boolsFromMask(__m256i M) {
    return _mm256_and_si256(M, _mm256_set1_epi64x(1));
  }

  static void negI(int64_t *O, const int64_t *A, size_t N) {
    size_t L = 0;
    const __m256i Z = _mm256_setzero_si256();
    for (; L + W <= N; L += W)
      storeI(O + L, _mm256_sub_epi64(Z, loadI(A + L)));
    for (; L < N; ++L)
      O[L] = -A[L];
  }
  static void negR(double *O, const double *A, size_t N) {
    size_t L = 0;
    const __m256d Sign = _mm256_set1_pd(-0.0);
    for (; L + W <= N; L += W)
      _mm256_storeu_pd(O + L,
                       _mm256_xor_pd(_mm256_loadu_pd(A + L), Sign));
    for (; L < N; ++L)
      O[L] = -A[L];
  }
  static void notI(int64_t *O, const int64_t *A, size_t N) {
    size_t L = 0;
    const __m256i Z = _mm256_setzero_si256();
    for (; L + W <= N; L += W)
      storeI(O + L,
             boolsFromMask(_mm256_cmpeq_epi64(loadI(A + L), Z)));
    for (; L < N; ++L)
      O[L] = !A[L];
  }
  static void logicOp(bool IsAnd, int64_t *O, const int64_t *A,
                      const int64_t *B, size_t N) {
    size_t L = 0;
    const __m256i Z = _mm256_setzero_si256();
    const __m256i Ones = _mm256_set1_epi64x(-1);
    for (; L + W <= N; L += W) {
      // Truthiness masks: all-ones where the operand is nonzero.
      __m256i TA = _mm256_xor_si256(_mm256_cmpeq_epi64(loadI(A + L), Z),
                                    Ones);
      __m256i TB = _mm256_xor_si256(_mm256_cmpeq_epi64(loadI(B + L), Z),
                                    Ones);
      __m256i M = IsAnd ? _mm256_and_si256(TA, TB)
                        : _mm256_or_si256(TA, TB);
      storeI(O + L, boolsFromMask(M));
    }
    for (; L < N; ++L)
      O[L] = IsAnd ? (A[L] && B[L]) : (A[L] || B[L]);
  }

  /// One compare predicate, vectorized. The ordered-quiet (OQ)
  /// predicates return false on NaN operands exactly like the scalar
  /// <, <=, >, >=, == operators; != uses unordered-quiet (UQ) because
  /// scalar != is true when either side is NaN.
  template <int Pred>
  static void cmpLoop(int64_t *O, const double *A, const double *B,
                      size_t N) {
    size_t L = 0;
    for (; L + W <= N; L += W) {
      __m256d M = _mm256_cmp_pd(_mm256_loadu_pd(A + L),
                                _mm256_loadu_pd(B + L), Pred);
      storeI(O + L, boolsFromMask(_mm256_castpd_si256(M)));
    }
    // Scalar tail mirrors Generic::cmpRR exactly.
    for (; L < N; ++L) {
      double a = A[L], b = B[L];
      switch (Pred) {
      case _CMP_EQ_OQ:
        O[L] = a == b;
        break;
      case _CMP_NEQ_UQ:
        O[L] = a != b;
        break;
      case _CMP_LT_OQ:
        O[L] = a < b;
        break;
      case _CMP_LE_OQ:
        O[L] = a <= b;
        break;
      case _CMP_GT_OQ:
        O[L] = a > b;
        break;
      case _CMP_GE_OQ:
        O[L] = a >= b;
        break;
      }
    }
  }
  static void cmpRR(Opcode Op, int64_t *O, const double *A, const double *B,
                    size_t N) {
    switch (Op) {
    case Opcode::CmpEq:
      cmpLoop<_CMP_EQ_OQ>(O, A, B, N);
      break;
    case Opcode::CmpNe:
      cmpLoop<_CMP_NEQ_UQ>(O, A, B, N);
      break;
    case Opcode::CmpLt:
      cmpLoop<_CMP_LT_OQ>(O, A, B, N);
      break;
    case Opcode::CmpLe:
      cmpLoop<_CMP_LE_OQ>(O, A, B, N);
      break;
    case Opcode::CmpGt:
      cmpLoop<_CMP_GT_OQ>(O, A, B, N);
      break;
    case Opcode::CmpGe:
      cmpLoop<_CMP_GE_OQ>(O, A, B, N);
      break;
    default:
      SIMDFLAT_UNREACHABLE("not a comparison");
    }
  }

  static void addI(int64_t *O, const int64_t *A, const int64_t *B,
                   size_t N) {
    size_t L = 0;
    for (; L + W <= N; L += W)
      storeI(O + L, _mm256_add_epi64(loadI(A + L), loadI(B + L)));
    for (; L < N; ++L)
      O[L] = A[L] + B[L];
  }
  static void subI(int64_t *O, const int64_t *A, const int64_t *B,
                   size_t N) {
    size_t L = 0;
    for (; L + W <= N; L += W)
      storeI(O + L, _mm256_sub_epi64(loadI(A + L), loadI(B + L)));
    for (; L < N; ++L)
      O[L] = A[L] - B[L];
  }
  static void mulI(int64_t *O, const int64_t *A, const int64_t *B,
                   size_t N) {
    size_t L = 0;
    for (; L + W <= N; L += W) {
      // AVX2 has no 64x64 multiply; build the low 64 bits from 32-bit
      // partial products: lo(a)*lo(b) + ((lo(a)*hi(b)+hi(a)*lo(b))<<32).
      // Two's-complement wrap makes this exact for signed lanes too.
      __m256i VA = loadI(A + L), VB = loadI(B + L);
      __m256i LoLo = _mm256_mul_epu32(VA, VB);
      __m256i AHi = _mm256_srli_epi64(VA, 32);
      __m256i BHi = _mm256_srli_epi64(VB, 32);
      __m256i Cross = _mm256_add_epi64(_mm256_mul_epu32(VA, BHi),
                                       _mm256_mul_epu32(AHi, VB));
      storeI(O + L,
             _mm256_add_epi64(LoLo, _mm256_slli_epi64(Cross, 32)));
    }
    for (; L < N; ++L)
      O[L] = A[L] * B[L];
  }

  static void addR(double *O, const double *A, const double *B, size_t N) {
    size_t L = 0;
    for (; L + W <= N; L += W)
      _mm256_storeu_pd(
          O + L, _mm256_add_pd(_mm256_loadu_pd(A + L),
                               _mm256_loadu_pd(B + L)));
    for (; L < N; ++L)
      O[L] = A[L] + B[L];
  }
  static void subR(double *O, const double *A, const double *B, size_t N) {
    size_t L = 0;
    for (; L + W <= N; L += W)
      _mm256_storeu_pd(
          O + L, _mm256_sub_pd(_mm256_loadu_pd(A + L),
                               _mm256_loadu_pd(B + L)));
    for (; L < N; ++L)
      O[L] = A[L] - B[L];
  }
  static void mulR(double *O, const double *A, const double *B, size_t N) {
    size_t L = 0;
    for (; L + W <= N; L += W)
      _mm256_storeu_pd(
          O + L, _mm256_mul_pd(_mm256_loadu_pd(A + L),
                               _mm256_loadu_pd(B + L)));
    for (; L < N; ++L)
      O[L] = A[L] * B[L];
  }
  static void divR(double *O, const double *A, const double *B, size_t N) {
    size_t L = 0;
    const __m256d Z = _mm256_setzero_pd();
    for (; L + W <= N; L += W) {
      __m256d VB = _mm256_loadu_pd(B + L);
      __m256d Q = _mm256_div_pd(_mm256_loadu_pd(A + L), VB);
      // Zero divisors (either sign of zero, like the scalar == 0.0
      // test) blend the quotient away to 0.0.
      __m256d IsZ = _mm256_cmp_pd(VB, Z, _CMP_EQ_OQ);
      _mm256_storeu_pd(O + L, _mm256_blendv_pd(Q, Z, IsZ));
    }
    for (; L < N; ++L)
      O[L] = B[L] == 0.0 ? 0.0 : A[L] / B[L];
  }

  static void minmaxI(bool IsMax, int64_t *O, const int64_t *A,
                      const int64_t *B, size_t N) {
    size_t L = 0;
    for (; L + W <= N; L += W) {
      __m256i VA = loadI(A + L), VB = loadI(B + L);
      __m256i M = IsMax ? _mm256_cmpgt_epi64(VA, VB)
                        : _mm256_cmpgt_epi64(VB, VA);
      storeI(O + L, _mm256_blendv_epi8(VB, VA, M));
    }
    for (; L < N; ++L)
      O[L] = IsMax ? std::max(A[L], B[L]) : std::min(A[L], B[L]);
  }
  static void minmaxR(bool IsMax, double *O, const double *A,
                      const double *B, size_t N) {
    size_t L = 0;
    for (; L + W <= N; L += W) {
      __m256d VA = _mm256_loadu_pd(A + L), VB = _mm256_loadu_pd(B + L);
      // Not _mm256_max_pd/_mm256_min_pd: their NaN/signed-zero rules
      // differ from std::max/std::min. std::max(a,b) is a<b ? b : a and
      // std::min(a,b) is b<a ? b : a; with an ordered compare both
      // return a when either side is NaN, exactly like the blends here.
      __m256d M = IsMax ? _mm256_cmp_pd(VA, VB, _CMP_LT_OQ)
                        : _mm256_cmp_pd(VB, VA, _CMP_LT_OQ);
      _mm256_storeu_pd(O + L, _mm256_blendv_pd(VA, VB, M));
    }
    for (; L < N; ++L)
      O[L] = IsMax ? std::max(A[L], B[L]) : std::min(A[L], B[L]);
  }

  static void absI(int64_t *O, const int64_t *A, size_t N) {
    size_t L = 0;
    const __m256i Z = _mm256_setzero_si256();
    for (; L + W <= N; L += W) {
      __m256i V = loadI(A + L);
      // abs(x) = (x ^ m) - m with m = all-ones when x < 0.
      __m256i M = _mm256_cmpgt_epi64(Z, V);
      storeI(O + L, _mm256_sub_epi64(_mm256_xor_si256(V, M), M));
    }
    for (; L < N; ++L)
      O[L] = std::llabs(A[L]);
  }
  static void absR(double *O, const double *A, size_t N) {
    size_t L = 0;
    const __m256d Sign = _mm256_set1_pd(-0.0);
    for (; L + W <= N; L += W)
      _mm256_storeu_pd(
          O + L, _mm256_andnot_pd(Sign, _mm256_loadu_pd(A + L)));
    for (; L < N; ++L)
      O[L] = std::fabs(A[L]);
  }

  static bool anyNegative(const double *A, size_t N) {
    size_t L = 0;
    const __m256d Z = _mm256_setzero_pd();
    for (; L + W <= N; L += W) {
      __m256d M = _mm256_cmp_pd(_mm256_loadu_pd(A + L), Z, _CMP_LT_OQ);
      if (_mm256_movemask_pd(M) != 0)
        return true;
    }
    for (; L < N; ++L)
      if (A[L] < 0.0)
        return true;
    return false;
  }
  static void sqrtR(double *O, const double *A, size_t N) {
    size_t L = 0;
    for (; L + W <= N; L += W)
      _mm256_storeu_pd(O + L, _mm256_sqrt_pd(_mm256_loadu_pd(A + L)));
    // _mm256_sqrt_pd is correctly rounded, same as std::sqrt.
    for (; L < N; ++L)
      O[L] = std::sqrt(A[L]);
  }

  /// Widens 4 mask bytes to all-ones/all-zeros int64 lanes.
  static __m256i widenMask(const uint8_t *M) {
    uint32_t Packed;
    std::memcpy(&Packed, M, sizeof(Packed));
    __m256i Bytes = _mm256_cvtepu8_epi64(
        _mm_cvtsi32_si128(static_cast<int>(Packed)));
    return _mm256_xor_si256(
        _mm256_cmpeq_epi64(Bytes, _mm256_setzero_si256()),
        _mm256_set1_epi64x(-1));
  }
  static void maskedStoreI(int64_t *Dst, const int64_t *Src,
                           const uint8_t *M, size_t N) {
    size_t L = 0;
    for (; L + W <= N; L += W) {
      __m256i Sel = widenMask(M + L);
      storeI(Dst + L,
             _mm256_blendv_epi8(loadI(Dst + L), loadI(Src + L), Sel));
    }
    for (; L < N; ++L)
      if (M[L])
        Dst[L] = Src[L];
  }
  static void maskedStoreR(double *Dst, const double *Src, const uint8_t *M,
                           size_t N) {
    size_t L = 0;
    for (; L + W <= N; L += W) {
      __m256d Sel = _mm256_castsi256_pd(widenMask(M + L));
      _mm256_storeu_pd(Dst + L,
                       _mm256_blendv_pd(_mm256_loadu_pd(Dst + L),
                                        _mm256_loadu_pd(Src + L), Sel));
    }
    for (; L < N; ++L)
      if (M[L])
        Dst[L] = Src[L];
  }
};

#endif // __AVX2__

} // namespace kern
} // namespace exec
} // namespace simdflat

#endif // SIMDFLAT_EXEC_SIMDKERNELS_H
