//===- exec/Disassembler.cpp ----------------------------------*- C++ -*-===//

#include "exec/Bytecode.h"

#include "interp/Trap.h"
#include "support/Error.h"

#include <cstdio>

using namespace simdflat;
using namespace simdflat::exec;

const char *exec::modeName(Mode M) {
  return M == Mode::Scalar ? "scalar" : "simd";
}

const char *exec::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::LdInt:
    return "ld.int";
  case Opcode::LdReal:
    return "ld.real";
  case Opcode::LdBool:
    return "ld.bool";
  case Opcode::LdVar:
    return "ld.var";
  case Opcode::Gather:
    return "gather";
  case Opcode::StVar:
    return "st.var";
  case Opcode::StArr:
    return "st.arr";
  case Opcode::SetIdx:
    return "set.idx";
  case Opcode::Neg:
    return "neg";
  case Opcode::NotOp:
    return "not";
  case Opcode::AndOp:
    return "and";
  case Opcode::OrOp:
    return "or";
  case Opcode::CmpEq:
    return "cmp.eq";
  case Opcode::CmpNe:
    return "cmp.ne";
  case Opcode::CmpLt:
    return "cmp.lt";
  case Opcode::CmpLe:
    return "cmp.le";
  case Opcode::CmpGt:
    return "cmp.gt";
  case Opcode::CmpGe:
    return "cmp.ge";
  case Opcode::AddI:
    return "add.i";
  case Opcode::SubI:
    return "sub.i";
  case Opcode::MulI:
    return "mul.i";
  case Opcode::DivI:
    return "div.i";
  case Opcode::ModI:
    return "mod.i";
  case Opcode::AddR:
    return "add.r";
  case Opcode::SubR:
    return "sub.r";
  case Opcode::MulR:
    return "mul.r";
  case Opcode::DivR:
    return "div.r";
  case Opcode::MaxMin:
    return "maxmin";
  case Opcode::AbsOp:
    return "abs";
  case Opcode::SqrtOp:
    return "sqrt";
  case Opcode::LaneIdx:
    return "laneindex";
  case Opcode::NumLanesOp:
    return "numlanes";
  case Opcode::AnyAll:
    return "anyall";
  case Opcode::LaneRed:
    return "lanered";
  case Opcode::ArrRed:
    return "arrred";
  case Opcode::CallCheck:
    return "call.check";
  case Opcode::CallOp:
    return "call";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::BrFalse:
    return "br.false";
  case Opcode::UBrFalse:
    return "ubr.false";
  case Opcode::ChargeOp:
    return "charge";
  case Opcode::LoopIter:
    return "loop.iter";
  case Opcode::TrapMsg:
    return "trap";
  case Opcode::Halt:
    return "halt";
  case Opcode::CtlFromReg:
    return "ctl.fromreg";
  case Opcode::CtlImm:
    return "ctl.imm";
  case Opcode::CheckStep:
    return "check.step";
  case Opcode::CtlInc:
    return "ctl.inc";
  case Opcode::TripRec:
    return "trip.rec";
  case Opcode::DoBegin:
    return "do.begin";
  case Opcode::DoTest:
    return "do.test";
  case Opcode::DoStep:
    return "do.step";
  case Opcode::DoEnd:
    return "do.end";
  case Opcode::FaTest:
    return "fa.test";
  case Opcode::FaBegin:
    return "fa.begin";
  case Opcode::FaLayerTest:
    return "fa.layertest";
  case Opcode::FaLayerMask:
    return "fa.layermask";
  case Opcode::WherePush:
    return "where.push";
  case Opcode::WhereFlip:
    return "where.flip";
  case Opcode::MaskPop:
    return "mask.pop";
  }
  SIMDFLAT_UNREACHABLE("bad Opcode");
}

namespace {

/// Human-oriented annotation for operands that index a pool.
std::string annotate(const Program &P, const Instr &I) {
  auto Slot = [&](int32_t S) { return " ; " + P.SlotNames[S]; };
  switch (I.Op) {
  case Opcode::LdInt:
  case Opcode::CtlImm:
    return " ; " + std::to_string(P.IntPool[I.B]);
  case Opcode::LdReal:
    return " ; " + std::to_string(P.RealPool[I.B]);
  case Opcode::LdVar:
  case Opcode::Gather:
    return Slot(I.B);
  case Opcode::StVar:
  case Opcode::StArr:
  case Opcode::SetIdx:
  case Opcode::FaBegin:
  case Opcode::FaLayerMask:
    return Slot(I.A);
  case Opcode::ArrRed:
    return Slot(I.B);
  case Opcode::CallCheck:
  case Opcode::CallOp:
    return " ; " + P.Callees[I.B];
  case Opcode::TrapMsg:
    // A is a TrapKind, not a register: show its name so a reader does
    // not chase a phantom register index.
    return " ; " +
           std::string(interp::trapKindName(
               static_cast<interp::TrapKind>(I.A))) +
           " \"" + P.Msgs[I.B] + "\"";
  case Opcode::CheckStep:
    return " ; \"" + P.Msgs[I.B] + "\"";
  case Opcode::UBrFalse:
    // B is the uniformity-violation message index.
    return " ; \"" + P.Msgs[I.B] + "\"";
  case Opcode::CtlFromReg:
    // C names the uniformity message in simd mode; scalar lowering
    // leaves it -1 (no message, nothing to symbolize).
    return I.C >= 0 ? " ; \"" + P.Msgs[I.C] + "\"" : std::string();
  case Opcode::TripRec:
    return " ; " + P.LoopNames[I.B];
  default:
    return {};
  }
}

} // namespace

std::string exec::disassemble(const Program &P) {
  std::string Out;
  Out += "program '" + P.ProgName + "' mode=" + modeName(P.M) +
         " regs=" + std::to_string(P.NumRegs) +
         " ctl=" + std::to_string(P.NumCtl) +
         " code=" + std::to_string(P.Code.size()) + "\n";
  for (size_t PC = 0; PC < P.Code.size(); ++PC) {
    const Instr &I = P.Code[PC];
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "%5zu: %-13s %6d %6d %6d %6d", PC,
                  opcodeName(I.Op), I.A, I.B, I.C, I.D);
    Out += Buf;
    Out += annotate(P, I);
    Out += '\n';
  }
  return Out;
}
