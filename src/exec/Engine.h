//===- exec/Engine.h - Bytecode evaluation core ----------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One evaluation core for lowered programs, parameterized by execution
/// policy: the scalar policy runs single-lane ScalVal registers (and,
/// with a ParallelSlice, one MIMD processor); the SIMD policy runs
/// structure-of-arrays lane vectors under a machine::MaskStack. Both
/// entry points throw interp::TrapException on a program fault - the
/// public interpreters catch it and return the Trap through Expected,
/// exactly like their tree-walking paths.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_EXEC_ENGINE_H
#define SIMDFLAT_EXEC_ENGINE_H

#include "exec/Bytecode.h"
#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"

#include <optional>

namespace simdflat {
namespace exec {

/// Runs a Scalar-mode program over \p Store. \p Slice / \p RecordWrites
/// mirror ScalarInterp's MIMD hooks. Appends to \p Result; throws
/// interp::TrapException on a fault.
void runScalar(const Program &EP, const machine::MachineConfig &Machine,
               const interp::ExternRegistry *Externs,
               const interp::RunOptions &Opts, interp::DataStore &Store,
               const std::optional<interp::ParallelSlice> &Slice,
               bool RecordWrites, interp::ScalarRunResult &Result);

/// Runs a Simd-mode program over \p Store (lanes = Machine.Gran).
/// Throws interp::TrapException on a fault.
void runSimd(const Program &EP, const machine::MachineConfig &Machine,
             const interp::ExternRegistry *Externs,
             const interp::RunOptions &Opts, interp::DataStore &Store,
             interp::SimdRunResult &Result);

} // namespace exec
} // namespace simdflat

#endif // SIMDFLAT_EXEC_ENGINE_H
