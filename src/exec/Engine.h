//===- exec/Engine.h - Bytecode evaluation core ----------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One evaluation core for lowered programs, parameterized by execution
/// policy: the scalar policy runs single-lane ScalVal registers (and,
/// with a ParallelSlice, one MIMD processor); the SIMD policy runs
/// structure-of-arrays lane vectors under a machine::MaskStack. Both
/// entry points throw interp::TrapException on a program fault - the
/// public interpreters catch it and return the Trap through Expected,
/// exactly like their tree-walking paths.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_EXEC_ENGINE_H
#define SIMDFLAT_EXEC_ENGINE_H

#include "exec/Bytecode.h"
#include "interp/ScalarInterp.h"
#include "interp/SimdInterp.h"

#include <optional>

namespace simdflat {
namespace exec {

/// Runs a Scalar-mode program over \p Store. \p Slice / \p RecordWrites
/// mirror ScalarInterp's MIMD hooks. Appends to \p Result; throws
/// interp::TrapException on a fault.
void runScalar(const Program &EP, const machine::MachineConfig &Machine,
               const interp::ExternRegistry *Externs,
               const interp::RunOptions &Opts, interp::DataStore &Store,
               const std::optional<interp::ParallelSlice> &Slice,
               bool RecordWrites, interp::ScalarRunResult &Result);

/// Runs a Simd-mode program over \p Store (lanes = Machine.Gran).
/// Throws interp::TrapException on a fault.
void runSimd(const Program &EP, const machine::MachineConfig &Machine,
             const interp::ExternRegistry *Externs,
             const interp::RunOptions &Opts, interp::DataStore &Store,
             interp::SimdRunResult &Result);

/// Runs a Simd-mode program with the host-SIMD backend: the same
/// evaluation core as runSimd, but the dense per-lane arithmetic loops
/// run through hardware vector kernels (AVX2 when the build detected
/// it, the portable array-of-width fallback otherwise). Observable
/// behavior - stores, stats, traces, traps, per-lane fault sets - is
/// bit-identical to runSimd; only wall-clock time differs. Throws
/// interp::TrapException on a fault.
void runSimdHost(const Program &EP, const machine::MachineConfig &Machine,
                 const interp::ExternRegistry *Externs,
                 const interp::RunOptions &Opts, interp::DataStore &Store,
                 interp::SimdRunResult &Result);

/// Which kernel set runSimdHost executes: "avx2" or "portable".
/// Decided at configure time (see SIMDFLAT_HOSTSIMD_AVX2 in the
/// top-level CMakeLists) and fixed for the build.
const char *hostSimdArch();

/// Native width (double lanes per vector register) of the host-SIMD
/// kernel set: 4 for AVX2 and for the portable fallback's fixed block.
int hostSimdWidth();

} // namespace exec
} // namespace simdflat

#endif // SIMDFLAT_EXEC_ENGINE_H
