//===- exec/Bytecode.h - Register bytecode for the executors ---*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact register-based bytecode the interpreters execute instead of
/// re-walking the ir:: tree on every iteration. One lowering pass
/// (exec/Lower.h) turns a program into a flat instruction stream; one
/// evaluation core (exec/Engine.h), parameterized by an execution policy
/// (scalar / masked-lockstep SIMD), runs it. The scalar policy also
/// drives the per-processor engines of the MIMD executor.
///
/// Programs are lowered per *mode* because the two tree-walkers differ
/// deliberately (charge order around gathers, WHERE mask handling,
/// uniform-control checks, trap wording); the bytecode preserves those
/// differences instruction by instruction so the tree and bytecode
/// engines are bit-identical in stores, counters, traps and traces.
///
/// Trap locations are prerendered: lowering tracks the enclosing
/// statement chain and tags every instruction with an index into a
/// deduplicated location-string pool, so the hot loop carries no
/// statement stack at all.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_EXEC_BYTECODE_H
#define SIMDFLAT_EXEC_BYTECODE_H

#include <cstdint>
#include <string>
#include <vector>

namespace simdflat {
namespace exec {

/// Which tree-walker the lowering mirrors. Scalar programs also serve
/// the MIMD executor (one scalar engine per processor).
enum class Mode {
  Scalar,
  Simd,
};

/// Returns "scalar" or "simd".
const char *modeName(Mode M);

/// Cost-table entry an instruction charges (resolved against the
/// machine::CostTable at run time, so one lowered program serves every
/// machine configuration).
enum class CostKind : uint8_t {
  IntOp,
  RealOp,
  CmpOp,
  LogicOp,
  MoveOp,
  GatherOp,
  ScatterOp,
  ReduceOp,
  LayerCheck,
  LoopOverhead,
};

/// Opcodes. Operand meaning is per-opcode (see exec/Engine.cpp); the
/// common conventions are A = destination register or control slot,
/// B/C = source registers or pool indices, D = branch target or flags.
enum class Opcode : uint8_t {
  // Loads (uncharged, like literal evaluation in the tree).
  LdInt,      ///< reg[A] = Int IntPool[B]
  LdReal,     ///< reg[A] = Real RealPool[B]
  LdBool,     ///< reg[A] = Bool (B != 0)
  LdVar,      ///< reg[A] = scalar slot B (whole-array reference traps)

  // Memory.
  Gather,     ///< reg[A] = slot B subscripted by Extra[C] index regs
  StVar,      ///< scalar slot A = reg[B] (coerce + MoveOp)
  StArr,      ///< slot A subscripted by Extra[C] = reg[B] (ScatterOp)
  SetIdx,     ///< slot A's integer payload = Ctl[B] (uncharged)

  // Unary.
  Neg,        ///< reg[A] = -reg[B] (charges by runtime kind)
  NotOp,      ///< reg[A] = .NOT. reg[B] (LogicOp)

  // Binary logicals / comparisons (result kind Bool).
  AndOp,      ///< reg[A] = reg[B] .AND. reg[C]
  OrOp,       ///< reg[A] = reg[B] .OR. reg[C]
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,

  // Arithmetic, split by the static expression type like the tree.
  AddI,
  SubI,
  MulI,
  DivI,       ///< traps DivByZero
  ModI,       ///< traps DivByZero
  AddR,
  SubR,
  MulR,
  DivR,       ///< SIMD: silent 0.0 on zero divisor (tree behavior)

  // Intrinsics.
  MaxMin,     ///< reg[A] = max/min(reg[B], reg[C]); D bit0 = IsMax,
              ///< D bit1 = static type is Real
  AbsOp,      ///< reg[A] = ABS(reg[B]) (charges by runtime kind)
  SqrtOp,     ///< reg[A] = SQRT(reg[B]) (DomainError on negative)
  LaneIdx,    ///< reg[A] = LANEINDEX() (uncharged)
  NumLanesOp, ///< reg[A] = NUMLANES() (uncharged)
  AnyAll,     ///< reg[A] = ANY/ALL(reg[B]); D = 1 for ALL
  LaneRed,    ///< reg[A] = MAXRED/MINRED/SUMRED(reg[B]); D = 0/1/2
  ArrRed,     ///< reg[A] = MAXVAL/SUMVAL(slot B); D = 0 for MAXVAL

  // Extern calls: args are Extra[C] regs, callee Callees[B]; result in
  // reg[A] unless A < 0 (CALL statement). D = ScalarKind of the result.
  // CallCheck runs the registry checks *before* argument evaluation,
  // matching the tree's evalCall order.
  CallCheck,
  CallOp,

  // Control flow.
  Jmp,        ///< pc = D
  BrFalse,    ///< scalar: if !reg[A].asBool() pc = D
  UBrFalse,   ///< SIMD: if !uniformBool(reg[A], Msgs[B]) pc = D
  ChargeOp,   ///< charge(cost A) - IF/WHERE/GOTO condition charges
  LoopIter,   ///< countLoopIteration() (limit check + LoopOverhead)
  TrapMsg,    ///< trap(TrapKind A, Msgs[B])
  Halt,       ///< end of program

  // Control slots (int64 loop state, indices into a Ctl array).
  CtlFromReg, ///< Ctl[A] = reg[B]; SIMD checks uniformity with Msgs[C]
  CtlImm,     ///< Ctl[A] = IntPool[B] (default DO step; uncharged)
  CheckStep,  ///< if Ctl[A] == 0 trap InvalidProgram Msgs[B]
  CtlInc,     ///< Ctl[A] += 1
  TripRec,    ///< record Ctl[A] into loop B's trip histogram (uncharged
              ///< telemetry: no cost, no fuel, no observable effect)

  // DO loops over ctl base A: {A+0 = cur, A+1 = hi, A+2 = step,
  // A+3 = sliced flag (scalar parallel loops only)}.
  DoBegin,    ///< scalar: apply the processor slice to a parallel DO
  DoTest,     ///< if loop condition fails pc = D
  DoStep,     ///< Ctl[A] += Ctl[A+2]
  DoEnd,      ///< scalar: leave a sliced parallel DO

  // Scalar FORALL over ctl base A: {A+0 = cur, A+1 = hi}.
  FaTest,     ///< if Ctl[A] > Ctl[A+1] pc = D

  // SIMD FORALL over ctl base B: {B+0 = lo, B+1 = hi, B+2 = layer,
  // B+3 = layers}; A names the replicated index slot.
  FaBegin,      ///< replicated-index check, empty-range exit to D
  FaLayerTest,  ///< if Ctl[A+2] >= Ctl[A+3] pc = D
  FaLayerMask,  ///< set per-lane ids, push the existence mask

  // WHERE masks (SIMD; also the FORALL user mask).
  WherePush,  ///< build mask from reg[A], charge LogicOp, pushAnd
  WhereFlip,  ///< charge LogicOp, flipTop (ELSEWHERE)
  MaskPop,    ///< pop one mask level
};

/// Returns the mnemonic of \p Op ("ld.int", "st.arr", "do.test", ...).
const char *opcodeName(Opcode Op);

/// One instruction. Loc indexes the program's prerendered location pool
/// and is carried by every instruction so traps (including fuel traps
/// raised by any charge) report the same statement chain as the tree.
struct Instr {
  Opcode Op = Opcode::Halt;
  int32_t A = 0;
  int32_t B = 0;
  int32_t C = 0;
  int32_t D = 0;
  int32_t Loc = -1;
};

/// A lowered program: the instruction stream plus its constant pools.
/// Lowered code is machine-independent (costs and layouts resolve at run
/// time), so one Program is shared across runs, lanes and machines.
struct Program {
  Mode M = Mode::Scalar;
  /// Source program name (fuel trap messages embed it).
  std::string ProgName;
  std::vector<Instr> Code;
  std::vector<int64_t> IntPool;
  std::vector<double> RealPool;
  /// Variable names, bound to store slots once at engine start.
  std::vector<std::string> SlotNames;
  /// Extern callee names.
  std::vector<std::string> Callees;
  /// Static trap/check message fragments.
  std::vector<std::string> Msgs;
  /// Deduplicated prerendered statement locations.
  std::vector<std::string> Locs;
  /// Operand lists ([count, operand...]) for Gather/StArr/CallOp.
  std::vector<int32_t> Extra;
  /// Size of the value register file.
  int32_t NumRegs = 0;
  /// Size of the control (int64 loop state) file.
  int32_t NumCtl = 0;
  /// Stable labels of the instrumented loops, indexed by TripRec's B
  /// operand ("L0 do @<loc>", ...). Parallel array LoopDepths carries
  /// each loop's static nesting depth (0 = outermost).
  std::vector<std::string> LoopNames;
  std::vector<int32_t> LoopDepths;
};

/// Renders \p P as text, one instruction per line, for --dump-bytecode
/// and the golden tests.
std::string disassemble(const Program &P);

} // namespace exec
} // namespace simdflat

#endif // SIMDFLAT_EXEC_BYTECODE_H
