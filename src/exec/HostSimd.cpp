//===- exec/HostSimd.cpp - Host-vector instantiation of the core -*- C++-*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HostSimd backend: the shared evaluation core instantiated with
/// hardware vector kernels. This is the only translation unit compiled
/// with -mavx2 (and only when the top-level CMake check found a
/// compiler AND build host that support it, surfaced here as
/// SIMDFLAT_HOSTSIMD_AVX2); everything outside the kern::Avx2 kernels
/// stays scalar control flow, so dispatch, traps and stats run the
/// exact same code as the bytecode engine.
///
//===----------------------------------------------------------------------===//

#include "exec/EngineCore.h"

using namespace simdflat;
using namespace simdflat::exec;
using namespace simdflat::interp;

#if defined(SIMDFLAT_HOSTSIMD_AVX2) && defined(__AVX2__)
using HostKern = kern::Avx2;
#else
using HostKern = kern::Portable;
#endif

const char *exec::hostSimdArch() { return HostKern::Name; }

int exec::hostSimdWidth() {
  return static_cast<int>(kern::PortableWidth);
}

void exec::runSimdHost(const Program &EP,
                       const machine::MachineConfig &Machine,
                       const ExternRegistry *Externs, const RunOptions &Opts,
                       DataStore &Store, SimdRunResult &Result) {
  assert(EP.M == Mode::Simd && "host-simd engine needs a Simd program");
  detail::Core<true, HostKern> C(EP, Machine, Externs, Opts, Store, nullptr,
                                 /*RecordWrites=*/false, Result.Stats,
                                 Result.Tr, /*Writes=*/nullptr);
  C.run();
}
