//===- exec/Lower.h - ir:: -> bytecode lowering ----------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers an ir::Program into an exec::Program for one execution mode.
/// The lowering is a direct transcription of the corresponding
/// tree-walker: every charge(), trap check and store the tree performs
/// has a bytecode instruction in the same order, so the engines are
/// differentially identical (stores, RunStats, traces, trap kind + lane
/// set + location + detail).
///
/// Register discipline: an expression lowered at depth d leaves its
/// result in register d and evaluates operands into d+1, d+2, ... -
/// destinations never alias operands, which keeps the SIMD handlers
/// free of read/write hazards on the lane vectors. GOTO targets resolve
/// statically (the tree's label search is purely syntactic); statement
/// locations are prerendered into a deduplicated pool.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_EXEC_LOWER_H
#define SIMDFLAT_EXEC_LOWER_H

#include "exec/Bytecode.h"

namespace simdflat {
namespace ir {
class Program;
} // namespace ir

namespace exec {

/// Lowers \p P for \p M. Scalar-mode programs drive the scalar engine
/// and (via slicing) the per-processor MIMD engines; Simd-mode programs
/// require the F90simd dialect at run time, like the tree-walker.
Program lower(const ir::Program &P, Mode M);

} // namespace exec
} // namespace simdflat

#endif // SIMDFLAT_EXEC_LOWER_H
