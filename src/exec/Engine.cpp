//===- exec/Engine.cpp - Bytecode evaluation core (generic) ----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic-kernel instantiations of the shared evaluation core
/// (exec/EngineCore.h): the historical bytecode engine, bit-identical
/// to the tree walkers. The HostSimd backend instantiates the same core
/// with vector kernels in its own translation unit (HostSimd.cpp) so
/// this TU's codegen never depends on -mavx2.
///
//===----------------------------------------------------------------------===//

#include "exec/EngineCore.h"

using namespace simdflat;
using namespace simdflat::exec;
using namespace simdflat::interp;

void exec::runScalar(const Program &EP,
                     const machine::MachineConfig &Machine,
                     const ExternRegistry *Externs, const RunOptions &Opts,
                     DataStore &Store,
                     const std::optional<ParallelSlice> &Slice,
                     bool RecordWrites, ScalarRunResult &Result) {
  assert(EP.M == Mode::Scalar && "scalar engine needs a Scalar program");
  detail::Core<false, kern::Generic> C(EP, Machine, Externs, Opts, Store,
                                       &Slice, RecordWrites, Result.Stats,
                                       Result.Tr, &Result.Writes);
  C.run();
}

void exec::runSimd(const Program &EP, const machine::MachineConfig &Machine,
                   const ExternRegistry *Externs, const RunOptions &Opts,
                   DataStore &Store, SimdRunResult &Result) {
  assert(EP.M == Mode::Simd && "simd engine needs a Simd program");
  detail::Core<true, kern::Generic> C(EP, Machine, Externs, Opts, Store,
                                      nullptr, /*RecordWrites=*/false,
                                      Result.Stats, Result.Tr,
                                      /*Writes=*/nullptr);
  C.run();
}
