//===- exec/EngineCore.h - The templated evaluation core -------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation core behind exec::runScalar / runSimd / runSimdHost,
/// shared by every engine as a template over two policies:
///
///  * IsSimd - the scalar policy runs ScalVal registers (and, via a
///    ParallelSlice, one MIMD processor); the SIMD policy runs VecVal
///    lane vectors under a MaskStack.
///  * Kern   - which SimdKernels.h kernel set runs the dense per-lane
///    arithmetic loops of the SIMD policy. kern::Generic reproduces the
///    historical bytecode engine; the HostSimd backend instantiates the
///    same Core with vector kernels from a -mavx2 translation unit.
///
/// Every handler is a transcription of the corresponding tree-walker
/// path: same charges in the same order, same trap kinds, messages and
/// lane sets. Opcodes that collect faulting lane sets, call externs, or
/// reduce in lane order stay generic regardless of Kern - the
/// scalar-fallback rule (DESIGN.md §13).
///
/// This is a private header of src/exec; include it only from engine
/// translation units.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_EXEC_ENGINECORE_H
#define SIMDFLAT_EXEC_ENGINECORE_H

#include "exec/Engine.h"
#include "exec/SimdKernels.h"

#include "interp/Extern.h"
#include "machine/MaskStack.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <type_traits>

namespace simdflat {
namespace exec {
namespace detail {

using interp::DataStore;
using interp::ExternError;
using interp::ExternImpl;
using interp::ExternRegistry;
using interp::ParallelSlice;
using interp::RunOptions;
using interp::RunStats;
using interp::ScalVal;
using interp::Slot;
using interp::Trace;
using interp::TrapException;
using interp::TrapKind;
using interp::VecVal;
using interp::WriteRecord;

/// "(3, 9)" for a subscript list (trap details).
inline std::string renderIndices(const std::vector<int64_t> &Idx) {
  std::string Out = " (";
  for (size_t I = 0; I < Idx.size(); ++I) {
    if (I > 0)
      Out += ", ";
    Out += std::to_string(Idx[I]);
  }
  Out += ')';
  return Out;
}

inline ScalVal coerce(const ScalVal &V, ir::ScalarKind K) {
  if (V.Kind == K)
    return V;
  if (K == ir::ScalarKind::Real)
    return ScalVal::makeReal(V.asNumeric());
  if (K == ir::ScalarKind::Int && V.Kind == ir::ScalarKind::Real)
    return ScalVal::makeInt(static_cast<int64_t>(V.R));
  reportFatalError("scalar interp: invalid coercion");
}

inline bool cmpVals(Opcode Op, double LV, double RV) {
  switch (Op) {
  case Opcode::CmpEq:
    return LV == RV;
  case Opcode::CmpNe:
    return LV != RV;
  case Opcode::CmpLt:
    return LV < RV;
  case Opcode::CmpLe:
    return LV <= RV;
  case Opcode::CmpGt:
    return LV > RV;
  case Opcode::CmpGe:
    return LV >= RV;
  default:
    SIMDFLAT_UNREACHABLE("not a comparison");
  }
}

/// The evaluation core. One instantiation per execution policy.
template <bool IsSimd, class Kern = kern::Generic> class Core {
  using Reg = std::conditional_t<IsSimd, VecVal, ScalVal>;

public:
  Core(const Program &EP, const machine::MachineConfig &Machine,
       const ExternRegistry *Externs, const RunOptions &Opts,
       DataStore &Store, const std::optional<ParallelSlice> *Slice,
       bool RecordWrites, RunStats &Stats, Trace &Tr,
       std::vector<WriteRecord> *Writes)
      : EP(EP), Machine(Machine), Externs(Externs), Opts(Opts),
        Store(Store), Slice(Slice), RecordWrites(RecordWrites),
        Stats(Stats), Tr(Tr), Writes(Writes),
        Lanes(IsSimd ? Machine.Gran : 1), Mask(Lanes) {
    Tr.Watch = Opts.Watch;
    Tr.Lanes = Lanes;
    Slots.reserve(EP.SlotNames.size());
    SlotWork.reserve(EP.SlotNames.size());
    for (const std::string &Name : EP.SlotNames) {
      Slots.push_back(&Store.slot(Name));
      SlotWork.push_back(std::find(Opts.WorkTargets.begin(),
                                   Opts.WorkTargets.end(),
                                   Name) != Opts.WorkTargets.end());
    }
    CalleeImpls.reserve(EP.Callees.size());
    CalleeWork.reserve(EP.Callees.size());
    for (const std::string &Name : EP.Callees) {
      CalleeImpls.push_back(Externs ? Externs->lookup(Name) : nullptr);
      CalleeWork.push_back(std::find(Opts.WorkCalls.begin(),
                                     Opts.WorkCalls.end(),
                                     Name) != Opts.WorkCalls.end());
    }
    Regs.resize(static_cast<size_t>(EP.NumRegs));
    Ctl.assign(static_cast<size_t>(EP.NumCtl), 0);
    // Per-nest trip telemetry: one histogram per instrumented loop,
    // indexed by TripRec's loop id. Repeated runs against the same
    // RunStats keep accumulating into the existing nests.
    if (Stats.TripNests.size() != EP.LoopNames.size()) {
      Stats.TripNests.resize(EP.LoopNames.size());
      for (size_t K = 0; K < EP.LoopNames.size(); ++K) {
        Stats.TripNests[K].Name = EP.LoopNames[K];
        Stats.TripNests[K].Depth = EP.LoopDepths[K];
      }
    }
  }

  void run();

private:
  const Program &EP;
  const machine::MachineConfig &Machine;
  const ExternRegistry *Externs;
  const RunOptions &Opts;
  DataStore &Store;
  const std::optional<ParallelSlice> *Slice;
  bool RecordWrites;
  RunStats &Stats;
  Trace &Tr;
  std::vector<WriteRecord> *Writes;
  int64_t Lanes;
  machine::MaskStack Mask;
  std::vector<Reg> Regs;
  std::vector<int64_t> Ctl;
  /// Scratch buffers for the SIMD policy, reused across instructions so
  /// the dispatch loop is allocation-free in steady state.
  VecVal CoerceA, CoerceB;
  std::vector<int64_t> FlatsTmp;
  std::vector<uint8_t> MaskTmp;
  std::vector<Slot *> Slots;
  std::vector<uint8_t> SlotWork;
  std::vector<const ExternImpl *> CalleeImpls;
  std::vector<uint8_t> CalleeWork;
  /// Nesting depth of sliced parallel loops (scalar policy only).
  int SliceDepth = 0;
  int64_t LoopIterations = 0;
  /// Location of the executing instruction, for traps.
  int32_t CurLoc = -1;

  size_t laneCount() const { return static_cast<size_t>(Lanes); }

  /// In-place destination writers (SIMD policy only). Lowering gives an
  /// expression at depth d register d and its operands registers d+1,
  /// d+2, ..., so a destination never aliases an operand and a handler
  /// may fill its output payload while operand registers are still
  /// live. Reusing the register's own vectors keeps steady-state
  /// execution allocation-free; callers must overwrite every lane.
  std::vector<int64_t> &outI(int32_t R, ir::ScalarKind K) {
    VecVal &V = Regs[static_cast<size_t>(R)];
    V.Kind = K;
    V.R.clear();
    V.I.resize(laneCount());
    return V.I;
  }
  std::vector<double> &outR(int32_t R) {
    VecVal &V = Regs[static_cast<size_t>(R)];
    V.Kind = ir::ScalarKind::Real;
    V.I.clear();
    V.R.resize(laneCount());
    return V.R;
  }

  /// In-place destination writers (scalar/MIMD policy). The same depth
  /// discipline that makes outI/outR safe holds here: a destination
  /// register never aliases an operand register, so handlers read their
  /// operands first and then set the destination's payload field
  /// directly instead of constructing and copy-assigning a fresh
  /// ScalVal per instruction. Stale bytes in the unused payload field
  /// are unobservable (every read dispatches on Kind).
  auto &soutI(int32_t R, ir::ScalarKind K) {
    auto &V = Regs[static_cast<size_t>(R)];
    V.Kind = K;
    return V.I;
  }
  auto &soutR(int32_t R) {
    auto &V = Regs[static_cast<size_t>(R)];
    V.Kind = ir::ScalarKind::Real;
    return V.R;
  }

  /// Register read with int<->real assignment coercion but no copy
  /// when the kinds already match; a coerced value lands in \p Tmp
  /// (capacity reused). Distinct Tmps let two operands coexist.
  const VecVal &readVec(int32_t R, ir::ScalarKind K, VecVal &Tmp) {
    const VecVal &V = Regs[static_cast<size_t>(R)];
    if (V.Kind == K)
      return V;
    Tmp.Kind = K;
    if (K == ir::ScalarKind::Real) {
      Tmp.I.clear();
      Tmp.R.resize(V.I.size());
      for (size_t L = 0; L < V.I.size(); ++L)
        Tmp.R[L] = static_cast<double>(V.I[L]);
      return Tmp;
    }
    if (K == ir::ScalarKind::Int && V.Kind == ir::ScalarKind::Real) {
      Tmp.R.clear();
      Tmp.I.resize(V.R.size());
      for (size_t L = 0; L < V.R.size(); ++L)
        Tmp.I[L] = static_cast<int64_t>(V.R[L]);
      return Tmp;
    }
    reportFatalError("simd interp: invalid vector coercion");
  }

  /// Reads a register as a real lane vector for the kernel loops. All
  /// comparisons and real arithmetic evaluate through double exactly
  /// like the tree walker (int operands widen per lane).
  const VecVal &readReal(int32_t R, VecVal &Tmp) {
    return readVec(R, ir::ScalarKind::Real, Tmp);
  }

  [[noreturn]] void trap(TrapKind K, std::string Detail,
                         std::vector<int64_t> FaultLanes = {}) {
    throw TrapException{{K, std::move(FaultLanes),
                         CurLoc >= 0 ? EP.Locs[static_cast<size_t>(CurLoc)]
                                     : std::string(),
                         std::move(Detail)}};
  }

  void charge(double Cycles) {
    Stats.Cycles += Cycles;
    Stats.Instructions += 1;
    if (Opts.Fuel > 0 && Stats.Instructions > Opts.Fuel)
      trap(TrapKind::FuelExhausted,
           "fuel budget of " + std::to_string(Opts.Fuel) +
               " instructions exhausted in '" + EP.ProgName + "'");
    if (deadlineExpired(Opts, Stats.Instructions))
      trap(TrapKind::DeadlineExpired,
           "wall-clock deadline expired in '" + EP.ProgName + "'");
  }

  void countLoopIteration() {
    if (++LoopIterations > Opts.MaxLoopIterations)
      trap(TrapKind::FuelExhausted,
           "loop iteration limit of " +
               std::to_string(Opts.MaxLoopIterations) + " exceeded in '" +
               EP.ProgName + "' (non-terminating transform?)");
    charge(Machine.Costs.LoopOverhead);
  }

  double cost(int32_t K) const {
    const machine::CostTable &C = Machine.Costs;
    switch (static_cast<CostKind>(K)) {
    case CostKind::IntOp:
      return C.IntOp;
    case CostKind::RealOp:
      return C.RealOp;
    case CostKind::CmpOp:
      return C.CmpOp;
    case CostKind::LogicOp:
      return C.LogicOp;
    case CostKind::MoveOp:
      return C.MoveOp;
    case CostKind::GatherOp:
      return C.GatherOp;
    case CostKind::ScatterOp:
      return C.ScatterOp;
    case CostKind::ReduceOp:
      return C.ReduceOp;
    case CostKind::LayerCheck:
      return C.LayerCheck;
    case CostKind::LoopOverhead:
      return C.LoopOverhead;
    }
    SIMDFLAT_UNREACHABLE("bad CostKind");
  }

  void recordWorkStep() {
    Stats.WorkSteps += 1;
    if constexpr (IsSimd) {
      // Lane accounting never sees kernel padding: active counts the
      // mask over the machine's real lanes, total counts Gran. Padded
      // tail layers show up as active < total, exactly the idle slots
      // the paper's utilization measures.
      Stats.WorkActiveLanes += Mask.activeCount();
      Stats.WorkTotalLanes += Lanes;
    } else {
      Stats.WorkActiveLanes += 1;
      Stats.WorkTotalLanes += 1;
    }
    if (Opts.Watch.empty())
      return;
    Trace::Step Step;
    if constexpr (IsSimd) {
      Step.Values.reserve(Opts.Watch.size() * laneCount());
      for (const std::string &W : Opts.Watch) {
        const Slot &S = Store.slot(W);
        assert(!S.isReal() && "watched variables must be integer/logical");
        for (int64_t L = 0; L < Lanes; ++L)
          Step.Values.push_back(
              S.I[static_cast<size_t>(S.Width == 1 ? 0 : L)]);
      }
      Step.Active = Mask.current();
    } else {
      Step.Values.reserve(Opts.Watch.size());
      for (const std::string &W : Opts.Watch)
        Step.Values.push_back(Store.getInt(W));
      Step.Active.assign(1, 1);
    }
    Tr.Steps.push_back(std::move(Step));
  }

  /// Requires \p V to hold the same value on every lane and returns it.
  int64_t uniformInt(const VecVal &V, const std::string &What) {
    assert(V.Kind != ir::ScalarKind::Real && "uniformInt of a real");
    int64_t First = V.I[0];
    std::vector<int64_t> Divergent;
    for (size_t L = 0; L < V.I.size(); ++L)
      if (V.I[L] != First)
        Divergent.push_back(static_cast<int64_t>(L));
    if (!Divergent.empty())
      trap(TrapKind::NonUniformControl,
           What + " is not control-uniform across lanes; "
                  "lane-varying control flow needs WHERE / "
                  "WHILE ANY(...)",
           std::move(Divergent));
    return First;
  }

  /// Operand-register list behind an Extra offset: [count, regs...].
  const int32_t *extra(int32_t Off) const { return &EP.Extra[Off]; }

  /// Returns the slice of iterations processor Proc owns for a parallel
  /// loop running Lo..Hi (step 1): [begin, end] with stride Stride.
  struct OwnedRange {
    int64_t Begin, End, Stride;
  };
  OwnedRange ownedRange(int64_t Lo, int64_t Hi) const {
    const ParallelSlice &S = **Slice;
    int64_t Count = Hi - Lo + 1;
    if (Count < 0)
      Count = 0;
    if (S.PartLayout == machine::Layout::Block) {
      int64_t Chunk = (Count + S.NumProcs - 1) / S.NumProcs;
      int64_t Begin = Lo + S.Proc * Chunk;
      int64_t End = std::min(Hi, Begin + Chunk - 1);
      return {Begin, End, 1};
    }
    return {Lo + S.Proc, Hi, S.NumProcs};
  }
};

template <bool IsSimd, class Kern> void Core<IsSimd, Kern>::run() {
  size_t PC = 0;
  for (;;) {
    const Instr &I = EP.Code[PC];
    ++PC;
    CurLoc = I.Loc;
    switch (I.Op) {
    case Opcode::LdInt:
      if constexpr (IsSimd)
        outI(I.A, ir::ScalarKind::Int).assign(laneCount(), EP.IntPool[I.B]);
      else
        soutI(I.A, ir::ScalarKind::Int) = EP.IntPool[I.B];
      break;
    case Opcode::LdReal:
      if constexpr (IsSimd)
        outR(I.A).assign(laneCount(), EP.RealPool[I.B]);
      else
        soutR(I.A) = EP.RealPool[I.B];
      break;
    case Opcode::LdBool:
      if constexpr (IsSimd)
        outI(I.A, ir::ScalarKind::Bool).assign(laneCount(), I.B != 0 ? 1 : 0);
      else
        soutI(I.A, ir::ScalarKind::Bool) = I.B != 0 ? 1 : 0;
      break;
    case Opcode::LdVar: {
      const Slot &S = *Slots[I.B];
      if (S.Decl->isArray())
        trap(TrapKind::InvalidProgram, "whole-array reference to '" +
                                           S.Decl->Name +
                                           "' outside a reduction");
      if constexpr (IsSimd) {
        if (S.isReal()) {
          std::vector<double> &Out = outR(I.A);
          if (S.Width == 1)
            Out.assign(laneCount(), S.R[0]);
          else
            Out = S.R;
        } else {
          std::vector<int64_t> &Out = outI(I.A, S.Decl->Kind);
          if (S.Width == 1)
            Out.assign(laneCount(), S.I[0]);
          else
            Out = S.I;
        }
      } else {
        if (S.isReal())
          soutR(I.A) = S.R[0];
        else
          soutI(I.A, S.Decl->Kind) = S.I[0];
      }
      break;
    }
    case Opcode::Gather: {
      const Slot &S = *Slots[I.B];
      const ir::VarDecl &D = *S.Decl;
      const int32_t *Ops = extra(I.C);
      int32_t N = Ops[0];
      if constexpr (IsSimd) {
        charge(Machine.Costs.GatherOp);
        if (S.isReal())
          outR(I.A).assign(laneCount(), 0.0);
        else
          outI(I.A, D.Kind).assign(laneCount(), 0);
        VecVal &Out = Regs[static_cast<size_t>(I.A)];
        std::vector<int64_t> BadLanes;
        for (int64_t L = 0; L < Lanes; ++L) {
          int64_t Flat = 0;
          bool InBounds = true;
          for (int32_t Dim = 0; Dim < N; ++Dim) {
            int64_t IdxV = Regs[Ops[1 + Dim]].I[static_cast<size_t>(L)];
            if (IdxV < 1 || IdxV > D.Dims[Dim]) {
              InBounds = false;
              break;
            }
            Flat = Flat * D.Dims[Dim] + (IdxV - 1);
          }
          if (!InBounds) {
            if (Mask.isActive(L))
              BadLanes.push_back(L);
            continue; // idle lane gathers garbage; leave 0
          }
          if (D.Distribution == ir::Dist::Distributed && Mask.isActive(L)) {
            int64_t Dim0 = Regs[Ops[1]].I[static_cast<size_t>(L)];
            if (Machine.laneOf(Dim0, D.Dims[0]) != L)
              Stats.CommAccesses += 1;
          }
          if (S.isReal())
            Out.R[static_cast<size_t>(L)] = S.R[static_cast<size_t>(Flat)];
          else
            Out.I[static_cast<size_t>(L)] = S.I[static_cast<size_t>(Flat)];
        }
        if (!BadLanes.empty())
          trap(TrapKind::OutOfBounds,
               "active lane(s) read out of bounds from '" + D.Name + "'",
               std::move(BadLanes));
      } else {
        std::vector<int64_t> Idx;
        Idx.reserve(static_cast<size_t>(N));
        for (int32_t K = 0; K < N; ++K)
          Idx.push_back(Regs[Ops[1 + K]].asInt());
        int64_t Flat = DataStore::flatIndex(D, Idx);
        if (Flat < 0)
          trap(TrapKind::OutOfBounds, "index out of bounds reading '" +
                                          D.Name + "'" + renderIndices(Idx));
        charge(Machine.Costs.GatherOp);
        if (S.isReal())
          soutR(I.A) = S.R[static_cast<size_t>(Flat)];
        else
          soutI(I.A, D.Kind) = S.I[static_cast<size_t>(Flat)];
      }
      break;
    }
    case Opcode::StVar: {
      Slot &S = *Slots[I.A];
      if constexpr (IsSimd) {
        const VecVal &C = readVec(I.B, S.Decl->Kind, CoerceA);
        charge(Machine.Costs.MoveOp);
        if (S.Width == 1) {
          // Control variable: value must be uniform over active lanes.
          int64_t FirstActive = -1;
          for (int64_t L = 0; L < Lanes; ++L)
            if (Mask.isActive(L)) {
              FirstActive = L;
              break;
            }
          if (FirstActive >= 0) {
            std::vector<int64_t> VaryLanes;
            if (S.isReal()) {
              double Val = C.R[static_cast<size_t>(FirstActive)];
              for (int64_t L = FirstActive; L < Lanes; ++L)
                if (Mask.isActive(L) && C.R[static_cast<size_t>(L)] != Val)
                  VaryLanes.push_back(L);
              if (VaryLanes.empty())
                S.R[0] = Val;
            } else {
              int64_t Val = C.I[static_cast<size_t>(FirstActive)];
              for (int64_t L = FirstActive; L < Lanes; ++L)
                if (Mask.isActive(L) && C.I[static_cast<size_t>(L)] != Val)
                  VaryLanes.push_back(L);
              if (VaryLanes.empty())
                S.I[0] = Val;
            }
            if (!VaryLanes.empty())
              trap(TrapKind::NonUniformControl,
                   "lane-varying store to control variable '" +
                       S.Decl->Name + "'",
                   std::move(VaryLanes));
          }
        } else {
          // Masked commit: idle lanes keep their old value. Under the
          // vector kernels this is a blend over the current mask.
          if (S.isReal())
            Kern::maskedStoreR(S.R.data(), C.R.data(),
                               Mask.current().data(), laneCount());
          else
            Kern::maskedStoreI(S.I.data(), C.I.data(),
                               Mask.current().data(), laneCount());
        }
      } else {
        ScalVal C = coerce(Regs[I.B], S.Decl->Kind);
        charge(Machine.Costs.MoveOp);
        if (S.isReal())
          S.R.assign(S.R.size(), C.R);
        else
          S.I.assign(S.I.size(), C.I);
      }
      if (SlotWork[I.A])
        recordWorkStep();
      break;
    }
    case Opcode::StArr: {
      Slot &S = *Slots[I.A];
      const ir::VarDecl &D = *S.Decl;
      const int32_t *Ops = extra(I.C);
      int32_t N = Ops[0];
      if constexpr (IsSimd) {
        const VecVal &C = readVec(I.B, D.Kind, CoerceA);
        charge(Machine.Costs.ScatterOp);
        // Validate every active lane before committing any store: a
        // scatter with a faulting lane must not half-commit.
        FlatsTmp.assign(laneCount(), -1);
        std::vector<int64_t> &Flats = FlatsTmp;
        std::vector<int64_t> BadLanes;
        for (int64_t L = 0; L < Lanes; ++L) {
          if (!Mask.isActive(L))
            continue;
          int64_t Flat = 0;
          bool InBounds = true;
          for (int32_t Dim = 0; Dim < N; ++Dim) {
            int64_t IdxV = Regs[Ops[1 + Dim]].I[static_cast<size_t>(L)];
            if (IdxV < 1 || IdxV > D.Dims[Dim]) {
              InBounds = false;
              break;
            }
            Flat = Flat * D.Dims[Dim] + (IdxV - 1);
          }
          if (!InBounds) {
            BadLanes.push_back(L);
            continue;
          }
          Flats[static_cast<size_t>(L)] = Flat;
        }
        if (!BadLanes.empty())
          trap(TrapKind::OutOfBounds,
               "active lane(s) write out of bounds to '" + D.Name + "'",
               std::move(BadLanes));
        for (int64_t L = 0; L < Lanes; ++L) {
          if (!Mask.isActive(L))
            continue;
          int64_t Flat = Flats[static_cast<size_t>(L)];
          if (D.Distribution == ir::Dist::Distributed) {
            int64_t Dim0 = Regs[Ops[1]].I[static_cast<size_t>(L)];
            if (Machine.laneOf(Dim0, D.Dims[0]) != L)
              Stats.CommAccesses += 1;
          }
          if (S.isReal())
            S.R[static_cast<size_t>(Flat)] = C.R[static_cast<size_t>(L)];
          else
            S.I[static_cast<size_t>(Flat)] = C.I[static_cast<size_t>(L)];
        }
      } else {
        std::vector<int64_t> Idx;
        Idx.reserve(static_cast<size_t>(N));
        for (int32_t K = 0; K < N; ++K)
          Idx.push_back(Regs[Ops[1 + K]].asInt());
        int64_t Flat = DataStore::flatIndex(D, Idx);
        if (Flat < 0)
          trap(TrapKind::OutOfBounds, "index out of bounds writing '" +
                                          D.Name + "'" + renderIndices(Idx));
        ScalVal C = coerce(Regs[I.B], D.Kind);
        charge(Machine.Costs.ScatterOp);
        if (S.isReal())
          S.R[static_cast<size_t>(Flat)] = C.R;
        else
          S.I[static_cast<size_t>(Flat)] = C.I;
        if (RecordWrites)
          Writes->push_back({D.Name, Flat, C});
      }
      if (SlotWork[I.A])
        recordWorkStep();
      break;
    }
    case Opcode::SetIdx: {
      Slot &IV = *Slots[I.A];
      IV.I.assign(IV.I.size(), Ctl[I.B]);
      break;
    }
    case Opcode::Neg: {
      if constexpr (IsSimd) {
        const VecVal &V = Regs[I.B];
        charge(V.Kind == ir::ScalarKind::Real ? Machine.Costs.RealOp
                                              : Machine.Costs.IntOp);
        if (V.Kind == ir::ScalarKind::Real)
          Kern::negR(outR(I.A).data(), V.R.data(), laneCount());
        else
          Kern::negI(outI(I.A, V.Kind).data(), V.I.data(), laneCount());
      } else {
        const ScalVal &V = Regs[I.B];
        charge(V.Kind == ir::ScalarKind::Real ? Machine.Costs.RealOp
                                              : Machine.Costs.IntOp);
        if (V.Kind == ir::ScalarKind::Real)
          soutR(I.A) = -V.R;
        else
          soutI(I.A, ir::ScalarKind::Int) = -V.I;
      }
      break;
    }
    case Opcode::NotOp: {
      charge(Machine.Costs.LogicOp);
      if constexpr (IsSimd) {
        const VecVal &V = Regs[I.B];
        Kern::notI(outI(I.A, V.Kind).data(), V.I.data(), laneCount());
      } else {
        soutI(I.A, ir::ScalarKind::Bool) = Regs[I.B].asBool() ? 0 : 1;
      }
      break;
    }
    case Opcode::AndOp:
    case Opcode::OrOp: {
      charge(Machine.Costs.LogicOp);
      bool IsAnd = I.Op == Opcode::AndOp;
      if constexpr (IsSimd) {
        const VecVal &L = Regs[I.B], &R = Regs[I.C];
        Kern::logicOp(IsAnd, outI(I.A, ir::ScalarKind::Bool).data(),
                      L.I.data(), R.I.data(), laneCount());
      } else {
        bool LV = Regs[I.B].asBool(), RV = Regs[I.C].asBool();
        soutI(I.A, ir::ScalarKind::Bool) =
            (IsAnd ? (LV && RV) : (LV || RV)) ? 1 : 0;
      }
      break;
    }
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe: {
      charge(Machine.Costs.CmpOp);
      if constexpr (IsSimd) {
        // Comparisons evaluate through double on every lane (the tree
        // walker's rule, int operands included); widen once into the
        // coercion scratch and run one real-compare kernel.
        const VecVal &L = readReal(I.B, CoerceA);
        const VecVal &R = readReal(I.C, CoerceB);
        Kern::cmpRR(I.Op, outI(I.A, ir::ScalarKind::Bool).data(),
                    L.R.data(), R.R.data(), laneCount());
      } else {
        const ScalVal &L = Regs[I.B], &R = Regs[I.C];
        if (L.Kind == ir::ScalarKind::Bool ||
            R.Kind == ir::ScalarKind::Bool) {
          assert(L.Kind == ir::ScalarKind::Bool &&
                 R.Kind == ir::ScalarKind::Bool && "mixed bool comparison");
          bool LV = L.asBool(), RV = R.asBool();
          soutI(I.A, ir::ScalarKind::Bool) =
              (I.Op == Opcode::CmpEq ? LV == RV : LV != RV) ? 1 : 0;
        } else {
          soutI(I.A, ir::ScalarKind::Bool) =
              cmpVals(I.Op, L.asNumeric(), R.asNumeric()) ? 1 : 0;
        }
      }
      break;
    }
    case Opcode::AddI:
    case Opcode::SubI:
    case Opcode::MulI: {
      charge(Machine.Costs.IntOp);
      if constexpr (IsSimd) {
        const VecVal &L = Regs[I.B], &R = Regs[I.C];
        std::vector<int64_t> &Out = outI(I.A, ir::ScalarKind::Int);
        if (I.Op == Opcode::AddI)
          Kern::addI(Out.data(), L.I.data(), R.I.data(), laneCount());
        else if (I.Op == Opcode::SubI)
          Kern::subI(Out.data(), L.I.data(), R.I.data(), laneCount());
        else
          Kern::mulI(Out.data(), L.I.data(), R.I.data(), laneCount());
      } else {
        int64_t LV = Regs[I.B].asInt(), RV = Regs[I.C].asInt();
        switch (I.Op) {
        case Opcode::AddI:
          soutI(I.A, ir::ScalarKind::Int) = LV + RV;
          break;
        case Opcode::SubI:
          soutI(I.A, ir::ScalarKind::Int) = LV - RV;
          break;
        case Opcode::MulI:
          soutI(I.A, ir::ScalarKind::Int) = LV * RV;
          break;
        default:
          SIMDFLAT_UNREACHABLE("bad int arithmetic op");
        }
      }
      break;
    }
    case Opcode::DivI:
    case Opcode::ModI: {
      // Generic on every engine: the zero-divisor sweep collects the
      // faulting active-lane set for the trap (scalar-fallback rule).
      charge(Machine.Costs.IntOp);
      if constexpr (IsSimd) {
        const VecVal &L = Regs[I.B], &R = Regs[I.C];
        std::vector<int64_t> &Out = outI(I.A, ir::ScalarKind::Int);
        std::vector<int64_t> ZeroLanes;
        for (size_t K = 0; K < laneCount(); ++K) {
          int64_t LV = L.I[K], RV = R.I[K];
          // Division by zero on an idle lane is a don't-care; active
          // lanes dividing by zero trap.
          if (RV == 0) {
            if (Mask.isActive(static_cast<int64_t>(K)))
              ZeroLanes.push_back(static_cast<int64_t>(K));
            Out[K] = 0;
          } else {
            Out[K] = I.Op == Opcode::DivI ? LV / RV : LV % RV;
          }
        }
        if (!ZeroLanes.empty())
          trap(TrapKind::DivByZero,
               std::string(I.Op == Opcode::ModI ? "MOD" : "division") +
                   " by zero on active lane(s)",
               std::move(ZeroLanes));
      } else {
        int64_t LV = Regs[I.B].asInt(), RV = Regs[I.C].asInt();
        if (I.Op == Opcode::DivI) {
          if (RV == 0)
            trap(TrapKind::DivByZero, "integer division by zero");
          soutI(I.A, ir::ScalarKind::Int) = LV / RV;
        } else {
          if (RV == 0)
            trap(TrapKind::DivByZero, "MOD by zero");
          soutI(I.A, ir::ScalarKind::Int) = LV % RV;
        }
      }
      break;
    }
    case Opcode::AddR:
    case Opcode::SubR:
    case Opcode::MulR:
    case Opcode::DivR: {
      charge(Machine.Costs.RealOp);
      if constexpr (IsSimd) {
        const VecVal &L = readReal(I.B, CoerceA);
        const VecVal &R = readReal(I.C, CoerceB);
        std::vector<double> &Out = outR(I.A);
        switch (I.Op) {
        case Opcode::AddR:
          Kern::addR(Out.data(), L.R.data(), R.R.data(), laneCount());
          break;
        case Opcode::SubR:
          Kern::subR(Out.data(), L.R.data(), R.R.data(), laneCount());
          break;
        case Opcode::MulR:
          Kern::mulR(Out.data(), L.R.data(), R.R.data(), laneCount());
          break;
        case Opcode::DivR:
          Kern::divR(Out.data(), L.R.data(), R.R.data(), laneCount());
          break;
        default:
          SIMDFLAT_UNREACHABLE("bad real arithmetic op");
        }
      } else {
        double LV = Regs[I.B].asNumeric(), RV = Regs[I.C].asNumeric();
        switch (I.Op) {
        case Opcode::AddR:
          soutR(I.A) = LV + RV;
          break;
        case Opcode::SubR:
          soutR(I.A) = LV - RV;
          break;
        case Opcode::MulR:
          soutR(I.A) = LV * RV;
          break;
        case Opcode::DivR:
          soutR(I.A) = LV / RV;
          break;
        default:
          SIMDFLAT_UNREACHABLE("bad real arithmetic op");
        }
      }
      break;
    }
    case Opcode::MaxMin: {
      bool IsMax = (I.D & 1) != 0;
      auto K = static_cast<ir::ScalarKind>(I.D >> 1);
      bool Real = K == ir::ScalarKind::Real;
      if constexpr (IsSimd) {
        const VecVal &A = readVec(I.B, K, CoerceA);
        const VecVal &B = readVec(I.C, K, CoerceB);
        charge(Real ? Machine.Costs.RealOp : Machine.Costs.IntOp);
        if (Real)
          Kern::minmaxR(IsMax, outR(I.A).data(), A.R.data(), B.R.data(),
                        laneCount());
        else
          Kern::minmaxI(IsMax, outI(I.A, K).data(), A.I.data(), B.I.data(),
                        laneCount());
      } else {
        const ScalVal &A = Regs[I.B], &B = Regs[I.C];
        charge(Real ? Machine.Costs.RealOp : Machine.Costs.IntOp);
        bool TakeA = IsMax ? A.asNumeric() >= B.asNumeric()
                           : A.asNumeric() <= B.asNumeric();
        const ScalVal &Src = TakeA ? A : B;
        if (Real)
          soutR(I.A) = Src.asNumeric();
        else
          soutI(I.A, K) = Src.Kind == ir::ScalarKind::Real
                              ? static_cast<int64_t>(Src.R)
                              : Src.I;
      }
      break;
    }
    case Opcode::AbsOp: {
      if constexpr (IsSimd) {
        const VecVal &A = Regs[I.B];
        charge(A.Kind == ir::ScalarKind::Real ? Machine.Costs.RealOp
                                              : Machine.Costs.IntOp);
        if (A.Kind == ir::ScalarKind::Real)
          Kern::absR(outR(I.A).data(), A.R.data(), laneCount());
        else
          Kern::absI(outI(I.A, A.Kind).data(), A.I.data(), laneCount());
      } else {
        const ScalVal &A = Regs[I.B];
        charge(A.Kind == ir::ScalarKind::Real ? Machine.Costs.RealOp
                                              : Machine.Costs.IntOp);
        if (A.Kind == ir::ScalarKind::Real)
          soutR(I.A) = std::fabs(A.R);
        else
          soutI(I.A, ir::ScalarKind::Int) = std::llabs(A.I);
      }
      break;
    }
    case Opcode::SqrtOp: {
      charge(Machine.Costs.RealOp);
      if constexpr (IsSimd) {
        const VecVal &A = Regs[I.B];
        std::vector<double> &Out = outR(I.A);
        if (Kern::anyNegative(A.R.data(), laneCount())) {
          // Slow path: some lane is negative. Sweep generically to
          // collect the faulting *active* lanes; idle negative lanes
          // produce the defined-away 0.0 without trapping.
          std::vector<int64_t> NegLanes;
          for (size_t L = 0; L < laneCount(); ++L) {
            if (A.R[L] < 0.0 && Mask.isActive(static_cast<int64_t>(L)))
              NegLanes.push_back(static_cast<int64_t>(L));
            Out[L] = A.R[L] < 0.0 ? 0.0 : std::sqrt(A.R[L]);
          }
          if (!NegLanes.empty())
            trap(TrapKind::DomainError,
                 "SQRT of a negative on active lane(s)",
                 std::move(NegLanes));
        } else {
          Kern::sqrtR(Out.data(), A.R.data(), laneCount());
        }
      } else {
        const ScalVal &A = Regs[I.B];
        if (A.R < 0.0)
          trap(TrapKind::DomainError, "SQRT of a negative value");
        soutR(I.A) = std::sqrt(A.R);
      }
      break;
    }
    case Opcode::LaneIdx:
      if constexpr (IsSimd) {
        std::vector<int64_t> &Out = outI(I.A, ir::ScalarKind::Int);
        for (size_t L = 0; L < laneCount(); ++L)
          Out[L] = static_cast<int64_t>(L) + 1;
      } else {
        soutI(I.A, ir::ScalarKind::Int) = 1;
      }
      break;
    case Opcode::NumLanesOp:
      if constexpr (IsSimd)
        outI(I.A, ir::ScalarKind::Int).assign(laneCount(), Lanes);
      else
        soutI(I.A, ir::ScalarKind::Int) = 1;
      break;
    case Opcode::AnyAll: {
      charge(Machine.Costs.ReduceOp);
      bool IsAll = I.D != 0;
      if constexpr (IsSimd) {
        const VecVal &A = Regs[I.B];
        bool Acc = IsAll;
        for (int64_t L = 0; L < Lanes; ++L) {
          if (!Mask.isActive(L))
            continue;
          bool V = A.I[static_cast<size_t>(L)] != 0;
          Acc = IsAll ? (Acc && V) : (Acc || V);
        }
        outI(I.A, ir::ScalarKind::Bool).assign(laneCount(), Acc ? 1 : 0);
      } else {
        // Single lane: the reduction is the operand itself.
        soutI(I.A, ir::ScalarKind::Bool) = Regs[I.B].asBool() ? 1 : 0;
      }
      break;
    }
    case Opcode::LaneRed: {
      charge(Machine.Costs.ReduceOp);
      if constexpr (IsSimd) {
        const VecVal &A = Regs[I.B];
        bool IsMax = I.D == 0, IsMin = I.D == 1;
        if ((IsMax || IsMin) && Mask.noneActive())
          trap(TrapKind::DomainError,
               std::string(IsMax ? "MAXRED" : "MINRED") +
                   " with no active lanes");
        auto Combine = [&](auto Acc, auto V) {
          if (IsMax)
            return std::max(Acc, V);
          if (IsMin)
            return std::min(Acc, V);
          return Acc + V;
        };
        // Masked, in lane order: a SUM reduction must accumulate left
        // to right for FP bit-identity across engines.
        if (A.Kind == ir::ScalarKind::Real) {
          double Acc = IsMax   ? -std::numeric_limits<double>::infinity()
                       : IsMin ? std::numeric_limits<double>::infinity()
                               : 0.0;
          for (int64_t L = 0; L < Lanes; ++L)
            if (Mask.isActive(L))
              Acc = Combine(Acc, A.R[static_cast<size_t>(L)]);
          outR(I.A).assign(laneCount(), Acc);
        } else {
          int64_t Acc = IsMax   ? std::numeric_limits<int64_t>::min()
                        : IsMin ? std::numeric_limits<int64_t>::max()
                                : 0;
          for (int64_t L = 0; L < Lanes; ++L)
            if (Mask.isActive(L))
              Acc = Combine(Acc, A.I[static_cast<size_t>(L)]);
          outI(I.A, ir::ScalarKind::Int).assign(laneCount(), Acc);
        }
      } else {
        // Single lane: the reduction is the operand itself.
        Regs[I.A] = Regs[I.B];
      }
      break;
    }
    case Opcode::ArrRed: {
      const Slot &S = *Slots[I.B];
      charge(Machine.Costs.ReduceOp *
             static_cast<double>(Machine.layersFor(S.Width)));
      bool IsSum = I.D == 1;
      if (S.isReal()) {
        double Acc =
            IsSum ? 0.0 : -std::numeric_limits<double>::infinity();
        for (double X : S.R)
          Acc = IsSum ? Acc + X : std::max(Acc, X);
        if constexpr (IsSimd)
          outR(I.A).assign(laneCount(), Acc);
        else
          soutR(I.A) = Acc;
      } else {
        int64_t Acc = IsSum ? 0 : std::numeric_limits<int64_t>::min();
        for (int64_t X : S.I)
          Acc = IsSum ? Acc + X : std::max(Acc, X);
        if constexpr (IsSimd)
          outI(I.A, ir::ScalarKind::Int).assign(laneCount(), Acc);
        else
          soutI(I.A, ir::ScalarKind::Int) = Acc;
      }
      break;
    }
    case Opcode::CallCheck: {
      if (!Externs)
        trap(TrapKind::ExternFailure,
             "no extern registry for call to '" + EP.Callees[I.B] + "'");
      if (!CalleeImpls[I.B])
        trap(TrapKind::ExternFailure,
             "unbound extern '" + EP.Callees[I.B] + "'");
      break;
    }
    case Opcode::CallOp: {
      const ExternImpl *Impl = CalleeImpls[I.B];
      assert(Impl && "CallOp without a passing CallCheck");
      const int32_t *Ops = extra(I.C);
      int32_t N = Ops[0];
      if constexpr (IsSimd) {
        charge(Impl->Cost);
        if (CalleeWork[I.B])
          recordWorkStep();
        auto RetKind = static_cast<ir::ScalarKind>(I.D);
        // Result register never aliases the argument registers, so the
        // output can be filled in place while lanes read arguments; a
        // result-less call statement writes a discarded scratch.
        VecVal &Out =
            I.A >= 0 ? Regs[static_cast<size_t>(I.A)] : CoerceA;
        Out.Kind = RetKind;
        if (RetKind == ir::ScalarKind::Real) {
          Out.I.clear();
          Out.R.assign(laneCount(), 0.0);
        } else {
          Out.R.clear();
          Out.I.assign(laneCount(), 0);
        }
        std::vector<ScalVal> LaneArgs(static_cast<size_t>(N));
        for (int64_t L = 0; L < Lanes; ++L) {
          if (!Mask.isActive(L))
            continue;
          for (int32_t A = 0; A < N; ++A)
            LaneArgs[static_cast<size_t>(A)] = Regs[Ops[1 + A]].lane(L);
          ScalVal R;
          try {
            R = Impl->Fn(LaneArgs);
          } catch (const ExternError &E) {
            trap(TrapKind::ExternFailure,
                 "extern '" + EP.Callees[I.B] + "' failed: " + E.Message,
                 {L});
          }
          if (RetKind == ir::ScalarKind::Real)
            Out.R[static_cast<size_t>(L)] = R.asNumeric();
          else
            Out.I[static_cast<size_t>(L)] = R.I;
        }
      } else {
        std::vector<ScalVal> Vals;
        Vals.reserve(static_cast<size_t>(N));
        for (int32_t K = 0; K < N; ++K)
          Vals.push_back(Regs[Ops[1 + K]]);
        charge(Impl->Cost);
        if (CalleeWork[I.B])
          recordWorkStep();
        ScalVal Ret;
        try {
          Ret = Impl->Fn(Vals);
        } catch (const ExternError &E) {
          trap(TrapKind::ExternFailure,
               "extern '" + EP.Callees[I.B] + "' failed: " + E.Message);
        }
        if (I.A >= 0)
          Regs[I.A] = Ret;
      }
      break;
    }
    case Opcode::Jmp:
      PC = static_cast<size_t>(I.D);
      break;
    case Opcode::BrFalse:
      if constexpr (IsSimd) {
        SIMDFLAT_UNREACHABLE("BrFalse in a simd-mode program");
      } else {
        if (!Regs[I.A].asBool())
          PC = static_cast<size_t>(I.D);
      }
      break;
    case Opcode::UBrFalse:
      if constexpr (IsSimd) {
        if (uniformInt(Regs[I.A], EP.Msgs[I.B]) == 0)
          PC = static_cast<size_t>(I.D);
      } else {
        SIMDFLAT_UNREACHABLE("UBrFalse in a scalar-mode program");
      }
      break;
    case Opcode::ChargeOp:
      charge(cost(I.A));
      break;
    case Opcode::LoopIter:
      countLoopIteration();
      break;
    case Opcode::TrapMsg:
      trap(static_cast<TrapKind>(I.A), EP.Msgs[I.B]);
      break;
    case Opcode::Halt:
      Stats.Seconds = Stats.Cycles * Machine.SecondsPerCycle;
      return;
    case Opcode::CtlFromReg:
      if constexpr (IsSimd)
        Ctl[I.A] = uniformInt(Regs[I.B], EP.Msgs[I.C]);
      else
        Ctl[I.A] = Regs[I.B].asInt();
      break;
    case Opcode::CtlImm:
      Ctl[I.A] = EP.IntPool[I.B];
      break;
    case Opcode::CheckStep:
      if (Ctl[I.A] == 0)
        trap(TrapKind::InvalidProgram, EP.Msgs[I.B]);
      break;
    case Opcode::CtlInc:
      Ctl[I.A] += 1;
      break;
    case Opcode::TripRec:
      // Uncharged telemetry: the loop's trip counter (a dedicated ctl
      // slot) lands in its histogram at loop exit. Identical on every
      // bytecode policy; the tree oracle has no counterpart, which is
      // fine because the differential oracle never compares TripNests.
      Stats.TripNests[static_cast<size_t>(I.B)].Hist.record(Ctl[I.A]);
      break;
    case Opcode::DoBegin:
      if constexpr (IsSimd) {
        SIMDFLAT_UNREACHABLE("DoBegin in a simd-mode program");
      } else {
        if (Slice && *Slice && SliceDepth == 0) {
          assert(Ctl[I.A + 2] == 1 &&
                 "sliced parallel loop must have unit step");
          ++SliceDepth;
          OwnedRange R = ownedRange(Ctl[I.A], Ctl[I.A + 1]);
          Ctl[I.A] = R.Begin;
          Ctl[I.A + 1] = R.End;
          Ctl[I.A + 2] = R.Stride;
          Ctl[I.A + 3] = 1;
        } else {
          Ctl[I.A + 3] = 0;
        }
      }
      break;
    case Opcode::DoTest: {
      int64_t Step = Ctl[I.A + 2];
      if (!(Step > 0 ? Ctl[I.A] <= Ctl[I.A + 1]
                     : Ctl[I.A] >= Ctl[I.A + 1]))
        PC = static_cast<size_t>(I.D);
      break;
    }
    case Opcode::DoStep:
      Ctl[I.A] += Ctl[I.A + 2];
      break;
    case Opcode::DoEnd:
      if (Ctl[I.A + 3]) {
        --SliceDepth;
        Ctl[I.A + 3] = 0;
      }
      break;
    case Opcode::FaTest:
      if (Ctl[I.A] > Ctl[I.A + 1])
        PC = static_cast<size_t>(I.D);
      break;
    case Opcode::FaBegin:
      if constexpr (IsSimd) {
        Slot &IV = *Slots[I.A];
        if (IV.Width != Lanes)
          trap(TrapKind::InvalidProgram,
               "FORALL index '" + IV.Decl->Name +
                   "' must be a replicated variable");
        if (Ctl[I.B + 1] < Ctl[I.B]) {
          PC = static_cast<size_t>(I.D);
        } else {
          Ctl[I.B + 2] = 0;
          Ctl[I.B + 3] = Machine.layersFor(Ctl[I.B + 1]);
        }
      } else {
        SIMDFLAT_UNREACHABLE("FaBegin in a scalar-mode program");
      }
      break;
    case Opcode::FaLayerTest:
      if (Ctl[I.A + 2] >= Ctl[I.A + 3])
        PC = static_cast<size_t>(I.D);
      break;
    case Opcode::FaLayerMask:
      if constexpr (IsSimd) {
        Slot &IV = *Slots[I.A];
        int64_t Layer = Ctl[I.B + 2];
        int64_t Lo = Ctl[I.B], Hi = Ctl[I.B + 1];
        int64_t Chunk = Ctl[I.B + 3]; // block chunk height
        MaskTmp.assign(laneCount(), 0);
        std::vector<uint8_t> &Exists = MaskTmp;
        for (int64_t L = 0; L < Lanes; ++L) {
          int64_t E;
          if (Machine.DataLayout == machine::Layout::Cyclic)
            E = Layer * Lanes + L + 1;
          else
            E = L * Chunk + Layer + 1;
          IV.I[static_cast<size_t>(L)] = E;
          Exists[static_cast<size_t>(L)] = E >= Lo && E <= Hi;
        }
        charge(Machine.Costs.LogicOp);
        Mask.pushAnd(Exists);
      } else {
        SIMDFLAT_UNREACHABLE("FaLayerMask in a scalar-mode program");
      }
      break;
    case Opcode::WherePush:
      if constexpr (IsSimd) {
        const VecVal &C = Regs[I.A];
        MaskTmp.resize(laneCount());
        for (size_t K = 0; K < laneCount(); ++K)
          MaskTmp[K] = C.I[K] != 0;
        charge(Machine.Costs.LogicOp);
        Mask.pushAnd(MaskTmp);
      } else {
        SIMDFLAT_UNREACHABLE("WherePush in a scalar-mode program");
      }
      break;
    case Opcode::WhereFlip:
      if constexpr (IsSimd) {
        charge(Machine.Costs.LogicOp);
        Mask.flipTop();
      } else {
        SIMDFLAT_UNREACHABLE("WhereFlip in a scalar-mode program");
      }
      break;
    case Opcode::MaskPop:
      if constexpr (IsSimd) {
        Mask.pop();
      } else {
        SIMDFLAT_UNREACHABLE("MaskPop in a scalar-mode program");
      }
      break;
    }
  }
}

} // namespace detail
} // namespace exec
} // namespace simdflat

#endif // SIMDFLAT_EXEC_ENGINECORE_H
