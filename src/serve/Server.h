//===- serve/Server.h - Fault-tolerant serving core ------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-once/run-many serving core behind flattend. A Server
/// owns a worker thread pool fed by a bounded, weighted-fair admission
/// queue, the shared ProgramCache (byte-budgeted LRU + single-flight),
/// a per-program-hash CircuitBreaker, and a TenantRegistry enforcing
/// per-tenant quotas. Every submitted Request resolves to exactly one
/// structured Reply - the server never crashes, hangs, or drops a
/// request on the floor:
///
///  * Admission: a full queue sheds immediately with a depth-scaled
///    retry-after hint (reject, never block); over-budget requests shed
///    at submit time; tenant quotas (request rate, in-flight, fuel
///    rate, queue share) shed with a refill-time hint before the
///    request touches the shared queue.
///  * Fairness: the queue is a per-tenant stride-scheduled FairQueue,
///    so a tenant flooding the server cannot starve another tenant's
///    queued requests.
///  * Budgets: fuel bounds simulated work, the end-to-end deadline is
///    enforced in the queue (shed), through compilation (shed) and
///    inside the dispatch loop (DeadlineExpired trap); queue timeouts
///    shed before any work is spent.
///  * Failure containment: program faults are Trapped replies; compile
///    failures retry with exponential backoff, trip the breaker, and
///    degrade to the unflattened fallback; a worker-side exception
///    becomes a CompileError reply, not a dead thread.
///  * Lifecycle: beginDrain() stops admission (submissions shed with a
///    structured draining status) while queued and executing requests
///    finish; drain() waits for full resolution, shedding whatever is
///    still *queued* when the hard deadline passes. The destructor
///    remains an abrupt stop (workers shed the queue and exit).
///  * FaultPlan wires the campaign's faults (injected compile failure,
///    mid-flight eviction, worker stall, inflated cache costs) into all
///    of the above.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SERVE_SERVER_H
#define SIMDFLAT_SERVE_SERVER_H

#include "analysis/Profitability.h"
#include "interp/RunStats.h"
#include "machine/Machine.h"
#include "serve/CircuitBreaker.h"
#include "serve/FairQueue.h"
#include "serve/ProgramCache.h"
#include "serve/Serve.h"
#include "serve/TenantRegistry.h"

#include <chrono>
#include <deque>
#include <future>
#include <map>
#include <thread>
#include <vector>

namespace simdflat {
namespace serve {

struct ServerOptions {
  /// Worker threads executing requests.
  int Workers = 2;
  /// Bounded admission queue; submissions beyond it shed.
  size_t QueueCapacity = 16;
  /// Compiled programs kept resident (LRU beyond this).
  size_t CacheCapacity = 64;
  /// Compiled-program byte budget (ProgramCache::Options::MaxBytes;
  /// 0 = unmetered).
  size_t CacheMaxBytes = 0;
  /// Per-tenant cache occupancy cap in bytes (0 = unmetered).
  size_t CacheTenantMaxBytes = 0;
  /// Admission bound on Request::Lanes.
  int64_t MaxLanes = 64;
  /// When > 0, every request must carry 0 < Fuel <= MaxFuel or it is
  /// shed at submit: the serving limit that stops one request from
  /// consuming unbounded simulator time.
  int64_t MaxFuel = 0;
  /// Admission bound on source size (hostile-input guard).
  size_t MaxSourceBytes = 1u << 20;
  /// Compile attempts beyond the first before giving up on a
  /// transiently failing compile.
  int CompileRetries = 2;
  /// Exponential backoff between compile retries: base * 2^(try-1),
  /// capped. Kept in microseconds so tests stay fast.
  int64_t BackoffBaseMicros = 200;
  int64_t BackoffCapMicros = 20'000;
  /// Base retry hint attached to load-shed replies. Congestion sheds
  /// scale it by queue depth (base * (1 + depth/workers)); quota sheds
  /// use the bucket refill time when it is larger.
  int64_t RetryAfterMs = 5;
  /// Quota applied to every tenant without an explicit override. The
  /// default is fully unmetered (single-tenant back-compat).
  TenantQuota DefaultQuota;
  /// Named per-tenant quota overrides.
  std::map<std::string, TenantQuota> TenantQuotas;
  /// Virtual-time clock for the quota buckets (null: steady_clock).
  /// Tests freeze or step it for deterministic admission sequences.
  ClockFn QuotaClock;
  /// Lane layout every compiled program uses.
  machine::Layout Layout = machine::Layout::Cyclic;
  /// Execution engine every request runs under (flattend --engine).
  /// Tagged into each reply's telemetry. Tree is allowed (the oracle
  /// engine serves correctly, just slowly); HostSimd maps model lanes
  /// onto host vector lanes.
  interp::Engine Eng = interp::Engine::Bytecode;
  /// Profile-guided adaptive strategy selection. Off: every primary
  /// compile is the static flattened pipeline (bit-identical legacy
  /// behaviour). On: the server runs an explore/exploit split per
  /// distinct program. Probe requests compile under the *unflattened*
  /// strategy, whose inner serial loop records one trip sample per
  /// source row - the exact distribution the Sec. 6 cost model
  /// consumes (a transformed variant's own loops report its schedule,
  /// not the source trips, which would blind the feedback loop). Every
  /// request is a probe until the dominant nest has AdaptiveMinSamples;
  /// then the server picks the cheapest strategy (unflattened /
  /// flattened / coalesced) and non-probe requests compile under it -
  /// a new canonical key through the same single-flight cache, with
  /// every AdaptiveProbeEvery-th request still probing. When the
  /// probed distribution drifts past AdaptiveDriftThreshold
  /// (total-variation distance against the decision-time snapshot),
  /// the choice is recomputed; a changed choice is a respecialization.
  /// Requires a bytecode-family engine (the tree engine reports no
  /// trip histograms, so adaptive mode never leaves the probe phase
  /// under it).
  bool Adaptive = false;
  /// Dominant-nest probe samples required before the first decision
  /// and before each drift evaluation window counts.
  int64_t AdaptiveMinSamples = 8;
  /// Total-variation distance (0..1) between the post-decision probe
  /// window and the decision snapshot beyond which the server
  /// re-decides.
  double AdaptiveDriftThreshold = 0.25;
  /// Recency window for drift detection (flattend --adaptive-window).
  /// 0 (the default) keeps the legacy behaviour: probe observations
  /// accumulate from the last decision onward, so a drift that has
  /// long since receded still weighs on the comparison. N > 0 keeps
  /// only the N most recent probe runs in a ring; the drift
  /// total-variation test sees just their merged histogram, so the
  /// server re-decides on what the workload looks like *now* and a
  /// transient spike ages out instead of poisoning the window forever.
  /// AdaptiveMinSamples still gates each evaluation, so N must admit
  /// at least that many dominant-nest samples for drift to ever fire.
  int64_t AdaptiveWindow = 0;
  /// After a decision, probe (and profile) every Nth request; the rest
  /// exploit the decided strategy. 0 freezes the choice: no probes, no
  /// drift detection, until the server restarts. Irrelevant while the
  /// decided strategy is Unflattened (every serve is then a probe).
  int64_t AdaptiveProbeEvery = 8;
  /// Static bounds handed to the coalescing transform when the
  /// adaptive layer selects Strategy::Coalesced (see
  /// transform::StrategyPolicy).
  int64_t AdaptiveCoalesceMaxOuter = 64;
  int64_t AdaptiveCoalesceMaxTotal = 4096;
  CircuitBreaker::Options Breaker;
  FaultPlan Faults;
};

class Server {
public:
  explicit Server(ServerOptions O = {});
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Admits \p R. Never blocks: a full queue, an exhausted tenant
  /// quota, a draining or stopping server, or an over-budget request
  /// resolves the future immediately with a Shed reply. The future
  /// always becomes ready.
  std::future<Reply> submit(Request R);

  /// Stops admission: every later submit() sheds with a structured
  /// draining status while already-admitted requests keep executing.
  /// Idempotent.
  void beginDrain();
  /// beginDrain(), then waits for every admitted request to resolve.
  /// When \p HardDeadlineMs elapses first (0 = wait forever), requests
  /// still *queued* are shed (draining status) and the wait continues
  /// for the ones already executing - those are bounded by their own
  /// fuel/deadline budgets. Returns true when everything resolved
  /// without a deadline sweep.
  bool drain(int64_t HardDeadlineMs);
  /// Admission is closed (beginDrain was called).
  bool draining() const;

  /// Snapshot of the counters (cache/breaker/tenant numbers merged in).
  ServerStats stats() const;
  /// Per-tenant counter snapshot (also embedded in stats()).
  std::map<std::string, TenantStats> tenantStats() const;

  /// Requests currently queued (not yet picked up by a worker).
  size_t queueDepth() const;
  /// Admitted requests not yet resolved (queued + executing).
  size_t inFlight() const;

  /// The shared program cache (tests observe size/stats).
  const ProgramCache &cache() const { return Cache; }
  /// The breaker (tests observe per-key state).
  const CircuitBreaker &breaker() const { return Breaker; }
  /// The tenant registry (tests observe quotas and per-tenant state).
  const TenantRegistry &tenants() const { return Tenants; }

  const ServerOptions &options() const { return Opts; }

private:
  struct Job {
    Request Req;
    /// Normalized tenant (never empty).
    std::string Tenant;
    std::promise<Reply> Done;
    std::chrono::steady_clock::time_point Enqueued;
    /// Absolute end-to-end deadline (Request::DeadlineMs).
    std::optional<std::chrono::steady_clock::time_point> Deadline;
    /// Absolute queue-residency bound (Request::QueueTimeoutMs).
    std::optional<std::chrono::steady_clock::time_point> QueueDeadline;
  };

  /// Per-program adaptive state, keyed by the *base* canonical key (the
  /// strategy-free key, so every strategy variant of a program shares
  /// one profile).
  struct AdaptiveState {
    /// Probe-observed per-nest trip stats since the last decision (the
    /// drift evaluation window; cleared at each decision). With
    /// ServerOptions::AdaptiveWindow > 0 this is rebuilt from Ring on
    /// every probe instead of accumulating forever.
    std::vector<interp::NestTripStats> Window;
    /// The most recent probe runs' per-nest trip stats, newest last;
    /// bounded by ServerOptions::AdaptiveWindow (unused when 0).
    std::deque<std::vector<interp::NestTripStats>> Ring;
    /// Dominant-nest histogram the current policy was decided on.
    interp::TripHistogram Snapshot;
    /// Current policy; nullopt until the first decision (every request
    /// probes meanwhile).
    std::optional<transform::StrategyPolicy> Policy;
    /// Decision count for this program (telemetry StrategyEpoch).
    int64_t Epoch = 0;
    /// Exploit serves since the last probe (AdaptiveProbeEvery cadence).
    int64_t SinceProbe = 0;
  };

  /// What one adaptive request should do: the policy to compile under,
  /// the epoch to tag into telemetry, and whether this run's observed
  /// trips feed the profile.
  struct AdaptiveRoute {
    transform::StrategyPolicy Policy;
    int64_t Epoch = 0;
    bool Probe = false;
  };

  void workerLoop();
  /// Everything after dequeue; returns the reply (outcome counted).
  Reply process(Job &J);
  /// Routes one request through the explore/exploit split for
  /// \p BaseKey (bumps the probe cadence counter).
  AdaptiveRoute adaptiveRoute(uint64_t BaseKey);
  /// Folds one probe run's observed trip histograms into the profile
  /// and decides / re-decides the strategy when warranted.
  void recordObservedTrips(uint64_t BaseKey,
                           const std::vector<interp::NestTripStats> &Nests,
                           int64_t Lanes);
  /// Builds (and counts) a Shed reply. \p Admitted routes the tenant
  /// count to ShedInService vs ShedAtAdmission.
  Reply shed(const Job &J, std::string Why, int64_t RetryAfterMs,
             bool Admitted);
  Reply shedRequest(const Request &R, const std::string &Tenant,
                    std::string Why, int64_t RetryAfterMs, bool Admitted,
                    bool Draining = false);
  /// Builds (and counts) a CompileError reply.
  Reply compileError(const Job &J, std::string Why);
  void countOutcome(Outcome O, const std::string &Tenant, bool Admitted);
  /// Resolves an *admitted* job: fulfills the promise, releases the
  /// tenant's in-flight slot, and signals the drain waiters.
  void resolveJob(Job &J, Reply Rep);
  /// Congestion retry hint: base scaled by queue depth per worker.
  int64_t scaledRetryMs(size_t Depth) const;

  ServerOptions Opts;
  ProgramCache Cache;
  CircuitBreaker Breaker;
  TenantRegistry Tenants;

  mutable std::mutex QueueM;
  std::condition_variable QueueCv;
  FairQueue<Job> Queue;
  bool Stopping = false;
  bool Draining = false;
  /// Admitted-but-unresolved jobs (queued + executing); drain waits on
  /// it reaching zero.
  size_t Unresolved = 0;
  std::condition_variable DrainCv;

  mutable std::mutex StatsM;
  ServerStats Stats;

  mutable std::mutex AdaptiveM;
  std::map<uint64_t, AdaptiveState> AdaptiveStates;

  std::vector<std::thread> Workers;
};

} // namespace serve
} // namespace simdflat

#endif // SIMDFLAT_SERVE_SERVER_H
