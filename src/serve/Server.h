//===- serve/Server.h - Fault-tolerant serving core ------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-once/run-many serving core behind flattend. A Server
/// owns a worker thread pool fed by a bounded, weighted-fair admission
/// queue, the shared ProgramCache (byte-budgeted LRU + single-flight),
/// a per-program-hash CircuitBreaker, and a TenantRegistry enforcing
/// per-tenant quotas. Every submitted Request resolves to exactly one
/// structured Reply - the server never crashes, hangs, or drops a
/// request on the floor:
///
///  * Admission: a full queue sheds immediately with a depth-scaled
///    retry-after hint (reject, never block); over-budget requests shed
///    at submit time; tenant quotas (request rate, in-flight, fuel
///    rate, queue share) shed with a refill-time hint before the
///    request touches the shared queue.
///  * Fairness: the queue is a per-tenant stride-scheduled FairQueue,
///    so a tenant flooding the server cannot starve another tenant's
///    queued requests.
///  * Budgets: fuel bounds simulated work, the end-to-end deadline is
///    enforced in the queue (shed), through compilation (shed) and
///    inside the dispatch loop (DeadlineExpired trap); queue timeouts
///    shed before any work is spent.
///  * Failure containment: program faults are Trapped replies; compile
///    failures retry with exponential backoff, trip the breaker, and
///    degrade to the unflattened fallback; a worker-side exception
///    becomes a CompileError reply, not a dead thread.
///  * Lifecycle: beginDrain() stops admission (submissions shed with a
///    structured draining status) while queued and executing requests
///    finish; drain() waits for full resolution, shedding whatever is
///    still *queued* when the hard deadline passes. The destructor
///    remains an abrupt stop (workers shed the queue and exit).
///  * FaultPlan wires the campaign's faults (injected compile failure,
///    mid-flight eviction, worker stall, inflated cache costs) into all
///    of the above.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SERVE_SERVER_H
#define SIMDFLAT_SERVE_SERVER_H

#include "interp/RunStats.h"
#include "machine/Machine.h"
#include "serve/CircuitBreaker.h"
#include "serve/FairQueue.h"
#include "serve/ProgramCache.h"
#include "serve/Serve.h"
#include "serve/TenantRegistry.h"

#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <vector>

namespace simdflat {
namespace serve {

struct ServerOptions {
  /// Worker threads executing requests.
  int Workers = 2;
  /// Bounded admission queue; submissions beyond it shed.
  size_t QueueCapacity = 16;
  /// Compiled programs kept resident (LRU beyond this).
  size_t CacheCapacity = 64;
  /// Compiled-program byte budget (ProgramCache::Options::MaxBytes;
  /// 0 = unmetered).
  size_t CacheMaxBytes = 0;
  /// Per-tenant cache occupancy cap in bytes (0 = unmetered).
  size_t CacheTenantMaxBytes = 0;
  /// Admission bound on Request::Lanes.
  int64_t MaxLanes = 64;
  /// When > 0, every request must carry 0 < Fuel <= MaxFuel or it is
  /// shed at submit: the serving limit that stops one request from
  /// consuming unbounded simulator time.
  int64_t MaxFuel = 0;
  /// Admission bound on source size (hostile-input guard).
  size_t MaxSourceBytes = 1u << 20;
  /// Compile attempts beyond the first before giving up on a
  /// transiently failing compile.
  int CompileRetries = 2;
  /// Exponential backoff between compile retries: base * 2^(try-1),
  /// capped. Kept in microseconds so tests stay fast.
  int64_t BackoffBaseMicros = 200;
  int64_t BackoffCapMicros = 20'000;
  /// Base retry hint attached to load-shed replies. Congestion sheds
  /// scale it by queue depth (base * (1 + depth/workers)); quota sheds
  /// use the bucket refill time when it is larger.
  int64_t RetryAfterMs = 5;
  /// Quota applied to every tenant without an explicit override. The
  /// default is fully unmetered (single-tenant back-compat).
  TenantQuota DefaultQuota;
  /// Named per-tenant quota overrides.
  std::map<std::string, TenantQuota> TenantQuotas;
  /// Virtual-time clock for the quota buckets (null: steady_clock).
  /// Tests freeze or step it for deterministic admission sequences.
  ClockFn QuotaClock;
  /// Lane layout every compiled program uses.
  machine::Layout Layout = machine::Layout::Cyclic;
  /// Execution engine every request runs under (flattend --engine).
  /// Tagged into each reply's telemetry. Tree is allowed (the oracle
  /// engine serves correctly, just slowly); HostSimd maps model lanes
  /// onto host vector lanes.
  interp::Engine Eng = interp::Engine::Bytecode;
  CircuitBreaker::Options Breaker;
  FaultPlan Faults;
};

class Server {
public:
  explicit Server(ServerOptions O = {});
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Admits \p R. Never blocks: a full queue, an exhausted tenant
  /// quota, a draining or stopping server, or an over-budget request
  /// resolves the future immediately with a Shed reply. The future
  /// always becomes ready.
  std::future<Reply> submit(Request R);

  /// Stops admission: every later submit() sheds with a structured
  /// draining status while already-admitted requests keep executing.
  /// Idempotent.
  void beginDrain();
  /// beginDrain(), then waits for every admitted request to resolve.
  /// When \p HardDeadlineMs elapses first (0 = wait forever), requests
  /// still *queued* are shed (draining status) and the wait continues
  /// for the ones already executing - those are bounded by their own
  /// fuel/deadline budgets. Returns true when everything resolved
  /// without a deadline sweep.
  bool drain(int64_t HardDeadlineMs);
  /// Admission is closed (beginDrain was called).
  bool draining() const;

  /// Snapshot of the counters (cache/breaker/tenant numbers merged in).
  ServerStats stats() const;
  /// Per-tenant counter snapshot (also embedded in stats()).
  std::map<std::string, TenantStats> tenantStats() const;

  /// Requests currently queued (not yet picked up by a worker).
  size_t queueDepth() const;
  /// Admitted requests not yet resolved (queued + executing).
  size_t inFlight() const;

  /// The shared program cache (tests observe size/stats).
  const ProgramCache &cache() const { return Cache; }
  /// The breaker (tests observe per-key state).
  const CircuitBreaker &breaker() const { return Breaker; }
  /// The tenant registry (tests observe quotas and per-tenant state).
  const TenantRegistry &tenants() const { return Tenants; }

  const ServerOptions &options() const { return Opts; }

private:
  struct Job {
    Request Req;
    /// Normalized tenant (never empty).
    std::string Tenant;
    std::promise<Reply> Done;
    std::chrono::steady_clock::time_point Enqueued;
    /// Absolute end-to-end deadline (Request::DeadlineMs).
    std::optional<std::chrono::steady_clock::time_point> Deadline;
    /// Absolute queue-residency bound (Request::QueueTimeoutMs).
    std::optional<std::chrono::steady_clock::time_point> QueueDeadline;
  };

  void workerLoop();
  /// Everything after dequeue; returns the reply (outcome counted).
  Reply process(Job &J);
  /// Builds (and counts) a Shed reply. \p Admitted routes the tenant
  /// count to ShedInService vs ShedAtAdmission.
  Reply shed(const Job &J, std::string Why, int64_t RetryAfterMs,
             bool Admitted);
  Reply shedRequest(const Request &R, const std::string &Tenant,
                    std::string Why, int64_t RetryAfterMs, bool Admitted,
                    bool Draining = false);
  /// Builds (and counts) a CompileError reply.
  Reply compileError(const Job &J, std::string Why);
  void countOutcome(Outcome O, const std::string &Tenant, bool Admitted);
  /// Resolves an *admitted* job: fulfills the promise, releases the
  /// tenant's in-flight slot, and signals the drain waiters.
  void resolveJob(Job &J, Reply Rep);
  /// Congestion retry hint: base scaled by queue depth per worker.
  int64_t scaledRetryMs(size_t Depth) const;

  ServerOptions Opts;
  ProgramCache Cache;
  CircuitBreaker Breaker;
  TenantRegistry Tenants;

  mutable std::mutex QueueM;
  std::condition_variable QueueCv;
  FairQueue<Job> Queue;
  bool Stopping = false;
  bool Draining = false;
  /// Admitted-but-unresolved jobs (queued + executing); drain waits on
  /// it reaching zero.
  size_t Unresolved = 0;
  std::condition_variable DrainCv;

  mutable std::mutex StatsM;
  ServerStats Stats;

  std::vector<std::thread> Workers;
};

} // namespace serve
} // namespace simdflat

#endif // SIMDFLAT_SERVE_SERVER_H
