//===- serve/Server.h - Fault-tolerant serving core ------------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-once/run-many serving core behind flattend. A Server
/// owns a worker thread pool fed by a bounded admission queue, the
/// shared ProgramCache (LRU + single-flight), and a per-program-hash
/// CircuitBreaker. Every submitted Request resolves to exactly one
/// structured Reply - the server never crashes, hangs, or drops a
/// request on the floor:
///
///  * Admission: a full queue sheds immediately with a retry-after hint
///    (reject, never block); over-budget requests shed at submit time.
///  * Budgets: fuel bounds simulated work, the end-to-end deadline is
///    enforced in the queue (shed), through compilation (shed) and
///    inside the dispatch loop (DeadlineExpired trap); queue timeouts
///    shed before any work is spent.
///  * Failure containment: program faults are Trapped replies; compile
///    failures retry with exponential backoff, trip the breaker, and
///    degrade to the unflattened fallback; a worker-side exception
///    becomes a CompileError reply, not a dead thread.
///  * FaultPlan wires the campaign's faults (injected compile failure,
///    mid-flight eviction, worker stall) into all of the above.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SERVE_SERVER_H
#define SIMDFLAT_SERVE_SERVER_H

#include "interp/RunStats.h"
#include "machine/Machine.h"
#include "serve/CircuitBreaker.h"
#include "serve/ProgramCache.h"
#include "serve/Serve.h"

#include <chrono>
#include <deque>
#include <future>
#include <thread>
#include <vector>

namespace simdflat {
namespace serve {

struct ServerOptions {
  /// Worker threads executing requests.
  int Workers = 2;
  /// Bounded admission queue; submissions beyond it shed.
  size_t QueueCapacity = 16;
  /// Compiled programs kept resident (LRU beyond this).
  size_t CacheCapacity = 64;
  /// Admission bound on Request::Lanes.
  int64_t MaxLanes = 64;
  /// When > 0, every request must carry 0 < Fuel <= MaxFuel or it is
  /// shed at submit: the serving limit that stops one request from
  /// consuming unbounded simulator time.
  int64_t MaxFuel = 0;
  /// Admission bound on source size (hostile-input guard).
  size_t MaxSourceBytes = 1u << 20;
  /// Compile attempts beyond the first before giving up on a
  /// transiently failing compile.
  int CompileRetries = 2;
  /// Exponential backoff between compile retries: base * 2^(try-1),
  /// capped. Kept in microseconds so tests stay fast.
  int64_t BackoffBaseMicros = 200;
  int64_t BackoffCapMicros = 20'000;
  /// Retry hint attached to load-shed replies.
  int64_t RetryAfterMs = 5;
  /// Lane layout every compiled program uses.
  machine::Layout Layout = machine::Layout::Cyclic;
  /// Execution engine every request runs under (flattend --engine).
  /// Tagged into each reply's telemetry. Tree is allowed (the oracle
  /// engine serves correctly, just slowly); HostSimd maps model lanes
  /// onto host vector lanes.
  interp::Engine Eng = interp::Engine::Bytecode;
  CircuitBreaker::Options Breaker;
  FaultPlan Faults;
};

class Server {
public:
  explicit Server(ServerOptions O = {});
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Admits \p R. Never blocks: a full queue, a stopping server, or an
  /// over-budget request resolves the future immediately with a Shed
  /// reply. The future always becomes ready.
  std::future<Reply> submit(Request R);

  /// Snapshot of the counters (cache/breaker numbers merged in).
  ServerStats stats() const;

  /// Requests currently queued (not yet picked up by a worker).
  size_t queueDepth() const;

  /// The shared program cache (tests observe size/stats).
  const ProgramCache &cache() const { return Cache; }
  /// The breaker (tests observe per-key state).
  const CircuitBreaker &breaker() const { return Breaker; }

  const ServerOptions &options() const { return Opts; }

private:
  struct Job {
    Request Req;
    std::promise<Reply> Done;
    std::chrono::steady_clock::time_point Enqueued;
    /// Absolute end-to-end deadline (Request::DeadlineMs).
    std::optional<std::chrono::steady_clock::time_point> Deadline;
    /// Absolute queue-residency bound (Request::QueueTimeoutMs).
    std::optional<std::chrono::steady_clock::time_point> QueueDeadline;
  };

  void workerLoop();
  /// Everything after dequeue; returns the reply (outcome counted).
  Reply process(Job &J);
  /// Builds (and counts) a Shed reply.
  Reply shed(const Job &J, std::string Why, int64_t RetryAfterMs);
  Reply shedRequest(const Request &R, std::string Why,
                    int64_t RetryAfterMs);
  /// Builds (and counts) a CompileError reply.
  Reply compileError(const Job &J, std::string Why);
  void countOutcome(Outcome O);

  ServerOptions Opts;
  ProgramCache Cache;
  CircuitBreaker Breaker;

  mutable std::mutex QueueM;
  std::condition_variable QueueCv;
  std::deque<Job> Queue;
  bool Stopping = false;

  mutable std::mutex StatsM;
  ServerStats Stats;

  std::vector<std::thread> Workers;
};

} // namespace serve
} // namespace simdflat

#endif // SIMDFLAT_SERVE_SERVER_H
