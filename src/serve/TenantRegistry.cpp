//===- serve/TenantRegistry.cpp -------------------------------*- C++ -*-===//

#include "serve/TenantRegistry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

using namespace simdflat;
using namespace simdflat::serve;

namespace {

int64_t steadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Milliseconds until \p Deficit tokens exist at \p RatePerSec, rounded
/// up and floored at 1 so shed replies never claim "retry now" while
/// refusing.
int64_t refillMillis(double Deficit, double RatePerSec) {
  if (RatePerSec <= 0)
    return 0;
  double Ms = std::ceil(Deficit / RatePerSec * 1000.0);
  return std::max<int64_t>(1, (int64_t)Ms);
}

} // namespace

TenantRegistry::TenantRegistry(TenantQuota Default, ClockFn Clock)
    : Default(Default), Clock(std::move(Clock)) {}

void TenantRegistry::setQuota(const std::string &T, TenantQuota Q) {
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = Map[T];
  E.Q = Q;
  E.HasQuota = true;
  E.Primed = false; // re-prime to the new burst on the next admit
}

TenantQuota TenantRegistry::quotaFor(const std::string &T) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(T);
  if (It != Map.end() && It->second.HasQuota)
    return It->second.Q;
  return Default;
}

TenantRegistry::Entry &TenantRegistry::entryLocked(const std::string &T) {
  Entry &E = Map[T];
  if (!E.HasQuota && !E.Primed)
    E.Q = Default;
  return E;
}

void TenantRegistry::refillLocked(Entry &E, int64_t NowNanos) {
  if (!E.Primed) {
    // First sighting (or quota change): full buckets, clock anchored.
    E.ReqTokens = (double)std::max<int64_t>(E.Q.Burst, 1);
    E.FuelTokens = (double)(E.Q.FuelBurst > 0 ? E.Q.FuelBurst
                                              : (int64_t)E.Q.FuelPerSec);
    E.LastRefillNanos = NowNanos;
    E.Primed = true;
    return;
  }
  int64_t Dt = NowNanos - E.LastRefillNanos;
  if (Dt <= 0)
    return; // frozen or non-advancing clock: no refill, fully
            // deterministic
  double Sec = (double)Dt / 1e9;
  double ReqCap = (double)std::max<int64_t>(E.Q.Burst, 1);
  double FuelCap = (double)(E.Q.FuelBurst > 0 ? E.Q.FuelBurst
                                              : (int64_t)E.Q.FuelPerSec);
  E.ReqTokens = std::min(ReqCap, E.ReqTokens + Sec * E.Q.RatePerSec);
  E.FuelTokens = std::min(FuelCap, E.FuelTokens + Sec * E.Q.FuelPerSec);
  E.LastRefillNanos = NowNanos;
}

TenantRegistry::Decision TenantRegistry::tryAdmit(const std::string &T,
                                                  int64_t Fuel) {
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = entryLocked(T);
  refillLocked(E, Clock ? Clock() : steadyNanos());

  Decision D;
  // Check everything before charging anything, so a refusal is free.
  if (E.Q.MaxInFlight > 0 && E.InFlight >= E.Q.MaxInFlight) {
    D.Admit = false;
    std::ostringstream OS;
    OS << "tenant '" << T << "' at its in-flight quota (" << E.Q.MaxInFlight
       << ")";
    D.Reason = OS.str();
    // No refill clock prices a slot; the caller applies its floor.
    return D;
  }
  if (E.Q.RatePerSec > 0 && E.ReqTokens < 1.0) {
    D.Admit = false;
    std::ostringstream OS;
    OS << "tenant '" << T << "' request-rate quota exhausted ("
       << E.Q.RatePerSec << "/s, burst " << E.Q.Burst << ")";
    D.Reason = OS.str();
    D.RetryAfterMs = refillMillis(1.0 - E.ReqTokens, E.Q.RatePerSec);
    return D;
  }
  if (E.Q.FuelPerSec > 0) {
    if (Fuel <= 0) {
      D.Admit = false;
      std::ostringstream OS;
      OS << "tenant '" << T
         << "' is fuel-metered: requests must declare fuel > 0";
      D.Reason = OS.str();
      D.Permanent = true;
      return D;
    }
    double FuelCap = (double)(E.Q.FuelBurst > 0 ? E.Q.FuelBurst
                                                : (int64_t)E.Q.FuelPerSec);
    if ((double)Fuel > FuelCap) {
      D.Admit = false;
      std::ostringstream OS;
      OS << "fuel " << Fuel << " exceeds tenant '" << T
         << "' fuel burst capacity " << (int64_t)FuelCap;
      D.Reason = OS.str();
      D.Permanent = true; // no amount of waiting fills the bucket enough
      return D;
    }
    if (E.FuelTokens < (double)Fuel) {
      D.Admit = false;
      std::ostringstream OS;
      OS << "tenant '" << T << "' fuel quota exhausted (" << E.Q.FuelPerSec
         << "/s)";
      D.Reason = OS.str();
      D.RetryAfterMs =
          refillMillis((double)Fuel - E.FuelTokens, E.Q.FuelPerSec);
      return D;
    }
  }

  // Admitted: charge the buckets and take the in-flight slot.
  if (E.Q.RatePerSec > 0)
    E.ReqTokens -= 1.0;
  if (E.Q.FuelPerSec > 0)
    E.FuelTokens -= (double)Fuel;
  ++E.InFlight;
  return D;
}

void TenantRegistry::release(const std::string &T) {
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = entryLocked(T);
  if (E.InFlight > 0)
    --E.InFlight;
}

void TenantRegistry::countSubmitted(const std::string &T) {
  std::lock_guard<std::mutex> Lock(M);
  ++entryLocked(T).Stats.Submitted;
}

void TenantRegistry::countAdmitted(const std::string &T) {
  std::lock_guard<std::mutex> Lock(M);
  ++entryLocked(T).Stats.Admitted;
}

void TenantRegistry::countOutcome(const std::string &T, Outcome O,
                                  bool AfterAdmission) {
  std::lock_guard<std::mutex> Lock(M);
  TenantStats &S = entryLocked(T).Stats;
  switch (O) {
  case Outcome::Served:
    ++S.Served;
    break;
  case Outcome::Trapped:
    ++S.Trapped;
    break;
  case Outcome::Shed:
    ++(AfterAdmission ? S.ShedInService : S.ShedAtAdmission);
    break;
  case Outcome::CompileError:
    ++S.CompileErrors;
    break;
  }
}

int64_t TenantRegistry::inFlight(const std::string &T) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(T);
  return It == Map.end() ? 0 : It->second.InFlight;
}

TenantStats TenantRegistry::statsFor(const std::string &T) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(T);
  return It == Map.end() ? TenantStats{} : It->second.Stats;
}

std::map<std::string, TenantStats> TenantRegistry::statsSnapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  std::map<std::string, TenantStats> Out;
  for (const auto &[Name, E] : Map)
    if (E.Stats.Submitted > 0)
      Out.emplace(Name, E.Stats);
  return Out;
}

bool TenantRegistry::consistent() const {
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &[Name, E] : Map) {
    (void)Name;
    if (!E.Stats.consistent())
      return false;
  }
  return true;
}
