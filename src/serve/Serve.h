//===- serve/Serve.h - Serving-core request/reply types --------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vocabulary of the flattening service: one Request in, exactly one
/// structured Reply out, always. A reply's outcome is one of four
/// buckets - Served (ran to completion), Trapped (the *program* faulted
/// with a structured interp::Trap, including fuel and deadline
/// exhaustion mid-run), Shed (the *server* declined: queue full, queue
/// timeout, over-budget request, shutdown), CompileError (the program
/// itself is unusable: parse failure, pipeline failure with no fallback,
/// bad runtime inputs) - and the accounting invariant
///
///   Served + Trapped + Shed + CompileErrors == Submitted
///
/// holds at every instant the queue is drained. Every request belongs
/// to a tenant (defaulting to "default"), and the same conservation law
/// holds per tenant, split at the admission boundary (TenantStats):
///
///   Admitted == Served + Trapped + CompileErrors + ShedInService
///
/// FaultPlan is the serving-layer counterpart of the fuzz campaign's
/// fault knobs: the campaign uses it to hammer the cache, the workers
/// and the breaker the same way it hammers the executors.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SERVE_SERVE_H
#define SIMDFLAT_SERVE_SERVE_H

#include "interp/Trap.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace simdflat {
namespace serve {

/// The four reply buckets. Every submitted request lands in exactly one.
enum class Outcome {
  /// Ran to completion; results and telemetry attached.
  Served,
  /// The program faulted mid-run with a structured trap (out-of-bounds,
  /// fuel exhausted, deadline expired, ...). Reply::T holds it.
  Trapped,
  /// The server declined to execute: admission queue full, queue
  /// timeout, deadline expired before execution, over-budget request,
  /// or shutdown. Reply::RetryAfterMs hints when to retry (0: never).
  Shed,
  /// The program or its inputs are unusable: parse failure, pipeline
  /// failure with no fallback, undeclared/mis-sized runtime inputs.
  CompileError,
};

/// Stable lowercase name ("served", "trapped", "shed", "compile-error").
const char *outcomeName(Outcome O);

/// Parses an outcome name; false if \p Name matches none.
bool outcomeFromName(const std::string &Name, Outcome &Out);

/// The tenant a request lands on when it names none.
inline const char *defaultTenant() { return "default"; }

/// One tenant's quota envelope. Zero-valued knobs are unmetered, so the
/// default quota admits everything (back-compatible single-tenant
/// behaviour). Enforced by serve::TenantRegistry.
struct TenantQuota {
  /// Request tokens refilled per second (0 = unmetered rate).
  double RatePerSec = 0;
  /// Request bucket capacity: the burst admitted from a full bucket.
  int64_t Burst = 8;
  /// Admitted-but-unresolved requests allowed at once (0 = unmetered).
  int64_t MaxInFlight = 0;
  /// Fuel tokens refilled per second (0 = fuel unmetered). A metered
  /// tenant must declare Request::Fuel > 0 or admission refuses.
  double FuelPerSec = 0;
  /// Fuel bucket capacity (0: one second's refill, i.e. FuelPerSec).
  int64_t FuelBurst = 0;
  /// Entries this tenant may hold in the admission queue at once
  /// (0 = bounded only by the global queue capacity), so one hot tenant
  /// cannot monopolize the shared queue.
  int64_t MaxQueued = 0;
  /// Weighted-fair dequeue share (see FairQueue).
  int Weight = 1;
};

/// Per-tenant outcome counters. Sheds are split at the admission
/// boundary so "admitted = served + shed + trapped (+ compile-error)"
/// is checkable per tenant.
struct TenantStats {
  int64_t Submitted = 0;
  /// Entered the admission queue (passed budgets, quotas and capacity).
  int64_t Admitted = 0;
  int64_t Served = 0;
  int64_t Trapped = 0;
  int64_t CompileErrors = 0;
  /// Refused before entering the queue: quota, budget envelope, queue
  /// capacity, draining, shutdown.
  int64_t ShedAtAdmission = 0;
  /// Shed after admission: queue timeout, deadline-before-execution,
  /// drain-deadline sweep, shutdown sweep.
  int64_t ShedInService = 0;

  int64_t shed() const { return ShedAtAdmission + ShedInService; }
  /// Both per-tenant conservation laws (true whenever no request of
  /// this tenant is in flight).
  bool consistent() const {
    return Served + Trapped + CompileErrors + ShedAtAdmission +
                   ShedInService ==
               Submitted &&
           Served + Trapped + CompileErrors + ShedInService == Admitted;
  }
};

/// One serving request: a mini-Fortran program plus runtime inputs and
/// its budget envelope (fuel, end-to-end deadline, queue timeout).
struct Request {
  /// Caller-chosen id echoed in the reply (replies complete out of
  /// submission order).
  uint64_t Id = 0;
  /// Tenant the request is accounted to (quotas, fair dequeue, cache
  /// occupancy). Empty maps to defaultTenant().
  std::string Tenant;
  /// Program source (the flattenc mini-Fortran dialect).
  std::string Source;

  /// \name Runtime inputs, validated against the program's declarations
  /// before seeding (a typo or size mismatch is a CompileError reply,
  /// never a crash).
  /// @{
  std::map<std::string, int64_t> Ints;
  std::map<std::string, std::vector<int64_t>> IntArrays;
  std::map<std::string, std::vector<double>> RealArrays;
  /// @}

  /// \name Budget envelope.
  /// @{
  /// Simulator lanes (1..ServerOptions::MaxLanes).
  int64_t Lanes = 4;
  /// Instruction budget (0 = unlimited; shed when the server enforces
  /// ServerOptions::MaxFuel).
  int64_t Fuel = 0;
  /// End-to-end wall-clock budget from submission, in milliseconds
  /// (0 = none). Expiry before execution sheds; expiry mid-run traps
  /// with DeadlineExpired.
  int64_t DeadlineMs = 0;
  /// Maximum time the request may sit in the admission queue (0 = no
  /// limit beyond DeadlineMs).
  int64_t QueueTimeoutMs = 0;
  /// @}

  /// Forwarded to the pipeline as AssumeInnerMinOneTrip.
  bool MinOne = false;
  /// Include final integer-array contents in the reply.
  bool WantArrays = false;
};

/// Per-request accounting record, engine-tagged; serialized by
/// telemetryJson for the service log.
struct Telemetry {
  /// Time from submission to a worker picking the request up.
  int64_t QueueNanos = 0;
  /// Time compiling (0 on a cache hit that did not wait).
  int64_t CompileNanos = 0;
  /// Time executing.
  int64_t RunNanos = 0;
  /// The compiled program came out of the cache.
  bool CacheHit = false;
  /// Joined another request's in-flight compile of the same program.
  bool CoalescedCompile = false;
  /// Served from the unflattened fallback (circuit breaker open, or
  /// primary pipeline failed for this request).
  bool Fallback = false;
  /// Compile attempts this request paid for (retries included; 0 on a
  /// hit).
  int CompileAttempts = 0;
  /// Instructions the run charged (the fuel actually spent; 0 when the
  /// run trapped or never started).
  int64_t FuelSpent = 0;
  /// Simulated machine cycles the run took (the cost-model currency:
  /// one SIMD step is one cycle regardless of how many lanes it
  /// occupies, unlike FuelSpent which bills per-lane work). 0 when the
  /// run trapped or never started.
  double CyclesSpent = 0.0;
  /// Loop strategy the primary pipeline compiled under: "unflattened",
  /// "flattened" or "coalesced" once the adaptive layer has decided;
  /// "static" while adaptive selection is off or still warming up.
  std::string Strategy = "static";
  /// Strategy decision epoch for this program: 0 before the first
  /// profile-guided decision, then incremented on every decision
  /// (initial choice and each drift-triggered respecialization).
  int64_t StrategyEpoch = 0;
  /// Execution engine that actually ran the request ("tree" /
  /// "bytecode" / "hostsimd" / "native"). Usually ServerOptions::Eng,
  /// but a request routed to Engine::Native reports "bytecode" when
  /// the native tier degraded (no toolchain, emitter refusal, or a
  /// failed host compile) - the tag comes from the interpreter's
  /// EngineUsed, never assumed.
  std::string Engine = "bytecode";
  /// Tenant the request was accounted to (normalized; never empty in a
  /// reply).
  std::string Tenant = "default";
};

/// One structured reply. Exactly one is produced per submitted request,
/// whatever happens.
struct Reply {
  uint64_t Id = 0;
  Outcome Out = Outcome::Shed;
  /// Shed reason or compile-error rendering (empty when Served).
  std::string Error;
  /// The structured trap when Out == Trapped.
  std::optional<interp::Trap> T;
  /// Retry hint for Shed replies, milliseconds (0: retrying is
  /// pointless - over-budget or shutdown). Scaled by queue depth for
  /// congestion sheds and by bucket refill time for quota sheds, so
  /// clients back off proportionally to the actual pressure.
  int64_t RetryAfterMs = 0;
  /// The request was shed because the server is draining (graceful
  /// shutdown): this instance will not take work again, but a retry
  /// against a peer is reasonable.
  bool Draining = false;
  /// Final integer arrays of the original program (Request::WantArrays).
  std::map<std::string, std::vector<int64_t>> IntArrays;
  Telemetry Tele;
};

/// Fault-injection hooks for the serving layer, mirroring
/// fuzz::FaultKind for the executors. All knobs default off; the serve
/// campaign and tests/serve turn them on one at a time.
struct FaultPlan {
  /// Fail the first N compile attempts of every *primary* (flattened)
  /// pipeline run with a transient error. The unflattened fallback is
  /// never injected, so the circuit breaker's quarantine path stays
  /// exercisable: the injected stage is the flattener.
  int CompileFailures = 0;
  /// Evict the compiled program from the cache immediately after every
  /// lookup, while the request that fetched it is still running - the
  /// shared_ptr handoff must keep the program alive.
  bool EvictMidFlight = false;
  /// Stall each worker this long before processing a request (drives
  /// queue timeouts and saturation deterministically in tests).
  int64_t WorkerStallMicros = 0;
  /// Pretend every published cache entry costs this many bytes
  /// (ProgramCache::Options::CostOverrideBytes): drives byte-budget and
  /// tenant-occupancy eviction deterministically regardless of real
  /// program sizes.
  size_t InflateCostBytes = 0;
};

/// Monotonic counters; snapshot via Server::stats(). The four outcome
/// counters partition Submitted once the queue drains.
struct ServerStats {
  int64_t Submitted = 0;
  int64_t Served = 0;
  int64_t Trapped = 0;
  int64_t Shed = 0;
  int64_t CompileErrors = 0;

  int64_t CacheHits = 0;
  int64_t CacheMisses = 0;
  int64_t CacheEvictions = 0;
  /// Cache evictions forced by the byte budget (subset of
  /// CacheEvictions).
  int64_t CacheByteEvictions = 0;
  /// Cache evictions forced by a tenant occupancy cap (subset).
  int64_t CacheTenantEvictions = 0;
  /// Estimated compiled-program bytes resident right now.
  int64_t CacheBytesResident = 0;
  /// Requests that joined an in-flight compile (single-flight).
  int64_t CompilesCoalesced = 0;
  /// Compile attempts beyond each request's first (backoff retries).
  int64_t CompileRetries = 0;
  int64_t BreakerOpens = 0;
  /// Requests served from the unflattened fallback.
  int64_t FallbackServes = 0;
  /// Sheds caused by a tenant quota refusing admission (subset of
  /// Shed).
  int64_t QuotaSheds = 0;
  /// Sheds caused by the drain lifecycle - submissions refused while
  /// draining plus queued requests swept at the drain deadline (subset
  /// of Shed).
  int64_t DrainSheds = 0;
  /// Profile-guided strategy decisions made (initial choices plus
  /// drift-triggered re-decisions). 0 unless ServerOptions::Adaptive.
  int64_t AdaptiveDecisions = 0;
  /// Drift-triggered re-decisions that changed the chosen strategy:
  /// the next request for that program recompiles under the new
  /// canonical key (subset of AdaptiveDecisions).
  int64_t Respecializations = 0;
  /// Requests routed to Engine::Native that executed under bytecode
  /// instead because the native tier's host compile failed or no
  /// toolchain is available. The native analogue of FallbackServes:
  /// the request is still Served, one tier down.
  int64_t NativeFallbacks = 0;

  /// Per-tenant counter snapshot (tenants that submitted at least
  /// once).
  std::map<std::string, TenantStats> Tenants;

  /// All four buckets sum back to Submitted (true whenever no request
  /// is in flight).
  bool consistent() const {
    return Served + Trapped + Shed + CompileErrors == Submitted;
  }
  /// Every tenant's conservation laws hold too.
  bool tenantsConsistent() const {
    for (const auto &[Name, T] : Tenants) {
      (void)Name;
      if (!T.consistent())
        return false;
    }
    return true;
  }
  int64_t answered() const {
    return Served + Trapped + Shed + CompileErrors;
  }
};

} // namespace serve
} // namespace simdflat

#endif // SIMDFLAT_SERVE_SERVE_H
