//===- serve/FairQueue.h - Weighted-fair multi-tenant queue ----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic weighted-fair queue over named tenants, used by the
/// Server's dequeue path so one hot tenant cannot starve another: each
/// tenant owns a FIFO sub-queue, and pop() picks the tenant by stride
/// scheduling - every tenant carries a pass value advanced by
/// StrideUnit / weight per dequeue, and the smallest pass (ties broken
/// by tenant name) goes next. A tenant with weight 2 therefore drains
/// twice as fast as a weight-1 tenant, and a newly active tenant is
/// aligned to the current minimum pass so it cannot replay the credit
/// it accumulated while idle.
///
/// The class is single-threaded on purpose (the Server already holds
/// its queue mutex around every call); keeping it lock-free makes the
/// scheduling policy unit-testable without threads.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SERVE_FAIRQUEUE_H
#define SIMDFLAT_SERVE_FAIRQUEUE_H

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>

namespace simdflat {
namespace serve {

template <typename T> class FairQueue {
public:
  /// Pass increment for weight 1; higher weights advance by
  /// StrideUnit / weight. 840 = lcm(1..8), so small weights divide it
  /// exactly and the schedule is integer-deterministic.
  static constexpr uint64_t StrideUnit = 840;

  /// Appends \p V to \p Tenant's sub-queue. \p Weight is clamped to
  /// [1, StrideUnit] and re-read on every push (quota changes apply to
  /// the next dequeue cycle).
  void push(const std::string &Tenant, int Weight, T V) {
    Lane &L = Lanes[Tenant];
    L.Weight = std::clamp<int64_t>(Weight, 1, (int64_t)StrideUnit);
    if (L.Jobs.empty())
      // (Re)activation: start at the current active minimum so an idle
      // tenant cannot burst ahead of everyone on stale low pass.
      L.Pass = std::max(L.Pass, minActivePass());
    L.Jobs.push_back(std::move(V));
    ++Total;
  }

  bool empty() const { return Total == 0; }
  size_t size() const { return Total; }

  /// Queued entries for one tenant (per-tenant queue-share caps).
  size_t sizeOf(const std::string &Tenant) const {
    auto It = Lanes.find(Tenant);
    return It == Lanes.end() ? 0 : It->second.Jobs.size();
  }

  /// Removes and returns the next entry under the fairness policy.
  /// Undefined when empty() - callers check first (the Server pops
  /// under its queue lock after a cv wait).
  std::pair<std::string, T> pop() {
    auto Best = Lanes.end();
    for (auto It = Lanes.begin(); It != Lanes.end(); ++It) {
      if (It->second.Jobs.empty())
        continue;
      if (Best == Lanes.end() || It->second.Pass < Best->second.Pass)
        Best = It;
    }
    Lane &L = Best->second;
    T V = std::move(L.Jobs.front());
    L.Jobs.pop_front();
    L.Pass += StrideUnit / (uint64_t)L.Weight;
    --Total;
    return {Best->first, std::move(V)};
  }

  /// Drains every queued entry (shutdown/drain-deadline sweep),
  /// invoking \p Fn(tenant, entry) in fair-schedule order.
  template <typename Fn> void drainAll(Fn &&F) {
    while (!empty()) {
      auto [Tenant, V] = pop();
      F(Tenant, std::move(V));
    }
  }

private:
  struct Lane {
    std::deque<T> Jobs;
    uint64_t Pass = 0;
    int64_t Weight = 1;
  };

  uint64_t minActivePass() const {
    uint64_t Min = 0;
    bool Any = false;
    for (const auto &[Name, L] : Lanes)
      if (!L.Jobs.empty() && (!Any || L.Pass < Min)) {
        Min = L.Pass;
        Any = true;
      }
    return Min;
  }

  /// std::map: deterministic (lexicographic) tie-breaking for equal
  /// pass values.
  std::map<std::string, Lane> Lanes;
  size_t Total = 0;
};

} // namespace serve
} // namespace simdflat

#endif // SIMDFLAT_SERVE_FAIRQUEUE_H
