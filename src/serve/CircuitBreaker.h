//===- serve/CircuitBreaker.h - Per-program-hash quarantine ----*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, count-based circuit breaker per canonical program
/// hash. A program whose primary (flattened) pipeline repeatedly fails
/// is quarantined: while the breaker is open the server skips the
/// primary compile entirely and serves the unflattened fallback, so one
/// pathological program cannot burn compile retries on every request.
///
/// The state machine is counter-driven by default so tests and the
/// fault campaign replay identically:
///
///   Closed --(FailureThreshold consecutive failures)--> Open
///   Open   --(OpenBudget fallback serves)-------------> HalfOpen probe
///   probe success -> Closed, probe failure -> Open (budget refilled)
///
/// A breaker serving sparse traffic would stay open forever on counts
/// alone, so CooldownMicros adds a time-based re-probe: an open breaker
/// also converts to a half-open probe once the cooldown has elapsed
/// since it (re)opened, even with open budget remaining. The clock is
/// injectable, so the time path is as deterministic under test as the
/// count path.
///
/// While a half-open probe is in flight, other requests for the same
/// hash keep taking the fallback - exactly one request risks the
/// primary path per budget (or cooldown) cycle.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SERVE_CIRCUITBREAKER_H
#define SIMDFLAT_SERVE_CIRCUITBREAKER_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

namespace simdflat {
namespace serve {

class CircuitBreaker {
public:
  enum class State { Closed, Open, HalfOpen };

  struct Options {
    /// Consecutive primary-compile failures that open the breaker.
    int FailureThreshold = 3;
    /// Fallback serves while open before the next half-open probe.
    int OpenBudget = 4;
    /// Re-probe an open breaker this long after it (re)opened even if
    /// the open budget has not been spent (0 = count-only, the legacy
    /// behaviour).
    int64_t CooldownMicros = 0;
    /// Microsecond clock for the cooldown; null uses steady_clock.
    /// Tests inject a manual clock for deterministic time-based
    /// re-probes.
    std::function<int64_t()> NowMicros;
  };

  struct Stats {
    int64_t Opens = 0;
    int64_t Probes = 0;
  };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Options O) : O(O) {}

  /// Routing decision for one request of \p Key, with side effects:
  /// Closed/HalfOpen mean "try the primary path" (HalfOpen marks this
  /// request as the probe), Open means "serve the fallback" and
  /// consumes one unit of the open budget.
  State admit(uint64_t Key);

  /// The primary path compiled (report for Closed admits and HalfOpen
  /// probes alike): close the breaker and reset counters.
  void recordSuccess(uint64_t Key);

  /// The primary path failed after retries. Closed: count toward the
  /// threshold. HalfOpen probe: reopen with a fresh budget.
  void recordFailure(uint64_t Key);

  /// Current state without side effects (Open with exhausted budget
  /// still reads Open until the next admit converts it).
  State peek(uint64_t Key) const;

  Stats stats() const;

private:
  struct Entry {
    State St = State::Closed;
    int Consecutive = 0;
    int Budget = 0;
    /// When the breaker last transitioned into Open (cooldown anchor).
    int64_t OpenedAtMicros = 0;
  };

  int64_t nowMicros() const;

  Options O;
  mutable std::mutex M;
  std::unordered_map<uint64_t, Entry> Map;
  Stats S;
};

const char *breakerStateName(CircuitBreaker::State St);

} // namespace serve
} // namespace simdflat

#endif // SIMDFLAT_SERVE_CIRCUITBREAKER_H
