//===- serve/CircuitBreaker.cpp -------------------------------*- C++ -*-===//

#include "serve/CircuitBreaker.h"

#include <chrono>

using namespace simdflat;
using namespace simdflat::serve;

int64_t CircuitBreaker::nowMicros() const {
  if (O.NowMicros)
    return O.NowMicros();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

CircuitBreaker::State CircuitBreaker::admit(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = Map[Key];
  switch (E.St) {
  case State::Closed:
    return State::Closed;
  case State::Open: {
    // The cooldown re-probe fires even with open budget remaining, so
    // sparse traffic is not quarantined forever.
    bool CooledDown = O.CooldownMicros > 0 &&
                      nowMicros() - E.OpenedAtMicros >= O.CooldownMicros;
    if (E.Budget > 0 && !CooledDown) {
      --E.Budget;
      return State::Open;
    }
    E.St = State::HalfOpen;
    ++S.Probes;
    return State::HalfOpen;
  }
  case State::HalfOpen:
    // A probe is already in flight; everyone else keeps the fallback.
    return State::Open;
  }
  return State::Closed;
}

void CircuitBreaker::recordSuccess(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = Map[Key];
  E.St = State::Closed;
  E.Consecutive = 0;
  E.Budget = 0;
}

void CircuitBreaker::recordFailure(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = Map[Key];
  if (E.St == State::HalfOpen) {
    // Failed probe: back to quarantine with a fresh budget. Counts as
    // an open so the stats reflect every transition into Open.
    E.St = State::Open;
    E.Budget = O.OpenBudget;
    E.OpenedAtMicros = nowMicros();
    ++S.Opens;
    return;
  }
  if (E.St == State::Open)
    return; // fallback-path failures do not re-count
  if (++E.Consecutive >= O.FailureThreshold) {
    E.St = State::Open;
    E.Budget = O.OpenBudget;
    E.OpenedAtMicros = nowMicros();
    ++S.Opens;
  }
}

CircuitBreaker::State CircuitBreaker::peek(uint64_t Key) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(Key);
  return It == Map.end() ? State::Closed : It->second.St;
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return S;
}

const char *serve::breakerStateName(CircuitBreaker::State St) {
  switch (St) {
  case CircuitBreaker::State::Closed:
    return "closed";
  case CircuitBreaker::State::Open:
    return "open";
  case CircuitBreaker::State::HalfOpen:
    return "half-open";
  }
  return "closed";
}
