//===- serve/ProgramCache.cpp ---------------------------------*- C++ -*-===//

#include "serve/ProgramCache.h"

#include <algorithm>
#include <cassert>

using namespace simdflat;
using namespace simdflat::serve;

ProgramCache::ProgramCache(size_t Capacity)
    : Capacity(std::max<size_t>(Capacity, 1)) {}

ProgramCache::Outcome ProgramCache::getOrCompile(uint64_t Key,
                                                 const Compiler &Fn) {
  std::shared_ptr<Slot> Mine;
  {
    std::unique_lock<std::mutex> Lock(M);
    for (;;) {
      auto It = Map.find(Key);
      if (It == Map.end())
        break;
      std::shared_ptr<Slot> Found = It->second;
      if (!Found->Compiling) {
        // Completed entries always hold a program: failures are never
        // published into the map.
        assert(Found->Prog && "completed slot without a program");
        touchLocked(Key);
        ++S.Hits;
        Outcome Out;
        Out.Prog = Found->Prog;
        Out.Hit = true;
        return Out;
      }
      // Join the in-flight compile: wait for it to publish, then
      // re-examine the map (the flight may have failed and erased the
      // slot - in that case report its error rather than piling a
      // second compile onto a failing program).
      ++S.Waits;
      Published.wait(Lock, [&] { return !Found->Compiling; });
      Outcome Out;
      Out.Waited = true;
      if (Found->Prog) {
        Out.Prog = Found->Prog;
        return Out;
      }
      Out.Error = Found->Error;
      return Out;
    }
    // Miss: claim the flight.
    ++S.Misses;
    Mine = std::make_shared<Slot>();
    Mine->Attempts = AttemptHistory[Key];
    Map.emplace(Key, Mine);
  }

  // Compile outside the lock; other keys proceed, same-key lookups wait.
  Expected<transform::CompiledSimdProgram, CompileFailure> Result =
      Fn(Mine->Attempts);

  std::lock_guard<std::mutex> Lock(M);
  AttemptHistory[Key] = Mine->Attempts;
  Outcome Out;
  Out.Attempts = Mine->Attempts;
  if (Result) {
    Mine->Prog = std::make_shared<const transform::CompiledSimdProgram>(
        std::move(*Result));
    Mine->Compiling = false;
    touchLocked(Key);
    enforceCapacityLocked();
    AttemptHistory.erase(Key); // success: the counter's job is done
    Out.Prog = Mine->Prog;
  } else {
    // Failures are not cached: wake the waiters with the error, then
    // erase the slot so the next request starts a fresh flight.
    Mine->Error = Result.error().render();
    Mine->Compiling = false;
    auto It = Map.find(Key);
    if (It != Map.end() && It->second == Mine)
      Map.erase(It);
    Out.Error = Mine->Error;
  }
  Published.notify_all();
  return Out;
}

void ProgramCache::evict(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(Key);
  if (It == Map.end() || It->second->Compiling)
    return;
  Lru.remove(Key);
  Map.erase(It);
  ++S.Evictions;
}

size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Lru.size();
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return S;
}

void ProgramCache::touchLocked(uint64_t Key) {
  Lru.remove(Key);
  Lru.push_front(Key);
}

void ProgramCache::enforceCapacityLocked() {
  while (Lru.size() > Capacity) {
    uint64_t Victim = Lru.back();
    Lru.pop_back();
    Map.erase(Victim);
    ++S.Evictions;
  }
}
