//===- serve/ProgramCache.cpp ---------------------------------*- C++ -*-===//

#include "serve/ProgramCache.h"

#include "exec/Bytecode.h"
#include "serve/TenantRegistry.h"

#include <algorithm>
#include <cassert>

using namespace simdflat;
using namespace simdflat::serve;

size_t serve::programCostBytes(const transform::CompiledSimdProgram &P) {
  // Fixed overhead for the entry bookkeeping and the retained IR (the
  // ir::Program is a small tree next to the lowered vectors; a constant
  // keeps the estimate deterministic and cheap).
  size_t Bytes = 512;
  if (P.Code) {
    const exec::Program &E = *P.Code;
    Bytes += sizeof(exec::Program);
    Bytes += E.Code.size() * sizeof(exec::Instr);
    Bytes += E.IntPool.size() * sizeof(int64_t);
    Bytes += E.RealPool.size() * sizeof(double);
    Bytes += E.Extra.size() * sizeof(int32_t);
    Bytes += E.ProgName.size();
    for (const std::string &Str : E.SlotNames)
      Bytes += Str.size() + sizeof(std::string);
    for (const std::string &Str : E.Callees)
      Bytes += Str.size() + sizeof(std::string);
    for (const std::string &Str : E.Msgs)
      Bytes += Str.size() + sizeof(std::string);
    for (const std::string &Str : E.Locs)
      Bytes += Str.size() + sizeof(std::string);
  }
  return Bytes;
}

ProgramCache::ProgramCache(size_t Capacity)
    : ProgramCache(Options{std::max<size_t>(Capacity, 1), 0, 0, 0}) {}

ProgramCache::ProgramCache(Options O) : Opts(O) {
  Opts.MaxEntries = std::max<size_t>(Opts.MaxEntries, 1);
}

ProgramCache::Outcome ProgramCache::getOrCompile(uint64_t Key,
                                                 const Compiler &Fn,
                                                 const std::string &Tenant) {
  std::shared_ptr<Slot> Mine;
  {
    std::unique_lock<std::mutex> Lock(M);
    for (;;) {
      auto It = Map.find(Key);
      if (It == Map.end())
        break;
      std::shared_ptr<Slot> Found = It->second;
      if (!Found->Compiling) {
        // Completed entries always hold a program: failures are never
        // published into the map.
        assert(Found->Prog && "completed slot without a program");
        touchLocked(Key);
        ++S.Hits;
        Outcome Out;
        Out.Prog = Found->Prog;
        Out.Hit = true;
        return Out;
      }
      // Join the in-flight compile: wait for it to publish, then
      // re-examine the map (the flight may have failed and erased the
      // slot - in that case report its error rather than piling a
      // second compile onto a failing program).
      ++S.Waits;
      Published.wait(Lock, [&] { return !Found->Compiling; });
      Outcome Out;
      Out.Waited = true;
      if (Found->Prog) {
        Out.Prog = Found->Prog;
        return Out;
      }
      Out.Error = Found->Error;
      return Out;
    }
    // Miss: claim the flight.
    ++S.Misses;
    Mine = std::make_shared<Slot>();
    Mine->Attempts = AttemptHistory[Key];
    Mine->Owner = Tenant.empty() ? defaultTenant() : Tenant;
    Map.emplace(Key, Mine);
  }

  // Compile outside the lock; other keys proceed, same-key lookups wait.
  Expected<transform::CompiledSimdProgram, CompileFailure> Result =
      Fn(Mine->Attempts);

  std::lock_guard<std::mutex> Lock(M);
  AttemptHistory[Key] = Mine->Attempts;
  Outcome Out;
  Out.Attempts = Mine->Attempts;
  if (Result) {
    Mine->Prog = std::make_shared<const transform::CompiledSimdProgram>(
        std::move(*Result));
    Mine->Compiling = false;
    Mine->Cost = Opts.CostOverrideBytes ? Opts.CostOverrideBytes
                                        : programCostBytes(*Mine->Prog);
    S.BytesResident += (int64_t)Mine->Cost;
    OwnerBytes[Mine->Owner] += Mine->Cost;
    touchLocked(Key);
    enforceBudgetsLocked(Mine->Owner, Key);
    AttemptHistory.erase(Key); // success: the counter's job is done
    Out.Prog = Mine->Prog;
  } else {
    // Failures are not cached: wake the waiters with the error, then
    // erase the slot so the next request starts a fresh flight.
    Mine->Error = Result.error().render();
    Mine->Compiling = false;
    auto It = Map.find(Key);
    if (It != Map.end() && It->second == Mine)
      Map.erase(It);
    Out.Error = Mine->Error;
  }
  Published.notify_all();
  return Out;
}

void ProgramCache::evict(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(Key);
  if (It == Map.end() || It->second->Compiling)
    return;
  dropLocked(Key);
}

size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Lru.size();
}

size_t ProgramCache::bytesResident() const {
  std::lock_guard<std::mutex> Lock(M);
  return (size_t)S.BytesResident;
}

size_t ProgramCache::tenantBytes(const std::string &Tenant) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = OwnerBytes.find(Tenant.empty() ? defaultTenant() : Tenant);
  return It == OwnerBytes.end() ? 0 : It->second;
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return S;
}

void ProgramCache::touchLocked(uint64_t Key) {
  Lru.remove(Key);
  Lru.push_front(Key);
}

void ProgramCache::dropLocked(uint64_t Key) {
  auto It = Map.find(Key);
  assert(It != Map.end() && !It->second->Compiling && "dropping a flight");
  Slot &Victim = *It->second;
  S.BytesResident -= (int64_t)Victim.Cost;
  auto OB = OwnerBytes.find(Victim.Owner);
  if (OB != OwnerBytes.end()) {
    OB->second -= std::min(OB->second, Victim.Cost);
    if (OB->second == 0)
      OwnerBytes.erase(OB);
  }
  Lru.remove(Key);
  Map.erase(It);
  ++S.Evictions;
}

void ProgramCache::enforceBudgetsLocked(const std::string &Owner,
                                        uint64_t Keep) {
  // 1. The owner's occupancy cap: the tenant that grew evicts its own
  //    LRU entries, never a bystander's.
  if (Opts.TenantMaxBytes > 0) {
    while (OwnerBytes[Owner] > Opts.TenantMaxBytes) {
      uint64_t Victim = 0;
      bool FoundVictim = false;
      for (auto It = Lru.rbegin(); It != Lru.rend(); ++It) {
        if (*It == Keep)
          continue;
        auto MI = Map.find(*It);
        if (MI != Map.end() && MI->second->Owner == Owner) {
          Victim = *It;
          FoundVictim = true;
          break;
        }
      }
      if (!FoundVictim)
        break; // only the just-published entry remains: a tenant may
               // always hold its newest program
      dropLocked(Victim);
      ++S.TenantEvictions;
    }
    if (OwnerBytes[Owner] == 0)
      OwnerBytes.erase(Owner);
  }
  // 2. The global byte budget, LRU order.
  if (Opts.MaxBytes > 0) {
    while ((size_t)S.BytesResident > Opts.MaxBytes && Lru.size() > 1) {
      uint64_t Victim = Lru.back() == Keep ? *std::next(Lru.rbegin())
                                           : Lru.back();
      dropLocked(Victim);
      ++S.ByteEvictions;
    }
  }
  // 3. The legacy count bound.
  while (Lru.size() > Opts.MaxEntries) {
    uint64_t Victim = Lru.back() == Keep ? *std::next(Lru.rbegin())
                                         : Lru.back();
    dropLocked(Victim);
  }
}
