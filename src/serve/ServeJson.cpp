//===- serve/ServeJson.cpp ------------------------------------*- C++ -*-===//

#include "serve/ServeJson.h"

#include <sstream>

using namespace simdflat;
using namespace simdflat::serve;

namespace {

/// Reads an optional integer field; type errors are reported, absence is
/// not.
bool readInt(const json::Value &Obj, const char *Key, int64_t &Out,
             std::string &Err) {
  const json::Value *F = Obj.get(Key);
  if (!F)
    return true;
  if (!F->isInt()) {
    Err = std::string("field '") + Key + "' must be an integer";
    return false;
  }
  Out = F->asInt();
  return true;
}

bool readBool(const json::Value &Obj, const char *Key, bool &Out,
              std::string &Err) {
  const json::Value *F = Obj.get(Key);
  if (!F)
    return true;
  if (!F->isBool()) {
    Err = std::string("field '") + Key + "' must be a boolean";
    return false;
  }
  Out = F->asBool();
  return true;
}

bool readIntMap(const json::Value &Obj, const char *Key,
                std::map<std::string, int64_t> &Out, std::string &Err) {
  const json::Value *F = Obj.get(Key);
  if (!F)
    return true;
  if (!F->isObject()) {
    Err = std::string("field '") + Key + "' must be an object";
    return false;
  }
  for (const auto &[Name, V] : F->members()) {
    if (!V.isInt()) {
      Err = std::string("'") + Key + "." + Name + "' must be an integer";
      return false;
    }
    Out[Name] = V.asInt();
  }
  return true;
}

template <typename Elem>
bool readArrayMap(const json::Value &Obj, const char *Key,
                  std::map<std::string, std::vector<Elem>> &Out,
                  std::string &Err) {
  const json::Value *F = Obj.get(Key);
  if (!F)
    return true;
  if (!F->isObject()) {
    Err = std::string("field '") + Key + "' must be an object";
    return false;
  }
  for (const auto &[Name, Arr] : F->members()) {
    if (!Arr.isArray()) {
      Err = std::string("'") + Key + "." + Name + "' must be an array";
      return false;
    }
    std::vector<Elem> Vals;
    Vals.reserve(Arr.size());
    for (size_t I = 0; I < Arr.size(); ++I) {
      const json::Value &E = Arr.at(I);
      if constexpr (std::is_same_v<Elem, int64_t>) {
        if (!E.isInt()) {
          Err = std::string("'") + Key + "." + Name +
                "' must hold only integers";
          return false;
        }
        Vals.push_back(E.asInt());
      } else {
        if (!E.isNumber()) {
          Err = std::string("'") + Key + "." + Name +
                "' must hold only numbers";
          return false;
        }
        Vals.push_back(E.asDouble());
      }
    }
    Out.emplace(Name, std::move(Vals));
  }
  return true;
}

} // namespace

Expected<Request, std::string> serve::parseRequest(const json::Value &V) {
  if (!V.isObject())
    return std::string("request must be a JSON object");

  static const char *Known[] = {"id",          "tenant",      "source",
                                "ints",        "int_arrays",  "real_arrays",
                                "lanes",       "fuel",        "deadline_ms",
                                "queue_timeout_ms", "min_one", "want_arrays"};
  for (const auto &[Key, Val] : V.members()) {
    (void)Val;
    bool Ok = false;
    for (const char *K : Known)
      if (Key == K) {
        Ok = true;
        break;
      }
    if (!Ok)
      return "unknown request field '" + Key + "'";
  }

  Request R;
  std::string Err;
  const json::Value *Src = V.get("source");
  if (!Src || !Src->isString())
    return std::string("request needs a string 'source' field");
  R.Source = Src->asString();

  int64_t Id = 0;
  if (!readInt(V, "id", Id, Err))
    return Err;
  R.Id = (uint64_t)Id;
  if (const json::Value *T = V.get("tenant")) {
    if (!T->isString())
      return std::string("field 'tenant' must be a string");
    R.Tenant = T->asString();
  }
  if (!readInt(V, "lanes", R.Lanes, Err) || !readInt(V, "fuel", R.Fuel, Err) ||
      !readInt(V, "deadline_ms", R.DeadlineMs, Err) ||
      !readInt(V, "queue_timeout_ms", R.QueueTimeoutMs, Err))
    return Err;
  if (!readBool(V, "min_one", R.MinOne, Err) ||
      !readBool(V, "want_arrays", R.WantArrays, Err))
    return Err;
  if (!readIntMap(V, "ints", R.Ints, Err) ||
      !readArrayMap<int64_t>(V, "int_arrays", R.IntArrays, Err) ||
      !readArrayMap<double>(V, "real_arrays", R.RealArrays, Err))
    return Err;
  return R;
}

json::Value serve::toJson(const Reply &R) {
  json::Value O = json::Value::object();
  O.set("id", (int64_t)R.Id);
  O.set("outcome", outcomeName(R.Out));
  if (!R.Error.empty())
    O.set("error", R.Error);
  if (R.T) {
    json::Value T = json::Value::object();
    T.set("kind", interp::trapKindName(R.T->Kind));
    json::Value Lanes = json::Value::array();
    for (int64_t L : R.T->Lanes)
      Lanes.push(L);
    T.set("lanes", std::move(Lanes));
    T.set("location", R.T->Location);
    T.set("detail", R.T->Detail);
    O.set("trap", std::move(T));
  }
  if (R.Out == Outcome::Shed)
    O.set("retry_after_ms", R.RetryAfterMs);
  if (R.Draining)
    O.set("draining", true);
  if (!R.IntArrays.empty()) {
    json::Value Arrays = json::Value::object();
    for (const auto &[Name, Vals] : R.IntArrays) {
      json::Value A = json::Value::array();
      for (int64_t E : Vals)
        A.push(E);
      Arrays.set(Name, std::move(A));
    }
    O.set("int_arrays", std::move(Arrays));
  }
  json::Value Tele = json::Value::object();
  Tele.set("engine", R.Tele.Engine);
  Tele.set("tenant", R.Tele.Tenant);
  Tele.set("queue_nanos", R.Tele.QueueNanos);
  Tele.set("compile_nanos", R.Tele.CompileNanos);
  Tele.set("run_nanos", R.Tele.RunNanos);
  Tele.set("cache_hit", R.Tele.CacheHit);
  Tele.set("coalesced_compile", R.Tele.CoalescedCompile);
  Tele.set("fallback", R.Tele.Fallback);
  Tele.set("compile_attempts", R.Tele.CompileAttempts);
  Tele.set("fuel_spent", R.Tele.FuelSpent);
  Tele.set("cycles_spent", R.Tele.CyclesSpent);
  Tele.set("strategy", R.Tele.Strategy);
  Tele.set("strategy_epoch", R.Tele.StrategyEpoch);
  O.set("telemetry", std::move(Tele));
  return O;
}

json::Value serve::telemetryJson(const Reply &R) {
  json::Value O = json::Value::object();
  O.set("schema", "simdflat-serve-v1");
  O.set("id", (int64_t)R.Id);
  O.set("outcome", outcomeName(R.Out));
  O.set("engine", R.Tele.Engine);
  O.set("tenant", R.Tele.Tenant);
  O.set("queue_nanos", R.Tele.QueueNanos);
  O.set("compile_nanos", R.Tele.CompileNanos);
  O.set("run_nanos", R.Tele.RunNanos);
  O.set("cache_hit", R.Tele.CacheHit);
  O.set("coalesced_compile", R.Tele.CoalescedCompile);
  O.set("fallback", R.Tele.Fallback);
  O.set("compile_attempts", R.Tele.CompileAttempts);
  O.set("fuel_spent", R.Tele.FuelSpent);
  O.set("cycles_spent", R.Tele.CyclesSpent);
  O.set("strategy", R.Tele.Strategy);
  O.set("strategy_epoch", R.Tele.StrategyEpoch);
  if (R.T)
    O.set("trap_kind", interp::trapKindName(R.T->Kind));
  if (!R.Error.empty())
    O.set("error", R.Error);
  return O;
}

std::string serve::toLine(const json::Value &V) {
  std::ostringstream OS;
  switch (V.kind()) {
  case json::Value::Kind::Null:
    OS << "null";
    break;
  case json::Value::Kind::Bool:
    OS << (V.asBool() ? "true" : "false");
    break;
  case json::Value::Kind::Int:
    OS << V.asInt();
    break;
  case json::Value::Kind::Double: {
    // Round-trippable and line-safe (no locale surprises).
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V.asDouble());
    OS << Buf;
    break;
  }
  case json::Value::Kind::String:
    OS << '"' << json::escapeString(V.asString()) << '"';
    break;
  case json::Value::Kind::Array: {
    OS << '[';
    for (size_t I = 0; I < V.size(); ++I) {
      if (I)
        OS << ',';
      OS << toLine(V.at(I));
    }
    OS << ']';
    break;
  }
  case json::Value::Kind::Object: {
    OS << '{';
    bool First = true;
    for (const auto &[Key, Member] : V.members()) {
      if (!First)
        OS << ',';
      First = false;
      OS << '"' << json::escapeString(Key) << "\":" << toLine(Member);
    }
    OS << '}';
    break;
  }
  }
  return OS.str();
}

json::Value serve::toJson(const ServerStats &S) {
  json::Value O = json::Value::object();
  O.set("submitted", S.Submitted);
  O.set("served", S.Served);
  O.set("trapped", S.Trapped);
  O.set("shed", S.Shed);
  O.set("compile_errors", S.CompileErrors);
  O.set("cache_hits", S.CacheHits);
  O.set("cache_misses", S.CacheMisses);
  O.set("cache_evictions", S.CacheEvictions);
  O.set("cache_byte_evictions", S.CacheByteEvictions);
  O.set("cache_tenant_evictions", S.CacheTenantEvictions);
  O.set("cache_bytes_resident", S.CacheBytesResident);
  O.set("compiles_coalesced", S.CompilesCoalesced);
  O.set("compile_retries", S.CompileRetries);
  O.set("breaker_opens", S.BreakerOpens);
  O.set("fallback_serves", S.FallbackServes);
  O.set("quota_sheds", S.QuotaSheds);
  O.set("drain_sheds", S.DrainSheds);
  O.set("adaptive_decisions", S.AdaptiveDecisions);
  O.set("respecializations", S.Respecializations);
  O.set("native_fallbacks", S.NativeFallbacks);
  if (!S.Tenants.empty()) {
    json::Value Ts = json::Value::object();
    for (const auto &[Name, T] : S.Tenants) {
      json::Value TV = json::Value::object();
      TV.set("submitted", T.Submitted);
      TV.set("admitted", T.Admitted);
      TV.set("served", T.Served);
      TV.set("trapped", T.Trapped);
      TV.set("compile_errors", T.CompileErrors);
      TV.set("shed_at_admission", T.ShedAtAdmission);
      TV.set("shed_in_service", T.ShedInService);
      TV.set("consistent", T.consistent());
      Ts.set(Name, std::move(TV));
    }
    O.set("tenants", std::move(Ts));
  }
  O.set("consistent", S.consistent());
  O.set("tenants_consistent", S.tenantsConsistent());
  return O;
}

Expected<Reply, std::string> serve::parseReply(const json::Value &V) {
  if (!V.isObject())
    return std::string("reply must be a JSON object");

  static const char *Known[] = {"id",        "outcome",       "error",
                                "trap",      "retry_after_ms", "draining",
                                "int_arrays", "telemetry"};
  for (const auto &[Key, Val] : V.members()) {
    (void)Val;
    bool Ok = false;
    for (const char *K : Known)
      if (Key == K) {
        Ok = true;
        break;
      }
    if (!Ok)
      return "unknown reply field '" + Key + "'";
  }

  Reply R;
  std::string Err;
  int64_t Id = 0;
  if (!readInt(V, "id", Id, Err))
    return Err;
  R.Id = (uint64_t)Id;

  const json::Value *Out = V.get("outcome");
  if (!Out || !Out->isString())
    return std::string("reply needs a string 'outcome' field");
  if (!outcomeFromName(Out->asString(), R.Out))
    return "unknown outcome '" + Out->asString() + "'";

  if (const json::Value *E = V.get("error")) {
    if (!E->isString())
      return std::string("field 'error' must be a string");
    R.Error = E->asString();
  }
  if (!readBool(V, "draining", R.Draining, Err))
    return Err;

  // The shed contract: a shed reply without a usable retry hint leaves
  // the client guessing, so absence and negatives are both protocol
  // violations (0 is meaningful: retrying is pointless).
  const json::Value *Retry = V.get("retry_after_ms");
  if (R.Out == Outcome::Shed) {
    if (!Retry)
      return std::string("shed reply is missing 'retry_after_ms'");
    if (!Retry->isInt())
      return std::string("field 'retry_after_ms' must be an integer");
    R.RetryAfterMs = Retry->asInt();
    if (R.RetryAfterMs < 0)
      return std::string("'retry_after_ms' must be >= 0");
  } else if (Retry) {
    return "'retry_after_ms' is only valid on shed replies, not '" +
           std::string(outcomeName(R.Out)) + "'";
  }

  if (const json::Value *T = V.get("trap")) {
    if (!T->isObject())
      return std::string("field 'trap' must be an object");
    interp::Trap Trap;
    const json::Value *Kind = T->get("kind");
    if (!Kind || !Kind->isString())
      return std::string("trap needs a string 'kind' field");
    if (!interp::trapKindFromName(Kind->asString(), Trap.Kind))
      return "unknown trap kind '" + Kind->asString() + "'";
    Trap.Detail = T->get("detail") && T->get("detail")->isString()
                      ? T->get("detail")->asString()
                      : "";
    Trap.Location = T->get("location") && T->get("location")->isString()
                        ? T->get("location")->asString()
                        : "";
    if (const json::Value *Lanes = T->get("lanes")) {
      if (!Lanes->isArray())
        return std::string("'trap.lanes' must be an array");
      for (size_t I = 0; I < Lanes->size(); ++I) {
        if (!Lanes->at(I).isInt())
          return std::string("'trap.lanes' must hold only integers");
        Trap.Lanes.push_back(Lanes->at(I).asInt());
      }
    }
    R.T = std::move(Trap);
  }

  if (!readArrayMap<int64_t>(V, "int_arrays", R.IntArrays, Err))
    return Err;

  if (const json::Value *Tele = V.get("telemetry")) {
    if (!Tele->isObject())
      return std::string("field 'telemetry' must be an object");
    if (const json::Value *Eng = Tele->get("engine")) {
      if (!Eng->isString())
        return std::string("'telemetry.engine' must be a string");
      R.Tele.Engine = Eng->asString();
    }
    if (const json::Value *Ten = Tele->get("tenant")) {
      if (!Ten->isString())
        return std::string("'telemetry.tenant' must be a string");
      R.Tele.Tenant = Ten->asString();
    }
    if (!readInt(*Tele, "queue_nanos", R.Tele.QueueNanos, Err) ||
        !readInt(*Tele, "compile_nanos", R.Tele.CompileNanos, Err) ||
        !readInt(*Tele, "run_nanos", R.Tele.RunNanos, Err) ||
        !readInt(*Tele, "fuel_spent", R.Tele.FuelSpent, Err))
      return Err;
    if (const json::Value *Cyc = Tele->get("cycles_spent")) {
      if (!Cyc->isNumber())
        return std::string("'telemetry.cycles_spent' must be a number");
      R.Tele.CyclesSpent = Cyc->asDouble();
    }
    int64_t Attempts = 0;
    if (!readInt(*Tele, "compile_attempts", Attempts, Err))
      return Err;
    R.Tele.CompileAttempts = (int)Attempts;
    if (!readBool(*Tele, "cache_hit", R.Tele.CacheHit, Err) ||
        !readBool(*Tele, "coalesced_compile", R.Tele.CoalescedCompile, Err) ||
        !readBool(*Tele, "fallback", R.Tele.Fallback, Err))
      return Err;
    if (const json::Value *Strat = Tele->get("strategy")) {
      if (!Strat->isString())
        return std::string("'telemetry.strategy' must be a string");
      R.Tele.Strategy = Strat->asString();
    }
    if (!readInt(*Tele, "strategy_epoch", R.Tele.StrategyEpoch, Err))
      return Err;
  }
  return R;
}
