//===- serve/ServeJson.h - Request/reply wire format -----------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON wire format of the flattend protocol (docs/SERVING.md): one
/// request object per input line, one reply object per output line, plus
/// the engine-tagged telemetry record the daemon appends to its service
/// log and the stats object of the end-of-stream summary. Parsing is
/// strict about types and rejects unknown top-level request fields, so a
/// malformed or hostile line is a structured parse error, never a
/// misinterpreted request.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SERVE_SERVEJSON_H
#define SIMDFLAT_SERVE_SERVEJSON_H

#include "serve/Serve.h"
#include "support/Json.h"
#include "support/Result.h"

namespace simdflat {
namespace serve {

/// Parses one request object. Recognized fields (all optional except
/// "source"): id, tenant, source, ints, int_arrays, real_arrays, lanes,
/// fuel, deadline_ms, queue_timeout_ms, min_one, want_arrays. Returns a
/// rendering of the first problem on malformed input.
Expected<Request, std::string> parseRequest(const json::Value &V);

/// Parses one reply object, as strictly as parseRequest parses
/// requests: unknown top-level fields are rejected, "outcome" must be a
/// valid outcome name, and a shed reply MUST carry a non-negative
/// integer "retry_after_ms" - a shed without a usable retry hint (or
/// with a negative one) is a protocol violation, not a backoff of -1
/// milliseconds. Clients use this to validate what the daemon sends;
/// the campaign uses it to pin the wire contract.
Expected<Reply, std::string> parseReply(const json::Value &V);

/// The reply object sent back over the wire.
json::Value toJson(const Reply &R);

/// The per-request accounting record for the telemetry log: outcome,
/// engine tag, timings, cache/fallback flags.
json::Value telemetryJson(const Reply &R);

/// The counters object of the summary line.
json::Value toJson(const ServerStats &S);

/// Compact single-line serialization (no indentation, no trailing
/// newline) - the JSON-lines framing flattend and its telemetry log
/// use. Parseable by json::Value::parse.
std::string toLine(const json::Value &V);

} // namespace serve
} // namespace simdflat

#endif // SIMDFLAT_SERVE_SERVEJSON_H
