//===- serve/Server.cpp ---------------------------------------*- C++ -*-===//

#include "serve/Server.h"

#include "codegen/NativeEngine.h"
#include "frontend/GotoRecovery.h"
#include "frontend/Parser.h"
#include "interp/SimdInterp.h"
#include "interp/Store.h"

#include <algorithm>
#include <cmath>
#include <sstream>

using namespace simdflat;
using namespace simdflat::serve;

using Clock = std::chrono::steady_clock;

namespace {

int64_t nanosSince(Clock::time_point Start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              Start)
      .count();
}

/// Checks every request input against the program's declarations so the
/// store's fatal-error paths (undeclared name, wrong kind, wrong size)
/// are unreachable from hostile requests. Returns a rendering of the
/// first problem, or the empty string.
std::string validateInputs(const ir::Program &P, const Request &R) {
  std::ostringstream OS;
  auto declOf = [&](const std::string &Name) { return P.lookupVar(Name); };
  for (const auto &[Name, V] : R.Ints) {
    (void)V;
    const ir::VarDecl *D = declOf(Name);
    if (!D) {
      OS << "input '" << Name << "' is not declared by the program";
      return OS.str();
    }
    if (!D->isScalar() || D->Kind == ir::ScalarKind::Real) {
      OS << "input '" << Name << "' is not an integer scalar";
      return OS.str();
    }
  }
  for (const auto &[Name, Vals] : R.IntArrays) {
    const ir::VarDecl *D = declOf(Name);
    if (!D) {
      OS << "input array '" << Name << "' is not declared by the program";
      return OS.str();
    }
    if (!D->isArray() || D->Kind != ir::ScalarKind::Int) {
      OS << "input '" << Name << "' is not an integer array";
      return OS.str();
    }
    if ((int64_t)Vals.size() != D->numElements()) {
      OS << "input array '" << Name << "' has " << Vals.size()
         << " elements, the program declares " << D->numElements();
      return OS.str();
    }
  }
  for (const auto &[Name, Vals] : R.RealArrays) {
    const ir::VarDecl *D = declOf(Name);
    if (!D) {
      OS << "input array '" << Name << "' is not declared by the program";
      return OS.str();
    }
    if (!D->isArray() || D->Kind != ir::ScalarKind::Real) {
      OS << "input '" << Name << "' is not a real array";
      return OS.str();
    }
    if ((int64_t)Vals.size() != D->numElements()) {
      OS << "input array '" << Name << "' has " << Vals.size()
         << " elements, the program declares " << D->numElements();
      return OS.str();
    }
  }
  return "";
}

/// Total-variation distance between two trip histograms viewed as
/// probability distributions over the shared (exact + log2) buckets:
/// 0.0 for identical shapes, 1.0 for disjoint support. Sample-count
/// invariant, so "same traffic, more of it" never reads as drift.
double totalVariation(const interp::TripHistogram &A,
                      const interp::TripHistogram &B) {
  if (A.Samples <= 0 || B.Samples <= 0)
    return A.Samples == B.Samples ? 0.0 : 1.0;
  double An = static_cast<double>(A.Samples);
  double Bn = static_cast<double>(B.Samples);
  double L1 = 0.0;
  for (size_t I = 0; I < A.Exact.size(); ++I)
    L1 += std::abs(static_cast<double>(A.Exact[I]) / An -
                   static_cast<double>(B.Exact[I]) / Bn);
  for (size_t I = 0; I < A.Log2.size(); ++I)
    L1 += std::abs(static_cast<double>(A.Log2[I]) / An -
                   static_cast<double>(B.Log2[I]) / Bn);
  return L1 / 2.0;
}

ProgramCache::Options cacheOptions(const ServerOptions &O) {
  ProgramCache::Options C;
  C.MaxEntries = O.CacheCapacity;
  C.MaxBytes = O.CacheMaxBytes;
  C.TenantMaxBytes = O.CacheTenantMaxBytes;
  C.CostOverrideBytes = O.Faults.InflateCostBytes;
  return C;
}

} // namespace

const char *serve::outcomeName(Outcome O) {
  switch (O) {
  case Outcome::Served:
    return "served";
  case Outcome::Trapped:
    return "trapped";
  case Outcome::Shed:
    return "shed";
  case Outcome::CompileError:
    return "compile-error";
  }
  return "shed";
}

bool serve::outcomeFromName(const std::string &Name, Outcome &Out) {
  if (Name == "served")
    Out = Outcome::Served;
  else if (Name == "trapped")
    Out = Outcome::Trapped;
  else if (Name == "shed")
    Out = Outcome::Shed;
  else if (Name == "compile-error")
    Out = Outcome::CompileError;
  else
    return false;
  return true;
}

Server::Server(ServerOptions O)
    : Opts(O), Cache(cacheOptions(O)), Breaker(O.Breaker),
      Tenants(O.DefaultQuota, O.QuotaClock) {
  for (const auto &[Name, Q] : Opts.TenantQuotas)
    Tenants.setQuota(Name, Q);
  int N = std::max(1, Opts.Workers);
  Workers.reserve((size_t)N);
  for (int I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    Stopping = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  // Workers drain the queue (shedding) before exiting, so nothing is
  // left here; this is a belt-and-braces sweep for the promise
  // contract should that ever change.
  std::vector<Job> Leftover;
  Queue.drainAll(
      [&](const std::string &, Job &&J) { Leftover.push_back(std::move(J)); });
  for (Job &J : Leftover)
    resolveJob(J, shed(J, "server shutting down", 0, /*Admitted=*/true));
}

int64_t Server::scaledRetryMs(size_t Depth) const {
  int64_t PerWorker = (int64_t)Depth / std::max(1, Opts.Workers);
  return Opts.RetryAfterMs * (1 + PerWorker);
}

std::future<Reply> Server::submit(Request R) {
  std::promise<Reply> Done;
  std::future<Reply> F = Done.get_future();
  std::string Tenant = R.Tenant.empty() ? defaultTenant() : R.Tenant;
  {
    std::lock_guard<std::mutex> Lock(StatsM);
    ++Stats.Submitted;
  }
  Tenants.countSubmitted(Tenant);

  // Budget-envelope admission: requests the server can tell are
  // over-budget never enter the queue, and the reply says retrying as-is
  // is pointless (RetryAfterMs = 0).
  if (Opts.MaxFuel > 0 && (R.Fuel <= 0 || R.Fuel > Opts.MaxFuel)) {
    std::ostringstream OS;
    OS << "fuel budget " << R.Fuel << " outside the served range 1.."
       << Opts.MaxFuel;
    Done.set_value(shedRequest(R, Tenant, OS.str(), 0, /*Admitted=*/false));
    return F;
  }
  if (R.Lanes < 1 || R.Lanes > Opts.MaxLanes) {
    std::ostringstream OS;
    OS << "lanes " << R.Lanes << " outside the served range 1.."
       << Opts.MaxLanes;
    Done.set_value(shedRequest(R, Tenant, OS.str(), 0, /*Admitted=*/false));
    return F;
  }
  if (R.Source.size() > Opts.MaxSourceBytes) {
    std::ostringstream OS;
    OS << "source of " << R.Source.size() << " bytes exceeds the limit of "
       << Opts.MaxSourceBytes;
    Done.set_value(shedRequest(R, Tenant, OS.str(), 0, /*Admitted=*/false));
    return F;
  }

  Job J;
  J.Req = std::move(R);
  J.Tenant = Tenant;
  J.Done = std::move(Done);
  J.Enqueued = Clock::now();
  if (J.Req.DeadlineMs > 0)
    J.Deadline = J.Enqueued + std::chrono::milliseconds(J.Req.DeadlineMs);
  if (J.Req.QueueTimeoutMs > 0)
    J.QueueDeadline =
        J.Enqueued + std::chrono::milliseconds(J.Req.QueueTimeoutMs);

  {
    std::lock_guard<std::mutex> Lock(QueueM);
    if (Stopping) {
      J.Done.set_value(
          shedRequest(J.Req, Tenant, "server shutting down", 0,
                      /*Admitted=*/false));
      return F;
    }
    if (Draining) {
      // Graceful-drain admission stop: a structured refusal, not
      // silence. Another replica may serve the retry.
      J.Done.set_value(shedRequest(J.Req, Tenant, "server draining",
                                   Opts.RetryAfterMs, /*Admitted=*/false,
                                   /*IsDraining=*/true));
      return F;
    }
    if (Queue.size() >= Opts.QueueCapacity) {
      // Deterministic load shedding: reject immediately rather than
      // block the submitter or grow the queue without bound. The hint
      // scales with the congestion the submitter is seeing.
      std::ostringstream OS;
      OS << "admission queue full (" << Opts.QueueCapacity << " waiting)";
      J.Done.set_value(shedRequest(J.Req, Tenant, OS.str(),
                                   scaledRetryMs(Queue.size()),
                                   /*Admitted=*/false));
      return F;
    }
    TenantQuota Q = Tenants.quotaFor(Tenant);
    if (Q.MaxQueued > 0 && (int64_t)Queue.sizeOf(Tenant) >= Q.MaxQueued) {
      // The tenant's share of the shared queue is spent; the global
      // queue may still have room for everyone else.
      std::ostringstream OS;
      OS << "tenant '" << Tenant << "' queue share full (" << Q.MaxQueued
         << " waiting)";
      {
        std::lock_guard<std::mutex> SLock(StatsM);
        ++Stats.QuotaSheds;
      }
      J.Done.set_value(shedRequest(J.Req, Tenant, OS.str(),
                                   scaledRetryMs(Queue.sizeOf(Tenant)),
                                   /*Admitted=*/false));
      return F;
    }
    // Token buckets last: they charge on success, and every later check
    // has already passed, so no refund path exists.
    TenantRegistry::Decision D = Tenants.tryAdmit(Tenant, J.Req.Fuel);
    if (!D.Admit) {
      {
        std::lock_guard<std::mutex> SLock(StatsM);
        ++Stats.QuotaSheds;
      }
      int64_t Hint =
          D.Permanent ? 0 : std::max(D.RetryAfterMs, Opts.RetryAfterMs);
      J.Done.set_value(
          shedRequest(J.Req, Tenant, D.Reason, Hint, /*Admitted=*/false));
      return F;
    }
    Tenants.countAdmitted(Tenant);
    ++Unresolved;
    Queue.push(Tenant, Q.Weight, std::move(J));
  }
  QueueCv.notify_one();
  return F;
}

void Server::beginDrain() {
  std::lock_guard<std::mutex> Lock(QueueM);
  Draining = true;
}

bool Server::drain(int64_t HardDeadlineMs) {
  beginDrain();
  std::vector<Job> Swept;
  {
    std::unique_lock<std::mutex> Lock(QueueM);
    auto Resolved = [&] { return Unresolved == 0; };
    if (HardDeadlineMs <= 0) {
      DrainCv.wait(Lock, Resolved);
    } else if (!DrainCv.wait_for(
                   Lock, std::chrono::milliseconds(HardDeadlineMs),
                   Resolved)) {
      // Hard deadline: whatever is still queued sheds now. Requests a
      // worker already picked up keep running - their own fuel/deadline
      // budgets bound them.
      Queue.drainAll([&](const std::string &, Job &&J) {
        Swept.push_back(std::move(J));
      });
    }
  }
  bool Clean = Swept.empty();
  for (Job &J : Swept)
    resolveJob(J, shedRequest(J.Req, J.Tenant,
                              "drain deadline reached before execution",
                              Opts.RetryAfterMs, /*Admitted=*/true,
                              /*IsDraining=*/true));
  {
    std::unique_lock<std::mutex> Lock(QueueM);
    DrainCv.wait(Lock, [&] { return Unresolved == 0; });
  }
  return Clean;
}

bool Server::draining() const {
  std::lock_guard<std::mutex> Lock(QueueM);
  return Draining;
}

void Server::resolveJob(Job &J, Reply Rep) {
  J.Done.set_value(std::move(Rep));
  Tenants.release(J.Tenant);
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    if (Unresolved > 0)
      --Unresolved;
  }
  DrainCv.notify_all();
}

void Server::workerLoop() {
  for (;;) {
    Job J;
    bool ShedForShutdown = false;
    {
      std::unique_lock<std::mutex> Lock(QueueM);
      QueueCv.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty()) {
        if (Stopping)
          return;
        continue;
      }
      J = std::move(Queue.pop().second);
      ShedForShutdown = Stopping;
    }
    Reply Rep;
    if (ShedForShutdown) {
      Rep = shed(J, "server shutting down", 0, /*Admitted=*/true);
    } else {
      // The worker-thread exception barrier: whatever process() throws
      // (including OOM-shaped std::exceptions from hostile programs)
      // becomes a structured reply, never a dead worker or a
      // std::terminate.
      try {
        Rep = process(J);
      } catch (const std::exception &E) {
        Rep = compileError(J, std::string("internal error: ") + E.what());
      } catch (...) {
        Rep = compileError(J, "internal error: unknown exception");
      }
    }
    resolveJob(J, std::move(Rep));
  }
}

Server::AdaptiveRoute Server::adaptiveRoute(uint64_t BaseKey) {
  std::lock_guard<std::mutex> Lock(AdaptiveM);
  AdaptiveState &S = AdaptiveStates[BaseKey];
  AdaptiveRoute R;
  R.Epoch = S.Epoch;
  // No decision yet, or the decided strategy is the profiling variant
  // itself: every serve doubles as a probe.
  if (!S.Policy.has_value() ||
      S.Policy->Chosen == analysis::Strategy::Unflattened) {
    R.Policy = transform::StrategyPolicy::unflattened();
    R.Probe = true;
    return R;
  }
  if (Opts.AdaptiveProbeEvery > 0 &&
      ++S.SinceProbe >= Opts.AdaptiveProbeEvery) {
    S.SinceProbe = 0;
    R.Policy = transform::StrategyPolicy::unflattened();
    R.Probe = true;
    return R;
  }
  R.Policy = *S.Policy;
  return R;
}

void Server::recordObservedTrips(
    uint64_t BaseKey, const std::vector<interp::NestTripStats> &Nests,
    int64_t Lanes) {
  bool Decided = false, Changed = false;
  {
    std::lock_guard<std::mutex> Lock(AdaptiveM);
    AdaptiveState &S = AdaptiveStates[BaseKey];
    auto FoldInto = [](std::vector<interp::NestTripStats> &Window,
                       const std::vector<interp::NestTripStats> &Run) {
      for (const interp::NestTripStats &N : Run) {
        interp::NestTripStats *Dst = nullptr;
        for (interp::NestTripStats &Mine : Window)
          if (Mine.Name == N.Name) {
            Dst = &Mine;
            break;
          }
        if (!Dst) {
          Window.push_back(interp::NestTripStats{N.Name, N.Depth, {}});
          Dst = &Window.back();
        }
        Dst->Hist.merge(N.Hist);
      }
    };
    if (Opts.AdaptiveWindow > 0) {
      // Recency-weighted mode: the evaluation window is exactly the
      // last AdaptiveWindow probe runs, rebuilt from the ring, so old
      // observations age out instead of accumulating forever.
      S.Ring.push_back(Nests);
      while (static_cast<int64_t>(S.Ring.size()) > Opts.AdaptiveWindow)
        S.Ring.pop_front();
      S.Window.clear();
      for (const std::vector<interp::NestTripStats> &Run : S.Ring)
        FoldInto(S.Window, Run);
    } else {
      FoldInto(S.Window, Nests);
    }
    const interp::NestTripStats *Dom = analysis::dominantTripNest(S.Window);
    if (!Dom || Dom->Hist.Samples < Opts.AdaptiveMinSamples)
      return;
    bool Decide = !S.Policy.has_value();
    if (!Decide)
      Decide = totalVariation(Dom->Hist, S.Snapshot) >
               Opts.AdaptiveDriftThreshold;
    if (!Decide)
      return;
    analysis::StrategyCosts Costs;
    Costs.CoalesceMaxOuter = Opts.AdaptiveCoalesceMaxOuter;
    Costs.CoalesceMaxTotal = Opts.AdaptiveCoalesceMaxTotal;
    analysis::TripDistribution Dist(Dom->Hist);
    analysis::StrategyChoice C = analysis::chooseStrategy(
        Dist, std::max<int64_t>(Lanes, 1), Opts.Layout, Costs);
    Changed = S.Policy.has_value() && C.Primary != S.Policy->Chosen;
    S.Policy = transform::StrategyPolicy::fromChoice(
        C, Opts.AdaptiveCoalesceMaxOuter, Opts.AdaptiveCoalesceMaxTotal);
    S.Snapshot = Dom->Hist;
    S.Window.clear();
    S.Ring.clear();
    ++S.Epoch;
    Decided = true;
  }
  // A changed choice means the next request for this program compiles
  // under a fresh canonical key: the respecialization itself is just a
  // cache miss through the usual single-flight path.
  std::lock_guard<std::mutex> Lock(StatsM);
  if (Decided)
    ++Stats.AdaptiveDecisions;
  if (Changed)
    ++Stats.Respecializations;
}

Reply Server::process(Job &J) {
  const Request &R = J.Req;
  Telemetry Tele;
  Tele.QueueNanos = nanosSince(J.Enqueued);
  Tele.Tenant = J.Tenant;

  if (Opts.Faults.WorkerStallMicros > 0)
    std::this_thread::sleep_for(
        std::chrono::microseconds(Opts.Faults.WorkerStallMicros));

  // Budget checks at pickup: a request that already blew its queue
  // budget or its end-to-end deadline is shed before any work is spent
  // on it.
  Clock::time_point Now = Clock::now();
  if (J.QueueDeadline && Now > *J.QueueDeadline) {
    std::ostringstream OS;
    OS << "queued longer than the " << R.QueueTimeoutMs << "ms queue budget";
    Reply Rep = shed(J, OS.str(), scaledRetryMs(queueDepth()),
                     /*Admitted=*/true);
    Rep.Tele = Tele;
    return Rep;
  }
  if (J.Deadline && Now >= *J.Deadline) {
    Reply Rep = shed(J, "deadline expired before execution", 0,
                     /*Admitted=*/true);
    Rep.Tele = Tele;
    return Rep;
  }

  // Parse + GOTO recovery. Parse failures are program defects -
  // CompileError, no breaker involvement (the breaker quarantines the
  // *pipeline*, not the caller's typos).
  frontend::ParseResult PR = frontend::parseProgram(R.Source);
  if (!PR.ok()) {
    Reply Rep = compileError(J, PR.Diags.renderAll());
    Rep.Tele = Tele;
    return Rep;
  }
  ir::Program Prog = std::move(*PR.Prog);
  frontend::recoverGotoLoops(Prog);

  if (std::string Err = validateInputs(Prog, R); !Err.empty()) {
    Reply Rep = compileError(J, Err);
    Rep.Tele = Tele;
    return Rep;
  }

  // Compile (or fetch) the primary flattened program; degrade to the
  // unflattened fallback when the primary fails or its breaker is open.
  transform::PipelineOptions Primary;
  Primary.Layout = Opts.Layout;
  Primary.Flatten = true;
  Primary.AssumeInnerMinOneTrip = R.MinOne;
  // Adaptive strategy selection: the strategy-free key identifies the
  // program across all its strategy variants; the routed policy rides
  // into the pipeline options, which changes the canonical key below -
  // so differently-strategized compiles coexist in the cache and a
  // respecialization is an ordinary single-flight miss.
  uint64_t BaseKey = 0;
  bool ProfileThisRun = false;
  if (Opts.Adaptive) {
    BaseKey = transform::canonicalKey(Prog, Primary).Hash;
    AdaptiveRoute Route = adaptiveRoute(BaseKey);
    Primary.Strategy = Route.Policy;
    Tele.Strategy = analysis::strategyName(Route.Policy.Chosen);
    Tele.StrategyEpoch = Route.Epoch;
    ProfileThisRun = Route.Probe;
  }
  transform::CanonicalKey PK = transform::canonicalKey(Prog, Primary);

  Clock::time_point CompileStart = Clock::now();
  std::shared_ptr<const transform::CompiledSimdProgram> Code;
  std::string PrimaryError;
  uint64_t FallbackKey = 0;

  CircuitBreaker::State Route = Breaker.admit(PK.Hash);
  if (Route != CircuitBreaker::State::Open) {
    ProgramCache::Outcome CO = Cache.getOrCompile(
        PK.Hash,
        [&](int &Attempts)
            -> Expected<transform::CompiledSimdProgram, CompileFailure> {
          std::string LastErr;
          bool LastTransient = false;
          for (int Try = 0; Try <= Opts.CompileRetries; ++Try) {
            if (Try > 0) {
              {
                std::lock_guard<std::mutex> Lock(StatsM);
                ++Stats.CompileRetries;
              }
              // Exponential backoff between attempts, capped.
              int64_t Micros = Opts.BackoffBaseMicros << (Try - 1);
              Micros = std::min(Micros, Opts.BackoffCapMicros);
              if (Micros > 0)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(Micros));
            }
            int Attempt = ++Attempts;
            if (Attempt <= Opts.Faults.CompileFailures) {
              std::ostringstream OS;
              OS << "injected transient compile failure (attempt " << Attempt
                 << " of the first " << Opts.Faults.CompileFailures
                 << " failing)";
              LastErr = OS.str();
              LastTransient = true;
              continue;
            }
            auto C = transform::compileForSimdExec(Prog, Primary);
            if (C)
              return std::move(*C);
            // A real pipeline failure is deterministic; retrying the
            // identical input is pointless.
            LastErr = C.error().render();
            LastTransient = false;
            break;
          }
          return CompileFailure{LastErr, LastTransient};
        },
        J.Tenant);
    Tele.CacheHit = CO.Hit;
    Tele.CoalescedCompile = CO.Waited;
    Tele.CompileAttempts = CO.Attempts;
    if (CO.Prog) {
      Breaker.recordSuccess(PK.Hash);
      Code = CO.Prog;
    } else {
      Breaker.recordFailure(PK.Hash);
      PrimaryError = CO.Error;
    }
  }

  if (!Code) {
    // Breaker open, or the primary compile failed for this request:
    // serve the unflattened program. Its pipeline skips the flattener -
    // the stage the fault plan injects into - so the fallback is the
    // degraded-but-alive path.
    transform::PipelineOptions FB = Primary;
    FB.Flatten = false;
    // The fallback is always the plain unflattened program - never a
    // strategy variant - so its key and behaviour match the static
    // server's and a bad adaptive choice cannot poison the degraded
    // path.
    FB.Strategy.reset();
    transform::CanonicalKey FK = transform::canonicalKey(Prog, FB);
    FallbackKey = FK.Hash;
    ProgramCache::Outcome CO = Cache.getOrCompile(
        FK.Hash,
        [&](int &Attempts)
            -> Expected<transform::CompiledSimdProgram, CompileFailure> {
          ++Attempts;
          auto C = transform::compileForSimdExec(Prog, FB);
          if (C)
            return std::move(*C);
          return CompileFailure{C.error().render(), false};
        },
        J.Tenant);
    if (!CO.Prog) {
      std::string Err = CO.Error;
      if (!PrimaryError.empty())
        Err = "primary pipeline: " + PrimaryError +
              "; fallback pipeline: " + Err;
      Reply Rep = compileError(J, Err);
      Rep.Tele = Tele;
      Rep.Tele.CompileNanos = nanosSince(CompileStart);
      return Rep;
    }
    Code = CO.Prog;
    Tele.Fallback = true;
    Tele.Strategy = "static";
    Tele.StrategyEpoch = 0;
    {
      std::lock_guard<std::mutex> Lock(StatsM);
      ++Stats.FallbackServes;
    }
  }
  Tele.CompileNanos = nanosSince(CompileStart);

  if (Opts.Faults.EvictMidFlight) {
    // The fault plan's eviction-under-execution probe: drop the entry
    // while this request still holds the shared_ptr. The run below must
    // be unaffected.
    Cache.evict(PK.Hash);
    if (FallbackKey)
      Cache.evict(FallbackKey);
  }

  // Execute. The run inherits the request's whole budget envelope: fuel
  // plus the absolute deadline (checked inside the dispatch loop, so a
  // long-running program traps DeadlineExpired instead of pinning the
  // worker).
  machine::MachineConfig M;
  M.Name = "flattend";
  M.Processors = R.Lanes;
  M.Gran = R.Lanes;
  M.DataLayout = Opts.Layout;

  interp::RunOptions RO;
  RO.Fuel = R.Fuel;
  RO.Deadline = J.Deadline;
  RO.Eng = Opts.Eng;
  if (RO.Eng == interp::Engine::Native) {
    // Native artifact production is compilation, not execution: emit
    // and host-compile here, before the run, under the JIT cache's own
    // per-artifact single-flight (concurrent requests for the same
    // program and lane count coalesce onto one compiler invocation,
    // and a failure is a cached verdict, not a per-request retry
    // storm). When the tier cannot deliver - no toolchain, the emitter
    // declined the program, or the host compile failed - this request
    // degrades to the bytecode engine and is counted: the
    // breaker/fallback philosophy applied one tier down.
    Clock::time_point NativeStart = Clock::now();
    bool Ready = codegen::prepareNative(*Code->Code, Code->Prog, M);
    Tele.CompileNanos += nanosSince(NativeStart);
    if (!Ready) {
      RO.Eng = interp::Engine::Bytecode;
      std::lock_guard<std::mutex> Lock(StatsM);
      ++Stats.NativeFallbacks;
    }
  }
  Tele.Engine = interp::engineName(RO.Eng);

  interp::SimdInterp Interp(Code->Prog, M, /*Externs=*/nullptr, RO);
  Interp.setCompiled(Code->Code);
  interp::DataStore &Store = Interp.store();
  for (const auto &[Name, V] : R.Ints)
    Store.setInt(Name, V);
  for (const auto &[Name, Vals] : R.IntArrays)
    Store.setIntArray(Name, Vals);
  for (const auto &[Name, Vals] : R.RealArrays)
    Store.setRealArray(Name, Vals);

  Clock::time_point RunStart = Clock::now();
  interp::RunOutcome<interp::SimdRunResult> Out = Interp.run();
  Tele.RunNanos = nanosSince(RunStart);

  Reply Rep;
  Rep.Id = R.Id;
  Rep.Tele = Tele;
  if (!Out) {
    Rep.Out = Outcome::Trapped;
    Rep.T = Out.error();
    Rep.Error = Out.error().render();
    countOutcome(Outcome::Trapped, J.Tenant, /*Admitted=*/true);
    return Rep;
  }
  Rep.Out = Outcome::Served;
  // The interpreter's own record of which engine executed is
  // authoritative (a native run that fell back mid-dispatch reports
  // bytecode here).
  Rep.Tele.Engine = interp::engineName(Out->EngineUsed);
  Rep.Tele.FuelSpent = Out->Stats.Instructions;
  Rep.Tele.CyclesSpent = Out->Stats.Cycles;
  // Feed the profile from probe runs only: an exploit variant's loops
  // report its own schedule, not the source trips, and a breaker-open
  // spell serving the fallback must not register as drift either.
  if (ProfileThisRun && !Tele.Fallback && !Out->Stats.TripNests.empty())
    recordObservedTrips(BaseKey, Out->Stats.TripNests, R.Lanes);
  if (R.WantArrays) {
    // Report arrays the *submitted* program declared (the pipeline may
    // add its own temporaries; those are not the caller's business).
    for (const ir::VarDecl &D : Prog.vars())
      if (D.isArray() && D.Kind == ir::ScalarKind::Int &&
          Code->Prog.lookupVar(D.Name))
        Rep.IntArrays.emplace(D.Name, Store.getIntArray(D.Name));
  }
  countOutcome(Outcome::Served, J.Tenant, /*Admitted=*/true);
  return Rep;
}

Reply Server::shed(const Job &J, std::string Why, int64_t RetryAfterMs,
                   bool Admitted) {
  return shedRequest(J.Req, J.Tenant, std::move(Why), RetryAfterMs,
                     Admitted);
}

Reply Server::shedRequest(const Request &R, const std::string &Tenant,
                          std::string Why, int64_t RetryAfterMs,
                          bool Admitted, bool IsDraining) {
  Reply Rep;
  Rep.Id = R.Id;
  Rep.Out = Outcome::Shed;
  Rep.Error = std::move(Why);
  Rep.RetryAfterMs = RetryAfterMs;
  Rep.Draining = IsDraining;
  Rep.Tele.Tenant = Tenant;
  countOutcome(Outcome::Shed, Tenant, Admitted);
  if (IsDraining) {
    std::lock_guard<std::mutex> Lock(StatsM);
    ++Stats.DrainSheds;
  }
  return Rep;
}

Reply Server::compileError(const Job &J, std::string Why) {
  Reply Rep;
  Rep.Id = J.Req.Id;
  Rep.Out = Outcome::CompileError;
  Rep.Error = std::move(Why);
  Rep.Tele.Tenant = J.Tenant;
  countOutcome(Outcome::CompileError, J.Tenant, /*Admitted=*/true);
  return Rep;
}

void Server::countOutcome(Outcome O, const std::string &Tenant,
                          bool Admitted) {
  {
    std::lock_guard<std::mutex> Lock(StatsM);
    switch (O) {
    case Outcome::Served:
      ++Stats.Served;
      break;
    case Outcome::Trapped:
      ++Stats.Trapped;
      break;
    case Outcome::Shed:
      ++Stats.Shed;
      break;
    case Outcome::CompileError:
      ++Stats.CompileErrors;
      break;
    }
  }
  Tenants.countOutcome(Tenant, O, Admitted);
}

ServerStats Server::stats() const {
  ServerStats Out;
  {
    std::lock_guard<std::mutex> Lock(StatsM);
    Out = Stats;
  }
  ProgramCache::Stats CS = Cache.stats();
  Out.CacheHits = CS.Hits;
  Out.CacheMisses = CS.Misses;
  Out.CacheEvictions = CS.Evictions;
  Out.CacheByteEvictions = CS.ByteEvictions;
  Out.CacheTenantEvictions = CS.TenantEvictions;
  Out.CacheBytesResident = CS.BytesResident;
  Out.CompilesCoalesced = CS.Waits;
  Out.BreakerOpens = Breaker.stats().Opens;
  Out.Tenants = Tenants.statsSnapshot();
  return Out;
}

std::map<std::string, TenantStats> Server::tenantStats() const {
  return Tenants.statsSnapshot();
}

size_t Server::queueDepth() const {
  std::lock_guard<std::mutex> Lock(QueueM);
  return Queue.size();
}

size_t Server::inFlight() const {
  std::lock_guard<std::mutex> Lock(QueueM);
  return Unresolved;
}
