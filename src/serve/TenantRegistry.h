//===- serve/TenantRegistry.h - Per-tenant quotas and accounting -*- C++-*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-tenant admission control and accounting for the serving core.
/// Every request carries a tenant name (defaulting to "default"), and
/// the registry holds one quota record per tenant:
///
///  * a request-rate token bucket (RatePerSec refill, Burst capacity),
///  * an in-flight cap (admitted-but-unresolved requests),
///  * a fuel-rate token bucket so a tenant's total simulated work is
///    metered, not just its request count,
///  * a queue-share cap and fair-dequeue weight consumed by the Server.
///
/// Buckets are driven by an injectable nanosecond clock. Tests and the
/// chaos campaign freeze it (a constant clock never refills, so a
/// tenant gets exactly its burst and then deterministic refusals) or
/// step it manually; production uses steady_clock.
///
/// The registry also owns per-tenant outcome counters with a
/// conservation predicate mirroring ServerStats::consistent() but split
/// at the admission boundary:
///
///   Submitted == Served + Trapped + CompileErrors
///                + ShedAtAdmission + ShedInService
///   Admitted  == Served + Trapped + CompileErrors + ShedInService
///
/// i.e. admitted = served + trapped + shed(+compile-error) per tenant -
/// the invariant every chaos phase asserts, including drain-under-load.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SERVE_TENANTREGISTRY_H
#define SIMDFLAT_SERVE_TENANTREGISTRY_H

#include "serve/Serve.h"

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace simdflat {
namespace serve {

/// Monotonic virtual-time source in nanoseconds. Injectable so quota
/// arithmetic is deterministic under test.
using ClockFn = std::function<int64_t()>;

// TenantQuota, TenantStats and defaultTenant() live in Serve.h - they
// are serving vocabulary shared with ServerStats and the wire format.

class TenantRegistry {
public:
  /// One admission verdict. RetryAfterMs is the refill-time hint for
  /// refusals the clock can price (rate/fuel buckets); 0 means the
  /// registry has no estimate (the caller applies its floor) or that
  /// retrying is pointless (Permanent set).
  struct Decision {
    bool Admit = true;
    /// Human-readable refusal reason (empty when admitted).
    std::string Reason;
    /// Milliseconds until the refusing bucket can afford the request.
    int64_t RetryAfterMs = 0;
    /// The request can never be admitted under this quota (e.g. fuel
    /// demand above the bucket capacity): retrying is pointless.
    bool Permanent = false;
  };

  /// \p Default applies to every tenant without an override; a null
  /// \p Clock uses steady_clock.
  explicit TenantRegistry(TenantQuota Default = {}, ClockFn Clock = {});

  /// Installs (or replaces) \p T's quota. Existing bucket levels reset
  /// to the new burst.
  void setQuota(const std::string &T, TenantQuota Q);
  /// \p T's effective quota (the default when no override exists).
  TenantQuota quotaFor(const std::string &T) const;

  /// Charges \p T's buckets and in-flight slot for one request wanting
  /// \p Fuel instructions. All checks pass or nothing is charged.
  Decision tryAdmit(const std::string &T, int64_t Fuel);
  /// Returns the in-flight slot taken by tryAdmit (call once per
  /// admitted request when its reply resolves).
  void release(const std::string &T);

  /// \name Accounting (the Server calls these as it counts globally).
  /// @{
  void countSubmitted(const std::string &T);
  void countAdmitted(const std::string &T);
  /// \p AfterAdmission distinguishes ShedInService from ShedAtAdmission
  /// for Outcome::Shed; other outcomes always follow admission.
  void countOutcome(const std::string &T, Outcome O, bool AfterAdmission);
  /// @}

  /// Admitted-but-unresolved requests for \p T right now.
  int64_t inFlight(const std::string &T) const;
  TenantStats statsFor(const std::string &T) const;
  /// Snapshot of every tenant seen so far.
  std::map<std::string, TenantStats> statsSnapshot() const;
  /// Every tenant's conservation laws hold (true whenever no request is
  /// in flight).
  bool consistent() const;

private:
  struct Entry {
    TenantQuota Q;
    bool HasQuota = false; ///< explicit override vs default copy
    double ReqTokens = 0;
    double FuelTokens = 0;
    int64_t LastRefillNanos = 0;
    bool Primed = false; ///< buckets initialized to full burst
    int64_t InFlight = 0;
    TenantStats Stats;
  };

  Entry &entryLocked(const std::string &T);
  void refillLocked(Entry &E, int64_t NowNanos);

  TenantQuota Default;
  ClockFn Clock;
  mutable std::mutex M;
  std::map<std::string, Entry> Map;
};

} // namespace serve
} // namespace simdflat

#endif // SIMDFLAT_SERVE_TENANTREGISTRY_H
