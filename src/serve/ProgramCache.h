//===- serve/ProgramCache.h - LRU compiled-program cache -------*- C++ -*-===//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-once/run-many heart of the serving core: a bounded LRU
/// cache from canonical program hash (transform::canonicalKey) to the
/// compiled transform::CompiledSimdProgram, with single-flight
/// compilation - when N requests for the same uncached program arrive
/// concurrently, one compiles and N-1 wait on its result instead of
/// compiling N times.
///
/// Robustness contract:
///  * Entries hand out shared_ptrs, so eviction (LRU pressure or the
///    fault plan's mid-flight eviction) never invalidates a program a
///    worker is still executing.
///  * Compile failures are returned to every waiter of that flight but
///    are NOT cached: the next request retries from scratch. The
///    per-key attempt counter survives, so transiently failing compiles
///    (fault-injected or otherwise) make forward progress toward the
///    attempt at which they succeed.
///  * All waiting is bounded by the compiler callback returning; the
///    callback owns retry/backoff policy, the cache owns mutual
///    exclusion.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SERVE_PROGRAMCACHE_H
#define SIMDFLAT_SERVE_PROGRAMCACHE_H

#include "support/Result.h"
#include "transform/Pipeline.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace simdflat {
namespace serve {

/// A compile failure rendered for the reply. Transient tells waiters a
/// retry might succeed (fault-injected failures set it).
struct CompileFailure {
  std::string Message;
  bool Transient = false;

  std::string render() const { return Message; }
};

class ProgramCache {
public:
  struct Stats {
    int64_t Hits = 0;
    int64_t Misses = 0;
    int64_t Evictions = 0;
    /// Lookups that joined an in-flight compile of the same key.
    int64_t Waits = 0;
  };

  /// What one lookup produced. Prog is null iff the (joined) compile
  /// failed; Error then carries the rendering.
  struct Outcome {
    std::shared_ptr<const transform::CompiledSimdProgram> Prog;
    std::string Error;
    bool Hit = false;
    /// This lookup joined another request's flight (either way, the
    /// flight's result is shared).
    bool Waited = false;
    /// Compile attempts this lookup's own flight consumed (0 when Hit
    /// or Waited).
    int Attempts = 0;
  };

  /// Compiles one program. \p Attempts is the key's lifetime attempt
  /// counter: the callback increments it once per attempt it makes
  /// (retries included) so fault plans can fail "the first N attempts"
  /// across flights.
  using Compiler =
      std::function<Expected<transform::CompiledSimdProgram, CompileFailure>(
          int &Attempts)>;

  /// \p Capacity: completed entries kept (>= 1); in-flight compiles are
  /// pinned and do not count.
  explicit ProgramCache(size_t Capacity);

  /// Returns the cached program for \p Key, joins an in-flight compile
  /// of it, or runs \p Fn to fill it (single-flight: at most one
  /// concurrent Fn per key). Blocks only while a flight for this key is
  /// running.
  Outcome getOrCompile(uint64_t Key, const Compiler &Fn);

  /// Drops the completed entry for \p Key if present (no-op for keys
  /// mid-compile; the flight will publish and is evictable afterwards).
  /// Outstanding shared_ptrs stay valid.
  void evict(uint64_t Key);

  /// Completed entries currently resident.
  size_t size() const;

  Stats stats() const;

private:
  struct Slot {
    std::shared_ptr<const transform::CompiledSimdProgram> Prog;
    std::string Error;
    bool Compiling = true;
    /// Lifetime compile attempts for this key (survives failed
    /// flights via AttemptHistory).
    int Attempts = 0;
  };

  /// Marks \p Key most-recently-used; inserts it if new. Lock held.
  void touchLocked(uint64_t Key);
  /// Evicts LRU completed entries down to Capacity. Lock held.
  void enforceCapacityLocked();

  mutable std::mutex M;
  std::condition_variable Published;
  std::unordered_map<uint64_t, std::shared_ptr<Slot>> Map;
  /// Completed keys only, most recent first.
  std::list<uint64_t> Lru;
  /// Attempt counters that outlive failed flights (their slots are
  /// erased so the next request retries).
  std::unordered_map<uint64_t, int> AttemptHistory;
  size_t Capacity;
  Stats S;
};

} // namespace serve
} // namespace simdflat

#endif // SIMDFLAT_SERVE_PROGRAMCACHE_H
