//===- serve/ProgramCache.h - Byte-budgeted compiled-program cache -*-C++-*-==//
//
// Part of simdflat. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-once/run-many heart of the serving core: a bounded,
/// cost-aware LRU cache from canonical program hash
/// (transform::canonicalKey) to the compiled
/// transform::CompiledSimdProgram, with single-flight compilation - when
/// N requests for the same uncached program arrive concurrently, one
/// compiles and N-1 wait on its result instead of compiling N times.
///
/// Residency is bounded three ways, every bound enforced at publish
/// time:
///  * MaxEntries - the legacy count bound (LRU beyond it);
///  * MaxBytes - a byte budget over the estimated footprint of each
///    compiled program (programCostBytes), evicting global LRU order;
///  * TenantMaxBytes - a per-tenant occupancy cap: entries are
///    attributed to the tenant whose request compiled them, and a
///    tenant over its cap evicts its *own* LRU entries first, so one
///    hot tenant cannot wash everyone else's programs out of a shared
///    cache.
/// The entry just published is never chosen as its own victim: a tenant
/// may always hold its newest program and the cache always serves the
/// program it just compiled (caps are enforced against everything
/// else).
///
/// Robustness contract (unchanged from the count-only cache):
///  * Entries hand out shared_ptrs, so eviction (pressure or the fault
///    plan's mid-flight eviction) never invalidates a program a worker
///    is still executing.
///  * Compile failures are returned to every waiter of that flight but
///    are NOT cached: the next request retries from scratch. The
///    per-key attempt counter survives, so transiently failing compiles
///    make forward progress toward the attempt at which they succeed.
///  * All waiting is bounded by the compiler callback returning; the
///    callback owns retry/backoff policy, the cache owns mutual
///    exclusion.
///
//===----------------------------------------------------------------------===//

#ifndef SIMDFLAT_SERVE_PROGRAMCACHE_H
#define SIMDFLAT_SERVE_PROGRAMCACHE_H

#include "support/Result.h"
#include "transform/Pipeline.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace simdflat {
namespace serve {

/// A compile failure rendered for the reply. Transient tells waiters a
/// retry might succeed (fault-injected failures set it).
struct CompileFailure {
  std::string Message;
  bool Transient = false;

  std::string render() const { return Message; }
};

/// Deterministic footprint estimate of one compiled program: the
/// bytecode vectors and pools plus the retained IR, with a fixed
/// per-entry overhead. Not an allocator-exact measure - a stable
/// ordering key for cost-aware eviction.
size_t programCostBytes(const transform::CompiledSimdProgram &P);

class ProgramCache {
public:
  struct Options {
    /// Completed entries kept (>= 1); in-flight compiles are pinned and
    /// do not count.
    size_t MaxEntries = 64;
    /// Byte budget over programCostBytes (0 = unmetered).
    size_t MaxBytes = 0;
    /// Per-tenant resident-byte cap (0 = unmetered).
    size_t TenantMaxBytes = 0;
    /// Fault hook: pretend every published entry costs this many bytes
    /// (0 = measure). Drives byte-pressure eviction deterministically
    /// in tests and the chaos campaign.
    size_t CostOverrideBytes = 0;
  };

  struct Stats {
    int64_t Hits = 0;
    int64_t Misses = 0;
    int64_t Evictions = 0;
    /// Lookups that joined an in-flight compile of the same key.
    int64_t Waits = 0;
    /// Evictions forced by the MaxBytes budget (subset of Evictions).
    int64_t ByteEvictions = 0;
    /// Evictions forced by a tenant's occupancy cap (subset).
    int64_t TenantEvictions = 0;
    /// Estimated bytes currently resident.
    int64_t BytesResident = 0;
  };

  /// What one lookup produced. Prog is null iff the (joined) compile
  /// failed; Error then carries the rendering.
  struct Outcome {
    std::shared_ptr<const transform::CompiledSimdProgram> Prog;
    std::string Error;
    bool Hit = false;
    /// This lookup joined another request's flight (either way, the
    /// flight's result is shared).
    bool Waited = false;
    /// Compile attempts this lookup's own flight consumed (0 when Hit
    /// or Waited).
    int Attempts = 0;
  };

  /// Compiles one program. \p Attempts is the key's lifetime attempt
  /// counter: the callback increments it once per attempt it makes
  /// (retries included) so fault plans can fail "the first N attempts"
  /// across flights.
  using Compiler =
      std::function<Expected<transform::CompiledSimdProgram, CompileFailure>(
          int &Attempts)>;

  /// Count-only bound (legacy single-tenant shape).
  explicit ProgramCache(size_t Capacity);
  explicit ProgramCache(Options O);

  /// Returns the cached program for \p Key, joins an in-flight compile
  /// of it, or runs \p Fn to fill it (single-flight: at most one
  /// concurrent Fn per key). Blocks only while a flight for this key is
  /// running. \p Tenant attributes a newly compiled entry for the
  /// per-tenant occupancy cap (empty: the default tenant).
  Outcome getOrCompile(uint64_t Key, const Compiler &Fn,
                       const std::string &Tenant = std::string());

  /// Drops the completed entry for \p Key if present (no-op for keys
  /// mid-compile; the flight will publish and is evictable afterwards).
  /// Outstanding shared_ptrs stay valid.
  void evict(uint64_t Key);

  /// Completed entries currently resident.
  size_t size() const;
  /// Estimated bytes currently resident.
  size_t bytesResident() const;
  /// Estimated resident bytes attributed to \p Tenant.
  size_t tenantBytes(const std::string &Tenant) const;

  Stats stats() const;

private:
  struct Slot {
    std::shared_ptr<const transform::CompiledSimdProgram> Prog;
    std::string Error;
    bool Compiling = true;
    /// Lifetime compile attempts for this key (survives failed
    /// flights via AttemptHistory).
    int Attempts = 0;
    /// Estimated footprint charged against the budgets.
    size_t Cost = 0;
    /// Tenant whose request compiled the entry (occupancy attribution;
    /// later hits by other tenants do not re-attribute).
    std::string Owner;
  };

  /// Marks \p Key most-recently-used; inserts it if new. Lock held.
  void touchLocked(uint64_t Key);
  /// Removes \p Key's completed entry, crediting its cost back. Lock
  /// held.
  void dropLocked(uint64_t Key);
  /// Evicts down to every budget: \p Owner's occupancy cap (own-LRU
  /// first), then MaxBytes (global LRU), then MaxEntries. The
  /// just-published \p Keep is never the victim. Lock held.
  void enforceBudgetsLocked(const std::string &Owner, uint64_t Keep);

  mutable std::mutex M;
  std::condition_variable Published;
  std::unordered_map<uint64_t, std::shared_ptr<Slot>> Map;
  /// Completed keys only, most recent first.
  std::list<uint64_t> Lru;
  /// Attempt counters that outlive failed flights (their slots are
  /// erased so the next request retries).
  std::unordered_map<uint64_t, int> AttemptHistory;
  /// Resident bytes per owning tenant.
  std::unordered_map<std::string, size_t> OwnerBytes;
  Options Opts;
  Stats S;
};

} // namespace serve
} // namespace simdflat

#endif // SIMDFLAT_SERVE_PROGRAMCACHE_H
